package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// cell is one padded atomic tally slot, the same cache-line discipline as
// dist's counter shards: concurrent adds on different cells never contend.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotone integer metric sharded over a fixed number of cells
// (logical shards, not workers). Adds are atomic and commutative, so the
// per-cell totals are deterministic for any execution schedule as long as
// each observation targets a schedule-independent cell — which is what
// ShardMap provides.
type Counter struct {
	name  string
	cells []cell
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Add adds delta to one cell.
func (c *Counter) Add(cellIdx int, delta int64) {
	c.cells[cellIdx].v.Add(delta)
}

// Cell returns one cell's current value.
func (c *Counter) Cell(i int) int64 { return c.cells[i].v.Load() }

// Cells returns a copy of all cell values.
func (c *Counter) Cells() []int64 {
	out := make([]int64, len(c.cells))
	for i := range c.cells {
		out[i] = c.cells[i].v.Load()
	}
	return out
}

// Total returns the sum over cells.
func (c *Counter) Total() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Gauge is a float-valued metric with per-cell last-write-wins semantics,
// stored as IEEE-754 bits in atomics so exporters may read concurrently.
// Writers are the driving goroutine's snapshot scans, so determinism is by
// construction (serial ascending-order computation).
type Gauge struct {
	name  string
	cells []atomic.Uint64
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores v into one cell.
func (g *Gauge) Set(cellIdx int, v float64) {
	g.cells[cellIdx].Store(math.Float64bits(v))
}

// Cell returns one cell's current value.
func (g *Gauge) Cell(i int) float64 { return math.Float64frombits(g.cells[i].Load()) }

// Cells returns a copy of all cell values.
func (g *Gauge) Cells() []float64 {
	out := make([]float64, len(g.cells))
	for i := range g.cells {
		out[i] = math.Float64frombits(g.cells[i].Load())
	}
	return out
}

// Histogram is a fixed-bound cumulative histogram: count[i] tallies
// observations <= Bounds[i], count[len(Bounds)] the overflow. Observation
// order never matters (integer adds commute), so histograms are snapshot-
// deterministic like counters.
type Histogram struct {
	name   string
	bounds []float64
	counts []cell
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Bounds returns the upper bucket bounds (exclusive of the overflow bucket).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Observe tallies one observation into its bucket.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].v.Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].v.Add(1)
}

// Counts returns a copy of the per-bucket counts (overflow last).
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].v.Load()
	}
	return out
}

// metricRef locates a registered metric for idempotent re-registration.
type metricRef struct {
	kind  byte // 'c', 'g', 'h'
	index int
}

// Registry holds named metrics in registration order — the order snapshots
// and exporters list them in, so registration must happen deterministically
// (the runtime hooks register in fixed code order on the driving goroutine).
// Registration is idempotent: re-registering a name with an identical shape
// returns the existing metric, which lets several runs in one process (e.g.
// an experiment sweep) accumulate into one registry.
type Registry struct {
	mu       sync.Mutex
	byName   map[string]metricRef
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metricRef)}
}

// Counter registers (or returns the existing) counter with the given cell
// count. Panics on a name collision with a different kind or shape.
func (r *Registry) Counter(name string, cells int) *Counter {
	if cells < 1 {
		cells = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ref, ok := r.byName[name]; ok {
		if ref.kind != 'c' || len(r.counters[ref.index].cells) != cells {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return r.counters[ref.index]
	}
	c := &Counter{name: name, cells: make([]cell, cells)}
	r.byName[name] = metricRef{kind: 'c', index: len(r.counters)}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers (or returns the existing) gauge with the given cell count.
func (r *Registry) Gauge(name string, cells int) *Gauge {
	if cells < 1 {
		cells = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ref, ok := r.byName[name]; ok {
		if ref.kind != 'g' || len(r.gauges[ref.index].cells) != cells {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return r.gauges[ref.index]
	}
	g := &Gauge{name: name, cells: make([]atomic.Uint64, cells)}
	r.byName[name] = metricRef{kind: 'g', index: len(r.gauges)}
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram registers (or returns the existing) histogram with the given
// ascending upper bucket bounds (an overflow bucket is added implicitly).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ref, ok := r.byName[name]; ok {
		if ref.kind != 'h' || len(r.hists[ref.index].bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return r.hists[ref.index]
	}
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]cell, len(bounds)+1),
	}
	r.byName[name] = metricRef{kind: 'h', index: len(r.hists)}
	r.hists = append(r.hists, h)
	return h
}

// Snapshot captures every metric's current values under the given round
// stamp, in registration order.
func (r *Registry) Snapshot(round int64) Snapshot {
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()
	s := Snapshot{Round: round}
	for _, c := range counters {
		s.Counters = append(s.Counters, IntMetric{Name: c.name, Cells: c.Cells()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, FloatMetric{Name: g.name, Cells: g.Cells()})
	}
	for _, h := range hists {
		s.Hists = append(s.Hists, HistMetric{
			Name:   h.name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: h.Counts(),
		})
	}
	return s
}

// ShardMap maps node IDs onto a fixed number of logical shards with the same
// contiguous balanced rule as sched.Partition (bounds[i] = i*n/shards). The
// mapping depends only on (n, shards) — never on the worker count — which is
// what makes per-shard metric cells schedule-independent.
type ShardMap struct {
	n      int
	shards int
	of     []int32
}

// NewShardMap builds the node → logical shard lookup.
func NewShardMap(n, shards int) *ShardMap {
	if shards < 1 {
		shards = 1
	}
	m := &ShardMap{n: n, shards: shards, of: make([]int32, n)}
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		for v := lo; v < hi; v++ {
			m.of[v] = int32(s)
		}
	}
	return m
}

// Shards returns the logical shard count.
func (m *ShardMap) Shards() int { return m.shards }

// Of returns node v's logical shard.
func (m *ShardMap) Of(v int) int { return int(m.of[v]) }

// Bounds returns the shard boundary list: shard s owns [bounds[s],
// bounds[s+1]).
func (m *ShardMap) Bounds() []int {
	b := make([]int, m.shards+1)
	for s := 0; s <= m.shards; s++ {
		b[s] = s * m.n / m.shards
	}
	return b
}
