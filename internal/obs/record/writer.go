package record

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/obs"
)

// Writer streams a recording: the manifest at creation, then one frame per
// event or snapshot as the run emits them, then a trailer on Close. Frames
// go through a buffered writer, so a long run's recording cost is
// sequential appends — nothing is retained in memory beyond the string
// table (a handful of category/name/key identifiers).
//
// Writer implements obs.Tracer; install it as (or tee it into) an
// Observer's Tracer and wire Observer.SnapSink to Snap. Like every in-run
// tracer it must only be driven from the run's driving goroutine.
//
// Errors are sticky: the first write error is retained, subsequent frames
// are dropped, and Close (and Err) report it — Emit cannot return an error
// through the Tracer interface, so a recording that hit an I/O error must
// be detected at Close, not assumed good.
type Writer struct {
	w      *bufio.Writer
	strIDs map[string]uint64
	frame  []byte   // frame assembly scratch
	head   []byte   // length-prefix scratch
	keys   []uint64 // arg-key ID scratch
	events int64
	snaps  int64
	digest uint64
	closed bool
	err    error
}

// NewWriter starts a recording on w by writing the header and manifest.
// The caller owns w (and closes any underlying file after Close).
func NewWriter(w io.Writer, m Manifest) (*Writer, error) {
	rw := &Writer{
		w:      bufio.NewWriterSize(w, 1<<16),
		strIDs: make(map[string]uint64),
		digest: fnvOffset,
	}
	if _, err := rw.w.WriteString(magic); err != nil {
		return nil, err
	}
	if err := rw.w.WriteByte(version); err != nil {
		return nil, err
	}
	rw.writeFrame(m.encode(rw.frame[:0]))
	if rw.err != nil {
		return nil, rw.err
	}
	return rw, nil
}

// writeFrame writes one length-prefixed frame and folds the body into the
// running digest. No-op once an error is sticky.
func (w *Writer) writeFrame(body []byte) {
	w.frame = body // retain capacity for the next assembly
	if w.err != nil {
		return
	}
	if len(body) > maxFrame {
		w.err = fmt.Errorf("record: frame of %d bytes exceeds limit", len(body))
		return
	}
	w.digest = fnv1a(w.digest, body)
	w.head = binary.AppendUvarint(w.head[:0], uint64(len(body)))
	if _, err := w.w.Write(w.head); err != nil {
		w.err = err
		return
	}
	if _, err := w.w.Write(body); err != nil {
		w.err = err
	}
}

// sid interns s, emitting a string-table frame on first use. IDs are dense
// and assigned in first-appearance order, so identical event sequences
// produce identical recordings byte for byte.
func (w *Writer) sid(s string) uint64 {
	if id, ok := w.strIDs[s]; ok {
		return id
	}
	if len(s) > maxString {
		if w.err == nil {
			w.err = fmt.Errorf("record: string of %d bytes exceeds limit", len(s))
		}
		return 0
	}
	id := uint64(len(w.strIDs))
	w.strIDs[s] = id
	body := append(w.frame[:0], frameStr)
	body = append(body, s...)
	w.writeFrame(body)
	return id
}

// Emit implements obs.Tracer: one event frame per trace event.
func (w *Writer) Emit(e obs.Event) {
	if w.err != nil || w.closed {
		return
	}
	cat, name := w.sid(e.Cat), w.sid(e.Name)
	// Intern arg keys before assembling the event body: string frames and
	// the body share the frame scratch.
	keys := w.keys[:0]
	for _, a := range e.Args {
		keys = append(keys, w.sid(a.Key))
	}
	w.keys = keys
	body := append(w.frame[:0], frameEvent)
	body = binary.AppendUvarint(body, cat)
	body = binary.AppendUvarint(body, name)
	body = append(body, byte(e.Kind))
	body = binary.AppendVarint(body, e.Tick)
	body = binary.AppendUvarint(body, uint64(len(e.Args)))
	for i, a := range e.Args {
		body = binary.AppendUvarint(body, keys[i])
		if a.IsFloat {
			body = append(body, 1)
			body = appendFloatBits(body, a.Float)
		} else {
			body = append(body, 0)
			body = binary.AppendVarint(body, a.Int)
		}
	}
	w.writeFrame(body)
	w.events++
}

// Snap writes one snapshot frame; wire it to Observer.SnapSink.
func (w *Writer) Snap(s obs.Snapshot) {
	if w.err != nil || w.closed {
		return
	}
	// Intern every metric name first: writeFrame reuses w.frame, so string
	// frames must not interleave with the snapshot body assembly.
	for _, c := range s.Counters {
		w.sid(c.Name)
	}
	for _, g := range s.Gauges {
		w.sid(g.Name)
	}
	for _, h := range s.Hists {
		w.sid(h.Name)
	}
	body := append(w.frame[:0], frameSnap)
	body = binary.AppendVarint(body, s.Round)
	body = binary.AppendUvarint(body, uint64(len(s.Counters)))
	for _, c := range s.Counters {
		body = binary.AppendUvarint(body, w.strIDs[c.Name])
		body = binary.AppendUvarint(body, uint64(len(c.Cells)))
		for _, v := range c.Cells {
			body = binary.AppendVarint(body, v)
		}
	}
	body = binary.AppendUvarint(body, uint64(len(s.Gauges)))
	for _, g := range s.Gauges {
		body = binary.AppendUvarint(body, w.strIDs[g.Name])
		body = binary.AppendUvarint(body, uint64(len(g.Cells)))
		for _, v := range g.Cells {
			body = appendFloatBits(body, v)
		}
	}
	body = binary.AppendUvarint(body, uint64(len(s.Hists)))
	for _, h := range s.Hists {
		body = binary.AppendUvarint(body, w.strIDs[h.Name])
		body = binary.AppendUvarint(body, uint64(len(h.Bounds)))
		for _, v := range h.Bounds {
			body = appendFloatBits(body, v)
		}
		body = binary.AppendUvarint(body, uint64(len(h.Counts)))
		for _, v := range h.Counts {
			body = binary.AppendVarint(body, v)
		}
	}
	w.writeFrame(body)
	w.snaps++
}

// Attach wires w into an observer: events tee into w alongside any existing
// tracer, and every snapshot the run records streams to w through SnapSink.
// Call before the run starts; pair with Close after it ends.
func Attach(o *obs.Observer, w *Writer) {
	o.Tracer = obs.MultiTracer(o.Tracer, w)
	prev := o.SnapSink
	o.SnapSink = func(s obs.Snapshot) {
		if prev != nil {
			prev(s)
		}
		w.Snap(s)
	}
}

// Counts returns how many event and snapshot frames have been written.
func (w *Writer) Counts() (events, snaps int64) { return w.events, w.snaps }

// Err returns the sticky error, if any.
func (w *Writer) Err() error { return w.err }

// Close writes the trailer (event/snapshot counts and the running digest —
// what lets a reader distinguish a complete recording from a truncated
// one), flushes, and returns the first error of the whole recording.
// The underlying writer is not closed. Close is idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	digest := w.digest // trailer digest covers every frame before it
	body := append(w.frame[:0], frameEnd)
	body = binary.AppendUvarint(body, uint64(w.events))
	body = binary.AppendUvarint(body, uint64(w.snaps))
	body = binary.LittleEndian.AppendUint64(body, digest)
	w.writeFrame(body)
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}
