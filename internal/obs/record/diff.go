package record

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// DiffOptions configures the bisector.
type DiffOptions struct {
	// Window is how many common frames before the divergence the report
	// retains as context; <= 0 means 8.
	Window int
	// Strict compares environment event categories ("sched", "wire") too.
	// Off by default: those narrate the execution schedule and machine
	// split, which legitimately differ between bit-identical runs.
	Strict bool
}

// Report is the bisector's verdict: either the recordings are identical
// (over manifest identity and the deterministic frame sequence), or it
// names the first divergence with both sides' frames and the preceding
// common window. It marshals to JSON for CI and renders as text for
// humans.
type Report struct {
	Identical bool `json:"identical"`
	// Kind classifies the first divergence: "manifest", "event",
	// "snapshot", "type" (event vs snapshot at the same position),
	// "length" (one recording is a strict prefix), or "truncated" (one
	// recording ends without a trailer).
	Kind string `json:"kind,omitempty"`
	// Pos is the position in the compared (deterministic) frame sequence
	// where the divergence sits; Frames is how many positions matched
	// before it. Equal when divergent; Frames alone when identical.
	Pos    int64 `json:"pos,omitempty"`
	Frames int64 `json:"frames_compared"`
	// Detail is the one-line human summary of the first difference —
	// which field of which event, or which metric cell of which round.
	Detail string `json:"detail,omitempty"`
	// A and B are each side's frame at the divergence (absent on the side
	// that ended, and for manifest divergences).
	A *Frame `json:"a,omitempty"`
	B *Frame `json:"b,omitempty"`
	// Window holds the last common frames before the divergence, oldest
	// first (side A's copies; they matched, so the distinction is moot).
	Window []Frame `json:"window,omitempty"`
	// ManifestDiffs lists the differing identity fields on a manifest
	// divergence.
	ManifestDiffs []string `json:"manifest_diffs,omitempty"`
	// EnvNotes are informational asymmetries that are NOT divergences:
	// differing Env manifest fields and skipped environment-category
	// event counts.
	EnvNotes []string `json:"env_notes,omitempty"`
}

// diverge fills the failure fields.
func (rep *Report) diverge(kind string, pos int64, detail string, a, b *Frame) {
	rep.Identical = false
	rep.Kind = kind
	rep.Pos = pos
	rep.Detail = detail
	rep.A = a
	rep.B = b
}

// side pairs a reader with its env-event tally for lockstep pulls.
type side struct {
	r         *Reader
	label     string
	envEvents int64
	truncated bool
}

// nextDet returns the side's next deterministic frame: env-category events
// are counted and skipped unless strict. done reports a clean or truncated
// end (truncated recorded on the side); err only genuine corruption/I/O.
func (s *side) nextDet(strict bool) (f Frame, done bool, err error) {
	for {
		f, err := s.r.Next()
		if err == io.EOF {
			return Frame{}, true, nil
		}
		if err == ErrTruncated {
			s.truncated = true
			return Frame{}, true, nil
		}
		if err != nil {
			return Frame{}, false, fmt.Errorf("%s: %w", s.label, err)
		}
		if !strict && f.Event != nil && obs.IsEnvCat(f.Event.Cat) {
			s.envEvents++
			continue
		}
		return f, false, nil
	}
}

// Diff streams two recordings in lockstep and reports the first
// divergence. The error return is reserved for unreadable input (I/O,
// corruption); every comparison outcome — including one side being
// truncated — is part of the Report.
func Diff(a, b *Reader, opt DiffOptions) (*Report, error) {
	window := opt.Window
	if window <= 0 {
		window = 8
	}
	rep := &Report{Identical: true}
	compareManifests(a.Manifest(), b.Manifest(), rep)
	if !rep.Identical {
		return rep, nil
	}
	sa := &side{r: a, label: "recording a"}
	sb := &side{r: b, label: "recording b"}
	ring := make([]Frame, 0, window)
	var pos int64
	for {
		fa, doneA, err := sa.nextDet(opt.Strict)
		if err != nil {
			return nil, err
		}
		fb, doneB, err := sb.nextDet(opt.Strict)
		if err != nil {
			return nil, err
		}
		switch {
		case doneA && doneB:
			rep.Frames = pos
			finishNotes(sa, sb, rep)
			if sa.truncated != sb.truncated {
				// Same frames, but one side has no trailer: surface it —
				// the truncated recording may simply have stopped early.
				trunc := sa
				if sb.truncated {
					trunc = sb
				}
				rep.diverge("truncated", pos,
					fmt.Sprintf("%s ends without a trailer after the last common frame", trunc.label), nil, nil)
			}
			return rep, nil
		case doneA || doneB:
			rep.Frames = pos
			finishNotes(sa, sb, rep)
			ended, other := sa, &fb
			kind := "length"
			if doneB {
				ended, other = sb, &fa
			}
			if ended.truncated {
				kind = "truncated"
			}
			detail := fmt.Sprintf("%s ends at frame position %d; the other continues with %s",
				ended.label, pos, describeFrame(other))
			var af, bf *Frame
			if doneB {
				af = other
			} else {
				bf = other
			}
			rep.diverge(kind, pos, detail, af, bf)
			rep.Window = append(rep.Window, ring...)
			return rep, nil
		}
		if detail := compareFrames(&fa, &fb); detail != "" {
			rep.Frames = pos
			finishNotes(sa, sb, rep)
			kind := "event"
			if fa.Snap != nil || fb.Snap != nil {
				kind = "snapshot"
			}
			if (fa.Event == nil) != (fb.Event == nil) {
				kind = "type"
			}
			rep.diverge(kind, pos, detail, &fa, &fb)
			rep.Window = append(rep.Window, ring...)
			return rep, nil
		}
		if len(ring) == window {
			copy(ring, ring[1:])
			ring = ring[:window-1]
		}
		ring = append(ring, fa)
		pos++
	}
}

// finishNotes records the informational asymmetries.
func finishNotes(a, b *side, rep *Report) {
	if a.envEvents != b.envEvents {
		rep.EnvNotes = append(rep.EnvNotes, fmt.Sprintf(
			"environment events skipped: %d vs %d (sched/wire narration differs; rerun with Strict to compare)",
			a.envEvents, b.envEvents))
	}
}

// compareManifests checks identity (workload + Run) and notes Env
// asymmetries.
func compareManifests(a, b Manifest, rep *Report) {
	var diffs []string
	if a.Workload != b.Workload {
		diffs = append(diffs, fmt.Sprintf("workload: %q vs %q", a.Workload, b.Workload))
	}
	diffs = append(diffs, compareFields(a.Run, b.Run)...)
	if len(diffs) > 0 {
		rep.diverge("manifest", 0, diffs[0], nil, nil)
		rep.ManifestDiffs = diffs
	}
	for _, note := range compareFields(a.Env, b.Env) {
		rep.EnvNotes = append(rep.EnvNotes, "env "+note)
	}
}

// compareFields reports pairwise differences in ordered field sections.
func compareFields(a, b []Field) []string {
	var diffs []string
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i].Key != b[i].Key:
			diffs = append(diffs, fmt.Sprintf("field %d: key %q vs %q", i, a[i].Key, b[i].Key))
		case a[i].Kind != b[i].Kind || a[i].Int != b[i].Int || a[i].Str != b[i].Str ||
			math.Float64bits(a[i].Float) != math.Float64bits(b[i].Float):
			diffs = append(diffs, fmt.Sprintf("%s: %s vs %s", a[i].Key, a[i].Value(), b[i].Value()))
		}
	}
	for i := n; i < len(a); i++ {
		diffs = append(diffs, fmt.Sprintf("%s: %s vs (absent)", a[i].Key, a[i].Value()))
	}
	for i := n; i < len(b); i++ {
		diffs = append(diffs, fmt.Sprintf("%s: (absent) vs %s", b[i].Key, b[i].Value()))
	}
	return diffs
}

// compareFrames returns "" when equal, else the first-difference detail.
func compareFrames(a, b *Frame) string {
	switch {
	case a.Event != nil && b.Event != nil:
		return compareEvents(a.Event, b.Event)
	case a.Snap != nil && b.Snap != nil:
		return compareSnaps(a.Snap, b.Snap)
	default:
		return fmt.Sprintf("frame type differs: %s vs %s", describeFrame(a), describeFrame(b))
	}
}

// compareEvents names the first differing field of two events.
func compareEvents(a, b *obs.Event) string {
	id := func(e *obs.Event) string {
		return fmt.Sprintf("%s/%s(%s) tick %d", e.Cat, e.Name, kindLetter(e.Kind), e.Tick)
	}
	if a.Cat != b.Cat || a.Name != b.Name || a.Kind != b.Kind {
		return fmt.Sprintf("event identity differs: %s vs %s", id(a), id(b))
	}
	if a.Tick != b.Tick {
		return fmt.Sprintf("event %s/%s(%s): logical tick %d vs %d", a.Cat, a.Name, kindLetter(a.Kind), a.Tick, b.Tick)
	}
	if len(a.Args) != len(b.Args) {
		return fmt.Sprintf("event %s: %d args vs %d", id(a), len(a.Args), len(b.Args))
	}
	for i := range a.Args {
		aa, ba := a.Args[i], b.Args[i]
		if aa.Key != ba.Key {
			return fmt.Sprintf("event %s: arg %d key %q vs %q", id(a), i, aa.Key, ba.Key)
		}
		if aa.IsFloat != ba.IsFloat ||
			(aa.IsFloat && math.Float64bits(aa.Float) != math.Float64bits(ba.Float)) ||
			(!aa.IsFloat && aa.Int != ba.Int) {
			return fmt.Sprintf("event %s: arg %s = %s vs %s", id(a), aa.Key, argValue(aa), argValue(ba))
		}
	}
	return ""
}

// compareSnaps names the first differing metric cell of two snapshots.
func compareSnaps(a, b *obs.Snapshot) string {
	at := fmt.Sprintf("snapshot round %d", a.Round)
	if a.Round != b.Round {
		return fmt.Sprintf("snapshot round stamp %d vs %d", a.Round, b.Round)
	}
	if len(a.Counters) != len(b.Counters) || len(a.Gauges) != len(b.Gauges) || len(a.Hists) != len(b.Hists) {
		return fmt.Sprintf("%s: metric sets differ (%d/%d/%d vs %d/%d/%d counters/gauges/hists)",
			at, len(a.Counters), len(a.Gauges), len(a.Hists), len(b.Counters), len(b.Gauges), len(b.Hists))
	}
	for i := range a.Counters {
		ac, bc := a.Counters[i], b.Counters[i]
		if ac.Name != bc.Name {
			return fmt.Sprintf("%s: counter %d named %q vs %q", at, i, ac.Name, bc.Name)
		}
		if len(ac.Cells) != len(bc.Cells) {
			return fmt.Sprintf("%s: counter %s has %d cells vs %d", at, ac.Name, len(ac.Cells), len(bc.Cells))
		}
		for j := range ac.Cells {
			if ac.Cells[j] != bc.Cells[j] {
				return fmt.Sprintf("%s: counter %s cell %d (logical shard %d): %d vs %d",
					at, ac.Name, j, j, ac.Cells[j], bc.Cells[j])
			}
		}
	}
	for i := range a.Gauges {
		ag, bg := a.Gauges[i], b.Gauges[i]
		if ag.Name != bg.Name {
			return fmt.Sprintf("%s: gauge %d named %q vs %q", at, i, ag.Name, bg.Name)
		}
		if len(ag.Cells) != len(bg.Cells) {
			return fmt.Sprintf("%s: gauge %s has %d cells vs %d", at, ag.Name, len(ag.Cells), len(bg.Cells))
		}
		for j := range ag.Cells {
			if math.Float64bits(ag.Cells[j]) != math.Float64bits(bg.Cells[j]) {
				return fmt.Sprintf("%s: gauge %s cell %d (logical shard %d): %s vs %s",
					at, ag.Name, j, j, floatText(ag.Cells[j]), floatText(bg.Cells[j]))
			}
		}
	}
	for i := range a.Hists {
		ah, bh := a.Hists[i], b.Hists[i]
		if ah.Name != bh.Name {
			return fmt.Sprintf("%s: hist %d named %q vs %q", at, i, ah.Name, bh.Name)
		}
		if len(ah.Counts) != len(bh.Counts) {
			return fmt.Sprintf("%s: hist %s has %d buckets vs %d", at, ah.Name, len(ah.Counts), len(bh.Counts))
		}
		for j := range ah.Counts {
			if ah.Counts[j] != bh.Counts[j] {
				return fmt.Sprintf("%s: hist %s bucket %d: %d vs %d", at, ah.Name, j, ah.Counts[j], bh.Counts[j])
			}
		}
		for j := range ah.Bounds {
			if j < len(bh.Bounds) && math.Float64bits(ah.Bounds[j]) != math.Float64bits(bh.Bounds[j]) {
				return fmt.Sprintf("%s: hist %s bound %d: %s vs %s",
					at, ah.Name, j, floatText(ah.Bounds[j]), floatText(bh.Bounds[j]))
			}
		}
		if len(ah.Bounds) != len(bh.Bounds) {
			return fmt.Sprintf("%s: hist %s has %d bounds vs %d", at, ah.Name, len(ah.Bounds), len(bh.Bounds))
		}
	}
	return ""
}

// Rendering helpers.

func kindLetter(k obs.EventKind) string {
	switch k {
	case obs.KindBegin:
		return "B"
	case obs.KindEnd:
		return "E"
	default:
		return "i"
	}
}

func argValue(a obs.Arg) string {
	if a.IsFloat {
		return floatText(a.Float)
	}
	return strconv.FormatInt(a.Int, 10)
}

func floatText(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// FormatEvent renders one event in the report's compact one-line form:
// "[dist] E phase tick=7 {phase=7 words=812}".
func FormatEvent(e *obs.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s %s tick=%d", e.Cat, kindLetter(e.Kind), e.Name, e.Tick)
	if len(e.Args) > 0 {
		b.WriteString(" {")
		for i, a := range e.Args {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(a.Key)
			b.WriteByte('=')
			b.WriteString(argValue(a))
		}
		b.WriteByte('}')
	}
	return b.String()
}

// describeFrame renders a frame reference for report text.
func describeFrame(f *Frame) string {
	switch {
	case f == nil:
		return "(none)"
	case f.Event != nil:
		return fmt.Sprintf("frame %d: %s", f.Index, FormatEvent(f.Event))
	case f.Snap != nil:
		return fmt.Sprintf("frame %d: snapshot round %d", f.Index, f.Snap.Round)
	default:
		return fmt.Sprintf("frame %d", f.Index)
	}
}

// WriteText renders the report for humans: the verdict, the first
// divergence with both sides, and the trailing common window.
func (rep *Report) WriteText(w io.Writer) {
	if rep.Identical {
		fmt.Fprintf(w, "identical: %d frames compared\n", rep.Frames)
	} else {
		fmt.Fprintf(w, "first divergence at frame position %d (%s)\n", rep.Pos, rep.Kind)
		fmt.Fprintf(w, "  %s\n", rep.Detail)
		if rep.A != nil {
			fmt.Fprintf(w, "  a: %s\n", describeFrame(rep.A))
		}
		if rep.B != nil {
			fmt.Fprintf(w, "  b: %s\n", describeFrame(rep.B))
		}
		for _, d := range rep.ManifestDiffs {
			fmt.Fprintf(w, "  manifest: %s\n", d)
		}
		if len(rep.Window) > 0 {
			fmt.Fprintf(w, "  last %d common frames:\n", len(rep.Window))
			for i := range rep.Window {
				fmt.Fprintf(w, "    %s\n", describeFrame(&rep.Window[i]))
			}
		}
	}
	for _, n := range rep.EnvNotes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}
