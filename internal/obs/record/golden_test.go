package record_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph/gen"
	"repro/internal/obs"
	"repro/internal/obs/record"
	"repro/internal/rng"
)

// updateGolden regenerates the checked-in fingerprints:
//
//	go test ./internal/obs/record -run TestGoldenTraces -update-golden
//
// Only legitimate transcript changes (a protocol or instrumentation change
// that is supposed to alter the observed sequence) warrant an update; an
// unexpected diff here is the regression the golden traces exist to catch.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden fingerprints")

// recordSBMSync is the canonical synchronous golden workload: a planted
// 2-block SBM clustered by the distributed protocol.
func recordSBMSync(t *testing.T, workers int) []byte {
	t.Helper()
	p, err := gen.SBMBalanced(2, 40, 8, 1, rng.New(777))
	if err != nil {
		t.Fatal(err)
	}
	m := record.Manifest{
		Workload: "sbm-sync",
		Run: []record.Field{
			record.FStr("graph", "sbm-balanced k=2 size=40 din=8 dout=1 seed=777"),
			record.FFloat("beta", 0.5),
			record.FInt("rounds", 6),
			record.FInt("seed", 29),
		},
		Env: []record.Field{record.FInt("workers", int64(workers))},
	}
	var buf bytes.Buffer
	w, err := record.NewWriter(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Options{})
	record.Attach(o, w)
	if _, err := core.ClusterDistributed(p.G, core.Params{Beta: 0.5, Rounds: 6, Seed: 29}, core.DistOptions{
		Workers: workers,
		Obs:     o,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTraces checks the canonical workloads' fingerprints against the
// checked-in golden files: the manifest hash pins the workload identity,
// the per-round digests pin every snapshot cell, and the event digest pins
// the deterministic trace. A failure names the first divergent round.
//
// Each workload is also recorded under a second execution shape (different
// worker count or the batched scheduler) that must match the same golden —
// the worker/transport/schedule invariance, pinned against a checked-in
// reference rather than a same-process twin.
func TestGoldenTraces(t *testing.T) {
	cases := []struct {
		name string
		rec  func(t *testing.T) []byte // canonical shape
		alt  func(t *testing.T) []byte // second shape, same fingerprint
	}{
		{
			name: "sbm-sync",
			rec:  func(t *testing.T) []byte { return recordSBMSync(t, 1) },
			alt:  func(t *testing.T) []byte { return recordSBMSync(t, 4) },
		},
		{
			name: "async-gossip",
			rec:  func(t *testing.T) []byte { return recordAsync(t, 0, core.TransportSpec{}, false, nil) },
			alt:  func(t *testing.T) []byte { return recordAsync(t, 4, core.TransportSpec{}, false, nil) },
		},
		{
			name: "faulty-reliable",
			rec: func(t *testing.T) []byte {
				return recordAsync(t, 0, core.TransportSpec{}, true, dist.LinkFaults{DropProb: 0.05, Seed: 5})
			},
			alt: func(t *testing.T) []byte {
				return recordAsync(t, 4, core.TransportSpec{Kind: "ring"}, true, dist.LinkFaults{DropProb: 0.05, Seed: 5})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", tc.name+".fp")
			fp := fingerprintBytes(t, tc.rec(t))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, fp.AppendText(nil), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-golden)", err)
			}
			golden, err := record.ParseFingerprint(bytes.NewReader(blob))
			if err != nil {
				t.Fatal(err)
			}
			if msg := record.CompareFingerprints(fp, golden); msg != "" {
				t.Errorf("fingerprint diverges from golden: %s", msg)
			}
			// The golden text format itself is part of the contract.
			if !*updateGolden && !bytes.Equal(fp.AppendText(nil), blob) {
				t.Errorf("fingerprint text rendering drifted from the checked-in form")
			}
			if altFP := fingerprintBytes(t, tc.alt(t)); record.CompareFingerprints(altFP, golden) != "" {
				t.Errorf("alternate execution shape diverges from golden: %s",
					record.CompareFingerprints(altFP, golden))
			}
		})
	}
}

// TestFingerprintTextRoundTrip pins AppendText/ParseFingerprint identity
// and that CompareFingerprints names the right component.
func TestFingerprintTextRoundTrip(t *testing.T) {
	fp := &record.Fingerprint{
		Manifest:     0xdeadbeefcafe0123,
		Events:       42,
		EventsDigest: 0x0123456789abcdef,
		Rounds: []record.RoundDigest{
			{Round: 1, Digest: 0x1111111111111111},
			{Round: 2, Digest: 0x2222222222222222},
		},
	}
	text := fp.AppendText(nil)
	back, err := record.ParseFingerprint(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if msg := record.CompareFingerprints(fp, back); msg != "" {
		t.Fatalf("text round-trip lost content: %s", msg)
	}
	if !bytes.Equal(back.AppendText(nil), text) {
		t.Fatal("re-rendered text differs")
	}

	perturbed := *fp
	perturbed.Rounds = append([]record.RoundDigest(nil), fp.Rounds...)
	perturbed.Rounds[1].Digest++
	msg := record.CompareFingerprints(fp, &perturbed)
	if msg == "" || !bytes.Contains([]byte(msg), []byte("round 2")) {
		t.Errorf("round digest divergence message %q does not name round 2", msg)
	}
	perturbed = *fp
	perturbed.Manifest++
	if msg := record.CompareFingerprints(fp, &perturbed); msg == "" {
		t.Error("manifest hash divergence not reported")
	}
	perturbed = *fp
	perturbed.Events++
	if msg := record.CompareFingerprints(fp, &perturbed); msg == "" {
		t.Error("event count divergence not reported")
	}

	if _, err := record.ParseFingerprint(bytes.NewReader([]byte("not a fingerprint"))); err == nil {
		t.Error("garbage accepted as a fingerprint")
	}
	if _, err := record.ParseFingerprint(bytes.NewReader([]byte("lbrec-fp v1\nmanifest xyz\n"))); err == nil {
		t.Error("malformed manifest line accepted")
	}
}
