package record

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/obs"
)

// ErrTruncated reports a recording that ends without a trailer frame — the
// run crashed, the disk filled, or frames were cut. The frames read before
// the cut are valid; the diff tooling reports truncation as a divergence
// of its own kind rather than an I/O failure.
var ErrTruncated = errors.New("record: recording truncated (no trailer)")

// Frame is one replayed recording entry: exactly one of Event or Snap is
// non-nil. Index counts event+snapshot frames from 0 in file order — the
// coordinate divergence reports use.
type Frame struct {
	Index int64         `json:"index"`
	Event *obs.Event    `json:"event,omitempty"`
	Snap  *obs.Snapshot `json:"snapshot,omitempty"`
}

// Reader streams a recording: NewReader consumes the header and manifest,
// Next returns event/snapshot frames in file order and io.EOF after a
// complete trailer (ErrTruncated if the stream ends without one). All
// structural corruption — bad magic, unknown frame types, out-of-range
// string IDs, counts exceeding the frame, digest mismatches — returns an
// error and never panics: recordings cross trust boundaries like wire
// frames do.
type Reader struct {
	r        *bufio.Reader
	manifest Manifest
	strs     []string
	buf      []byte
	next     int64
	events   int64
	snaps    int64
	digest   uint64
	done     bool
	err      error
}

// NewReader opens a recording stream and reads through its manifest.
func NewReader(r io.Reader) (*Reader, error) {
	rr := &Reader{r: bufio.NewReaderSize(r, 1<<16), digest: fnvOffset}
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(rr.r, head); err != nil {
		return nil, fmt.Errorf("record: reading header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("record: bad magic %q — not a recording", head[:len(magic)])
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("record: format version %d, this reader speaks %d", head[len(magic)], version)
	}
	body, err := rr.readFrame()
	if err != nil {
		return nil, fmt.Errorf("record: reading manifest: %w", err)
	}
	if len(body) < 1 || body[0] != frameManifest {
		return nil, fmt.Errorf("record: first frame is not the manifest")
	}
	if rr.manifest, err = decodeManifest(body[1:]); err != nil {
		return nil, err
	}
	return rr, nil
}

// Manifest returns the recording's manifest.
func (r *Reader) Manifest() Manifest { return r.manifest }

// Counts returns how many event and snapshot frames Next has returned so
// far (after io.EOF: the whole recording's totals, verified against the
// trailer).
func (r *Reader) Counts() (events, snaps int64) { return r.events, r.snaps }

// readFrame reads one length-prefixed frame body and folds it into the
// running digest.
func (r *Reader) readFrame() ([]byte, error) {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("frame length %d exceeds limit", n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	body := r.buf[:n]
	if _, err := io.ReadFull(r.r, body); err != nil {
		// A length prefix without its body is truncation mid-frame.
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	r.digest = fnv1a(r.digest, body)
	return body, nil
}

// Next returns the next event or snapshot frame. It returns io.EOF after a
// verified trailer, ErrTruncated when the stream ends early, and a
// descriptive error on any corruption. Errors are sticky.
func (r *Reader) Next() (Frame, error) {
	if r.err != nil {
		return Frame{}, r.err
	}
	for {
		if r.done {
			r.err = io.EOF
			return Frame{}, r.err
		}
		digestBefore := r.digest // the trailer digest covers frames before it
		body, err := r.readFrame()
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				r.err = ErrTruncated
			} else {
				r.err = fmt.Errorf("record: frame %d: %w", r.next, err)
			}
			return Frame{}, r.err
		}
		if len(body) < 1 {
			r.err = fmt.Errorf("record: frame %d: empty body", r.next)
			return Frame{}, r.err
		}
		switch body[0] {
		case frameStr:
			if len(body)-1 > maxString {
				r.err = fmt.Errorf("record: string of %d bytes exceeds limit", len(body)-1)
				return Frame{}, r.err
			}
			r.strs = append(r.strs, string(body[1:]))
		case frameEvent:
			e, err := r.decodeEvent(body[1:])
			if err != nil {
				r.err = fmt.Errorf("record: frame %d: %w", r.next, err)
				return Frame{}, r.err
			}
			f := Frame{Index: r.next, Event: e}
			r.next++
			r.events++
			return f, nil
		case frameSnap:
			s, err := r.decodeSnap(body[1:])
			if err != nil {
				r.err = fmt.Errorf("record: frame %d: %w", r.next, err)
				return Frame{}, r.err
			}
			f := Frame{Index: r.next, Snap: s}
			r.next++
			r.snaps++
			return f, nil
		case frameEnd:
			if err := r.checkTrailer(body[1:], digestBefore); err != nil {
				r.err = err
				return Frame{}, r.err
			}
			r.done = true
		case frameManifest:
			r.err = fmt.Errorf("record: frame %d: duplicate manifest", r.next)
			return Frame{}, r.err
		default:
			r.err = fmt.Errorf("record: frame %d: unknown frame type 0x%02x", r.next, body[0])
			return Frame{}, r.err
		}
	}
}

// str resolves an interned string ID.
func (r *Reader) str(d *decoder, id uint64, what string) string {
	if d.err != nil {
		return ""
	}
	if id >= uint64(len(r.strs)) {
		d.fail("%s string id %d out of range (%d defined)", what, id, len(r.strs))
		return ""
	}
	return r.strs[id]
}

// decodeEvent decodes one event frame body.
func (r *Reader) decodeEvent(body []byte) (*obs.Event, error) {
	d := &decoder{data: body}
	e := &obs.Event{}
	e.Cat = r.str(d, d.uvarint("event cat"), "cat")
	e.Name = r.str(d, d.uvarint("event name"), "name")
	kind := d.byte("event kind")
	if d.err == nil && kind > byte(obs.KindInstant) {
		d.fail("unknown event kind 0x%02x", kind)
	}
	e.Kind = obs.EventKind(kind)
	e.Tick = d.varint("event tick")
	n := d.count("event arg count", 3)
	for i := 0; i < n && d.err == nil; i++ {
		a := obs.Arg{Key: r.str(d, d.uvarint("arg key"), "arg key")}
		switch d.byte("arg flag") {
		case 0:
			a.Int = d.varint("arg int")
		case 1:
			a.IsFloat = true
			a.Float = d.floatBits("arg float")
		default:
			d.fail("unknown arg flag")
		}
		e.Args = append(e.Args, a)
	}
	if d.err == nil && len(d.data) != 0 {
		d.fail("%d trailing bytes in event", len(d.data))
	}
	return e, d.err
}

// decodeSnap decodes one snapshot frame body.
func (r *Reader) decodeSnap(body []byte) (*obs.Snapshot, error) {
	d := &decoder{data: body}
	s := &obs.Snapshot{Round: d.varint("snapshot round")}
	nc := d.count("counter count", 2)
	for i := 0; i < nc && d.err == nil; i++ {
		m := obs.IntMetric{Name: r.str(d, d.uvarint("counter name"), "counter")}
		cells := d.count("counter cells", 1)
		for j := 0; j < cells && d.err == nil; j++ {
			m.Cells = append(m.Cells, d.varint("counter cell"))
		}
		s.Counters = append(s.Counters, m)
	}
	ng := d.count("gauge count", 2)
	for i := 0; i < ng && d.err == nil; i++ {
		m := obs.FloatMetric{Name: r.str(d, d.uvarint("gauge name"), "gauge")}
		cells := d.count("gauge cells", 8)
		for j := 0; j < cells && d.err == nil; j++ {
			m.Cells = append(m.Cells, d.floatBits("gauge cell"))
		}
		s.Gauges = append(s.Gauges, m)
	}
	nh := d.count("hist count", 2)
	for i := 0; i < nh && d.err == nil; i++ {
		m := obs.HistMetric{Name: r.str(d, d.uvarint("hist name"), "hist")}
		bounds := d.count("hist bounds", 8)
		for j := 0; j < bounds && d.err == nil; j++ {
			m.Bounds = append(m.Bounds, d.floatBits("hist bound"))
		}
		counts := d.count("hist counts", 1)
		for j := 0; j < counts && d.err == nil; j++ {
			m.Counts = append(m.Counts, d.varint("hist counts"))
		}
		s.Hists = append(s.Hists, m)
	}
	if d.err == nil && len(d.data) != 0 {
		d.fail("%d trailing bytes in snapshot", len(d.data))
	}
	return s, d.err
}

// checkTrailer verifies the trailer against what was actually read.
func (r *Reader) checkTrailer(body []byte, digestBefore uint64) error {
	d := &decoder{data: body}
	events := d.uvarint("trailer event count")
	snaps := d.uvarint("trailer snapshot count")
	if d.err != nil {
		return d.err
	}
	if len(d.data) != 8 {
		return fmt.Errorf("record: trailer digest is %d bytes, want 8", len(d.data))
	}
	digest := binary.LittleEndian.Uint64(d.data)
	if int64(events) != r.events || int64(snaps) != r.snaps {
		return fmt.Errorf("record: trailer counts %d events / %d snapshots, read %d / %d",
			events, snaps, r.events, r.snaps)
	}
	if digest != digestBefore {
		return fmt.Errorf("record: trailer digest mismatch — recording corrupted")
	}
	return nil
}

// ReadAll replays a whole recording into memory: the manifest and every
// event/snapshot frame. Intended for conversion and tests; the diff path
// streams instead.
func ReadAll(r io.Reader) (Manifest, []Frame, error) {
	rr, err := NewReader(r)
	if err != nil {
		return Manifest{}, nil, err
	}
	var frames []Frame
	for {
		f, err := rr.Next()
		if err == io.EOF {
			return rr.Manifest(), frames, nil
		}
		if err != nil {
			return rr.Manifest(), frames, err
		}
		frames = append(frames, f)
	}
}
