lbrec-fp v1
manifest c414d76cc856afd7
events 54 5b4bf2af830b6c5f
round 1 93e39ecf00a1c642
round 2 b1323dab5cd4bbfd
round 3 064d16fc624e9456
round 4 2b15a7b3243671df
round 5 c7dd0796d99b5f74
round 6 e57809a4b875d087
