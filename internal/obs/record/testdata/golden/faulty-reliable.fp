lbrec-fp v1
manifest 57f31857917daa94
events 3 c95854c2d3b7f0d8
round 3000 4dfe3216e0dbbfb1
