lbrec-fp v1
manifest 74293119d657fd29
events 3 95c641054506be1b
round 3000 f3f7b1a1609fb12e
