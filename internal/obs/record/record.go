// Package record is the flight recorder of the observability layer: a
// persistent, streaming binary format for repro/internal/obs event traces
// and metric snapshots, plus the divergence forensics built on it — a
// first-divergence bisector over two recordings and compact fingerprints
// for golden-trace regression.
//
// A recording is a run manifest followed by the run's trace, frame by
// frame, in emission order:
//
//	magic "LBREC" | version byte
//	frames: uvarint body length | body
//	body:   type byte | type-specific payload
//
// Frame types: the manifest (exactly once, first), string-table
// definitions (each assigns the next integer ID to a category / event name
// / arg key, so the hot frames carry varint IDs instead of strings), event
// frames, snapshot frames, and a trailer carrying frame counts and a
// running digest so truncation is detectable. Integers are varints and
// floats are fixed-width IEEE-754 bits — the repro/internal/wire encoding
// conventions — so the encoding is exact and canonical: two runs produce
// byte-identical recordings iff their observed transcripts are identical,
// which is what makes lockstep comparison meaningful.
//
// The manifest splits into a Run section (transcript identity: parameters,
// seeds, the workload) and an Env section (environment: worker count,
// transport, host). Only the Run section is hashed and compared, mirroring
// the obs Reg/Env registry split: recordings of the same workload at
// different worker counts or transports are expected — and verified — to
// be bit-identical. Event categories obs.IsEnvCat classifies as
// environmental ("sched", "wire") are likewise recorded but excluded from
// fingerprints and non-strict diffs.
//
// Like repro/internal/obs/export, this package is an I/O boundary: the
// Writer streams to an io.Writer so long runs never buffer their trace in
// memory. Unlike export it performs no wall-clock reads and its output is
// a pure function of the manifest and the observed sequence, so it lives
// under the full deterministic rule set in repro/internal/analysis — file
// I/O is sanctioned here the same way wire's socket I/O is: the bytes
// written are transcript-determined, only their destination is
// environmental.
package record

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Format constants. Version bumps when the frame encoding changes; readers
// reject other versions loudly rather than misparse.
const (
	magic   = "LBREC"
	version = 1
)

// Frame type bytes.
const (
	frameManifest byte = 0x01
	frameStr      byte = 0x02
	frameEvent    byte = 0x03
	frameSnap     byte = 0x04
	frameEnd      byte = 0x05
)

// maxFrame bounds one frame body, like wire's frame protocol: far beyond
// any real event or snapshot, so a corrupt length prefix reads as an error
// instead of an allocation demand.
const maxFrame = 1 << 30

// maxString bounds one interned string; categories, event names, and arg
// keys are short identifiers.
const maxString = 1 << 16

// Field kind bytes in manifest sections.
const (
	fieldInt   byte = 'i'
	fieldFloat byte = 'f'
	fieldStr   byte = 's'
)

// Field is one named manifest value: an int64, a float64, or a string.
type Field struct {
	Key   string  `json:"key"`
	Kind  byte    `json:"-"`
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
	Str   string  `json:"str,omitempty"`
}

// FInt makes an integer manifest field.
func FInt(key string, v int64) Field { return Field{Key: key, Kind: fieldInt, Int: v} }

// FFloat makes a float manifest field.
func FFloat(key string, v float64) Field { return Field{Key: key, Kind: fieldFloat, Float: v} }

// FStr makes a string manifest field.
func FStr(key string, v string) Field { return Field{Key: key, Kind: fieldStr, Str: v} }

// Value renders the field's value in the canonical exact text form (floats
// in shortest round-trip notation).
func (f Field) Value() string {
	switch f.Kind {
	case fieldInt:
		return fmt.Sprintf("%d", f.Int)
	case fieldFloat:
		return fmt.Sprintf("%g", f.Float)
	default:
		return f.Str
	}
}

// Manifest identifies a recording. Workload and Run are the transcript
// identity — two recordings are comparable iff these match bit for bit —
// while Env records the execution environment for forensics (worker count,
// transport, host) and never participates in hashes or compatibility.
type Manifest struct {
	// Workload names the run shape (e.g. "distributed", "gossip",
	// "sbm-sync" for a golden workload).
	Workload string `json:"workload"`
	// Run is the ordered transcript-identity section: every parameter that
	// is allowed to change the observed sequence (seeds, rounds, fault
	// rates, the input graph's digest).
	Run []Field `json:"run"`
	// Env is the ordered environment section: parameters the determinism
	// contract guarantees do NOT change the observed sequence (worker
	// count, transport, state backend) plus host identification.
	Env []Field `json:"env,omitempty"`
}

// appendField appends one field's canonical encoding.
func appendField(b []byte, f Field) []byte {
	b = appendString(b, f.Key)
	b = append(b, f.Kind)
	switch f.Kind {
	case fieldInt:
		b = binary.AppendVarint(b, f.Int)
	case fieldFloat:
		b = appendFloatBits(b, f.Float)
	case fieldStr:
		b = appendString(b, f.Str)
	}
	return b
}

// appendIdentity appends the manifest's transcript-identity encoding — the
// byte sequence Hash digests and manifest comparison uses: format version,
// workload, and the Run section.
func (m Manifest) appendIdentity(b []byte) []byte {
	b = append(b, version)
	b = appendString(b, m.Workload)
	b = binary.AppendUvarint(b, uint64(len(m.Run)))
	for _, f := range m.Run {
		b = appendField(b, f)
	}
	return b
}

// Hash digests the manifest's transcript identity (FNV-1a 64 over the
// canonical encoding of version, workload, and Run — never Env). Equal
// hashes are a necessary condition for two recordings to compare clean.
func (m Manifest) Hash() uint64 {
	return fnv1a(fnvOffset, m.appendIdentity(nil))
}

// encode appends the full manifest frame body (identity section + Env).
func (m Manifest) encode(b []byte) []byte {
	b = append(b, frameManifest)
	b = m.appendIdentity(b)
	b = binary.AppendUvarint(b, uint64(len(m.Env)))
	for _, f := range m.Env {
		b = appendField(b, f)
	}
	return b
}

// Encoding primitives, the wire conventions: uvarint lengths and counts,
// zigzag varints for signed integers, fixed-width IEEE-754 bits for floats
// (exact for every value including negative zero; distinct NaN payloads
// stay distinct).

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendFloatBits appends a float64 as 8 little-endian IEEE-754 bytes.
func appendFloatBits(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// decoder walks one frame body; all methods fail loudly (sticky error) and
// never panic — recordings cross trust boundaries like wire frames do.
type decoder struct {
	data []byte
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("record: "+format, args...)
	}
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Uvarint(d.data)
	if k <= 0 {
		d.fail("truncated %s", what)
		return 0
	}
	d.data = d.data[k:]
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Varint(d.data)
	if k <= 0 {
		d.fail("truncated %s", what)
		return 0
	}
	d.data = d.data[k:]
	return v
}

func (d *decoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 1 {
		d.fail("truncated %s", what)
		return 0
	}
	v := d.data[0]
	d.data = d.data[1:]
	return v
}

func (d *decoder) floatBits(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.fail("truncated %s", what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data))
	d.data = d.data[8:]
	return v
}

func (d *decoder) string(what string) string {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return ""
	}
	if n > maxString {
		d.fail("%s length %d exceeds limit", what, n)
		return ""
	}
	if uint64(len(d.data)) < n {
		d.fail("truncated %s", what)
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}

// count reads an element count and bounds it by the bytes remaining (each
// element costs at least minBytes), so a corrupt count cannot demand an
// absurd allocation.
func (d *decoder) count(what string, minBytes int) int {
	n := d.uvarint(what)
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(len(d.data)/minBytes)+1 {
		d.fail("%s %d exceeds frame", what, n)
		return 0
	}
	return int(n)
}

// field decodes one manifest field.
func (d *decoder) field() Field {
	f := Field{Key: d.string("field key")}
	f.Kind = d.byte("field kind")
	switch f.Kind {
	case fieldInt:
		f.Int = d.varint("field int")
	case fieldFloat:
		f.Float = d.floatBits("field float")
	case fieldStr:
		f.Str = d.string("field string")
	default:
		if d.err == nil {
			d.fail("unknown field kind 0x%02x", f.Kind)
		}
	}
	return f
}

// decodeManifest decodes a manifest frame body (after the type byte).
func decodeManifest(body []byte) (Manifest, error) {
	d := &decoder{data: body}
	var m Manifest
	if v := d.byte("format version"); d.err == nil && v != version {
		return m, fmt.Errorf("record: format version %d, this reader speaks %d", v, version)
	}
	m.Workload = d.string("workload")
	if n := d.count("run field count", 2); d.err == nil {
		for i := 0; i < n; i++ {
			m.Run = append(m.Run, d.field())
		}
	}
	if n := d.count("env field count", 2); d.err == nil {
		for i := 0; i < n; i++ {
			m.Env = append(m.Env, d.field())
		}
	}
	if d.err == nil && len(d.data) != 0 {
		d.fail("%d trailing bytes in manifest", len(d.data))
	}
	return m, d.err
}

// FNV-1a 64, inlined so the package needs no hash/fnv dependency decisions
// — the digest is part of the format and must never drift.
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

func fnv1a(h uint64, data []byte) uint64 {
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}
