package record_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/obs/record"
)

// rewrite decodes a recording, lets mutate edit the manifest and frames,
// and re-encodes — the perturbation tool the bisector tests use to plant
// known divergences.
func rewrite(t *testing.T, rec []byte, mutate func(m *record.Manifest, frames []record.Frame) []record.Frame) []byte {
	t.Helper()
	m, frames, err := record.ReadAll(bytes.NewReader(rec))
	if err != nil {
		t.Fatal(err)
	}
	frames = mutate(&m, frames)
	var buf bytes.Buffer
	w, err := record.NewWriter(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if f.Event != nil {
			w.Emit(*f.Event)
		} else {
			w.Snap(*f.Snap)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// detIndex returns the i-th deterministic-category event's position in
// frames, for planting perturbations where non-strict diffs look.
func detIndex(t *testing.T, frames []record.Frame, i int) int {
	t.Helper()
	seen := 0
	for j, f := range frames {
		if f.Event != nil && !obs.IsEnvCat(f.Event.Cat) {
			if seen == i {
				return j
			}
			seen++
		}
	}
	t.Fatalf("recording has fewer than %d deterministic events", i+1)
	return -1
}

// TestDiffIdenticalAcrossWorkersAndTransports is the acceptance property:
// recordings of the same workload at workers 1 vs 2 vs 8, over the
// in-process and loopback-ring transports, with and without fault
// injection, bisect clean — and share a fingerprint.
func TestDiffIdenticalAcrossWorkersAndTransports(t *testing.T) {
	for _, faults := range []bool{false, true} {
		var model dist.DeliveryModel
		name := "faultfree"
		if faults {
			model = dist.LinkFaults{DropProb: 0.05, DelayProb: 0.1, MaxPhases: 2, Seed: 5}
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			ref := recordDist(t, 1, core.TransportSpec{}, model)
			refFP := fingerprintBytes(t, ref)
			for _, tc := range []struct {
				workers   int
				transport core.TransportSpec
			}{
				{2, core.TransportSpec{}},
				{8, core.TransportSpec{}},
				{1, core.TransportSpec{Kind: "ring"}},
				{8, core.TransportSpec{Kind: "ring"}},
			} {
				rec := recordDist(t, tc.workers, tc.transport, model)
				rep := diffBytes(t, ref, rec, record.DiffOptions{})
				if !rep.Identical {
					var text strings.Builder
					rep.WriteText(&text)
					t.Errorf("workers=%d transport=%q diverges from reference:\n%s",
						tc.workers, tc.transport.Kind, text.String())
					continue
				}
				if rep.Frames == 0 {
					t.Errorf("workers=%d: identical but zero frames compared — recording is empty", tc.workers)
				}
				fp := fingerprintBytes(t, rec)
				if msg := record.CompareFingerprints(fp, refFP); msg != "" {
					t.Errorf("workers=%d transport=%q fingerprint diverges: %s", tc.workers, tc.transport.Kind, msg)
				}
			}
		})
	}
}

// TestDiffAsyncSerialVsBatched: the serial and batched async schedulers
// differ only in "sched" narration, so the default diff is clean (with an
// environment note) while a strict diff surfaces the schedule events.
func TestDiffAsyncSerialVsBatched(t *testing.T) {
	serial := recordAsync(t, 0, core.TransportSpec{}, false, nil)
	batched := recordAsync(t, 4, core.TransportSpec{}, false, nil)
	rep := diffBytes(t, serial, batched, record.DiffOptions{})
	if !rep.Identical {
		var text strings.Builder
		rep.WriteText(&text)
		t.Fatalf("serial vs batched diverges in deterministic frames:\n%s", text.String())
	}
	found := false
	for _, n := range rep.EnvNotes {
		if strings.Contains(n, "environment events skipped") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an environment-events note (batched run emits sched/batch), got %v", rep.EnvNotes)
	}
	strict := diffBytes(t, serial, batched, record.DiffOptions{Strict: true})
	if strict.Identical {
		t.Error("strict diff must surface the batched run's sched events")
	}
	if msg := record.CompareFingerprints(fingerprintBytes(t, serial), fingerprintBytes(t, batched)); msg != "" {
		t.Errorf("serial vs batched fingerprints diverge: %s", msg)
	}
}

// TestDiffMutatedArg: perturbing one event argument yields an "event"
// divergence naming the event, its logical tick, the argument, and both
// sides' values — the forensics the acceptance criterion demands.
func TestDiffMutatedArg(t *testing.T) {
	base := recordDist(t, 2, core.TransportSpec{}, nil)
	var wantTick int64
	var wantKey string
	mutated := rewrite(t, base, func(_ *record.Manifest, frames []record.Frame) []record.Frame {
		// Find a deterministic event with an int arg, past the window-worth
		// of frames so the report's context window fills.
		for i := range frames {
			e := frames[i].Event
			if e == nil || obs.IsEnvCat(e.Cat) || len(e.Args) == 0 || e.Args[0].IsFloat {
				continue
			}
			if frames[i].Index < 20 {
				continue
			}
			wantTick, wantKey = e.Tick, e.Args[0].Key
			e.Args[0].Int++
			return frames
		}
		t.Fatal("no deterministic event with an int arg found")
		return frames
	})
	rep := diffBytes(t, base, mutated, record.DiffOptions{})
	if rep.Identical || rep.Kind != "event" {
		t.Fatalf("got identical=%v kind=%q, want an event divergence", rep.Identical, rep.Kind)
	}
	if rep.A == nil || rep.B == nil || rep.A.Event == nil || rep.B.Event == nil {
		t.Fatal("report missing both-side frames")
	}
	if rep.A.Event.Tick != wantTick {
		t.Errorf("divergent event tick %d, want %d", rep.A.Event.Tick, wantTick)
	}
	a, b := rep.A.Event.Args[0].Int, rep.B.Event.Args[0].Int
	if b != a+1 {
		t.Errorf("both-side values %d vs %d, want off by one", a, b)
	}
	for _, want := range []string{wantKey, "tick"} {
		if !strings.Contains(rep.Detail, want) {
			t.Errorf("detail %q does not name %q", rep.Detail, want)
		}
	}
	if len(rep.Window) == 0 || len(rep.Window) > 8 {
		t.Errorf("window has %d frames, want 1..8", len(rep.Window))
	}
	// The report must round-trip through JSON for CI consumption.
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back record.Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != "event" || back.Pos != rep.Pos {
		t.Errorf("JSON round-trip lost fields: %+v", back)
	}
}

// TestDiffReorderedEvents: swapping two adjacent deterministic events is
// caught at the first swapped position.
func TestDiffReorderedEvents(t *testing.T) {
	base := recordDist(t, 2, core.TransportSpec{}, nil)
	swapped := rewrite(t, base, func(_ *record.Manifest, frames []record.Frame) []record.Frame {
		i, j := detIndex(t, frames, 10), detIndex(t, frames, 11)
		frames[i].Event, frames[j].Event = frames[j].Event, frames[i].Event
		return frames
	})
	rep := diffBytes(t, base, swapped, record.DiffOptions{})
	if rep.Identical {
		t.Fatal("reordered events bisected clean")
	}
	if rep.Kind != "event" && rep.Kind != "type" {
		t.Errorf("kind %q, want event or type", rep.Kind)
	}
}

// TestDiffDroppedFrame: deleting one deterministic event shifts the stream;
// the bisector reports the first position that no longer matches.
func TestDiffDroppedFrame(t *testing.T) {
	base := recordDist(t, 2, core.TransportSpec{}, nil)
	dropped := rewrite(t, base, func(_ *record.Manifest, frames []record.Frame) []record.Frame {
		i := detIndex(t, frames, 10)
		return append(frames[:i], frames[i+1:]...)
	})
	rep := diffBytes(t, base, dropped, record.DiffOptions{})
	if rep.Identical {
		t.Fatal("dropped frame bisected clean")
	}
}

// TestDiffSnapshotDivergence: perturbing one metric cell in one round's
// snapshot is reported as a snapshot divergence naming the metric, the
// cell's logical shard, and both values.
func TestDiffSnapshotDivergence(t *testing.T) {
	base := recordDist(t, 2, core.TransportSpec{}, nil)
	var wantMetric string
	mutated := rewrite(t, base, func(_ *record.Manifest, frames []record.Frame) []record.Frame {
		snaps := 0
		for i := range frames {
			s := frames[i].Snap
			if s == nil {
				continue
			}
			snaps++
			if snaps == 3 && len(s.Counters) > 0 && len(s.Counters[0].Cells) > 2 {
				wantMetric = s.Counters[0].Name
				s.Counters[0].Cells[2] += 5
				return frames
			}
		}
		t.Fatal("no third snapshot with counter cells found")
		return frames
	})
	rep := diffBytes(t, base, mutated, record.DiffOptions{})
	if rep.Identical || rep.Kind != "snapshot" {
		t.Fatalf("got identical=%v kind=%q, want a snapshot divergence", rep.Identical, rep.Kind)
	}
	for _, want := range []string{wantMetric, "shard 2"} {
		if !strings.Contains(rep.Detail, want) {
			t.Errorf("detail %q does not name %q", rep.Detail, want)
		}
	}
}

// TestDiffManifestMismatch: differing Run fields refuse comparison up
// front; differing Env fields only annotate.
func TestDiffManifestMismatch(t *testing.T) {
	base := recordDist(t, 2, core.TransportSpec{}, nil)
	seedChanged := rewrite(t, base, func(m *record.Manifest, frames []record.Frame) []record.Frame {
		for i, f := range m.Run {
			if f.Key == "seed" {
				m.Run[i] = record.FInt("seed", 12)
			}
		}
		return frames
	})
	rep := diffBytes(t, base, seedChanged, record.DiffOptions{})
	if rep.Identical || rep.Kind != "manifest" {
		t.Fatalf("got identical=%v kind=%q, want a manifest divergence", rep.Identical, rep.Kind)
	}
	if len(rep.ManifestDiffs) == 0 || !strings.Contains(rep.ManifestDiffs[0], "seed") {
		t.Errorf("manifest diffs %v do not name the seed", rep.ManifestDiffs)
	}
	// recordDist at different worker counts differs only in Env: covered by
	// TestDiffIdenticalAcrossWorkersAndTransports reporting Identical; here
	// pin that the Env asymmetry surfaces as a note.
	other := recordDist(t, 8, core.TransportSpec{}, nil)
	rep = diffBytes(t, base, other, record.DiffOptions{})
	if !rep.Identical {
		t.Fatal("Env-only manifest difference must not refuse comparison")
	}
	found := false
	for _, n := range rep.EnvNotes {
		if strings.Contains(n, "workers") {
			found = true
		}
	}
	if !found {
		t.Errorf("env notes %v do not mention the differing worker count", rep.EnvNotes)
	}
}

// TestDiffTruncatedSide: one side cut mid-stream bisects as a "truncated"
// divergence, not an I/O error.
func TestDiffTruncatedSide(t *testing.T) {
	base := recordDist(t, 2, core.TransportSpec{}, nil)
	ra, err := record.NewReader(bytes.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := record.NewReader(bytes.NewReader(base[:len(base)/2]))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := record.Diff(ra, rb, record.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical || rep.Kind != "truncated" {
		t.Fatalf("got identical=%v kind=%q, want truncated", rep.Identical, rep.Kind)
	}
	if !strings.Contains(rep.Detail, "recording b") {
		t.Errorf("detail %q does not name the truncated side", rep.Detail)
	}
}

// TestDiffSelf: a recording bisected against itself is identical, with no
// notes.
func TestDiffSelf(t *testing.T) {
	rec := recordAsync(t, 0, core.TransportSpec{}, true, dist.LinkFaults{DropProb: 0.05, Seed: 5})
	rep := diffBytes(t, rec, rec, record.DiffOptions{})
	if !rep.Identical || len(rep.EnvNotes) != 0 {
		var text strings.Builder
		rep.WriteText(&text)
		t.Fatalf("self-diff not clean:\n%s", text.String())
	}
}
