package record_test

// Shared workload recorders: each runs a real clustering workload with a
// flight recorder attached and returns the recording bytes. The bisector
// and golden tests exercise them across worker counts, transports, and
// batch schedules, where the determinism contract promises bit-identical
// deterministic frames.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph/gen"
	"repro/internal/obs"
	"repro/internal/obs/record"
	"repro/internal/rng"
)

// distManifest is the manifest every dist-sync recording in these tests
// carries: identical Run sections (transcript identity), varying Env.
func distManifest(workers int, transport string, faults bool) record.Manifest {
	m := record.Manifest{
		Workload: "dist-sync",
		Run: []record.Field{
			record.FStr("graph", "clustered-ring k=2 size=50 din=12 cross=1 seed=401"),
			record.FFloat("beta", 0.5),
			record.FInt("rounds", 8),
			record.FInt("seed", 11),
		},
		Env: []record.Field{
			record.FInt("workers", int64(workers)),
			record.FStr("transport", transport),
		},
	}
	if faults {
		m.Run = append(m.Run, record.FStr("faults", "drop=0.05 delay=0.1 maxphases=2 seed=5"))
	}
	return m
}

// recordDist runs the synchronous distributed workload with a recorder
// attached and returns the recording.
func recordDist(t *testing.T, workers int, transport core.TransportSpec, model dist.DeliveryModel) []byte {
	t.Helper()
	p, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(401))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := record.NewWriter(&buf, distManifest(workers, transport.Kind, model != nil))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Options{})
	record.Attach(o, w)
	if _, err := core.ClusterDistributed(p.G, core.Params{Beta: 0.5, Rounds: 8, Seed: 11}, core.DistOptions{
		Workers:   workers,
		Transport: transport,
		Model:     model,
		Obs:       o,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// recordAsync runs the asynchronous gossip workload (serial when parallel
// is 0, batched otherwise) with a recorder attached.
func recordAsync(t *testing.T, parallel int, transport core.TransportSpec, reliable bool, model dist.DeliveryModel) []byte {
	t.Helper()
	p, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(403))
	if err != nil {
		t.Fatal(err)
	}
	m := record.Manifest{
		Workload: "async-gossip",
		Run: []record.Field{
			record.FStr("graph", "clustered-ring k=2 size=50 din=12 cross=1 seed=403"),
			record.FFloat("beta", 0.5),
			record.FInt("rounds", 20),
			record.FInt("seed", 13),
			record.FInt("ticks", 3000),
			record.FInt("clockseed", 17),
			record.FInt("mailboxcap", 12),
		},
		Env: []record.Field{record.FInt("parallel", int64(parallel)), record.FStr("transport", transport.Kind)},
	}
	if reliable {
		m.Run = append(m.Run, record.FInt("reliable", 1))
	}
	if model != nil {
		m.Run = append(m.Run, record.FStr("faults", "drop=0.05 seed=5"))
	}
	var buf bytes.Buffer
	w, err := record.NewWriter(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Options{})
	record.Attach(o, w)
	if _, err := core.ClusterAsyncGossip(p.G, core.Params{Beta: 0.5, Rounds: 20, Seed: 13}, core.AsyncOptions{
		Ticks:      3000,
		ClockSeed:  17,
		Parallel:   parallel,
		Reliable:   reliable,
		MailboxCap: 12,
		Transport:  transport,
		Model:      model,
		Obs:        o,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// diffBytes runs the bisector over two recordings.
func diffBytes(t *testing.T, a, b []byte, opt record.DiffOptions) *record.Report {
	t.Helper()
	ra, err := record.NewReader(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := record.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := record.Diff(ra, rb, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// fingerprintBytes computes a recording's fingerprint.
func fingerprintBytes(t *testing.T, rec []byte) *record.Fingerprint {
	t.Helper()
	r, err := record.NewReader(bytes.NewReader(rec))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := record.FingerprintReader(r)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}
