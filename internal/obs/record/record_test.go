package record_test

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/record"
)

// sampleManifest exercises every field kind in both sections.
func sampleManifest() record.Manifest {
	return record.Manifest{
		Workload: "unit",
		Run: []record.Field{
			record.FInt("rounds", 8),
			record.FFloat("beta", 0.5),
			record.FStr("graph", "ring"),
			record.FInt("negative", -3),
		},
		Env: []record.Field{
			record.FInt("workers", 4),
			record.FStr("host", "test"),
		},
	}
}

// sampleEvents covers all kinds, negative ticks, int and float args
// (including negative zero, which the bit encoding must preserve).
func sampleEvents() []obs.Event {
	return []obs.Event{
		{Cat: "dist", Name: "phase", Kind: obs.KindBegin, Tick: 1},
		{Cat: "dist", Name: "phase", Kind: obs.KindEnd, Tick: 1,
			Args: []obs.Arg{obs.I("sent", 42), obs.F("mass", 1.5)}},
		{Cat: "core", Name: "round", Kind: obs.KindInstant, Tick: -7,
			Args: []obs.Arg{obs.F("negzero", math.Copysign(0, -1)), obs.I("neg", -9)}},
		{Cat: "sched", Name: "batch", Kind: obs.KindInstant, Tick: 3,
			Args: []obs.Arg{obs.I("size", 5)}},
	}
}

func sampleSnaps() []obs.Snapshot {
	return []obs.Snapshot{
		{
			Round:    1,
			Counters: []obs.IntMetric{{Name: "sent", Cells: []int64{1, 2, 3, -4}}},
			Gauges:   []obs.FloatMetric{{Name: "mass", Cells: []float64{0.5, math.Copysign(0, -1)}}},
			Hists: []obs.HistMetric{{
				Name:   "msg_words",
				Bounds: []float64{1, 8, 64},
				Counts: []int64{5, 3, 1, 0},
			}},
		},
		{Round: 2, Counters: []obs.IntMetric{{Name: "sent", Cells: []int64{9}}}},
	}
}

// encodeSample writes the sample recording and returns its bytes.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := record.NewWriter(&buf, sampleManifest())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sampleEvents() {
		w.Emit(e)
	}
	for _, s := range sampleSnaps() {
		w.Snap(s)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTrip pins write → read identity for the manifest and every
// frame, in order, including the frame Index coordinates and trailer
// counts.
func TestRoundTrip(t *testing.T) {
	rec := encodeSample(t)
	m, frames, err := record.ReadAll(bytes.NewReader(rec))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, sampleManifest()) {
		t.Errorf("manifest round-trip mismatch:\ngot  %+v\nwant %+v", m, sampleManifest())
	}
	events, snaps := sampleEvents(), sampleSnaps()
	if len(frames) != len(events)+len(snaps) {
		t.Fatalf("got %d frames, want %d", len(frames), len(events)+len(snaps))
	}
	for i, f := range frames {
		if f.Index != int64(i) {
			t.Errorf("frame %d has Index %d", i, f.Index)
		}
		if i < len(events) {
			if f.Event == nil || !reflect.DeepEqual(*f.Event, events[i]) {
				t.Errorf("frame %d: got %+v, want event %+v", i, f, events[i])
			}
		} else {
			want := snaps[i-len(events)]
			if f.Snap == nil || !reflect.DeepEqual(*f.Snap, want) {
				t.Errorf("frame %d: got %+v, want snapshot %+v", i, f, want)
			}
		}
	}
	// Negative zero must survive as negative zero, not plain zero.
	nz := frames[2].Event.Args[0].Float
	if math.Float64bits(nz) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("negative zero decoded as %v (bits %x)", nz, math.Float64bits(nz))
	}
}

// TestWriterByteDeterminism: the same manifest and sequence must produce
// byte-identical recordings — the property lockstep comparison and golden
// digests stand on.
func TestWriterByteDeterminism(t *testing.T) {
	a, b := encodeSample(t), encodeSample(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two recordings of the same sequence differ byte for byte")
	}
}

// TestReaderCounts pins the trailer-verified totals.
func TestReaderCounts(t *testing.T) {
	r, err := record.NewReader(bytes.NewReader(encodeSample(t)))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	events, snaps := r.Counts()
	if events != int64(len(sampleEvents())) || snaps != int64(len(sampleSnaps())) {
		t.Errorf("counts %d/%d, want %d/%d", events, snaps, len(sampleEvents()), len(sampleSnaps()))
	}
	// Errors are sticky: a second Next after EOF stays EOF.
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next after EOF = %v, want io.EOF", err)
	}
}

// drain reads a recording to its end and returns the terminal error
// (io.EOF for a complete recording).
func drain(data []byte) error {
	r, err := record.NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		if _, err := r.Next(); err != nil {
			return err
		}
	}
}

// TestCorruptHeaderRejected: bad magic and unknown versions fail at open.
func TestCorruptHeaderRejected(t *testing.T) {
	rec := encodeSample(t)
	bad := append([]byte("XXREC"), rec[5:]...)
	if _, err := record.NewReader(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v, want magic complaint", err)
	}
	bad = append([]byte(nil), rec...)
	bad[5] = 99
	if _, err := record.NewReader(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: err = %v, want version complaint", err)
	}
}

// TestTruncationDetected: every proper prefix of a recording either fails
// to open or drains to ErrTruncated — never io.EOF, never a panic. Cutting
// the trailer is the canonical crash artifact.
func TestTruncationDetected(t *testing.T) {
	rec := encodeSample(t)
	for cut := 0; cut < len(rec); cut++ {
		err := drain(rec[:cut])
		if err == nil || err == io.EOF {
			t.Fatalf("prefix of %d/%d bytes drained clean (err=%v), want truncation or error", cut, len(rec), err)
		}
	}
	if err := drain(rec[:len(rec)-9]); err != record.ErrTruncated {
		t.Errorf("trailer cut: err = %v, want ErrTruncated", err)
	}
}

// TestCorruptionDetected: flipping any single byte after the header must
// surface as an error by the time the recording is drained — either a
// decode failure at the damaged frame or the trailer digest mismatch.
func TestCorruptionDetected(t *testing.T) {
	rec := encodeSample(t)
	for i := 6; i < len(rec); i++ {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0x40
		if err := drain(bad); err == nil || err == io.EOF {
			t.Fatalf("flipped byte %d went undetected", i)
		}
	}
}

// TestEmptyRecording: a manifest-only recording (no frames) is valid.
func TestEmptyRecording(t *testing.T) {
	var buf bytes.Buffer
	w, err := record.NewWriter(&buf, sampleManifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	m, frames, err := record.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 0 || m.Workload != "unit" {
		t.Errorf("empty recording: %d frames, workload %q", len(frames), m.Workload)
	}
}

// TestManifestHash: the hash covers workload and Run — and nothing else.
func TestManifestHash(t *testing.T) {
	base := sampleManifest()
	envOnly := sampleManifest()
	envOnly.Env = []record.Field{record.FInt("workers", 999)}
	if base.Hash() != envOnly.Hash() {
		t.Error("Env fields changed the manifest hash; only Run may")
	}
	runChanged := sampleManifest()
	runChanged.Run[0] = record.FInt("rounds", 9)
	if base.Hash() == runChanged.Hash() {
		t.Error("Run field change did not change the manifest hash")
	}
	wlChanged := sampleManifest()
	wlChanged.Workload = "other"
	if base.Hash() == wlChanged.Hash() {
		t.Error("workload change did not change the manifest hash")
	}
}

// TestCloseIdempotentAndSticky: double Close is safe; frames after Close
// are dropped rather than corrupting the trailer.
func TestCloseIdempotentAndSticky(t *testing.T) {
	var buf bytes.Buffer
	w, err := record.NewWriter(&buf, sampleManifest())
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(sampleEvents()[0])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Emit(sampleEvents()[1]) // must be ignored
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, frames, err := record.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Errorf("got %d frames, want 1 (post-Close emit must be dropped)", len(frames))
	}
}

// failAfter fails every write past a byte budget, exercising sticky I/O
// errors.
type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.n -= len(p)
	return len(p), nil
}

// TestWriterStickyError: an I/O failure mid-recording is reported by Close.
func TestWriterStickyError(t *testing.T) {
	w, err := record.NewWriter(&failAfter{n: 1 << 10}, sampleManifest())
	if err != nil {
		t.Fatal(err)
	}
	// Overflow the 64 KiB buffer so the failure actually surfaces.
	e := obs.Event{Cat: "dist", Name: "phase", Kind: obs.KindInstant}
	for i := 0; i < 50000; i++ {
		e.Tick = int64(i)
		w.Emit(e)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close reported success after write failures")
	}
	if w.Err() == nil {
		t.Fatal("Err() nil after write failures")
	}
}
