package record

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Fingerprint is a recording's compact transcript identity: the manifest
// hash, a digest over the deterministic event stream, and one digest per
// snapshot (golden-trace regression checks these in, so a future change
// that perturbs the transcript fails naming the first divergent round
// instead of a bare hash mismatch).
//
// Environment event categories (obs.IsEnvCat) are excluded, so recordings
// of one workload at any worker count, transport, or batch schedule share
// a fingerprint — the same invariance the determinism suites pin.
type Fingerprint struct {
	// Manifest is Manifest.Hash(): version, workload, and the Run section.
	Manifest uint64 `json:"manifest"`
	// Events counts deterministic-category events; EventsDigest chains
	// their canonical encodings.
	Events       int64  `json:"events"`
	EventsDigest uint64 `json:"events_digest"`
	// Rounds carries one entry per snapshot frame, in file order.
	Rounds []RoundDigest `json:"rounds"`
}

// RoundDigest is one snapshot's stamp and digest (FNV-1a 64 over the
// canonical snapshot text — the same encoding the determinism suites
// compare, so equal digests mean bit-identical metric cells).
type RoundDigest struct {
	Round  int64  `json:"round"`
	Digest uint64 `json:"digest"`
}

// appendEventCanon appends an event's table-independent canonical encoding
// (raw strings, not interned IDs, so the digest never depends on string-
// table construction order).
func appendEventCanon(b []byte, e *obs.Event) []byte {
	b = appendString(b, e.Cat)
	b = appendString(b, e.Name)
	b = append(b, byte(e.Kind))
	b = binary.AppendVarint(b, e.Tick)
	b = binary.AppendUvarint(b, uint64(len(e.Args)))
	for _, a := range e.Args {
		b = appendString(b, a.Key)
		if a.IsFloat {
			b = append(b, 1)
			b = appendFloatBits(b, a.Float)
		} else {
			b = append(b, 0)
			b = binary.AppendVarint(b, a.Int)
		}
	}
	return b
}

// FingerprintReader consumes a recording stream and computes its
// fingerprint.
func FingerprintReader(r *Reader) (*Fingerprint, error) {
	fp := &Fingerprint{Manifest: r.Manifest().Hash(), EventsDigest: fnvOffset}
	var scratch []byte
	for {
		f, err := r.Next()
		if err == io.EOF {
			return fp, nil
		}
		if err != nil {
			return nil, err
		}
		switch {
		case f.Event != nil:
			if obs.IsEnvCat(f.Event.Cat) {
				continue
			}
			scratch = appendEventCanon(scratch[:0], f.Event)
			fp.EventsDigest = fnv1a(fp.EventsDigest, scratch)
			fp.Events++
		case f.Snap != nil:
			scratch = f.Snap.AppendText(scratch[:0])
			fp.Rounds = append(fp.Rounds, RoundDigest{
				Round:  f.Snap.Round,
				Digest: fnv1a(fnvOffset, scratch),
			})
		}
	}
}

// fpHeader is the first line of the fingerprint text format.
const fpHeader = "lbrec-fp v1"

// AppendText appends the fingerprint's canonical text form — the format
// golden files are checked in as:
//
//	lbrec-fp v1
//	manifest <16 hex>
//	events <count> <16 hex>
//	round <round> <16 hex>
//	...
func (fp *Fingerprint) AppendText(b []byte) []byte {
	b = append(b, fpHeader...)
	b = append(b, '\n')
	b = append(b, "manifest "...)
	b = appendHex64(b, fp.Manifest)
	b = append(b, '\n')
	b = append(b, "events "...)
	b = strconv.AppendInt(b, fp.Events, 10)
	b = append(b, ' ')
	b = appendHex64(b, fp.EventsDigest)
	b = append(b, '\n')
	for _, rd := range fp.Rounds {
		b = append(b, "round "...)
		b = strconv.AppendInt(b, rd.Round, 10)
		b = append(b, ' ')
		b = appendHex64(b, rd.Digest)
		b = append(b, '\n')
	}
	return b
}

// appendHex64 appends v as exactly 16 lowercase hex digits.
func appendHex64(b []byte, v uint64) []byte {
	var tmp [16]byte
	for i := 15; i >= 0; i-- {
		tmp[i] = "0123456789abcdef"[v&0xf]
		v >>= 4
	}
	return append(b, tmp[:]...)
}

// ParseFingerprint parses the text form back.
func ParseFingerprint(r io.Reader) (*Fingerprint, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != fpHeader {
		return nil, fmt.Errorf("record: not a fingerprint file (want %q header)", fpHeader)
	}
	fp := &Fingerprint{}
	sawManifest, sawEvents := false, false
	for line := 2; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		bad := func() error { return fmt.Errorf("record: fingerprint line %d malformed: %q", line, text) }
		switch fields[0] {
		case "manifest":
			if len(fields) != 2 {
				return nil, bad()
			}
			v, err := strconv.ParseUint(fields[1], 16, 64)
			if err != nil {
				return nil, bad()
			}
			fp.Manifest, sawManifest = v, true
		case "events":
			if len(fields) != 3 {
				return nil, bad()
			}
			n, err1 := strconv.ParseInt(fields[1], 10, 64)
			d, err2 := strconv.ParseUint(fields[2], 16, 64)
			if err1 != nil || err2 != nil {
				return nil, bad()
			}
			fp.Events, fp.EventsDigest, sawEvents = n, d, true
		case "round":
			if len(fields) != 3 {
				return nil, bad()
			}
			round, err1 := strconv.ParseInt(fields[1], 10, 64)
			d, err2 := strconv.ParseUint(fields[2], 16, 64)
			if err1 != nil || err2 != nil {
				return nil, bad()
			}
			fp.Rounds = append(fp.Rounds, RoundDigest{Round: round, Digest: d})
		default:
			return nil, bad()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawManifest || !sawEvents {
		return nil, fmt.Errorf("record: fingerprint missing manifest or events line")
	}
	return fp, nil
}

// CompareFingerprints names the first divergent component between two
// fingerprints (conventionally a = the recorded run, b = the golden
// reference). An empty string means they match exactly.
func CompareFingerprints(a, b *Fingerprint) string {
	if a.Manifest != b.Manifest {
		return fmt.Sprintf("manifest hash differs: %016x vs %016x (workload or Run parameters changed)",
			a.Manifest, b.Manifest)
	}
	n := len(a.Rounds)
	if len(b.Rounds) < n {
		n = len(b.Rounds)
	}
	for i := 0; i < n; i++ {
		if a.Rounds[i].Round != b.Rounds[i].Round {
			return fmt.Sprintf("snapshot %d stamped round %d vs round %d", i, a.Rounds[i].Round, b.Rounds[i].Round)
		}
		if a.Rounds[i].Digest != b.Rounds[i].Digest {
			return fmt.Sprintf("first divergent round: round %d snapshot digest %016x vs %016x",
				a.Rounds[i].Round, a.Rounds[i].Digest, b.Rounds[i].Digest)
		}
	}
	if len(a.Rounds) != len(b.Rounds) {
		return fmt.Sprintf("round count differs: %d vs %d (first missing: index %d)",
			len(a.Rounds), len(b.Rounds), n)
	}
	if a.Events != b.Events {
		return fmt.Sprintf("deterministic event count differs: %d vs %d", a.Events, b.Events)
	}
	if a.EventsDigest != b.EventsDigest {
		return fmt.Sprintf("event stream digest differs: %016x vs %016x (same count %d — an event's fields changed)",
			a.EventsDigest, b.EventsDigest, a.Events)
	}
	return ""
}
