package record_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/record"
)

// FuzzRecording drives the reader with arbitrary bytes, mirroring the wire
// codec fuzzers: decoding must never panic or over-allocate, and whatever
// decodes cleanly must re-encode to a recording that decodes to the same
// manifest and frames (round-trip identity on the decoded form — byte
// identity is not required, since an adversarial input may intern strings
// in a non-first-use order the writer never produces).
func FuzzRecording(f *testing.F) {
	// Seed with a real recording and a few structured corruptions of it.
	var buf bytes.Buffer
	w, err := record.NewWriter(&buf, record.Manifest{
		Workload: "fuzz",
		Run:      []record.Field{record.FInt("rounds", 2), record.FFloat("beta", 0.5)},
		Env:      []record.Field{record.FStr("transport", "inprocess")},
	})
	if err != nil {
		f.Fatal(err)
	}
	w.Emit(obs.Event{Cat: "dist", Name: "phase", Kind: obs.KindBegin, Tick: 1,
		Args: []obs.Arg{obs.I("sent", 3), obs.F("mass", 2.5)}})
	w.Emit(obs.Event{Cat: "dist", Name: "phase", Kind: obs.KindEnd, Tick: 1})
	w.Snap(obs.Snapshot{Round: 1,
		Counters: []obs.IntMetric{{Name: "sent", Cells: []int64{1, 2}}},
		Gauges:   []obs.FloatMetric{{Name: "mass", Cells: []float64{0.5}}},
		Hists:    []obs.HistMetric{{Name: "words", Bounds: []float64{1}, Counts: []int64{2, 0}}}})
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)
	f.Add([]byte("LBREC\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, frames, err := record.ReadAll(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics and hangs are the bug class
		}
		var out bytes.Buffer
		w, werr := record.NewWriter(&out, m)
		if werr != nil {
			t.Fatalf("re-encoding accepted manifest failed: %v", werr)
		}
		for _, fr := range frames {
			if fr.Event != nil {
				w.Emit(*fr.Event)
			} else if fr.Snap != nil {
				w.Snap(*fr.Snap)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("re-encoding accepted frames failed: %v", err)
		}
		m2, frames2, err := record.ReadAll(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded recording rejected: %v", err)
		}
		if !manifestsEqual(m, m2) {
			t.Fatalf("manifest drifted through re-encode:\n%+v\n%+v", m, m2)
		}
		if len(frames) != len(frames2) {
			t.Fatalf("frame count drifted: %d vs %d", len(frames), len(frames2))
		}
		for i := range frames {
			if !framesEqual(frames[i], frames2[i]) {
				t.Fatalf("frame %d drifted:\n%+v\n%+v", i, frames[i], frames2[i])
			}
		}
	})
}

// framesEqual compares frames by float bits, not float value, so NaN
// payloads an adversarial input smuggles in still count as round-tripped.
func framesEqual(a, b record.Frame) bool {
	if a.Index != b.Index {
		return false
	}
	switch {
	case a.Event != nil && b.Event != nil:
		ea, eb := a.Event, b.Event
		if ea.Cat != eb.Cat || ea.Name != eb.Name || ea.Kind != eb.Kind ||
			ea.Tick != eb.Tick || len(ea.Args) != len(eb.Args) {
			return false
		}
		for i := range ea.Args {
			x, y := ea.Args[i], eb.Args[i]
			if x.Key != y.Key || x.IsFloat != y.IsFloat || x.Int != y.Int ||
				math.Float64bits(x.Float) != math.Float64bits(y.Float) {
				return false
			}
		}
		return true
	case a.Snap != nil && b.Snap != nil:
		sa, sb := a.Snap, b.Snap
		if sa.Round != sb.Round || len(sa.Counters) != len(sb.Counters) ||
			len(sa.Gauges) != len(sb.Gauges) || len(sa.Hists) != len(sb.Hists) {
			return false
		}
		if !reflect.DeepEqual(sa.Counters, sb.Counters) {
			return false
		}
		for i := range sa.Gauges {
			if sa.Gauges[i].Name != sb.Gauges[i].Name || !floatsBitsEqual(sa.Gauges[i].Cells, sb.Gauges[i].Cells) {
				return false
			}
		}
		for i := range sa.Hists {
			if sa.Hists[i].Name != sb.Hists[i].Name ||
				!floatsBitsEqual(sa.Hists[i].Bounds, sb.Hists[i].Bounds) ||
				!reflect.DeepEqual(sa.Hists[i].Counts, sb.Hists[i].Counts) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// manifestsEqual compares manifests with float-bits semantics, for the
// same NaN reason.
func manifestsEqual(a, b record.Manifest) bool {
	fields := func(x, y []record.Field) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i].Key != y[i].Key || x[i].Kind != y[i].Kind || x[i].Int != y[i].Int ||
				x[i].Str != y[i].Str || math.Float64bits(x[i].Float) != math.Float64bits(y[i].Float) {
				return false
			}
		}
		return true
	}
	return a.Workload == b.Workload && fields(a.Run, b.Run) && fields(a.Env, b.Env)
}

func floatsBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
