package obs

// Deterministic metric names registered by the runtime hooks. The per-shard
// cells of the dist counters are keyed by the sender's (sent/words/dropped)
// or destination's (delivered/rejected) logical shard.
const (
	MetricSent      = "dist_sent_total"
	MetricWords     = "dist_words_total"
	MetricDropped   = "dist_dropped_total"
	MetricDelivered = "dist_delivered_total"
	MetricRejected  = "dist_rejected_total"

	MetricMass      = "core_shard_mass"
	MetricNNZ       = "core_shard_nnz"
	MetricImbalance = "core_load_imbalance"
	MetricMaxState  = "core_max_state"
	MetricStateNNZ  = "core_state_nnz"

	// Environment metrics (Env registry): cells are wire worker shards,
	// which DO vary with the worker count — deliberately excluded from the
	// deterministic snapshot fingerprint.
	MetricWireFrames = "wire_frames_total"
	MetricWireBytes  = "wire_bytes_total"

	// Partition balance (Env registry): the per-worker-shard cost of the
	// active node split and its max/mean imbalance ratio. Worker shards vary
	// with the worker count, so these live next to the wire metrics.
	MetricPartCost      = "partition_shard_cost"
	MetricPartImbalance = "partition_imbalance"
)

// NetMetrics is the dist.Network hook bundle: per-logical-shard traffic
// tallies. Each observation is keyed by a node's ShardMap shard, so every
// cell is a sum of schedule-independent contributions and the whole bundle
// is bit-identical across worker counts, transports, and batch schedules.
type NetMetrics struct {
	m         *ShardMap
	sent      *Counter
	words     *Counter
	dropped   *Counter
	delivered *Counter
	rejected  *Counter
}

// NewNetMetrics registers (or reuses) the dist traffic metrics for an
// n-node network in r, sharded over the given logical shard count.
func NewNetMetrics(r *Registry, n, shards int) *NetMetrics {
	if shards <= 0 {
		shards = DefaultShards
	}
	return &NetMetrics{
		m:         NewShardMap(n, shards),
		sent:      r.Counter(MetricSent, shards),
		words:     r.Counter(MetricWords, shards),
		dropped:   r.Counter(MetricDropped, shards),
		delivered: r.Counter(MetricDelivered, shards),
		rejected:  r.Counter(MetricRejected, shards),
	}
}

// OnSend tallies one message of the given word size against the sender's
// logical shard.
func (nm *NetMetrics) OnSend(from int, words int64) {
	s := nm.m.Of(from)
	nm.sent.Add(s, 1)
	nm.words.Add(s, words)
}

// OnDrop tallies one substrate-lost message against the sender's shard.
func (nm *NetMetrics) OnDrop(from int) {
	nm.dropped.Add(nm.m.Of(from), 1)
}

// OnDeliver tallies k messages landing in node to's mailbox.
func (nm *NetMetrics) OnDeliver(to int, k int64) {
	nm.delivered.Add(nm.m.Of(to), k)
}

// OnReject tallies k mailbox-overflow rejections at node to.
func (nm *NetMetrics) OnReject(to int, k int64) {
	nm.rejected.Add(nm.m.Of(to), k)
}

// nnzBounds are the state-size histogram buckets (entries per node state).
var nnzBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}

// EngineMetrics is the core engine hook bundle: per-logical-shard node-state
// mass and nnz gauges, the load-imbalance ratio, and a state-size histogram.
// All values are written by observeRound's serial ascending-node scan on the
// driving goroutine, so determinism is by construction.
type EngineMetrics struct {
	m         *ShardMap
	mass      *Gauge
	nnz       *Gauge
	imbalance *Gauge
	maxState  *Gauge
	stateNNZ  *Histogram
}

// NewEngineMetrics registers (or reuses) the engine metrics for an n-node
// engine in r, sharded over the given logical shard count.
func NewEngineMetrics(r *Registry, n, shards int) *EngineMetrics {
	if shards <= 0 {
		shards = DefaultShards
	}
	return &EngineMetrics{
		m:         NewShardMap(n, shards),
		mass:      r.Gauge(MetricMass, shards),
		nnz:       r.Gauge(MetricNNZ, shards),
		imbalance: r.Gauge(MetricImbalance, 1),
		maxState:  r.Gauge(MetricMaxState, 1),
		stateNNZ:  r.Histogram(MetricStateNNZ, nnzBounds),
	}
}

// Bounds returns the logical shard boundary list for the engine's node
// range, so the caller can scan shard by shard.
func (em *EngineMetrics) Bounds() []int { return em.m.Bounds() }

// SetShard stores one shard's scanned mass and nnz.
func (em *EngineMetrics) SetShard(s int, mass float64, nnz int64) {
	em.mass.Set(s, mass)
	em.nnz.Set(s, float64(nnz))
}

// SetSummary stores the scalar round summary: the load-imbalance ratio
// (max shard nnz / mean shard nnz) and the maximum per-node state size.
func (em *EngineMetrics) SetSummary(imbalance float64, maxState int64) {
	em.imbalance.Set(0, imbalance)
	em.maxState.Set(0, float64(maxState))
}

// ObserveNNZ tallies one node's state entry count into the histogram.
func (em *EngineMetrics) ObserveNNZ(k int) {
	em.stateNNZ.Observe(float64(k))
}

// WireMetrics is the wire.Socket hook bundle: frames and bytes flushed per
// destination worker shard. Worker shards vary with the worker count, so
// this bundle registers into an Observer's Env registry, never Reg.
type WireMetrics struct {
	frames *Counter
	bytes  *Counter
}

// NewWireMetrics registers (or reuses) the socket metrics with one cell per
// worker shard.
func NewWireMetrics(r *Registry, shards int) *WireMetrics {
	return &WireMetrics{
		frames: r.Counter(MetricWireFrames, shards),
		bytes:  r.Counter(MetricWireBytes, shards),
	}
}

// OnFlush tallies one barrier round-trip of the given total byte size on a
// destination shard's connection.
func (wm *WireMetrics) OnFlush(shard int, bytes int64) {
	wm.frames.Add(shard, 1)
	wm.bytes.Add(shard, bytes)
}

// PartitionMetrics is the partition balance hook bundle: one gauge cell per
// worker shard holding that shard's cost under the active cost function,
// plus the max/mean imbalance ratio the split achieves. Cells are worker
// shards — they vary with the worker count — so like WireMetrics the bundle
// registers into an Observer's Env registry, never Reg: the deterministic
// snapshot fingerprint stays invariant across partition modes and worker
// counts, while the balance a run achieved remains inspectable.
type PartitionMetrics struct {
	cost      *Gauge
	imbalance *Gauge
}

// NewPartitionMetrics registers (or reuses) the partition balance gauges
// with one cost cell per worker shard.
func NewPartitionMetrics(r *Registry, shards int) *PartitionMetrics {
	return &PartitionMetrics{
		cost:      r.Gauge(MetricPartCost, shards),
		imbalance: r.Gauge(MetricPartImbalance, 1),
	}
}

// SetSplit publishes one (re)partition: the cost owned by each worker shard
// and the implied max-shard/mean-shard ratio (1.0 is a perfect split; 0
// when the total cost is zero).
func (pm *PartitionMetrics) SetSplit(shardCosts []int64) {
	var max, total int64
	for s, c := range shardCosts {
		pm.cost.Set(s, float64(c))
		total += c
		if c > max {
			max = c
		}
	}
	ratio := 0.0
	if total > 0 {
		ratio = float64(max) * float64(len(shardCosts)) / float64(total)
	}
	pm.imbalance.Set(0, ratio)
}
