package obs

import "strconv"

// IntMetric is one counter's values at snapshot time.
type IntMetric struct {
	Name  string  `json:"name"`
	Cells []int64 `json:"cells"`
}

// Total returns the sum over cells.
func (m IntMetric) Total() int64 {
	var t int64
	for _, v := range m.Cells {
		t += v
	}
	return t
}

// FloatMetric is one gauge's values at snapshot time.
type FloatMetric struct {
	Name  string    `json:"name"`
	Cells []float64 `json:"cells"`
}

// HistMetric is one histogram's buckets at snapshot time (Counts has one
// extra overflow bucket past the last bound).
type HistMetric struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot is the full state of a Registry at one round boundary, in metric
// registration order. Snapshots of deterministic registries are themselves
// deterministic: AppendText serialises every cell exactly, so two runs agree
// iff their snapshot texts are byte-identical — the transcript-style
// equality the obs test suites pin.
type Snapshot struct {
	Round    int64         `json:"round"`
	Counters []IntMetric   `json:"counters,omitempty"`
	Gauges   []FloatMetric `json:"gauges,omitempty"`
	Hists    []HistMetric  `json:"hists,omitempty"`
}

// AppendText appends a canonical, exact text encoding of the snapshot.
// Floats use strconv's shortest round-trip form, so distinct bit patterns
// produce distinct text (NaN payloads aside, which no metric emits).
func (s Snapshot) AppendText(b []byte) []byte {
	b = append(b, "round="...)
	b = strconv.AppendInt(b, s.Round, 10)
	b = append(b, '\n')
	for _, c := range s.Counters {
		b = append(b, "counter "...)
		b = append(b, c.Name...)
		for _, v := range c.Cells {
			b = append(b, ' ')
			b = strconv.AppendInt(b, v, 10)
		}
		b = append(b, '\n')
	}
	for _, g := range s.Gauges {
		b = append(b, "gauge "...)
		b = append(b, g.Name...)
		for _, v := range g.Cells {
			b = append(b, ' ')
			b = strconv.AppendFloat(b, v, 'g', -1, 64)
		}
		b = append(b, '\n')
	}
	for _, h := range s.Hists {
		b = append(b, "hist "...)
		b = append(b, h.Name...)
		for _, v := range h.Counts {
			b = append(b, ' ')
			b = strconv.AppendInt(b, v, 10)
		}
		b = append(b, '\n')
	}
	return b
}

// SnapshotsText renders a snapshot sequence as one canonical string, the
// fingerprint the determinism suites compare across worker counts and
// transports.
func SnapshotsText(snaps []Snapshot) string {
	var b []byte
	for _, s := range snaps {
		b = s.AppendText(b)
	}
	return string(b)
}
