package export

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/obs"
)

// HTTPOptions configures the live introspection handler.
type HTTPOptions struct {
	// Observer supplies the registries, snapshots, and trace the endpoints
	// expose. May be nil (a daemon with environment stats only).
	Observer *obs.Observer
	// Extra, when non-nil, is polled per request for live environment
	// readings (e.g. a wire daemon's connection and frame counts); they are
	// appended to /debug/obs and /debug/obs/metrics.
	Extra func() []obs.KV
}

// obsOverview is the /debug/obs JSON document.
type obsOverview struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Shards        int               `json:"shards,omitempty"`
	Events        int               `json:"events"`
	Snapshots     int               `json:"snapshots"`
	Latest        *obs.Snapshot     `json:"latest,omitempty"`
	Extra         []obs.KV          `json:"extra,omitempty"`
	Endpoints     map[string]string `json:"endpoints"`
}

// Handler builds the /debug/obs + pprof introspection mux:
//
//	/debug/obs          JSON overview (uptime, latest snapshot, extras)
//	/debug/obs/metrics  Prometheus-style text exposition (Reg + Env + extras)
//	/debug/obs/trace    Chrome trace_event JSON of the recorded events
//	/debug/pprof/...    the standard runtime profiles
//
// It is intended for long-lived daemons (lbcluster serve) and for
// inspection after a run; concurrent requests only read atomics and
// driving-goroutine-owned slices that are stable between rounds.
func Handler(opt HTTPOptions) http.Handler {
	// Uptime is the one wall-clock reading of the obs layer; it exists only
	// in this HTTP view and never reaches a transcript or a file exporter.
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, req *http.Request) {
		o := opt.Observer
		ov := obsOverview{
			UptimeSeconds: time.Since(start).Seconds(),
			Endpoints: map[string]string{
				"metrics": "/debug/obs/metrics",
				"trace":   "/debug/obs/trace",
				"pprof":   "/debug/pprof/",
			},
		}
		if o != nil {
			ov.Shards = o.Shards
			ov.Events = len(o.Events())
			snaps := o.Snapshots()
			ov.Snapshots = len(snaps)
			if len(snaps) > 0 {
				ov.Latest = &snaps[len(snaps)-1]
			}
		}
		if opt.Extra != nil {
			ov.Extra = opt.Extra()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ov)
	})
	mux.HandleFunc("/debug/obs/metrics", func(w http.ResponseWriter, req *http.Request) {
		var b []byte
		if o := opt.Observer; o != nil {
			b = AppendProm(b, o.Reg)
			b = AppendProm(b, o.Env)
		}
		if opt.Extra != nil {
			b = AppendExtras(b, opt.Extra())
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.Write(b)
	})
	mux.HandleFunc("/debug/obs/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var events []obs.Event
		if o := opt.Observer; o != nil {
			events = o.Events()
		}
		WriteChromeTrace(w, events)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
