package export

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func sampleObserver() *obs.Observer {
	o := obs.NewObserver(obs.Options{Trace: true, Shards: 2})
	c := o.Reg.Counter("dist_sent_total", 2)
	c.Add(0, 10)
	c.Add(1, 20)
	g := o.Reg.Gauge("core_shard_mass", 2)
	g.Set(0, 1.5)
	g.Set(1, 2.5)
	h := o.Reg.Histogram("core_state_nnz", []float64{1, 4})
	h.Observe(0)
	h.Observe(3)
	h.Observe(99)
	o.Env.Counter("wire_frames_total", 1).Add(0, 7)
	o.Begin("dist", "phase", 0, obs.I("phase", 0))
	o.End("dist", "phase", 1, obs.I("sent", 30))
	o.Instant("core", "round", 1, obs.F("mass", 4.0))
	o.Snap(1)
	return o
}

// TestChromeTraceParses validates the trace_event output end to end: parses
// as JSON, contains matched B/E phase spans and category metadata.
func TestChromeTraceParses(t *testing.T) {
	o := sampleObserver()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, o.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	var begins, ends, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "B":
			begins++
			if e.Name != "phase" || e.Cat != "dist" {
				t.Errorf("unexpected begin event %+v", e)
			}
		case "E":
			ends++
		case "i":
			instants++
		}
	}
	if begins != 1 || ends != 1 || instants != 1 {
		t.Fatalf("span counts B=%d E=%d i=%d, want 1/1/1", begins, ends, instants)
	}
	if doc.Metadata["clock"] != "logical" {
		t.Fatalf("metadata missing logical clock marker: %v", doc.Metadata)
	}
}

// TestChromeTraceDeterministic: the writer is a pure function of the event
// sequence.
func TestChromeTraceDeterministic(t *testing.T) {
	o := sampleObserver()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, o.Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, o.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("trace output differs between identical writes")
	}
}

func TestPromExposition(t *testing.T) {
	o := sampleObserver()
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dist_sent_total counter",
		`dist_sent_total{shard="0"} 10`,
		`dist_sent_total{shard="1"} 20`,
		`core_shard_mass{shard="1"} 2.5`,
		`core_state_nnz_bucket{le="1"} 1`,
		`core_state_nnz_bucket{le="4"} 2`,
		`core_state_nnz_bucket{le="+Inf"} 3`,
		"core_state_nnz_count 3",
		"wire_frames_total 7",
		"# round=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPHandlerEndpoints(t *testing.T) {
	o := sampleObserver()
	h := Handler(HTTPOptions{
		Observer: o,
		Extra:    func() []obs.KV { return []obs.KV{{Key: "wire_server_connections", Val: 3}} },
	})

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/debug/obs")
	if rec.Code != 200 {
		t.Fatalf("/debug/obs: status %d", rec.Code)
	}
	var ov map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &ov); err != nil {
		t.Fatalf("/debug/obs JSON: %v", err)
	}
	if ov["snapshots"].(float64) != 1 || ov["events"].(float64) != 3 {
		t.Fatalf("/debug/obs overview wrong: %v", ov)
	}

	rec = get("/debug/obs/metrics")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "dist_sent_total") ||
		!strings.Contains(rec.Body.String(), "wire_server_connections 3") {
		t.Fatalf("/debug/obs/metrics: status %d body %q", rec.Code, rec.Body.String())
	}

	rec = get("/debug/obs/trace")
	if rec.Code != 200 {
		t.Fatalf("/debug/obs/trace: status %d", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/obs/trace JSON: %v", err)
	}

	rec = get("/debug/pprof/")
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/: status %d", rec.Code)
	}
}
