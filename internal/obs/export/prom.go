package export

import (
	"io"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// appendFloat renders a float in the shortest exact form, matching the
// snapshot fingerprint encoding.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendSample renders one `name{shard="i"} value` sample (the label is
// omitted for single-cell metrics).
func appendSample(b []byte, name string, cellIdx, cells int, renderVal func([]byte) []byte) []byte {
	b = append(b, name...)
	if cells > 1 {
		b = append(b, `{shard="`...)
		b = strconv.AppendInt(b, int64(cellIdx), 10)
		b = append(b, `"}`...)
	}
	b = append(b, ' ')
	b = renderVal(b)
	return append(b, '\n')
}

// AppendProm appends a Prometheus-style text exposition of the registry's
// current values: counters and gauges one sample per shard cell, histograms
// in the cumulative `_bucket{le=...}` + `_count` form. Output is a pure
// function of the registry contents (registration order, exact values).
func AppendProm(b []byte, r *obs.Registry) []byte {
	if r == nil {
		return b
	}
	return AppendPromSnapshot(b, r.Snapshot(0))
}

// AppendPromSnapshot renders one snapshot's metrics in the same exposition
// form — the seam `lbcluster obs-convert -format prom` replays recorded
// snapshots through, so a recording converts to exactly the text a live
// registry would have exposed.
func AppendPromSnapshot(b []byte, s obs.Snapshot) []byte {
	for _, c := range s.Counters {
		b = append(b, "# TYPE "...)
		b = append(b, c.Name...)
		b = append(b, " counter\n"...)
		for i, v := range c.Cells {
			v := v
			b = appendSample(b, c.Name, i, len(c.Cells), func(b []byte) []byte {
				return strconv.AppendInt(b, v, 10)
			})
		}
	}
	for _, g := range s.Gauges {
		b = append(b, "# TYPE "...)
		b = append(b, g.Name...)
		b = append(b, " gauge\n"...)
		for i, v := range g.Cells {
			v := v
			b = appendSample(b, g.Name, i, len(g.Cells), func(b []byte) []byte {
				return appendFloat(b, v)
			})
		}
	}
	for _, h := range s.Hists {
		b = append(b, "# TYPE "...)
		b = append(b, h.Name...)
		b = append(b, " histogram\n"...)
		var cum int64
		for i, cnt := range h.Counts {
			cum += cnt
			b = append(b, h.Name...)
			b = append(b, `_bucket{le="`...)
			if i < len(h.Bounds) {
				b = appendFloat(b, h.Bounds[i])
			} else {
				b = append(b, "+Inf"...)
			}
			b = append(b, `"} `...)
			b = strconv.AppendInt(b, cum, 10)
			b = append(b, '\n')
		}
		b = append(b, h.Name...)
		b = append(b, "_count "...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	return b
}

// AppendExtras appends live environment readings as untyped samples.
func AppendExtras(b []byte, extras []obs.KV) []byte {
	for _, kv := range extras {
		b = append(b, kv.Key...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, kv.Val, 10)
		b = append(b, '\n')
	}
	return b
}

// WriteMetrics writes the full metrics artifact for an observer: the
// deterministic registry, the environment registry, and the per-round
// snapshot log as trailing comment lines (so the file stays parseable as
// Prometheus text exposition).
func WriteMetrics(w io.Writer, o *obs.Observer) error {
	var b []byte
	if o != nil {
		b = AppendProm(b, o.Reg)
		b = AppendProm(b, o.Env)
		if snaps := o.Snapshots(); len(snaps) > 0 {
			b = append(b, "# per-round snapshots (canonical fingerprint encoding)\n"...)
			text := strings.TrimSuffix(obs.SnapshotsText(snaps), "\n")
			for _, line := range strings.Split(text, "\n") {
				b = append(b, "# "...)
				b = append(b, line...)
				b = append(b, '\n')
			}
		}
	}
	_, err := w.Write(b)
	return err
}
