// Package export serialises repro/internal/obs data for external tooling:
// Chrome trace_event JSON (chrome://tracing, Perfetto), Prometheus-style
// text exposition, and a live HTTP introspection handler for long-lived
// daemons.
//
// This package is the one place observability may touch the wall clock (the
// HTTP handler's uptime reading); it is registered as an ordered-output —
// not deterministic — package in repro/internal/analysis/config.go, so the
// wallclock analyzer keeps enforcing everywhere else while the file writers
// here stay byte-deterministic (they serialise logical clocks only).
package export

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
)

// tickScale maps one logical tick to trace microseconds, spreading spans so
// per-phase events stay readable in the viewer.
const tickScale = 1000

// chromeEvent is one trace_event record. Args is a map, which
// encoding/json serialises with sorted keys — deterministic output without
// any map iteration in this package.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of the trace_event spec.
type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// WriteChromeTrace writes the events as Chrome trace_event JSON. Timestamps
// are logical ticks scaled by tickScale; each event category becomes one
// trace "process" (named via process_name metadata), in first-appearance
// order. The output is a pure function of the event sequence.
func WriteChromeTrace(w io.Writer, events []obs.Event) error {
	pidOf := make(map[string]int)
	var trace chromeTrace
	for _, e := range events {
		pid, ok := pidOf[e.Cat]
		if !ok {
			pid = len(pidOf) + 1
			pidOf[e.Cat] = pid
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": e.Cat},
			})
		}
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ts:   e.Tick * tickScale,
			Pid:  pid,
			Tid:  1,
		}
		switch e.Kind {
		case obs.KindBegin:
			ce.Ph = "B"
		case obs.KindEnd:
			ce.Ph = "E"
		default:
			ce.Ph = "i"
			ce.S = "t"
		}
		if len(e.Args) > 0 {
			args := make(map[string]any, len(e.Args))
			for _, a := range e.Args {
				if a.IsFloat {
					args[a.Key] = a.Float
				} else {
					args[a.Key] = a.Int
				}
			}
			ce.Args = args
		}
		trace.TraceEvents = append(trace.TraceEvents, ce)
	}
	trace.Metadata = map[string]string{
		"clock": "logical",
		"unit":  fmt.Sprintf("1 tick = %d trace-us", tickScale),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
