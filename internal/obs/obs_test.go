package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestShardMapMatchesPartitionRule pins the logical shard rule to the same
// contiguous balanced split as sched.Partition: bounds[s] = s*n/shards.
func TestShardMapMatchesPartitionRule(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{0, 8}, {1, 8}, {7, 8}, {8, 8}, {100, 8}, {101, 3}, {5, 1},
	} {
		m := NewShardMap(tc.n, tc.shards)
		b := m.Bounds()
		if len(b) != tc.shards+1 || b[0] != 0 || b[tc.shards] != tc.n {
			t.Fatalf("n=%d shards=%d: bad bounds %v", tc.n, tc.shards, b)
		}
		for s := 0; s < tc.shards; s++ {
			if want := s * tc.n / tc.shards; b[s] != want {
				t.Errorf("n=%d shards=%d: bounds[%d] = %d, want %d", tc.n, tc.shards, s, b[s], want)
			}
			for v := b[s]; v < b[s+1]; v++ {
				if m.Of(v) != s {
					t.Fatalf("n=%d shards=%d: Of(%d) = %d, want %d", tc.n, tc.shards, v, m.Of(v), s)
				}
			}
		}
	}
}

// TestCounterConcurrentAddsDeterministic checks the commutativity argument:
// the same multiset of (cell, delta) observations yields identical cells no
// matter how they are interleaved across goroutines.
func TestCounterConcurrentAddsDeterministic(t *testing.T) {
	run := func(goroutines int) []int64 {
		r := NewRegistry()
		c := r.Counter("t", 8)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < 4096; i += goroutines {
					c.Add(i%8, int64(i))
				}
			}(g)
		}
		wg.Wait()
		return c.Cells()
	}
	want := run(1)
	for _, g := range []int{2, 8} {
		got := run(g)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("goroutines=%d: cell %d = %d, want %d", g, i, got[i], want[i])
			}
		}
	}
}

func TestRegistryIdempotentReuse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x", 4)
	c1.Add(1, 5)
	if c2 := r.Counter("x", 4); c2 != c1 {
		t.Fatal("re-registration did not return the existing counter")
	}
	if got := r.Counter("x", 4).Cell(1); got != 5 {
		t.Fatalf("reused counter lost state: %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	r.Counter("x", 8)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // <=1: {0,1}; <=2: {1.5,2}; <=4: {3,4}; over: {5,100}
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
}

// TestSnapshotTextCanonical pins the fingerprint encoding: registration
// order, exact integers, shortest-round-trip floats.
func TestSnapshotTextCanonical(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs", 2)
	g := r.Gauge("mass", 2)
	h := r.Histogram("sizes", []float64{1})
	c.Add(0, 3)
	c.Add(1, 4)
	g.Set(0, 0.1)
	g.Set(1, 2)
	h.Observe(0.5)
	h.Observe(9)
	got := SnapshotsText([]Snapshot{r.Snapshot(7)})
	want := "round=7\ncounter msgs 3 4\ngauge mass 0.1 2\nhist sizes 1 1\n"
	if got != want {
		t.Fatalf("snapshot text:\n got %q\nwant %q", got, want)
	}
}

// TestObserverNilSafe: every method must be a no-op on a nil observer (the
// disabled configuration of every hook).
func TestObserverNilSafe(t *testing.T) {
	var o *Observer
	o.Begin("c", "n", 0)
	o.End("c", "n", 0)
	o.Instant("c", "n", 0, I("k", 1), F("f", 0.5))
	o.Snap(0)
	if o.Snapshots() != nil || o.Events() != nil {
		t.Fatal("nil observer returned data")
	}
}

func TestObserverTraceOrder(t *testing.T) {
	o := NewObserver(Options{Trace: true})
	o.Begin("dist", "phase", 0, I("phase", 0))
	o.Instant("core", "round", 1, F("mass", 12.5))
	o.End("dist", "phase", 1)
	ev := o.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	if ev[0].Kind != KindBegin || ev[1].Kind != KindInstant || ev[2].Kind != KindEnd {
		t.Fatalf("event kinds out of order: %+v", ev)
	}
	if ev[1].Args[0].Key != "mass" || !ev[1].Args[0].IsFloat || ev[1].Args[0].Float != 12.5 {
		t.Fatalf("instant args wrong: %+v", ev[1].Args)
	}
}

func TestObserverSnapshots(t *testing.T) {
	o := NewObserver(Options{})
	c := o.Reg.Counter("x", 2)
	c.Add(0, 1)
	o.Snap(1)
	c.Add(1, 2)
	o.Snap(2)
	text := SnapshotsText(o.Snapshots())
	if !strings.Contains(text, "round=1\ncounter x 1 0\n") ||
		!strings.Contains(text, "round=2\ncounter x 1 2\n") {
		t.Fatalf("snapshot sequence wrong:\n%s", text)
	}
}

// TestRingTrace pins the fixed-capacity tracer: last-N retention, oldest
// eviction with a drop count, and in-order replay through Events.
func TestRingTrace(t *testing.T) {
	r := NewRingTrace(3)
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := int64(0); i < 5; i++ {
		r.Emit(Event{Cat: "dist", Name: "phase", Kind: KindInstant, Tick: i})
	}
	if r.Len() != 3 || r.Dropped() != 2 {
		t.Fatalf("len %d dropped %d, want 3 and 2", r.Len(), r.Dropped())
	}
	ev := r.Events()
	for i, want := range []int64{2, 3, 4} {
		if ev[i].Tick != want {
			t.Fatalf("event %d tick %d, want %d (ring %+v)", i, ev[i].Tick, want, ev)
		}
	}
	// The ring is the one tracer documented safe for concurrent Emit.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{Cat: "wire", Name: "relay", Tick: int64(i)})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 3 || len(r.Events()) != 3 {
		t.Fatalf("ring len %d after concurrent emits, want 3", r.Len())
	}
	// Capacity floor: a degenerate capacity still retains the latest event.
	one := NewRingTrace(0)
	one.Emit(Event{Tick: 1})
	one.Emit(Event{Tick: 2})
	if ev := one.Events(); len(ev) != 1 || ev[0].Tick != 2 {
		t.Fatalf("capacity-floor ring retained %+v", ev)
	}
}

// TestMultiTracer: the tee fans out in order, collapses degenerate cases,
// and stays exportable when it wraps a retaining tracer.
func TestMultiTracer(t *testing.T) {
	if MultiTracer() != nil || MultiTracer(nil, nil) != nil {
		t.Fatal("empty tee should be nil")
	}
	tr := &Trace{}
	if MultiTracer(nil, tr) != Tracer(tr) {
		t.Fatal("single-member tee should collapse to the member")
	}
	var order []string
	f := TracerFunc(func(e Event) { order = append(order, "f:"+e.Name) })
	tee := MultiTracer(tr, f)
	o := &Observer{Tracer: tee}
	o.Instant("core", "round", 3)
	if len(tr.Events()) != 1 || len(order) != 1 || order[0] != "f:round" {
		t.Fatalf("tee did not fan out: trace %d func %v", len(tr.Events()), order)
	}
	if got := o.Events(); len(got) != 1 || got[0].Name != "round" {
		t.Fatalf("tee lost EventSource: %+v", got)
	}
}

// TestObserverSnapSink: the recording seam sees every snapshot, in order,
// identical to what the observer retains.
func TestObserverSnapSink(t *testing.T) {
	o := NewObserver(Options{})
	var sunk []Snapshot
	o.SnapSink = func(s Snapshot) { sunk = append(sunk, s) }
	c := o.Reg.Counter("x", 1)
	c.Add(0, 1)
	o.Snap(1)
	c.Add(0, 1)
	o.Snap(2)
	if SnapshotsText(sunk) != SnapshotsText(o.Snapshots()) {
		t.Fatalf("sink saw %q, observer kept %q", SnapshotsText(sunk), SnapshotsText(o.Snapshots()))
	}
}

// TestIsEnvCat pins the environment-category set the divergence tooling
// excludes from lockstep comparison.
func TestIsEnvCat(t *testing.T) {
	for _, tc := range []struct {
		cat string
		env bool
	}{{"sched", true}, {"wire", true}, {"dist", false}, {"core", false}} {
		if IsEnvCat(tc.cat) != tc.env {
			t.Errorf("IsEnvCat(%q) = %v, want %v", tc.cat, !tc.env, tc.env)
		}
	}
}
