// Package obs is the repo's deterministic-first observability layer: event
// tracing on the runtime's logical clocks, per-round metric snapshots, and
// the data model the exporters in repro/internal/obs/export serialise.
//
// The package is transcript-adjacent, so it lives under the determinism
// contract itself (it is listed in repro/internal/analysis's deterministic
// packages). Two design rules make observation safe:
//
//   - Trace events are emitted only from the driving goroutine — phase
//     barriers, engine round ends, async window commits — and timestamped by
//     logical clocks (dist phase number, async tick, engine round), never by
//     wall time. Per-message observations flow through sharded atomic
//     counters instead of events, so worker scheduling can never reorder the
//     event stream.
//   - Metrics shard by a FIXED logical shard count (ShardMap), not by the
//     worker count: integer atomic adds commute, so the per-cell tallies are
//     bit-identical for any worker count, transport, and async batch
//     schedule. Float-valued metrics (mass, imbalance) are computed at
//     snapshot time by serial ascending-node scans on the driving goroutine.
//
// Everything here is optional and nil-safe: a nil *Observer (and nil metric
// bundles at the instrumented call sites) compiles to a pointer test on the
// hot paths, pinned by the zero-alloc guard in repro/internal/dist.
package obs

import "sync"

// DefaultShards is the logical shard count metrics use when Options.Shards
// is unset. It is fixed (not derived from the worker count) on purpose: the
// per-shard tallies are part of the deterministic snapshot fingerprint.
const DefaultShards = 8

// EventKind distinguishes span boundaries from point events, mirroring the
// Chrome trace_event phases the exporter maps them to.
type EventKind uint8

const (
	// KindBegin opens a span (Chrome "B").
	KindBegin EventKind = iota
	// KindEnd closes the innermost open span of the same Cat/Name ("E").
	KindEnd
	// KindInstant is a point event ("i").
	KindInstant
)

// Arg is one key/value attachment of an Event: an int64 or a float64.
// A fixed struct (rather than any) keeps event emission allocation-free
// beyond the args slice itself.
type Arg struct {
	Key     string
	Int     int64
	Float   float64
	IsFloat bool
}

// I makes an integer event argument.
func I(key string, v int64) Arg { return Arg{Key: key, Int: v} }

// F makes a float event argument.
func F(key string, v float64) Arg { return Arg{Key: key, Float: v, IsFloat: true} }

// Event is one trace record on a logical clock. Cat groups events into
// exporter processes ("dist", "core", "sched", "wire"); Tick is the value of
// whichever logical clock owns the category (dist phase number, engine
// round, async schedule step).
type Event struct {
	Cat  string
	Name string
	Kind EventKind
	Tick int64
	Args []Arg
}

// Tracer consumes events. Implementations are called only from the driving
// goroutine and must not block.
type Tracer interface {
	Emit(Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Event)

// Emit implements Tracer.
func (f TracerFunc) Emit(e Event) { f(e) }

// Trace is the recording Tracer: it retains every event in emission order
// (which the driving-goroutine-only rule makes deterministic). It grows
// without bound, which is right for batch runs; long-lived processes should
// use RingTrace instead.
type Trace struct {
	events []Event
}

// Emit implements Tracer.
func (t *Trace) Emit(e Event) { t.events = append(t.events, e) }

// Events returns the recorded events in emission order. The slice is owned
// by the Trace; callers must not mutate it.
func (t *Trace) Events() []Event { return t.events }

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// EventSource is implemented by tracers that can replay what they retained
// (Trace fully, RingTrace the last-N window). Observer.Events and the HTTP
// trace endpoint use it, so any retaining tracer is exportable.
type EventSource interface {
	Events() []Event
}

// RingTrace is the fixed-capacity tracer for resident processes (lbcluster
// serve): it retains the most recent capacity events and counts what it
// evicted. Unlike the other tracers it is safe for concurrent Emit — a
// daemon's per-connection pumps all feed one ring — at the cost of a mutex;
// its event order is arrival order, which is deterministic only when a
// single driving goroutine emits (the in-run tracers' rule). A flight
// recorder wanting every event should use record.Writer instead.
type RingTrace struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest retained event
	n       int // retained count, <= len(buf)
	dropped int64
}

// NewRingTrace creates a ring retaining the last capacity events
// (capacity < 1 is treated as 1).
func NewRingTrace(capacity int) *RingTrace {
	if capacity < 1 {
		capacity = 1
	}
	return &RingTrace{buf: make([]Event, capacity)}
}

// Emit implements Tracer, evicting the oldest event when full.
func (r *RingTrace) Emit(e Event) {
	r.mu.Lock()
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
	} else {
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (r *RingTrace) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Len returns the number of retained events.
func (r *RingTrace) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many events were evicted to make room.
func (r *RingTrace) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// multiTracer fans every event out to several tracers in order.
type multiTracer []Tracer

// Emit implements Tracer.
func (m multiTracer) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// Events implements EventSource by delegating to the first retaining
// tracer, so wrapping a Trace in a tee keeps it exportable.
func (m multiTracer) Events() []Event {
	for _, t := range m {
		if s, ok := t.(EventSource); ok {
			return s.Events()
		}
	}
	return nil
}

// MultiTracer combines tracers: every event goes to each in order. Nil
// members are skipped; zero or one effective member collapses to nil or the
// member itself. The flight recorder uses it to stream to disk while an
// in-memory Trace keeps the run exportable.
func MultiTracer(ts ...Tracer) Tracer {
	var m multiTracer
	for _, t := range ts {
		if t != nil {
			m = append(m, t)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}

// IsEnvCat reports whether an event category describes the execution
// environment rather than the deterministic transcript: "sched" events
// narrate the batch schedule (present only when the async scheduler runs
// batched) and "wire" events narrate socket/daemon traffic (dependent on the
// machine split). Environment categories are the event-stream analogue of
// the Env metric registry: exporters include them, but the divergence
// tooling in repro/internal/obs/record excludes them from fingerprints and
// lockstep comparison, so recordings of the same workload at different
// worker counts, transports, and batch schedules compare bit-identical.
func IsEnvCat(cat string) bool { return cat == "sched" || cat == "wire" }

// KV is one named integer reading, the currency of live environment stats
// (e.g. a wire daemon's connection count) that exporters append to metric
// output without registering a metric.
type KV struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// Options configures NewObserver.
type Options struct {
	// Trace, when true, installs a recording *Trace as the Tracer.
	Trace bool
	// Shards is the logical shard count for per-shard metrics; <= 0 means
	// DefaultShards.
	Shards int
}

// Observer bundles the three observation channels the runtime hooks feed:
// an optional Tracer, the deterministic metric Registry (Reg — everything in
// it is part of the snapshot fingerprint), and the environment Registry (Env
// — worker-count- or wire-dependent readings like socket frames/bytes,
// excluded from deterministic snapshots). A nil *Observer disables
// everything; all methods are nil-safe.
type Observer struct {
	Tracer Tracer
	// Reg holds deterministic metrics: bit-identical across worker counts,
	// transports, and async batch schedules. Snap fingerprints only Reg.
	Reg *Registry
	// Env holds environment-dependent metrics (wire frames/bytes vary with
	// the worker-shard count); exporters include it, snapshots do not.
	Env *Registry
	// Shards is the logical shard count metric bundles built against this
	// observer use; <= 0 is treated as DefaultShards.
	Shards int
	// SnapSink, when non-nil, additionally receives every snapshot Snap
	// records, in order, on the driving goroutine — the seam the flight
	// recorder streams snapshots to disk through.
	SnapSink func(Snapshot)

	snaps []Snapshot
}

// NewObserver creates an observer with fresh registries (and a recording
// trace when opt.Trace is set).
func NewObserver(opt Options) *Observer {
	shards := opt.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	o := &Observer{Reg: NewRegistry(), Env: NewRegistry(), Shards: shards}
	if opt.Trace {
		o.Tracer = &Trace{}
	}
	return o
}

// shards returns the effective logical shard count.
func (o *Observer) shards() int {
	if o.Shards <= 0 {
		return DefaultShards
	}
	return o.Shards
}

// Begin emits a span-open event. No-op on a nil observer or tracer.
func (o *Observer) Begin(cat, name string, tick int64, args ...Arg) {
	o.emit(Event{Cat: cat, Name: name, Kind: KindBegin, Tick: tick, Args: args})
}

// End emits a span-close event. No-op on a nil observer or tracer.
func (o *Observer) End(cat, name string, tick int64, args ...Arg) {
	o.emit(Event{Cat: cat, Name: name, Kind: KindEnd, Tick: tick, Args: args})
}

// Instant emits a point event. No-op on a nil observer or tracer.
func (o *Observer) Instant(cat, name string, tick int64, args ...Arg) {
	o.emit(Event{Cat: cat, Name: name, Kind: KindInstant, Tick: tick, Args: args})
}

func (o *Observer) emit(e Event) {
	if o == nil || o.Tracer == nil {
		return
	}
	o.Tracer.Emit(e)
}

// Snap records a deterministic snapshot of Reg under the given round (or
// tick) stamp. Call it from the driving goroutine at round boundaries.
// No-op on a nil observer or registry.
func (o *Observer) Snap(round int64) {
	if o == nil || o.Reg == nil {
		return
	}
	s := o.Reg.Snapshot(round)
	o.snaps = append(o.snaps, s)
	if o.SnapSink != nil {
		o.SnapSink(s)
	}
}

// Snapshots returns the recorded snapshots in order. The slice is owned by
// the observer.
func (o *Observer) Snapshots() []Snapshot {
	if o == nil {
		return nil
	}
	return o.snaps
}

// Events returns the recorded trace events when the Tracer retains them (a
// recording *Trace, a *RingTrace's live window, or a tee over one), and nil
// otherwise.
func (o *Observer) Events() []Event {
	if o == nil {
		return nil
	}
	if t, ok := o.Tracer.(EventSource); ok {
		return t.Events()
	}
	return nil
}
