package baselines

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/spectral"
)

// OrthIterResult carries the output of decentralised orthogonal iteration.
type OrthIterResult struct {
	Labels []int
	// Rounds is the number of orthogonal-iteration steps (V ← P·V).
	Rounds int
	// GossipRounds is the number of communication rounds each distributed
	// orthonormalisation costs: Kempe–McSherry compute the k×k Gram matrix
	// by push-sum gossip, which needs Θ(log n/(1−λ₂)) rounds — the global
	// mixing time. This is the term the paper's comparison targets: on a
	// graph of loosely connected expanders λ₂ → 1 and the gossip stalls.
	GossipRounds int
	// TotalRounds = Rounds · GossipRounds, the wall-clock round count of the
	// full protocol.
	TotalRounds int
	// Words is the message complexity: every communication round pushes k
	// values along every directed edge (2·m·k words).
	Words int64
	// Residual is the final subspace movement measure (max over columns of
	// 1−|⟨v_i, prev_i⟩|).
	Residual float64
	// Lambda2 is the Rayleigh-quotient estimate of λ₂ used for the gossip
	// round estimate.
	Lambda2 float64
}

// KempeMcSherry emulates the decentralised spectral algorithm of Kempe and
// McSherry (STOC'04): orthogonal iteration V ← P·V with a distributed
// orthonormalisation after every push. We execute the linear algebra
// centrally (numerically identical to their protocol without gossip error)
// but charge the communication its true distributed cost, which is what the
// paper's comparison targets: the iteration count is governed by the global
// spectral gap λ_k/λ_{k+1}-style ratios, so on a graph of loosely connected
// expanders it needs poly(n) rounds while the matching process needs
// polylog.
func KempeMcSherry(g *graph.Graph, k, maxRounds int, tol float64, seed uint64) (*OrthIterResult, error) {
	if k < 1 || k > g.N() {
		return nil, fmt.Errorf("baselines: invalid k=%d", k)
	}
	if maxRounds <= 0 {
		return nil, fmt.Errorf("baselines: maxRounds must be positive")
	}
	if tol <= 0 {
		tol = 1e-6
	}
	n := g.N()
	op := spectral.NewWalkOperator(g)
	r := rng.New(seed)
	// Random start, orthonormalised.
	v := make([][]float64, k)
	for i := range v {
		v[i] = make([]float64, n)
		for j := range v[i] {
			v[i][j] = r.NormFloat64()
		}
	}
	v = linalg.GramSchmidt(v, 1e-12)
	if len(v) < k {
		return nil, fmt.Errorf("baselines: degenerate random start")
	}
	tmp := make([]float64, n)
	prev := make([][]float64, k)
	for i := range prev {
		prev[i] = linalg.Clone(v[i])
	}
	rounds := 0
	residual := 1.0
	for ; rounds < maxRounds; rounds++ {
		for i := range v {
			op.Apply(tmp, v[i])
			copy(v[i], tmp)
		}
		v = linalg.GramSchmidt(v, 1e-12)
		if len(v) < k {
			return nil, fmt.Errorf("baselines: subspace collapsed at round %d", rounds)
		}
		// Subspace movement: 1 - |<v_i, prev_i>| per column (after sign
		// alignment); converged when every column is stable.
		residual = 0
		for i := range v {
			d := linalg.Dot(v[i], prev[i])
			if d < 0 {
				d = -d
			}
			if 1-d > residual {
				residual = 1 - d
			}
			copy(prev[i], v[i])
		}
		if residual < tol {
			rounds++
			break
		}
	}
	// Estimate λ₂ by the Rayleigh quotient of the second converged vector
	// (for k == 1 the walk is ergodic on one block and gossip mixes in one
	// hop scale; fall back to λ₁ = 1 guarded below).
	lambda2 := 0.0
	if k >= 2 {
		op.Apply(tmp, v[1])
		lambda2 = linalg.Dot(v[1], tmp)
	}
	gossip := 1
	if gap := 1 - lambda2; gap > 1e-9 {
		gossip = int(math.Ceil(math.Log(float64(n)+1) / gap))
	} else {
		gossip = maxRounds
	}
	if gossip < 1 {
		gossip = 1
	}
	totalRounds := rounds * gossip
	words := int64(totalRounds) * int64(2*g.M()) * int64(k)
	points := EmbedRows(v, true)
	km, err := KMeans(points, k, seed^0x6e6d7065, 200)
	if err != nil {
		return nil, err
	}
	return &OrthIterResult{
		Labels:       km.Labels,
		Rounds:       rounds,
		GossipRounds: gossip,
		TotalRounds:  totalRounds,
		Words:        words,
		Residual:     residual,
		Lambda2:      lambda2,
	}, nil
}
