package baselines

import (
	"math"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
)

func TestKMeansWellSeparated(t *testing.T) {
	// Three tight blobs on a line.
	var points [][]float64
	r := rng.New(1)
	for c := 0; c < 3; c++ {
		for i := 0; i < 20; i++ {
			points = append(points, []float64{float64(10 * c), r.NormFloat64() * 0.1})
		}
	}
	truth := make([]int, 60)
	for i := range truth {
		truth[i] = i / 20
	}
	km, err := KMeans(points, 3, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := metrics.Misclassified(truth, km.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis != 0 {
		t.Errorf("kmeans misclassified %d well-separated points", mis)
	}
	if km.Inertia > 5 {
		t.Errorf("inertia %v too large", km.Inertia)
	}
}

func TestKMeansValidation(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 0, 1, 10); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KMeans(pts, 3, 1, 10); err == nil {
		t.Error("n<k should fail")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, 2, 1, 10); err == nil {
		t.Error("ragged should fail")
	}
}

func TestKMeansDeterminism(t *testing.T) {
	r := rng.New(2)
	points := make([][]float64, 50)
	for i := range points {
		points[i] = []float64{r.NormFloat64(), r.NormFloat64()}
	}
	a, err := KMeans(points, 4, 9, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 4, 9, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("kmeans not deterministic")
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	km, err := KMeans(points, 2, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if km.Inertia != 0 {
		t.Errorf("inertia %v for identical points", km.Inertia)
	}
}

func TestEmbedRows(t *testing.T) {
	vecs := [][]float64{{3, 0}, {4, 1}}
	pts := EmbedRows(vecs, false)
	if len(pts) != 2 || pts[0][0] != 3 || pts[0][1] != 4 || pts[1][1] != 1 {
		t.Errorf("embed: %v", pts)
	}
	norm := EmbedRows(vecs, true)
	if math.Abs(norm[0][0]-0.6) > 1e-12 || math.Abs(norm[0][1]-0.8) > 1e-12 {
		t.Errorf("normalised: %v", norm)
	}
	// Zero row survives normalisation.
	z := EmbedRows([][]float64{{0, 1}, {0, 2}}, true)
	if z[0][0] != 0 || z[0][1] != 0 {
		t.Errorf("zero row: %v", z)
	}
	if EmbedRows(nil, true) != nil {
		t.Error("empty input")
	}
}

func TestSpectralClusterRecoversPlanted(t *testing.T) {
	r := rng.New(3)
	p, err := gen.ClusteredRing(3, 60, 20, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SpectralCluster(p.G, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.02 {
		t.Errorf("spectral clustering misclassification %v", mis)
	}
	if len(res.Eigenvalues) != 3 {
		t.Error("eigenvalues missing")
	}
}

func TestSpectralClusterValidation(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := SpectralCluster(g, 0, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := SpectralCluster(g, 6, 1); err == nil {
		t.Error("k>n should fail")
	}
}

func TestLabelPropagationCaveman(t *testing.T) {
	p := gen.Caveman(4, 8)
	res, err := LabelPropagation(p.G, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	ari, err := metrics.ARI(p.Truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.8 {
		t.Errorf("LPA ARI %v on caveman graph", ari)
	}
	if res.Words <= 0 || res.Rounds <= 0 {
		t.Error("accounting missing")
	}
}

func TestLabelPropagationValidation(t *testing.T) {
	if _, err := LabelPropagation(gen.Cycle(4), 0, 1); err == nil {
		t.Error("maxRounds=0 should fail")
	}
}

func TestLabelPropagationIsolatedNodes(t *testing.T) {
	// Graph with no edges: everyone keeps their own label.
	b := gen.Cycle(3) // connected baseline sanity
	_ = b
	g, err := gen.RandomRegular(6, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := LabelPropagation(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 6 {
		t.Errorf("isolated nodes should keep unique labels, got %d", len(seen))
	}
}

func TestAveragingDynamicsTwoClusters(t *testing.T) {
	r := rng.New(11)
	p, err := gen.ClusteredRing(2, 80, 30, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AveragingDynamics(p.G, 2, 30, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.1 {
		t.Errorf("averaging dynamics misclassification %v", mis)
	}
	if res.Words != int64(30*2*p.G.M()) {
		t.Errorf("word count %d", res.Words)
	}
}

func TestAveragingDynamicsMultiCluster(t *testing.T) {
	r := rng.New(13)
	p, err := gen.ClusteredRing(3, 60, 24, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AveragingDynamics(p.G, 3, 40, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.15 {
		t.Errorf("averaging dynamics k=3 misclassification %v", mis)
	}
}

func TestAveragingDynamicsValidation(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := AveragingDynamics(g, 1, 5, 1, 1); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := AveragingDynamics(g, 2, 0, 1, 1); err == nil {
		t.Error("rounds=0 should fail")
	}
	if _, err := AveragingDynamics(g, 6, 5, 1, 1); err == nil {
		t.Error("k>n should fail")
	}
}

func TestKempeMcSherryRecoversPlanted(t *testing.T) {
	r := rng.New(17)
	p, err := gen.ClusteredRing(3, 60, 20, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KempeMcSherry(p.G, 3, 2000, 1e-9, 7)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.05 {
		t.Errorf("KM misclassification %v after %d rounds", mis, res.Rounds)
	}
	if res.Words <= 0 {
		t.Error("missing word accounting")
	}
}

func TestKempeMcSherryRoundsGrowWithMixing(t *testing.T) {
	// Tighter cluster coupling (smaller cut) → slower global mixing → more
	// rounds to converge. This is the qualitative separation the paper
	// claims against [21].
	r := rng.New(19)
	loose, err := gen.ClusteredRing(2, 50, 12, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := gen.ClusteredRing(2, 50, 18, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := KempeMcSherry(loose.G, 2, 5000, 1e-8, 7)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := KempeMcSherry(tight.G, 2, 5000, 1e-8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rt.TotalRounds <= rl.TotalRounds {
		t.Errorf("expected more total rounds on tight clusters: %d vs %d", rt.TotalRounds, rl.TotalRounds)
	}
	if rt.GossipRounds <= rl.GossipRounds {
		t.Errorf("gossip rounds should grow with mixing time: %d vs %d", rt.GossipRounds, rl.GossipRounds)
	}
}

func TestKempeMcSherryValidation(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := KempeMcSherry(g, 0, 10, 1e-6, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KempeMcSherry(g, 2, 0, 1e-6, 1); err == nil {
		t.Error("maxRounds=0 should fail")
	}
}

func TestMultilevelBisectBarbell(t *testing.T) {
	p := gen.Barbell(10)
	res, err := MultilevelBisect(p.G, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CutSize != 1 {
		t.Errorf("barbell cut %d want 1", res.CutSize)
	}
	mis, err := metrics.Misclassified(p.Truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis != 0 {
		t.Errorf("barbell misclassified %d", mis)
	}
}

func TestMultilevelBisectClusteredRing(t *testing.T) {
	r := rng.New(23)
	p, err := gen.ClusteredRing(2, 100, 16, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultilevelBisect(p.G, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal cut is the cross matching: 100 edges.
	if res.CutSize > 130 {
		t.Errorf("cut %d far from optimal 100", res.CutSize)
	}
	mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.05 {
		t.Errorf("bisect misclassification %v", mis)
	}
}

func TestMultilevelKWay(t *testing.T) {
	r := rng.New(29)
	p, err := gen.ClusteredRing(4, 50, 16, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultilevelKWay(p.G, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.1 {
		t.Errorf("k-way misclassification %v (cut %d)", mis, res.CutSize)
	}
	// Exactly 4 labels used.
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Errorf("labels used: %d", len(seen))
	}
}

func TestMultilevelValidation(t *testing.T) {
	g := gen.Cycle(6)
	if _, err := MultilevelBisect(g, 0, 1); err == nil {
		t.Error("target 0 should fail")
	}
	if _, err := MultilevelBisect(g, 1, 1); err == nil {
		t.Error("target 1 should fail")
	}
	if _, err := MultilevelKWay(g, 0, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := MultilevelKWay(g, 7, 1); err == nil {
		t.Error("k>n should fail")
	}
	if res, err := MultilevelKWay(g, 1, 1); err != nil || res.CutSize != 0 {
		t.Error("k=1 should be the trivial partition")
	}
}

func TestMultilevelLargeInstance(t *testing.T) {
	// Exercise at least two coarsening levels.
	r := rng.New(31)
	p, err := gen.ClusteredRing(2, 400, 10, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultilevelBisect(p.G, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels < 3 {
		t.Errorf("expected a deeper hierarchy, levels=%d", res.Levels)
	}
	mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.05 {
		t.Errorf("large bisect misclassification %v", mis)
	}
}
