package baselines

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/loadbalance"
	"repro/internal/rng"
)

// AveragingResult carries the output of the averaging-dynamics baseline.
type AveragingResult struct {
	Labels []int
	Rounds int
	// Words is the message complexity: 2m words per round per run (every
	// node sends its value to every neighbour).
	Words int64
}

// AveragingDynamics is the Becchetti et al. (SODA'17)-style distributed
// clustering baseline: every node starts with an independent Rademacher
// value, all nodes average with *all* their neighbours every round, and the
// early-time values reveal the cluster structure. For k=2 their sign-based
// rule applies directly; for general k we follow the standard extension of
// running `runs` independent dynamics and clustering the resulting
// R^runs-embedding with k-means.
//
// The crucial contrast with the paper's algorithm is communication: each
// round costs Θ(m) messages here versus O(n) in the matching model, which
// experiment T3 quantifies.
func AveragingDynamics(g *graph.Graph, k, rounds, runs int, seed uint64) (*AveragingResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("baselines: k must be >= 2")
	}
	if rounds <= 0 || runs <= 0 {
		return nil, fmt.Errorf("baselines: rounds and runs must be positive")
	}
	n := g.N()
	if n < k {
		return nil, fmt.Errorf("baselines: n=%d < k=%d", n, k)
	}
	r := rng.New(seed)
	embedding := make([][]float64, n)
	for v := range embedding {
		embedding[v] = make([]float64, runs)
	}
	var words int64
	d := g.MaxDegree()
	for run := 0; run < runs; run++ {
		y0 := make([]float64, n)
		for v := range y0 {
			if r.Bool() {
				y0[v] = 1
			} else {
				y0[v] = -1
			}
		}
		diff, err := loadbalance.NewDiffusion(g, d, y0, 0.5)
		if err != nil {
			return nil, err
		}
		words += int64(diff.Run(rounds))
		y := diff.Load()
		// Centre the run: cluster structure lives in the deviation from the
		// global average.
		var avg float64
		for _, x := range y {
			avg += x
		}
		avg /= float64(n)
		for v := 0; v < n; v++ {
			embedding[v][run] = y[v] - avg
		}
	}
	var labels []int
	if k == 2 && runs == 1 {
		// Sign rule from the two-cluster analysis.
		labels = make([]int, n)
		for v := 0; v < n; v++ {
			if embedding[v][0] >= 0 {
				labels[v] = 1
			}
		}
	} else {
		km, err := KMeans(embedding, k, seed^0xbecc8e77, 200)
		if err != nil {
			return nil, err
		}
		labels = km.Labels
	}
	return &AveragingResult{Labels: labels, Rounds: rounds, Words: words}, nil
}
