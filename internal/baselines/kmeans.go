// Package baselines implements the comparison algorithms the paper's related
// work discusses, all from scratch on the same substrates as the main
// algorithm:
//
//   - spectral clustering (Lanczos embedding + k-means), the centralised
//     gold standard the theory is benchmarked against;
//   - label propagation, the cheap practical baseline;
//   - Becchetti et al.-style averaging dynamics (SODA'17), which exchange
//     messages with *all* neighbours every round;
//   - Kempe–McSherry decentralised orthogonal iteration (STOC'04), whose
//     round count is governed by the global mixing time;
//   - a METIS-style multilevel partitioner (heavy-edge matching coarsening,
//     greedy growing, Fiduccia–Mattheyses refinement), the tool that
//     dominates practice.
//
// Each distributed baseline reports its message complexity in words so the
// T3 experiment can compare against Theorem 1.1(2).
package baselines

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// KMeansResult carries the clustering produced by KMeans.
type KMeansResult struct {
	Labels     []int
	Centers    [][]float64
	Inertia    float64 // sum of squared distances to assigned centers
	Iterations int
}

// KMeans clusters the rows of points into k clusters using k-means++
// seeding and Lloyd iterations. It is deterministic for a fixed seed.
func KMeans(points [][]float64, k int, seed uint64, maxIter int) (*KMeansResult, error) {
	n := len(points)
	if k <= 0 {
		return nil, fmt.Errorf("baselines: k must be positive")
	}
	if n < k {
		return nil, fmt.Errorf("baselines: %d points for k=%d", n, k)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("baselines: ragged points")
		}
	}
	r := rng.New(seed)
	centers := kmeansPlusPlus(points, k, r)
	labels := make([]int, n)
	counts := make([]int, k)
	iter := 0
	for ; iter < maxIter; iter++ {
		changed := 0
		inertia := 0.0
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				d := sqDist(p, centers[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed++
			}
			inertia += bestD
		}
		// Recompute centers.
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
			counts[c] = 0
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for j, x := range p {
				centers[c][j] += x
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// center to keep exactly k clusters.
				far, farD := 0, -1.0
				for i, p := range points {
					d := sqDist(p, centers[labels[i]])
					if d > farD {
						far, farD = i, d
					}
				}
				copy(centers[c], points[far])
				labels[far] = c
				counts[c] = 1
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centers[c] {
				centers[c][j] *= inv
			}
		}
		if changed == 0 {
			break
		}
	}
	// Final inertia with settled centers.
	inertia := 0.0
	for i, p := range points {
		inertia += sqDist(p, centers[labels[i]])
	}
	return &KMeansResult{Labels: labels, Centers: centers, Inertia: inertia, Iterations: iter}, nil
}

// kmeansPlusPlus chooses k initial centers with the k-means++ D² weighting.
func kmeansPlusPlus(points [][]float64, k int, r *rng.RNG) [][]float64 {
	n := len(points)
	dim := len(points[0])
	centers := make([][]float64, 0, k)
	first := r.Intn(n)
	c0 := make([]float64, dim)
	copy(c0, points[first])
	centers = append(centers, c0)
	d2 := make([]float64, n)
	for i, p := range points {
		d2[i] = sqDist(p, c0)
	}
	for len(centers) < k {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total <= 0 {
			idx = r.Intn(n) // all points coincide with centers
		} else {
			target := r.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := make([]float64, dim)
		copy(c, points[idx])
		centers = append(centers, c)
		for i, p := range points {
			if d := sqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
