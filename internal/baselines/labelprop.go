package baselines

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// LabelPropResult carries the output of label propagation.
type LabelPropResult struct {
	Labels []int
	Rounds int
	// Words is the message complexity: every node sends its current label
	// to every neighbour each round (2m words per round).
	Words int64
}

// LabelPropagation runs synchronous label propagation: every node starts
// with a unique label and repeatedly adopts the most frequent label among
// its neighbours (ties broken uniformly at random) until no label changes
// or maxRounds is reached. A simple, widely deployed community-detection
// baseline; the number of clusters is not controlled.
func LabelPropagation(g *graph.Graph, maxRounds int, seed uint64) (*LabelPropResult, error) {
	if maxRounds <= 0 {
		return nil, fmt.Errorf("baselines: maxRounds must be positive")
	}
	n := g.N()
	r := rng.New(seed)
	labels := make([]int, n)
	for v := range labels {
		labels[v] = v
	}
	next := make([]int, n)
	counts := map[int]int{}
	var words int64
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		words += int64(2 * g.M())
		changed := 0
		for v := 0; v < n; v++ {
			nb := g.Neighbors(v)
			if len(nb) == 0 {
				next[v] = labels[v]
				continue
			}
			clear(counts)
			bestCount := 0
			for _, u := range nb {
				l := labels[u]
				counts[l]++
				if counts[l] > bestCount {
					bestCount = counts[l]
				}
			}
			// Collect all maximal labels by re-walking the neighbours (not
			// the counts map, whose iteration order varies per run),
			// consuming each maximal label on first sight so it appears
			// once, and break ties randomly but deterministically under the
			// seed.
			var tied []int
			for _, u := range nb {
				if l := labels[u]; counts[l] == bestCount {
					tied = append(tied, l)
					counts[l] = -1
				}
			}
			best := tied[0]
			if len(tied) > 1 {
				// Sort for determinism before drawing.
				sort.Ints(tied)
				best = tied[r.Intn(len(tied))]
			}
			next[v] = best
			if best != labels[v] {
				changed++
			}
		}
		labels, next = next, labels
		if changed == 0 {
			break
		}
	}
	return &LabelPropResult{Labels: append([]int(nil), labels...), Rounds: rounds, Words: words}, nil
}
