package baselines

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// MultilevelResult carries the output of the multilevel partitioner.
type MultilevelResult struct {
	Labels  []int
	CutSize int
	Levels  int
}

// wgraph is the weighted working graph of the multilevel hierarchy: node
// weights count contracted original vertices and edge weights count
// contracted original edges.
type wgraph struct {
	nodeW []int
	adj   [][]wedge
}

type wedge struct {
	to int
	w  int
}

func (wg *wgraph) n() int { return len(wg.nodeW) }

func (wg *wgraph) totalW() int {
	t := 0
	for _, w := range wg.nodeW {
		t += w
	}
	return t
}

// fromGraph lifts an unweighted graph into the weighted representation.
func fromGraph(g *graph.Graph) *wgraph {
	wg := &wgraph{nodeW: make([]int, g.N()), adj: make([][]wedge, g.N())}
	for v := 0; v < g.N(); v++ {
		wg.nodeW[v] = 1
		nb := g.Neighbors(v)
		wg.adj[v] = make([]wedge, len(nb))
		for i, u := range nb {
			wg.adj[v][i] = wedge{to: int(u), w: 1}
		}
	}
	return wg
}

// MultilevelBisect splits the graph into two parts of roughly targetFrac and
// 1−targetFrac of the total node weight, using heavy-edge-matching
// coarsening, greedy growing on the coarsest graph and
// Fiduccia–Mattheyses-style boundary refinement on every level. It returns
// 0/1 labels and the achieved cut size.
func MultilevelBisect(g *graph.Graph, targetFrac float64, seed uint64) (*MultilevelResult, error) {
	if targetFrac <= 0 || targetFrac >= 1 {
		return nil, fmt.Errorf("baselines: target fraction %v out of (0,1)", targetFrac)
	}
	if g.N() == 0 {
		return &MultilevelResult{Labels: []int{}}, nil
	}
	r := rng.New(seed)
	labels, levels := bisect(fromGraph(g), targetFrac, r)
	cut := 0
	g.Edges(func(u, v int) {
		if labels[u] != labels[v] {
			cut++
		}
	})
	return &MultilevelResult{Labels: labels, CutSize: cut, Levels: levels}, nil
}

// bisect runs the multilevel V-cycle on a weighted graph.
func bisect(wg *wgraph, targetFrac float64, r *rng.RNG) ([]int, int) {
	const coarsestSize = 48
	if wg.n() <= coarsestSize {
		part := greedyGrow(wg, targetFrac, r)
		refine(wg, part, targetFrac, 8)
		return part, 1
	}
	coarse, mapping := coarsen(wg, r)
	if coarse.n() >= wg.n() {
		// No progress (e.g. star-like level); stop the hierarchy here.
		part := greedyGrow(wg, targetFrac, r)
		refine(wg, part, targetFrac, 8)
		return part, 1
	}
	coarsePart, levels := bisect(coarse, targetFrac, r)
	part := make([]int, wg.n())
	for v := range part {
		part[v] = coarsePart[mapping[v]]
	}
	refine(wg, part, targetFrac, 4)
	return part, levels + 1
}

// coarsen contracts a heavy-edge matching and returns the coarse graph plus
// the fine→coarse mapping.
func coarsen(wg *wgraph, r *rng.RNG) (*wgraph, []int) {
	n := wg.n()
	order := r.Perm(n)
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		bestU, bestW := -1, -1
		for _, e := range wg.adj[v] {
			if match[e.to] == -1 && e.to != v && e.w > bestW {
				bestU, bestW = e.to, e.w
			}
		}
		if bestU >= 0 {
			match[v] = bestU
			match[bestU] = v
		} else {
			match[v] = v
		}
	}
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	next := 0
	for v := 0; v < n; v++ {
		if mapping[v] != -1 {
			continue
		}
		mapping[v] = next
		if match[v] != v && match[v] >= 0 {
			mapping[match[v]] = next
		}
		next++
	}
	coarse := &wgraph{nodeW: make([]int, next), adj: make([][]wedge, next)}
	acc := map[int]int{}
	// Build coarse adjacency by accumulating per coarse node.
	byCoarse := make([][]int, next)
	for v := 0; v < n; v++ {
		c := mapping[v]
		coarse.nodeW[c] += wg.nodeW[v]
		byCoarse[c] = append(byCoarse[c], v)
	}
	for c := 0; c < next; c++ {
		clear(acc)
		for _, v := range byCoarse[c] {
			for _, e := range wg.adj[v] {
				tc := mapping[e.to]
				if tc != c {
					acc[tc] += e.w
				}
			}
		}
		edges := make([]wedge, 0, len(acc))
		for to, w := range acc {
			edges = append(edges, wedge{to: to, w: w})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].to < edges[j].to })
		coarse.adj[c] = edges
	}
	return coarse, mapping
}

// greedyGrow seeds a region at a random node and grows it along maximal
// internal connectivity until it reaches the target weight; repeated from a
// few starts, keeping the best cut.
func greedyGrow(wg *wgraph, targetFrac float64, r *rng.RNG) []int {
	n := wg.n()
	target := int(float64(wg.totalW()) * targetFrac)
	if target < 1 {
		target = 1
	}
	bestPart := make([]int, n)
	bestCut := -1
	tries := 4
	if n < tries {
		tries = n
	}
	for t := 0; t < tries; t++ {
		part := make([]int, n)
		for i := range part {
			part[i] = 1
		}
		start := r.Intn(n)
		part[start] = 0
		weight := wg.nodeW[start]
		gain := make(map[int]int)
		for _, e := range wg.adj[start] {
			gain[e.to] += e.w
		}
		for weight < target && len(gain) > 0 {
			bestV, bestG := -1, -1
			// Order-independent argmax: the (gain, smallest-id) tie-break is
			// a total order, so every iteration order yields the same pick.
			//lintdet:allow mapiter(order-independent argmax with total (gain, smallest-id) tie-break)
			for v, gn := range gain {
				if part[v] == 0 {
					continue
				}
				if gn > bestG || (gn == bestG && v < bestV) {
					bestV, bestG = v, gn
				}
			}
			if bestV < 0 {
				break
			}
			part[bestV] = 0
			weight += wg.nodeW[bestV]
			delete(gain, bestV)
			for _, e := range wg.adj[bestV] {
				if part[e.to] == 1 {
					gain[e.to] += e.w
				}
			}
		}
		cut := cutWeight(wg, part)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			copy(bestPart, part)
		}
	}
	return bestPart
}

func cutWeight(wg *wgraph, part []int) int {
	cut := 0
	for v := range wg.adj {
		for _, e := range wg.adj[v] {
			if e.to > v && part[e.to] != part[v] {
				cut += e.w
			}
		}
	}
	return cut
}

// refine runs FM-style passes: repeatedly move the boundary node with the
// best gain subject to a balance constraint, accepting the best prefix of
// moves in each pass.
func refine(wg *wgraph, part []int, targetFrac float64, passes int) {
	n := wg.n()
	total := wg.totalW()
	target0 := float64(total) * targetFrac
	slack := float64(total) * 0.05
	if slack < 1 {
		slack = 1
	}
	w0 := 0
	for v := 0; v < n; v++ {
		if part[v] == 0 {
			w0 += wg.nodeW[v]
		}
	}
	gainOf := func(v int) int {
		g := 0
		for _, e := range wg.adj[v] {
			if part[e.to] == part[v] {
				g -= e.w
			} else {
				g += e.w
			}
		}
		return g
	}
	for pass := 0; pass < passes; pass++ {
		locked := make([]bool, n)
		type move struct {
			v    int
			gain int
		}
		var moves []move
		cumGain, bestPrefixGain, bestPrefix := 0, 0, 0
		for step := 0; step < n; step++ {
			bestV, bestG := -1, 0
			for v := 0; v < n; v++ {
				if locked[v] {
					continue
				}
				// Balance: moving v must keep side 0 within slack of target.
				nw0 := w0
				if part[v] == 0 {
					nw0 -= wg.nodeW[v]
				} else {
					nw0 += wg.nodeW[v]
				}
				if float64(nw0) < target0-slack || float64(nw0) > target0+slack {
					continue
				}
				g := gainOf(v)
				if bestV == -1 || g > bestG {
					bestV, bestG = v, g
				}
			}
			if bestV == -1 {
				break
			}
			// Apply tentatively.
			if part[bestV] == 0 {
				w0 -= wg.nodeW[bestV]
				part[bestV] = 1
			} else {
				w0 += wg.nodeW[bestV]
				part[bestV] = 0
			}
			locked[bestV] = true
			cumGain += bestG
			moves = append(moves, move{bestV, bestG})
			if cumGain > bestPrefixGain {
				bestPrefixGain = cumGain
				bestPrefix = len(moves)
			}
			if len(moves) > 2*n/3 && cumGain < bestPrefixGain-total {
				break // hopeless tail
			}
		}
		// Roll back past the best prefix.
		for i := len(moves) - 1; i >= bestPrefix; i-- {
			v := moves[i].v
			if part[v] == 0 {
				w0 -= wg.nodeW[v]
				part[v] = 1
			} else {
				w0 += wg.nodeW[v]
				part[v] = 0
			}
		}
		if bestPrefixGain == 0 {
			break
		}
	}
}

// MultilevelKWay partitions into k parts by recursive bisection with
// balanced targets, the standard METIS strategy.
func MultilevelKWay(g *graph.Graph, k int, seed uint64) (*MultilevelResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("baselines: k must be positive")
	}
	if k > g.N() && g.N() > 0 {
		return nil, fmt.Errorf("baselines: k=%d exceeds n=%d", k, g.N())
	}
	labels := make([]int, g.N())
	if err := kwayRec(g, identity(g.N()), k, 0, seed, labels); err != nil {
		return nil, err
	}
	cut := 0
	g.Edges(func(u, v int) {
		if labels[u] != labels[v] {
			cut++
		}
	})
	return &MultilevelResult{Labels: labels, CutSize: cut}, nil
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// kwayRec bisects the subgraph induced by nodes into k1|k2 shares and
// recurses, writing final labels starting at labelBase.
func kwayRec(g *graph.Graph, nodes []int, k, labelBase int, seed uint64, out []int) error {
	if k == 1 {
		for _, v := range nodes {
			out[v] = labelBase
		}
		return nil
	}
	sub, ids := g.InducedSubgraph(nodes)
	k1 := k / 2
	k2 := k - k1
	res, err := MultilevelBisect(sub, float64(k1)/float64(k), seed)
	if err != nil {
		return err
	}
	var left, right []int
	for i, l := range res.Labels {
		if l == 0 {
			left = append(left, ids[i])
		} else {
			right = append(right, ids[i])
		}
	}
	// Degenerate splits can happen on pathological graphs; repair by moving
	// one node so recursion terminates.
	if len(left) == 0 && len(right) > 0 {
		left = append(left, right[len(right)-1])
		right = right[:len(right)-1]
	}
	if len(right) == 0 && len(left) > 0 {
		right = append(right, left[len(left)-1])
		left = left[:len(left)-1]
	}
	if err := kwayRec(g, left, k1, labelBase, seed+1, out); err != nil {
		return err
	}
	return kwayRec(g, right, k2, labelBase+k1, seed+2, out)
}
