package baselines

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/spectral"
)

// SpectralResult carries the output of spectral clustering.
type SpectralResult struct {
	Labels      []int
	Eigenvalues []float64
	KMeansIters int
}

// SpectralCluster runs the classical spectral clustering pipeline: compute
// the top-k eigenvectors of the random-walk matrix, embed every node as the
// row of the n×k eigenvector matrix (row-normalised), and cluster the
// embedding with k-means++. This is the centralised algorithm the paper's
// distributed process approximates.
func SpectralCluster(g *graph.Graph, k int, seed uint64) (*SpectralResult, error) {
	if k < 1 || k > g.N() {
		return nil, fmt.Errorf("baselines: invalid k=%d for n=%d", k, g.N())
	}
	vals, vecs, err := spectral.TopEigen(g, k, seed)
	if err != nil {
		return nil, err
	}
	points := EmbedRows(vecs, true)
	km, err := KMeans(points, k, seed^0x5ca1ab1e, 200)
	if err != nil {
		return nil, err
	}
	return &SpectralResult{Labels: km.Labels, Eigenvalues: vals, KMeansIters: km.Iterations}, nil
}

// EmbedRows turns k eigenvectors (each length n) into n row vectors of
// dimension k; when normalise is set, each nonzero row is scaled to unit
// norm (the usual spectral-embedding normalisation, which makes cluster
// geometry rotation-invariant).
func EmbedRows(vecs [][]float64, normalise bool) [][]float64 {
	if len(vecs) == 0 {
		return nil
	}
	n := len(vecs[0])
	k := len(vecs)
	points := make([][]float64, n)
	for v := 0; v < n; v++ {
		row := make([]float64, k)
		for i := 0; i < k; i++ {
			row[i] = vecs[i][v]
		}
		if normalise {
			var norm float64
			for _, x := range row {
				norm += x * x
			}
			if norm > 0 {
				inv := 1 / math.Sqrt(norm)
				for j := range row {
					row[j] *= inv
				}
			}
		}
		points[v] = row
	}
	return points
}
