package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestConfusion(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2}
	pred := []int{5, 5, 7, 5, 9}
	c, kt, kp, err := Confusion(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if kt != 3 || kp != 3 {
		t.Fatalf("kt=%d kp=%d", kt, kp)
	}
	if c[0][0] != 2 || c[1][1] != 1 || c[1][0] != 1 || c[2][2] != 1 {
		t.Errorf("confusion %v", c)
	}
}

func TestConfusionLengthMismatch(t *testing.T) {
	if _, _, _, err := Confusion([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("expected error")
	}
}

func TestHungarianSimple(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Errorf("total %v want 5", total)
	}
	want := []int{1, 0, 2}
	for i := range want {
		if assign[i] != want[i] {
			t.Errorf("assign %v want %v", assign, want)
		}
	}
}

func TestHungarianRectangular(t *testing.T) {
	cost := [][]float64{
		{10, 1, 10, 10},
		{10, 10, 1, 10},
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || assign[0] != 1 || assign[1] != 2 {
		t.Errorf("assign %v total %v", assign, total)
	}
}

func TestHungarianErrors(t *testing.T) {
	if _, _, err := Hungarian([][]float64{{1}, {2}}); err == nil {
		t.Error("rows > cols should fail")
	}
	if _, _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged should fail")
	}
	if assign, total, err := Hungarian(nil); err != nil || assign != nil || total != 0 {
		t.Error("empty should be trivial")
	}
}

func TestMisclassifiedPerfect(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	pred := []int{9, 9, 4, 4, 7, 7} // same partition, different names
	mis, err := Misclassified(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if mis != 0 {
		t.Errorf("mis = %d want 0", mis)
	}
	rate, err := MisclassificationRate(truth, pred)
	if err != nil || rate != 0 {
		t.Errorf("rate = %v", rate)
	}
}

func TestMisclassifiedOneError(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1, 1}
	pred := []int{2, 2, 3, 3, 3, 3}
	mis, err := Misclassified(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if mis != 1 {
		t.Errorf("mis = %d want 1", mis)
	}
}

func TestMisclassifiedDifferentK(t *testing.T) {
	// Prediction splits one true cluster into two: best assignment keeps the
	// larger half.
	truth := []int{0, 0, 0, 0, 1, 1, 1, 1}
	pred := []int{0, 0, 2, 2, 1, 1, 1, 1}
	mis, err := Misclassified(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if mis != 2 {
		t.Errorf("mis = %d want 2", mis)
	}
}

func TestMisclassifiedMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(40)
		kt := 1 + r.Intn(4)
		kp := 1 + r.Intn(5)
		truth := make([]int, n)
		pred := make([]int, n)
		for i := range truth {
			truth[i] = r.Intn(kt)
			pred[i] = r.Intn(kp)
		}
		h, err1 := Misclassified(truth, pred)
		b, err2 := BruteForceMisclassified(truth, pred)
		return err1 == nil && err2 == nil && h == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestARIIdentical(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	ari, err := ARI(truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari-1) > 1e-12 {
		t.Errorf("ARI = %v want 1", ari)
	}
}

func TestARIRenamedLabels(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{7, 7, 3, 3}
	ari, err := ARI(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari-1) > 1e-12 {
		t.Errorf("ARI = %v want 1", ari)
	}
}

func TestARIRandomIsNearZero(t *testing.T) {
	r := rng.New(31)
	n := 2000
	truth := make([]int, n)
	pred := make([]int, n)
	for i := range truth {
		truth[i] = r.Intn(3)
		pred[i] = r.Intn(3)
	}
	ari, err := ARI(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari) > 0.05 {
		t.Errorf("random ARI = %v, expected ~0", ari)
	}
}

func TestARITrivialPartitions(t *testing.T) {
	// Both partitions put everything in one cluster.
	ari, err := ARI([]int{1, 1, 1}, []int{2, 2, 2})
	if err != nil || ari != 1 {
		t.Errorf("trivial ARI = %v err %v", ari, err)
	}
	if _, err := ARI([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestNMIIdentical(t *testing.T) {
	truth := []int{0, 1, 2, 0, 1, 2}
	nmi, err := NMI(truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nmi-1) > 1e-12 {
		t.Errorf("NMI = %v want 1", nmi)
	}
}

func TestNMIIndependent(t *testing.T) {
	// Independent labelings on a large sample → NMI near 0.
	r := rng.New(77)
	n := 5000
	truth := make([]int, n)
	pred := make([]int, n)
	for i := range truth {
		truth[i] = r.Intn(4)
		pred[i] = r.Intn(4)
	}
	nmi, err := NMI(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if nmi > 0.02 {
		t.Errorf("independent NMI = %v", nmi)
	}
}

func TestNMIDegenerate(t *testing.T) {
	// One trivial, one informative.
	nmi, err := NMI([]int{0, 0, 0}, []int{0, 1, 2})
	if err != nil || nmi != 0 {
		t.Errorf("NMI = %v err %v", nmi, err)
	}
	nmi, err = NMI([]int{0, 0}, []int{1, 1})
	if err != nil || nmi != 1 {
		t.Errorf("both-trivial NMI = %v err %v", nmi, err)
	}
}

func TestNMIRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(50)
		truth := make([]int, n)
		pred := make([]int, n)
		for i := range truth {
			truth[i] = r.Intn(3)
			pred[i] = r.Intn(3)
		}
		nmi, err := NMI(truth, pred)
		return err == nil && nmi >= -1e-12 && nmi <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEmptyInputs(t *testing.T) {
	if rate, err := MisclassificationRate(nil, nil); err != nil || rate != 0 {
		t.Error("empty rate should be 0")
	}
	if ari, err := ARI(nil, nil); err != nil || ari != 1 {
		t.Error("empty ARI should be 1")
	}
	if nmi, err := NMI(nil, nil); err != nil || nmi != 1 {
		t.Error("empty NMI should be 1")
	}
}
