// Package metrics scores clusterings against ground truth. Theorem 1.1
// guarantees the existence of a label permutation σ under which only o(n)
// nodes are misclassified; Misclassified finds the best such assignment
// exactly via the Hungarian algorithm on the confusion matrix. The package
// also provides the adjusted Rand index and normalised mutual information
// used by the baseline comparisons.
package metrics

import (
	"fmt"
	"math"
)

// relabel maps arbitrary int labels to a dense range [0, k) and returns the
// dense labels plus k.
func relabel(labels []int) ([]int, int) {
	m := map[int]int{}
	out := make([]int, len(labels))
	for i, l := range labels {
		d, ok := m[l]
		if !ok {
			d = len(m)
			m[l] = d
		}
		out[i] = d
	}
	return out, len(m)
}

// Confusion returns the confusion matrix C with C[i][j] = |{v: truth v = i,
// pred v = j}| over dense label spaces, plus the two label counts.
func Confusion(truth, pred []int) ([][]int, int, int, error) {
	if len(truth) != len(pred) {
		return nil, 0, 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(truth), len(pred))
	}
	dt, kt := relabel(truth)
	dp, kp := relabel(pred)
	c := make([][]int, kt)
	for i := range c {
		c[i] = make([]int, kp)
	}
	for v := range dt {
		c[dt[v]][dp[v]]++
	}
	return c, kt, kp, nil
}

// Hungarian solves the minimum-cost assignment problem for an n×m cost
// matrix with n <= m, returning rowAssign (rowAssign[i] = column assigned to
// row i) and the total cost. O(n²m) time.
func Hungarian(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, fmt.Errorf("metrics: Hungarian needs rows <= cols, got %dx%d", n, m)
	}
	for i := range cost {
		if len(cost[i]) != m {
			return nil, 0, fmt.Errorf("metrics: ragged cost matrix")
		}
	}
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j]: row (1-based) matched to column j
	way := make([]int, m+1) // back-pointers for augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	rowAssign := make([]int, n)
	total := 0.0
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowAssign[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return rowAssign, total, nil
}

// Misclassified returns the minimum number of misclassified nodes over all
// injective mappings of predicted labels to true labels (Theorem 1.1's
// measure), computed exactly with the Hungarian algorithm on the confusion
// matrix.
func Misclassified(truth, pred []int) (int, error) {
	c, kt, kp, err := Confusion(truth, pred)
	if err != nil {
		return 0, err
	}
	k := kt
	if kp > k {
		k = kp
	}
	// Pad to square; maximise matched mass = minimise (maxVal - C[i][j]).
	cost := make([][]float64, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		for j := range cost[i] {
			if i < kt && j < kp {
				cost[i][j] = -float64(c[i][j])
			}
		}
	}
	_, total, err := Hungarian(cost)
	if err != nil {
		return 0, err
	}
	agree := int(math.Round(-total))
	return len(truth) - agree, nil
}

// MisclassificationRate is Misclassified normalised by n.
func MisclassificationRate(truth, pred []int) (float64, error) {
	if len(truth) == 0 {
		return 0, nil
	}
	mis, err := Misclassified(truth, pred)
	if err != nil {
		return 0, err
	}
	return float64(mis) / float64(len(truth)), nil
}

// ARI returns the adjusted Rand index between two labelings (1 = identical
// partitions, ~0 = random agreement; can be negative).
func ARI(truth, pred []int) (float64, error) {
	c, kt, kp, err := Confusion(truth, pred)
	if err != nil {
		return 0, err
	}
	n := len(truth)
	if n == 0 {
		return 1, nil
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumCells, sumRows, sumCols float64
	rows := make([]int, kt)
	cols := make([]int, kp)
	for i := 0; i < kt; i++ {
		for j := 0; j < kp; j++ {
			sumCells += choose2(c[i][j])
			rows[i] += c[i][j]
			cols[j] += c[i][j]
		}
	}
	for _, r := range rows {
		sumRows += choose2(r)
	}
	for _, cl := range cols {
		sumCols += choose2(cl)
	}
	total := choose2(n)
	expected := sumRows * sumCols / total
	maxIdx := (sumRows + sumCols) / 2
	if maxIdx == expected {
		return 1, nil // both partitions trivial
	}
	return (sumCells - expected) / (maxIdx - expected), nil
}

// NMI returns the normalised mutual information I(T;P)/sqrt(H(T)H(P)), in
// [0, 1]. Degenerate partitions with zero entropy yield 1 when identical in
// structure and 0 otherwise.
func NMI(truth, pred []int) (float64, error) {
	c, kt, kp, err := Confusion(truth, pred)
	if err != nil {
		return 0, err
	}
	n := float64(len(truth))
	if n == 0 {
		return 1, nil
	}
	rows := make([]float64, kt)
	cols := make([]float64, kp)
	for i := range c {
		for j := range c[i] {
			rows[i] += float64(c[i][j])
			cols[j] += float64(c[i][j])
		}
	}
	var mi, ht, hp float64
	for i := range c {
		for j := range c[i] {
			if c[i][j] == 0 {
				continue
			}
			pij := float64(c[i][j]) / n
			mi += pij * math.Log(pij*n*n/(rows[i]*cols[j]))
		}
	}
	for _, r := range rows {
		if r > 0 {
			ht -= (r / n) * math.Log(r/n)
		}
	}
	for _, cl := range cols {
		if cl > 0 {
			hp -= (cl / n) * math.Log(cl/n)
		}
	}
	if ht == 0 && hp == 0 {
		return 1, nil
	}
	if ht == 0 || hp == 0 {
		return 0, nil
	}
	return mi / math.Sqrt(ht*hp), nil
}

// BruteForceMisclassified computes the same quantity as Misclassified by
// trying every permutation; exponential in the label count, used to validate
// the Hungarian path in tests (k <= 7).
func BruteForceMisclassified(truth, pred []int) (int, error) {
	c, kt, kp, err := Confusion(truth, pred)
	if err != nil {
		return 0, err
	}
	k := kt
	if kp > k {
		k = kp
	}
	sq := make([][]int, k)
	for i := range sq {
		sq[i] = make([]int, k)
		if i < kt {
			copy(sq[i], c[i])
		}
	}
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	best := 0
	var rec func(int)
	rec = func(depth int) {
		if depth == k {
			agree := 0
			for i := 0; i < k; i++ {
				agree += sq[i][perm[i]]
			}
			if agree > best {
				best = agree
			}
			return
		}
		for i := depth; i < k; i++ {
			perm[depth], perm[i] = perm[i], perm[depth]
			rec(depth + 1)
			perm[depth], perm[i] = perm[i], perm[depth]
		}
	}
	rec(0)
	return len(truth) - best, nil
}
