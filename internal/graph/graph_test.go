package graph

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// triangle builds K3 for reuse in tests.
func triangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func path(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

func TestBuildTriangle(t *testing.T) {
	g := triangle(t)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got %v", g)
	}
	for v := 0; v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if !g.IsRegular() {
		t.Error("triangle should be regular")
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(4, 0)
	b.AddEdge(2, 0)
	b.AddEdge(0, 3)
	g := b.MustBuild()
	nb := g.Neighbors(0)
	want := []int32{2, 3, 4}
	for i, v := range want {
		if nb[i] != v {
			t.Fatalf("neighbors(0) = %v, want %v", nb, want)
		}
	}
	if g.Neighbor(0, 1) != 3 {
		t.Errorf("Neighbor(0,1) = %d", g.Neighbor(0, 1))
	}
}

func TestHasEdge(t *testing.T) {
	g := path(t, 4)
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, false}, {2, 3, true}, {0, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v", c.u, c.v, got)
		}
	}
}

func TestSelfLoopRejected(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(1, 1)
	if _, err := b.Build(); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("want ErrSelfLoop, got %v", err)
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if _, err := b.Build(); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("want ErrDuplicateEdge, got %v", err)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 2)
	if _, err := b.Build(); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("want ErrNodeOutOfRange, got %v", err)
	}
}

func TestBuilderSingleUse(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("second Build should fail")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.N() != 0 || g.M() != 0 || !g.IsConnected() {
		t.Fatalf("empty graph wrong: %v", g)
	}
}

func TestConductance(t *testing.T) {
	// Barbell: two triangles joined by one edge. S = one triangle.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	phi := g.Conductance([]int{0, 1, 2})
	// cut = 1, vol = 2+2+3 = 7
	if want := 1.0 / 7.0; phi != want {
		t.Errorf("conductance = %v want %v", phi, want)
	}
	if g.Conductance(nil) != 0 {
		t.Error("empty set conductance should be 0")
	}
}

func TestCutSizeWholeGraphIsZero(t *testing.T) {
	g := triangle(t)
	inS := []bool{true, true, true}
	if c := g.CutSize(inS); c != 0 {
		t.Errorf("cut of V = %d", c)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	comp, c := g.ConnectedComponents()
	if c != 3 {
		t.Fatalf("components = %d want 3", c)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] || comp[4] == comp[2] {
		t.Errorf("component ids wrong: %v", comp)
	}
	if g.IsConnected() {
		t.Error("graph should be disconnected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := path(t, 5) // 0-1-2-3-4
	sub, ids := g.InducedSubgraph([]int{1, 2, 3})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced: %v", sub)
	}
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("id map %v", ids)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Error("induced edges wrong")
	}
}

func TestEdgesVisitsEachOnce(t *testing.T) {
	g := triangle(t)
	count := 0
	g.Edges(func(u, v int) {
		if u >= v {
			t.Errorf("edge order violated: %d %d", u, v)
		}
		count++
	})
	if count != 3 {
		t.Errorf("visited %d edges", count)
	}
}

func TestVolume(t *testing.T) {
	g := path(t, 4)
	if vol := g.Volume([]int{0, 1}); vol != 3 {
		t.Errorf("vol = %d want 3", vol)
	}
}

func TestDegreeRatio(t *testing.T) {
	g := path(t, 4) // degrees 1,2,2,1
	if r := g.DegreeRatio(); r != 2 {
		t.Errorf("ratio = %v", r)
	}

	// An isolated node means minDeg == 0: infinitely far from regular,
	// so +Inf — not 0, which used to conflate this with the empty graph.
	b := NewBuilder(3)
	b.AddEdge(0, 1) // node 2 isolated
	iso, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if r := iso.DegreeRatio(); !math.IsInf(r, 1) {
		t.Errorf("isolated-node ratio = %v, want +Inf", r)
	}

	// Only the empty graph is 0.
	empty, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if r := empty.DegreeRatio(); r != 0 {
		t.Errorf("empty-graph ratio = %v, want 0", r)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip: %v vs %v", g2, g)
	}
	for v := 0; v < g.N(); v++ {
		if g2.Degree(v) != g.Degree(v) {
			t.Errorf("degree mismatch at %d", v)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n% another\n3 2\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got %v", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"3\n",
		"3 1\n0 1 2\n",
		"3 2\n0 1\n",      // edge count mismatch
		"2 1\nzero one\n", // non-numeric
		"x 1\n0 1\n",      // bad header
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestWriteLabels(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLabels(&buf, []int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "2\n0\n1\n" {
		t.Errorf("got %q", buf.String())
	}
}

// Property: random graphs survive the CSR round trip with degrees intact.
func TestRandomGraphCSRInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		b := NewBuilder(n)
		seen := map[[2]int]bool{}
		deg := make([]int, n)
		for tries := 0; tries < 3*n; tries++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			b.AddEdge(u, v)
			deg[u]++
			deg[v]++
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if g.M() != len(seen) {
			return false
		}
		total := 0
		for v := 0; v < n; v++ {
			if g.Degree(v) != deg[v] {
				return false
			}
			total += g.Degree(v)
		}
		return total == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCSRMatchesNeighborView: the raw CSR arrays are the flat view the hot
// kernels iterate; they must agree with the Neighbors/Neighbor accessors on
// randomized graphs — same shape, same sorted adjacency, shared storage.
func TestCSRMatchesNeighborView(t *testing.T) {
	r := rng.New(71)
	f := func() bool {
		n := 2 + r.Intn(30)
		b := NewBuilder(n)
		seen := map[[2]int]bool{}
		for tries := 0; tries < 3*n; tries++ {
			u, v := r.Intn(n), r.Intn(n)
			if u > v {
				u, v = v, u
			}
			if u == v || seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			b.AddEdge(u, v)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		indptr, indices := g.CSR()
		if len(indptr) != n+1 || indptr[0] != 0 || int(indptr[n]) != len(indices) || len(indices) != 2*g.M() {
			return false
		}
		for v := 0; v < n; v++ {
			row := indices[indptr[v]:indptr[v+1]]
			nb := g.Neighbors(v)
			if len(row) != g.Degree(v) || len(nb) != len(row) {
				return false
			}
			for i := range row {
				if row[i] != nb[i] || int(row[i]) != g.Neighbor(v, i) {
					return false
				}
				if i > 0 && row[i] <= row[i-1] {
					return false // sorted, no duplicates
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
