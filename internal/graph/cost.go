package graph

// CostFunc assigns a non-negative partitioning cost to every node of a
// graph. It is the pluggable seam between graph structure and the
// prefix-sum-of-cost split in sched.PartitionWeighted: the runtime asks the
// cost function for per-node weights and splits the contiguous ID range so
// every shard carries roughly equal total cost. Implementations must be
// pure functions of the graph so that the resulting bounds are identical on
// every worker and every run.
type CostFunc func(g *Graph) []int64

// UnitCosts charges every node 1, making PartitionWeighted reproduce the
// count-based Partition split exactly. It is the identity cost function
// used by `-partition count`.
func UnitCosts(g *Graph) []int64 {
	costs := make([]int64, g.n)
	for i := range costs {
		costs[i] = 1
	}
	return costs
}

// DegreeCosts charges every node deg(v)+1: the degree term models the
// per-neighbour work of a diffusion phase (sends, matching probes, gossip
// pushes all scale with degree) and the +1 the fixed per-node overhead
// (state touch, seeding, query scan), so an all-isolated graph still splits
// evenly. The costs are read straight off the CSR view — the offsets array
// is already the exclusive degree prefix sum, so cost prefix sums over a
// node range are offsets[hi]-offsets[lo] + (hi-lo) with no recomputation.
// This is the default cost function of `-partition degree`.
func DegreeCosts(g *Graph) []int64 {
	costs := make([]int64, g.n)
	for v := 0; v < g.n; v++ {
		costs[v] = int64(g.offsets[v+1]-g.offsets[v]) + 1
	}
	return costs
}
