// Package graph provides a compact, immutable sparse-graph representation
// (compressed sparse rows) together with the structural queries used by the
// clustering algorithm and its analysis: degrees, volumes, cut sizes,
// conductance, and connectivity.
//
// Graphs are undirected and simple (no self-loops, no parallel edges). The
// almost-regular machinery of the paper (§4.5) is realised by the VirtualDegree
// field: algorithms that view G as the D-regular graph G* (each node padded
// with D−deg(v) self-loops) read D from the graph rather than materialising
// the loops.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Graph is an immutable undirected simple graph in CSR form.
// Construct with a Builder or a generator; direct construction is invalid.
type Graph struct {
	offsets []int32 // length n+1; neighbours of v are adj[offsets[v]:offsets[v+1]]
	adj     []int32 // concatenated sorted adjacency lists; length 2m
	n       int
	m       int
	maxDeg  int
	minDeg  int
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// MinDegree returns the minimum degree (0 for the empty graph).
func (g *Graph) MinDegree() int { return g.minDeg }

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// CSR exposes the graph's raw compressed-sparse-row arrays: indptr has
// length n+1 and the neighbours of v are indices[indptr[v]:indptr[v+1]],
// sorted ascending. Both slices alias internal storage and must not be
// modified. This is the flat view the hot kernels (matching generation, the
// engines' neighbour draws) iterate directly, hoisting the per-call bounds
// arithmetic of Neighbors/Neighbor out of their inner loops; it is built
// once at construction and shared by every consumer.
func (g *Graph) CSR() (indptr, indices []int32) { return g.offsets, g.adj }

// Neighbor returns the i-th neighbour of v (0-indexed in sorted order).
func (g *Graph) Neighbor(v, i int) int {
	return int(g.adj[int(g.offsets[v])+i])
}

// HasEdge reports whether {u,v} is an edge, via binary search.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// IsRegular reports whether every node has the same degree.
func (g *Graph) IsRegular() bool { return g.n == 0 || g.maxDeg == g.minDeg }

// DegreeRatio returns maxDeg/minDeg, the regularity measure behind the
// almost-regular reductions (§4.5). A graph containing an isolated node has
// minDeg == 0 and is infinitely far from regular, so the ratio is +Inf;
// only the empty graph (no nodes at all) returns 0.
func (g *Graph) DegreeRatio() float64 {
	if g.n == 0 {
		return 0
	}
	if g.minDeg == 0 {
		return math.Inf(1)
	}
	return float64(g.maxDeg) / float64(g.minDeg)
}

// Volume returns the sum of degrees of the nodes in S.
func (g *Graph) Volume(s []int) int {
	vol := 0
	for _, v := range s {
		vol += g.Degree(v)
	}
	return vol
}

// CutSize returns |E(S, V\S)| where membership in S is given by inS.
func (g *Graph) CutSize(inS []bool) int {
	cut := 0
	for v := 0; v < g.n; v++ {
		if !inS[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if !inS[u] {
				cut++
			}
		}
	}
	return cut
}

// Conductance returns φ(S) = |E(S, V\S)| / vol(S) with vol(S) the sum of
// degrees over S (the paper's definition). Degenerate cases: an empty S
// yields 0, and a non-empty S of isolated nodes (vol = 0) yields 1.
func (g *Graph) Conductance(s []int) float64 {
	if len(s) == 0 {
		return 0
	}
	inS := make([]bool, g.n)
	for _, v := range s {
		inS[v] = true
	}
	vol := g.Volume(s)
	if vol == 0 {
		return 1
	}
	return float64(g.CutSize(inS)) / float64(vol)
}

// ConnectedComponents returns a component id per node and the number of
// components, using an iterative BFS.
func (g *Graph) ConnectedComponents() ([]int, int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	id := 0
	for v := 0; v < g.n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = id
		queue = append(queue[:0], int32(v))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(int(u)) {
				if comp[w] == -1 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
		id++
	}
	return comp, id
}

// IsConnected reports whether the graph is connected (true for n <= 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c == 1
}

// InducedSubgraph returns the subgraph induced by the node set s, along with
// the mapping from new ids to original ids.
func (g *Graph) InducedSubgraph(s []int) (*Graph, []int) {
	old2new := make(map[int]int, len(s))
	new2old := make([]int, len(s))
	for i, v := range s {
		old2new[v] = i
		new2old[i] = v
	}
	b := NewBuilder(len(s))
	for i, v := range s {
		for _, u := range g.Neighbors(v) {
			if j, ok := old2new[int(u)]; ok && j > i {
				b.AddEdge(i, j)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		// Cannot happen: edges of a simple graph induce a simple graph.
		panic(fmt.Sprintf("graph: induced subgraph build failed: %v", err))
	}
	return sub, new2old
}

// Edges calls fn for every undirected edge {u,v} with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d deg=[%d,%d]}", g.n, g.m, g.minDeg, g.maxDeg)
}
