package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in plain edge-list format: a header line
// "n m" followed by one "u v" line per undirected edge with u < v.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' or '%' are treated as comments; blank lines are skipped. The
// header line is optional when every node appears in some edge — if the
// first data line has two fields it is interpreted as the header only when a
// header has not been seen and the remaining line count matches; to stay
// unambiguous we require the header.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var header []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		header = strings.Fields(line)
		break
	}
	if header == nil {
		return nil, fmt.Errorf("graph: empty edge-list input")
	}
	if len(header) != 2 {
		return nil, fmt.Errorf("graph: malformed header %q", strings.Join(header, " "))
	}
	n, err := strconv.Atoi(header[0])
	if err != nil {
		return nil, fmt.Errorf("graph: bad node count: %v", err)
	}
	m, err := strconv.Atoi(header[1])
	if err != nil {
		return nil, fmt.Errorf("graph: bad edge count: %v", err)
	}
	b := NewBuilder(n)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: malformed edge line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint: %v", err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint: %v", err)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b.EdgeCount() != m {
		return nil, fmt.Errorf("graph: header claims %d edges, found %d", m, b.EdgeCount())
	}
	return b.Build()
}

// WriteLabels writes one label per line (node order).
func WriteLabels(w io.Writer, labels []int) error {
	bw := bufio.NewWriter(w)
	for _, l := range labels {
		if _, err := fmt.Fprintln(bw, l); err != nil {
			return err
		}
	}
	return bw.Flush()
}
