package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable CSR Graph.
// Duplicate edge insertions and self-loops are rejected at Build time so the
// resulting graph is always simple.
type Builder struct {
	n     int
	us    []int32
	vs    []int32
	built bool
}

// NewBuilder returns a builder for a graph on n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// N returns the node count the builder was created with.
func (b *Builder) N() int { return b.n }

// EdgeCount returns the number of edges added so far.
func (b *Builder) EdgeCount() int { return len(b.us) }

// AddEdge records the undirected edge {u,v}. Validation happens in Build.
func (b *Builder) AddEdge(u, v int) {
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
}

// ErrSelfLoop is returned by Build when an edge {v,v} was added.
var ErrSelfLoop = errors.New("graph: self-loop")

// ErrDuplicateEdge is returned by Build when an edge was added twice.
var ErrDuplicateEdge = errors.New("graph: duplicate edge")

// ErrNodeOutOfRange is returned by Build for an endpoint outside [0,n).
var ErrNodeOutOfRange = errors.New("graph: node out of range")

// Build validates the edge set and returns the immutable graph.
// The builder must not be reused after a successful Build.
func (b *Builder) Build() (*Graph, error) {
	if b.built {
		return nil, errors.New("graph: builder already consumed")
	}
	n := b.n
	deg := make([]int32, n)
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("%w: {%d,%d} with n=%d", ErrNodeOutOfRange, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("%w: node %d", ErrSelfLoop, u)
		}
		deg[u]++
		deg[v]++
	}
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, offsets[n])
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	minDeg, maxDeg := 0, 0
	if n > 0 {
		minDeg = int(deg[0])
	}
	for v := 0; v < n; v++ {
		nb := adj[offsets[v]:offsets[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		for i := 1; i < len(nb); i++ {
			if nb[i] == nb[i-1] {
				return nil, fmt.Errorf("%w: {%d,%d}", ErrDuplicateEdge, v, nb[i])
			}
		}
		if int(deg[v]) > maxDeg {
			maxDeg = int(deg[v])
		}
		if int(deg[v]) < minDeg {
			minDeg = int(deg[v])
		}
	}
	b.built = true
	return &Graph{
		offsets: offsets,
		adj:     adj,
		n:       n,
		m:       len(b.us),
		maxDeg:  maxDeg,
		minDeg:  minDeg,
	}, nil
}

// MustBuild is Build that panics on error, for generators whose construction
// is correct by design.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
