package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// PreferentialAttachment returns a Barabási–Albert graph on n nodes: nodes
// arrive one at a time and each attaches m edges to distinct earlier nodes
// chosen with probability proportional to their current degree (the
// repeated-targets sampling trick). The first m+1 nodes form the seed: each
// arriving seed node connects to all of its predecessors.
//
// The result is a heavy-tailed hub graph whose high-degree nodes concentrate
// at the low IDs (the oldest nodes accumulate degree ~ m*sqrt(n/i)), which
// makes the count-based contiguous split systematically imbalanced — the
// adversarial input for degree-aware partitioning. Requires n >= m+1, m >= 1.
func PreferentialAttachment(n, m int, r *rng.RNG) (*graph.Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("gen: PreferentialAttachment needs m >= 1 (got %d)", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("gen: PreferentialAttachment needs n >= m+1 (n=%d m=%d)", n, m)
	}
	b := graph.NewBuilder(n)
	// repeats lists every node once per incident edge, so a uniform draw from
	// it is a degree-proportional draw.
	repeats := make([]int32, 0, 2*m*n)
	picks := make([]int32, 0, m)
	for v := 1; v < n; v++ {
		if v <= m {
			for u := 0; u < v; u++ {
				b.AddEdge(u, v)
				repeats = append(repeats, int32(u), int32(v))
			}
			continue
		}
		// Sample m distinct degree-proportional targets, rejecting
		// duplicates. m is tiny, so the linear dedup scan is cheaper than a
		// set — and it keeps iteration order deterministic.
		picks = picks[:0]
		for len(picks) < m {
			u := repeats[r.Intn(len(repeats))]
			dup := false
			for _, p := range picks {
				if p == u {
					dup = true
					break
				}
			}
			if !dup {
				picks = append(picks, u)
			}
		}
		for _, u := range picks {
			b.AddEdge(int(u), v)
			repeats = append(repeats, u, int32(v))
		}
	}
	return b.Build()
}
