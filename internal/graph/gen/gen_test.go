package gen

import (
	"testing"

	"repro/internal/rng"
)

func TestCycle(t *testing.T) {
	g := Cycle(5)
	if g.N() != 5 || g.M() != 5 {
		t.Fatalf("got %v", g)
	}
	if !g.IsRegular() || g.MaxDegree() != 2 {
		t.Error("cycle should be 2-regular")
	}
	if !g.IsConnected() {
		t.Error("cycle should be connected")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 || g.MaxDegree() != 5 || !g.IsRegular() {
		t.Fatalf("got %v", g)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("n = %d", g.N())
	}
	// 3*3 horizontal + 2*4 vertical = 9+8 = 17
	if g.M() != 17 {
		t.Fatalf("m = %d", g.M())
	}
	if !g.IsConnected() {
		t.Error("grid should be connected")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || !g.IsRegular() || g.MaxDegree() != 4 {
		t.Fatalf("got %v", g)
	}
	if g.M() != 32 {
		t.Fatalf("m = %d", g.M())
	}
}

func TestBarbell(t *testing.T) {
	p := Barbell(4)
	if p.G.N() != 8 || p.K != 2 {
		t.Fatalf("got %v", p.G)
	}
	// 2*C(4,2) + 1 bridge = 13
	if p.G.M() != 13 {
		t.Fatalf("m = %d", p.G.M())
	}
	if p.Truth[0] != 0 || p.Truth[7] != 1 {
		t.Error("truth labels wrong")
	}
	if !p.G.IsConnected() {
		t.Error("barbell should be connected")
	}
}

func TestCaveman(t *testing.T) {
	p := Caveman(4, 5)
	if p.G.N() != 20 || p.K != 4 {
		t.Fatalf("got %v", p.G)
	}
	if !p.G.IsConnected() {
		t.Error("caveman should be connected")
	}
	// Each clique's conductance should be small.
	clique := []int{0, 1, 2, 3, 4}
	if phi := p.G.Conductance(clique); phi > 0.15 {
		t.Errorf("clique conductance %v too large", phi)
	}
	if p.MinClusterFraction() != 0.25 {
		t.Errorf("beta = %v", p.MinClusterFraction())
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(1)
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {51, 8}, {16, 15}} {
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		if g.N() != tc.n {
			t.Fatalf("n mismatch")
		}
		if !g.IsRegular() || g.MaxDegree() != tc.d {
			t.Errorf("n=%d d=%d: degrees [%d,%d]", tc.n, tc.d, g.MinDegree(), g.MaxDegree())
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := RandomRegular(5, 3, r); err == nil {
		t.Error("odd n*d should fail")
	}
	if _, err := RandomRegular(4, 4, r); err == nil {
		t.Error("d >= n should fail")
	}
	g, err := RandomRegular(7, 0, r)
	if err != nil || g.M() != 0 {
		t.Error("d=0 should give the empty graph")
	}
}

func TestRandomRegularConnectivity(t *testing.T) {
	// Random d-regular graphs with d >= 3 are connected whp.
	r := rng.New(42)
	for trial := 0; trial < 5; trial++ {
		g, err := RandomRegular(100, 4, r)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Error("random 4-regular graph disconnected (unlikely)")
		}
	}
}

func TestClusteredRing(t *testing.T) {
	r := rng.New(7)
	p, err := ClusteredRing(4, 50, 8, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	g := p.G
	if g.N() != 200 || p.K != 4 {
		t.Fatalf("got %v", g)
	}
	wantDeg := 8 + 2*1
	if !g.IsRegular() || g.MaxDegree() != wantDeg {
		t.Fatalf("expected %d-regular, got [%d,%d]", wantDeg, g.MinDegree(), g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Error("clustered ring should be connected")
	}
	// Each cluster should have conductance exactly 2c/d = 2/10.
	for c := 0; c < 4; c++ {
		s := []int{}
		for v := 0; v < g.N(); v++ {
			if p.Truth[v] == c {
				s = append(s, v)
			}
		}
		phi := g.Conductance(s)
		if phi != 0.2 {
			t.Errorf("cluster %d conductance %v want 0.2", c, phi)
		}
	}
}

func TestClusteredRingTwoClusters(t *testing.T) {
	r := rng.New(9)
	p, err := ClusteredRing(2, 40, 6, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := 6 + 2 // k=2: d = dIn + c
	if !p.G.IsRegular() || p.G.MaxDegree() != wantDeg {
		t.Fatalf("expected %d-regular, got [%d,%d]", wantDeg, p.G.MinDegree(), p.G.MaxDegree())
	}
}

func TestClusteredRingErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := ClusteredRing(1, 10, 4, 1, r); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := ClusteredRing(2, 3, 4, 1, r); err == nil {
		t.Error("tiny cluster should fail")
	}
	if _, err := ClusteredRing(2, 5, 3, 1, r); err == nil {
		t.Error("odd size*dIn should fail")
	}
}

func TestSBMShape(t *testing.T) {
	r := rng.New(11)
	p, err := SBM([]int{50, 50, 50}, 0.3, 0.01, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.G.N() != 150 || p.K != 3 {
		t.Fatalf("got %v", p.G)
	}
	if p.Truth[0] != 0 || p.Truth[149] != 2 {
		t.Error("truth wrong")
	}
	// Expected within edges: 3 * C(50,2)*0.3 ≈ 1102; cross: 3*2500*0.01 = 75.
	if p.G.M() < 900 || p.G.M() > 1400 {
		t.Errorf("edge count %d implausible", p.G.M())
	}
}

func TestSBMDenseLimit(t *testing.T) {
	r := rng.New(3)
	p, err := SBM([]int{10, 10}, 1.0, 0.0, r)
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint K10s.
	if p.G.M() != 2*45 {
		t.Fatalf("m = %d want 90", p.G.M())
	}
	if p.G.IsConnected() {
		t.Error("pOut=0 should disconnect blocks")
	}
}

func TestSBMBalancedDegrees(t *testing.T) {
	r := rng.New(5)
	p, err := SBMBalanced(2, 300, 20, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	avg := 2 * float64(p.G.M()) / float64(p.G.N())
	if avg < 19 || avg > 25 {
		t.Errorf("average degree %v want ~22", avg)
	}
}

func TestSBMErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := SBM([]int{5}, -0.1, 0, r); err == nil {
		t.Error("negative p should fail")
	}
	if _, err := SBM([]int{0}, 0.5, 0, r); err == nil {
		t.Error("zero block should fail")
	}
}

func TestPairFromIndex(t *testing.T) {
	// Exhaustive check for s=6: indices 0..14 map to distinct pairs (i>j).
	seen := map[[2]int64]bool{}
	for idx := int64(0); idx < 15; idx++ {
		i, j := pairFromIndex(idx)
		if j >= i || i < 1 || i > 5 || j < 0 {
			t.Fatalf("idx %d -> (%d,%d) invalid", idx, i, j)
		}
		key := [2]int64{i, j}
		if seen[key] {
			t.Fatalf("pair (%d,%d) repeated", i, j)
		}
		seen[key] = true
	}
}

func TestGiantComponent(t *testing.T) {
	r := rng.New(13)
	// pOut=0 with 2 blocks: giant component is one block.
	p, err := SBM([]int{30, 20}, 1.0, 0.0, r)
	if err != nil {
		t.Fatal(err)
	}
	gc := GiantComponent(p)
	if gc.G.N() != 30 {
		t.Fatalf("giant component n = %d want 30", gc.G.N())
	}
	if gc.K != 1 {
		t.Errorf("K = %d want 1", gc.K)
	}
	if !gc.G.IsConnected() {
		t.Error("giant component must be connected")
	}
}

func TestGiantComponentNoopWhenConnected(t *testing.T) {
	p := Caveman(3, 4)
	if got := GiantComponent(p); got != p {
		t.Error("connected graph should be returned unchanged")
	}
}

func TestSamplePairsProbabilityOne(t *testing.T) {
	count := 0
	samplePairs(10, 1.0, rng.New(1), func(int64) { count++ })
	if count != 10 {
		t.Fatalf("p=1 visited %d of 10", count)
	}
}

func TestSamplePairsProbabilityZero(t *testing.T) {
	samplePairs(10, 0, rng.New(1), func(int64) { t.Fatal("p=0 visited an index") })
}

func TestSamplePairsFrequency(t *testing.T) {
	r := rng.New(17)
	const total, p, trials = 1000, 0.2, 50
	sum := 0
	for i := 0; i < trials; i++ {
		samplePairs(total, p, r, func(int64) { sum++ })
	}
	mean := float64(sum) / trials
	if mean < 180 || mean > 220 {
		t.Errorf("mean visits %v want ~200", mean)
	}
}
