// Package gen generates the synthetic graph families used throughout the
// reproduction: random regular graphs, exactly-regular "ring of clusters"
// graphs with tunable conductance (the paper's canonical well-clustered
// inputs), stochastic block models, caveman graphs, and a handful of
// deterministic topologies for unit tests.
//
// Generators that plant a cluster structure return the ground-truth labels
// alongside the graph. All randomness flows through an explicit *rng.RNG.
package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Planted bundles a generated graph with its ground-truth k-way partition.
type Planted struct {
	G     *graph.Graph
	Truth []int // Truth[v] ∈ [0, K)
	K     int
}

// MinClusterFraction returns β = min_i |S_i| / n for the planted partition.
func (p *Planted) MinClusterFraction() float64 {
	counts := make([]int, p.K)
	for _, c := range p.Truth {
		counts[c]++
	}
	minSize := p.G.N()
	for _, c := range counts {
		if c < minSize {
			minSize = c
		}
	}
	return float64(minSize) / float64(p.G.N())
}

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: cycle needs n >= 3")
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.MustBuild()
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.MustBuild()
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) *graph.Graph {
	n := 1 << dim
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			u := v ^ (1 << bit)
			if u > v {
				b.AddEdge(v, u)
			}
		}
	}
	return b.MustBuild()
}

// Barbell returns two s-cliques connected by a single bridge edge,
// with ground truth {0,1}.
func Barbell(s int) *Planted {
	if s < 2 {
		panic("gen: barbell needs s >= 2")
	}
	b := graph.NewBuilder(2 * s)
	for off := 0; off < 2; off++ {
		base := off * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
	}
	b.AddEdge(s-1, s)
	truth := make([]int, 2*s)
	for i := s; i < 2*s; i++ {
		truth[i] = 1
	}
	return &Planted{G: b.MustBuild(), Truth: truth, K: 2}
}

// Caveman returns the connected caveman graph: k cliques of size s, where one
// edge of each clique is rewired to point to the next clique around a ring.
func Caveman(k, s int) *Planted {
	if k < 2 || s < 3 {
		panic("gen: caveman needs k >= 2, s >= 3")
	}
	b := graph.NewBuilder(k * s)
	truth := make([]int, k*s)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			truth[base+i] = c
			for j := i + 1; j < s; j++ {
				// Rewire the {0,1} edge of each clique to the next clique.
				if i == 0 && j == 1 {
					continue
				}
				b.AddEdge(base+i, base+j)
			}
		}
		next := ((c + 1) % k) * s
		b.AddEdge(base, next+1)
	}
	return &Planted{G: b.MustBuild(), Truth: truth, K: k}
}

// edgeKey canonically orders an edge for set membership.
func edgeKey(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}

// RandomRegular returns a uniform-ish random simple d-regular graph on n
// nodes via the configuration model with edge-swap repair. It requires
// 0 <= d < n and n*d even.
func RandomRegular(n, d int, r *rng.RNG) (*graph.Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("gen: invalid degree %d for n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n*d must be even (n=%d d=%d)", n, d)
	}
	if d == 0 {
		return graph.NewBuilder(n).Build()
	}
	edges, err := randomRegularEdges(n, d, nil, r)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	return b.Build()
}

// randomRegularEdges produces the edge set of a random d-regular simple graph
// on nodes 0..s-1, avoiding any edge already present in the forbidden set.
// The caller may pass forbidden == nil.
func randomRegularEdges(s, d int, forbidden map[[2]int32]bool, r *rng.RNG) ([][2]int32, error) {
	const maxRestarts = 200
	if d == s-1 {
		// The complete graph is the unique (s-1)-regular graph; the repair
		// walk cannot reliably reach it, so construct it directly.
		edges := make([][2]int32, 0, s*(s-1)/2)
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				if forbidden != nil && forbidden[edgeKey(i, j)] {
					return nil, fmt.Errorf("gen: complete graph conflicts with forbidden edge {%d,%d}", i, j)
				}
				edges = append(edges, [2]int32{int32(i), int32(j)})
			}
		}
		return edges, nil
	}
	stubs := make([]int32, 0, s*d)
	for v := 0; v < s; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	for restart := 0; restart < maxRestarts; restart++ {
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		pairs := make([][2]int32, 0, len(stubs)/2)
		for i := 0; i < len(stubs); i += 2 {
			pairs = append(pairs, [2]int32{stubs[i], stubs[i+1]})
		}
		if edges, ok := repairPairs(pairs, forbidden, r); ok {
			return edges, nil
		}
	}
	return nil, fmt.Errorf("gen: failed to build %d-regular graph on %d nodes", d, s)
}

// repairPairs turns stub pairs into a simple edge set by swapping endpoints
// of conflicting pairs with randomly chosen valid partner pairs. Returns
// ok=false if the repair loop stalls and a restart is needed.
func repairPairs(pairs [][2]int32, forbidden map[[2]int32]bool, r *rng.RNG) ([][2]int32, bool) {
	seen := make(map[[2]int32]int, len(pairs))
	// invalid reports whether {u,v} may NOT be introduced as a new edge.
	invalid := func(u, v int32) bool {
		if u == v {
			return true
		}
		k := edgeKey(int(u), int(v))
		if forbidden != nil && forbidden[k] {
			return true
		}
		_, dup := seen[k]
		return dup
	}
	var conflicts []int
	for i, p := range pairs {
		if invalid(p[0], p[1]) {
			conflicts = append(conflicts, i)
		} else {
			seen[edgeKey(int(p[0]), int(p[1]))] = i
		}
	}
	// isGood reports whether the pair at idx is currently a registered,
	// non-conflicting edge (and therefore a legal swap partner).
	isGood := func(idx int) bool {
		p := pairs[idx]
		if p[0] == p[1] {
			return false
		}
		owner, ok := seen[edgeKey(int(p[0]), int(p[1]))]
		return ok && owner == idx
	}
	budget := 200 * (len(conflicts) + 1)
	for len(conflicts) > 0 && budget > 0 {
		budget--
		ci := conflicts[len(conflicts)-1]
		u, v := pairs[ci][0], pairs[ci][1]
		// Pick a random registered pair and try a 2-swap:
		// {u,v},{x,y} -> {u,x},{v,y}.
		pj := r.Intn(len(pairs))
		if pj == ci || !isGood(pj) {
			continue
		}
		x, y := pairs[pj][0], pairs[pj][1]
		if invalid(u, x) || invalid(v, y) ||
			edgeKey(int(u), int(x)) == edgeKey(int(v), int(y)) {
			continue
		}
		delete(seen, edgeKey(int(x), int(y)))
		pairs[ci] = [2]int32{u, x}
		pairs[pj] = [2]int32{v, y}
		seen[edgeKey(int(u), int(x))] = ci
		seen[edgeKey(int(v), int(y))] = pj
		conflicts = conflicts[:len(conflicts)-1]
	}
	if len(conflicts) > 0 {
		return nil, false
	}
	return pairs, true
}

// ClusteredRing builds the paper's canonical well-clustered input: k clusters
// of the given size arranged in a ring, each cluster a random internal
// regular expander, with crossMatchings random perfect matchings between
// adjacent clusters. The resulting graph is exactly d-regular with
//
//	d = dInternal + 2*crossMatchings   (k >= 3)
//	d = dInternal + crossMatchings     (k == 2)
//
// and every cluster has conductance ≈ 2*crossMatchings/d (k>=3).
// size*dInternal must be even.
func ClusteredRing(k, size, dInternal, crossMatchings int, r *rng.RNG) (*Planted, error) {
	if k < 2 {
		return nil, fmt.Errorf("gen: ClusteredRing needs k >= 2")
	}
	if size < dInternal+1 {
		return nil, fmt.Errorf("gen: cluster size %d too small for internal degree %d", size, dInternal)
	}
	if size*dInternal%2 != 0 {
		return nil, fmt.Errorf("gen: size*dInternal must be even")
	}
	n := k * size
	b := graph.NewBuilder(n)
	truth := make([]int, n)
	used := make(map[[2]int32]bool, n*dInternal)
	// Internal expanders.
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			truth[base+i] = c
		}
		edges, err := randomRegularEdges(size, dInternal, nil, r)
		if err != nil {
			return nil, err
		}
		for _, e := range edges {
			u, v := base+int(e[0]), base+int(e[1])
			b.AddEdge(u, v)
			used[edgeKey(u, v)] = true
		}
	}
	// Cross matchings between adjacent clusters on the ring.
	pairs := ringPairs(k)
	for _, pq := range pairs {
		for mi := 0; mi < crossMatchings; mi++ {
			if err := addCrossMatching(b, used, pq[0]*size, pq[1]*size, size, r); err != nil {
				return nil, err
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Planted{G: g, Truth: truth, K: k}, nil
}

// ringPairs lists adjacent cluster pairs on a ring; for k==2 the single pair
// appears once.
func ringPairs(k int) [][2]int {
	if k == 2 {
		return [][2]int{{0, 1}}
	}
	out := make([][2]int, 0, k)
	for c := 0; c < k; c++ {
		out = append(out, [2]int{c, (c + 1) % k})
	}
	return out
}

// addCrossMatching adds a random perfect matching between node blocks
// [aBase, aBase+size) and [bBase, bBase+size), avoiding edges in used.
// Collisions with existing edges are repaired by transpositions inside the
// permutation (whole-permutation rejection fails already at a handful of
// stacked matchings, since the clean probability decays like e^{-c}).
func addCrossMatching(b *graph.Builder, used map[[2]int32]bool, aBase, bBase, size int, r *rng.RNG) error {
	const maxRestarts = 40
	for attempt := 0; attempt < maxRestarts; attempt++ {
		perm := r.Perm(size)
		var conflicts []int
		for i := 0; i < size; i++ {
			if used[edgeKey(aBase+i, bBase+perm[i])] {
				conflicts = append(conflicts, i)
			}
		}
		budget := 200 * (len(conflicts) + 1)
		for len(conflicts) > 0 && budget > 0 {
			budget--
			ci := conflicts[len(conflicts)-1]
			j := r.Intn(size)
			if j == ci {
				continue
			}
			// Swapping perm[ci] and perm[j] must leave both rows clean.
			if used[edgeKey(aBase+ci, bBase+perm[j])] || used[edgeKey(aBase+j, bBase+perm[ci])] {
				continue
			}
			// Row j must not itself be a pending conflict (swapping with a
			// conflicted row is fine only if it fixes both; the check above
			// already guarantees row j ends clean).
			perm[ci], perm[j] = perm[j], perm[ci]
			conflicts = conflicts[:len(conflicts)-1]
		}
		if len(conflicts) > 0 {
			continue
		}
		for i := 0; i < size; i++ {
			u, v := aBase+i, bBase+perm[i]
			b.AddEdge(u, v)
			used[edgeKey(u, v)] = true
		}
		return nil
	}
	return fmt.Errorf("gen: could not place cross matching without duplicates")
}

// SBM draws a stochastic block model: nodes are split into len(sizes) blocks;
// each within-block pair is an edge with probability pIn and each
// cross-block pair with probability pOut. Uses geometric skipping so sparse
// graphs cost O(m) rather than O(n^2).
func SBM(sizes []int, pIn, pOut float64, r *rng.RNG) (*Planted, error) {
	if pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		return nil, fmt.Errorf("gen: probabilities out of range")
	}
	n := 0
	truth := []int{}
	starts := make([]int, len(sizes))
	for bi, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("gen: block size must be positive")
		}
		starts[bi] = n
		n += s
		for i := 0; i < s; i++ {
			truth = append(truth, bi)
		}
	}
	b := graph.NewBuilder(n)
	// Within-block pairs.
	for bi, s := range sizes {
		base := starts[bi]
		samplePairs(int64(s)*int64(s-1)/2, pIn, r, func(idx int64) {
			i, j := pairFromIndex(idx)
			b.AddEdge(base+int(i), base+int(j))
		})
	}
	// Cross-block pairs.
	for bi := range sizes {
		for bj := bi + 1; bj < len(sizes); bj++ {
			si, sj := sizes[bi], sizes[bj]
			baseI, baseJ := starts[bi], starts[bj]
			samplePairs(int64(si)*int64(sj), pOut, r, func(idx int64) {
				i := idx / int64(sj)
				j := idx % int64(sj)
				b.AddEdge(baseI+int(i), baseJ+int(j))
			})
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Planted{G: g, Truth: truth, K: len(sizes)}, nil
}

// samplePairs visits each index in [0, total) independently with probability
// p, using geometric skipping.
func samplePairs(total int64, p float64, r *rng.RNG, visit func(idx int64)) {
	if p <= 0 || total == 0 {
		return
	}
	if p >= 1 {
		for i := int64(0); i < total; i++ {
			visit(i)
		}
		return
	}
	logq := math.Log1p(-p)
	idx := int64(-1)
	for {
		u := r.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		skip := int64(math.Floor(math.Log(u) / logq))
		idx += 1 + skip
		if idx >= total {
			return
		}
		visit(idx)
	}
}

// pairFromIndex maps a linear index over {(i,j): 0 <= j < i < s} back to the
// pair, using the triangular-number inverse.
func pairFromIndex(idx int64) (int64, int64) {
	// Find the largest i with i*(i-1)/2 <= idx.
	i := int64((1 + math.Sqrt(1+8*float64(idx))) / 2)
	for i*(i-1)/2 > idx {
		i--
	}
	for (i+1)*i/2 <= idx {
		i++
	}
	j := idx - i*(i-1)/2
	return i, j
}

// SBMHetero draws a stochastic block model with per-block internal edge
// probabilities, producing almost-regular graphs with a controllable degree
// ratio between blocks (the §4.5 setting).
func SBMHetero(sizes []int, pIn []float64, pOut float64, r *rng.RNG) (*Planted, error) {
	if len(pIn) != len(sizes) {
		return nil, fmt.Errorf("gen: %d pIn values for %d blocks", len(pIn), len(sizes))
	}
	for _, p := range pIn {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("gen: pIn out of range")
		}
	}
	if pOut < 0 || pOut > 1 {
		return nil, fmt.Errorf("gen: pOut out of range")
	}
	n := 0
	truth := []int{}
	starts := make([]int, len(sizes))
	for bi, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("gen: block size must be positive")
		}
		starts[bi] = n
		n += s
		for i := 0; i < s; i++ {
			truth = append(truth, bi)
		}
	}
	b := graph.NewBuilder(n)
	for bi, s := range sizes {
		base := starts[bi]
		samplePairs(int64(s)*int64(s-1)/2, pIn[bi], r, func(idx int64) {
			i, j := pairFromIndex(idx)
			b.AddEdge(base+int(i), base+int(j))
		})
	}
	for bi := range sizes {
		for bj := bi + 1; bj < len(sizes); bj++ {
			si, sj := sizes[bi], sizes[bj]
			baseI, baseJ := starts[bi], starts[bj]
			samplePairs(int64(si)*int64(sj), pOut, r, func(idx int64) {
				i := idx / int64(sj)
				j := idx % int64(sj)
				b.AddEdge(baseI+int(i), baseJ+int(j))
			})
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Planted{G: g, Truth: truth, K: len(sizes)}, nil
}

// SBMBalanced is a convenience wrapper for k equal blocks of the given size
// with expected internal degree dIn and expected external degree dOut
// (to each other block combined).
func SBMBalanced(k, size int, dIn, dOut float64, r *rng.RNG) (*Planted, error) {
	if k < 1 {
		return nil, fmt.Errorf("gen: k must be positive")
	}
	sizes := make([]int, k)
	for i := range sizes {
		sizes[i] = size
	}
	pIn := dIn / float64(size-1)
	var pOut float64
	if k > 1 {
		pOut = dOut / float64((k-1)*size)
	}
	if pIn > 1 {
		pIn = 1
	}
	if pOut > 1 {
		pOut = 1
	}
	return SBM(sizes, pIn, pOut, r)
}

// PowerLawCluster plants k communities whose internal structure follows a
// Chung–Lu expected-degree model with a power-law weight distribution
// (exponent gamma, weights in [wMin, wMax]), joined by sparse uniform cross
// edges with expected external degree dOut per node. This is the
// "networks occurring in practice" family from the paper's introduction:
// heavy-tailed degrees stress the almost-regular assumption of §4.5.
func PowerLawCluster(k, size int, gamma, wMin, wMax, dOut float64, r *rng.RNG) (*Planted, error) {
	if k < 1 || size < 2 {
		return nil, fmt.Errorf("gen: need k >= 1 and size >= 2")
	}
	if gamma <= 1 || wMin <= 0 || wMax < wMin {
		return nil, fmt.Errorf("gen: invalid power-law parameters")
	}
	n := k * size
	b := graph.NewBuilder(n)
	truth := make([]int, n)
	for blk := 0; blk < k; blk++ {
		base := blk * size
		// Draw weights by inverse-transform sampling of the bounded Pareto.
		w := make([]float64, size)
		a := math.Pow(wMin, 1-gamma)
		c := math.Pow(wMax, 1-gamma)
		var totalW float64
		for i := range w {
			u := r.Float64()
			w[i] = math.Pow(a+u*(c-a), 1/(1-gamma))
			totalW += w[i]
			truth[base+i] = blk
		}
		// Chung–Lu: P[{i,j}] = min(1, w_i w_j / W).
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				p := w[i] * w[j] / totalW
				if p > 1 {
					p = 1
				}
				if r.Bernoulli(p) {
					b.AddEdge(base+i, base+j)
				}
			}
		}
	}
	// Sparse uniform cross edges.
	if k > 1 && dOut > 0 {
		pOut := dOut / float64((k-1)*size)
		if pOut > 1 {
			pOut = 1
		}
		for bi := 0; bi < k; bi++ {
			for bj := bi + 1; bj < k; bj++ {
				baseI, baseJ := bi*size, bj*size
				samplePairs(int64(size)*int64(size), pOut, r, func(idx int64) {
					i := idx / int64(size)
					j := idx % int64(size)
					b.AddEdge(baseI+int(i), baseJ+int(j))
				})
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Planted{G: g, Truth: truth, K: k}, nil
}

// GiantComponent restricts a planted graph to its largest connected
// component, remapping ground truth. Generators based on random models can
// produce a few isolated vertices; experiments use this to clean up.
func GiantComponent(p *Planted) *Planted {
	comp, nc := p.G.ConnectedComponents()
	if nc == 1 {
		return p
	}
	counts := make([]int, nc)
	for _, c := range comp {
		counts[c]++
	}
	best := 0
	for c, cnt := range counts {
		if cnt > counts[best] {
			best = c
		}
	}
	keep := []int{}
	for v := 0; v < p.G.N(); v++ {
		if comp[v] == best {
			keep = append(keep, v)
		}
	}
	sub, ids := p.G.InducedSubgraph(keep)
	truth := make([]int, sub.N())
	for i, old := range ids {
		truth[i] = p.Truth[old]
	}
	// Compact label space in case a whole block vanished.
	remap := map[int]int{}
	for i, t := range truth {
		if _, ok := remap[t]; !ok {
			remap[t] = len(remap)
		}
		truth[i] = remap[t]
	}
	return &Planted{G: sub, Truth: truth, K: len(remap)}
}
