package gen

import (
	"testing"

	"repro/internal/rng"
)

func TestSBMHetero(t *testing.T) {
	r := rng.New(1)
	p, err := SBMHetero([]int{200, 200}, []float64{0.1, 0.3}, 0.005, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.G.N() != 400 || p.K != 2 {
		t.Fatalf("shape: %v", p.G)
	}
	// Block 1 should be denser: compare average internal degrees.
	deg := func(base, size int) float64 {
		total := 0
		for v := base; v < base+size; v++ {
			total += p.G.Degree(v)
		}
		return float64(total) / float64(size)
	}
	d0, d1 := deg(0, 200), deg(200, 200)
	if d1 < 2*d0 {
		t.Errorf("expected block 1 ~3x denser: %.1f vs %.1f", d0, d1)
	}
}

func TestSBMHeteroErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := SBMHetero([]int{5}, []float64{0.1, 0.2}, 0, r); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := SBMHetero([]int{5}, []float64{1.5}, 0, r); err == nil {
		t.Error("pIn > 1 should fail")
	}
	if _, err := SBMHetero([]int{5}, []float64{0.5}, -0.1, r); err == nil {
		t.Error("negative pOut should fail")
	}
	if _, err := SBMHetero([]int{0}, []float64{0.5}, 0.1, r); err == nil {
		t.Error("zero block should fail")
	}
}

func TestPowerLawCluster(t *testing.T) {
	r := rng.New(3)
	p, err := PowerLawCluster(3, 200, 2.5, 5, 40, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.G.N() != 600 || p.K != 3 {
		t.Fatalf("shape: %v", p.G)
	}
	// Heavy tail: max degree should be well above the average.
	avg := 2 * float64(p.G.M()) / float64(p.G.N())
	if float64(p.G.MaxDegree()) < 2*avg {
		t.Errorf("no heavy tail: max %d avg %.1f", p.G.MaxDegree(), avg)
	}
	// Planted structure: each block's conductance should be modest.
	members := make([][]int, 3)
	for v, c := range p.Truth {
		members[c] = append(members[c], v)
	}
	for c, s := range members {
		if phi := p.G.Conductance(s); phi > 0.35 {
			t.Errorf("block %d conductance %v too high", c, phi)
		}
	}
}

func TestPowerLawClusterSingle(t *testing.T) {
	r := rng.New(5)
	p, err := PowerLawCluster(1, 100, 2.2, 3, 20, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.G.N() != 100 || p.K != 1 {
		t.Fatalf("shape: %v", p.G)
	}
}

func TestPowerLawClusterErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := PowerLawCluster(0, 10, 2.5, 1, 5, 1, r); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := PowerLawCluster(2, 1, 2.5, 1, 5, 1, r); err == nil {
		t.Error("size=1 should fail")
	}
	if _, err := PowerLawCluster(2, 10, 1.0, 1, 5, 1, r); err == nil {
		t.Error("gamma<=1 should fail")
	}
	if _, err := PowerLawCluster(2, 10, 2.5, 5, 1, 1, r); err == nil {
		t.Error("wMax < wMin should fail")
	}
}

func TestClusteredRingManyCrossMatchings(t *testing.T) {
	// 16 stacked matchings between adjacent clusters: whole-permutation
	// rejection would fail with probability ~1-e^{-15}; the transposition
	// repair must succeed.
	r := rng.New(7)
	p, err := ClusteredRing(4, 64, 30, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	wantDeg := 30 + 2*16
	if !p.G.IsRegular() || p.G.MaxDegree() != wantDeg {
		t.Fatalf("expected %d-regular, got [%d,%d]", wantDeg, p.G.MinDegree(), p.G.MaxDegree())
	}
}
