package dist

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
)

// ringNeighbors is the conflict adjacency of the ring workload below: every
// firing node may send to its two ring neighbours.
func ringNeighbors(n int) func(v int) []int32 {
	return func(v int) []int32 {
		return []int32{int32((v + n - 1) % n), int32((v + 1) % n)}
	}
}

// asyncRingTranscript runs the raw async ring workload — every firing node
// logs its mailbox to its own per-node transcript, then pushes one message
// to a random ring neighbour from its private stream — and returns the
// per-node transcripts, the final per-node mailbox contents, and the counter
// totals. With sch == (AsyncSched{}) this is the serial reference; any other
// configuration must reproduce it bit for bit.
func asyncRingTranscript(t *testing.T, n, steps int, seed uint64, crashed []int,
	model DeliveryModel, sch AsyncSched) ([]string, []string, [3]int64) {
	t.Helper()
	net := NewNetwork[int](n, 1)
	defer net.Close()
	if model != nil {
		net.SetDeliveryModel(model)
	}
	for _, v := range crashed {
		net.Crash(v)
	}
	rngs := make([]*rng.RNG, n)
	for v := range rngs {
		rngs[v] = rng.New(seed + uint64(v)*0x9e37)
	}
	logs := make([]string, n)
	fired := make([]int, n)
	net.RunAsyncSched(steps, seed, sch, func(v int) {
		s := fmt.Sprintf("|f%d:", fired[v])
		for _, e := range net.Recv(v) {
			s += fmt.Sprintf("(%d,%d)", e.From, e.Body)
		}
		logs[v] += s
		fired[v]++
		to := (v + 1) % n
		if rngs[v].Bool() {
			to = (v + n - 1) % n
		}
		net.Send(v, to, v*1000+fired[v], 1)
	})
	final := make([]string, n)
	for v := 0; v < n; v++ {
		for _, e := range net.Recv(v) {
			final[v] += fmt.Sprintf("(%d,%d)", e.From, e.Body)
		}
	}
	return logs, final, [3]int64{net.Counter().Messages(), net.Counter().Words(), net.Counter().Dropped()}
}

// TestRunAsyncSchedMatchesSerial pins the parallel scheduler's contract: for
// every pool size, GOMAXPROCS, batch cap, fault model, and crash set, the
// batched execution replays the serial transcript bit for bit — same mailbox
// at every firing, same final mailboxes, same counters.
func TestRunAsyncSchedMatchesSerial(t *testing.T) {
	const n, steps = 23, 800
	faults := LinkFaults{DropProb: 0.1, DelayProb: 0.3, MaxPhases: 2, Seed: 7}
	cases := []struct {
		name    string
		crashed []int
		model   DeliveryModel
	}{
		{"fault-free", nil, nil},
		{"link-faults", nil, faults},
		{"crashes+faults", []int{3, 11}, faults},
	}
	for _, tc := range cases {
		wantLogs, wantFinal, wantCounts := asyncRingTranscript(t, n, steps, 42, tc.crashed, tc.model, AsyncSched{})
		any := false
		for _, l := range wantLogs {
			if len(l) > 0 {
				any = true
			}
		}
		if !any {
			t.Fatalf("%s: serial reference produced an empty transcript", tc.name)
		}
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
			for _, workers := range []int{2, 4} {
				for _, maxBatch := range []int{0, 1, 3} {
					pool := sched.NewPool(workers)
					sch := AsyncSched{Adjacency: ringNeighbors(n), Pool: pool, MaxBatch: maxBatch}
					logs, final, counts := asyncRingTranscript(t, n, steps, 42, tc.crashed, tc.model, sch)
					pool.Close()
					id := fmt.Sprintf("%s procs=%d workers=%d maxBatch=%d", tc.name, procs, workers, maxBatch)
					if counts != wantCounts {
						t.Errorf("%s: counters %v != serial %v", id, counts, wantCounts)
					}
					for v := 0; v < n; v++ {
						if logs[v] != wantLogs[v] {
							t.Fatalf("%s: node %d transcript diverged\n parallel %q\n serial   %q",
								id, v, logs[v], wantLogs[v])
						}
						if final[v] != wantFinal[v] {
							t.Fatalf("%s: node %d final mailbox diverged\n parallel %q\n serial   %q",
								id, v, final[v], wantFinal[v])
						}
					}
				}
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}

// TestRunAsyncSchedBatches verifies the scheduler actually batches: on a
// sparse conflict graph with a multi-worker pool, speculative execution must
// fire more than one node per window at least once (otherwise the parallel
// path silently degraded to serial and the equality test above proves
// nothing).
func TestRunAsyncSchedBatches(t *testing.T) {
	const n, steps = 64, 400
	net := NewNetwork[int](n, 1)
	defer net.Close()
	pool := sched.NewPool(4)
	defer pool.Close()
	var cur, maxC atomic.Int32
	net.RunAsyncSched(steps, 3, AsyncSched{Adjacency: ringNeighbors(n), Pool: pool}, func(v int) {
		c := cur.Add(1)
		for {
			m := maxC.Load()
			if c <= m || maxC.CompareAndSwap(m, c) {
				break
			}
		}
		// Yield so co-members of the window get to enter fn even on one
		// CPU: speculation runs them as separate pool goroutines.
		runtime.Gosched()
		net.Send(v, (v+1)%n, v, 1)
		cur.Add(-1)
	})
	if maxC.Load() < 2 {
		t.Errorf("no window ever executed two firings concurrently (max %d)", maxC.Load())
	}
}

// TestRunAsyncSchedForeignSendPanics pins the speculation contract: a
// callback sending on behalf of a node that is not firing in the current
// batch must panic rather than corrupt another member's buffer.
func TestRunAsyncSchedForeignSendPanics(t *testing.T) {
	const n = 32
	net := NewNetwork[int](n, 1)
	defer net.Close()
	pool := sched.NewPool(4)
	defer pool.Close()
	defer func() {
		if recover() == nil {
			t.Error("speculative Send from a non-firing node should panic")
		}
	}()
	net.RunAsyncSched(200, 5, AsyncSched{Adjacency: ringNeighbors(n), Pool: pool}, func(v int) {
		// Send on behalf of v's ring successor. A neighbour of a batch
		// member is never itself a member, so in any multi-member window
		// this is a speculative send from a non-firing node — the contract
		// violation the scheduler must reject.
		net.Send((v+1)%n, v, 0, 1)
	})
}

// TestRunAsyncSchedQuiesce: the parallel path honours the same quiesce
// contract as the serial one — with a delay model, no sent-and-undropped
// message is stranded in the rings when the run returns.
func TestRunAsyncSchedQuiesce(t *testing.T) {
	const n, steps = 16, 300
	net := NewNetwork[int](n, 1)
	defer net.Close()
	net.SetDeliveryModel(LinkFaults{DelayProb: 0.5, MaxPhases: 3, Seed: 9})
	pool := sched.NewPool(3)
	defer pool.Close()
	reads := make([]int, n) // per-node: fn runs concurrently inside windows
	net.RunAsyncSched(steps, 21, AsyncSched{Adjacency: ringNeighbors(n), Pool: pool}, func(v int) {
		reads[v] += len(net.Recv(v))
		net.Send(v, (v+1)%n, v, 1)
	})
	read, pending := 0, 0
	for v := 0; v < n; v++ {
		read += reads[v]
		pending += len(net.Recv(v))
	}
	sent := int(net.Counter().Messages())
	dropped := int(net.Counter().Dropped())
	if read+pending+dropped != sent {
		t.Errorf("read %d + pending %d + dropped %d != sent %d: messages stranded in flight",
			read, pending, dropped, sent)
	}
}
