package dist

import "testing"

func TestPartitionProperties(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{0, 1}, {1, 1}, {5, 3}, {7, 7}, {257, 4}, {1000, 7}, {3, 8},
	} {
		b := Partition(tc.n, tc.shards)
		if len(b) != tc.shards+1 || b[0] != 0 || b[tc.shards] != tc.n {
			t.Fatalf("Partition(%d, %d) = %v: bad frame", tc.n, tc.shards, b)
		}
		for i := 0; i < tc.shards; i++ {
			size := b[i+1] - b[i]
			if size < 0 {
				t.Fatalf("Partition(%d, %d): shard %d has negative size", tc.n, tc.shards, i)
			}
			if tc.shards <= tc.n && size == 0 {
				t.Fatalf("Partition(%d, %d): shard %d empty", tc.n, tc.shards, i)
			}
			if min := tc.n / tc.shards; size != min && size != min+1 {
				t.Fatalf("Partition(%d, %d): shard %d size %d not balanced", tc.n, tc.shards, i, size)
			}
		}
	}
}

func TestPartitionMatchesNetworkBounds(t *testing.T) {
	// External shardings built from Partition must line up with the
	// network's ownership map — that is what lets a wire transport reason
	// about which nodes a destination shard holds.
	net := NewNetwork[int](257, 5)
	defer net.Close()
	bounds := Partition(257, 5)
	for v := 0; v < 257; v++ {
		w := net.ShardOf(v)
		if v < bounds[w] || v >= bounds[w+1] {
			t.Fatalf("node %d: ShardOf %d but Partition bounds %v", v, w, bounds)
		}
	}
}

func TestMachineMap(t *testing.T) {
	for _, tc := range []struct{ machines, shards int }{
		{1, 1}, {1, 8}, {2, 8}, {3, 8}, {8, 8}, {5, 3}, // 5,3 clamps to 3
	} {
		m := NewMachineMap(tc.machines, tc.shards)
		wantM := tc.machines
		if wantM > tc.shards {
			wantM = tc.shards
		}
		if m.Machines() != wantM || m.Shards() != tc.shards {
			t.Fatalf("NewMachineMap(%d, %d): got %d machines, %d shards",
				tc.machines, tc.shards, m.Machines(), m.Shards())
		}
		// Every shard maps to exactly the machine whose range contains it,
		// and the ranges tile [0, shards) contiguously.
		next := 0
		for mc := 0; mc < m.Machines(); mc++ {
			lo, hi := m.ShardRange(mc)
			if lo != next || hi <= lo {
				t.Fatalf("machines=%d shards=%d: machine %d range [%d,%d) not contiguous",
					tc.machines, tc.shards, mc, lo, hi)
			}
			next = hi
			for s := lo; s < hi; s++ {
				if got := m.MachineOf(s); got != mc {
					t.Fatalf("machines=%d shards=%d: MachineOf(%d) = %d, want %d",
						tc.machines, tc.shards, s, got, mc)
				}
			}
		}
		if next != tc.shards {
			t.Fatalf("machines=%d shards=%d: ranges cover %d shards", tc.machines, tc.shards, next)
		}
	}
}

func TestMachineMapValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 4}, {4, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMachineMap(%d, %d) should panic", bad[0], bad[1])
				}
			}()
			NewMachineMap(bad[0], bad[1])
		}()
	}
}

func TestCaptureHostEnv(t *testing.T) {
	env := CaptureHostEnv()
	if env.NumCPU < 1 || env.GoMaxProcs < 1 {
		t.Fatalf("implausible host env: %+v", env)
	}
	if env.Go == "" {
		t.Fatal("empty Go version")
	}
}
