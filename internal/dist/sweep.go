package dist

import (
	"runtime"
	"slices"
)

// WorkerSweep is the benchmark grid shared by the repo's perf suites: the
// sequential baseline, a small pool, and everything the hardware has, with
// duplicates removed (on a 1- or 4-CPU host GOMAXPROCS collapses into an
// earlier entry) so each configuration runs exactly once. Keeping the grid
// in one place keeps BENCH_*.json rows comparable across suites.
func WorkerSweep() []int {
	out := []int{1}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if !slices.Contains(out, w) {
			out = append(out, w)
		}
	}
	return out
}
