package dist

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
)

// TestMailboxCapRejectsNewest pins the overflow policy's semantics on a
// hand-checkable instance: with cap 2, a mailbox assembled as senders
// {1, 2, 3} keeps the two lowest-ordered messages and bounces the newest.
func TestMailboxCapRejectsNewest(t *testing.T) {
	net := NewNetwork[int](4, 1)
	defer net.Close()
	net.SetMailboxCap(2)
	if net.MailboxCap() != 2 {
		t.Fatal("MailboxCap() disagrees with SetMailboxCap")
	}
	net.Phase(func(v int) {
		if v > 0 {
			net.Send(v, 0, v*10, 1)
		}
	})
	got := net.Recv(0)
	if len(got) != 2 || got[0].From != 1 || got[1].From != 2 {
		t.Errorf("mailbox %+v, want messages from senders 1 and 2", got)
	}
	if r := net.Counter().Rejected(); r != 1 {
		t.Errorf("rejected = %d, want 1", r)
	}
	if d := net.Counter().Dropped(); d != 0 {
		t.Errorf("dropped = %d, want 0 (rejection is not a drop)", d)
	}
	if m := net.Counter().Messages(); m != 3 {
		t.Errorf("messages = %d, want 3 (rejected messages still count as sent)", m)
	}
}

// boundedTranscript runs a heavy fan-in workload — every node sprays a
// deterministic burst at a few hub destinations, then the hubs reply — on a
// bounded-mailbox network, and returns the per-node delivery logs plus the
// counter totals (messages, words, dropped, rejected).
func boundedTranscript(workers, cap int, configure func(net *Network[int])) ([]string, [4]int64) {
	const n = 97
	net := NewNetwork[int](n, workers)
	defer net.Close()
	net.SetMailboxCap(cap)
	if configure != nil {
		configure(net)
	}
	logs := make([]string, n)
	record := func(v int) {
		for _, e := range net.Recv(v) {
			logs[v] += fmt.Sprintf("(%d,%d)", e.From, e.Body)
		}
	}
	net.Phase(func(v int) {
		for k := 0; k <= v%5; k++ {
			net.Send(v, (v*3+k)%7, v*100+k, int64(k+1)) // 7 hub mailboxes overflow
		}
	})
	net.Phase(func(v int) {
		record(v)
		for _, e := range net.Recv(v) {
			net.Send(v, e.From, e.Body+1, 2)
		}
	})
	for p := 0; p < 3; p++ {
		net.Phase(record)
	}
	return logs, [4]int64{net.Counter().Messages(), net.Counter().Words(),
		net.Counter().Dropped(), net.Counter().Rejected()}
}

// TestMailboxCapTranscriptAcrossWorkersAndTransports is the tentpole
// equality pin for the synchronous mode: with a bounded mailbox, the full
// delivery transcript — per-node logs, traffic counters, and the rejection
// tally — is byte-identical for every worker count and for the serialising
// Ring transport, fault-free and under a drop+delay model (which exercises
// the truncate-after-re-sort path).
func TestMailboxCapTranscriptAcrossWorkersAndTransports(t *testing.T) {
	faults := LinkFaults{DropProb: 0.15, DelayProb: 0.3, MaxPhases: 2, Seed: 13}
	for _, tc := range []struct {
		name  string
		model DeliveryModel
	}{
		{"fault-free", nil},
		{"drop+delay", faults},
	} {
		wantLogs, wantCounts := boundedTranscript(1, 3, func(net *Network[int]) {
			if tc.model != nil {
				net.SetDeliveryModel(tc.model)
			}
		})
		if wantCounts[3] == 0 {
			t.Fatalf("%s: cap 3 rejected nothing, test is vacuous", tc.name)
		}
		for _, workers := range []int{2, 3, 8} {
			for _, ring := range []bool{false, true} {
				logs, counts := boundedTranscript(workers, 3, func(net *Network[int]) {
					if tc.model != nil {
						net.SetDeliveryModel(tc.model)
					}
					if ring {
						net.SetTransport(NewRing[int](net.Workers(), 5))
					}
				})
				id := fmt.Sprintf("%s workers=%d ring=%v", tc.name, workers, ring)
				if counts != wantCounts {
					t.Errorf("%s: counters %v != serial %v", id, counts, wantCounts)
				}
				for v := range logs {
					if logs[v] != wantLogs[v] {
						t.Fatalf("%s: node %d transcript diverged\n got  %q\n want %q",
							id, v, logs[v], wantLogs[v])
					}
				}
			}
		}
	}
}

// boundedAsyncTranscript mirrors sched_async_test's ring workload with a
// mailbox cap: per-node firing logs, final mailboxes, and counters
// including rejections.
func boundedAsyncTranscript(t *testing.T, n, steps, cap int, seed uint64,
	model DeliveryModel, sch AsyncSched) ([]string, []string, [4]int64) {
	t.Helper()
	net := NewNetwork[int](n, 1)
	defer net.Close()
	net.SetMailboxCap(cap)
	if model != nil {
		net.SetDeliveryModel(model)
	}
	rngs := make([]*rng.RNG, n)
	for v := range rngs {
		rngs[v] = rng.New(seed + uint64(v)*0x9e37)
	}
	logs := make([]string, n)
	fired := make([]int, n)
	net.RunAsyncSched(steps, seed, sch, func(v int) {
		s := fmt.Sprintf("|f%d:", fired[v])
		for _, e := range net.Recv(v) {
			s += fmt.Sprintf("(%d,%d)", e.From, e.Body)
		}
		logs[v] += s
		fired[v]++
		// Fan the message out to both neighbours so mailboxes actually
		// fill between firings.
		net.Send(v, (v+1)%n, v*1000+fired[v], 1)
		if rngs[v].Bool() {
			net.Send(v, (v+n-1)%n, -(v*1000 + fired[v]), 1)
		}
	})
	final := make([]string, n)
	for v := 0; v < n; v++ {
		for _, e := range net.Recv(v) {
			final[v] += fmt.Sprintf("(%d,%d)", e.From, e.Body)
		}
	}
	return logs, final, [4]int64{net.Counter().Messages(), net.Counter().Words(),
		net.Counter().Dropped(), net.Counter().Rejected()}
}

// TestMailboxCapAsyncSchedMatchesSerial extends the batch-scheduler
// equality contract to bounded mailboxes: rejection verdicts depend on
// mailbox occupancy at delivery time, so the speculative parallel execution
// must reproduce the serial run's every rejection — logs, final mailboxes,
// and all four counters — across pool sizes, batch caps, and GOMAXPROCS.
func TestMailboxCapAsyncSchedMatchesSerial(t *testing.T) {
	const n, steps, cap = 23, 800, 2
	faults := LinkFaults{DropProb: 0.1, DelayProb: 0.3, MaxPhases: 2, Seed: 7}
	for _, tc := range []struct {
		name  string
		model DeliveryModel
	}{
		{"fault-free", nil},
		{"link-faults", faults},
	} {
		wantLogs, wantFinal, wantCounts := boundedAsyncTranscript(t, n, steps, cap, 42, tc.model, AsyncSched{})
		if wantCounts[3] == 0 {
			t.Fatalf("%s: cap %d rejected nothing, test is vacuous", tc.name, cap)
		}
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
			for _, workers := range []int{2, 4} {
				for _, maxBatch := range []int{0, 3} {
					pool := sched.NewPool(workers)
					sch := AsyncSched{Adjacency: ringNeighbors(n), Pool: pool, MaxBatch: maxBatch}
					logs, final, counts := boundedAsyncTranscript(t, n, steps, cap, 42, tc.model, sch)
					pool.Close()
					id := fmt.Sprintf("%s procs=%d workers=%d maxBatch=%d", tc.name, procs, workers, maxBatch)
					if counts != wantCounts {
						t.Errorf("%s: counters %v != serial %v", id, counts, wantCounts)
					}
					for v := 0; v < n; v++ {
						if logs[v] != wantLogs[v] {
							t.Fatalf("%s: node %d transcript diverged\n parallel %q\n serial   %q",
								id, v, logs[v], wantLogs[v])
						}
						if final[v] != wantFinal[v] {
							t.Fatalf("%s: node %d final mailbox diverged\n parallel %q\n serial   %q",
								id, v, final[v], wantFinal[v])
						}
					}
				}
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}

// TestMailboxCapValidation: the cap must be rejected after the network has
// started and for negative values.
func TestMailboxCapValidation(t *testing.T) {
	net := NewNetwork[int](4, 1)
	defer net.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetMailboxCap(-1) should panic")
			}
		}()
		net.SetMailboxCap(-1)
	}()
	net.Phase(func(v int) {})
	defer func() {
		if recover() == nil {
			t.Error("SetMailboxCap after the network started should panic")
		}
	}()
	net.SetMailboxCap(2)
}

// FuzzBoundedMailboxDelivery fuzzes the bounded delivery ring against the
// unbounded reference: for an arbitrary send schedule, delay pattern, and
// cap, every mailbox after every barrier must (1) never exceed the cap and
// (2) be exactly the first-cap prefix of the unbounded run's mailbox —
// survivors are never reordered, and the rejected messages are exactly the
// overflow suffix. The counters must agree on everything but rejections.
func FuzzBoundedMailboxDelivery(f *testing.F) {
	f.Add(uint8(1), uint8(0), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(2), uint8(3), []byte{0xff, 0x10, 0x22, 0x31, 0x44, 0x05})
	f.Add(uint8(3), uint8(1), []byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, capByte, delayByte uint8, schedule []byte) {
		const n, phases = 11, 6
		cap := 1 + int(capByte%7)
		var model DeliveryModel
		if delayByte%4 != 0 {
			model = LinkFaults{
				DropProb:  float64(delayByte%3) * 0.15,
				DelayProb: float64(delayByte%5) * 0.1,
				MaxPhases: 1 + int(delayByte%3),
				Seed:      uint64(delayByte),
			}
		}
		run := func(capped bool) ([][]string, [4]int64) {
			net := NewNetwork[int](n, 3)
			defer net.Close()
			if capped {
				net.SetMailboxCap(cap)
			}
			if model != nil {
				net.SetDeliveryModel(model)
			}
			boxes := make([][]string, 0, phases)
			for p := 0; p < phases; p++ {
				net.Phase(func(v int) {
					// Each node replays the shared schedule from its own
					// offset: byte k in phase p makes node v send to
					// (v+byte)%n with the byte as payload.
					for k := v + p; k < len(schedule); k += n {
						b := int(schedule[k])
						net.Send(v, (v+b)%n, b, 1)
					}
				})
				snap := make([]string, n)
				for v := 0; v < n; v++ {
					for _, e := range net.Recv(v) {
						snap[v] += fmt.Sprintf("(%d,%d)", e.From, e.Body)
					}
				}
				boxes = append(boxes, snap)
			}
			return boxes, [4]int64{net.Counter().Messages(), net.Counter().Words(),
				net.Counter().Dropped(), net.Counter().Rejected()}
		}
		free, freeCounts := run(false)
		bounded, boundedCounts := run(true)
		if freeCounts[3] != 0 {
			t.Fatalf("unbounded run rejected %d messages", freeCounts[3])
		}
		if boundedCounts[0] != freeCounts[0] || boundedCounts[1] != freeCounts[1] || boundedCounts[2] != freeCounts[2] {
			t.Fatalf("cap changed send/drop accounting: %v vs %v", boundedCounts, freeCounts)
		}
		var wantRejected int64
		for p := range free {
			for v := 0; v < n; v++ {
				// Reconstruct the expected truncation from the unbounded
				// mailbox: the capped mailbox must be its first-cap prefix.
				fullLen, prefix := 0, ""
				count := 0
				for _, c := range splitCells(free[p][v]) {
					fullLen++
					if count < cap {
						prefix += c
						count++
					}
				}
				if over := fullLen - cap; over > 0 {
					wantRejected += int64(over)
				}
				if bounded[p][v] != prefix {
					t.Fatalf("phase %d node %d: capped mailbox %q != prefix %q of unbounded %q",
						p, v, bounded[p][v], prefix, free[p][v])
				}
			}
		}
		if boundedCounts[3] != wantRejected {
			t.Fatalf("rejected = %d, want %d", boundedCounts[3], wantRejected)
		}
	})
}

// splitCells splits "(a,b)(c,d)" transcript strings back into cells.
func splitCells(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 1
		for i < len(s) && s[i] != '(' {
			i++
		}
		out = append(out, s[:i])
		s = s[i:]
	}
	return out
}
