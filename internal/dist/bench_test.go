package dist

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

// mix is a cheap splitmix-style scramble standing in for per-node compute.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BenchmarkDistPhase measures one full phase — node execution, barrier,
// delivery, mailbox ordering — on a 50k-node ring where every node does a
// slice of hash work over its mail and forwards to two neighbours. This is
// the runtime's hot path; the worker sweep is the repo's parallel-speedup
// trajectory (on a multi-core host GOMAXPROCS should beat workers=1).
func BenchmarkDistPhase(b *testing.B) {
	const n = 50_000
	for _, workers := range WorkerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			net := NewNetwork[uint64](n, workers)
			defer net.Close()
			// Prime one message per node so every measured phase both
			// receives and sends.
			net.Phase(func(v int) { net.Send(v, (v+1)%n, uint64(v), 1) })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Phase(func(v int) {
					h := uint64(v)
					for _, e := range net.Recv(v) {
						h = mix(h ^ e.Body)
					}
					for k := 0; k < 24; k++ {
						h = mix(h)
					}
					net.Send(v, (v+1)%n, h, 1)
					net.Send(v, (v+7919)%n, h>>32, 2)
				})
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
		})
	}
}

// BenchmarkDistPhaseDelay runs the BenchmarkDistPhase workload with a
// nonzero delay/drop model: the cost it adds over the plain phase is the
// price of the delivery pipeline's fault layer (per-message hashed coins,
// multi-slot rings, and the per-mailbox re-sort that delayed delivery
// forces). CI smoke-runs this configuration so a regression in the fault
// path cannot hide behind the fast path.
func BenchmarkDistPhaseDelay(b *testing.B) {
	const n = 50_000
	net := NewNetwork[uint64](n, 0)
	defer net.Close()
	net.SetDeliveryModel(LinkFaults{DropProb: 0.01, DelayProb: 0.05, MaxPhases: 2, Seed: 1})
	net.Phase(func(v int) { net.Send(v, (v+1)%n, uint64(v), 1) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Phase(func(v int) {
			h := uint64(v)
			for _, e := range net.Recv(v) {
				h = mix(h ^ e.Body)
			}
			for k := 0; k < 24; k++ {
				h = mix(h)
			}
			net.Send(v, (v+1)%n, h, 1)
			net.Send(v, (v+7919)%n, h>>32, 2)
		})
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
}

// BenchmarkDistPhaseObs is the observability overhead guard: the
// BenchmarkDistPhase workload with obs disabled (the nil-check baseline —
// must match BenchmarkDistPhase/workers=1 and report 0 allocs/op), with the
// metric counters on, and with a discarding tracer on top. CI smoke-runs all
// three rows so an obs hook growing an allocation or a hidden cost on the
// disabled path cannot land silently.
func BenchmarkDistPhaseObs(b *testing.B) {
	const n = 50_000
	modes := []struct {
		name string
		obsv func() *obs.Observer
	}{
		{"off", func() *obs.Observer { return nil }},
		{"metrics", func() *obs.Observer { return obs.NewObserver(obs.Options{}) }},
		{"trace", func() *obs.Observer {
			o := obs.NewObserver(obs.Options{})
			// Discarding tracer: measures event construction and the emit
			// call without growing a recording buffer across b.N phases.
			o.Tracer = obs.TracerFunc(func(obs.Event) {})
			return o
		}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			net := NewNetwork[uint64](n, 1)
			defer net.Close()
			net.SetObserver(mode.obsv())
			net.Phase(func(v int) { net.Send(v, (v+1)%n, uint64(v), 1) })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Phase(func(v int) {
					h := uint64(v)
					for _, e := range net.Recv(v) {
						h = mix(h ^ e.Body)
					}
					for k := 0; k < 24; k++ {
						h = mix(h)
					}
					net.Send(v, (v+1)%n, h, 1)
					net.Send(v, (v+7919)%n, h>>32, 2)
				})
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
		})
	}
}

// BenchmarkDistSend measures a single-node 1024-message fan-out phase:
// staging (outbox append plus sharded counter update) and the delivery of
// those 1024 envelopes at the barrier. Phase always delivers, so the two
// halves are measured together; compare against an idle phase on the same
// network to attribute a regression.
func BenchmarkDistSend(b *testing.B) {
	const n = 1024
	net := NewNetwork[uint64](n, 1)
	defer net.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Phase(func(v int) {
			if v == 0 {
				for k := 0; k < n; k++ {
					net.Send(0, k, uint64(k), 1)
				}
			}
		})
	}
	b.ReportMetric(float64(n), "sends/phase")
}
