package dist

import (
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/sched"
)

// TestPhaseEvents pins the phase span shape: one B/E pair per Phase on the
// phase-number clock, with the End carrying the per-phase counter deltas.
func TestPhaseEvents(t *testing.T) {
	const n = 16
	o := obs.NewObserver(obs.Options{Trace: true})
	net := NewNetwork[int](n, 1)
	defer net.Close()
	net.SetObserver(o)
	for p := 0; p < 3; p++ {
		net.Phase(func(v int) { net.Send(v, (v+1)%n, v, 2) })
	}
	events := o.Events()
	var spans int
	for i, e := range events {
		if e.Cat != "dist" || e.Name != "phase" {
			continue
		}
		switch e.Kind {
		case obs.KindBegin:
			if e.Tick != int64(spans) {
				t.Errorf("event %d: begin tick %d, want %d", i, e.Tick, spans)
			}
		case obs.KindEnd:
			spans++
			var sent, words int64
			for _, a := range e.Args {
				switch a.Key {
				case "sent":
					sent = a.Int
				case "words":
					words = a.Int
				}
			}
			if sent != n || words != 2*n {
				t.Errorf("event %d: phase delta sent=%d words=%d, want %d/%d", i, sent, words, n, 2*n)
			}
		}
	}
	if spans != 3 {
		t.Fatalf("got %d phase spans, want 3", spans)
	}
}

// TestRunAsyncSpanAndBatchEvents checks the async clocks: one run_async B/E
// span, and with a batched schedule at least one sched/batch instant whose
// fill ratio is consistent with its span/members args.
func TestRunAsyncSpanAndBatchEvents(t *testing.T) {
	const n = 64
	adj := func(v int) []int32 {
		return []int32{int32((v + 1) % n), int32((v + n - 1) % n)}
	}
	o := obs.NewObserver(obs.Options{Trace: true})
	net := NewNetwork[int](n, 1)
	defer net.Close()
	net.SetObserver(o)
	pool := sched.NewPool(4)
	defer pool.Close()
	net.RunAsyncSched(500, 77, AsyncSched{Adjacency: adj, Pool: pool}, func(v int) {
		for range net.Recv(v) {
		}
		net.Send(v, (v+1)%n, v, 1)
	})
	var begins, ends, batches int
	for _, e := range o.Events() {
		switch {
		case e.Cat == "dist" && e.Name == "run_async" && e.Kind == obs.KindBegin:
			begins++
		case e.Cat == "dist" && e.Name == "run_async" && e.Kind == obs.KindEnd:
			ends++
		case e.Cat == "sched" && e.Name == "batch":
			batches++
			var span, members int64
			var fill float64
			for _, a := range e.Args {
				switch a.Key {
				case "span":
					span = a.Int
				case "members":
					members = a.Int
				case "fill":
					fill = a.Float
				}
			}
			if span <= 0 || members > span {
				t.Fatalf("batch event span=%d members=%d", span, members)
			}
			if want := float64(members) / float64(span); fill != want {
				t.Fatalf("batch event fill=%v, want %v", fill, want)
			}
		}
	}
	if begins != 1 || ends != 1 {
		t.Fatalf("run_async spans B=%d E=%d, want 1/1", begins, ends)
	}
	if batches == 0 {
		t.Fatal("batched async run emitted no sched/batch instants")
	}
}

// TestHostEnvOverheadOnly pins satellite (a): a single-CPU capture is
// self-identifying via the overhead_only JSON field, and the field is
// omitted on multi-CPU hosts.
func TestHostEnvOverheadOnly(t *testing.T) {
	env := CaptureHostEnv()
	if env.OverheadOnly != (env.NumCPU == 1) {
		t.Fatalf("OverheadOnly=%v with NumCPU=%d", env.OverheadOnly, env.NumCPU)
	}
	data, err := json.Marshal(HostEnv{NumCPU: 1, GoMaxProcs: 1, OverheadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["overhead_only"] != true {
		t.Fatalf("overhead_only missing from %s", data)
	}
	data, _ = json.Marshal(HostEnv{NumCPU: 8, GoMaxProcs: 8})
	var m2 map[string]any
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	if _, present := m2["overhead_only"]; present {
		t.Fatalf("overhead_only should be omitted on multi-CPU capture: %s", data)
	}
}

// TestPhaseHotPathNoObsAllocs is the zero-overhead-when-off guard in test
// form: with no observer attached, a phase that sends on every node must not
// allocate on behalf of the obs layer. The bound covers the network's own
// steady-state allocations (mailbox growth is warmed away); the obs nil
// checks must add zero.
func TestPhaseHotPathNoObsAllocs(t *testing.T) {
	const n = 256
	net := NewNetwork[uint64](n, 1)
	defer net.Close()
	phase := func() {
		net.Phase(func(v int) {
			for _, e := range net.Recv(v) {
				_ = e
			}
			net.Send(v, (v+1)%n, uint64(v), 1)
		})
	}
	// Warm: let mailboxes, outboxes, and scratch reach steady state.
	for i := 0; i < 8; i++ {
		phase()
	}
	// The budget covers the pre-obs steady state (phase closure + pool run,
	// ~3 allocations regardless of n); a hook that allocated per node or per
	// message would show up as hundreds on this 256-node workload.
	if avg := testing.AllocsPerRun(20, phase); avg > 6 {
		t.Fatalf("unobserved phase allocates %.1f times per phase", avg)
	}
}
