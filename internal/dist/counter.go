package dist

import "sync/atomic"

// counterShard is one worker's private tally, padded out to its own cache
// line so concurrent Sends on different workers never contend. Each shard
// has a single writer; atomics make the totals safe to read at any time.
type counterShard struct {
	msgs     atomic.Int64
	words    atomic.Int64
	dropped  atomic.Int64
	rejected atomic.Int64
	_        [32]byte
}

// Counter accounts network traffic: one message per Send, plus the caller-
// declared word size of each message, plus a tally of messages the
// substrate lost (delivery-model drops and crashed destinations — always a
// subset of the messages counted as sent, because the sender did put them
// on the wire), plus a tally of messages bounced off a full mailbox at
// delivery time (SetMailboxCap). Totals are exact and deterministic for any
// worker count, because every Send contributes a fixed amount regardless of
// scheduling and overflow rejection is a pure function of the deterministic
// delivery order.
type Counter struct {
	shards []counterShard
}

func newCounter(workers int) *Counter {
	return &Counter{shards: make([]counterShard, workers)}
}

// add records one message of the given word size on the worker's shard.
func (c *Counter) add(shard int, words int64) {
	s := &c.shards[shard]
	s.msgs.Add(1)
	s.words.Add(words)
}

// drop records one substrate-lost message on the worker's shard.
func (c *Counter) drop(shard int) {
	c.shards[shard].dropped.Add(1)
}

// reject records n mailbox-overflow rejections on the worker's shard.
func (c *Counter) reject(shard int, n int64) {
	c.shards[shard].rejected.Add(n)
}

// Messages returns the total number of messages sent.
func (c *Counter) Messages() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].msgs.Load()
	}
	return t
}

// Words returns the total words sent on the wire.
func (c *Counter) Words() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].words.Load()
	}
	return t
}

// Dropped returns the number of sent messages the substrate lost.
func (c *Counter) Dropped() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].dropped.Load()
	}
	return t
}

// Rejected returns the number of messages that reached their destination
// shard but were bounced off a full mailbox (see Network.SetMailboxCap).
// Rejected messages are a subset of Messages and disjoint from Dropped:
// the substrate carried them, the receive buffer had no room.
func (c *Counter) Rejected() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].rejected.Load()
	}
	return t
}

// shardedCell is one padded tally slot of a ShardedInt.
type shardedCell struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedInt is a lock-free tally sharded per worker, for protocol-level
// counting inside Phase callbacks (the same pattern as the network's
// traffic Counter). A callback executing node v must add on shard
// Network.ShardOf(v): that worker is the only writer of the shard, so
// increments never contend, and the per-shard subtotals — not just the sum
// — are deterministic for any fixed worker count.
type ShardedInt struct {
	shards []shardedCell
}

// NewShardedInt creates a tally with the given number of shards (the
// network's worker count).
func NewShardedInt(shards int) *ShardedInt {
	if shards < 1 {
		shards = 1
	}
	return &ShardedInt{shards: make([]shardedCell, shards)}
}

// Add adds delta on the given shard.
func (s *ShardedInt) Add(shard int, delta int64) {
	s.shards[shard].v.Add(delta)
}

// Total returns the sum over all shards. It is safe to call at any time and
// deterministic once a phase barrier has completed.
func (s *ShardedInt) Total() int64 {
	var t int64
	for i := range s.shards {
		t += s.shards[i].v.Load()
	}
	return t
}
