package dist

import "sync/atomic"

// counterShard is one worker's private tally, padded out to its own cache
// line so concurrent Sends on different workers never contend. Each shard
// has a single writer; atomics make the totals safe to read at any time.
type counterShard struct {
	msgs  atomic.Int64
	words atomic.Int64
	_     [48]byte
}

// Counter accounts network traffic: one message per Send, plus the caller-
// declared word size of each message. Totals are exact and deterministic
// for any worker count, because every Send contributes a fixed amount
// regardless of scheduling.
type Counter struct {
	shards []counterShard
}

func newCounter(workers int) *Counter {
	return &Counter{shards: make([]counterShard, workers)}
}

// add records one message of the given word size on the worker's shard.
func (c *Counter) add(shard int, words int64) {
	s := &c.shards[shard]
	s.msgs.Add(1)
	s.words.Add(words)
}

// Messages returns the total number of messages sent.
func (c *Counter) Messages() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].msgs.Load()
	}
	return t
}

// Words returns the total words sent on the wire.
func (c *Counter) Words() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].words.Load()
	}
	return t
}
