package dist

import (
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
)

// RunAsync leaves the bulk-synchronous regime: it fires nodes one at a time
// for the given number of steps, in a randomized order drawn from a
// dedicated clock stream (the asynchronous time model of Boyd et al., where
// independent Poisson clocks serialise into a uniformly random firing
// sequence). Each step one uniformly random node v fires: fn(v) reads the
// node's accumulated mailbox with Recv(v) and stages messages with Send;
// after fn returns, v's mailbox is consumed (cleared) and the due messages
// are delivered. Messages staged with delay d become readable by their
// destination's firings after d further steps.
//
// Async mailbox semantics deliberately differ from Phase: mail accumulates
// in arrival order until the recipient fires (nothing expires at barriers),
// and the sorted-by-sender contract does not apply. Crashed nodes never
// fire — their steps are consumed idle, like clock ticks of a dead
// processor — and messages addressed to them are dropped at send time.
//
// Execution is single-threaded on the driving goroutine: asynchrony is a
// property of the time model, not of the implementation, and a serialized
// event order keeps determinism trivial — a run is a pure function of
// (steps, seed, the delivery model, and fn's own determinism). RunAsyncSched
// can execute independent batches of firings concurrently while replaying
// exactly this serial transcript. Traffic accounting flows through the same
// counters and the same Transport as the synchronous mode. When the run ends
// the network quiesces: delayed messages still in flight are flushed into
// their mailboxes, where the driving goroutine can collect them with Recv. A
// network that has run async cannot go back to Phase.
func (net *Network[T]) RunAsync(steps int, seed uint64, fn func(v int)) {
	net.RunAsyncSched(steps, seed, AsyncSched{}, fn)
}

// AsyncSched configures the parallel execution of an asynchronous run.
// The zero value is the serial execution of RunAsync; with a pool and an
// adjacency the run extracts independent sets from the firing schedule and
// executes each batch concurrently. Every configuration replays the
// bit-identical serial transcript: same mailbox contents at every firing,
// same counters, same delivery-model coins, same final state.
type AsyncSched struct {
	// Adjacency is the conflict oracle of the firing schedule: adj(v) must
	// list every node a firing of v may address with Send (for a protocol on
	// a graph, v's neighbours), and the relation must be symmetric. Nodes in
	// one batch are pairwise non-adjacent, which is what makes their firings
	// commute. nil disables batching (serial execution).
	Adjacency func(v int) []int32
	// Pool executes the speculative firings of a batch. nil, or a pool of
	// size 1, means serial execution.
	Pool *sched.Pool
	// MaxBatch caps the number of schedule steps one batch window may span;
	// 0 means 4× the pool size.
	MaxBatch int
}

// RunAsyncSched is RunAsync with an optional independent-set batch
// scheduler. Non-adjacent firings commute: a batch of pairwise non-adjacent,
// non-repeating nodes can run fn concurrently — each member reads a mailbox
// no other member can touch — while the effects (sends, deliveries, counter
// updates, mailbox consumption) are committed afterwards in serial schedule
// order. Concretely, each member's Sends are captured into a private
// speculation buffer during the concurrent phase and replayed through the
// normal delivery pipeline at commit, so delivery-model coins, ring slots,
// and traffic counters are byte-for-byte those of the serial run.
//
// Correctness requires fn to honour two contracts (both already implied by
// RunAsync): it may only touch node v's own data, and it may only Send to
// nodes listed by sch.Adjacency(v). A speculative Send on behalf of a node
// that is not firing in the current batch panics.
func (net *Network[T]) RunAsyncSched(steps int, seed uint64, sch AsyncSched, fn func(v int)) {
	if net.n == 0 || steps <= 0 {
		return
	}
	net.started = true
	net.async = true
	if net.obsv != nil {
		net.obsv.Begin("dist", "run_async", net.phase, obs.I("steps", int64(steps)))
	}
	clock := rng.New(seed ^ 0xa0761d6478bd642f)
	if sch.Adjacency == nil || sch.Pool == nil || sch.Pool.Size() <= 1 {
		for t := 0; t < steps; t++ {
			net.asyncStep(clock.Intn(net.n), fn)
		}
	} else {
		net.runAsyncBatched(steps, clock, sch, fn)
	}
	// Quiesce: with a delay model, up to ringSize-1 slots still hold
	// in-flight messages; deliver them in due order so no sent-and-not-
	// dropped message is silently stranded in the rings.
	for k := 1; k < net.ringSize; k++ {
		net.asyncDeliver()
		net.phase++
	}
	if net.obsv != nil {
		net.obsv.End("dist", "run_async", net.phase,
			obs.I("messages", net.counter.Messages()),
			obs.I("dropped", net.counter.Dropped()),
			obs.I("rejected", net.counter.Rejected()))
	}
}

// asyncStep executes one serial schedule step: fire v (unless crashed),
// consume its mailbox, deliver due messages, advance the clock.
func (net *Network[T]) asyncStep(v int, fn func(v int)) {
	if net.crashed == nil || !net.crashed[v] {
		fn(v)
		net.inbox[v] = net.inbox[v][:0]
	}
	net.asyncDeliver()
	net.phase++
}

// runAsyncBatched is the parallel execution path: greedily batch the firing
// schedule into independent sets (sched.Firings), run each batch's firings
// concurrently on the pool with Sends captured per member, then commit the
// window's steps in serial order.
//
// Window formation enforces three rules that make speculation safe:
//
//  1. members are pairwise non-adjacent and distinct (Firings), so no
//     member's send — delay 0 delivers at the end of its own step — can
//     reach another member inside the window;
//  2. a member with in-flight mail in the delivery rings (pendingTo) may
//     only occupy the window's first step: serially it would observe those
//     deliveries mid-window, which speculation cannot reproduce;
//  3. crashed nodes join any window (their steps execute nothing), but
//     count toward the window cap so delivery work is committed regularly.
func (net *Network[T]) runAsyncBatched(steps int, clock *rng.RNG, sch AsyncSched, fn func(v int)) {
	pool := sch.Pool
	workers := pool.Size()
	maxBatch := sch.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 4 * workers
	}
	f := sched.NewFirings(net.n, sch.Adjacency)
	if net.ringSize > 1 {
		// Count the messages already in flight (a run can inherit delayed
		// traffic from earlier synchronous phases); send/asyncDeliver keep
		// the counts current from here on.
		net.pendingTo = make([]int32, net.n)
		for w := range net.out {
			for _, slot := range net.out[w].slots {
				for _, bucket := range slot {
					for _, m := range bucket {
						net.pendingTo[m.To]++
					}
				}
			}
		}
		defer func() { net.pendingTo = nil }()
	}
	net.specOwner = make([]int32, net.n)
	window := make([]int32, 0, maxBatch)  // drawn node per schedule step
	members := make([]int32, 0, maxBatch) // live firing nodes, in step order
	next := -1                            // one-firing lookahead buffer
	for t := 0; t < steps; {
		window, members = window[:0], members[:0]
		for t+len(window) < steps && len(window) < maxBatch {
			if next < 0 {
				next = clock.Intn(net.n)
			}
			v := next
			if net.crashed != nil && net.crashed[v] {
				window = append(window, int32(v))
				next = -1
				continue
			}
			if net.pendingTo != nil && net.pendingTo[v] > 0 && len(window) > 0 {
				break
			}
			if !f.Offer(v) {
				break
			}
			net.specOwner[v] = int32(len(members)) + 1
			members = append(members, int32(v))
			window = append(window, int32(v))
			next = -1
		}
		if len(members) > 1 {
			net.commitWindow(window, members, pool, workers, fn)
		} else {
			// Zero or one firing: speculation buys nothing — run the steps
			// serially on the normal path.
			for _, v := range members {
				net.specOwner[v] = 0
			}
			for _, v := range window {
				net.asyncStep(int(v), fn)
			}
		}
		t += len(window)
		f.Reset()
		if o := net.obsv; o != nil && len(window) > 0 {
			// Batch-commit instant on the async tick clock. Window geometry
			// depends on the pool size (maxBatch = 4×workers), so these
			// events describe THIS execution — they are diagnostics, not part
			// of the worker-count-invariant snapshot fingerprint.
			st := f.Stats()
			o.Instant("sched", "batch", net.phase,
				obs.I("span", int64(len(window))),
				obs.I("members", int64(len(members))),
				obs.F("fill", float64(len(members))/float64(len(window))),
				obs.I("batches", st.Batches),
				obs.I("offered", st.Offered),
				obs.I("admitted", st.Admitted))
		}
	}
}

// commitWindow speculatively executes the window's members concurrently,
// then replays the window's steps — captured sends, mailbox consumption,
// delivery, clock advance — in serial schedule order.
func (net *Network[T]) commitWindow(window, members []int32, pool *sched.Pool, workers int, fn func(v int)) {
	for len(net.specBuf) < len(members) {
		net.specBuf = append(net.specBuf, nil)
	}
	net.speculating = true
	pool.Run(func(w int) {
		for i := w; i < len(members); i += workers {
			fn(int(members[i]))
		}
	})
	net.speculating = false
	mi := 0
	for _, vv := range window {
		v := int(vv)
		if net.crashed == nil || !net.crashed[v] {
			buf := net.specBuf[mi]
			for _, s := range buf {
				net.send(v, s.to, s.body, s.words, s.reliable)
			}
			clear(buf) // drop payload references before reuse
			net.specBuf[mi] = buf[:0]
			mi++
			net.specOwner[v] = 0
			net.inbox[v] = net.inbox[v][:0]
		}
		net.asyncDeliver()
		net.phase++
	}
}

// asyncDeliver drains the due delivery-ring slot, appending to mailboxes
// without clearing them (async mail persists until its owner fires). It
// still routes through the Transport so the seam covers both time models.
func (net *Network[T]) asyncDeliver() {
	slot := int(net.phase % int64(net.ringSize))
	for dst := 0; dst < net.workers; dst++ {
		buckets := net.buckets[dst][:0]
		empty := true
		for src := range net.out {
			b := net.out[src].slots[slot][dst]
			if len(b) > 0 {
				empty = false
			}
			buckets = append(buckets, b)
		}
		net.buckets[dst] = buckets
		if empty {
			continue
		}
		for _, b := range net.transport.Flush(dst, buckets) {
			for _, m := range b {
				if net.pendingTo != nil {
					net.pendingTo[m.To]--
				}
				if net.mailboxCap > 0 && len(net.inbox[m.To]) >= net.mailboxCap {
					// Bounded mailbox: async mail accumulates until its owner
					// fires, so a delivery into a full mailbox bounces
					// (reject-newest). Deliveries run in serial schedule
					// order, which keeps the verdict deterministic.
					net.counter.reject(int(net.shardOf[m.To]), 1)
					continue
				}
				net.inbox[m.To] = append(net.inbox[m.To], m.Env)
			}
		}
		for src := range net.out {
			net.out[src].slots[slot][dst] = net.out[src].slots[slot][dst][:0]
		}
	}
}
