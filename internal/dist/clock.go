package dist

import "repro/internal/rng"

// RunAsync leaves the bulk-synchronous regime: it fires nodes one at a time
// for the given number of steps, in a randomized order drawn from a
// dedicated clock stream (the asynchronous time model of Boyd et al., where
// independent Poisson clocks serialise into a uniformly random firing
// sequence). Each step one uniformly random node v fires: fn(v) reads the
// node's accumulated mailbox with Recv(v) and stages messages with Send;
// after fn returns, v's mailbox is consumed (cleared) and the due messages
// are delivered. Messages staged with delay d become readable by their
// destination's firings after d further steps.
//
// Async mailbox semantics deliberately differ from Phase: mail accumulates
// in arrival order until the recipient fires (nothing expires at barriers),
// and the sorted-by-sender contract does not apply. Crashed nodes never
// fire — their steps are consumed idle, like clock ticks of a dead
// processor — and messages addressed to them are dropped at send time.
//
// Execution is single-threaded on the driving goroutine: asynchrony is a
// property of the time model, not of the implementation, and a serialized
// event order keeps determinism trivial — a run is a pure function of
// (steps, seed, the delivery model, and fn's own determinism). Traffic
// accounting flows through the same counters and the same Transport as the
// synchronous mode. When the run ends the network quiesces: delayed
// messages still in flight are flushed into their mailboxes, where the
// driving goroutine can collect them with Recv. A network that has run
// async cannot go back to Phase.
func (net *Network[T]) RunAsync(steps int, seed uint64, fn func(v int)) {
	if net.n == 0 || steps <= 0 {
		return
	}
	net.started = true
	net.async = true
	clock := rng.New(seed ^ 0xa0761d6478bd642f)
	for t := 0; t < steps; t++ {
		v := clock.Intn(net.n)
		if net.crashed == nil || !net.crashed[v] {
			fn(v)
			net.inbox[v] = net.inbox[v][:0]
		}
		net.asyncDeliver()
		net.phase++
	}
	// Quiesce: with a delay model, up to ringSize-1 slots still hold
	// in-flight messages; deliver them in due order so no sent-and-not-
	// dropped message is silently stranded in the rings.
	for k := 1; k < net.ringSize; k++ {
		net.asyncDeliver()
		net.phase++
	}
}

// asyncDeliver drains the due delivery-ring slot, appending to mailboxes
// without clearing them (async mail persists until its owner fires). It
// still routes through the Transport so the seam covers both time models.
func (net *Network[T]) asyncDeliver() {
	slot := int(net.phase % int64(net.ringSize))
	for dst := 0; dst < net.workers; dst++ {
		buckets := net.buckets[dst][:0]
		empty := true
		for src := range net.out {
			b := net.out[src].slots[slot][dst]
			if len(b) > 0 {
				empty = false
			}
			buckets = append(buckets, b)
		}
		net.buckets[dst] = buckets
		if empty {
			continue
		}
		for _, b := range net.transport.Flush(dst, buckets) {
			for _, m := range b {
				net.inbox[m.To] = append(net.inbox[m.To], m.Env)
			}
		}
		for src := range net.out {
			net.out[src].slots[slot][dst] = net.out[src].slots[slot][dst][:0]
		}
	}
}
