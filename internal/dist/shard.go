package dist

import (
	"fmt"
	"sort"

	"repro/internal/sched"
)

// Partition returns the contiguous shard bounds the runtime uses for every
// sharded structure: shard i owns the index range [bounds[i], bounds[i+1]),
// with len(bounds) == shards+1, bounds[0] == 0 and bounds[shards] == n.
// Sizes differ by at most one, and no shard is empty when shards <= n. The
// network partitions nodes across workers with exactly this rule, so
// external shardings built from Partition line up with its ownership map.
// The rule itself lives in sched.Partition, shared with the engine-side
// parallel hot paths.
func Partition(n, shards int) []int { return sched.Partition(n, shards) }

// PartitionWeighted returns contiguous shard bounds balanced by per-node
// cost rather than node count — the prefix-sum-of-cost split in
// sched.PartitionWeighted. Bounds stay contiguous, so MachineMap grouping
// and the wire handshake's shard routing remain valid; individual shards
// may be empty when a single node's cost dominates. Partition is exactly
// the unit-cost special case. Feed the result to Network.Repartition (or
// use it as explicit engine scan bounds) to shift ownership.
func PartitionWeighted(costs []int64, shards int) []int {
	return sched.PartitionWeighted(costs, shards)
}

// MachineMap assigns the worker pool's delivery shards to machine shards:
// the runtime's unit of parallel delivery is the destination worker shard
// (Transport.Flush is called once per worker shard per barrier), while a
// multi-process deployment is sized in machines — OS processes that each
// host a contiguous group of worker shards. Decoupling the two lets M
// machines × W workers compose: the same (n, W) network, with its
// bit-identical transcript, can be served by any machine count 1 <= M <= W,
// and a wire transport uses MachineOf to route each shard's traffic to the
// process that owns it.
//
// The grouping is the same balanced contiguous rule as Partition, so machine
// boundaries always align with worker-shard boundaries (never splitting a
// shard across processes).
type MachineMap struct {
	// bounds[m]..bounds[m+1] is the worker-shard range owned by machine m.
	bounds []int
}

// NewMachineMap distributes the given number of worker shards over the given
// number of machines. machines is clamped to shards so no machine owns an
// empty shard range.
func NewMachineMap(machines, shards int) MachineMap {
	if machines < 1 || shards < 1 {
		panic(fmt.Sprintf("dist: NewMachineMap(%d, %d)", machines, shards))
	}
	if machines > shards {
		machines = shards
	}
	return MachineMap{bounds: Partition(shards, machines)}
}

// Machines returns the effective machine count after clamping.
func (m MachineMap) Machines() int { return len(m.bounds) - 1 }

// Shards returns the worker-shard count the map distributes.
func (m MachineMap) Shards() int { return m.bounds[len(m.bounds)-1] }

// MachineOf returns the machine that owns the given worker shard.
func (m MachineMap) MachineOf(shard int) int {
	if shard < 0 || shard >= m.Shards() {
		panic(fmt.Sprintf("dist: MachineOf(%d) outside [0, %d)", shard, m.Shards()))
	}
	return sort.SearchInts(m.bounds, shard+1) - 1
}

// ShardRange returns the contiguous worker-shard range [lo, hi) owned by the
// given machine.
func (m MachineMap) ShardRange(machine int) (lo, hi int) {
	if machine < 0 || machine >= m.Machines() {
		panic(fmt.Sprintf("dist: ShardRange(%d) outside [0, %d)", machine, m.Machines()))
	}
	return m.bounds[machine], m.bounds[machine+1]
}
