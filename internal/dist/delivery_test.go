package dist

import "testing"

// fixedDelay delays every message from a configured sender by a fixed
// number of phases and delivers everything else on time.
type fixedDelay struct {
	from  int
	delay int
}

func (f fixedDelay) MaxDelay() int { return f.delay }
func (f fixedDelay) Classify(from, to int, seq uint64) (int, bool) {
	if from == f.from {
		return f.delay, true
	}
	return 0, true
}

func TestDropModelLosesEverything(t *testing.T) {
	// DropProb 1 must silence all unreliable traffic while the counters
	// still account for every send (the sender put it on the wire).
	const n = 64
	net := NewNetwork[int](n, 4)
	defer net.Close()
	net.SetDeliveryModel(LinkFaults{DropProb: 1, Seed: 3})
	net.Phase(func(v int) { net.Send(v, (v+1)%n, v, 2) })
	net.Phase(func(v int) {
		if len(net.Recv(v)) != 0 {
			t.Errorf("node %d received mail through a DropProb=1 model", v)
		}
	})
	if got := net.Counter().Messages(); got != n {
		t.Errorf("messages = %d, want %d", got, n)
	}
	if got := net.Counter().Dropped(); got != n {
		t.Errorf("dropped = %d, want %d", got, n)
	}
}

func TestReliableSendBypassesModel(t *testing.T) {
	const n = 16
	net := NewNetwork[int](n, 2)
	defer net.Close()
	net.SetDeliveryModel(LinkFaults{DropProb: 1, Seed: 3})
	net.Phase(func(v int) { net.SendReliable(v, (v+1)%n, v, 1) })
	delivered := NewShardedInt(net.Workers())
	net.Phase(func(v int) { delivered.Add(net.ShardOf(v), int64(len(net.Recv(v)))) })
	if got := delivered.Total(); got != n {
		t.Errorf("delivered %d reliable messages, want %d", got, n)
	}
	if got := net.Counter().Dropped(); got != 0 {
		t.Errorf("dropped = %d, want 0", got)
	}
}

func TestDelayedMessageArrivesExactlyLate(t *testing.T) {
	// A message with delay d staged in phase p must surface in phase
	// p+1+d — not earlier, not twice.
	const d = 2
	net := NewNetwork[int](4, 2)
	defer net.Close()
	net.SetDeliveryModel(fixedDelay{from: 0, delay: d})
	net.Phase(func(v int) {
		if v == 0 {
			net.Send(0, 1, 42, 1)
		}
	})
	for late := 0; late < d; late++ {
		net.Phase(func(v int) {
			if v == 1 && len(net.Recv(1)) != 0 {
				t.Errorf("message surfaced %d phases early", d-late)
			}
		})
	}
	net.Phase(func(v int) {
		if v == 1 {
			got := net.Recv(1)
			if len(got) != 1 || got[0].From != 0 || got[0].Body != 42 {
				t.Errorf("delayed delivery got %+v", got)
			}
		}
	})
	net.Phase(func(v int) {
		if len(net.Recv(v)) != 0 {
			t.Errorf("node %d saw the delayed message twice", v)
		}
	})
}

func TestDelayedMailboxStaysSortedBySender(t *testing.T) {
	// Sender 5's message is staged one phase before sender 3's but both are
	// due at the same barrier; the mailbox must still come back ascending
	// by sender ID, which with delays requires the explicit re-sort.
	net := NewNetwork[int](6, 3)
	defer net.Close()
	net.SetDeliveryModel(fixedDelay{from: 5, delay: 1})
	net.Phase(func(v int) {
		if v == 5 {
			net.Send(5, 0, 55, 1)
		}
	})
	net.Phase(func(v int) {
		if v == 3 {
			net.Send(3, 0, 33, 1)
		}
	})
	net.Phase(func(v int) {
		if v != 0 {
			return
		}
		got := net.Recv(0)
		if len(got) != 2 || got[0].From != 3 || got[1].From != 5 {
			t.Errorf("mailbox out of sender order: %+v", got)
		}
	})
}

func TestFaultTranscriptIdenticalAcrossWorkerCounts(t *testing.T) {
	// The determinism contract must survive a nonzero drop/delay model:
	// coins hash from message coordinates, so the full delivery transcript
	// and the drop tally are bit-identical for any worker count.
	model := LinkFaults{DropProb: 0.3, DelayProb: 0.3, MaxPhases: 2, Seed: 17}
	wantLog, wantMsgs, wantWords, wantDropped := faultTranscript(1, func(net *Network[int]) {
		net.SetDeliveryModel(model)
	})
	if len(wantLog) == 0 {
		t.Fatal("faulty workload delivered nothing")
	}
	if wantDropped == 0 {
		t.Fatal("DropProb 0.3 dropped nothing")
	}
	for _, workers := range []int{2, 3, 8, 16} {
		log, msgs, words, droppedN := faultTranscript(workers, func(net *Network[int]) {
			net.SetDeliveryModel(model)
		})
		if msgs != wantMsgs || words != wantWords || droppedN != wantDropped {
			t.Errorf("workers=%d: counters (%d, %d, %d) != (%d, %d, %d)",
				workers, msgs, words, droppedN, wantMsgs, wantWords, wantDropped)
		}
		if len(log) != len(wantLog) {
			t.Fatalf("workers=%d: transcript length %d != %d", workers, len(log), len(wantLog))
		}
		for i := range log {
			if log[i] != wantLog[i] {
				t.Fatalf("workers=%d: transcript diverges at %d: %q != %q",
					workers, i, log[i], wantLog[i])
			}
		}
	}
}

func TestLinkFaultsClassifyIsPureAndBounded(t *testing.T) {
	model := LinkFaults{DropProb: 0.3, DelayProb: 0.5, MaxPhases: 3, Seed: 23}
	drops, delays, total := 0, 0, 20000
	for i := 0; i < total; i++ {
		from, to, seq := i%97, (i*7)%89, uint64(i/13)
		d1, ok1 := model.Classify(from, to, seq)
		d2, ok2 := model.Classify(from, to, seq)
		if d1 != d2 || ok1 != ok2 {
			t.Fatal("Classify is not a pure function of its arguments")
		}
		if d1 < 0 || d1 > model.MaxDelay() {
			t.Fatalf("delay %d outside [0, %d]", d1, model.MaxDelay())
		}
		if !ok1 {
			drops++
		} else if d1 > 0 {
			delays++
		}
	}
	if rate := float64(drops) / float64(total); rate < 0.27 || rate > 0.33 {
		t.Errorf("drop rate %v far from 0.3", rate)
	}
	// Half of the survivors (~0.7 of all) should be delayed.
	if rate := float64(delays) / float64(total); rate < 0.31 || rate > 0.39 {
		t.Errorf("delay rate %v far from 0.35", rate)
	}
}

func TestCrashedNodeIsSilenced(t *testing.T) {
	const n = 32
	net := NewNetwork[int](n, 4)
	defer net.Close()
	net.Crash(7)
	if !net.Crashed(7) || net.Crashed(8) {
		t.Fatal("Crashed() disagrees with Crash()")
	}
	fired := NewShardedInt(net.Workers())
	net.Phase(func(v int) {
		if v == 7 {
			t.Error("crashed node executed a phase callback")
		}
		fired.Add(net.ShardOf(v), 1)
		net.Send(v, 7, v, 1)
	})
	if got := fired.Total(); got != n-1 {
		t.Errorf("%d callbacks ran, want %d", got, n-1)
	}
	net.Phase(func(v int) {})
	if got := net.Recv(7); len(got) != 0 {
		t.Errorf("crashed node received %d messages", len(got))
	}
	if got := net.Counter().Dropped(); got != n-1 {
		t.Errorf("dropped = %d, want %d (every send aimed at the crashed node)", got, n-1)
	}
	if got := net.Counter().Messages(); got != n-1 {
		t.Errorf("messages = %d, want %d (sends still count)", got, n-1)
	}
}

func TestShardedIntTotals(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 4} {
		net := NewNetwork[struct{}](n, workers)
		tally := NewShardedInt(net.Workers())
		net.Phase(func(v int) { tally.Add(net.ShardOf(v), int64(v%3)) })
		var want int64
		for v := 0; v < n; v++ {
			want += int64(v % 3)
		}
		if got := tally.Total(); got != want {
			t.Errorf("workers=%d: total %d, want %d", workers, got, want)
		}
		net.Close()
	}
	if NewShardedInt(0) == nil {
		t.Error("NewShardedInt should clamp, not fail")
	}
}

func TestSetDeliveryModelAfterStartPanics(t *testing.T) {
	net := NewNetwork[int](4, 2)
	defer net.Close()
	net.Phase(func(v int) {})
	defer func() {
		if recover() == nil {
			t.Error("SetDeliveryModel after the first phase should panic")
		}
	}()
	net.SetDeliveryModel(LinkFaults{DropProb: 0.5})
}

func TestModelDelayBeyondMaxDelayPanics(t *testing.T) {
	// A model whose Classify exceeds its declared MaxDelay corrupts the
	// delivery rings; the network must reject it loudly.
	net := NewNetwork[int](4, 1)
	defer net.Close()
	net.SetDeliveryModel(lyingModel{})
	defer func() {
		if recover() == nil {
			t.Error("delay beyond MaxDelay should panic")
		}
	}()
	net.Phase(func(v int) {
		if v == 0 {
			net.Send(0, 1, 1, 1)
		}
	})
}

type lyingModel struct{}

func (lyingModel) MaxDelay() int                                 { return 1 }
func (lyingModel) Classify(from, to int, seq uint64) (int, bool) { return 5, true }

func TestFaultyRunsKeepCountersExact(t *testing.T) {
	// Words/messages count at send time whatever the substrate then does,
	// so totals must match the deterministic send schedule exactly.
	model := LinkFaults{DropProb: 0.4, DelayProb: 0.4, MaxPhases: 2, Seed: 29}
	_, msgs, words, droppedN := faultTranscript(4, func(net *Network[int]) {
		net.SetDeliveryModel(model)
	})
	_, baseMsgs, baseWords, _ := faultTranscript(4, nil)
	// The first phase's sends are schedule-fixed; the relay phase shrinks
	// under drops, so the faulty run can only send less than the fault-free
	// one, and drops are always a subset of sends.
	if msgs > baseMsgs || words > baseWords {
		t.Errorf("faulty run sent more than fault-free: (%d, %d) vs (%d, %d)",
			msgs, words, baseMsgs, baseWords)
	}
	if droppedN <= 0 {
		t.Error("expected drops at DropProb 0.4")
	}
	if droppedN > msgs {
		t.Errorf("dropped %d exceeds messages %d", droppedN, msgs)
	}
}
