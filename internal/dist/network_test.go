package dist

import (
	"fmt"
	"runtime"
	"testing"
)

func TestDeliveryOrderedBySender(t *testing.T) {
	// Many senders converge on node 0; the mailbox must come back sorted by
	// sender ID no matter how the senders were spread over workers.
	const n = 100
	for _, workers := range []int{1, 3, 8} {
		net := NewNetwork[int](n, workers)
		net.Phase(func(v int) {
			if v != 0 {
				net.Send(v, 0, v*10, 1)
			}
		})
		var got []Envelope[int]
		net.Phase(func(v int) {
			if v == 0 {
				got = append(got, net.Recv(0)...)
			}
		})
		if len(got) != n-1 {
			t.Fatalf("workers=%d: delivered %d of %d messages", workers, len(got), n-1)
		}
		for i, e := range got {
			if e.From != i+1 || e.Body != (i+1)*10 {
				t.Fatalf("workers=%d: slot %d holds {From:%d Body:%d}", workers, i, e.From, e.Body)
			}
		}
		net.Close()
	}
}

func TestSameSenderKeepsSendOrder(t *testing.T) {
	// Ordering is stable: multiple messages from one sender arrive in the
	// order they were sent, interleaved correctly with other senders.
	net := NewNetwork[string](4, 2)
	defer net.Close()
	net.Phase(func(v int) {
		switch v {
		case 2:
			net.Send(2, 0, "second-a", 1)
			net.Send(2, 0, "second-b", 1)
		case 1:
			net.Send(1, 0, "first-a", 1)
			net.Send(1, 0, "first-b", 1)
		}
	})
	want := []Envelope[string]{
		{From: 1, Body: "first-a"},
		{From: 1, Body: "first-b"},
		{From: 2, Body: "second-a"},
		{From: 2, Body: "second-b"},
	}
	net.Phase(func(v int) {
		if v != 0 {
			return
		}
		got := net.Recv(0)
		if len(got) != len(want) {
			t.Errorf("got %d messages, want %d", len(got), len(want))
			return
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("slot %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}

func TestMailboxClearedEachPhase(t *testing.T) {
	// A message lives exactly one phase: visible in the phase after the
	// send, discarded at the next barrier whether or not it was read.
	net := NewNetwork[int](2, 2)
	defer net.Close()
	net.Phase(func(v int) {
		if v == 0 {
			net.Send(0, 1, 7, 1)
		}
	})
	net.Phase(func(v int) {
		if v == 1 && len(net.Recv(1)) != 1 {
			t.Error("message not delivered in the following phase")
		}
	})
	net.Phase(func(v int) {
		if len(net.Recv(v)) != 0 {
			t.Errorf("node %d still has mail two phases after the send", v)
		}
	})
}

func TestCounterTotalsUnderConcurrentSend(t *testing.T) {
	// Every node fires a fan-out with distinct word sizes; totals must be
	// exact and identical for every worker count.
	const n = 10000
	wantMsgs := int64(2 * n)
	var wantWords int64
	for v := 0; v < n; v++ {
		wantWords += int64(v%7+1) + 3
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		net := NewNetwork[struct{}](n, workers)
		net.Phase(func(v int) {
			net.Send(v, (v+1)%n, struct{}{}, int64(v%7+1))
			net.Send(v, (v+n/2)%n, struct{}{}, 3)
		})
		if got := net.Counter().Messages(); got != wantMsgs {
			t.Errorf("workers=%d: %d messages, want %d", workers, got, wantMsgs)
		}
		if got := net.Counter().Words(); got != wantWords {
			t.Errorf("workers=%d: %d words, want %d", workers, got, wantWords)
		}
		net.Close()
	}
}

func TestEmptyPhase(t *testing.T) {
	// A phase with no traffic must still run every node once and leave all
	// mailboxes and counters empty.
	const n = 50
	net := NewNetwork[int](n, 4)
	defer net.Close()
	visited := make([]int, n)
	net.Phase(func(v int) { visited[v]++ })
	for v, c := range visited {
		if c != 1 {
			t.Fatalf("node %d visited %d times", v, c)
		}
	}
	net.Phase(func(v int) {
		if len(net.Recv(v)) != 0 {
			t.Errorf("node %d received mail from an empty phase", v)
		}
	})
	if net.Counter().Messages() != 0 || net.Counter().Words() != 0 {
		t.Error("counters moved without any Send")
	}
}

// transcript runs a fixed three-phase gossip workload and returns every
// delivery observed, encoded as strings, plus the counter totals.
func transcript(workers int) ([]string, int64, int64) {
	const n = 257 // deliberately not a multiple of any worker count
	net := NewNetwork[int](n, workers)
	defer net.Close()
	var log []string
	record := func(v int) {
		for _, e := range net.Recv(v) {
			log = append(log, fmt.Sprintf("%d<-%d:%d", v, e.From, e.Body))
		}
	}
	net.Phase(func(v int) {
		for k := 0; k < v%4; k++ {
			net.Send(v, (v*7+k*13)%n, v*100+k, int64(k+1))
		}
	})
	// Collect sequentially after the phase (the log is shared), then relay.
	for v := 0; v < n; v++ {
		record(v)
	}
	net.Phase(func(v int) {
		for _, e := range net.Recv(v) {
			net.Send(v, e.From, e.Body+1, 2)
		}
	})
	for v := 0; v < n; v++ {
		record(v)
	}
	net.Phase(func(v int) {})
	return log, net.Counter().Messages(), net.Counter().Words()
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	// The full delivery transcript — every (receiver, sender, body) in
	// mailbox order — must be bit-identical for any worker count.
	wantLog, wantMsgs, wantWords := transcript(1)
	if len(wantLog) == 0 {
		t.Fatal("workload produced no traffic")
	}
	for _, workers := range []int{2, 3, 8, 16} {
		log, msgs, words := transcript(workers)
		if msgs != wantMsgs || words != wantWords {
			t.Errorf("workers=%d: counters (%d, %d) != (%d, %d)", workers, msgs, words, wantMsgs, wantWords)
		}
		if len(log) != len(wantLog) {
			t.Fatalf("workers=%d: transcript length %d != %d", workers, len(log), len(wantLog))
		}
		for i := range log {
			if log[i] != wantLog[i] {
				t.Fatalf("workers=%d: transcript diverges at %d: %q != %q", workers, i, log[i], wantLog[i])
			}
		}
	}
}

func TestWorkerDefaultsAndClamping(t *testing.T) {
	net := NewNetwork[int](100, 0)
	if got := net.Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("workers<=0 should default to GOMAXPROCS, got %d", got)
	}
	net.Close()
	net = NewNetwork[int](3, 64)
	if got := net.Workers(); got != 3 {
		t.Errorf("workers should clamp to n=3, got %d", got)
	}
	if got := net.N(); got != 3 {
		t.Errorf("N() = %d, want 3", got)
	}
	net.Close()
	// A zero-node network must survive phases without dividing by zero.
	empty := NewNetwork[int](0, 4)
	empty.Phase(func(v int) { t.Errorf("phase callback ran on empty network (v=%d)", v) })
	empty.Close()
}

func TestSendOutOfRangePanics(t *testing.T) {
	// The panic must surface on the driving goroutine for every worker
	// count — with workers > 1 it happens on a pool goroutine and is
	// re-raised at the barrier rather than killing the process.
	for _, workers := range []int{1, 3} {
		func() {
			net := NewNetwork[int](4, workers)
			defer net.Close()
			defer func() {
				if recover() == nil {
					t.Errorf("workers=%d: Send to an out-of-range node should panic", workers)
				}
			}()
			net.Phase(func(v int) {
				if v == 0 {
					net.Send(0, 4, 1, 1)
				}
			})
		}()
	}
}

func TestCloseIdempotent(t *testing.T) {
	net := NewNetwork[int](10, 4)
	net.Close()
	net.Close() // must not panic
}
