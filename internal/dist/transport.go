package dist

import "fmt"

// Staged is one staged message as it crosses a Transport: the destination
// node and the envelope to deliver there.
type Staged[T any] struct {
	To  int
	Env Envelope[T]
}

// Transport is the seam between outbox staging and mailbox delivery: at
// every barrier the network hands each destination shard the buckets staged
// for it and merges whatever the transport returns into that shard's
// mailboxes. The default InProcess transport hands the buckets over
// zero-copy; a multi-process implementation would serialise them onto a
// wire (RPC, shared-memory rings) and return the decoded copies.
//
// Determinism is a hard contract. An implementation MUST:
//
//  1. return every staged message exactly once, preserving the bucket
//     partition (result bucket i holds exactly the messages of input bucket
//     i) and the order within each bucket — the network relies on this,
//     plus the ascending-sender-shard bucket order it establishes itself,
//     to keep mailboxes sorted by sender without a sort on the default
//     path;
//  2. never reorder, duplicate, drop, or mutate messages — loss and delay
//     are the DeliveryModel's job, upstream of the transport;
//  3. tolerate Flush being called concurrently for distinct dst shards
//     (once per shard per barrier): any mutable state must be per-shard;
//  4. keep the returned buckets valid until the next Flush for the same
//     shard; the network finishes reading them before that.
type Transport[T any] interface {
	Flush(dst int, buckets [][]Staged[T]) [][]Staged[T]
}

// InProcess is the default Transport: source and destination shards share
// one address space, so staged buckets are handed to delivery unchanged.
type InProcess[T any] struct{}

// Flush returns the staged buckets zero-copy.
func (InProcess[T]) Flush(dst int, buckets [][]Staged[T]) [][]Staged[T] { return buckets }

// Ring is a loopback stand-in for a multi-process transport: every envelope
// bound for a destination shard is copied through that shard's fixed-size
// ring buffer — the way a shared-memory or RPC transport would serialise it
// onto a bounded wire — and reassembled on the far side. It proves the
// Transport seam carries the full delivery contract without the in-process
// shortcut of sharing slices; transcripts under Ring are bit-identical to
// InProcess for any ring capacity.
type Ring[T any] struct {
	rings []ringShard[T]
}

// ringShard is one destination shard's wire: the bounded ring and the
// reusable reassembly buckets. Flush is per-shard, so no locking is needed.
type ringShard[T any] struct {
	buf []Staged[T]
	out [][]Staged[T]
}

// NewRing creates a loopback ring transport for the given number of
// destination shards (the network's worker count) with the given per-shard
// ring capacity.
func NewRing[T any](shards, capacity int) *Ring[T] {
	if shards < 1 || capacity < 1 {
		panic(fmt.Sprintf("dist: NewRing(%d, %d)", shards, capacity))
	}
	t := &Ring[T]{rings: make([]ringShard[T], shards)}
	for i := range t.rings {
		t.rings[i].buf = make([]Staged[T], 0, capacity)
	}
	return t
}

// Flush pushes every message through the destination shard's ring: the near
// side writes until the ring fills, the far side drains it FIFO into the
// reassembled bucket. Bucket boundaries and intra-bucket order survive the
// trip, which is exactly the Transport contract.
func (t *Ring[T]) Flush(dst int, buckets [][]Staged[T]) [][]Staged[T] {
	r := &t.rings[dst]
	for len(r.out) < len(buckets) {
		r.out = append(r.out, nil)
	}
	out := r.out[:len(buckets)]
	for i, b := range buckets {
		ob := out[i][:0]
		ring := r.buf[:0]
		for _, m := range b {
			if len(ring) == cap(ring) {
				ob = append(ob, ring...)
				ring = ring[:0]
			}
			ring = append(ring, m)
		}
		ob = append(ob, ring...)
		out[i] = ob
	}
	return out
}
