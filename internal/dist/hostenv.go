package dist

import (
	"os"
	"runtime"
	"strings"
)

// HostEnv describes the hardware and runtime configuration a benchmark ran
// under. The BENCH_*.json baselines embed it so numbers recorded on a 1-CPU
// shared container are self-identifying: a worker-sweep row with NumCPU == 1
// measures pool/barrier overhead, not parallel speedup, and readers (and the
// next re-record) can tell without archaeology.
type HostEnv struct {
	// Go is the toolchain and platform, e.g. "go1.24.0 linux/amd64".
	Go string `json:"go"`
	// CPU is the processor model from /proc/cpuinfo ("" if unavailable).
	CPU string `json:"cpu,omitempty"`
	// NumCPU is the number of logical CPUs usable by the process.
	NumCPU int `json:"num_cpu"`
	// GoMaxProcs is the effective GOMAXPROCS at capture time — the worker
	// count the sweep's top row actually used.
	GoMaxProcs int `json:"gomaxprocs"`
	// OverheadOnly marks a capture on a single-CPU host: every worker-sweep
	// row then measures pool/barrier overhead rather than parallel speedup,
	// and downstream readers must not interpret the sweep as a scaling curve.
	OverheadOnly bool `json:"overhead_only,omitempty"`
}

// CaptureHostEnv records the current process's host environment.
func CaptureHostEnv() HostEnv {
	return HostEnv{
		Go:           runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		CPU:          cpuModel(),
		NumCPU:       runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		OverheadOnly: runtime.NumCPU() == 1,
	}
}

// cpuModel extracts the first "model name" from /proc/cpuinfo; best effort,
// empty on platforms without it.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}
