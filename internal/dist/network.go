// Package dist is a deterministic message-passing runtime for synchronous
// distributed algorithms: n logical nodes exchange messages in phases, with
// the work of each phase spread across a pool of worker goroutines.
//
// The execution model is bulk-synchronous. Phase(fn) runs fn(v) once for
// every node v; inside the callback a node may read its mailbox with Recv
// and stage messages with Send. A barrier separates phases: messages staged
// during phase k are delivered at its end and become visible to Recv during
// phase k+1, and mailboxes not read in phase k+1 are discarded at the next
// delivery.
//
// Determinism is a hard contract. Results are bit-identical for any worker
// count: nodes are partitioned into contiguous per-worker shards, each
// worker stages outgoing messages in per-destination-shard outboxes (so Send
// never takes a lock), and at the phase barrier every mailbox is merged and
// stably ordered by sender ID — ties between messages from the same sender
// keep their send order. Message and word counters are sharded per worker
// and summed on read, so traffic accounting is equally schedule-independent.
package dist

import (
	"fmt"
	"runtime"
)

// Envelope is one delivered message: the sender's node ID and the payload.
type Envelope[T any] struct {
	From int
	Body T
}

// staged is a message waiting in an outbox for the phase barrier.
type staged[T any] struct {
	to  int
	env Envelope[T]
}

// outbox holds one worker's staged messages, bucketed by destination shard
// so delivery can run in parallel with no worker writing another's bucket.
type outbox[T any] struct {
	shards [][]staged[T]
}

// Network connects n nodes, identified 0..n-1, through per-node mailboxes.
// Create one with NewNetwork and drive it through Phase. Send may only be
// called from inside a Phase callback (on behalf of the executing node);
// Recv may be called from inside a callback or, for inspection, from the
// driving goroutine between phases.
type Network[T any] struct {
	n       int
	workers int
	// bounds[w]..bounds[w+1] is the contiguous node range owned by worker w.
	bounds []int
	// shardOf maps a node to its owning worker.
	shardOf []int32
	inbox   [][]Envelope[T]
	out     []outbox[T]
	counter *Counter
	pool    *pool
}

// NewNetwork creates a network of n nodes served by the given number of
// worker goroutines. workers <= 0 means runtime.GOMAXPROCS(0); the count is
// clamped to n so no worker owns an empty shard. The workers live until
// Close (a runtime cleanup reclaims them if the network is dropped without
// closing).
func NewNetwork[T any](n, workers int) *Network[T] {
	if n < 0 {
		panic(fmt.Sprintf("dist: NewNetwork with n = %d", n))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	net := &Network[T]{
		n:       n,
		workers: workers,
		bounds:  make([]int, workers+1),
		shardOf: make([]int32, n),
		inbox:   make([][]Envelope[T], n),
		out:     make([]outbox[T], workers),
		counter: newCounter(workers),
		pool:    newPool(workers),
	}
	for w := 0; w <= workers; w++ {
		net.bounds[w] = w * n / workers
	}
	for w := 0; w < workers; w++ {
		for v := net.bounds[w]; v < net.bounds[w+1]; v++ {
			net.shardOf[v] = int32(w)
		}
		net.out[w].shards = make([][]staged[T], workers)
	}
	// Reclaim the worker goroutines if the network is garbage-collected
	// without Close. The cleanup may only reference the pool: if it (or its
	// argument) kept the Network reachable, neither would ever be collected.
	runtime.AddCleanup(net, func(p *pool) { p.close() }, net.pool)
	return net
}

// N returns the number of nodes.
func (net *Network[T]) N() int { return net.n }

// Workers returns the effective worker count after defaulting and clamping.
func (net *Network[T]) Workers() int { return net.workers }

// Counter returns the network's traffic accounting. Totals are safe to read
// at any time and deterministic once a phase has completed.
func (net *Network[T]) Counter() *Counter { return net.counter }

// Close stops the worker goroutines. It is idempotent; Phase must not be
// called afterwards.
func (net *Network[T]) Close() { net.pool.close() }

// Phase runs fn(v) once for every node v in [0, n), partitioned across the
// worker pool, then waits for all workers at a barrier and delivers every
// staged message. fn must confine itself to node v's own data: it may call
// Recv(v) and Send(v, ...), but must not touch another node's mailbox.
// Undelivered mail from the previous phase is discarded.
func (net *Network[T]) Phase(fn func(v int)) {
	net.pool.run(func(w int) {
		for v := net.bounds[w]; v < net.bounds[w+1]; v++ {
			fn(v)
		}
	})
	net.deliver()
}

// Send stages one message from node from to node to; it is delivered at the
// end of the current phase. words is the accounted wire size of the message
// (the message itself always counts once). Send must be called from within
// the Phase callback currently executing node from — that callback runs on
// the worker owning from's shard, which makes the outbox append lock-free.
func (net *Network[T]) Send(from, to int, body T, words int64) {
	if from < 0 || from >= net.n || to < 0 || to >= net.n {
		panic(fmt.Sprintf("dist: Send(%d → %d) outside [0, %d)", from, to, net.n))
	}
	w := net.shardOf[from]
	s := net.shardOf[to]
	net.out[w].shards[s] = append(net.out[w].shards[s],
		staged[T]{to: to, env: Envelope[T]{From: from, Body: body}})
	net.counter.add(int(w), words)
}

// Recv returns the messages delivered to node v at the last phase boundary,
// ordered by ascending sender ID (messages from the same sender keep their
// send order). The slice is owned by the network and is valid only until
// the end of the current phase; callers must not retain or mutate it.
func (net *Network[T]) Recv(v int) []Envelope[T] {
	return net.inbox[v]
}

// deliver is the phase barrier's second half: every worker clears the
// mailboxes of its own shard and gathers the messages addressed to it from
// all sender outboxes.
//
// The sorted-by-sender mailbox contract needs no sort here: Phase executes
// each worker's contiguous node range in ascending ID order (so every
// outbox bucket is already ascending in From), and the buckets are drained
// in ascending worker order (whose sender ranges are themselves ascending
// and disjoint). Concatenation therefore yields each mailbox in ascending
// From order with same-sender send order preserved. Any change to the
// execution order — work stealing, chunked scheduling — must restore the
// ordering explicitly; the delivery-order and cross-worker-transcript
// tests pin the contract.
func (net *Network[T]) deliver() {
	net.pool.run(func(w int) {
		lo, hi := net.bounds[w], net.bounds[w+1]
		for v := lo; v < hi; v++ {
			net.inbox[v] = net.inbox[v][:0]
		}
		for src := range net.out {
			box := net.out[src].shards[w]
			for _, m := range box {
				net.inbox[m.to] = append(net.inbox[m.to], m.env)
			}
			net.out[src].shards[w] = box[:0]
		}
	})
}
