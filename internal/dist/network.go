// Package dist is a deterministic message-passing runtime for distributed
// algorithms: n logical nodes exchange messages in phases, with the work of
// each phase spread across a pool of worker goroutines.
//
// The default execution model is bulk-synchronous. Phase(fn) runs fn(v) once
// for every node v; inside the callback a node may read its mailbox with
// Recv and stage messages with Send. A barrier separates phases: messages
// staged during phase k are delivered at its end and become visible to Recv
// during phase k+1, and mailboxes not read in phase k+1 are discarded at the
// next delivery. RunAsync leaves this regime and fires nodes one at a time
// in a randomized order instead (see clock.go).
//
// Delivery is a staged pipeline with two pluggable layers and a capacity
// budget. A DeliveryModel (delivery.go) classifies every unreliable message
// at Send time — on time, k phases late, or lost — moving failure injection
// out of protocols and into the substrate. A Transport (transport.go) then
// moves the surviving staged buckets from sender shards to destination
// shards at the barrier; the default in-process transport is zero-copy, and
// the loopback Ring transport proves the seam tolerates a serialising wire.
// Finally SetMailboxCap bounds every mailbox at delivery time with a
// deterministic reject-newest overflow policy (Counter.Rejected), modelling
// finite receive buffers.
//
// Determinism is a hard contract. Results are bit-identical for any worker
// count: nodes are partitioned into contiguous per-worker shards, each
// worker stages outgoing messages in per-destination-shard outboxes (so Send
// never takes a lock), and at the phase barrier every mailbox is merged and
// stably ordered by sender ID — ties between messages from the same sender
// keep their send order. Message and word counters are sharded per worker
// and summed on read, so traffic accounting is equally schedule-independent.
// Delivery-model coins are hashed from the message coordinates rather than
// drawn from shared generator state, so the contract survives failure
// injection too.
//
// The contract is machine-checked: the analyzer suite in repro/internal/analysis
// (run as a vettool via repro/cmd/lintdet, and in CI) rejects unsorted map
// iteration, wall-clock reads, raw go statements outside internal/sched, and
// order-dependent float accumulation in this package and the other
// deterministic packages. Deliberate exceptions carry a
// //lintdet:allow <analyzer>(reason) annotation.
package dist

import (
	"fmt"
	"runtime"
	"slices"

	"repro/internal/obs"
	"repro/internal/sched"
)

// Envelope is one delivered message: the sender's node ID and the payload.
type Envelope[T any] struct {
	From int
	Body T
}

// outbox holds one worker's staged messages, bucketed by due slot (the
// delivery ring: slot s collects messages due at phases ≡ s mod ringSize)
// and then by destination shard, so delivery can run in parallel with no
// worker writing another's bucket. With no delivery model the ring has a
// single slot and the layout degenerates to the classic per-shard outbox.
type outbox[T any] struct {
	slots [][][]Staged[T]
}

// Network connects n nodes, identified 0..n-1, through per-node mailboxes.
// Create one with NewNetwork, optionally configure it with SetTransport,
// SetDeliveryModel and Crash, and drive it through Phase (or RunAsync).
// Send may only be called from inside a Phase callback (on behalf of the
// executing node); Recv may be called from inside a callback or, for
// inspection, from the driving goroutine between phases.
type Network[T any] struct {
	n       int
	workers int
	// bounds[w]..bounds[w+1] is the contiguous node range owned by worker w.
	bounds []int
	// shardOf maps a node to its owning worker.
	shardOf []int32
	inbox   [][]Envelope[T]
	out     []outbox[T]
	counter *Counter
	pool    *pool

	transport Transport[T]
	model     DeliveryModel
	// mailboxCap bounds every mailbox at delivery time; 0 means unbounded.
	// See SetMailboxCap for the overflow policy.
	mailboxCap int
	// ringSize is model.MaxDelay()+1: the number of live delivery slots.
	ringSize int
	// phase counts completed barriers (async steps in RunAsync); the current
	// due slot is phase mod ringSize.
	phase int64
	// seq[v] numbers node v's unreliable sends for the model's hashed coins;
	// allocated only when a model is set.
	seq []uint64
	// crashed marks failed nodes; nil means none.
	crashed []bool
	started bool
	async   bool
	// counts and buckets are per-worker delivery scratch: per-node mail
	// tallies for the counting pass, and the gathered bucket views.
	counts  [][]int32
	buckets [][][]Staged[T]

	// Speculative-execution state for the batched async scheduler
	// (clock.go). While speculating is set, send() captures messages into
	// the firing member's private buffer instead of staging them; the
	// window commit replays the buffers through the normal path in serial
	// schedule order. specOwner[v] is 1+memberIndex for nodes firing in the
	// current batch, 0 otherwise. pendingTo, allocated only for batched
	// runs with a multi-slot ring, counts the in-flight ring messages per
	// destination so window formation can keep nodes with due mail out of
	// mid-window positions.
	speculating bool
	specOwner   []int32
	specBuf     [][]specSend[T]
	pendingTo   []int32
	// inPhase guards Repartition: ownership may only move at the commit
	// barrier, never while Phase callbacks are running on the pool.
	inPhase bool

	// Observability (SetObserver): obsv drives phase/async trace events from
	// the driving goroutine; metrics tallies per-logical-shard traffic. Both
	// nil when observation is off — the hot paths pay one pointer test, and
	// the zero-alloc guard in obs_test.go pins that the disabled paths
	// allocate nothing. lastSent..lastRejected hold the counter totals at the
	// previous phase boundary, for per-phase deltas on the phase-end event.
	obsv    *obs.Observer
	metrics *obs.NetMetrics
	lastC   [4]int64
}

// specSend is one captured speculative Send, replayed at window commit.
type specSend[T any] struct {
	to       int
	body     T
	words    int64
	reliable bool
}

// NewNetwork creates a network of n nodes served by the given number of
// worker goroutines. workers <= 0 means runtime.GOMAXPROCS(0); the count is
// clamped to n so no worker owns an empty shard. The workers live until
// Close (a runtime cleanup reclaims them if the network is dropped without
// closing).
func NewNetwork[T any](n, workers int) *Network[T] {
	if n < 0 {
		panic(fmt.Sprintf("dist: NewNetwork with n = %d", n))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	net := &Network[T]{
		n:         n,
		workers:   workers,
		bounds:    Partition(n, workers),
		shardOf:   make([]int32, n),
		inbox:     make([][]Envelope[T], n),
		out:       make([]outbox[T], workers),
		counter:   newCounter(workers),
		pool:      newPool(workers),
		transport: InProcess[T]{},
		ringSize:  1,
		counts:    make([][]int32, workers),
		buckets:   make([][][]Staged[T], workers),
	}
	for w := 0; w < workers; w++ {
		for v := net.bounds[w]; v < net.bounds[w+1]; v++ {
			net.shardOf[v] = int32(w)
		}
		net.counts[w] = make([]int32, net.bounds[w+1]-net.bounds[w])
		net.buckets[w] = make([][]Staged[T], 0, workers)
	}
	net.initRings()
	// Reclaim the worker goroutines if the network is garbage-collected
	// without Close. The cleanup may only reference the pool: if it (or its
	// argument) kept the Network reachable, neither would ever be collected.
	runtime.AddCleanup(net, func(p *pool) { p.Close() }, net.pool)
	return net
}

// initRings (re)allocates the outbox delivery rings for the current
// ringSize.
func (net *Network[T]) initRings() {
	for w := range net.out {
		net.out[w].slots = make([][][]Staged[T], net.ringSize)
		for s := range net.out[w].slots {
			net.out[w].slots[s] = make([][]Staged[T], net.workers)
		}
	}
}

// N returns the number of nodes.
func (net *Network[T]) N() int { return net.n }

// Workers returns the effective worker count after defaulting and clamping.
func (net *Network[T]) Workers() int { return net.workers }

// ShardOf returns the worker that owns node v — the shard index protocols
// should use for their own per-shard accounting (see ShardedInt).
func (net *Network[T]) ShardOf(v int) int { return int(net.shardOf[v]) }

// Counter returns the network's traffic accounting. Totals are safe to read
// at any time and deterministic once a phase has completed.
func (net *Network[T]) Counter() *Counter { return net.counter }

// Bounds returns a copy of the current contiguous ownership bounds: worker w
// owns the node range [bounds[w], bounds[w+1]).
func (net *Network[T]) Bounds() []int {
	return append([]int(nil), net.bounds...)
}

// Repartition moves the network to new contiguous ownership bounds — worker
// w owns [bounds[w], bounds[w+1]) from the next phase on. The worker count
// never changes, only the split; bounds must satisfy sched.CheckBounds for
// (n, workers), and empty shards are legal (a cost-weighted split produces
// them whenever one node dominates). Call it from the driving goroutine
// between phases (or before the first one, to install weighted initial
// bounds); never from inside a Phase callback or a firing batch.
//
// Repartitioning never changes the transcript. Mailboxes are ordered by
// sender ID — not by shard — counters are summed over all shards on read,
// and delivery-model coins hash message coordinates, so which worker owns a
// node is unobservable to the protocol. In-flight delayed messages (staged
// in a multi-slot delivery ring for a later phase) are re-bucketed under
// the new ownership: all messages from one sender to one destination node
// travel in the same bucket before and after, so per-mailbox same-sender
// order is preserved, and the multi-slot ring's stable re-sort by sender at
// delivery restores the global mailbox order as usual. The transcript
// equality suites pin this for repartitioned runs across worker counts and
// transports.
func (net *Network[T]) Repartition(bounds []int) {
	if net.speculating || net.inPhase {
		panic("dist: Repartition from inside a firing batch or phase")
	}
	sched.CheckBounds(bounds, net.n, net.workers)
	same := true
	for i, b := range bounds {
		if net.bounds[i] != b {
			same = false
			break
		}
	}
	if same {
		return
	}
	copy(net.bounds, bounds)
	for w := 0; w < net.workers; w++ {
		for v := net.bounds[w]; v < net.bounds[w+1]; v++ {
			net.shardOf[v] = int32(w)
		}
		width := net.bounds[w+1] - net.bounds[w]
		if cap(net.counts[w]) < width {
			net.counts[w] = make([]int32, width)
		} else {
			net.counts[w] = net.counts[w][:width]
		}
	}
	if net.ringSize > 1 {
		// Re-bucket in-flight delayed messages by their destination's new
		// shard. With a single-slot ring every outbox is drained at each
		// barrier, so there is nothing staged between phases.
		var scratch []Staged[T]
		for w := range net.out {
			for _, shardBuckets := range net.out[w].slots {
				scratch = scratch[:0]
				staged := false
				for d := range shardBuckets {
					if len(shardBuckets[d]) > 0 {
						staged = true
					}
					scratch = append(scratch, shardBuckets[d]...)
					shardBuckets[d] = shardBuckets[d][:0]
				}
				if !staged {
					continue
				}
				for _, m := range scratch {
					d := net.shardOf[m.To]
					shardBuckets[d] = append(shardBuckets[d], m)
				}
			}
		}
	}
}

// SetTransport replaces the delivery transport. It must be called before
// the first Phase or RunAsync.
func (net *Network[T]) SetTransport(t Transport[T]) {
	if net.started {
		panic("dist: SetTransport after the network started")
	}
	if t == nil {
		panic("dist: SetTransport(nil)")
	}
	net.transport = t
}

// SetDeliveryModel installs a failure-injection policy for unreliable
// sends (nil restores perfect delivery). It must be called before the first
// Phase or RunAsync: the model's MaxDelay sizes the delivery rings.
func (net *Network[T]) SetDeliveryModel(m DeliveryModel) {
	if net.started {
		panic("dist: SetDeliveryModel after the network started")
	}
	net.model = m
	net.ringSize = 1
	net.seq = nil
	if m != nil {
		maxd := m.MaxDelay()
		if maxd < 0 {
			panic(fmt.Sprintf("dist: DeliveryModel MaxDelay %d < 0", maxd))
		}
		net.ringSize = maxd + 1
		net.seq = make([]uint64, net.n)
	}
	net.initRings()
}

// SetMailboxCap bounds every node's mailbox to cap messages, modelling the
// finite receive buffers of a real message-passing system; 0 restores
// unbounded mailboxes. It must be called before the first Phase or
// RunAsync.
//
// Capacity is enforced at delivery time, downstream of the Transport and
// the DeliveryModel: a message that survives both but arrives at a full
// mailbox is rejected and tallied in Counter.Rejected. The overflow policy
// is reject-newest and fully deterministic — no coins are involved, the
// verdict is a pure function of the deterministic delivery order:
//
//   - in the synchronous mode, each barrier's mailbox is assembled in the
//     contract order (ascending sender, same-sender send order, after the
//     stable delayed-delivery re-sort) and then truncated to cap, so the
//     rejected messages are exactly the overflow suffix of that order;
//   - in the asynchronous mode, mail accumulates in arrival order and a
//     delivery into a mailbox already holding cap messages is rejected,
//     so the survivors are always the cap oldest unconsumed arrivals.
//
// Transcripts with a bounded mailbox therefore stay byte-identical for any
// worker count, transport, and async batch schedule, exactly like the
// fault-injection machinery. Capacity applies to reliable sends too — a
// full buffer is physics, not policy — so protocols that rely on
// SendReliable (e.g. core.ClusterDistributed's state-exchange legs) should
// keep cap at or above their per-phase fan-in, or layer their own
// retransmission like core's reliable gossip mode.
func (net *Network[T]) SetMailboxCap(cap int) {
	if net.started {
		panic("dist: SetMailboxCap after the network started")
	}
	if cap < 0 {
		panic(fmt.Sprintf("dist: SetMailboxCap(%d)", cap))
	}
	net.mailboxCap = cap
}

// MailboxCap returns the per-mailbox capacity (0 = unbounded).
func (net *Network[T]) MailboxCap() int { return net.mailboxCap }

// SetObserver attaches an observability sink (nil detaches): trace events
// on the network's logical clocks and per-logical-shard traffic metrics in
// o.Reg. It must be called before the first Phase or RunAsync. Metric cells
// shard by o's fixed logical shard count — never by the worker count — so
// the registry contents stay bit-identical across worker counts, transports,
// and async batch schedules.
func (net *Network[T]) SetObserver(o *obs.Observer) {
	if net.started {
		panic("dist: SetObserver after the network started")
	}
	net.obsv = o
	net.metrics = nil
	if o != nil && o.Reg != nil {
		net.metrics = obs.NewNetMetrics(o.Reg, net.n, o.Shards)
	}
}

// phaseBegin/phaseEnd emit the synchronous barrier span, with the phase's
// traffic deltas (from the worker-sharded Counter totals) attached to the
// closing event. Driving goroutine only.
func (net *Network[T]) phaseBegin() {
	net.obsv.Begin("dist", "phase", net.phase, obs.I("phase", net.phase))
}

func (net *Network[T]) phaseEnd() {
	c := net.counter
	cur := [4]int64{c.Messages(), c.Words(), c.Dropped(), c.Rejected()}
	net.obsv.End("dist", "phase", net.phase,
		obs.I("sent", cur[0]-net.lastC[0]),
		obs.I("words", cur[1]-net.lastC[1]),
		obs.I("dropped", cur[2]-net.lastC[2]),
		obs.I("rejected", cur[3]-net.lastC[3]))
	net.lastC = cur
}

// Crash permanently fails node v: from the next phase (or async step) on it
// executes no callbacks, and every message addressed to it is dropped at
// send time — counted as sent and as dropped, because the sender did put it
// on the wire. Messages already staged for v keep travelling and are
// silently discarded. Crash may be called before the run or between phases.
func (net *Network[T]) Crash(v int) {
	if v < 0 || v >= net.n {
		panic(fmt.Sprintf("dist: Crash(%d) outside [0, %d)", v, net.n))
	}
	if net.crashed == nil {
		net.crashed = make([]bool, net.n)
	}
	net.crashed[v] = true
}

// Crashed reports whether node v has been crashed.
func (net *Network[T]) Crashed(v int) bool { return net.crashed != nil && net.crashed[v] }

// Close stops the worker goroutines. It is idempotent; Phase must not be
// called afterwards.
func (net *Network[T]) Close() { net.pool.Close() }

// Phase runs fn(v) once for every live (non-crashed) node v in [0, n),
// partitioned across the worker pool, then waits for all workers at a
// barrier and delivers every staged message that is due. fn must confine
// itself to node v's own data: it may call Recv(v) and Send(v, ...), but
// must not touch another node's mailbox. Undelivered mail from the previous
// phase is discarded.
func (net *Network[T]) Phase(fn func(v int)) {
	if net.async {
		panic("dist: Phase after RunAsync (the mailbox contracts differ)")
	}
	net.started = true
	if net.obsv != nil {
		net.phaseBegin()
	}
	crashed := net.crashed
	net.inPhase = true
	net.pool.Run(func(w int) {
		for v := net.bounds[w]; v < net.bounds[w+1]; v++ {
			if crashed != nil && crashed[v] {
				continue
			}
			fn(v)
		}
	})
	net.inPhase = false
	net.deliver()
	net.phase++
	if net.obsv != nil {
		net.phaseEnd()
	}
}

// Send stages one unreliable message from node from to node to; subject to
// the delivery model, it is delivered at the end of the current phase (or k
// barriers later, or never). words is the accounted wire size of the
// message (the message itself always counts once, even if the substrate
// then loses it). Send must be called from within the Phase callback
// currently executing node from — that callback runs on the worker owning
// from's shard, which makes the outbox append lock-free.
func (net *Network[T]) Send(from, to int, body T, words int64) {
	net.send(from, to, body, words, false)
}

// SendReliable stages a message exempt from the delivery model — the
// abstraction of a link layer with acknowledgement and retransmission.
// Crash policy still applies: a crashed destination receives nothing.
func (net *Network[T]) SendReliable(from, to int, body T, words int64) {
	net.send(from, to, body, words, true)
}

func (net *Network[T]) send(from, to int, body T, words int64, reliable bool) {
	if from < 0 || from >= net.n || to < 0 || to >= net.n {
		panic(fmt.Sprintf("dist: Send(%d → %d) outside [0, %d)", from, to, net.n))
	}
	if net.speculating {
		// Batched async execution: capture the send into the firing
		// member's private buffer; the window commit replays it through the
		// path below in serial schedule order. Appends never contend — each
		// member sends only on its own behalf, which the owner check
		// enforces.
		i := net.specOwner[from]
		if i == 0 {
			panic(fmt.Sprintf("dist: speculative Send from node %d, which is not firing in this batch", from))
		}
		net.specBuf[i-1] = append(net.specBuf[i-1],
			specSend[T]{to: to, body: body, words: words, reliable: reliable})
		return
	}
	w := int(net.shardOf[from])
	net.counter.add(w, words)
	if nm := net.metrics; nm != nil {
		nm.OnSend(from, words)
	}
	if net.crashed != nil && net.crashed[to] {
		net.counter.drop(w)
		if nm := net.metrics; nm != nil {
			nm.OnDrop(from)
		}
		return
	}
	delay := 0
	if net.model != nil && !reliable {
		seq := net.seq[from]
		net.seq[from] = seq + 1
		d, ok := net.model.Classify(from, to, seq)
		if !ok {
			net.counter.drop(w)
			if nm := net.metrics; nm != nil {
				nm.OnDrop(from)
			}
			return
		}
		if d < 0 || d >= net.ringSize {
			panic(fmt.Sprintf("dist: DeliveryModel delay %d outside [0, %d]", d, net.ringSize-1))
		}
		delay = d
	}
	slot := int((net.phase + int64(delay)) % int64(net.ringSize))
	s := net.shardOf[to]
	net.out[w].slots[slot][s] = append(net.out[w].slots[slot][s],
		Staged[T]{To: to, Env: Envelope[T]{From: from, Body: body}})
	if net.pendingTo != nil {
		net.pendingTo[to]++
	}
}

// Recv returns the messages delivered to node v at the last phase boundary,
// ordered by ascending sender ID (messages from the same sender keep their
// send order). The slice is owned by the network and is valid only until
// the end of the current phase; callers must not retain or mutate it.
func (net *Network[T]) Recv(v int) []Envelope[T] {
	return net.inbox[v]
}

// deliver is the phase barrier's second half: every worker clears the
// mailboxes of its own shard, flushes the due delivery-ring slot through the
// transport, and merges the result into its mailboxes with a counting pass
// followed by a single bulk copy (each mailbox is sized once, so high
// fan-in destinations never reallocate mid-merge).
//
// The sorted-by-sender mailbox contract needs no sort on the default path:
// Phase executes each worker's contiguous node range in ascending ID order
// (so every outbox bucket is already ascending in From), and the buckets
// are drained in ascending worker order (whose sender ranges are themselves
// ascending and disjoint). Concatenation therefore yields each mailbox in
// ascending From order with same-sender send order preserved. Delayed
// delivery breaks the premise — one slot can hold messages staged at
// different phases — so with a multi-slot ring the mailboxes are stably
// re-sorted by sender after the copy. Any change to the execution order —
// work stealing, chunked scheduling — must restore the ordering explicitly;
// the delivery-order and cross-worker-transcript tests pin the contract.
func (net *Network[T]) deliver() {
	slot := int(net.phase % int64(net.ringSize))
	net.pool.Run(func(w int) {
		lo, hi := net.bounds[w], net.bounds[w+1]
		buckets := net.buckets[w][:0]
		for src := range net.out {
			buckets = append(buckets, net.out[src].slots[slot][w])
		}
		net.buckets[w] = buckets
		wire := net.transport.Flush(w, buckets)
		counts := net.counts[w]
		for i := range counts {
			counts[i] = 0
		}
		for _, b := range wire {
			for _, m := range b {
				counts[m.To-lo]++
			}
		}
		for v := lo; v < hi; v++ {
			if c := int(counts[v-lo]); cap(net.inbox[v]) < c {
				net.inbox[v] = make([]Envelope[T], 0, c)
			} else {
				net.inbox[v] = net.inbox[v][:0]
			}
		}
		for _, b := range wire {
			for _, m := range b {
				net.inbox[m.To] = append(net.inbox[m.To], m.Env)
			}
		}
		if net.ringSize > 1 {
			for v := lo; v < hi; v++ {
				if len(net.inbox[v]) > 1 {
					slices.SortStableFunc(net.inbox[v], func(a, b Envelope[T]) int {
						return a.From - b.From
					})
				}
			}
		}
		if net.mailboxCap > 0 {
			// Bounded mailboxes: truncation happens after the re-sort, so the
			// rejected suffix is a pure function of the deterministic mailbox
			// order — the same messages bounce for every worker count and
			// transport.
			var rejected int64
			for v := lo; v < hi; v++ {
				if over := len(net.inbox[v]) - net.mailboxCap; over > 0 {
					clear(net.inbox[v][net.mailboxCap:]) // drop payload references
					net.inbox[v] = net.inbox[v][:net.mailboxCap]
					rejected += int64(over)
					if nm := net.metrics; nm != nil {
						nm.OnReject(v, int64(over))
					}
				}
			}
			if rejected > 0 {
				net.counter.reject(w, rejected)
			}
		}
		if nm := net.metrics; nm != nil {
			// Delivered = what survived truncation; observations target the
			// destination's logical shard, which is schedule-independent.
			for v := lo; v < hi; v++ {
				if c := len(net.inbox[v]); c > 0 {
					nm.OnDeliver(v, int64(c))
				}
			}
		}
		for src := range net.out {
			net.out[src].slots[slot][w] = net.out[src].slots[slot][w][:0]
		}
	})
}
