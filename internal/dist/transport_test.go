package dist

import (
	"fmt"
	"testing"
)

// faultTranscript runs a fixed three-phase gossip workload on a network
// configured by the caller and returns every delivery observed, encoded as
// strings, plus the counter totals (messages, words, dropped). It mirrors
// the transcript helper of the core network tests but leaves room for a
// transport, delivery model, or crash set.
func faultTranscript(workers int, configure func(net *Network[int])) ([]string, int64, int64, int64) {
	const n = 257 // deliberately not a multiple of any worker count
	net := NewNetwork[int](n, workers)
	defer net.Close()
	if configure != nil {
		configure(net)
	}
	var log []string
	record := func(v int) {
		for _, e := range net.Recv(v) {
			log = append(log, fmt.Sprintf("%d<-%d:%d", v, e.From, e.Body))
		}
	}
	net.Phase(func(v int) {
		for k := 0; k < v%4; k++ {
			net.Send(v, (v*7+k*13)%n, v*100+k, int64(k+1))
		}
	})
	for v := 0; v < n; v++ {
		record(v)
	}
	net.Phase(func(v int) {
		for _, e := range net.Recv(v) {
			net.Send(v, e.From, e.Body+1, 2)
		}
	})
	for v := 0; v < n; v++ {
		record(v)
	}
	// Extra idle phases drain any delayed traffic a delivery model injected.
	for p := 0; p < 4; p++ {
		net.Phase(func(v int) {})
		for v := 0; v < n; v++ {
			record(v)
		}
	}
	return log, net.Counter().Messages(), net.Counter().Words(), net.Counter().Dropped()
}

func TestRingTransportMatchesInProcess(t *testing.T) {
	// The loopback ring transport serialises every envelope through a
	// bounded per-shard ring; the delivery transcript must be bit-identical
	// to the zero-copy in-process transport for any capacity and worker
	// count — that is the Transport determinism contract.
	wantLog, wantMsgs, wantWords, _ := faultTranscript(3, nil)
	if len(wantLog) == 0 {
		t.Fatal("workload produced no traffic")
	}
	for _, workers := range []int{1, 2, 3, 8} {
		for _, capacity := range []int{1, 7, 4096} {
			log, msgs, words, _ := faultTranscript(workers, func(net *Network[int]) {
				net.SetTransport(NewRing[int](net.Workers(), capacity))
			})
			if msgs != wantMsgs || words != wantWords {
				t.Errorf("workers=%d cap=%d: counters (%d, %d) != (%d, %d)",
					workers, capacity, msgs, words, wantMsgs, wantWords)
			}
			if len(log) != len(wantLog) {
				t.Fatalf("workers=%d cap=%d: transcript length %d != %d",
					workers, capacity, len(log), len(wantLog))
			}
			for i := range log {
				if log[i] != wantLog[i] {
					t.Fatalf("workers=%d cap=%d: transcript diverges at %d: %q != %q",
						workers, capacity, i, log[i], wantLog[i])
				}
			}
		}
	}
}

func TestRingTransportWithFaultsMatchesInProcess(t *testing.T) {
	// Transport and delivery model compose: the model classifies upstream,
	// the transport only moves survivors, so swapping transports must not
	// change a faulty transcript either.
	model := LinkFaults{DropProb: 0.2, DelayProb: 0.3, MaxPhases: 2, Seed: 11}
	wantLog, wantMsgs, _, wantDropped := faultTranscript(2, func(net *Network[int]) {
		net.SetDeliveryModel(model)
	})
	log, msgs, _, droppedN := faultTranscript(5, func(net *Network[int]) {
		net.SetDeliveryModel(model)
		net.SetTransport(NewRing[int](net.Workers(), 3))
	})
	if msgs != wantMsgs || droppedN != wantDropped {
		t.Errorf("counters (%d msgs, %d dropped) != (%d, %d)", msgs, droppedN, wantMsgs, wantDropped)
	}
	if fmt.Sprint(log) != fmt.Sprint(wantLog) {
		t.Errorf("ring transcript diverges from in-process under faults")
	}
}

func TestNewRingValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 4}, {4, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRing(%d, %d) should panic", bad[0], bad[1])
				}
			}()
			NewRing[int](bad[0], bad[1])
		}()
	}
}

func TestSetTransportAfterStartPanics(t *testing.T) {
	net := NewNetwork[int](4, 2)
	defer net.Close()
	net.Phase(func(v int) {})
	defer func() {
		if recover() == nil {
			t.Error("SetTransport after the first phase should panic")
		}
	}()
	net.SetTransport(NewRing[int](2, 4))
}
