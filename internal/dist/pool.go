package dist

import "repro/internal/sched"

// The worker pool moved to internal/sched, where the sequential engine's
// hot paths (matching generation, pair merges) partition over the same
// fork/join abstraction as the network's phase barrier — see sched.Pool for
// the barrier and panic-propagation contract. The alias keeps dist's
// internal call sites unchanged during the migration.
type pool = sched.Pool

func newPool(size int) *pool { return sched.NewPool(size) }
