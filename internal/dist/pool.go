package dist

import "sync"

// pool is a fixed set of long-lived worker goroutines with a fork/join
// barrier: run hands the same task to every worker and blocks until all of
// them finish. Keeping the goroutines warm across phases avoids a spawn per
// phase on the hot path; a single-worker pool degenerates to an inline call
// with zero synchronisation, which keeps Workers == 1 an honest baseline
// for speedup measurements.
type pool struct {
	size int
	work []chan func(w int)
	wg   sync.WaitGroup
	once sync.Once
	// panicMu/panicked capture the first panic from a worker so run can
	// re-raise it on the driving goroutine; without this a callback panic
	// on a pool goroutine would kill the whole process with workers > 1
	// but stay recoverable with workers == 1.
	panicMu  sync.Mutex
	panicked any
}

func newPool(size int) *pool {
	p := &pool{size: size}
	if size == 1 {
		return p
	}
	p.work = make([]chan func(w int), size)
	for w := range p.work {
		ch := make(chan func(w int), 1)
		p.work[w] = ch
		go func(w int, ch <-chan func(w int)) {
			for task := range ch {
				p.runOne(task, w)
				p.wg.Done()
			}
		}(w, ch)
	}
	return p
}

// run executes task(w) on every worker w in [0, size) and waits for all of
// them. The WaitGroup join is the phase barrier: everything written by the
// workers happens-before run returns. A panic inside task surfaces on the
// calling goroutine after the barrier (the first one wins if several
// workers panic), so panic behaviour is the same for every worker count.
func (p *pool) run(task func(w int)) {
	if p.size == 1 {
		task(0)
		return
	}
	p.wg.Add(p.size)
	for _, ch := range p.work {
		ch <- task
	}
	p.wg.Wait()
	p.panicMu.Lock()
	v := p.panicked
	p.panicked = nil
	p.panicMu.Unlock()
	if v != nil {
		panic(v)
	}
}

// runOne executes one task on a worker, converting a panic into a value for
// run to re-raise so a bad callback cannot tear down the process.
func (p *pool) runOne(task func(w int), w int) {
	defer func() {
		if v := recover(); v != nil {
			p.panicMu.Lock()
			if p.panicked == nil {
				p.panicked = v
			}
			p.panicMu.Unlock()
		}
	}()
	task(w)
}

// close terminates the worker goroutines. Idempotent; run must not be
// called afterwards.
func (p *pool) close() {
	p.once.Do(func() {
		for _, ch := range p.work {
			close(ch)
		}
	})
}
