package dist

import (
	"fmt"
	"testing"

	"repro/internal/sched"
)

// repartitionTranscript mirrors faultTranscript but re-splits ownership
// between phases with the given schedule: resplit(phase) returns the bounds
// to install after that phase commits, or nil to keep the current split.
func repartitionTranscript(workers int, configure func(net *Network[int]), resplit func(phase int) []int) ([]string, int64, int64, int64) {
	const n = 257
	net := NewNetwork[int](n, workers)
	defer net.Close()
	if configure != nil {
		configure(net)
	}
	var log []string
	record := func(v int) {
		for _, e := range net.Recv(v) {
			log = append(log, fmt.Sprintf("%d<-%d:%d", v, e.From, e.Body))
		}
	}
	phase := 0
	after := func() {
		if nb := resplit(phase); nb != nil {
			net.Repartition(nb)
		}
		phase++
	}
	net.Phase(func(v int) {
		for k := 0; k < v%4; k++ {
			net.Send(v, (v*7+k*13)%n, v*100+k, int64(k+1))
		}
	})
	after()
	for v := 0; v < n; v++ {
		record(v)
	}
	net.Phase(func(v int) {
		for _, e := range net.Recv(v) {
			net.Send(v, e.From, e.Body+1, 2)
		}
	})
	after()
	for v := 0; v < n; v++ {
		record(v)
	}
	for p := 0; p < 4; p++ {
		net.Phase(func(v int) {})
		after()
		for v := 0; v < n; v++ {
			record(v)
		}
	}
	return log, net.Counter().Messages(), net.Counter().Words(), net.Counter().Dropped()
}

// skewedBounds builds a deliberately unbalanced split of [0, n): shard 0
// takes phase+1 nodes, the rest split the remainder evenly (and with more
// workers than remaining nodes, trailing shards go empty — also under test).
func skewedBounds(n, workers, phase int) []int {
	head := phase + 1
	if head > n {
		head = n
	}
	rest := sched.Partition(n-head, workers-1)
	bounds := make([]int, workers+1)
	for i, b := range rest {
		bounds[i+1] = head + b
	}
	return bounds
}

// TestRepartitionTranscriptInvariant is the heart of the live-rebalancing
// contract: re-splitting ownership between phases — every phase, to wildly
// skewed bounds, under every worker count — must leave the delivery
// transcript and the counter totals bit-identical to the never-repartitioned
// single-worker reference. Mailboxes order by sender, counters sum over
// shards, so ownership is unobservable to the protocol.
func TestRepartitionTranscriptInvariant(t *testing.T) {
	wantLog, wantMsgs, wantWords, _ := faultTranscript(1, nil)
	if len(wantLog) == 0 {
		t.Fatal("workload produced no traffic")
	}
	for _, workers := range []int{1, 2, 3, 8} {
		log, msgs, words, _ := repartitionTranscript(workers, nil, func(phase int) []int {
			if workers == 1 {
				return nil
			}
			return skewedBounds(257, workers, phase)
		})
		if msgs != wantMsgs || words != wantWords {
			t.Errorf("workers=%d: counters (%d, %d) != (%d, %d)", workers, msgs, words, wantMsgs, wantWords)
		}
		if fmt.Sprint(log) != fmt.Sprint(wantLog) {
			t.Errorf("workers=%d: repartitioned transcript diverges", workers)
		}
	}
}

// TestRepartitionWithDelayedInFlight pins the hard case: a delivery model
// with multi-phase delays keeps messages staged in the outbox ring across
// the repartition, so Repartition must re-bucket them under the new
// ownership without disturbing the eventual delivery order.
func TestRepartitionWithDelayedInFlight(t *testing.T) {
	model := LinkFaults{DropProb: 0.1, DelayProb: 0.4, MaxPhases: 3, Seed: 17}
	wantLog, wantMsgs, _, wantDropped := faultTranscript(1, func(net *Network[int]) {
		net.SetDeliveryModel(model)
	})
	for _, workers := range []int{2, 5, 8} {
		log, msgs, _, dropped := repartitionTranscript(workers, func(net *Network[int]) {
			net.SetDeliveryModel(model)
		}, func(phase int) []int {
			return skewedBounds(257, workers, 3*phase)
		})
		if msgs != wantMsgs || dropped != wantDropped {
			t.Errorf("workers=%d: counters (%d msgs, %d dropped) != (%d, %d)",
				workers, msgs, dropped, wantMsgs, wantDropped)
		}
		if fmt.Sprint(log) != fmt.Sprint(wantLog) {
			t.Errorf("workers=%d: delayed in-flight transcript diverges after repartition", workers)
		}
	}
}

// TestRepartitionWithRingTransport composes repartitioning with a real
// transport: staged buckets cross the ring before and after each re-split.
func TestRepartitionWithRingTransport(t *testing.T) {
	model := LinkFaults{DelayProb: 0.3, MaxPhases: 2, Seed: 23}
	wantLog, wantMsgs, wantWords, _ := faultTranscript(1, func(net *Network[int]) {
		net.SetDeliveryModel(model)
	})
	log, msgs, words, _ := repartitionTranscript(4, func(net *Network[int]) {
		net.SetDeliveryModel(model)
		net.SetTransport(NewRing[int](net.Workers(), 7))
	}, func(phase int) []int {
		return skewedBounds(257, 4, 11*phase)
	})
	if msgs != wantMsgs || words != wantWords {
		t.Errorf("counters (%d, %d) != (%d, %d)", msgs, words, wantMsgs, wantWords)
	}
	if fmt.Sprint(log) != fmt.Sprint(wantLog) {
		t.Errorf("ring-transport transcript diverges after repartition")
	}
}

// TestRepartitionEmptyShards: bounds that leave most shards empty (the
// workers > nodes shape) must work mid-run — empty ranges simply fire no
// callbacks for that shard.
func TestRepartitionEmptyShards(t *testing.T) {
	net := NewNetwork[int](3, 3)
	defer net.Close()
	net.Phase(func(v int) { net.Send(v, (v+1)%3, v, 1) })
	// Shard 0 owns everything; shards 1 and 2 are empty.
	net.Repartition([]int{0, 3, 3, 3})
	got := 0
	net.Phase(func(v int) { got += len(net.Recv(v)) })
	if got != 3 {
		t.Errorf("delivered %d messages after empty-shard repartition, want 3", got)
	}
	if net.Bounds()[1] != 3 {
		t.Errorf("bounds not installed: %v", net.Bounds())
	}
}

func TestRepartitionValidation(t *testing.T) {
	net := NewNetwork[int](10, 3)
	defer net.Close()
	for name, bounds := range map[string][]int{
		"wrong shard count": {0, 10},
		"bad first":         {1, 4, 7, 10},
		"bad last":          {0, 4, 7, 9},
		"decreasing":        {0, 7, 5, 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Repartition(%s %v) should panic", name, bounds)
				}
			}()
			net.Repartition(bounds)
		}()
	}
}

// TestRepartitionInsidePhasePanics: ownership may only move at the commit
// barrier, never while a firing batch is speculating.
func TestRepartitionInsidePhasePanics(t *testing.T) {
	net := NewNetwork[int](4, 2)
	defer net.Close()
	defer func() {
		if recover() == nil {
			t.Error("Repartition inside Phase should panic")
		}
	}()
	net.Phase(func(v int) {
		if v == 0 {
			net.Repartition([]int{0, 1, 4})
		}
	})
}
