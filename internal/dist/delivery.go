package dist

import "repro/internal/rng"

// DeliveryModel is the substrate's failure-injection policy: it classifies
// every unreliable message (staged with Send, not SendReliable) as
// delivered on time, delivered late, or lost. Classification happens at
// Send time on the sender's worker, so the model MUST be a pure function of
// its arguments: it is called concurrently from all workers, and its
// verdicts feed the deterministic delivery order. Randomness therefore
// comes from hashing a dedicated seed with the message coordinates, never
// from shared mutable generator state.
type DeliveryModel interface {
	// MaxDelay bounds the delay Classify may return. It sizes the network's
	// delivery rings and must be constant over the model's lifetime.
	MaxDelay() int
	// Classify decides the fate of the seq-th unreliable message staged by
	// node from addressed to node to: deliver reports whether the message
	// arrives at all, and delay how many extra phase barriers it waits
	// (0 = on time, k = readable k phases later than normal). delay must
	// lie in [0, MaxDelay()].
	Classify(from, to int, seq uint64) (delay int, deliver bool)
}

// LinkFaults is the standard DeliveryModel: every unreliable message is
// dropped with probability DropProb; survivors are delayed with probability
// DelayProb, uniformly by 1..MaxPhases extra barriers. Coins are hashed
// from (Seed, from, to, seq) — a dedicated stream independent of protocol
// randomness and of the execution schedule, so transcripts stay
// bit-identical for every worker count.
type LinkFaults struct {
	// DropProb is the per-message loss probability, in [0, 1].
	DropProb float64
	// DelayProb is the probability a surviving message is late, in [0, 1].
	DelayProb float64
	// MaxPhases is the largest injected delay (the draw is uniform on
	// 1..MaxPhases); 0 with a positive DelayProb means 1.
	MaxPhases int
	// Seed identifies the coin stream.
	Seed uint64
}

// MaxDelay implements DeliveryModel.
func (l LinkFaults) MaxDelay() int {
	if l.DelayProb <= 0 {
		return 0
	}
	if l.MaxPhases < 1 {
		return 1
	}
	return l.MaxPhases
}

// Classify implements DeliveryModel with stateless hashed coins.
func (l LinkFaults) Classify(from, to int, seq uint64) (int, bool) {
	// Fold the message coordinates into a SplitMix64 walk; each fold is
	// followed by a full scramble so nearby links get unrelated coins.
	x := l.Seed ^ 0xd6e8feb86659fd93
	rng.SplitMix64(&x)
	x ^= uint64(from)
	rng.SplitMix64(&x)
	x ^= uint64(to)
	rng.SplitMix64(&x)
	x ^= seq
	if l.DropProb > 0 && unit(rng.SplitMix64(&x)) < l.DropProb {
		return 0, false
	}
	maxd := l.MaxDelay()
	if maxd == 0 {
		return 0, true
	}
	if unit(rng.SplitMix64(&x)) >= l.DelayProb {
		return 0, true
	}
	// Modulo bias is ~maxd/2^64 — irrelevant for fault injection.
	return 1 + int(rng.SplitMix64(&x)%uint64(maxd)), true
}

// unit maps 64 random bits to [0, 1) with 53-bit precision.
func unit(u uint64) float64 { return float64(u>>11) / (1 << 53) }
