package dist

import (
	"fmt"
	"testing"
)

// asyncTrace runs a small async relay workload and returns the firing/
// delivery log plus counter totals: every firing node forwards one message
// to its successor, recording what it saw in its mailbox.
func asyncTrace(steps int, seed uint64, configure func(net *Network[int])) ([]string, int64, int64) {
	const n = 19
	net := NewNetwork[int](n, 1)
	defer net.Close()
	if configure != nil {
		configure(net)
	}
	var log []string
	net.RunAsync(steps, seed, func(v int) {
		for _, e := range net.Recv(v) {
			log = append(log, fmt.Sprintf("%d<-%d:%d", v, e.From, e.Body))
		}
		net.Send(v, (v+1)%n, v, 1)
	})
	return log, net.Counter().Messages(), net.Counter().Words()
}

func TestRunAsyncDeterministic(t *testing.T) {
	wantLog, wantMsgs, wantWords := asyncTrace(500, 42, nil)
	if len(wantLog) == 0 {
		t.Fatal("async run delivered nothing")
	}
	log, msgs, words := asyncTrace(500, 42, nil)
	if msgs != wantMsgs || words != wantWords {
		t.Errorf("counters differ across identical runs: (%d, %d) != (%d, %d)",
			msgs, words, wantMsgs, wantWords)
	}
	if fmt.Sprint(log) != fmt.Sprint(wantLog) {
		t.Error("identical (steps, seed) produced different transcripts")
	}
	otherLog, _, _ := asyncTrace(500, 43, nil)
	if fmt.Sprint(otherLog) == fmt.Sprint(wantLog) {
		t.Error("different clock seeds produced the same transcript")
	}
}

func TestRunAsyncMailboxAccumulatesUntilFired(t *testing.T) {
	// Node 1 never fires; every firing of node 0 sends it one message. The
	// mail must accumulate across steps (async mailboxes do not expire) and
	// survive until read.
	net := NewNetwork[int](2, 1)
	defer net.Close()
	fired0, maxSeen := 0, 0
	net.RunAsync(256, 7, func(v int) {
		if v == 0 {
			net.Send(0, 1, fired0, 1)
			fired0++
			return
		}
		if got := len(net.Recv(1)); got > maxSeen {
			maxSeen = got
		}
		for _, e := range net.Recv(1) {
			if e.From != 0 {
				t.Fatalf("unexpected sender %d", e.From)
			}
		}
	})
	// 256 fair coin flips contain two consecutive 0-firings before a
	// 1-firing with overwhelming probability, so node 1 must at some point
	// have seen ≥ 2 pending messages — mail piles up instead of expiring.
	if maxSeen < 2 {
		t.Errorf("mailbox never accumulated (max %d pending)", maxSeen)
	}
}

func TestRunAsyncConsumesMailboxOnFire(t *testing.T) {
	// After a node fires, its mailbox must be empty until new mail arrives:
	// no message may be read twice.
	net := NewNetwork[int](3, 1)
	defer net.Close()
	total := 0
	sent := 0
	net.RunAsync(300, 9, func(v int) {
		total += len(net.Recv(v))
		net.Send(v, (v+1)%3, 0, 1)
		sent++
	})
	// Every delivered message is read at most once, and only messages that
	// were sent can be read.
	if total > sent {
		t.Errorf("read %d messages but only %d were sent — duplicate reads", total, sent)
	}
	if total == 0 {
		t.Error("no mail was ever read")
	}
}

func TestRunAsyncCrashedNodeNeverFires(t *testing.T) {
	net := NewNetwork[int](4, 1)
	defer net.Close()
	net.Crash(2)
	net.RunAsync(200, 5, func(v int) {
		if v == 2 {
			t.Error("crashed node fired")
		}
		net.Send(v, 2, 1, 1)
	})
	if got := net.Recv(2); len(got) != 0 {
		t.Errorf("crashed node holds %d messages", len(got))
	}
	if net.Counter().Dropped() == 0 {
		t.Error("sends to the crashed node were not counted as dropped")
	}
}

func TestRunAsyncHonoursDeliveryModel(t *testing.T) {
	log, msgs, _ := asyncTrace(300, 11, func(net *Network[int]) {
		net.SetDeliveryModel(LinkFaults{DropProb: 1, Seed: 2})
	})
	if len(log) != 0 {
		t.Errorf("DropProb=1 async run still delivered %d messages", len(log))
	}
	if msgs == 0 {
		t.Error("sends should still be counted")
	}
}

func TestRunAsyncDelayedDelivery(t *testing.T) {
	// With a fixed 3-step delay, mail from node 0 must not be readable by
	// node 1 for at least 3 steps after the send — but must eventually
	// arrive.
	net := NewNetwork[int](2, 1)
	defer net.Close()
	net.SetDeliveryModel(fixedDelay{from: 0, delay: 3})
	step := 0 // fn sees every step: no crashes, so every firing invokes it
	got := 0
	net.RunAsync(200, 13, func(v int) {
		if v == 0 {
			net.Send(0, 1, step, 1)
		} else {
			for _, e := range net.Recv(1) {
				// A message sent at step s is due at the end of step s+3 and
				// readable from step s+4 on.
				if step-e.Body < 4 {
					t.Fatalf("message sent at step %d read at step %d (delay 3)", e.Body, step)
				}
				got++
			}
		}
		step++
	})
	if got == 0 {
		t.Error("no delayed mail ever arrived")
	}
	// Quiesce contract: nothing may be stranded in the delivery rings —
	// every send (all from node 0 in this workload) is either already read
	// or waiting in node 1's mailbox.
	sent := int(net.Counter().Messages())
	if got+len(net.Recv(1)) != sent {
		t.Errorf("read %d + pending %d != sent %d: messages stranded in flight",
			got, len(net.Recv(1)), sent)
	}
}

func TestPhaseAfterRunAsyncPanics(t *testing.T) {
	net := NewNetwork[int](4, 1)
	defer net.Close()
	net.RunAsync(4, 1, func(v int) {})
	defer func() {
		if recover() == nil {
			t.Error("Phase after RunAsync should panic: the mailbox contracts differ")
		}
	}()
	net.Phase(func(v int) {})
}

func TestRunAsyncZeroStepsAndEmptyNetwork(t *testing.T) {
	net := NewNetwork[int](4, 1)
	net.RunAsync(0, 1, func(v int) { t.Error("zero steps fired a node") })
	net.Close()
	empty := NewNetwork[int](0, 1)
	empty.RunAsync(10, 1, func(v int) { t.Error("empty network fired a node") })
	empty.Close()
}
