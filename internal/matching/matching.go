// Package matching implements the random matching model of load balancing
// (§2.2 of the paper), following the distributed protocol of Boyd, Ghosh,
// Prabhakar and Shah:
//
//  1. every node is active or non-active with probability 1/2;
//  2. every active node chooses one of its neighbours uniformly at random;
//  3. every non-active node chosen by exactly one of its neighbours is
//     matched with that neighbour.
//
// For almost-regular graphs (§4.5) the protocol runs on the D-regular
// augmentation G*: an active node draws a slot uniformly from [0, D) and
// slots beyond its real degree are self-loops, i.e. no proposal. With
// D = d on a d-regular graph this is exactly the classical protocol.
//
// Randomness is drawn from per-node streams so that a sequential simulation
// and a message-passing execution generate identical matchings for the same
// seeds (each node's draws depend only on its own stream).
package matching

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Unmatched marks a node without a partner in a Matching.
const Unmatched = int32(-1)

// Matching is the outcome of one protocol round.
type Matching struct {
	// Partner[v] is the matched neighbour of v, or Unmatched.
	Partner []int32
	// Pairs lists each matched pair once, with Pairs[i][0] < Pairs[i][1].
	Pairs [][2]int32
	// Proposals counts the propose messages sent this round (for message
	// accounting; every proposal costs one word on the wire).
	Proposals int
}

// Size returns the number of matched pairs.
func (m *Matching) Size() int { return len(m.Pairs) }

// Validate checks the matching invariants against a graph: partners are
// mutual, each node occurs in at most one pair, and every pair is an edge.
func (m *Matching) Validate(g *graph.Graph) error {
	if len(m.Partner) != g.N() {
		return fmt.Errorf("matching: partner array length %d for n=%d", len(m.Partner), g.N())
	}
	count := make([]int, g.N())
	for _, p := range m.Pairs {
		u, v := int(p[0]), int(p[1])
		if u >= v {
			return fmt.Errorf("matching: pair (%d,%d) not ordered", u, v)
		}
		if !g.HasEdge(u, v) {
			return fmt.Errorf("matching: pair (%d,%d) is not an edge", u, v)
		}
		if m.Partner[u] != int32(v) || m.Partner[v] != int32(u) {
			return fmt.Errorf("matching: partner array disagrees with pair (%d,%d)", u, v)
		}
		count[u]++
		count[v]++
	}
	for v, c := range count {
		if c > 1 {
			return fmt.Errorf("matching: node %d in %d pairs", v, c)
		}
		if c == 0 && m.Partner[v] != Unmatched {
			return fmt.Errorf("matching: node %d has phantom partner %d", v, m.Partner[v])
		}
	}
	return nil
}

// NodeRNGs creates n independent per-node random streams from a master seed.
func NodeRNGs(n int, seed uint64) []*rng.RNG {
	master := rng.New(seed)
	out := make([]*rng.RNG, n)
	for i := range out {
		out[i] = master.Split()
	}
	return out
}

// Generate runs one round of the protocol on the D-regular view of g.
// nodeRNGs must have length g.N(); node v consumes randomness only from
// nodeRNGs[v] (at most two draws), which keeps sequential and distributed
// executions in lockstep. d is the degree bound D (pass g.MaxDegree() for
// the regular case).
func Generate(g *graph.Graph, d int, nodeRNGs []*rng.RNG) *Matching {
	n := g.N()
	indptr, indices := g.CSR()
	proposals := make([]int32, n) // proposal target per node, -1 if none
	active := make([]bool, n)
	nProposals := 0
	for v := 0; v < n; v++ {
		proposals[v] = -1
		r := nodeRNGs[v]
		active[v] = r.Bool()
		if !active[v] {
			continue
		}
		slot := r.Intn(d)
		if off := indptr[v]; int32(slot) < indptr[v+1]-off {
			proposals[v] = indices[off+int32(slot)]
			nProposals++
		}
	}
	m := resolve(g, active, proposals)
	m.Proposals = nProposals
	return m
}

// GenerateParallel is Generate partitioned over a shared worker pool; it
// returns the bit-identical matching for any pool size (nil or a one-worker
// pool falls back to the sequential Generate). The protocol parallelises
// cleanly because randomness is per-node: pass 1 draws each shard's
// activity and proposals locally, bucketing proposals by the target's shard
// (the same outbox shuffle as the dist runtime, so no worker writes another
// shard's tallies); pass 2 drains the buckets per target shard in ascending
// source order, reproducing the sequential proposer tallies; pass 3 scans
// acceptors per shard, emitting pairs in ascending acceptor order so the
// concatenated pair list matches the sequential append order exactly.
func GenerateParallel(g *graph.Graph, d int, nodeRNGs []*rng.RNG, pool *sched.Pool) *Matching {
	if pool == nil || pool.Size() <= 1 {
		return Generate(g, d, nodeRNGs)
	}
	n := g.N()
	indptr, indices := g.CSR()
	workers := pool.Size()
	bounds := sched.Partition(n, workers)
	active := make([]bool, n)
	// buckets[src][dst] holds (target, proposer) pairs flat, staged by the
	// source shard and drained by the target shard.
	buckets := make([][][]int32, workers)
	nProposals := make([]int, workers)
	pool.Run(func(w int) {
		out := make([][]int32, workers)
		count := 0
		for v := bounds[w]; v < bounds[w+1]; v++ {
			r := nodeRNGs[v]
			active[v] = r.Bool()
			if !active[v] {
				continue
			}
			slot := r.Intn(d)
			off := indptr[v]
			if int32(slot) >= indptr[v+1]-off {
				continue
			}
			t := int(indices[off+int32(slot)])
			count++
			s := sort.SearchInts(bounds, t+1) - 1
			out[s] = append(out[s], int32(t), int32(v))
		}
		buckets[w] = out
		nProposals[w] = count
	})
	proposerCount := make([]int32, n)
	proposer := make([]int32, n)
	pool.Run(func(w int) {
		// Draining sources in ascending order makes the last writer of
		// proposer[t] the highest proposer ID, exactly as in the sequential
		// scan (it is only read when the count is 1, but exactness is free).
		for src := 0; src < workers; src++ {
			b := buckets[src][w]
			for i := 0; i < len(b); i += 2 {
				proposerCount[b[i]]++
				proposer[b[i]] = b[i+1]
			}
		}
	})
	m := &Matching{Partner: make([]int32, n)}
	shardPairs := make([][][2]int32, workers)
	pool.Run(func(w int) {
		var pairs [][2]int32
		for v := bounds[w]; v < bounds[w+1]; v++ {
			m.Partner[v] = Unmatched
			if active[v] || proposerCount[v] != 1 {
				continue
			}
			a, b := proposer[v], int32(v)
			if a > b {
				a, b = b, a
			}
			pairs = append(pairs, [2]int32{a, b})
		}
		shardPairs[w] = pairs
	})
	for _, pairs := range shardPairs {
		for _, p := range pairs {
			m.Partner[p[0]] = p[1]
			m.Partner[p[1]] = p[0]
		}
		m.Pairs = append(m.Pairs, pairs...)
	}
	for _, c := range nProposals {
		m.Proposals += c
	}
	return m
}

// resolve applies step 3: a non-active node chosen by exactly one neighbour
// joins the matching with that neighbour.
func resolve(g *graph.Graph, active []bool, proposals []int32) *Matching {
	n := g.N()
	proposerCount := make([]int32, n)
	proposer := make([]int32, n)
	for i := range proposer {
		proposer[i] = -1
	}
	for v := 0; v < n; v++ {
		t := proposals[v]
		if t < 0 {
			continue
		}
		proposerCount[t]++
		proposer[t] = int32(v)
	}
	m := &Matching{Partner: make([]int32, n)}
	for i := range m.Partner {
		m.Partner[i] = Unmatched
	}
	for v := 0; v < n; v++ {
		if active[v] || proposerCount[v] != 1 {
			continue
		}
		u := proposer[v]
		a, b := u, int32(v)
		if a > b {
			a, b = b, a
		}
		m.Partner[u] = int32(v)
		m.Partner[v] = u
		m.Pairs = append(m.Pairs, [2]int32{a, b})
	}
	return m
}

// Apply averages y across each matched pair in place: y ← M y.
func (m *Matching) Apply(y []float64) {
	for _, p := range m.Pairs {
		u, v := p[0], p[1]
		avg := (y[u] + y[v]) / 2
		y[u], y[v] = avg, avg
	}
}

// ApplyAll averages every vector in ys across each matched pair in place
// (the multi-dimensional process uses the same matching for all coordinates).
func (m *Matching) ApplyAll(ys [][]float64) {
	for _, y := range ys {
		m.Apply(y)
	}
}

// Matrix materialises M(t) as a dense matrix (for tests on small graphs).
func (m *Matching) Matrix() *linalg.Dense {
	n := len(m.Partner)
	mat := linalg.Identity(n)
	for _, p := range m.Pairs {
		u, v := int(p[0]), int(p[1])
		mat.Set(u, u, 0.5)
		mat.Set(v, v, 0.5)
		mat.Set(u, v, 0.5)
		mat.Set(v, u, 0.5)
	}
	return mat
}

// DBar returns d̄ = (1 − 1/(2d))^{d−1} from Lemma 2.1.
func DBar(d int) float64 {
	if d <= 0 {
		return 1
	}
	base := 1 - 1/(2*float64(d))
	out := 1.0
	for i := 0; i < d-1; i++ {
		out *= base
	}
	return out
}

// ExpectedMatrix returns E[M(t)] = (1 − d̄/4)·I + (d̄/4)·P for a d-regular
// graph (Lemma 2.1(1)), as a dense matrix for validation experiments.
func ExpectedMatrix(g *graph.Graph, d int) *linalg.Dense {
	n := g.N()
	db := DBar(d)
	mat := linalg.NewDense(n, n)
	for v := 0; v < n; v++ {
		mat.Set(v, v, 1-db/4)
		for _, u := range g.Neighbors(v) {
			mat.Set(v, int(u), db/4/float64(d))
		}
	}
	return mat
}
