package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/graph/gen"
	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestGreedyEdgeColoringCycle(t *testing.T) {
	g := gen.Cycle(6)
	colors, count, err := GreedyEdgeColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEdgeColoring(g, colors); err != nil {
		t.Fatal(err)
	}
	// Even cycle is 2-edge-colourable; greedy may use up to 3.
	if count > 3 {
		t.Errorf("used %d colours on C6", count)
	}
}

func TestGreedyEdgeColoringBound(t *testing.T) {
	r := rng.New(3)
	g, err := gen.RandomRegular(40, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	colors, count, err := GreedyEdgeColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEdgeColoring(g, colors); err != nil {
		t.Fatal(err)
	}
	if count > 2*6-1 {
		t.Errorf("greedy used %d colours, bound is 11", count)
	}
}

func TestGreedyEdgeColoringEmpty(t *testing.T) {
	g := gen.Cycle(3)
	sub, _ := g.InducedSubgraph([]int{0})
	colors, count, err := GreedyEdgeColoring(sub)
	if err != nil || colors != nil || count != 0 {
		t.Errorf("empty graph colouring: %v %d %v", colors, count, err)
	}
}

func TestBalancingCircuitCoversAllEdges(t *testing.T) {
	r := rng.New(5)
	g, err := gen.RandomRegular(30, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := NewBalancingCircuit(g, r)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range bc.Matchings() {
		if err := m.Validate(g); err != nil {
			t.Fatal(err)
		}
		total += m.Size()
	}
	if total != g.M() {
		t.Errorf("schedule covers %d of %d edges", total, g.M())
	}
}

func TestBalancingCircuitCycles(t *testing.T) {
	g := gen.Cycle(8)
	bc, err := NewBalancingCircuit(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := bc.Size()
	if n < 2 {
		t.Fatalf("schedule size %d", n)
	}
	first := bc.Next()
	for i := 1; i < n; i++ {
		bc.Next()
	}
	if bc.Next() != first {
		t.Error("schedule does not cycle")
	}
}

func TestBalancingCircuitBalances(t *testing.T) {
	// Cycling through the schedule must converge to uniform load like the
	// random model does.
	r := rng.New(9)
	g, err := gen.RandomRegular(64, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := NewBalancingCircuit(g, r)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, g.N())
	y[0] = 1
	for round := 0; round < 40*bc.Size(); round++ {
		bc.Next().Apply(y)
	}
	avg := 1.0 / float64(g.N())
	for v, x := range y {
		if x < avg/2 || x > avg*2 {
			t.Fatalf("node %d load %v far from uniform %v", v, x, avg)
		}
	}
	if s := linalg.Sum(y); s < 0.999 || s > 1.001 {
		t.Errorf("mass %v", s)
	}
}

// Property: greedy colouring is always proper and within the 2Δ−1 bound.
func TestEdgeColoringProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 8 + 2*r.Intn(20)
		d := 3 + r.Intn(5)
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(n, d, r)
		if err != nil {
			return false
		}
		colors, count, err := GreedyEdgeColoring(g)
		if err != nil {
			return false
		}
		if count > 2*d-1 {
			return false
		}
		return ValidateEdgeColoring(g, colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBalancingCircuitIrregularGraph(t *testing.T) {
	// Caveman graphs are irregular (rewired clique edges); the schedule must
	// still cover every edge with valid matchings.
	p := gen.Caveman(3, 6)
	bc, err := NewBalancingCircuit(p.G, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range bc.Matchings() {
		if err := m.Validate(p.G); err != nil {
			t.Fatal(err)
		}
		total += m.Size()
	}
	if total != p.G.M() {
		t.Errorf("covered %d of %d edges", total, p.G.M())
	}
}
