package matching

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestDBar(t *testing.T) {
	if DBar(1) != 1 {
		t.Errorf("DBar(1) = %v", DBar(1))
	}
	// d=2: (1 - 1/4)^1 = 0.75
	if math.Abs(DBar(2)-0.75) > 1e-15 {
		t.Errorf("DBar(2) = %v", DBar(2))
	}
	// d=3: (5/6)^2
	if math.Abs(DBar(3)-25.0/36.0) > 1e-15 {
		t.Errorf("DBar(3) = %v", DBar(3))
	}
	// Limit: d̄ → e^{-1/2} ≈ 0.6065 as d → ∞.
	if math.Abs(DBar(10000)-math.Exp(-0.5)) > 1e-3 {
		t.Errorf("DBar(10000) = %v", DBar(10000))
	}
	if DBar(0) != 1 {
		t.Errorf("DBar(0) = %v", DBar(0))
	}
}

func TestGenerateValid(t *testing.T) {
	r := rng.New(2)
	g, err := gen.RandomRegular(60, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	rngs := NodeRNGs(g.N(), 7)
	for round := 0; round < 50; round++ {
		m := Generate(g, g.MaxDegree(), rngs)
		if err := m.Validate(g); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	r := rng.New(3)
	g, err := gen.RandomRegular(40, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	a := Generate(g, 4, NodeRNGs(g.N(), 99))
	b := Generate(g, 4, NodeRNGs(g.N(), 99))
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestGenerateNonEmptyOnAverage(t *testing.T) {
	// On a d-regular graph a constant fraction of nodes is matched per round.
	r := rng.New(5)
	g, err := gen.RandomRegular(200, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	rngs := NodeRNGs(g.N(), 11)
	total := 0
	const rounds = 200
	for i := 0; i < rounds; i++ {
		total += Generate(g, 8, rngs).Size()
	}
	avg := float64(total) / rounds
	// E[matched nodes] = n·d̄/2 => pairs ≈ n·d̄/4 ≈ 200·0.63/4 ≈ 31.
	if avg < 20 || avg > 45 {
		t.Errorf("average matching size %v implausible", avg)
	}
}

func TestApplyConservesAndAverages(t *testing.T) {
	g := gen.Cycle(6)
	m := &Matching{Partner: []int32{1, 0, Unmatched, Unmatched, 5, 4},
		Pairs: [][2]int32{{0, 1}, {4, 5}}}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	y := []float64{1, 0, 2, 3, 4, 8}
	sum := linalg.Sum(y)
	m.Apply(y)
	if linalg.Sum(y) != sum {
		t.Error("mass not conserved")
	}
	if y[0] != 0.5 || y[1] != 0.5 || y[2] != 2 || y[4] != 6 || y[5] != 6 {
		t.Errorf("apply wrong: %v", y)
	}
}

func TestApplyAll(t *testing.T) {
	m := &Matching{Partner: []int32{1, 0}, Pairs: [][2]int32{{0, 1}}}
	ys := [][]float64{{2, 0}, {0, 4}}
	m.ApplyAll(ys)
	if ys[0][0] != 1 || ys[0][1] != 1 || ys[1][0] != 2 || ys[1][1] != 2 {
		t.Errorf("applyAll wrong: %v", ys)
	}
}

func TestMatrixProjection(t *testing.T) {
	// Lemma 2.1(2): M is a projection, M² = M. Check on random matchings.
	r := rng.New(9)
	g, err := gen.RandomRegular(20, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	rngs := NodeRNGs(g.N(), 1)
	for round := 0; round < 10; round++ {
		m := Generate(g, 4, rngs).Matrix()
		n := m.Rows
		// Compute M² and compare.
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			m.MulVec(row, m.Col(i))
			for j := 0; j < n; j++ {
				if math.Abs(row[j]-m.At(j, i)) > 1e-14 {
					t.Fatalf("M² != M at (%d,%d)", j, i)
				}
			}
		}
	}
}

func TestExpectedMatrixLemma21(t *testing.T) {
	// Empirical E[M] converges to (1 − d̄/4)I + (d̄/4)P on a regular graph.
	r := rng.New(13)
	g, err := gen.RandomRegular(16, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedMatrix(g, 4)
	n := g.N()
	sum := linalg.NewDense(n, n)
	rngs := NodeRNGs(n, 21)
	const samples = 60000
	for s := 0; s < samples; s++ {
		m := Generate(g, 4, rngs)
		for v := 0; v < n; v++ {
			sum.Set(v, v, sum.At(v, v)+1)
		}
		for _, p := range m.Pairs {
			u, v := int(p[0]), int(p[1])
			sum.Set(u, u, sum.At(u, u)-0.5)
			sum.Set(v, v, sum.At(v, v)-0.5)
			sum.Set(u, v, sum.At(u, v)+0.5)
			sum.Set(v, u, sum.At(v, u)+0.5)
		}
	}
	maxDev := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dev := math.Abs(sum.At(i, j)/samples - want.At(i, j))
			if dev > maxDev {
				maxDev = dev
			}
		}
	}
	// Standard error per entry is ~sqrt(p/samples) ≈ 0.002; allow 5 sigma.
	if maxDev > 0.012 {
		t.Errorf("max deviation from Lemma 2.1 expectation: %v", maxDev)
	}
}

func TestGenerateOnAlmostRegular(t *testing.T) {
	// Star graph: highly irregular; with D = max degree the protocol must
	// still produce valid matchings, and leaf self-loop slots dampen leaves'
	// proposal rates.
	b := graph.NewBuilder(8)
	for leaf := 1; leaf < 8; leaf++ {
		b.AddEdge(0, leaf)
	}
	g := b.MustBuild()
	rngs := NodeRNGs(g.N(), 5)
	matched := 0
	for round := 0; round < 500; round++ {
		m := Generate(g, g.MaxDegree(), rngs)
		if err := m.Validate(g); err != nil {
			t.Fatal(err)
		}
		matched += m.Size()
	}
	if matched == 0 {
		t.Error("star graph never matched in 500 rounds")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := gen.Cycle(4)
	// Non-edge pair.
	m := &Matching{Partner: []int32{2, Unmatched, 0, Unmatched}, Pairs: [][2]int32{{0, 2}}}
	if err := m.Validate(g); err == nil {
		t.Error("non-edge pair accepted")
	}
	// Phantom partner.
	m2 := &Matching{Partner: []int32{1, Unmatched, Unmatched, Unmatched}, Pairs: nil}
	if err := m2.Validate(g); err == nil {
		t.Error("phantom partner accepted")
	}
	// Wrong length.
	m3 := &Matching{Partner: []int32{Unmatched}}
	if err := m3.Validate(g); err == nil {
		t.Error("wrong length accepted")
	}
	// Unordered pair.
	m4 := &Matching{Partner: []int32{1, 0, Unmatched, Unmatched}, Pairs: [][2]int32{{1, 0}}}
	if err := m4.Validate(g); err == nil {
		t.Error("unordered pair accepted")
	}
}

// Property: for random graphs and seeds, generated matchings always validate
// and Apply always conserves total load.
func TestMatchingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + 2*r.Intn(20)
		d := 3 + r.Intn(4)
		if n*d%2 != 0 {
			n++
		}
		g, err := gen.RandomRegular(n, d, r)
		if err != nil {
			return false
		}
		rngs := NodeRNGs(g.N(), seed^0xabc)
		y := make([]float64, g.N())
		for i := range y {
			y[i] = r.Float64() * 10
		}
		before := linalg.Sum(y)
		for round := 0; round < 5; round++ {
			m := Generate(g, d, rngs)
			if m.Validate(g) != nil {
				return false
			}
			m.Apply(y)
		}
		return math.Abs(linalg.Sum(y)-before) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGenerateParallelMatchesSerial pins the parallel generator's contract:
// for equal per-node streams, GenerateParallel reproduces Generate bit for
// bit — same partner array, same pair list in the same order, same proposal
// count — for every pool size, over many consecutive rounds (the streams
// advance identically, so round k stays aligned for round k+1).
func TestGenerateParallelMatchesSerial(t *testing.T) {
	r := rng.New(5)
	g, err := gen.RandomRegular(121, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		pool := sched.NewPool(workers)
		serial := NodeRNGs(g.N(), 41)
		parallel := NodeRNGs(g.N(), 41)
		for round := 0; round < 25; round++ {
			want := Generate(g, g.MaxDegree(), serial)
			got := GenerateParallel(g, g.MaxDegree(), parallel, pool)
			if err := got.Validate(g); err != nil {
				t.Fatalf("workers %d round %d: %v", workers, round, err)
			}
			if got.Proposals != want.Proposals {
				t.Fatalf("workers %d round %d: proposals %d != %d", workers, round, got.Proposals, want.Proposals)
			}
			if len(got.Pairs) != len(want.Pairs) {
				t.Fatalf("workers %d round %d: %d pairs != %d", workers, round, len(got.Pairs), len(want.Pairs))
			}
			for i := range want.Pairs {
				if got.Pairs[i] != want.Pairs[i] {
					t.Fatalf("workers %d round %d: pair %d is %v, want %v",
						workers, round, i, got.Pairs[i], want.Pairs[i])
				}
			}
			for v := range want.Partner {
				if got.Partner[v] != want.Partner[v] {
					t.Fatalf("workers %d round %d: partner of %d is %d, want %d",
						workers, round, v, got.Partner[v], want.Partner[v])
				}
			}
		}
		pool.Close()
	}
}

// TestGenerateParallelNilPoolFallsBack: a nil or single-worker pool must hit
// the sequential path (trivially identical, and no goroutine machinery).
func TestGenerateParallelNilPoolFallsBack(t *testing.T) {
	r := rng.New(6)
	g, err := gen.RandomRegular(30, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	one := sched.NewPool(1)
	defer one.Close()
	want := Generate(g, 4, NodeRNGs(g.N(), 13))
	for _, pool := range []*sched.Pool{nil, one} {
		got := GenerateParallel(g, 4, NodeRNGs(g.N(), 13), pool)
		if len(got.Pairs) != len(want.Pairs) || got.Proposals != want.Proposals {
			t.Fatalf("fallback diverged: %d pairs/%d proposals, want %d/%d",
				len(got.Pairs), got.Proposals, len(want.Pairs), want.Proposals)
		}
	}
}
