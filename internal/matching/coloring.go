package matching

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// BalancingCircuit is the deterministic counterpart of the random matching
// model (the "balancing circuit" / dimension-exchange setting of
// Rabani–Sinclair–Wanka): the edge set is partitioned into perfect-or-partial
// matchings by a proper edge colouring, and rounds cycle through the colour
// classes. Used by the model ablations to contrast the paper's randomized
// protocol with a fixed schedule.
type BalancingCircuit struct {
	matchings []*Matching
	next      int
}

// NewBalancingCircuit greedily edge-colours the graph (at most 2Δ−1 colours,
// Vizing guarantees Δ+1 exist but the greedy bound suffices for a schedule)
// and materialises one Matching per colour class. The colour order is
// shuffled once so the schedule has no construction bias.
func NewBalancingCircuit(g *graph.Graph, r *rng.RNG) (*BalancingCircuit, error) {
	colors, count, err := GreedyEdgeColoring(g)
	if err != nil {
		return nil, err
	}
	byColor := make([][][2]int32, count)
	idx := 0
	g.Edges(func(u, v int) {
		c := colors[idx]
		byColor[c] = append(byColor[c], [2]int32{int32(u), int32(v)})
		idx++
	})
	circuit := &BalancingCircuit{}
	for _, pairs := range byColor {
		if len(pairs) == 0 {
			continue
		}
		m := &Matching{Partner: make([]int32, g.N()), Pairs: pairs}
		for i := range m.Partner {
			m.Partner[i] = Unmatched
		}
		for _, p := range pairs {
			m.Partner[p[0]] = p[1]
			m.Partner[p[1]] = p[0]
		}
		circuit.matchings = append(circuit.matchings, m)
	}
	if r != nil {
		r.Shuffle(len(circuit.matchings), func(i, j int) {
			circuit.matchings[i], circuit.matchings[j] = circuit.matchings[j], circuit.matchings[i]
		})
	}
	return circuit, nil
}

// Size returns the number of matchings in the schedule.
func (b *BalancingCircuit) Size() int { return len(b.matchings) }

// Next returns the next matching in the cyclic schedule.
func (b *BalancingCircuit) Next() *Matching {
	m := b.matchings[b.next]
	b.next = (b.next + 1) % len(b.matchings)
	return m
}

// Matchings exposes the schedule (read-only).
func (b *BalancingCircuit) Matchings() []*Matching { return b.matchings }

// GreedyEdgeColoring assigns each edge the smallest colour not used by any
// incident edge, visiting edges in the graph's canonical order. Returns one
// colour per edge (in g.Edges order) and the number of colours used, which
// is at most 2Δ−1.
func GreedyEdgeColoring(g *graph.Graph) ([]int, int, error) {
	if g.M() == 0 {
		return nil, 0, nil
	}
	maxColors := 2*g.MaxDegree() - 1
	if maxColors < 1 {
		maxColors = 1
	}
	// usedAt[v] is a bitset-ish per-node set of colours on incident edges.
	usedAt := make([][]bool, g.N())
	for v := range usedAt {
		usedAt[v] = make([]bool, maxColors)
	}
	colors := make([]int, 0, g.M())
	count := 0
	var fail error
	g.Edges(func(u, v int) {
		if fail != nil {
			return
		}
		c := -1
		for cand := 0; cand < maxColors; cand++ {
			if !usedAt[u][cand] && !usedAt[v][cand] {
				c = cand
				break
			}
		}
		if c < 0 {
			fail = fmt.Errorf("matching: greedy colouring exceeded %d colours", maxColors)
			return
		}
		usedAt[u][c] = true
		usedAt[v][c] = true
		colors = append(colors, c)
		if c+1 > count {
			count = c + 1
		}
	})
	if fail != nil {
		return nil, 0, fail
	}
	return colors, count, nil
}

// ValidateEdgeColoring checks that no two incident edges share a colour.
func ValidateEdgeColoring(g *graph.Graph, colors []int) error {
	if len(colors) != g.M() {
		return fmt.Errorf("matching: %d colours for %d edges", len(colors), g.M())
	}
	type vc struct {
		v, c int
	}
	seen := map[vc]bool{}
	idx := 0
	var fail error
	g.Edges(func(u, v int) {
		if fail != nil {
			return
		}
		c := colors[idx]
		idx++
		if seen[vc{u, c}] || seen[vc{v, c}] {
			fail = fmt.Errorf("matching: colour %d repeated at an endpoint of {%d,%d}", c, u, v)
			return
		}
		seen[vc{u, c}] = true
		seen[vc{v, c}] = true
	})
	return fail
}
