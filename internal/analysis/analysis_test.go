package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapIter, "mapiter_det")
}

func TestFloatAccum(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FloatAccum, "floataccum_det")
}

func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallClock, "wallclock_det")
}

func TestRawGo(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RawGo, "rawgo_a")
}

func TestRawGoSchedExempt(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RawGo, "rawgo_sched")
}

func TestPayloadReg(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PayloadReg, "payloadreg_a")
}

// TestAnalyzerNames pins the annotation vocabulary: //lintdet:allow names
// must stay stable or every annotation in the repo silently detaches.
func TestAnalyzerNames(t *testing.T) {
	want := []string{"mapiter", "wallclock", "rawgo", "floataccum", "payloadreg"}
	got := analysis.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: got %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q: missing Doc or Run", a.Name)
		}
	}
}
