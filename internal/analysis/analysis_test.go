package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapIter, "mapiter_det")
}

func TestFloatAccum(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FloatAccum, "floataccum_det")
}

func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallClock, "wallclock_det")
}

// TestWallClockDistPkg runs the wallclock analyzer over a fixture loaded at
// the literal production path "repro/internal/dist": adding the obs/export
// exemption must not have weakened the rule where it matters.
func TestWallClockDistPkg(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallClock, "repro/internal/dist")
}

// TestWallClockObsExportExempt runs it over "repro/internal/obs/export",
// the one package whose wall-clock reads (HTTP uptime) are sanctioned; the
// fixture has bare time.Now/time.Since calls and no want expectations, so
// any diagnostic fails the test.
func TestWallClockObsExportExempt(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallClock, "repro/internal/obs/export")
}

// TestPkgClassification pins where the obs packages sit in the contract:
// obs itself is fully deterministic, obs/export is ordered-output only.
func TestPkgClassification(t *testing.T) {
	if !analysis.IsDeterministicPkg("repro/internal/obs") {
		t.Error("repro/internal/obs must be under the deterministic rules")
	}
	if analysis.IsDeterministicPkg("repro/internal/obs/export") {
		t.Error("repro/internal/obs/export must NOT be under the wallclock rule")
	}
	if !analysis.IsOrderedOutputPkg("repro/internal/obs/export") {
		t.Error("repro/internal/obs/export must be ordered-output")
	}
	if !analysis.IsDeterministicPkg("repro/internal/obs/record") {
		t.Error("repro/internal/obs/record must be under the deterministic rules (its bytes are transcript-determined)")
	}
}

func TestRawGo(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RawGo, "rawgo_a")
}

func TestRawGoSchedExempt(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RawGo, "rawgo_sched")
}

func TestPayloadReg(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PayloadReg, "payloadreg_a")
}

// TestAnalyzerNames pins the annotation vocabulary: //lintdet:allow names
// must stay stable or every annotation in the repo silently detaches.
func TestAnalyzerNames(t *testing.T) {
	want := []string{"mapiter", "wallclock", "rawgo", "floataccum", "payloadreg"}
	got := analysis.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: got %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q: missing Doc or Run", a.Name)
		}
	}
}
