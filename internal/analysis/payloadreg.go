package analysis

import (
	"go/ast"
	"go/types"
)

// PayloadReg enforces the wire registry contract: every concrete type that
// implements the wire payload codec interface (wire.Codec[T]: Append/Decode
// with matching payload type) must be registered with wire.Register in an
// init of the package that declares it. Registration is what lets a worker
// daemon serve a payload by handshake name; a codec that compiles but never
// registers works perfectly in-process and fails only when a run first
// crosses the socket transport — exactly the class of latent bug this
// analyzer moves to vet time.
//
// The analyzer matches the interface structurally (Append(buf []byte, v T)
// []byte and Decode(data []byte) (T, int, error) for one consistent T), so
// it needs no dependency on the wire package itself and works in testdata
// stubs: any imported (or current) package named "wire" that declares both
// a Codec type and a Register function is treated as the registry.
var PayloadReg = &Analyzer{
	Name: "payloadreg",
	Doc:  "require every concrete wire.Codec implementation to be registered in an init",
	Run:  runPayloadReg,
}

func runPayloadReg(pass *Pass) error {
	wirePkg := findWirePackage(pass.Pkg)
	if wirePkg == nil {
		return nil
	}
	registerFn, _ := wirePkg.Scope().Lookup("Register").(*types.Func)
	if registerFn == nil {
		return nil
	}

	registered := registeredCodecs(pass, registerFn)

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.TypeParams().Len() > 0 {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !implementsCodec(named) {
			continue
		}
		if !registered[tn] {
			pass.Reportf(tn.Pos(), "wire payload codec %s is not registered with %s.Register in an init of this package (unregistered payloads silently skip the socket path)", name, wirePkg.Name())
		}
	}
	return nil
}

// findWirePackage returns the codec-registry package visible to pass: the
// package itself or a direct import named "wire" declaring Register and
// Codec.
func findWirePackage(pkg *types.Package) *types.Package {
	isWire := func(p *types.Package) bool {
		return p.Name() == "wire" &&
			p.Scope().Lookup("Register") != nil &&
			p.Scope().Lookup("Codec") != nil
	}
	if isWire(pkg) {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if isWire(imp) {
			return imp
		}
	}
	return nil
}

// registeredCodecs collects the type names of every codec passed to
// wire.Register inside an init func of the package.
func registeredCodecs(pass *Pass, registerFn *types.Func) map[*types.TypeName]bool {
	registered := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Name.Name != "init" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 2 {
					return true
				}
				if calleeObj(pass, call) != registerFn {
					return true
				}
				t := pass.TypeOf(call.Args[1])
				if t == nil {
					return true
				}
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					registered[named.Obj()] = true
				}
				return true
			})
		}
	}
	return registered
}

// calleeObj resolves the object a call's function expression names, seeing
// through parentheses and generic instantiation syntax.
func calleeObj(pass *Pass, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fn.Sel]
	}
	return nil
}

// implementsCodec reports whether named (or its pointer type) has the
// Codec[T] method shape: Append(buf []byte, v T) []byte and
// Decode(data []byte) (T, int, error) with one consistent T.
func implementsCodec(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	var appendT, decodeT types.Type
	for i := 0; i < ms.Len(); i++ {
		fn := ms.At(i).Obj().(*types.Func)
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Variadic() {
			continue
		}
		switch fn.Name() {
		case "Append":
			if sig.Params().Len() == 2 && sig.Results().Len() == 1 &&
				isByteSlice(sig.Params().At(0).Type()) &&
				isByteSlice(sig.Results().At(0).Type()) {
				appendT = sig.Params().At(1).Type()
			}
		case "Decode":
			if sig.Params().Len() == 1 && sig.Results().Len() == 3 &&
				isByteSlice(sig.Params().At(0).Type()) &&
				isInt(sig.Results().At(1).Type()) &&
				isError(sig.Results().At(2).Type()) {
				decodeT = sig.Results().At(0).Type()
			}
		}
	}
	return appendT != nil && decodeT != nil && types.Identical(appendT, decodeT)
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

func isError(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
