package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock forbids wall-clock reads and the global math/rand generators in
// transcript-affecting packages. Every clock a deterministic package
// observes must be the network/firing clock, and every random bit must flow
// from an explicit internal/rng seed; time.Now in a retry path or a global
// rand.Intn in a tie-break reproduces differently on every run and only
// fails later, flakily, in a transcript-equality test.
//
// Flagged: time.Now, time.Since, time.Until, and any package-level function
// of math/rand or math/rand/v2 that touches the global generator.
// Constructing a local generator from an explicit source
// (rand.New(rand.NewSource(seed))) is not flagged — it is seeded — though
// internal/rng remains the preferred spelling.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Until and global math/rand in transcript-affecting packages",
	Run:  runWallClock,
}

// randConstructors are the math/rand{,/v2} package-level functions that do
// NOT consume the global generator: they build a local, explicitly seeded
// one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runWallClock(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are seeded locally
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(id.Pos(), "wall-clock read time.%s in deterministic package (use the firing clock, or annotate //lintdet:allow wallclock(reason))", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(id.Pos(), "global math/rand call %s.%s in deterministic package (seed via internal/rng, or annotate //lintdet:allow wallclock(reason))", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
