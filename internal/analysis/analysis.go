// Package analysis is the repo's determinism-contract analyzer suite: five
// static checks that enforce, at `go vet` time, the invariants every
// transcript-equality test assumes at run time. The contract (spelled out in
// the internal/dist package godoc) is that transcripts — mailbox order,
// counters, labels, TotalMass — are bit-identical for every worker count,
// transport, and batch schedule; a single unsorted map range or stray
// time.Now in a hot path compiles fine and only fails flakily in a test.
// These analyzers turn those failures into vet errors.
//
// The analyzers:
//
//   - mapiter: no `range` over a map in a deterministic package unless the
//     loop only collects keys that are subsequently sorted.
//   - wallclock: no time.Now/Since/Until and no global math/rand in
//     deterministic packages — clocks come from the firing clock, randomness
//     from internal/rng seeds.
//   - rawgo: no `go` statements outside internal/sched — goroutines run on
//     sched.Pool for deterministic fork/join and panic propagation.
//   - floataccum: no floating-point `+=` accumulation across a map-range
//     body — order-dependent rounding breaks bit-equality.
//   - payloadreg: every concrete wire.Codec implementation is registered
//     with wire.Register in an init of its package, so a new message type
//     cannot silently skip the socket path.
//
// Deliberate exceptions are annotated in the source as
//
//	//lintdet:allow <analyzer>(<reason>)
//
// on the offending line or the line above it. The reason string is
// mandatory; an annotation without one is itself a diagnostic. The suite is
// compiled into the cmd/lintdet vettool and runs in CI via
// `go vet -vettool`; see the README's "Static analysis & the determinism
// contract" section.
//
// The framework below is a deliberately small, dependency-free subset of
// golang.org/x/tools/go/analysis (the repo builds offline with a bare
// module cache, so x/tools is not importable): an Analyzer holds a Run
// function over a type-checked package Pass, and diagnostics are plain
// positions with messages. Analyzers need no facts and no cross-package
// state, which is what keeps this subset sufficient.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lintdet:allow annotations.
	Name string
	// Doc is a one-line description, shown by `lintdet -help`.
	Doc string
	// Run reports diagnostics for one type-checked package via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding: a position in the package's file set and a
// message.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass holds one type-checked package for one analyzer run. Test files
// (*_test.go) are excluded before the Pass is built: the contract governs
// what production code does to transcripts, and test harnesses legitimately
// use goroutines, timers, and unordered iteration.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(analyzer string, pos token.Pos, msg string)
}

// Reportf records a diagnostic at pos. The driver filters it against any
// //lintdet:allow annotation covering the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(p.Analyzer.Name, pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// Analyzers returns the full suite in a fixed order (diagnostic order is
// part of the tool's own determinism contract).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapIter,
		WallClock,
		RawGo,
		FloatAccum,
		PayloadReg,
	}
}
