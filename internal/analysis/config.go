package analysis

import "strings"

// Package classification. The vettool runs every analyzer over every package
// `go vet` names; each analyzer narrows itself to the packages its rule
// governs using the predicates below. Testdata packages used by the
// analysistest harness opt in by naming convention (suffix matching), since
// they live outside the module and cannot carry real import paths.

// deterministicPkgs are the transcript-affecting packages: everything a
// byte of a run transcript (mailbox order, counters, labels, TotalMass)
// flows through. mapiter, wallclock, and floataccum enforce here.
var deterministicPkgs = map[string]bool{
	"repro/internal/core":        true,
	"repro/internal/dist":        true,
	"repro/internal/sched":       true,
	"repro/internal/matching":    true,
	"repro/internal/rng":         true,
	"repro/internal/wire":        true,
	"repro/internal/loadbalance": true,
	// obs is transcript-adjacent by design: its registries and snapshots are
	// part of the determinism contract (bit-identical across worker counts),
	// so it lives under the full deterministic rule set. The export package
	// below is where wall clock is allowed.
	"repro/internal/obs": true,
	// record is the flight recorder: its output bytes are a pure function of
	// the manifest and the observed event/snapshot sequence, so it lives
	// under the full deterministic rule set. File I/O is sanctioned here the
	// same way wire's socket I/O is — the bytes are transcript-determined,
	// only their destination is environmental.
	"repro/internal/obs/record": true,
}

// orderedOutputPkgs produce the repo's printed artifacts — experiment
// tables, figures, CLI output — which must be byte-reproducible for a given
// seed even though they never touch a transcript. mapiter and floataccum
// enforce here too (an unsorted iteration feeding a table is exactly the
// bug class the contract exists to prevent); wallclock does not, since
// timing measurements in experiment harnesses are legitimate.
var orderedOutputPkgs = map[string]bool{
	"repro/internal/experiments": true,
	"repro/internal/metrics":     true,
	"repro/internal/baselines":   true,
	"repro/internal/spectral":    true,
	"repro/internal/linalg":      true,
	"repro/internal/graph":       true,
	"repro/internal/graph/gen":   true,
	"repro/cmd/lbcluster":        true,
	"repro/cmd/experiments":      true,
	"repro/cmd/graphgen":         true,
	// obs/export writes the observability artifacts (Chrome traces,
	// Prometheus text, the /debug/obs endpoint). Its files must stay
	// byte-reproducible for a given event/metric sequence, but wall clock is
	// legitimate here (HTTP uptime) — the one sanctioned hole, which is why
	// export is a separate package from obs rather than a file in it.
	"repro/internal/obs/export": true,
}

// IsDeterministicPkg reports whether path is under the transcript contract.
// Testdata packages opt in with a "_det" path suffix.
func IsDeterministicPkg(path string) bool {
	return deterministicPkgs[path] || strings.HasSuffix(path, "_det")
}

// IsOrderedOutputPkg reports whether path must produce byte-reproducible
// output without being transcript-affecting. Testdata suffix: "_out".
func IsOrderedOutputPkg(path string) bool {
	return orderedOutputPkgs[path] || strings.HasSuffix(path, "_out")
}

// IsSchedPkg reports whether path is the deterministic scheduler itself,
// which is the one place allowed to create goroutines (it owns the worker
// pool the rest of the repo must use). Testdata suffix: "_sched".
func IsSchedPkg(path string) bool {
	return path == "repro/internal/sched" || strings.HasSuffix(path, "_sched")
}
