package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatAccum flags floating-point `+=`/`-=` accumulation inside the body of
// a range over a map, in transcript-affecting and ordered-output packages.
// Floating-point addition is not associative, so accumulating in map
// iteration order makes the rounded sum depend on the iteration schedule —
// the result differs across runs even though every term is identical, which
// breaks bit-equality of TotalMass-style invariants and printed tables.
//
// Only accumulators declared outside the loop body are flagged: a float
// accumulation into a variable local to one iteration is order-independent.
// The check follows the body into closures (a nested func literal executed
// per iteration accumulates in iteration order all the same).
var FloatAccum = &Analyzer{
	Name: "floataccum",
	Doc:  "flag order-dependent floating-point accumulation inside map-range bodies",
	Run:  runFloatAccum,
}

func runFloatAccum(pass *Pass) error {
	path := pass.Pkg.Path()
	if !IsDeterministicPkg(path) && !IsOrderedOutputPkg(path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !rangesOverMap(pass, rs) {
				return true
			}
			checkFloatAccum(pass, rs)
			return true
		})
	}
	return nil
}

func checkFloatAccum(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) {
			return true
		}
		lhs := as.Lhs[0]
		t := pass.TypeOf(lhs)
		if t == nil || !isFloat(t) {
			return true
		}
		if declaredWithin(pass, lhs, rs.Body) {
			return true // per-iteration accumulator, order-independent
		}
		pass.Reportf(as.TokPos, "floating-point accumulation in map-range body is iteration-order-dependent (sort the keys first, or annotate //lintdet:allow floataccum(reason))")
		return true
	})
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// declaredWithin reports whether e is a plain identifier whose declaration
// lies inside body.
func declaredWithin(pass *Pass, e ast.Expr, body *ast.BlockStmt) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := identObj(pass, id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= body.Pos() && obj.Pos() < body.End()
}
