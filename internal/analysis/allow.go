package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Deliberate exceptions to the determinism contract are annotated
//
//	//lintdet:allow <analyzer>(<reason>)
//
// on the offending line or on the line immediately above it. The reason is
// not optional: an annotation with an empty or missing reason does not
// suppress anything and is reported as a diagnostic itself, attributed to
// the analyzer it names, so "why is this exception safe" is always written
// down next to the exception.

const allowPrefix = "//lintdet:allow"

var allowRe = regexp.MustCompile(`^//lintdet:allow\s+([a-z]+)\((.*)\)\s*$`)

// allowKey addresses an annotation by file and line.
type allowKey struct {
	file string
	line int
}

type allowEntry struct {
	analyzer string
	reason   string
	pos      token.Pos
}

// allowSet is every well-formed annotation in a package, keyed by position.
type allowSet map[allowKey][]allowEntry

// collectAllows scans all comments in files, returning the well-formed
// annotations and a diagnostic for each malformed one.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var malformed []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		malformed = append(malformed, Diagnostic{
			Analyzer: "lintdet",
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				// Tolerate a trailing `// ...` aside after the annotation
				// (reasons themselves cannot contain "//").
				if i := strings.Index(text[len(allowPrefix):], "//"); i >= 0 {
					text = strings.TrimSpace(text[:len(allowPrefix)+i])
				}
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					bad(c.Pos(), "malformed annotation %q: want //lintdet:allow <analyzer>(<reason>)", text)
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				if !known[name] {
					bad(c.Pos(), "annotation names unknown analyzer %q", name)
					continue
				}
				if reason == "" {
					bad(c.Pos(), "//lintdet:allow %s annotation missing a reason", name)
					continue
				}
				p := fset.Position(c.Pos())
				key := allowKey{file: p.Filename, line: p.Line}
				allows[key] = append(allows[key], allowEntry{analyzer: name, reason: reason, pos: c.Pos()})
			}
		}
	}
	return allows, malformed
}

// allowed reports whether a diagnostic from analyzer at position p is
// covered by an annotation on the same line or the line above.
func (a allowSet) allowed(analyzer string, p token.Position) bool {
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, e := range a[allowKey{file: p.Filename, line: line}] {
			if e.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}
