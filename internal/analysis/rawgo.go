package analysis

import "go/ast"

// RawGo flags `go` statements everywhere except internal/sched. The repo's
// determinism contract requires all concurrency to run on sched.Pool: the
// pool gives every hot path the same fork/join barrier semantics, confines
// worker writes to owned shards, and re-raises worker panics on the driving
// goroutine so failure behaviour is identical for every worker count. A raw
// goroutine has none of that — its scheduling is invisible to the batch
// scheduler and its panics kill the process.
//
// I/O pumps that never touch transcript state (socket accept loops, process
// reaping) are legitimate exceptions; annotate them with
// //lintdet:allow rawgo(reason).
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "flag go statements outside internal/sched (concurrency must run on sched.Pool)",
	Run:  runRawGo,
}

func runRawGo(pass *Pass) error {
	if IsSchedPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Go, "go statement outside internal/sched (run on sched.Pool, or annotate //lintdet:allow rawgo(reason))")
			}
			return true
		})
	}
	return nil
}
