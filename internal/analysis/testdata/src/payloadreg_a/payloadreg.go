// Package payloadreg_a exercises the payloadreg analyzer: every concrete
// Codec implementation must be registered in an init.
package payloadreg_a

import (
	"errors"

	"wire"
)

type msg struct{ v int }

// goodCodec is registered below.
type goodCodec struct{}

func (goodCodec) Append(buf []byte, m msg) []byte      { return buf }
func (goodCodec) Decode(data []byte) (msg, int, error) { return msg{}, 0, nil }

// ptrCodec is registered via a pointer, which also counts.
type ptrCodec struct{ scratch []byte }

func (*ptrCodec) Append(buf []byte, m msg) []byte      { return buf }
func (*ptrCodec) Decode(data []byte) (msg, int, error) { return msg{}, 0, nil }

// badCodec implements Codec[msg] but is never registered.
type badCodec struct{} // want "wire payload codec badCodec is not registered"

func (badCodec) Append(buf []byte, m msg) []byte      { return buf }
func (badCodec) Decode(data []byte) (msg, int, error) { return msg{}, 0, nil }

// notACodec has a Decode whose payload type disagrees with Append's, so it
// implements no Codec instantiation and needs no registration.
type notACodec struct{}

func (notACodec) Append(buf []byte, m msg) []byte         { return buf }
func (notACodec) Decode(data []byte) (string, int, error) { return "", 0, errors.New("no") }

// lateCodec is "registered" outside init, which does not count: nothing
// guarantees the call runs before the first socket handshake.
type lateCodec struct{} // want "wire payload codec lateCodec is not registered"

func (lateCodec) Append(buf []byte, m msg) []byte      { return buf }
func (lateCodec) Decode(data []byte) (msg, int, error) { return msg{}, 0, nil }

func registerLate() {
	wire.Register("payloadreg.late", lateCodec{})
}

func init() {
	wire.Register("payloadreg.good", goodCodec{})
	wire.Register("payloadreg.ptr", &ptrCodec{})
}
