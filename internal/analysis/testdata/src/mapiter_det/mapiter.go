// Package mapiter_det exercises the mapiter analyzer (the _det suffix opts
// the package into the deterministic set).
package mapiter_det

import (
	"slices"
	"sort"
)

type wedge struct {
	to int
	w  int
}

func bad(m map[int]string) {
	for k := range m { // want "nondeterministic map iteration"
		_ = k
	}
}

func badKeyValue(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "nondeterministic map iteration"
		out = append(out, v)
	}
	return out
}

func collectAndSort(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func collectAndSlicesSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func collectEntriesAndSort(m map[int]int) []wedge {
	edges := make([]wedge, 0, len(m))
	for to, w := range m {
		edges = append(edges, wedge{to: to, w: w})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].to < edges[j].to })
	return edges
}

func collectNeverSorted(m map[int]string) []int {
	var keys []int
	for k := range m { // want "nondeterministic map iteration"
		keys = append(keys, k)
	}
	return keys
}

// collectSmugglingOutsideState is NOT the accepted idiom: the appended
// element depends on a variable beyond the key and value, so sorting by key
// cannot canonicalise it.
func collectSmugglingOutsideState(m map[int]int) []wedge {
	var edges []wedge
	serial := 0
	for to := range m { // want "nondeterministic map iteration"
		edges = append(edges, wedge{to: to, w: serial})
		serial++
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].to < edges[j].to })
	return edges
}

func nestedInClosure(m map[int]string) func() {
	return func() {
		for k := range m { // want "nondeterministic map iteration"
			_ = k
		}
	}
}

func sliceRangeFine(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

func allowedWithReason(m map[int]string) {
	//lintdet:allow mapiter(diagnostic dump; order feeds no transcript or artifact)
	for k := range m {
		_ = k
	}
}

func allowedSameLine(m map[int]string) {
	for k := range m { //lintdet:allow mapiter(diagnostic dump; order feeds no transcript or artifact)
		_ = k
	}
}

func allowMissingReason(m map[int]string) {
	//lintdet:allow mapiter() // want "missing a reason"
	for k := range m { // want "nondeterministic map iteration"
		_ = k
	}
}

func allowUnknownAnalyzer(m map[int]string) {
	//lintdet:allow nosuchcheck(whatever) // want "unknown analyzer"
	for k := range m { // want "nondeterministic map iteration"
		_ = k
	}
}
