// Package wallclock_det exercises the wallclock analyzer.
package wallclock_det

import (
	"math/rand"
	"time"
)

func badNow() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read time.Since"
}

func badUntil(t1 time.Time) time.Duration {
	return time.Until(t1) // want "wall-clock read time.Until"
}

func badGlobalRand() int {
	return rand.Intn(10) // want "global math/rand call rand.Intn"
}

func badGlobalFloat() float64 {
	return rand.Float64() // want "global math/rand call rand.Float64"
}

func seededLocalFine(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func timeValuesFine(d time.Duration) time.Time {
	var t time.Time
	return t.Add(d)
}

func allowedWithReason() time.Time {
	//lintdet:allow wallclock(I/O deadline on a socket, not transcript state)
	return time.Now()
}
