// Package rawgo_sched stands in for internal/sched (the _sched suffix):
// the scheduler owns the worker pool, so its own go statements are exempt
// from rawgo.
package rawgo_sched

func workers(n int, task func(int)) []chan struct{} {
	done := make([]chan struct{}, n)
	for w := range done {
		done[w] = make(chan struct{})
		go func(w int) { // no diagnostic: scheduler internals are exempt
			task(w)
			close(done[w])
		}(w)
	}
	return done
}
