// Package wire is a registry stub with the same shape as repro/internal/wire
// (a generic Codec interface plus a Register function), which is all the
// payloadreg analyzer keys on. Testdata packages import it as "wire".
package wire

// Codec serialises one payload type T.
type Codec[T any] interface {
	Append(buf []byte, v T) []byte
	Decode(data []byte) (T, int, error)
}

// Register associates a payload name with its codec.
func Register[T any](name string, c Codec[T]) {}
