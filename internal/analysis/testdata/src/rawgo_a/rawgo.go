// Package rawgo_a exercises the rawgo analyzer in an ordinary
// (non-scheduler) package.
package rawgo_a

func bad(ch chan int) {
	go func() { // want "go statement outside internal/sched"
		ch <- 1
	}()
}

func badNested(ch chan int) {
	f := func() {
		go send(ch) // want "go statement outside internal/sched"
	}
	f()
}

func send(ch chan int) { ch <- 1 }

func allowedWithReason(ch chan int) {
	//lintdet:allow rawgo(I/O pump outside any transcript-ordered execution)
	go send(ch)
}
