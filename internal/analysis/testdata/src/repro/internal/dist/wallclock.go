// Package dist is an analyzer fixture under the literal import path
// "repro/internal/dist": it proves the wallclock rule still fires inside the
// real deterministic packages after repro/internal/obs/export joined the
// ordered-output (wall-clock-allowed) list. The fixture shadows nothing —
// the analysistest GOPATH is testdata/src — but the path-based predicate
// sees exactly the production package path.
package dist

import "time"

func badPhaseStamp() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

func badPhaseDuration(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read time.Since"
}

func deadlineAllowed() time.Time {
	//lintdet:allow wallclock(I/O deadline on a socket, not transcript state)
	return time.Now()
}
