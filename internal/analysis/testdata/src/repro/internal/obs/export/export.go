// Package export is an analyzer fixture under the literal import path
// "repro/internal/obs/export": the one sanctioned wall-clock hole. The
// package is ordered-output (mapiter/floataccum still enforce) but NOT
// deterministic, so the wallclock analyzer must stay silent on the reads
// below — no want expectations in this file.
package export

import "time"

func uptimeSeconds(start time.Time) float64 {
	return time.Since(start).Seconds()
}

func requestStamp() time.Time {
	return time.Now()
}
