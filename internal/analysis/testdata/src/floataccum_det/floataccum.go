// Package floataccum_det exercises the floataccum analyzer.
package floataccum_det

func badAccum(m map[int]float64) float64 {
	total := 0.0
	//lintdet:allow mapiter(isolating the floataccum diagnostic in this test)
	for _, v := range m {
		total += v // want "iteration-order-dependent"
	}
	return total
}

func badSubtract(m map[int]float64) float64 {
	total := 0.0
	//lintdet:allow mapiter(isolating the floataccum diagnostic in this test)
	for _, v := range m {
		total -= v // want "iteration-order-dependent"
	}
	return total
}

func intAccumFine(m map[int]int) int {
	total := 0
	//lintdet:allow mapiter(isolating the floataccum diagnostic in this test)
	for _, v := range m {
		total += v
	}
	return total
}

func perIterationFine(m map[int][]float64, out map[int]float64) {
	//lintdet:allow mapiter(isolating the floataccum diagnostic in this test)
	for k, vs := range m {
		local := 0.0
		for _, v := range vs {
			local += v
		}
		out[k] = local
	}
}

func badInClosure(m map[int]float64) float64 {
	total := 0.0
	//lintdet:allow mapiter(isolating the floataccum diagnostic in this test)
	for _, v := range m {
		func() {
			total += v // want "iteration-order-dependent"
		}()
	}
	return total
}

func badFieldAccum(m map[int]float64) {
	var stats struct{ sum float64 }
	//lintdet:allow mapiter(isolating the floataccum diagnostic in this test)
	for _, v := range m {
		stats.sum += v // want "iteration-order-dependent"
	}
	_ = stats
}

func sliceAccumFine(s []float64) float64 {
	total := 0.0
	for _, v := range s {
		total += v
	}
	return total
}

func allowedWithReason(m map[int]float64) float64 {
	total := 0.0
	//lintdet:allow mapiter(isolating the floataccum diagnostic in this test)
	for _, v := range m {
		//lintdet:allow floataccum(sum feeds a log line only, ulp drift acceptable)
		total += v
	}
	return total
}

// denseBlockAccumFine mirrors the dense backend's TotalMass kernel: a flat
// row-major seed-weight block accumulated in slice order — per-row partial
// sum, rows in node order — is fully deterministic and must not be flagged.
func denseBlockAccumFine(w []float64, n, k int) float64 {
	total := 0.0
	for v := 0; v < n; v++ {
		row := w[v*k : (v+1)*k]
		rowSum := 0.0
		for _, x := range row {
			rowSum += x
		}
		total += rowSum
	}
	return total
}

// badDenseBlockByMap walks the same flat block through a map of row offsets:
// the inner indexed loop is ordered, but the outer map range makes the
// accumulation schedule nondeterministic all the same.
func badDenseBlockByMap(w []float64, rows map[int]int, k int) float64 {
	total := 0.0
	//lintdet:allow mapiter(isolating the floataccum diagnostic in this test)
	for _, off := range rows {
		for i := 0; i < k; i++ {
			total += w[off+i] // want "iteration-order-dependent"
		}
	}
	return total
}
