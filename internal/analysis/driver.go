package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// RunPackage type-checks nothing itself — the caller supplies a fully
// type-checked package — and runs every analyzer over it, returning the
// surviving diagnostics in deterministic (file, line, column, analyzer)
// order. It applies the shared driver policy:
//
//   - *_test.go files are dropped from the pass (see Pass docs);
//   - diagnostics covered by a well-formed //lintdet:allow annotation are
//     suppressed;
//   - malformed annotations are diagnostics in their own right.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	kept := files[:0:0]
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}

	// Annotations are validated against the full suite, not just the
	// analyzers in this run, so a single-analyzer run (analysistest) does
	// not misreport another analyzer's allow as unknown.
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	allows, diags := collectAllows(fset, kept, known)

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     kept,
			Pkg:       pkg,
			TypesInfo: info,
			report: func(analyzer string, pos token.Pos, msg string) {
				p := fset.Position(pos)
				if allows.allowed(analyzer, p) {
					return
				}
				diags = append(diags, Diagnostic{Analyzer: analyzer, Pos: p, Message: msg})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated, for callers that type-check a package themselves.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
