// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against expectations written in the source as
//
//	code under test // want "regexp" "another"
//
// comments, mirroring x/tools' analysistest on the standard library alone.
// Testdata packages live under <dir>/src/<pkg>/ (GOPATH layout); imports
// resolve against GOROOT for the standard library and against <dir>/src for
// stub packages (e.g. the wire registry stub payloadreg tests use), all
// type-checked from source, since an offline module cache has no compiled
// export data to import.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// Run loads the package at dir/src/pkgname, runs a over it (through the
// same driver policy as the vettool: //lintdet:allow filtering, malformed
// annotations reported), and compares diagnostics against // want
// expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	absDir, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	imp := importerFor(absDir)

	imp.mu.Lock()
	fset, files, pkg, info, err := imp.loadDir(filepath.Join(absDir, "src", pkgname), pkgname)
	imp.mu.Unlock()
	if err != nil {
		t.Fatalf("loading %s: %v", pkgname, err)
	}

	diags, err := analysis.RunPackage(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkExpectations(t, fset, files, diags)
}

var wantRe = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					pattern, err := unquoteWant(arg[1])
					if err != nil {
						t.Errorf("%s: bad want pattern: %v", p, err)
						continue
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp: %v", p, err)
						continue
					}
					k := key{p.Filename, p.Line}
					wants[k] = append(wants[k], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", d.Pos, d.Message, d.Analyzer)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

// unquoteWant undoes the minimal escaping the want syntax needs (\" and \\)
// without treating the pattern as a full Go string literal, so regexp
// escapes like \[ pass through untouched.
func unquoteWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '\\') {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

// srcImporter type-checks packages from source, resolving import paths with
// go/build against GOROOT plus one testdata GOPATH. Results are cached per
// GOPATH for the life of the process, so the one expensive import tree
// (time, math/rand and their runtime dependencies for the wallclock tests)
// is paid once across all analyzer tests.
type srcImporter struct {
	mu   sync.Mutex
	ctx  build.Context
	fset *token.FileSet
	pkgs map[string]*types.Package
}

var (
	importersMu sync.Mutex
	importers   = map[string]*srcImporter{}
)

func importerFor(gopath string) *srcImporter {
	importersMu.Lock()
	defer importersMu.Unlock()
	if imp, ok := importers[gopath]; ok {
		return imp
	}
	ctx := build.Default
	ctx.GOPATH = gopath
	ctx.CgoEnabled = false
	imp := &srcImporter{ctx: ctx, fset: token.NewFileSet(), pkgs: map[string]*types.Package{}}
	importers[gopath] = imp
	return imp
}

// Import implements types.Importer. Callers must hold mu (the type-checker
// calls back into Import during loadDir, on the same goroutine).
func (imp *srcImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := imp.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return pkg, nil
	}
	// Resolve the directory ourselves (GOROOT, GOROOT vendor, testdata
	// GOPATH): Context.Import would delegate to the go command in module
	// mode, which cannot see the GOPATH-style testdata stubs.
	var dir string
	for _, cand := range []string{
		filepath.Join(imp.ctx.GOROOT, "src", path),
		filepath.Join(imp.ctx.GOROOT, "src", "vendor", path),
		filepath.Join(imp.ctx.GOPATH, "src", path),
	} {
		if st, err := os.Stat(cand); err == nil && st.IsDir() {
			dir = cand
			break
		}
	}
	if dir == "" {
		return nil, fmt.Errorf("package %q not found in GOROOT or testdata GOPATH", path)
	}
	imp.pkgs[path] = nil // cycle guard
	_, _, pkg, _, err := imp.loadDir(dir, path)
	if err != nil {
		delete(imp.pkgs, path)
		return nil, fmt.Errorf("type-checking %q: %w", path, err)
	}
	imp.pkgs[path] = pkg
	return pkg, nil
}

// loadDir parses and type-checks the package in dir under the given import
// path, honouring build constraints via go/build.
func (imp *srcImporter) loadDir(dir, path string) (*token.FileSet, []*ast.File, *types.Package, *types.Info, error) {
	bp, err := imp.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(imp.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		// Std packages implement some functions in assembly or via
		// go:linkname; bodyless declarations are fine for type checking.
		FakeImportC: true,
	}
	pkg, err := conf.Check(path, imp.fset, files, info)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return imp.fset, files, pkg, info, nil
}
