package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIter flags `range` over a map in transcript-affecting and
// ordered-output packages: Go randomises map iteration order per run, so
// any map range whose body's effect is order-sensitive breaks bit-identical
// transcripts and byte-identical printed artifacts.
//
// One idiom is accepted without annotation — the collect-and-sort pattern,
// where the loop body does nothing but append elements built purely from
// the range key (and value) to a slice that is subsequently sorted in the
// same enclosing block:
//
//	keys := make([]int, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Ints(keys)
//
// or, with the values carried along,
//
//	for to, w := range acc {
//		edges = append(edges, wedge{to: to, w: w})
//	}
//	sort.Slice(edges, func(i, j int) bool { return edges[i].to < edges[j].to })
//
// (deterministic because map keys are unique, so sorting by key restores a
// canonical order). Everything else needs either restructuring or a
// justified //lintdet:allow mapiter(reason) annotation.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag nondeterministic map iteration in transcript-affecting and ordered-output packages",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) error {
	path := pass.Pkg.Path()
	if !IsDeterministicPkg(path) && !IsOrderedOutputPkg(path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmts := stmtList(n)
			if stmts == nil {
				return true
			}
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok || !rangesOverMap(pass, rs) {
					continue
				}
				if collectsKeysSortedLater(pass, rs, stmts[i+1:]) {
					continue
				}
				pass.Reportf(rs.For, "nondeterministic map iteration (collect and sort keys, or annotate //lintdet:allow mapiter(reason))")
			}
			return true
		})
		// Range statements nested somewhere other than a statement list
		// cannot exist (a statement is always an element of a block, case,
		// or comm clause), so the walk above is exhaustive.
	}
	return nil
}

// stmtList returns the statement list held directly by n, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func rangesOverMap(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// collectsKeysSortedLater reports whether rs is the accepted
// collect-and-sort idiom: the body only appends elements built purely from
// the range key and value to slices, and every such slice is passed to a
// sorting call later in the same enclosing statement list.
func collectsKeysSortedLater(pass *Pass, rs *ast.RangeStmt, tail []ast.Stmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	keyObj := pass.TypesInfo.Defs[key]
	if keyObj == nil {
		return false
	}
	var valueObj types.Object
	if rs.Value != nil {
		v, ok := rs.Value.(*ast.Ident)
		if !ok {
			return false
		}
		if v.Name != "_" {
			if valueObj = pass.TypesInfo.Defs[v]; valueObj == nil {
				return false
			}
		}
	}
	if len(rs.Body.List) == 0 {
		return false
	}
	var sinks []types.Object
	for _, s := range rs.Body.List {
		sink := appendOfKeyValue(pass, s, keyObj, valueObj)
		if sink == nil {
			return false
		}
		sinks = append(sinks, sink)
	}
	for _, sink := range sinks {
		if !sortedIn(pass, sink, tail) {
			return false
		}
	}
	return true
}

// appendOfKeyValue matches `s = append(s, elem...)` where every elem is an
// expression over nothing but the range key and value (plus type names,
// builtins, struct field keys, and universe constants), and returns the
// object of s. Uniqueness of map keys makes such elements canonically
// re-orderable by a later sort.
func appendOfKeyValue(pass *Pass, s ast.Stmt, keyObj, valueObj types.Object) types.Object {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	lhsObj := identObj(pass, lhs)
	if lhsObj == nil || identObj(pass, arg0) != lhsObj {
		return nil
	}
	for _, elem := range call.Args[1:] {
		if !exprUsesOnly(pass, elem, keyObj, valueObj) {
			return nil
		}
	}
	return lhsObj
}

// exprUsesOnly reports whether every identifier in e denotes the range key,
// the range value, or something order-insensitive: a type, a builtin, a
// struct field key, or a universe constant (true/false/nil/iota). Any other
// variable, function, or constant could smuggle iteration-order dependence
// into the collected element.
func exprUsesOnly(pass *Pass, e ast.Expr, keyObj, valueObj types.Object) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || !ok {
			return ok
		}
		obj := pass.TypesInfo.Uses[id]
		switch {
		case obj == nil: // blank, or a field key recorded only in Defs
		case obj == keyObj || obj == valueObj:
		case obj.Parent() == types.Universe:
		default:
			switch o := obj.(type) {
			case *types.TypeName, *types.Builtin:
			case *types.Var:
				if !o.IsField() {
					ok = false
				}
			default:
				ok = false
			}
		}
		return ok
	})
	return ok
}

func identObj(pass *Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// sortedIn reports whether any statement in tail contains a sorting call
// with sink referenced in its arguments (sort.Ints(s), sort.Slice(s, less),
// slices.Sort(s), sort.Sort(byFoo(s)), a local sortFoo(s) helper, ...).
func sortedIn(pass *Pass, sink types.Object, tail []ast.Stmt) bool {
	found := false
	for _, s := range tail {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == sink {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall recognises a call as a sort: any function of the sort or
// slices packages whose name marks it as a sorting entry point, or any
// function (of any package, including local helpers and methods) whose name
// mentions Sort.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok { // explicit generic instantiation
		fun = ast.Unparen(ix.X)
	}
	var id *ast.Ident
	switch fn := fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	if strings.Contains(id.Name, "Sort") || strings.Contains(id.Name, "sort") {
		return true
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort", "slices":
		switch obj.Name() {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Stable":
			return true
		}
	}
	return false
}
