// Package spectral computes the spectral quantities the paper's analysis is
// built on: the random-walk matrix P of a d-regular graph (realised for
// almost-regular graphs through the G* self-loop view of §4.5), its top
// eigenpairs, the k-way conductances ρ(k) of a partition, the gap parameter
// Υ = (1 − λ_{k+1})/ρ(k) of Peng–Sun–Zanetti, the round budget
// T = Θ(log n / (1 − λ_{k+1})), and the per-node error scores α_v used to
// distinguish good seed nodes (Lemma 4.3).
package spectral

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/matching"
)

// WalkOperator is the symmetric random-walk matrix P* of the D-regular
// augmentation G* of a graph: P*_{uv} = A_{uv}/D off-diagonal and
// P*_{vv} = (D − deg(v))/D on the diagonal. For a d-regular graph with
// D = d this is exactly the paper's P = A/d.
type WalkOperator struct {
	g *graph.Graph
	d int
}

// NewWalkOperator builds the operator with D = max degree.
func NewWalkOperator(g *graph.Graph) *WalkOperator {
	d := g.MaxDegree()
	if d == 0 {
		d = 1
	}
	return &WalkOperator{g: g, d: d}
}

// NewWalkOperatorD builds the operator with an explicit degree bound
// D >= max degree, matching the paper's assumption that nodes know a common
// upper bound on the maximum degree.
func NewWalkOperatorD(g *graph.Graph, d int) (*WalkOperator, error) {
	if d < g.MaxDegree() {
		return nil, fmt.Errorf("spectral: D=%d below max degree %d", d, g.MaxDegree())
	}
	return &WalkOperator{g: g, d: d}, nil
}

// D returns the regularisation degree of G*.
func (w *WalkOperator) D() int { return w.d }

// Dim implements linalg.MatVec.
func (w *WalkOperator) Dim() int { return w.g.N() }

// Apply computes dst = P* src.
func (w *WalkOperator) Apply(dst, src []float64) {
	n := w.g.N()
	invD := 1 / float64(w.d)
	for v := 0; v < n; v++ {
		var s float64
		nb := w.g.Neighbors(v)
		for _, u := range nb {
			s += src[u]
		}
		s += float64(w.d-len(nb)) * src[v]
		dst[v] = s * invD
	}
}

// TopEigen returns the k algebraically largest eigenvalues (descending) and
// eigenvectors of the walk operator. For a connected graph λ_1 = 1 with the
// uniform eigenvector.
func TopEigen(g *graph.Graph, k int, seed uint64) ([]float64, [][]float64, error) {
	op := NewWalkOperator(g)
	opts := linalg.LanczosOptions{Seed: seed}
	vals, vecs, err := linalg.LanczosTopK(op, k, opts)
	if err != nil {
		// One retry with a much larger basis before giving up.
		opts.MaxIter = 60 + 60*k
		if opts.MaxIter > g.N() {
			opts.MaxIter = g.N()
		}
		vals, vecs, err = linalg.LanczosTopK(op, k, opts)
	}
	// A residual of 1e-3 on a unit-norm eigenpair is far below anything the
	// gap estimates or embeddings are sensitive to; only harder failures
	// propagate.
	var nc *linalg.NotConvergedError
	if errors.As(err, &nc) && nc.Residual < 1e-3 {
		err = nil
	}
	return vals, vecs, err
}

// PartitionConductance returns φ_G(S_i) for every part of the labelled
// partition. labels[v] must lie in [0, k).
func PartitionConductance(g *graph.Graph, labels []int, k int) ([]float64, error) {
	if len(labels) != g.N() {
		return nil, fmt.Errorf("spectral: %d labels for %d nodes", len(labels), g.N())
	}
	cut := make([]int, k)
	vol := make([]int, k)
	for v := 0; v < g.N(); v++ {
		c := labels[v]
		if c < 0 || c >= k {
			return nil, fmt.Errorf("spectral: label %d out of range [0,%d)", c, k)
		}
		vol[c] += g.Degree(v)
		for _, u := range g.Neighbors(v) {
			if labels[u] != c {
				cut[c]++
			}
		}
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		if vol[c] == 0 {
			out[c] = 1
			continue
		}
		out[c] = float64(cut[c]) / float64(vol[c])
	}
	return out, nil
}

// Structure summarises the cluster structure of a graph with respect to a
// reference partition.
type Structure struct {
	K        int
	LambdaK  float64 // λ_k of P*
	LambdaK1 float64 // λ_{k+1} of P*
	RhoK     float64 // max_i φ(S_i) over the reference partition
	Upsilon  float64 // (1 − λ_{k+1}) / ρ(k)
	Eigvals  []float64
	Eigvecs  [][]float64 // top k+1 eigenvectors
}

// Analyze computes the structure parameters for the given partition. It
// needs the top k+1 eigenpairs; k must satisfy k+1 <= n.
func Analyze(g *graph.Graph, labels []int, k int, seed uint64) (*Structure, error) {
	if k < 1 || k+1 > g.N() {
		return nil, fmt.Errorf("spectral: invalid k=%d for n=%d", k, g.N())
	}
	vals, vecs, err := TopEigen(g, k+1, seed)
	if err != nil {
		return nil, err
	}
	phis, err := PartitionConductance(g, labels, k)
	if err != nil {
		return nil, err
	}
	rho := 0.0
	for _, p := range phis {
		if p > rho {
			rho = p
		}
	}
	ups := math.Inf(1)
	if rho > 0 {
		ups = (1 - vals[k]) / rho
	}
	return &Structure{
		K:        k,
		LambdaK:  vals[k-1],
		LambdaK1: vals[k],
		RhoK:     rho,
		Upsilon:  ups,
		Eigvals:  vals,
		Eigvecs:  vecs,
	}, nil
}

// EstimateRounds returns T = ceil(c·ln n / (1 − λ_{k+1})), the paper's round
// budget. c is the leading constant; the paper's Θ hides it, and experiments
// show c ∈ [1, 4] works across our graph families.
func EstimateRounds(n int, lambdaK1, c float64) int {
	gap := 1 - lambdaK1
	if gap < 1e-12 {
		gap = 1e-12
	}
	t := c * math.Log(float64(n)) / gap
	if t < 1 {
		t = 1
	}
	return int(math.Ceil(t))
}

// EstimateRoundsMatching returns the round budget for the random matching
// model. One round applies E[M(t)] = (1 − d̄/4)·I + (d̄/4)·P (Lemma 2.1), so
// the effective per-round spectral gap is (d̄/4)(1 − λ_{k+1}); the paper's
// Θ(log n/(1−λ_{k+1})) absorbs the constant 4/d̄ ∈ [4, 6.6]. Making it
// explicit keeps the constant c comparable across degrees.
func EstimateRoundsMatching(n int, lambdaK1 float64, d int, c float64) int {
	db := matching.DBar(d)
	gap := db / 4 * (1 - lambdaK1)
	if gap < 1e-12 {
		gap = 1e-12
	}
	t := c * math.Log(float64(n)) / gap
	if t < 1 {
		t = 1
	}
	return int(math.Ceil(t))
}

// AutoRounds estimates the averaging budget T for a graph with k planted
// clusters without knowing the partition: it computes λ_{k+1} from the top
// k+1 eigenpairs and applies the matching-model round estimate with leading
// constant c (1.5 is a good default across our graph families).
func AutoRounds(g *graph.Graph, k int, c float64, seed uint64) (int, error) {
	vals, _, err := TopEigen(g, k+1, seed)
	if err != nil {
		return 0, err
	}
	return EstimateRoundsMatching(g.N(), vals[k], g.MaxDegree(), c), nil
}

// NormalizedIndicator returns χ_S with χ_S(v) = 1/|S| for v ∈ S, 0 elsewhere
// (the paper's normalisation, which makes ⟨χ_v, χ_S⟩ = ‖χ_S‖² for v ∈ S).
func NormalizedIndicator(n int, members []int) []float64 {
	x := make([]float64, n)
	if len(members) == 0 {
		return x
	}
	val := 1 / float64(len(members))
	for _, v := range members {
		x[v] = val
	}
	return x
}

// ClusterMembers groups node ids by label.
func ClusterMembers(labels []int, k int) [][]int {
	out := make([][]int, k)
	for v, c := range labels {
		out[c] = append(out[c], v)
	}
	return out
}

// GoodNodeAnalysis carries the Lemma 4.2/4.3 machinery: the orthonormal set
// {χ̂_i} in the indicator span closest to the eigenvectors, the per-vector
// approximation errors ‖χ̂_i − f_i‖, and the per-node scores
// α_v = sqrt(Σ_i (f_i(v) − χ̂_i(v))²).
type GoodNodeAnalysis struct {
	Alpha     []float64   // per-node score; small = good seed
	VecErrors []float64   // ‖χ̂_i − f_i‖ for i = 1..k
	ChiHat    [][]float64 // the orthonormalised projected indicators
	TotalErr  float64     // Σ_i ‖χ̂_i − f_i‖² (= kE² in the paper's notation)
}

// AnalyzeGoodNodes computes the good-node scores for a reference partition
// given the top-k eigenvectors of the walk matrix.
func AnalyzeGoodNodes(g *graph.Graph, labels []int, k int, eigvecs [][]float64) (*GoodNodeAnalysis, error) {
	n := g.N()
	if len(eigvecs) < k {
		return nil, fmt.Errorf("spectral: need %d eigenvectors, got %d", k, len(eigvecs))
	}
	members := ClusterMembers(labels, k)
	// Orthonormal basis of span{χ_S1..χ_Sk}: normalised indicators (disjoint
	// supports are orthogonal).
	basis := make([][]float64, k)
	for j := 0; j < k; j++ {
		if len(members[j]) == 0 {
			return nil, fmt.Errorf("spectral: cluster %d empty", j)
		}
		b := make([]float64, n)
		val := 1 / math.Sqrt(float64(len(members[j])))
		for _, v := range members[j] {
			b[v] = val
		}
		basis[j] = b
	}
	// χ̃_i = projection of f_i on the span.
	chiTilde := make([][]float64, k)
	for i := 0; i < k; i++ {
		p := make([]float64, n)
		for j := 0; j < k; j++ {
			linalg.AddScaled(p, linalg.Dot(eigvecs[i], basis[j]), basis[j])
		}
		chiTilde[i] = p
	}
	// χ̂_i = Gram-Schmidt of the χ̃_i (they are near-orthonormal when Υ is
	// large; Lemma 4.2).
	chiHat := make([][]float64, k)
	for i := range chiTilde {
		chiHat[i] = linalg.Clone(chiTilde[i])
	}
	chiHat = linalg.GramSchmidt(chiHat, 1e-12)
	if len(chiHat) < k {
		return nil, fmt.Errorf("spectral: projected indicators degenerate (%d of %d independent)", len(chiHat), k)
	}
	vecErr := make([]float64, k)
	total := 0.0
	alpha := make([]float64, n)
	for i := 0; i < k; i++ {
		vecErr[i] = linalg.Dist(chiHat[i], eigvecs[i])
		total += vecErr[i] * vecErr[i]
		for v := 0; v < n; v++ {
			d := eigvecs[i][v] - chiHat[i][v]
			alpha[v] += d * d
		}
	}
	for v := 0; v < n; v++ {
		alpha[v] = math.Sqrt(alpha[v])
	}
	return &GoodNodeAnalysis{Alpha: alpha, VecErrors: vecErr, ChiHat: chiHat, TotalErr: total}, nil
}

// MixingEstimate returns an estimate of the global mixing round count
// log(n)/(1−λ_2), the scale at which cluster information washes out
// (Remark 1).
func MixingEstimate(n int, lambda2 float64) int {
	return EstimateRounds(n, lambda2, 1)
}
