package spectral

import (
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/rng"
)

func TestAutoRoundsMatchesManualEstimate(t *testing.T) {
	r := rng.New(3)
	p, err := gen.ClusteredRing(3, 80, 20, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := AutoRounds(p.G, 3, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := TopEigen(p.G, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	manual := EstimateRoundsMatching(p.G.N(), vals[3], p.G.MaxDegree(), 1.5)
	if auto != manual {
		t.Errorf("AutoRounds %d != manual %d", auto, manual)
	}
	if auto < 10 {
		t.Errorf("implausibly small budget %d", auto)
	}
}

func TestAutoRoundsGrowsWithTighterClusters(t *testing.T) {
	r := rng.New(5)
	sparse, err := gen.ClusteredRing(2, 80, 12, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := gen.ClusteredRing(2, 80, 40, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	// λ_3 is smaller on the denser expander (better internal gap), but the
	// d̄/4 matching slowdown is about the same, so T should not explode;
	// just check both estimates are sane and positive.
	ts, err := AutoRounds(sparse.G, 2, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	td, err := AutoRounds(dense.G, 2, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ts <= 0 || td <= 0 {
		t.Errorf("budgets %d %d", ts, td)
	}
}

func TestAutoRoundsError(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := AutoRounds(g, 4, 1.5, 1); err == nil {
		t.Error("k+1 > n should fail")
	}
}

func TestMixingEstimate(t *testing.T) {
	if MixingEstimate(1000, 0.9) <= MixingEstimate(1000, 0.5) {
		t.Error("smaller gap must mean more rounds")
	}
}
