package spectral

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestWalkOperatorRowStochastic(t *testing.T) {
	p, err := gen.SBMBalanced(2, 50, 10, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	op := NewWalkOperator(p.G)
	n := p.G.N()
	ones := make([]float64, n)
	linalg.Fill(ones, 1)
	dst := make([]float64, n)
	op.Apply(dst, ones)
	for v := 0; v < n; v++ {
		if math.Abs(dst[v]-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", v, dst[v])
		}
	}
}

func TestWalkOperatorSymmetric(t *testing.T) {
	// x^T P y == y^T P x for the self-loop-augmented operator.
	p, err := gen.SBMBalanced(2, 30, 8, 2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	op := NewWalkOperator(p.G)
	n := p.G.N()
	r := rng.New(4)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.NormFloat64()
		y[i] = r.NormFloat64()
	}
	px := make([]float64, n)
	py := make([]float64, n)
	op.Apply(px, x)
	op.Apply(py, y)
	if math.Abs(linalg.Dot(y, px)-linalg.Dot(x, py)) > 1e-10 {
		t.Error("operator not symmetric")
	}
}

func TestWalkOperatorDBound(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := NewWalkOperatorD(g, 1); err == nil {
		t.Error("D below max degree should fail")
	}
	op, err := NewWalkOperatorD(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if op.D() != 4 {
		t.Errorf("D = %d", op.D())
	}
	// With D=4, cycle nodes have 2 self-loop slots: P x for x = e_0 puts
	// 1/2 on node 0.
	x := make([]float64, 5)
	x[0] = 1
	dst := make([]float64, 5)
	op.Apply(dst, x)
	if math.Abs(dst[0]-0.5) > 1e-15 || math.Abs(dst[1]-0.25) > 1e-15 {
		t.Errorf("dst = %v", dst)
	}
}

func TestTopEigenCycle(t *testing.T) {
	// Cycle C_n has random-walk eigenvalues cos(2πj/n).
	n := 12
	g := gen.Cycle(n)
	vals, vecs, err := TopEigen(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-9 {
		t.Errorf("λ1 = %v", vals[0])
	}
	want := math.Cos(2 * math.Pi / float64(n))
	if math.Abs(vals[1]-want) > 1e-8 || math.Abs(vals[2]-want) > 1e-8 {
		t.Errorf("λ2,λ3 = %v,%v want %v (multiplicity 2)", vals[1], vals[2], want)
	}
	// First eigenvector is uniform.
	f1 := vecs[0]
	for v := 1; v < n; v++ {
		if math.Abs(math.Abs(f1[v])-math.Abs(f1[0])) > 1e-8 {
			t.Errorf("f1 not uniform: %v vs %v", f1[v], f1[0])
		}
	}
}

func TestTopEigenCompleteGraph(t *testing.T) {
	// K_n: λ1 = 1, all others = -1/(n-1).
	g := gen.Complete(8)
	vals, _, err := TopEigen(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-9 {
		t.Errorf("λ1 = %v", vals[0])
	}
	for i := 1; i < 4; i++ {
		if math.Abs(vals[i]+1.0/7.0) > 1e-8 {
			t.Errorf("λ%d = %v want %v", i+1, vals[i], -1.0/7.0)
		}
	}
}

func TestPartitionConductance(t *testing.T) {
	p := gen.Barbell(4)
	phis, err := PartitionConductance(p.G, p.Truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Each clique: cut 1, vol = 2*C(4,2)+1 = 13.
	for c, phi := range phis {
		if math.Abs(phi-1.0/13.0) > 1e-12 {
			t.Errorf("φ(S_%d) = %v", c, phi)
		}
	}
}

func TestPartitionConductanceErrors(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := PartitionConductance(g, []int{0, 0}, 1); err == nil {
		t.Error("short labels should fail")
	}
	if _, err := PartitionConductance(g, []int{0, 0, 0, 5}, 2); err == nil {
		t.Error("out-of-range label should fail")
	}
}

func TestAnalyzeWellClustered(t *testing.T) {
	r := rng.New(7)
	p, err := gen.ClusteredRing(3, 60, 10, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Analyze(p.G, p.Truth, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// λ_3 should be close to 1 (three clusters), λ_4 bounded away.
	if st.LambdaK < 0.75 {
		t.Errorf("λ_k = %v, expected near 1", st.LambdaK)
	}
	if st.LambdaK1 > st.LambdaK {
		t.Error("eigenvalues out of order")
	}
	// ρ(3) = 2c/d = 2/12.
	if math.Abs(st.RhoK-2.0/12.0) > 1e-12 {
		t.Errorf("ρ(k) = %v", st.RhoK)
	}
	if st.Upsilon < 1 {
		t.Errorf("Υ = %v, expected > 1 for a well-clustered ring", st.Upsilon)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	g := gen.Cycle(4)
	labels := []int{0, 0, 1, 1}
	if _, err := Analyze(g, labels, 0, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Analyze(g, labels, 4, 1); err == nil {
		t.Error("k+1 > n should fail")
	}
}

func TestEstimateRounds(t *testing.T) {
	if got := EstimateRounds(1000, 0.5, 1); got != int(math.Ceil(math.Log(1000)/0.5)) {
		t.Errorf("rounds = %d", got)
	}
	if got := EstimateRounds(10, 1.0, 1); got < 1000000 {
		// Degenerate gap should produce a huge but finite value.
		t.Errorf("zero gap rounds = %d", got)
	}
	if got := EstimateRounds(2, 0.0, 0.001); got != 1 {
		t.Errorf("floor at 1, got %d", got)
	}
}

func TestNormalizedIndicator(t *testing.T) {
	x := NormalizedIndicator(5, []int{1, 3})
	if x[1] != 0.5 || x[3] != 0.5 || x[0] != 0 {
		t.Errorf("indicator %v", x)
	}
	z := NormalizedIndicator(3, nil)
	if linalg.Norm(z) != 0 {
		t.Error("empty indicator should be zero")
	}
}

func TestClusterMembers(t *testing.T) {
	m := ClusterMembers([]int{0, 1, 0, 2}, 3)
	if len(m[0]) != 2 || len(m[1]) != 1 || len(m[2]) != 1 {
		t.Errorf("members %v", m)
	}
}

func TestAnalyzeGoodNodes(t *testing.T) {
	r := rng.New(11)
	p, err := gen.ClusteredRing(3, 50, 8, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	_, vecs, err := TopEigen(p.G, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := AnalyzeGoodNodes(p.G, p.Truth, 3, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ga.Alpha) != p.G.N() {
		t.Fatalf("alpha length %d", len(ga.Alpha))
	}
	// Σ α_v² == Σ ‖χ̂_i − f_i‖² by definition.
	sumAlpha := 0.0
	for _, a := range ga.Alpha {
		sumAlpha += a * a
	}
	if math.Abs(sumAlpha-ga.TotalErr) > 1e-9 {
		t.Errorf("Σα² = %v vs TotalErr %v", sumAlpha, ga.TotalErr)
	}
	// On a strongly clustered graph, the indicators approximate the
	// eigenvectors well: per-vector errors well below 1 (norm scale).
	for i, e := range ga.VecErrors {
		if e > 0.5 {
			t.Errorf("‖χ̂_%d − f_%d‖ = %v too large", i, i, e)
		}
	}
	// χ̂ vectors are orthonormal.
	for i := 0; i < 3; i++ {
		if math.Abs(linalg.Norm(ga.ChiHat[i])-1) > 1e-9 {
			t.Errorf("χ̂_%d not unit", i)
		}
		for j := i + 1; j < 3; j++ {
			if math.Abs(linalg.Dot(ga.ChiHat[i], ga.ChiHat[j])) > 1e-9 {
				t.Errorf("χ̂_%d, χ̂_%d not orthogonal", i, j)
			}
		}
	}
}

func TestAnalyzeGoodNodesErrors(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := AnalyzeGoodNodes(g, []int{0, 0, 1, 1}, 2, [][]float64{make([]float64, 4)}); err == nil {
		t.Error("too few eigenvectors should fail")
	}
}

func TestSpectralGapOrdering(t *testing.T) {
	// A graph with 2 clusters: λ_2 close to 1, λ_3 clearly smaller.
	r := rng.New(13)
	p, err := gen.ClusteredRing(2, 80, 16, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := TopEigen(p.G, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// For k=2 with one cross matching, the signed cluster-indicator vector is
	// an exact eigenvector with λ2 = (dIn-1)/d; λ3 comes from the internal
	// expanders and sits near 2√(dIn)/d.
	gap21 := vals[0] - vals[1] // should be small (two clusters)
	gap32 := vals[1] - vals[2] // should be large
	if gap32 < 3*gap21 {
		t.Errorf("expected λ2-λ3 gap to dominate: vals=%v", vals[:4])
	}
}

var _ = graph.Graph{} // keep import for doc reference
