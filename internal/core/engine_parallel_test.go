package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/rng"
	"repro/internal/sched"
)

// engineFingerprint collapses everything the parallel initialisation and
// query must reproduce bit for bit: IDs, seed list, and the full query
// result on the evolved states.
func engineFingerprint(t *testing.T, e *Engine) string {
	t.Helper()
	seeds, seedIDs := e.Seeds()
	res := e.Query()
	s := fmt.Sprintf("seeds=%v ids=%v thr=%v num=%d|", seeds, seedIDs, res.Threshold, res.NumLabels)
	for v := range res.Labels {
		s += fmt.Sprintf("(%d,%x)", res.Labels[v], res.RawLabels[v])
	}
	s += fmt.Sprintf("|%+v", res.Stats)
	return s
}

// TestEngineSeedingAndQueryParallelMatchesSerial pins satellite 1: the
// NewEngine seeding loop and Engine.Query partitioned over a shared
// sched.Pool are bit-identical to the serial engine — same IDs, same seed
// list in the same order, same labels after the same rounds — for every
// pool size and GOMAXPROCS setting.
func TestEngineSeedingAndQueryParallelMatchesSerial(t *testing.T) {
	ring, err := gen.ClusteredRing(2, 60, 16, 1, rng.New(211))
	if err != nil {
		t.Fatal(err)
	}
	sbm, err := gen.SBMBalanced(3, 50, 12, 2, rng.New(223))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *gen.Planted
	}{{"ring", ring}, {"sbm", sbm}} {
		// The serial sparse run is the canonical transcript; every pool size,
		// GOMAXPROCS setting AND state backend must reproduce it bit for bit.
		params := Params{Beta: 0.3, Rounds: 25, Seed: 17, StateBackend: BackendSparse}
		serial, err := NewEngine(tc.g.G, params)
		if err != nil {
			t.Fatal(err)
		}
		serial.Run(params.Rounds)
		want := engineFingerprint(t, serial)
		if len(serial.seeds) == 0 {
			t.Fatalf("%s: serial engine planted no seeds, test is vacuous", tc.name)
		}
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
			for _, workers := range []int{2, 3, 8} {
				for _, backend := range []string{BackendSparse, BackendDense} {
					params.StateBackend = backend
					pool := sched.NewPool(workers)
					par, err := NewEngineWithPool(tc.g.G, params, pool)
					if err != nil {
						t.Fatal(err)
					}
					par.Run(params.Rounds)
					got := engineFingerprint(t, par)
					pool.Close()
					if got != want {
						t.Errorf("%s procs=%d workers=%d %s: parallel engine diverged\n got  %.120s…\n want %.120s…",
							tc.name, procs, workers, backend, got, want)
					}
				}
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}

// TestClusterParallelUsesPooledInitAndQuery: the end-to-end entry point
// must stay bit-identical to the sequential Cluster now that seeding and
// query also partition over the pool.
func TestClusterParallelUsesPooledInitAndQuery(t *testing.T) {
	p, err := gen.ClusteredRing(2, 80, 20, 1, rng.New(227))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 30, Seed: 23}
	seq, err := Cluster(p.G, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, -1} {
		par, err := ClusterParallel(p.G, params, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.NumLabels != seq.NumLabels || par.Stats != seq.Stats {
			t.Errorf("workers=%d: stats %+v != sequential %+v", workers, par.Stats, seq.Stats)
		}
		for v := range seq.Labels {
			if par.Labels[v] != seq.Labels[v] {
				t.Fatalf("workers=%d: node %d labelled %d, want %d", workers, v, par.Labels[v], seq.Labels[v])
			}
		}
	}
}
