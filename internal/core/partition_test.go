package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestParsePartitionSpec(t *testing.T) {
	for _, good := range []string{"", "count", "degree", "adaptive"} {
		if _, err := ParsePartitionSpec(good); err != nil {
			t.Errorf("ParsePartitionSpec(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"random", "Degree", "count "} {
		if _, err := ParsePartitionSpec(bad); err == nil {
			t.Errorf("ParsePartitionSpec(%q) should fail", bad)
		}
	}
	if s := (PartitionSpec{}).String(); s != "count" {
		t.Errorf("zero spec prints %q, want count", s)
	}
}

// TestLabelBoundsProperties: the adaptive re-split must cover [0, n) with
// monotone bounds, align shard boundaries with label-run boundaries where
// balance permits, and degenerate to the count split on trivial inputs.
func TestLabelBoundsProperties(t *testing.T) {
	// Three equal-cost label runs and three workers: bounds must land
	// exactly on the run boundaries.
	raw := []uint64{7, 7, 7, 7, 2, 2, 2, 2, 9, 9, 9, 9}
	costs := make([]int64, len(raw))
	for i := range costs {
		costs[i] = 1
	}
	b := labelBounds(raw, costs, 3)
	sched.CheckBounds(b, len(raw), 3)
	if b[1] != 4 || b[2] != 8 {
		t.Errorf("bounds %v not aligned to label runs (want cuts at 4 and 8)", b)
	}
	// One giant converged cluster still splits: the atom cap bounds each
	// atom at the ideal share, so no shard is left owning everything.
	same := make([]uint64, 64)
	b = labelBounds(same, make([]int64, 64), 4) // zero total cost → count split
	sched.CheckBounds(b, 64, 4)
	costs64 := make([]int64, 64)
	for i := range costs64 {
		costs64[i] = 1
	}
	b = labelBounds(same, costs64, 4)
	sched.CheckBounds(b, 64, 4)
	for s := 0; s < 4; s++ {
		if size := b[s+1] - b[s]; size > 32 {
			t.Errorf("converged-cluster split %v leaves shard %d with %d/64 nodes", b, s, size)
		}
	}
	// Degenerate inputs fall back to the count split.
	for i, b := range [][]int{
		labelBounds(nil, nil, 3),
		labelBounds(same, costs64, 1),
	} {
		n := 0
		if i == 1 {
			n = 64
		}
		want := sched.Partition(n, []int{3, 1}[i])
		for j := range want {
			if b[j] != want[j] {
				t.Fatalf("degenerate case %d: %v != %v", i, b, want)
			}
		}
	}
}

// paGraph builds the hub-heavy preferential-attachment instance shared by
// the balance tests: hubs concentrate at low node IDs, so the count split
// overloads shard 0.
func paGraph(t *testing.T, n, m int) *graph.Graph {
	t.Helper()
	g, err := gen.PreferentialAttachment(n, m, rng.New(97))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// degreeImbalance evaluates a bounds split under the degree cost function:
// max shard cost over mean shard cost.
func degreeImbalance(g *graph.Graph, bounds []int) float64 {
	costs := graph.DegreeCosts(g)
	var max, total int64
	for s := 0; s+1 < len(bounds); s++ {
		var c int64
		for v := bounds[s]; v < bounds[s+1]; v++ {
			c += costs[v]
		}
		total += c
		if c > max {
			max = c
		}
	}
	return float64(max) * float64(len(bounds)-1) / float64(total)
}

// TestPartitionDegreeBalancesPowerLaw is the ISSUE's acceptance number: on a
// power-law (preferential-attachment) graph at 8 workers, the count split
// must exhibit the hub pile-up (max/mean degree cost >= 2) and the degree
// split must fix it (<= 1.15) — with bit-identical labels either way.
func TestPartitionDegreeBalancesPowerLaw(t *testing.T) {
	g := paGraph(t, 4000, 4)
	params := Params{Beta: 0.25, Rounds: 12, Seed: 7}
	byMode := map[string]*DistResult{}
	for _, mode := range []string{PartitionCount, PartitionDegree} {
		res, err := ClusterDistributed(g, params, DistOptions{
			Workers:   8,
			Partition: PartitionSpec{Mode: mode},
		})
		if err != nil {
			t.Fatal(err)
		}
		byMode[mode] = res
	}
	countRatio := degreeImbalance(g, byMode[PartitionCount].PartitionBounds)
	degreeRatio := degreeImbalance(g, byMode[PartitionDegree].PartitionBounds)
	t.Logf("degree-cost imbalance at 8 workers: count=%.3f degree=%.3f", countRatio, degreeRatio)
	if countRatio < 2 {
		t.Errorf("count split imbalance %.3f < 2: instance is not hub-heavy enough to demonstrate the bug", countRatio)
	}
	if degreeRatio > 1.15 {
		t.Errorf("degree split imbalance %.3f > 1.15: weighted partition failed to balance", degreeRatio)
	}
	// The split is load placement only: labels identical across modes.
	for v := range byMode[PartitionCount].Labels {
		if byMode[PartitionCount].Labels[v] != byMode[PartitionDegree].Labels[v] {
			t.Fatalf("labels diverge between count and degree at node %d", v)
		}
	}
	// The result carries the degree split's own cost stats for BENCH rows.
	res := byMode[PartitionDegree]
	if res.ShardCostMax <= 0 || res.ShardCostMean <= 0 {
		t.Errorf("degree run missing shard cost stats: max=%d mean=%v", res.ShardCostMax, res.ShardCostMean)
	}
}

// TestDistributedPartitionModesBitIdentical extends the worker-count
// transcript-equality suite across every partition mode and the ring
// transport: labels, traffic counters, and deterministic snapshots must all
// equal the workers=1 count-mode reference.
func TestDistributedPartitionModesBitIdentical(t *testing.T) {
	p, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(401))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 8, Seed: 11}
	type outcome struct {
		labels []int
		words  int64
		snaps  string
	}
	runOne := func(mode string, workers int, transport TransportSpec) outcome {
		o := obs.NewObserver(obs.Options{})
		res, err := ClusterDistributed(p.G, params, DistOptions{
			Workers:   workers,
			Transport: transport,
			Partition: PartitionSpec{Mode: mode},
			Obs:       o,
		})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{res.Labels, res.NetworkWords, obs.SnapshotsText(o.Snapshots())}
	}
	ref := runOne(PartitionCount, 1, TransportSpec{})
	for _, mode := range []string{PartitionCount, PartitionDegree, PartitionAdaptive} {
		for _, workers := range []int{1, 2, 8} {
			for _, transport := range []TransportSpec{{}, {Kind: "ring"}} {
				got := runOne(mode, workers, transport)
				if got.words != ref.words {
					t.Errorf("mode=%s workers=%d transport=%q: words %d != %d",
						mode, workers, transport.Kind, got.words, ref.words)
				}
				for v := range ref.labels {
					if got.labels[v] != ref.labels[v] {
						t.Fatalf("mode=%s workers=%d transport=%q: label of node %d diverges",
							mode, workers, transport.Kind, v)
					}
				}
				if got.snaps != ref.snaps {
					t.Errorf("mode=%s workers=%d transport=%q: deterministic snapshots diverge",
						mode, workers, transport.Kind)
				}
			}
		}
	}
}

// TestDistributedRepartitionUnderFaults composes live rebalancing with
// delayed delivery (multi-slot rings keep messages in flight across the
// re-split) and an aggressive per-round Repartitioner: the transcript must
// still be bit-identical to the fault-matched single-worker count run.
func TestDistributedRepartitionUnderFaults(t *testing.T) {
	p, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(401))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 10, Seed: 11}
	model := dist.LinkFaults{DropProb: 0.05, DelayProb: 0.3, MaxPhases: 2, Seed: 5}
	ref, err := ClusterDistributed(p.G, params, DistOptions{Workers: 1, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	n := p.G.N()
	for _, workers := range []int{2, 8} {
		// Rotate a deliberately skewed split every round: shard 0's share
		// grows with the round number, the rest split the remainder.
		res, err := ClusterDistributed(p.G, params, DistOptions{
			Workers: workers,
			Model:   model,
			Repartition: func(round, w int) []int {
				head := (round*13)%n + 1
				rest := sched.Partition(n-head, w-1)
				bounds := make([]int, w+1)
				for i, b := range rest {
					bounds[i+1] = head + b
				}
				return bounds
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.NetworkWords != ref.NetworkWords || res.DroppedMessages != ref.DroppedMessages {
			t.Errorf("workers=%d: traffic (%d words, %d dropped) != (%d, %d)",
				workers, res.NetworkWords, res.DroppedMessages, ref.NetworkWords, ref.DroppedMessages)
		}
		for v := range ref.Labels {
			if res.Labels[v] != ref.Labels[v] {
				t.Fatalf("workers=%d: label of node %d diverges under mid-run repartition", workers, v)
			}
		}
	}
}

// TestDistributedWorkersExceedNodes pins the empty-shard regression: more
// workers than nodes (the network clamps, the weighted split may still
// produce empty shards) must reproduce the sequential labels.
func TestDistributedWorkersExceedNodes(t *testing.T) {
	g := gen.Cycle(6)
	params := Params{Beta: 0.5, Rounds: 6, Seed: 3}
	ref, err := Cluster(g, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{PartitionCount, PartitionDegree, PartitionAdaptive} {
		res, err := ClusterDistributed(g, params, DistOptions{
			Workers:   32,
			Partition: PartitionSpec{Mode: mode},
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := range ref.Labels {
			if res.Labels[v] != ref.Labels[v] {
				t.Fatalf("mode=%s: label of node %d diverges with workers >> nodes", mode, v)
			}
		}
	}
}

// TestAsyncGossipPartitionModes: the async engine's partition seam shapes
// only the engine scan placement, so labels and traffic are identical for
// every mode and parallelism.
func TestAsyncGossipPartitionModes(t *testing.T) {
	p, err := gen.ClusteredRing(2, 40, 10, 1, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 10, Seed: 5}
	ref, err := ClusterAsyncGossip(p.G, params, AsyncOptions{Ticks: 600, ClockSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{PartitionDegree, PartitionAdaptive} {
		for _, parallel := range []int{0, 4} {
			res, err := ClusterAsyncGossip(p.G, params, AsyncOptions{
				Ticks:     600,
				ClockSeed: 7,
				Parallel:  parallel,
				Partition: PartitionSpec{Mode: mode},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.NetworkWords != ref.NetworkWords {
				t.Errorf("mode=%s parallel=%d: words %d != %d", mode, parallel, res.NetworkWords, ref.NetworkWords)
			}
			for v := range ref.Labels {
				if res.Labels[v] != ref.Labels[v] {
					t.Fatalf("mode=%s parallel=%d: label of node %d diverges", mode, parallel, v)
				}
			}
		}
	}
}

// TestPartitionRejectsBadMode: both engines validate the mode up front.
func TestPartitionRejectsBadMode(t *testing.T) {
	g := gen.Cycle(6)
	params := Params{Beta: 0.5, Rounds: 2}
	if _, err := ClusterDistributed(g, params, DistOptions{Partition: PartitionSpec{Mode: "bogus"}}); err == nil {
		t.Error("distributed run with bogus partition mode should fail")
	}
	if _, err := ClusterAsyncGossip(g, params, AsyncOptions{Ticks: 10, Partition: PartitionSpec{Mode: "bogus"}}); err == nil {
		t.Error("async run with bogus partition mode should fail")
	}
}

// TestPartitionBalanceGauges: the Env registry carries the per-shard cost
// gauges and imbalance ratio after a run (and they never appear in the
// deterministic registry, whose fingerprint the snapshots pin).
func TestPartitionBalanceGauges(t *testing.T) {
	g := paGraph(t, 400, 4)
	o := obs.NewObserver(obs.Options{})
	if _, err := ClusterDistributed(g, Params{Beta: 0.25, Rounds: 4, Seed: 7}, DistOptions{
		Workers:   4,
		Partition: PartitionSpec{Mode: PartitionDegree},
		Obs:       o,
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range o.Env.Snapshot(0).Gauges {
		if g.Name == obs.MetricPartImbalance {
			found = true
			if v := g.Cells[0]; v < 1 || v > 1.2 {
				t.Errorf("degree split imbalance gauge %v outside [1, 1.2]", v)
			}
		}
	}
	if !found {
		t.Error("partition_imbalance gauge missing from Env registry")
	}
	for _, g := range o.Reg.Snapshot(0).Gauges {
		if g.Name == obs.MetricPartImbalance || g.Name == obs.MetricPartCost {
			t.Error("partition gauges leaked into the deterministic registry")
		}
	}
}
