// Package core implements the paper's distributed graph-clustering
// algorithm: the Seeding, Averaging and Query procedures of §3.1, viewed as
// the multi-dimensional load-balancing process of §3.2.
//
// Two execution engines share the algorithm logic: the sequential Engine in
// this package simulates the synchronous rounds directly (fast, used for
// large experiments), and the message-passing engine in distributed.go runs
// one logical process per node on the dist runtime with real message
// accounting. Both consume per-node random streams, so for equal seeds they
// produce identical executions.
package core

import "sort"

// Entry is one tagged load coordinate: the prefix (seed ID) and the suffix
// (the load value this node holds for that seed's vector).
type Entry struct {
	ID  uint64
	Val float64
}

// State is a node's sparse multi-dimensional load, sorted by ID. An absent
// ID means load 0 for that coordinate. States are immutable once built;
// matched partners share the merged state.
type State []Entry

// Get returns the load for the given ID (0 if absent).
func (s State) Get(id uint64) float64 {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= id })
	if i < len(s) && s[i].ID == id {
		return s[i].Val
	}
	return 0
}

// Mass returns the total load held across all coordinates.
func (s State) Mass() float64 {
	var t float64
	for _, e := range s {
		t += e.Val
	}
	return t
}

// Words returns the message size of the state in words: one word for the ID
// and one for the value of each entry (the paper's accounting unit).
func (s State) Words() int { return 2 * len(s) }

// MergeStates applies the averaging rule of the paper to the states of two
// matched nodes and returns their common new state:
//
//   - IDs present in both states average their values;
//   - IDs present in only one state halve their value (the other node's
//     implicit value is 0).
//
// Both inputs must be sorted by ID; the output is sorted by ID.
func MergeStates(a, b State) State {
	return appendMerge(make(State, 0, len(a)+len(b)), a, b)
}

// appendMerge appends the merge of a and b onto out (MergeStates with a
// caller-supplied destination — the arena path's allocation-free variant).
// out's free capacity must not overlap a or b; appending onto the tail of an
// arena block that holds them as earlier sub-slices is fine.
func appendMerge(out State, a, b State) State {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].ID == b[j].ID:
			out = append(out, Entry{a[i].ID, (a[i].Val + b[j].Val) / 2})
			i++
			j++
		case a[i].ID < b[j].ID:
			out = append(out, Entry{a[i].ID, a[i].Val / 2})
			i++
		default:
			out = append(out, Entry{b[j].ID, b[j].Val / 2})
			j++
		}
	}
	for ; i < len(a); i++ {
		out = append(out, Entry{a[i].ID, a[i].Val / 2})
	}
	for ; j < len(b); j++ {
		out = append(out, Entry{b[j].ID, b[j].Val / 2})
	}
	return out
}

// AddStates sums two sparse states coordinate-wise (union of IDs) — the
// absorption rule of the asynchronous push-gossip mode, where mass arrives
// additively rather than by pairwise averaging. Both inputs must be sorted
// by ID; the output is sorted by ID.
func AddStates(a, b State) State {
	out := make(State, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].ID == b[j].ID:
			out = append(out, Entry{a[i].ID, a[i].Val + b[j].Val})
			i++
			j++
		case a[i].ID < b[j].ID:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Scale returns a new state with every value multiplied by c.
func (s State) Scale(c float64) State {
	out := make(State, len(s))
	for i, e := range s {
		out[i] = Entry{e.ID, e.Val * c}
	}
	return out
}

// Halve returns a new state with every value halved — the half kept (and
// the half pushed) by an asynchronous gossip firing. Halving is exact in
// binary floating point, so push gossip conserves mass to the bit.
func (s State) Halve() State { return s.Scale(0.5) }
