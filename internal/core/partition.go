package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Partition modes accepted by the `-partition` flag and PartitionSpec.Mode.
const (
	// PartitionCount splits the node range by count — the classic balanced
	// contiguous split (sched.Partition). On hub-heavy graphs one shard can
	// own most of the edge work.
	PartitionCount = "count"
	// PartitionDegree splits by the degree+1 cost function
	// (graph.DegreeCosts), balancing per-shard edge work up front.
	PartitionDegree = "degree"
	// PartitionAdaptive starts from the degree split and re-splits between
	// rounds along the emerging cluster labels (label-volume atoms), so
	// shard boundaries migrate toward cluster boundaries as the clustering
	// converges.
	PartitionAdaptive = "adaptive"
)

// PartitionSpec selects how the runtime splits the contiguous node range
// across worker shards, and whether it re-splits as the run evolves. The
// split never changes the transcript — mailboxes order by sender, counters
// sum over shards, randomness lives in per-node streams — so the spec is an
// environment choice, like the transport: record manifests file it under
// Env, and the transcript/fingerprint suites pin bit-equality across modes
// and worker counts.
type PartitionSpec struct {
	// Mode is "", PartitionCount, PartitionDegree, or PartitionAdaptive.
	// Empty means count.
	Mode string
	// Cost, when non-nil, overrides the mode's cost function (unit for
	// count, degree+1 otherwise). It must be a pure function of the graph.
	Cost graph.CostFunc
	// Every, for the adaptive mode, re-splits after every Every-th round;
	// <= 0 means every round.
	Every int
}

// ParsePartitionSpec parses the shared `-partition` flag syntax.
func ParsePartitionSpec(s string) (PartitionSpec, error) {
	switch s {
	case "", PartitionCount, PartitionDegree, PartitionAdaptive:
		return PartitionSpec{Mode: s}, nil
	}
	return PartitionSpec{}, fmt.Errorf("core: bad partition mode %q (want count, degree, or adaptive)", s)
}

// String returns the canonical flag value.
func (spec PartitionSpec) String() string {
	if spec.Mode == "" {
		return PartitionCount
	}
	return spec.Mode
}

// costs resolves the spec's per-node cost vector.
func (spec PartitionSpec) costs(g *graph.Graph) []int64 {
	if spec.Cost != nil {
		return spec.Cost(g)
	}
	switch spec.Mode {
	case "", PartitionCount:
		return graph.UnitCosts(g)
	default:
		return graph.DegreeCosts(g)
	}
}

// every normalises the adaptive re-split period.
func (spec PartitionSpec) every() int {
	if spec.Every <= 0 {
		return 1
	}
	return spec.Every
}

// Repartitioner decides new contiguous ownership bounds between rounds. The
// runtime calls it on the driving goroutine after each round's commit
// barrier, passing the round just completed and the worker count; it
// returns bounds valid under sched.CheckBounds for (n, workers), or nil to
// keep the current split. Implementations MUST derive the decision only
// from transcript state — engine states, labels, the graph — never from
// worker-local or wall-clock observations, so every worker count computes
// the same bounds and transcripts stay bit-identical.
type Repartitioner func(round, workers int) []int

// shardCosts sums the cost owned by each shard under the given bounds.
func shardCosts(costs []int64, bounds []int) []int64 {
	out := make([]int64, len(bounds)-1)
	for s := 0; s+1 < len(bounds); s++ {
		var c int64
		for v := bounds[s]; v < bounds[s+1]; v++ {
			c += costs[v]
		}
		out[s] = c
	}
	return out
}

// costStats reduces per-shard costs to the max and mean recorded in
// DistResult (and from there in BENCH_dist.json rows).
func costStats(sc []int64) (max int64, mean float64) {
	var total int64
	for _, c := range sc {
		total += c
		if c > max {
			max = c
		}
	}
	if len(sc) > 0 {
		mean = float64(total) / float64(len(sc))
	}
	return max, mean
}

// labelBounds re-splits [0, n) from the emerging cluster labels: maximal
// runs of equal raw label collapse into atoms (an atom is capped at the
// ideal per-shard cost, so one giant converged cluster still splits), and
// the cost-weighted partition runs over atoms instead of nodes. Shard
// boundaries then coincide with label-run boundaries wherever balance
// permits — cluster-local traffic stays shard-local — at the price of a
// bounded balance give-back (one atom, i.e. at most one ideal share, above
// the weighted split's guarantee). Inputs are transcript state only, so
// every worker count derives identical bounds.
func labelBounds(raw []uint64, costs []int64, workers int) []int {
	n := len(raw)
	var total int64
	for _, c := range costs {
		total += c
	}
	if n == 0 || total == 0 || workers == 1 {
		return sched.Partition(n, workers)
	}
	ideal := (total + int64(workers) - 1) / int64(workers)
	var atomEnd []int
	var atomCost []int64
	v := 0
	for v < n {
		label := raw[v]
		var c int64
		u := v
		for u < n && raw[u] == label && c < ideal {
			c += costs[u]
			u++
		}
		atomEnd = append(atomEnd, u)
		atomCost = append(atomCost, c)
		v = u
	}
	ab := sched.PartitionWeighted(atomCost, workers)
	bounds := make([]int, workers+1)
	bounds[workers] = n
	for s := 1; s < workers; s++ {
		if ab[s] > 0 {
			bounds[s] = atomEnd[ab[s]-1]
		}
	}
	return bounds
}

// publishSplit pushes one (re)partition into the Env-registry balance
// gauges. Worker shards vary with the worker count, so the gauges live next
// to the wire metrics and never touch the deterministic snapshot
// fingerprint.
func publishSplit(o *obs.Observer, costs []int64, bounds []int) {
	if o == nil || o.Env == nil {
		return
	}
	pm := obs.NewPartitionMetrics(o.Env, len(bounds)-1)
	pm.SetSplit(shardCosts(costs, bounds))
}
