package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Wire payload names under which the engines' message types are registered.
// Any binary that imports core (coordinator or spawned worker) can serve
// both payloads; external daemons (`lbcluster serve`) link core too.
const (
	// ProtoPayload is the matching protocol's propose/accept/exchange
	// message (ClusterDistributed).
	ProtoPayload = "core.proto"
	// GossipPayload is the asynchronous push-sum message
	// (ClusterAsyncGossip).
	GossipPayload = "core.gossip"
)

func init() {
	wire.Register(ProtoPayload, protoCodec{})
	wire.Register(GossipPayload, gossipCodec{})
}

// appendState encodes a sparse state: uvarint entry count, then 16 fixed
// bytes per entry (little-endian ID, IEEE-754 bits of the value). Fixed
// width keeps the float round-trip bit-exact — the transcript-equality
// contract — and spares the hot path any reflection or text formatting.
func appendState(buf []byte, s State) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	for _, e := range s {
		buf = binary.LittleEndian.AppendUint64(buf, e.ID)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Val))
	}
	return buf
}

// decodeState decodes appendState's encoding, returning the state (nil for
// an empty one, matching the senders' representation) and bytes consumed.
func decodeState(data []byte) (State, int, error) {
	cnt, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, 0, fmt.Errorf("core: truncated state count")
	}
	if cnt > uint64(len(data)-k)/16 {
		return nil, 0, fmt.Errorf("core: state count %d exceeds payload", cnt)
	}
	if cnt == 0 {
		return nil, k, nil
	}
	s := make(State, cnt)
	for i := range s {
		s[i].ID = binary.LittleEndian.Uint64(data[k:])
		s[i].Val = math.Float64frombits(binary.LittleEndian.Uint64(data[k+8:]))
		k += 16
	}
	return s, k, nil
}

// protoCodec serialises the matching protocol message: kind byte, round
// uvarint, state.
type protoCodec struct{}

func (protoCodec) Append(buf []byte, m protoMsg) []byte {
	buf = append(buf, byte(m.kind))
	buf = binary.AppendUvarint(buf, uint64(uint32(m.round)))
	return appendState(buf, m.state)
}

func (protoCodec) Decode(data []byte) (protoMsg, int, error) {
	var m protoMsg
	if len(data) < 1 {
		return m, 0, fmt.Errorf("core: empty proto message")
	}
	m.kind = msgKind(data[0])
	round, k := binary.Uvarint(data[1:])
	if k <= 0 {
		return m, 0, fmt.Errorf("core: truncated proto round")
	}
	m.round = int32(uint32(round))
	st, sk, err := decodeState(data[1+k:])
	if err != nil {
		return m, 0, err
	}
	m.state = st
	return m, 1 + k + sk, nil
}

// gossipDenseFlag marks a gossip message whose payload is in the dense
// cols/vals shape; it rides the kind byte's high bit (kinds stay tiny).
const gossipDenseFlag = 0x80

// gossipCodec serialises the push-sum message: kind byte (high bit = dense
// payload flag), seq uvarint (reliable-mode sequence number, 0 in plain
// mode), weight bits, then the payload. A sparse payload is a state
// (appendState); a dense payload is a uvarint coordinate count followed by
// 12 fixed bytes per coordinate (little-endian uint32 column, IEEE-754 bits
// of the value). The flag is set only when coordinates are present — an
// empty payload always encodes in the sparse count-0 form and a flagged
// empty payload is rejected on decode — so decode∘encode is the identity on
// every encodable message and encode∘decode is the identity on every
// decodable byte string (the relay fixed-point the wire daemons rely on).
type gossipCodec struct{}

func (gossipCodec) Append(buf []byte, m gossipMsg) []byte {
	kind := byte(m.kind)
	if len(m.cols) > 0 {
		kind |= gossipDenseFlag
	}
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(m.seq))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.weight))
	if len(m.cols) > 0 {
		buf = binary.AppendUvarint(buf, uint64(len(m.cols)))
		for i, c := range m.cols {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.vals[i]))
		}
		return buf
	}
	return appendState(buf, m.state)
}

func (gossipCodec) Decode(data []byte) (gossipMsg, int, error) {
	var m gossipMsg
	if len(data) < 1 {
		return m, 0, fmt.Errorf("core: empty gossip message")
	}
	dense := data[0]&gossipDenseFlag != 0
	m.kind = gossipKind(data[0] &^ gossipDenseFlag)
	seq, k := binary.Uvarint(data[1:])
	if k <= 0 || seq > math.MaxUint32 {
		return m, 0, fmt.Errorf("core: truncated gossip seq")
	}
	m.seq = uint32(seq)
	off := 1 + k
	if len(data) < off+8 {
		return m, 0, fmt.Errorf("core: truncated gossip weight")
	}
	m.weight = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	if dense {
		cnt, dk := binary.Uvarint(data[off:])
		if dk <= 0 {
			return m, 0, fmt.Errorf("core: truncated dense count")
		}
		if cnt == 0 {
			return m, 0, fmt.Errorf("core: dense flag without coordinates")
		}
		off += dk
		if cnt > uint64(len(data)-off)/12 {
			return m, 0, fmt.Errorf("core: dense count %d exceeds payload", cnt)
		}
		m.cols = make([]int32, cnt)
		m.vals = make([]float64, cnt)
		for i := range m.cols {
			m.cols[i] = int32(binary.LittleEndian.Uint32(data[off:]))
			m.vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+4:]))
			off += 12
		}
		return m, off, nil
	}
	st, sk, err := decodeState(data[off:])
	if err != nil {
		return m, 0, err
	}
	m.state = st
	return m, off + sk, nil
}

// TransportSpec selects and configures the delivery transport of a
// distributed run. The zero value is the default zero-copy in-process
// transport; "ring" is the loopback serialising transport; "socket" runs
// every barrier's traffic through real worker OS processes over
// unix-domain sockets (or TCP, when dialing pre-started daemons).
type TransportSpec struct {
	// Kind is "", "inprocess", "ring", or "socket".
	Kind string
	// Machines is the number of worker processes a socket run spawns when
	// Addrs is empty (default 2, clamped to the worker-shard count). The
	// coordinator binary must call wire.ServeIfWorker at the top of main.
	Machines int
	// Addrs, when non-empty, are pre-started `lbcluster serve` daemon
	// addresses ("unix:/path" or "tcp:host:port"), one per machine shard;
	// it overrides Machines and nothing is spawned.
	Addrs []string
	// RingCapacity is the per-shard ring size of the loopback transport
	// (default 4096).
	RingCapacity int
}

// ParseTransportSpec parses the CLI syntax shared by the repo's commands:
// "inprocess" (or ""), "ring[:capacity]", or "socket[:machines]".
func ParseTransportSpec(s string) (TransportSpec, error) {
	kind, arg, hasArg := strings.Cut(s, ":")
	spec := TransportSpec{Kind: kind}
	n := 0
	if hasArg {
		var err error
		if n, err = strconv.Atoi(arg); err != nil || n < 1 {
			return TransportSpec{}, fmt.Errorf("core: bad transport argument %q", s)
		}
	}
	switch kind {
	case "", "inprocess":
		if hasArg {
			return TransportSpec{}, fmt.Errorf("core: transport %q takes no argument", kind)
		}
	case "ring":
		spec.RingCapacity = n
	case "socket":
		spec.Machines = n
	default:
		return TransportSpec{}, fmt.Errorf("core: unknown transport %q (inprocess, ring, socket)", kind)
	}
	return spec, nil
}

// openTransport realises a TransportSpec for a network with the given
// effective worker-shard count. It returns a nil transport for the
// in-process default (the network's own zero-copy path) and a cleanup that
// tears down whatever was opened or spawned. A non-nil observer attaches
// frame/byte counters to a socket transport's environment registry (the
// other transports have no wire traffic to count). bounds, when non-nil,
// is the network's shards+1 node split at dial time; a socket transport
// announces each shard's node range in its handshake (diagnostic — the
// daemon relay is routing-agnostic, so later repartitions need no
// re-handshake).
func openTransport[T any](spec TransportSpec, shards int, bounds []int, payload string, c wire.Codec[T], o *obs.Observer) (dist.Transport[T], func(), error) {
	noop := func() {}
	switch spec.Kind {
	case "", "inprocess":
		return nil, noop, nil
	case "ring":
		capacity := spec.RingCapacity
		if capacity <= 0 {
			capacity = 4096
		}
		return dist.NewRing[T](shards, capacity), noop, nil
	case "socket":
		addrs := spec.Addrs
		var cluster *wire.Cluster
		if len(addrs) == 0 {
			machines := spec.Machines
			if machines <= 0 {
				machines = 2
			}
			if machines > shards {
				machines = shards
			}
			var err error
			if cluster, err = wire.Spawn(machines); err != nil {
				return nil, noop, err
			}
			addrs = cluster.Addrs()
		}
		sock, err := wire.DialSocketBounds(c, payload, addrs, shards, bounds)
		if err != nil {
			if cluster != nil {
				cluster.Close()
			}
			return nil, noop, err
		}
		if o != nil && o.Env != nil {
			sock.SetMetrics(obs.NewWireMetrics(o.Env, shards))
		}
		return sock, func() {
			sock.Close()
			if cluster != nil {
				cluster.Close()
			}
		}, nil
	default:
		return nil, noop, fmt.Errorf("core: unknown transport kind %q", spec.Kind)
	}
}
