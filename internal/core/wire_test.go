package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

// randState draws a random sorted sparse state, sometimes empty, with
// adversarial float values (zero, subnormal, huge, negative) mixed in.
func randState(r *rng.RNG) State {
	n := r.Intn(9)
	if n == 0 {
		return nil
	}
	s := make(State, 0, n)
	id := uint64(0)
	for i := 0; i < n; i++ {
		id += 1 + uint64(r.Intn(1<<20))
		var v float64
		switch r.Intn(5) {
		case 0:
			v = 0
		case 1:
			v = -r.Float64()
		case 2:
			v = r.Float64() * 1e300
		case 3:
			v = math.Float64frombits(uint64(r.Intn(1 << 10))) // subnormals
		default:
			v = r.Float64()
		}
		s = append(s, Entry{ID: id, Val: v})
	}
	return s
}

func statesEqual(a, b State) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Bit comparison: the wire must preserve -0, subnormals, everything.
		if a[i].ID != b[i].ID || math.Float64bits(a[i].Val) != math.Float64bits(b[i].Val) {
			return false
		}
	}
	return true
}

func TestProtoCodecRoundTrip(t *testing.T) {
	r := rng.New(41)
	c := protoCodec{}
	for i := 0; i < 2000; i++ {
		m := protoMsg{
			kind:  msgKind(r.Intn(3)),
			round: int32(r.Intn(1 << 30)),
			state: randState(r),
		}
		enc := c.Append(nil, m)
		got, k, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if k != len(enc) {
			t.Fatalf("consumed %d of %d bytes", k, len(enc))
		}
		if got.kind != m.kind || got.round != m.round || !statesEqual(got.state, m.state) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, m)
		}
	}
}

func TestGossipCodecRoundTrip(t *testing.T) {
	r := rng.New(43)
	c := gossipCodec{}
	for i := 0; i < 2000; i++ {
		m := gossipMsg{state: randState(r), weight: r.Float64() * 2}
		enc := c.Append(nil, m)
		got, k, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if k != len(enc) {
			t.Fatalf("consumed %d of %d bytes", k, len(enc))
		}
		if math.Float64bits(got.weight) != math.Float64bits(m.weight) || !statesEqual(got.state, m.state) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, m)
		}
	}
}

// TestCodecFrameBoundarySafety pins the self-delimiting property the wire
// framing relies on: decoding a concatenation of encodings consumes exactly
// the first one, so messages never bleed into each other inside a frame.
func TestCodecFrameBoundarySafety(t *testing.T) {
	r := rng.New(47)
	c := protoCodec{}
	for i := 0; i < 500; i++ {
		m1 := protoMsg{kind: msgAccept, round: int32(r.Intn(100)), state: randState(r)}
		m2 := protoMsg{kind: msgState, round: int32(r.Intn(100)), state: randState(r)}
		e1 := c.Append(nil, m1)
		joined := c.Append(bytes.Clone(e1), m2)
		got, k, err := c.Decode(joined)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if k != len(e1) {
			t.Fatalf("consumed %d bytes, first encoding is %d", k, len(e1))
		}
		if got.round != m1.round || !statesEqual(got.state, m1.state) {
			t.Fatal("first value corrupted by concatenation")
		}
		rest, k2, err := c.Decode(joined[k:])
		if err != nil || k2 != len(joined)-k {
			t.Fatalf("second decode: %v (consumed %d of %d)", err, k2, len(joined)-k)
		}
		if rest.round != m2.round || !statesEqual(rest.state, m2.state) {
			t.Fatal("second value corrupted by concatenation")
		}
	}
}

// TestCodecRejectsCorruptInput: truncations and inflated counts must come
// back as errors, not panics or giant allocations.
func TestCodecRejectsCorruptInput(t *testing.T) {
	c := protoCodec{}
	m := protoMsg{kind: msgAccept, round: 7, state: State{{ID: 3, Val: 1.5}, {ID: 9, Val: -2}}}
	enc := c.Append(nil, m)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := c.Decode(enc[:cut]); err == nil && cut < len(enc) {
			// Some prefixes are valid encodings of smaller messages (e.g. a
			// zero-entry state); they must at least not over-consume.
			if _, k, _ := c.Decode(enc[:cut]); k > cut {
				t.Fatalf("cut %d: consumed %d > input", cut, k)
			}
		}
	}
	// A state count far beyond the buffer must be rejected before allocating.
	bad := []byte{byte(msgAccept), 0, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, _, err := c.Decode(bad); err == nil {
		t.Fatal("inflated state count accepted")
	}
	if _, _, err := (gossipCodec{}).Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated gossip weight accepted")
	}
}
