package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

// randState draws a random sorted sparse state, sometimes empty, with
// adversarial float values (zero, subnormal, huge, negative) mixed in.
func randState(r *rng.RNG) State {
	n := r.Intn(9)
	if n == 0 {
		return nil
	}
	s := make(State, 0, n)
	id := uint64(0)
	for i := 0; i < n; i++ {
		id += 1 + uint64(r.Intn(1<<20))
		var v float64
		switch r.Intn(5) {
		case 0:
			v = 0
		case 1:
			v = -r.Float64()
		case 2:
			v = r.Float64() * 1e300
		case 3:
			v = math.Float64frombits(uint64(r.Intn(1 << 10))) // subnormals
		default:
			v = r.Float64()
		}
		s = append(s, Entry{ID: id, Val: v})
	}
	return s
}

func statesEqual(a, b State) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Bit comparison: the wire must preserve -0, subnormals, everything.
		if a[i].ID != b[i].ID || math.Float64bits(a[i].Val) != math.Float64bits(b[i].Val) {
			return false
		}
	}
	return true
}

func TestProtoCodecRoundTrip(t *testing.T) {
	r := rng.New(41)
	c := protoCodec{}
	for i := 0; i < 2000; i++ {
		m := protoMsg{
			kind:  msgKind(r.Intn(3)),
			round: int32(r.Intn(1 << 30)),
			state: randState(r),
		}
		enc := c.Append(nil, m)
		got, k, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if k != len(enc) {
			t.Fatalf("consumed %d of %d bytes", k, len(enc))
		}
		if got.kind != m.kind || got.round != m.round || !statesEqual(got.state, m.state) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, m)
		}
	}
}

func TestGossipCodecRoundTrip(t *testing.T) {
	r := rng.New(43)
	c := gossipCodec{}
	for i := 0; i < 2000; i++ {
		m := gossipMsg{state: randState(r), weight: r.Float64() * 2}
		enc := c.Append(nil, m)
		got, k, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if k != len(enc) {
			t.Fatalf("consumed %d of %d bytes", k, len(enc))
		}
		if math.Float64bits(got.weight) != math.Float64bits(m.weight) || !statesEqual(got.state, m.state) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, m)
		}
	}
}

// randDense draws a dense cols/vals payload with strictly increasing columns
// and the same adversarial value mix as randState. Never empty: senders only
// use the dense shape when at least one coordinate survived the halving.
func randDense(r *rng.RNG) ([]int32, []float64) {
	n := 1 + r.Intn(8)
	cols := make([]int32, 0, n)
	vals := make([]float64, 0, n)
	col := int32(-1)
	for i := 0; i < n; i++ {
		col += 1 + int32(r.Intn(512))
		var v float64
		switch r.Intn(5) {
		case 0:
			v = -r.Float64()
		case 1:
			v = r.Float64() * 1e300
		case 2:
			v = math.Float64frombits(uint64(r.Intn(1 << 10))) // subnormals
		case 3:
			v = math.Float64frombits(1) // smallest subnormal
		default:
			v = r.Float64()
		}
		cols = append(cols, col)
		vals = append(vals, v)
	}
	return cols, vals
}

// TestGossipCodecDenseRoundTrip: the dense cols/vals payload shape must round
// trip bit for bit, self-delimit inside a frame, and never be confused with
// the sparse shape (the flag bit discriminates).
func TestGossipCodecDenseRoundTrip(t *testing.T) {
	r := rng.New(53)
	c := gossipCodec{}
	for i := 0; i < 2000; i++ {
		cols, vals := randDense(r)
		m := gossipMsg{kind: gossipKind(r.Intn(2)), seq: uint32(r.Intn(1 << 16)), cols: cols, vals: vals, weight: r.Float64() * 2}
		enc := c.Append(nil, m)
		if enc[0]&gossipDenseFlag == 0 {
			t.Fatal("dense payload encoded without the flag bit")
		}
		got, k, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if k != len(enc) {
			t.Fatalf("consumed %d of %d bytes", k, len(enc))
		}
		if got.kind != m.kind || got.seq != m.seq || len(got.state) != 0 ||
			math.Float64bits(got.weight) != math.Float64bits(m.weight) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, m)
		}
		if len(got.cols) != len(cols) {
			t.Fatalf("cols length %d != %d", len(got.cols), len(cols))
		}
		for j := range cols {
			if got.cols[j] != cols[j] || math.Float64bits(got.vals[j]) != math.Float64bits(vals[j]) {
				t.Fatalf("coordinate %d mismatch: (%d,%x) != (%d,%x)", j,
					got.cols[j], math.Float64bits(got.vals[j]), cols[j], math.Float64bits(vals[j]))
			}
		}
		// Self-delimiting inside a frame: a sparse message appended after the
		// dense one must decode intact from the remainder.
		m2 := gossipMsg{state: randState(r), weight: r.Float64()}
		joined := c.Append(bytes.Clone(enc), m2)
		first, k1, err := c.Decode(joined)
		if err != nil || k1 != len(enc) || len(first.cols) != len(cols) {
			t.Fatalf("frame boundary: err=%v consumed %d of %d", err, k1, len(enc))
		}
		second, k2, err := c.Decode(joined[k1:])
		if err != nil || k2 != len(joined)-k1 || !statesEqual(second.state, m2.state) {
			t.Fatalf("second message corrupted after dense frame: %v", err)
		}
	}
}

// TestGossipCodecRejectsCorruptDense: truncated dense payloads, inflated
// counts and the unencodable flagged-empty shape all error out. Rejecting the
// flagged-empty shape is what keeps decode∘encode a fixed point for the relay
// (an empty payload always re-encodes in sparse count-0 form).
func TestGossipCodecRejectsCorruptDense(t *testing.T) {
	c := gossipCodec{}
	m := gossipMsg{kind: gossipPush, seq: 3, cols: []int32{1, 5}, vals: []float64{0.25, 0.5}, weight: 0.5}
	enc := c.Append(nil, m)
	for cut := 0; cut < len(enc); cut++ {
		if _, k, _ := c.Decode(enc[:cut]); k > cut {
			t.Fatalf("cut %d: consumed %d > input", cut, k)
		}
	}
	// kind|flag, seq=0, weight, then an inflated coordinate count.
	bad := append([]byte{byte(gossipPush) | gossipDenseFlag, 0}, make([]byte, 8)...)
	bad = append(bad, 0xff, 0xff, 0xff, 0xff, 0x0f)
	if _, _, err := c.Decode(bad); err == nil {
		t.Fatal("inflated dense count accepted")
	}
	// Same header with count 0: dense flag without coordinates.
	flaggedEmpty := append([]byte{byte(gossipPush) | gossipDenseFlag, 0}, make([]byte, 8)...)
	flaggedEmpty = append(flaggedEmpty, 0)
	if _, _, err := c.Decode(flaggedEmpty); err == nil {
		t.Fatal("dense flag with zero coordinates accepted")
	}
}

// TestCodecFrameBoundarySafety pins the self-delimiting property the wire
// framing relies on: decoding a concatenation of encodings consumes exactly
// the first one, so messages never bleed into each other inside a frame.
func TestCodecFrameBoundarySafety(t *testing.T) {
	r := rng.New(47)
	c := protoCodec{}
	for i := 0; i < 500; i++ {
		m1 := protoMsg{kind: msgAccept, round: int32(r.Intn(100)), state: randState(r)}
		m2 := protoMsg{kind: msgState, round: int32(r.Intn(100)), state: randState(r)}
		e1 := c.Append(nil, m1)
		joined := c.Append(bytes.Clone(e1), m2)
		got, k, err := c.Decode(joined)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if k != len(e1) {
			t.Fatalf("consumed %d bytes, first encoding is %d", k, len(e1))
		}
		if got.round != m1.round || !statesEqual(got.state, m1.state) {
			t.Fatal("first value corrupted by concatenation")
		}
		rest, k2, err := c.Decode(joined[k:])
		if err != nil || k2 != len(joined)-k {
			t.Fatalf("second decode: %v (consumed %d of %d)", err, k2, len(joined)-k)
		}
		if rest.round != m2.round || !statesEqual(rest.state, m2.state) {
			t.Fatal("second value corrupted by concatenation")
		}
	}
}

// TestCodecRejectsCorruptInput: truncations and inflated counts must come
// back as errors, not panics or giant allocations.
func TestCodecRejectsCorruptInput(t *testing.T) {
	c := protoCodec{}
	m := protoMsg{kind: msgAccept, round: 7, state: State{{ID: 3, Val: 1.5}, {ID: 9, Val: -2}}}
	enc := c.Append(nil, m)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := c.Decode(enc[:cut]); err == nil && cut < len(enc) {
			// Some prefixes are valid encodings of smaller messages (e.g. a
			// zero-entry state); they must at least not over-consume.
			if _, k, _ := c.Decode(enc[:cut]); k > cut {
				t.Fatalf("cut %d: consumed %d > input", cut, k)
			}
		}
	}
	// A state count far beyond the buffer must be rejected before allocating.
	bad := []byte{byte(msgAccept), 0, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, _, err := c.Decode(bad); err == nil {
		t.Fatal("inflated state count accepted")
	}
	if _, _, err := (gossipCodec{}).Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated gossip weight accepted")
	}
}
