package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// crashSet marks every ~10th node crashed from a dedicated stream.
func crashSet(n int) []bool {
	crashed := make([]bool, n)
	r := rng.New(71)
	for v := range crashed {
		crashed[v] = r.Bernoulli(0.1)
	}
	return crashed
}

// TestReliableGossipConservesMassExactly is the tentpole property test:
// reliable async gossip must conserve the seed mass EXACTLY — bit-equal,
// float tolerance zero — for every (DropProb, MailboxCap, Crash)
// combination, on both the clustered-ring and SBM workloads. Dropped
// pushes are retransmitted until acked, rejected pushes likewise, duplicate
// deliveries collapse at the receiver, and mass that never got through is
// reclaimed by the sender at quiesce; halving and the doubling reclaim are
// exact in binary floating point, so nothing is left to rounding.
func TestReliableGossipConservesMassExactly(t *testing.T) {
	ring, err := gen.ClusteredRing(2, 60, 16, 1, rng.New(101))
	if err != nil {
		t.Fatal(err)
	}
	sbm, err := gen.SBMBalanced(2, 50, 12, 2, rng.New(103))
	if err != nil {
		t.Fatal(err)
	}
	sawDrop, sawReject := false, false
	for _, w := range []struct {
		name string
		g    *gen.Planted
	}{{"ring", ring}, {"sbm", sbm}} {
		for _, drop := range []float64{0, 0.05, 0.2} {
			for _, cap := range []int{0, 2, 8} {
				for _, crash := range []bool{false, true} {
					var model dist.DeliveryModel
					if drop > 0 {
						model = dist.LinkFaults{DropProb: drop, Seed: 31}
					}
					var crashed []bool
					if crash {
						crashed = crashSet(w.g.G.N())
					}
					res, err := ClusterAsyncGossip(w.g.G, Params{Beta: 0.5, Rounds: 40, Seed: 3}, AsyncOptions{
						ClockSeed:  9,
						Model:      model,
						MailboxCap: cap,
						Crashed:    crashed,
						Reliable:   true,
					})
					if err != nil {
						t.Fatal(err)
					}
					id := fmt.Sprintf("%s drop=%v cap=%d crash=%v", w.name, drop, cap, crash)
					if want := float64(len(res.Seeds)); res.TotalMass != want {
						t.Errorf("%s: TotalMass %.17g != seed mass %v (deficit %g)",
							id, res.TotalMass, want, want-res.TotalMass)
					}
					sawDrop = sawDrop || res.DroppedMessages > 0
					sawReject = sawReject || res.RejectedMessages > 0
				}
			}
		}
	}
	if !sawDrop || !sawReject {
		t.Errorf("sweep never engaged the failure machinery (drops seen: %v, rejections seen: %v)",
			sawDrop, sawReject)
	}
}

// TestPlainGossipLosesMassUnderPressure pins the contrast the reliable
// layer exists for: plain push-sum under drops or bounded mailboxes leaves
// a mass deficit proportional to what the substrate destroyed, which is
// the quantity the F10 ablation sweeps.
func TestPlainGossipLosesMassUnderPressure(t *testing.T) {
	p, err := gen.ClusteredRing(2, 60, 16, 1, rng.New(101))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		model dist.DeliveryModel
		cap   int
	}{
		{"drops", dist.LinkFaults{DropProb: 0.2, Seed: 31}, 0},
		{"bounded mailbox", nil, 1},
	} {
		res, err := ClusterAsyncGossip(p.G, Params{Beta: 0.5, Rounds: 40, Seed: 3}, AsyncOptions{
			ClockSeed:  9,
			Model:      tc.model,
			MailboxCap: tc.cap,
		})
		if err != nil {
			t.Fatal(err)
		}
		if lost := res.DroppedMessages + res.RejectedMessages; lost == 0 {
			t.Fatalf("%s: substrate destroyed nothing, test is vacuous", tc.name)
		}
		if res.TotalMass >= float64(len(res.Seeds)) {
			t.Errorf("%s: plain push-sum shows no mass deficit (mass %v, seeds %d)",
				tc.name, res.TotalMass, len(res.Seeds))
		}
	}
}

// TestReliableGossipParallelMatchesSerial extends the batch-scheduler
// equality pin to the reliable mode with a bounded mailbox: acks,
// retransmissions, rejection verdicts, and the quiesce reclaim must all
// replay bit-identically under speculative parallel execution, across
// GOMAXPROCS settings.
func TestReliableGossipParallelMatchesSerial(t *testing.T) {
	p, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(131))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 30, Seed: 19}
	base := AsyncOptions{
		ClockSeed:  7,
		Model:      dist.LinkFaults{DropProb: 0.1, DelayProb: 0.2, MaxPhases: 2, Seed: 5},
		MailboxCap: 3,
		Reliable:   true,
	}
	serial, err := ClusterAsyncGossip(p.G, params, base)
	if err != nil {
		t.Fatal(err)
	}
	if serial.RejectedMessages == 0 || serial.DroppedMessages == 0 {
		t.Fatalf("reference run engaged no backpressure (rejected=%d dropped=%d)",
			serial.RejectedMessages, serial.DroppedMessages)
	}
	if want := float64(len(serial.Seeds)); serial.TotalMass != want {
		t.Fatalf("reference run lost mass: %v != %v", serial.TotalMass, want)
	}
	want := fingerprint(serial)
	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
		for _, workers := range []int{2, 4} {
			opt := base
			opt.Parallel = workers
			par, err := ClusterAsyncGossip(p.G, params, opt)
			if err != nil {
				t.Fatal(err)
			}
			id := fmt.Sprintf("procs=%d workers=%d", procs, workers)
			if got := fingerprint(par); got != want {
				t.Errorf("%s: fingerprint %+v != serial %+v", id, got, want)
			}
			if par.RejectedMessages != serial.RejectedMessages {
				t.Errorf("%s: rejected %d != serial %d", id, par.RejectedMessages, serial.RejectedMessages)
			}
			for v := range serial.Labels {
				if par.Labels[v] != serial.Labels[v] || par.RawLabels[v] != serial.RawLabels[v] {
					t.Fatalf("%s: node %d labelled (%d,%x), want (%d,%x)", id, v,
						par.Labels[v], par.RawLabels[v], serial.Labels[v], serial.RawLabels[v])
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestReliableGossipAccuracySurvivesLoss is the F10 claim at test scale:
// at a 20% push loss rate with a moderately bounded mailbox, the reliable
// variant clusters about as well as the fault-free run, while plain
// push-sum's labelling is measurably degraded relative to it. (The cap must
// leave headroom for the retransmission traffic — a cap far below the
// degree pushes ANY retransmitting protocol into congestion collapse,
// which the mass-conservation tests above cover; this test pins the
// accuracy story at the ablation's operating point.)
func TestReliableGossipAccuracySurvivesLoss(t *testing.T) {
	p, err := gen.ClusteredRing(2, 100, 40, 1, rng.New(107))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 60, Seed: 11}
	run := func(reliable bool) (float64, *DistResult) {
		res, err := ClusterAsyncGossip(p.G, params, AsyncOptions{
			ClockSeed:  13,
			Model:      dist.LinkFaults{DropProb: 0.2, Seed: 41},
			MailboxCap: 12,
			Reliable:   reliable,
		})
		if err != nil {
			t.Fatal(err)
		}
		mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
		if err != nil {
			t.Fatal(err)
		}
		return mis, res
	}
	misPlain, _ := run(false)
	misReliable, rel := run(true)
	if rel.RejectedMessages == 0 || rel.DroppedMessages == 0 {
		t.Fatalf("reliable run engaged no pressure (rejected=%d dropped=%d)",
			rel.RejectedMessages, rel.DroppedMessages)
	}
	if misReliable > 0.12 {
		t.Errorf("reliable gossip misclassified %.2f%% under 20%% loss", 100*misReliable)
	}
	if misPlain <= misReliable {
		t.Errorf("plain push-sum (%.2f%%) not worse than reliable (%.2f%%) under loss — ablation is vacuous",
			100*misPlain, 100*misReliable)
	}
}

// TestReliableGossipBackoffBoundsRetransmissions: pushes toward a crashed
// neighbour are never acked, so without backoff every pending entry would
// be re-sent on each firing and total traffic would grow quadratically in
// the tick budget. The exponential backoff caps each entry at
// logarithmically many retries, keeping the messages-per-tick ratio flat
// as the run grows.
func TestReliableGossipBackoffBoundsRetransmissions(t *testing.T) {
	p, err := gen.ClusteredRing(2, 30, 8, 1, rng.New(101))
	if err != nil {
		t.Fatal(err)
	}
	crashed := make([]bool, p.G.N())
	crashed[0], crashed[7], crashed[31] = true, true, true
	ratio := func(ticks int) float64 {
		res, err := ClusterAsyncGossip(p.G, Params{Beta: 0.5, Rounds: 10, Seed: 3}, AsyncOptions{
			Ticks: ticks, ClockSeed: 9, Crashed: crashed, Reliable: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.NetworkMessages) / float64(ticks)
	}
	small, large := ratio(5000), ratio(40000)
	if large > 6 {
		t.Errorf("messages-per-tick ratio %.2f at 40k ticks — retransmissions toward crashed nodes are not backed off", large)
	}
	if large > 1.5*small {
		t.Errorf("ratio grew from %.2f to %.2f as the run lengthened — retransmission traffic is superlinear", small, large)
	}
}

// TestReliableGossipPruneBudgetKeepsMass: with PruneEpsilon as the
// per-message state budget, pushed entries below the budget stay home at
// full value, so even the pruning mode conserves mass exactly in the
// reliable protocol (unlike the synchronous engine's pruning, which
// deliberately discards).
func TestReliableGossipPruneBudgetKeepsMass(t *testing.T) {
	p, err := gen.ClusteredRing(2, 60, 16, 1, rng.New(109))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterAsyncGossip(p.G, Params{Beta: 0.5, Rounds: 40, Seed: 3, PruneEpsilon: 1e-4}, AsyncOptions{
		ClockSeed:  9,
		Model:      dist.LinkFaults{DropProb: 0.1, Seed: 31},
		MailboxCap: 4,
		Reliable:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(len(res.Seeds)); res.TotalMass != want {
		t.Errorf("TotalMass %.17g != %v with the per-message prune budget", res.TotalMass, want)
	}
}

// TestDistributedMailboxCapConservesMass pins the two regimes documented
// on DistOptions.MailboxCap: with MaxDelay <= 4 the matching protocol's
// commit barrier can never collide with stale traffic, so ANY cap — even 1
// — only cancels matches atomically and mass is conserved exactly; with
// MaxDelay >= 5 and a tight cap a stale accept can displace the state
// reply after the proposer already merged, and conservation genuinely
// breaks (which is the hazard the reliable gossip layer repairs).
func TestDistributedMailboxCapConservesMass(t *testing.T) {
	p, err := gen.SBMBalanced(2, 40, 10, 2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 40, Seed: 9}
	for _, tc := range []struct {
		name string
		opt  DistOptions
	}{
		{"cap1 no delays", DistOptions{MailboxCap: 1}},
		{"cap1 delays<=4", DistOptions{MailboxCap: 1, DelayProb: 0.7, MaxDelay: 4, FailSeed: 7}},
		{"cap2 drops+delays<=2", DistOptions{MailboxCap: 2, DropProb: 0.2, DelayProb: 0.5, MaxDelay: 2, FailSeed: 11}},
	} {
		res, err := ClusterDistributed(p.G, params, tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.RejectedMessages == 0 {
			t.Errorf("%s: no rejections, test is vacuous", tc.name)
		}
		if want := float64(len(res.Seeds)); res.TotalMass != want {
			t.Errorf("%s: mass %v != %v — the structurally-safe window is broken", tc.name, res.TotalMass, want)
		}
	}
	// The documented hazard is real: over a handful of fault streams,
	// MaxDelay 6 with cap 1 must break conservation at least once —
	// otherwise the MailboxCap doc (and the reliable layer's reason to
	// exist for the sync protocol) overstates the danger.
	broke := false
	for seed := uint64(1); seed <= 10 && !broke; seed++ {
		res, err := ClusterDistributed(p.G, params, DistOptions{
			MailboxCap: 1, DelayProb: 0.7, MaxDelay: 6, FailSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		broke = res.TotalMass != float64(len(res.Seeds))
	}
	if !broke {
		t.Error("MaxDelay 6 + cap 1 never broke conservation across 10 fault streams — documented hazard unreproduced")
	}
}

func TestReliableGossipValidation(t *testing.T) {
	g := gen.Cycle(6)
	if _, err := ClusterAsyncGossip(g, Params{Beta: 0.5, Rounds: 2}, AsyncOptions{MailboxCap: -1}); err == nil {
		t.Error("negative MailboxCap should fail")
	}
	if _, err := ClusterAsyncGossip(g, Params{Beta: 0.5, Rounds: 2}, AsyncOptions{RetransmitAfter: -1}); err == nil {
		t.Error("negative RetransmitAfter should fail")
	}
	if _, err := ClusterAsyncGossip(g, Params{Beta: 0.5, Rounds: 2}, AsyncOptions{RetransmitAfter: 1 << 31}); err == nil {
		t.Error("RetransmitAfter beyond 2^30 should fail (would overflow the firing-clock arithmetic)")
	}
	if _, err := ClusterDistributed(g, Params{Beta: 0.5, Rounds: 2}, DistOptions{MailboxCap: -2}); err == nil {
		t.Error("negative DistOptions.MailboxCap should fail")
	}
}
