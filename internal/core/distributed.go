package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/matching"
)

// DistOptions configures the message-passing execution.
type DistOptions struct {
	// Workers sizes the phase worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// DropProb is the probability that a formed match is lost before the
	// state exchange completes (modelling a lost accept/exchange message
	// with a consistent two-sided abort). 0 disables failure injection.
	DropProb float64
	// FailSeed drives the drop coins, independently of protocol randomness.
	FailSeed uint64
	// Crashed marks nodes that never participate (their state is frozen).
	// nil means no crashes.
	Crashed []bool
}

// msgKind discriminates protocol messages.
type msgKind uint8

const (
	msgPropose msgKind = iota
	msgAccept          // carries the acceptor's state
	msgState           // carries the proposer's state back to the acceptor
)

// protoMsg is the wire format of the distributed engine.
type protoMsg struct {
	kind  msgKind
	state State // nil for proposals
}

// DistResult bundles the clustering result with network-level accounting.
type DistResult struct {
	Result
	// NetworkMessages is the number of individual messages on the wire.
	NetworkMessages int64
	// NetworkWords is the total words on the wire (1 per proposal, 1+state
	// for accepts, state size for exchanges).
	NetworkWords int64
	// DroppedMatches counts matches lost to failure injection.
	DroppedMatches int
	// TotalMass is the total load over all nodes and coordinates after the
	// final round. Averaging conserves mass and failure injection aborts
	// matches atomically, so with PruneEpsilon == 0 it equals len(Seeds)
	// up to float rounding — the conservation invariant tests assert
	// against. Pruning deliberately discards mass, so a positive
	// PruneEpsilon leaves TotalMass below the seed count.
	TotalMass float64
}

// ClusterDistributed executes the algorithm with one logical process per
// node on the dist runtime. Each round runs the matching protocol as real
// messages (propose → accept → state exchange) followed by local merges.
// With DropProb == 0 and no crashes it reproduces exactly the same labels
// and stats as the sequential Cluster for equal Params, because both draw
// protocol randomness from identical per-node streams.
func ClusterDistributed(g *graph.Graph, params Params, opt DistOptions) (*DistResult, error) {
	p, err := params.withDefaults(g)
	if err != nil {
		return nil, err
	}
	if opt.DropProb < 0 || opt.DropProb > 1 {
		return nil, fmt.Errorf("core: DropProb %v out of [0,1]", opt.DropProb)
	}
	if opt.Crashed != nil && len(opt.Crashed) != g.N() {
		return nil, fmt.Errorf("core: Crashed length %d for n=%d", len(opt.Crashed), g.N())
	}
	n := g.N()
	// Initialisation and seeding run through the same Engine constructor, so
	// IDs, seeds and per-node streams match the sequential path bit-for-bit.
	eng, err := NewEngine(g, params)
	if err != nil {
		return nil, err
	}
	crashed := func(v int) bool { return opt.Crashed != nil && opt.Crashed[v] }
	failRNGs := matching.NodeRNGs(n, opt.FailSeed^0x9e3779b97f4a7c15)

	net := dist.NewNetwork[protoMsg](n, opt.Workers)
	defer net.Close()
	active := make([]bool, n)
	dropped := 0
	var droppedMu sync.Mutex
	var pairs atomic.Int64

	for round := 0; round < p.Rounds; round++ {
		// Phase 1 — propose: active nodes draw a slot on the D-regular view
		// and propose to the chosen real neighbour.
		net.Phase(func(v int) {
			active[v] = false
			if crashed(v) {
				// Crashed nodes consume no randomness and send nothing.
				return
			}
			r := eng.rngs[v]
			active[v] = r.Bool()
			if !active[v] {
				return
			}
			slot := r.Intn(p.DegreeBound)
			if slot < g.Degree(v) {
				net.Send(v, g.Neighbor(v, slot), protoMsg{kind: msgPropose}, 1)
			}
		})
		// Phase 2 — accept: a non-active node chosen by exactly one
		// neighbour accepts, attaching its state. Failure injection cancels
		// the match before anything is exchanged.
		net.Phase(func(v int) {
			proposals := net.Recv(v)
			if crashed(v) || active[v] || len(proposals) != 1 {
				return
			}
			u := proposals[0].From
			if crashed(u) {
				return
			}
			if opt.DropProb > 0 && failRNGs[v].Bernoulli(opt.DropProb) {
				droppedMu.Lock()
				dropped++
				droppedMu.Unlock()
				return
			}
			st := eng.states[v]
			net.Send(v, u, protoMsg{kind: msgAccept, state: st}, 1+int64(st.Words()))
		})
		// Phase 3 — exchange: the proposer merges and replies with its own
		// pre-merge state.
		net.Phase(func(v int) {
			accepts := net.Recv(v)
			if len(accepts) == 0 {
				return
			}
			// A proposer contacted exactly one neighbour, so at most one
			// accept can arrive.
			acc := accepts[0]
			st := eng.states[v]
			net.Send(v, acc.From, protoMsg{kind: msgState, state: st}, int64(st.Words()))
			eng.states[v] = eng.mergeForStorage(st, acc.Body.state)
		})
		// Phase 4 — merge on the acceptor side; each completed merge here
		// accounts for exactly one matched pair.
		net.Phase(func(v int) {
			replies := net.Recv(v)
			if len(replies) == 0 {
				return
			}
			rep := replies[0]
			eng.states[v] = eng.mergeForStorage(eng.states[v], rep.Body.state)
			pairs.Add(1)
		})
		eng.round++
		eng.stats.Rounds = eng.round
		for _, s := range eng.states {
			if len(s) > eng.stats.MaxStateSize {
				eng.stats.MaxStateSize = len(s)
			}
		}
	}
	eng.stats.Matches = int(pairs.Load())
	res := eng.Query()
	// The sequential engine's word accounting is reconstructed from the
	// network counters: proposals and accepts are protocol words; state
	// payloads are state words.
	res.Stats.ProtocolWords = 0 // superseded by network accounting below
	res.Stats.StateWords = 0
	return &DistResult{
		Result:          *res,
		NetworkMessages: net.Counter().Messages(),
		NetworkWords:    net.Counter().Words(),
		DroppedMatches:  dropped,
		TotalMass:       eng.TotalMass(),
	}, nil
}
