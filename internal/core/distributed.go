package core

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sched"
)

// DistOptions configures the message-passing execution. Failure injection
// is substrate policy, not protocol logic: the fields below assemble a
// dist.DeliveryModel and crash set on the network, and the protocol merely
// observes the consequences (matches that never complete).
type DistOptions struct {
	// Workers sizes the phase worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// DropProb is the probability that a formed match is lost before the
	// state exchange completes (the accept datagram vanishes in the
	// substrate, aborting the match two-sided). 0 disables loss injection.
	DropProb float64
	// DelayProb is the probability that an accept datagram is delivered
	// late. A late accept misses its exchange phase and the match aborts
	// two-sided, exactly like a loss, so delays degrade throughput without
	// ever breaking mass conservation. 0 disables delay injection.
	DelayProb float64
	// MaxDelay is the largest injected delay in phases (uniform on
	// 1..MaxDelay); 0 with a positive DelayProb means 1.
	MaxDelay int
	// FailSeed drives the substrate's fault coins, independently of
	// protocol randomness.
	FailSeed uint64
	// Crashed marks nodes that never participate (their state is frozen).
	// nil means no crashes.
	Crashed []bool
	// Model, when non-nil, overrides the LinkFaults model assembled from
	// DropProb/DelayProb/MaxDelay/FailSeed with a custom delivery model.
	Model dist.DeliveryModel
	// Transport selects the delivery transport (in-process, loopback ring,
	// or multi-process sockets). The transcript is bit-identical across all
	// of them; see core.TransportSpec.
	Transport TransportSpec
	// MailboxCap bounds every node's mailbox at delivery time
	// (dist.Network.SetMailboxCap); overflow is rejected deterministically
	// and tallied in DistResult.RejectedMessages. The matching protocol's
	// per-phase fan-in per mailbox is structurally bounded — proposals only
	// pile up at acceptors (at most one per neighbour, and rejecting one
	// just shrinks the candidate set), while the accept and state-reply
	// legs have fan-in one — so with MaxDelay <= 4 ANY cap >= 1 only ever
	// cancels matches atomically and total mass is conserved (pinned by
	// TestDistributedMailboxCapConservesMass). The one hazard is a delay
	// model with MaxDelay >= 5: a stale accept from a round where the
	// acceptor itself proposed can then land in its commit barrier, and
	// with a tight cap the re-sorted truncation may reject the state reply
	// after the proposer already merged — breaking conservation, which is
	// exactly the failure mode the reliable gossip layer exists to repair
	// and F10 measures. 0 means unbounded.
	MailboxCap int
	// Partition selects how the node range splits across worker shards —
	// count, degree-weighted, or adaptively re-split along the emerging
	// cluster labels. Like Workers and Transport it is an environment
	// choice: the transcript is bit-identical across all modes.
	Partition PartitionSpec
	// Repartition, when non-nil, replaces the spec's built-in between-round
	// rebalancing with a custom hook. It must derive its decision only from
	// transcript state; see Repartitioner.
	Repartition Repartitioner
	// Obs, when non-nil, attaches the observability layer: phase spans and
	// per-round instants on the network's logical clocks, per-logical-shard
	// traffic and state metrics, and one registry snapshot per round. The
	// deterministic registry's snapshots are bit-identical across Workers,
	// Transport, and batch schedules; observation never changes the run.
	// Partition balance gauges go to the Env registry (worker-shard cells).
	Obs *obs.Observer
}

// msgKind discriminates protocol messages.
type msgKind uint8

const (
	msgPropose msgKind = iota
	msgAccept          // carries the acceptor's state
	msgState           // carries the proposer's state back to the acceptor
)

// protoMsg is the wire format of the distributed engine. The round tag lets
// receivers discard stale traffic: under delayed delivery a message can
// surface phases after it was sent, and the protocol must not mistake last
// round's accept for this round's.
type protoMsg struct {
	kind  msgKind
	round int32
	state State // nil for proposals
}

// DistResult bundles the clustering result with network-level accounting.
type DistResult struct {
	Result
	// NetworkMessages is the number of individual messages on the wire.
	NetworkMessages int64
	// NetworkWords is the total words on the wire (1 per proposal, 1+state
	// for accepts, state size for exchanges).
	NetworkWords int64
	// DroppedMessages is the number of sent messages the substrate lost
	// (delivery-model drops and crashed destinations).
	DroppedMessages int64
	// RejectedMessages is the number of messages bounced off a full mailbox
	// at delivery time (MailboxCap backpressure; disjoint from
	// DroppedMessages).
	RejectedMessages int64
	// DroppedMatches counts matches lost to failure injection, observed
	// protocol-side: an acceptor that sent its state but never saw the
	// exchange complete.
	DroppedMatches int
	// TotalMass is the total load over all nodes and coordinates after the
	// final round. Averaging conserves mass and failure injection aborts
	// matches atomically, so with PruneEpsilon == 0 it equals len(Seeds)
	// up to float rounding — the conservation invariant tests assert
	// against. Pruning deliberately discards mass, so a positive
	// PruneEpsilon leaves TotalMass below the seed count.
	TotalMass float64
	// PartitionBounds is the final contiguous ownership split the run ended
	// on (len = shards+1); under the adaptive mode it reflects the last
	// re-split. Purely environmental — never part of the transcript.
	PartitionBounds []int
	// ShardCostMax and ShardCostMean summarise the final split under the
	// active cost function (degree+1 for the degree and adaptive modes,
	// unit for count): the max-shard/mean-shard ratio is the balance figure
	// recorded in BENCH_dist.json and asserted by the CI partition smoke.
	ShardCostMax  int64
	ShardCostMean float64
}

// ClusterDistributed executes the algorithm with one logical process per
// node on the dist runtime. Each round runs the matching protocol as real
// messages (propose → accept → state exchange) followed by local merges.
// With a fault-free substrate it reproduces exactly the same labels and
// stats as the sequential Cluster for equal Params, because both draw
// protocol randomness from identical per-node streams.
//
// Reliability is per-leg: the propose and final state-exchange messages go
// over the reliable channel (modelling an acknowledged, retransmitted RPC),
// while the accept is a single unacknowledged datagram subject to the
// delivery model. Losing or delaying an accept aborts the match on both
// sides — the proposer sees no accept in its exchange phase, the acceptor
// sees no reply in its commit phase — so every injected fault cancels a
// match atomically and total mass is conserved exactly.
func ClusterDistributed(g *graph.Graph, params Params, opt DistOptions) (*DistResult, error) {
	p, err := params.withDefaults(g)
	if err != nil {
		return nil, err
	}
	if opt.DropProb < 0 || opt.DropProb > 1 {
		return nil, fmt.Errorf("core: DropProb %v out of [0,1]", opt.DropProb)
	}
	if opt.DelayProb < 0 || opt.DelayProb > 1 {
		return nil, fmt.Errorf("core: DelayProb %v out of [0,1]", opt.DelayProb)
	}
	if opt.MaxDelay < 0 {
		return nil, fmt.Errorf("core: MaxDelay %d < 0", opt.MaxDelay)
	}
	if opt.Crashed != nil && len(opt.Crashed) != g.N() {
		return nil, fmt.Errorf("core: Crashed length %d for n=%d", len(opt.Crashed), g.N())
	}
	if opt.MailboxCap < 0 {
		return nil, fmt.Errorf("core: MailboxCap %d < 0", opt.MailboxCap)
	}
	n := g.N()
	// Initialisation and seeding run through the same Engine constructor, so
	// IDs, seeds and per-node streams match the sequential path bit-for-bit.
	// The backend is pinned to sparse: this engine's states travel inside
	// protoMsg payloads and merge concurrently in phase callbacks, so the
	// sorted []Entry form IS the wire representation here (the backends are
	// bit-identical, so forcing sparse never changes the result).
	params.StateBackend = BackendSparse
	eng, err := NewEngine(g, params)
	if err != nil {
		return nil, err
	}

	net := dist.NewNetwork[protoMsg](n, opt.Workers)
	defer net.Close()
	net.SetObserver(opt.Obs)
	eng.SetObserver(opt.Obs)

	// Initial split: cost-weighted bounds under the spec's cost function,
	// installed before the transport dials so a socket handshake announces
	// the real node ranges. For the count mode this reproduces the network's
	// default split, so the Repartition is a no-op. The split is pure
	// environment — the transcript suites pin bit-equality across every mode
	// and worker count.
	if _, err := ParsePartitionSpec(opt.Partition.Mode); err != nil {
		return nil, err
	}
	costs := opt.Partition.costs(g)
	net.Repartition(sched.PartitionWeighted(costs, net.Workers()))
	publishSplit(opt.Obs, costs, net.Bounds())

	transport, closeTransport, err := openTransport(opt.Transport, net.Workers(), net.Bounds(), ProtoPayload, protoCodec{}, opt.Obs)
	if err != nil {
		return nil, err
	}
	defer closeTransport()
	if transport != nil {
		net.SetTransport(transport)
	}
	model := opt.Model
	if model == nil && (opt.DropProb > 0 || opt.DelayProb > 0) {
		model = dist.LinkFaults{
			DropProb:  opt.DropProb,
			DelayProb: opt.DelayProb,
			MaxPhases: opt.MaxDelay,
			Seed:      opt.FailSeed ^ 0x9e3779b97f4a7c15,
		}
	}
	if model != nil {
		net.SetDeliveryModel(model)
	}
	if opt.MailboxCap > 0 {
		net.SetMailboxCap(opt.MailboxCap)
	}
	for v, down := range opt.Crashed {
		if down {
			net.Crash(v)
		}
	}

	rep := opt.Repartition
	if rep == nil && opt.Partition.Mode == PartitionAdaptive {
		every := opt.Partition.every()
		thr := Threshold(p.Beta, n, p.ThresholdScale)
		rep = func(round, workers int) []int {
			if (round+1)%every != 0 {
				return nil
			}
			// The raw threshold winners are committed transcript state, so
			// the bounds derived here are identical for every worker count.
			return labelBounds(eng.rawLabelScan(thr), costs, workers)
		}
	}

	active := make([]bool, n)
	proposedTo := make([]int32, n)
	acceptedFrom := make([]int32, n)
	for v := range proposedTo {
		proposedTo[v] = -1
		acceptedFrom[v] = -1
	}
	dropped := dist.NewShardedInt(net.Workers())
	pairs := dist.NewShardedInt(net.Workers())

	for round := 0; round < p.Rounds; round++ {
		cur := int32(round)
		// Phase 1 — propose: active nodes draw a slot on the D-regular view
		// and propose to the chosen real neighbour. The proposal is a
		// retransmitted RPC (reliable); crashed nodes never execute, so they
		// consume no randomness and send nothing.
		net.Phase(func(v int) {
			active[v] = false
			proposedTo[v] = -1
			r := eng.rngs[v]
			active[v] = r.Bool()
			if !active[v] {
				return
			}
			slot := r.Intn(p.DegreeBound)
			if slot < g.Degree(v) {
				u := g.Neighbor(v, slot)
				proposedTo[v] = int32(u)
				net.SendReliable(v, u, protoMsg{kind: msgPropose, round: cur}, 1)
			}
		})
		// Phase 2 — accept: a non-active node chosen by exactly one
		// neighbour accepts, attaching its state. The accept is the one
		// unacknowledged datagram of the protocol: the delivery model may
		// lose or delay it, which is what aborts the match.
		net.Phase(func(v int) {
			acceptedFrom[v] = -1
			if active[v] {
				return
			}
			u, count := -1, 0
			for _, e := range net.Recv(v) {
				if e.Body.kind == msgPropose && e.Body.round == cur {
					u = e.From
					count++
				}
			}
			if count != 1 {
				return
			}
			st := eng.states[v]
			acceptedFrom[v] = int32(u)
			net.Send(v, u, protoMsg{kind: msgAccept, round: cur, state: st}, 1+int64(st.Words()))
		})
		// Phase 3 — exchange: a proposer whose accept arrived in time merges
		// and replies (reliably) with its own pre-merge state. Stale or
		// misrouted traffic — a delayed accept from an earlier round — fails
		// the round/sender filter and the match silently aborts.
		net.Phase(func(v int) {
			target := proposedTo[v]
			if target < 0 {
				return
			}
			for _, e := range net.Recv(v) {
				if e.Body.kind != msgAccept || e.Body.round != cur || e.From != int(target) {
					continue
				}
				st := eng.states[v]
				net.SendReliable(v, e.From, protoMsg{kind: msgState, round: cur, state: st}, int64(st.Words()))
				// nil arena: these merges run concurrently across phase
				// workers without a stable worker identity, so each allocates.
				eng.states[v] = eng.mergeForStorage(nil, st, e.Body.state)
				break
			}
		})
		// Phase 4 — commit on the acceptor side; each completed merge here
		// accounts for exactly one matched pair, and an accept that went
		// unanswered is exactly one match lost to failure injection.
		net.Phase(func(v int) {
			u := acceptedFrom[v]
			if u < 0 {
				return
			}
			done := false
			for _, e := range net.Recv(v) {
				if e.Body.kind == msgState && e.Body.round == cur && e.From == int(u) {
					eng.states[v] = eng.mergeForStorage(nil, eng.states[v], e.Body.state)
					done = true
					break
				}
			}
			if done {
				pairs.Add(net.ShardOf(v), 1)
			} else {
				dropped.Add(net.ShardOf(v), 1)
			}
		})
		eng.round++
		eng.stats.Rounds = eng.round
		for _, s := range eng.states {
			if len(s) > eng.stats.MaxStateSize {
				eng.stats.MaxStateSize = len(s)
			}
		}
		if o := opt.Obs; o != nil {
			// End-of-round observation on the driving goroutine, after the
			// commit barrier: the scanned states and the snapshot are pure
			// functions of the round, independent of Workers and Transport.
			eng.observeRound(
				obs.I("matches", pairs.Total()),
				obs.I("dropped_matches", dropped.Total()))
			o.Snap(int64(eng.round))
		}
		if rep != nil {
			if nb := rep(round, net.Workers()); nb != nil {
				net.Repartition(nb)
				publishSplit(opt.Obs, costs, nb)
			}
		}
	}
	eng.stats.Matches = int(pairs.Total())
	res := eng.Query()
	// The sequential engine's word accounting is reconstructed from the
	// network counters: proposals and accepts are protocol words; state
	// payloads are state words.
	res.Stats.ProtocolWords = 0 // superseded by network accounting below
	res.Stats.StateWords = 0
	finalBounds := net.Bounds()
	scMax, scMean := costStats(shardCosts(costs, finalBounds))
	return &DistResult{
		Result:           *res,
		NetworkMessages:  net.Counter().Messages(),
		NetworkWords:     net.Counter().Words(),
		DroppedMessages:  net.Counter().Dropped(),
		RejectedMessages: net.Counter().Rejected(),
		DroppedMatches:   int(dropped.Total()),
		TotalMass:        eng.TotalMass(),
		PartitionBounds:  finalBounds,
		ShardCostMax:     scMax,
		ShardCostMean:    scMean,
	}, nil
}
