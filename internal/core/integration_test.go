package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// TestClusterInvariantsProperty drives the full pipeline over random
// well-clustered instances and checks structural invariants that must hold
// regardless of accuracy: label vector shape, stats sanity, determinism,
// and per-coordinate mass conservation.
func TestClusterInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 2 + r.Intn(3)
		size := 30 + 2*r.Intn(20)
		dIn := 8 + 2*r.Intn(5)
		if size*dIn%2 != 0 {
			size++
		}
		p, err := gen.ClusteredRing(k, size, dIn, 1, r)
		if err != nil {
			return false
		}
		T := 20 + r.Intn(30)
		params := Params{Beta: 1 / float64(k+1), Rounds: T, Seed: seed ^ 0xfeed}
		eng, err := NewEngine(p.G, params)
		if err != nil {
			return false
		}
		seeds, ids := eng.Seeds()
		if len(seeds) != len(ids) {
			return false
		}
		massBefore := eng.TotalMass()
		eng.Run(T)
		if math.Abs(eng.TotalMass()-massBefore) > 1e-9 {
			return false
		}
		res := eng.Query()
		if len(res.Labels) != p.G.N() || len(res.RawLabels) != p.G.N() {
			return false
		}
		for _, l := range res.Labels {
			if l < 0 || l >= res.NumLabels {
				return false
			}
		}
		if res.Stats.Rounds != T {
			return false
		}
		if res.Stats.TotalWords() < 0 {
			return false
		}
		// Determinism: a second run from scratch agrees.
		res2, err := Cluster(p.G, params)
		if err != nil {
			return false
		}
		for v := range res.Labels {
			if res.Labels[v] != res2.Labels[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQueryMonotoneInThreshold checks that raising the threshold can only
// shrink the set of nodes that receive a non-sentinel label.
func TestQueryMonotoneInThreshold(t *testing.T) {
	r := rng.New(3)
	p, err := gen.ClusteredRing(2, 60, 16, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	labelled := func(scale float64) int {
		res, err := Cluster(p.G, Params{Beta: 0.5, Rounds: 40, Seed: 7, ThresholdScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, raw := range res.RawLabels {
			if raw != 0 {
				count++
			}
		}
		return count
	}
	prev := labelled(0.25)
	for _, scale := range []float64{0.5, 1, 2, 4, 16} {
		cur := labelled(scale)
		if cur > prev {
			t.Fatalf("labelled count increased from %d to %d at scale %v", prev, cur, scale)
		}
		prev = cur
	}
}

// TestLabelsAreClusterConsistent verifies the defining property of the query
// procedure on a well-clustered instance: any two nodes sharing a raw label
// agree with the planted partition except for the o(n) error mass.
func TestLabelsAreClusterConsistent(t *testing.T) {
	r := rng.New(11)
	p, err := gen.ClusteredRing(2, 100, 40, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(p.G, Params{Beta: 0.5, Rounds: 110, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mis, err := metrics.Misclassified(p.Truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis > p.G.N()/20 {
		t.Fatalf("misclassified %d of %d", mis, p.G.N())
	}
	// Each raw label's holders should be concentrated in one true cluster.
	byLabel := map[uint64][2]int{}
	for v, raw := range res.RawLabels {
		if raw == 0 {
			continue
		}
		counts := byLabel[raw]
		counts[p.Truth[v]]++
		byLabel[raw] = counts
	}
	for raw, counts := range byLabel {
		minority := counts[0]
		if counts[1] < minority {
			minority = counts[1]
		}
		if minority > (counts[0]+counts[1])/10 {
			t.Errorf("label %d spans clusters: %v", raw, counts)
		}
	}
}
