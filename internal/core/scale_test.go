package core

import (
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/spectral"
)

// TestLargeScaleEndToEnd exercises the full pipeline at a size two orders of
// magnitude above the unit tests (n = 30k), both to catch accidental
// quadratic behaviour and to confirm the accuracy claim survives scale. The
// internal degree keeps Υ ≈ 23 ≫ ln n, inside the gap condition (2), which
// at this size genuinely requires a sharper structure than the small tests.
func TestLargeScaleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke skipped in -short mode")
	}
	r := rng.New(3)
	p, err := gen.ClusteredRing(3, 10000, 60, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.G.N() != 30000 {
		t.Fatalf("n = %d", p.G.N())
	}
	T, err := spectral.AutoRounds(p.G, 3, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(p.G, Params{Beta: 1.0 / 3, Rounds: T, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.05 {
		t.Errorf("misclassification %v at n=30k (T=%d)", mis, T)
	}
	// The message bound should hold with the usual slack.
	s := len(res.Seeds)
	bound := int64(T) * int64(p.G.N()) * int64(4*s+8)
	if res.Stats.TotalWords() > bound {
		t.Errorf("words %d exceed bound %d", res.Stats.TotalWords(), bound)
	}
}
