package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/spectral"
)

func TestSeedTrials(t *testing.T) {
	// β = 1/4: s̄ = ceil(12·ln 4) = ceil(16.63) = 17.
	if got := SeedTrials(0.25); got != 17 {
		t.Errorf("SeedTrials(0.25) = %d want 17", got)
	}
	if got := SeedTrials(1); got != 1 {
		t.Errorf("SeedTrials(1) = %d want 1 (floor)", got)
	}
}

func TestThreshold(t *testing.T) {
	got := Threshold(0.5, 100, 1)
	want := 1 / (math.Sqrt(1.0) * 100)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("threshold %v want %v", got, want)
	}
	if Threshold(0.5, 100, 0) != got {
		t.Error("scale 0 should default to 1")
	}
	if Threshold(0.5, 100, 2) != 2*got {
		t.Error("scale not applied")
	}
}

func TestMergeStates(t *testing.T) {
	a := State{{1, 0.5}, {3, 0.2}}
	b := State{{2, 1.0}, {3, 0.4}}
	m := MergeStates(a, b)
	want := State{{1, 0.25}, {2, 0.5}, {3, 0.3}}
	if len(m) != len(want) {
		t.Fatalf("merged %v", m)
	}
	for i := range want {
		if m[i].ID != want[i].ID || math.Abs(m[i].Val-want[i].Val) > 1e-15 {
			t.Errorf("entry %d: %v want %v", i, m[i], want[i])
		}
	}
	// Conservation: 2·Mass(merged) == Mass(a)+Mass(b).
	if math.Abs(2*m.Mass()-(a.Mass()+b.Mass())) > 1e-15 {
		t.Error("merge does not conserve mass")
	}
}

func TestMergeStatesEmpty(t *testing.T) {
	a := State{{5, 1.0}}
	m := MergeStates(a, nil)
	if len(m) != 1 || m[0].Val != 0.5 {
		t.Errorf("merge with empty: %v", m)
	}
	if len(MergeStates(nil, nil)) != 0 {
		t.Error("empty merge should be empty")
	}
}

func TestStateGetAndWords(t *testing.T) {
	s := State{{2, 0.5}, {7, 0.25}}
	if s.Get(2) != 0.5 || s.Get(7) != 0.25 || s.Get(5) != 0 {
		t.Error("Get wrong")
	}
	if s.Words() != 4 {
		t.Errorf("Words = %d", s.Words())
	}
}

// MergeStates property: sorted output, conservation, value bounds.
func TestMergeStatesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		mk := func() State {
			n := r.Intn(6)
			s := make(State, 0, n)
			id := uint64(0)
			for i := 0; i < n; i++ {
				id += 1 + uint64(r.Intn(5))
				s = append(s, Entry{id, r.Float64()})
			}
			return s
		}
		a, b := mk(), mk()
		m := MergeStates(a, b)
		for i := 1; i < len(m); i++ {
			if m[i].ID <= m[i-1].ID {
				return false
			}
		}
		return math.Abs(2*m.Mass()-(a.Mass()+b.Mass())) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParamsValidation(t *testing.T) {
	g := gen.Cycle(8)
	bad := []Params{
		{Beta: 0, Rounds: 5},
		{Beta: 1.5, Rounds: 5},
		{Beta: 0.5, Rounds: 0},
		{Beta: 0.5, Rounds: 5, ThresholdScale: -1},
		{Beta: 0.5, Rounds: 5, DegreeBound: 1},
	}
	for i, p := range bad {
		if _, err := Cluster(g, p); err == nil {
			t.Errorf("params %d should fail", i)
		}
	}
}

func TestSeedingPlantsUnitLoads(t *testing.T) {
	r := rng.New(1)
	p, err := gen.ClusteredRing(2, 50, 6, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p.G, Params{Beta: 0.5, Rounds: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seeds, ids := e.Seeds()
	if len(seeds) == 0 {
		t.Fatal("no seeds planted (β=0.5 gives s̄=5 trials on 100 nodes; possible but rare)")
	}
	for i, v := range seeds {
		s := e.States()[v]
		if len(s) != 1 || s[0].Val != 1 || s[0].ID != ids[i] {
			t.Errorf("seed %d state %v", v, s)
		}
	}
	// Total mass equals seed count.
	if math.Abs(e.TotalMass()-float64(len(seeds))) > 1e-12 {
		t.Errorf("mass %v != %d seeds", e.TotalMass(), len(seeds))
	}
}

func TestMassConservationThroughRounds(t *testing.T) {
	r := rng.New(5)
	p, err := gen.ClusteredRing(3, 40, 6, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p.G, Params{Beta: 1.0 / 3, Rounds: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	want := e.TotalMass()
	for i := 0; i < 50; i++ {
		e.Step()
		if math.Abs(e.TotalMass()-want) > 1e-9 {
			t.Fatalf("mass drift at round %d: %v vs %v", i, e.TotalMass(), want)
		}
	}
}

func TestEndToEndTheorem11(t *testing.T) {
	// Well-clustered ring of expanders (Υ ≈ 26): the algorithm should
	// recover the planted partition with few misclassified nodes and stay
	// within the message budget O(T·n·k·log k) words.
	r := rng.New(7)
	p, err := gen.ClusteredRing(3, 100, 60, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	st, err := spectral.Analyze(p.G, p.Truth, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	T := spectral.EstimateRoundsMatching(p.G.N(), st.LambdaK1, p.G.MaxDegree(), 1.5)
	beta := p.MinClusterFraction()
	var bestMis float64 = 1
	// Constant success probability: try a few seeds and take the best run;
	// most seeds should already succeed.
	for _, seed := range []uint64{1, 2, 3} {
		res, err := Cluster(p.G, Params{Beta: beta, Rounds: T, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if mis < bestMis {
			bestMis = mis
		}
	}
	if bestMis > 0.05 {
		t.Errorf("misclassification rate %v > 5%%", bestMis)
	}
}

func TestMessageComplexityBound(t *testing.T) {
	r := rng.New(9)
	p, err := gen.ClusteredRing(4, 50, 8, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	T := 40
	res, err := Cluster(p.G, Params{Beta: 0.25, Rounds: T, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	n := p.G.N()
	// Crude version of O(T·n·k log k): states carry at most s entries, and
	// at most n/2 pairs match per round, so words <= T·n·(2s+2)·2. Check
	// against a generous constant multiple.
	s := len(res.Seeds)
	bound := int64(T) * int64(n) * int64(4*s+8)
	if res.Stats.TotalWords() > bound {
		t.Errorf("message words %d exceed bound %d", res.Stats.TotalWords(), bound)
	}
	if res.Stats.MaxStateSize > s {
		t.Errorf("state size %d exceeds seed count %d", res.Stats.MaxStateSize, s)
	}
	if res.Stats.Rounds != T || res.Stats.Matches == 0 {
		t.Errorf("stats wrong: %+v", res.Stats)
	}
}

func TestQueryThresholdSentinel(t *testing.T) {
	// With an absurdly high threshold nothing qualifies: all nodes get the
	// sentinel and collapse to one label.
	r := rng.New(3)
	p, err := gen.ClusteredRing(2, 30, 4, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(p.G, Params{Beta: 0.5, Rounds: 5, Seed: 1, ThresholdScale: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLabels != 1 {
		t.Errorf("NumLabels = %d want 1 (all sentinel)", res.NumLabels)
	}
	for _, rl := range res.RawLabels {
		if rl != 0 {
			t.Fatal("raw label should be sentinel 0")
		}
	}
}

func TestDeterminism(t *testing.T) {
	r := rng.New(17)
	p, err := gen.ClusteredRing(2, 40, 6, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Cluster(p.G, Params{Beta: 0.5, Rounds: 20, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(p.G, Params{Beta: 0.5, Rounds: 20, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Labels {
		if a.Labels[v] != b.Labels[v] {
			t.Fatalf("node %d labels differ", v)
		}
	}
	if a.Stats != b.Stats {
		t.Errorf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestLoadVector(t *testing.T) {
	r := rng.New(19)
	p, err := gen.ClusteredRing(2, 30, 4, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p.G, Params{Beta: 0.5, Rounds: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	seeds, ids := e.Seeds()
	if len(seeds) == 0 {
		t.Skip("no seeds under this seed")
	}
	y := e.LoadVector(ids[0])
	if y[seeds[0]] != 1 {
		t.Error("initial load vector should be the indicator of the seed")
	}
	// After rounds, mass of the coordinate is conserved at 1.
	e.Run(10)
	y = e.LoadVector(ids[0])
	var sum float64
	for _, x := range y {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("coordinate mass %v", sum)
	}
}

func TestIDSpaceFor(t *testing.T) {
	if idSpaceFor(10) != 1000 {
		t.Errorf("idSpaceFor(10) = %d", idSpaceFor(10))
	}
	if idSpaceFor(0) != 1 {
		t.Error("zero nodes should give space 1")
	}
	if idSpaceFor(3000000) != uint64(1)<<63 {
		t.Error("overflow clamp missing")
	}
}

func TestIDsAreDistinctWHP(t *testing.T) {
	r := rng.New(23)
	p, err := gen.ClusteredRing(2, 100, 6, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p.G, Params{Beta: 0.5, Rounds: 1, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, id := range e.ids {
		if id == 0 {
			t.Fatal("ID 0 is reserved for the sentinel")
		}
		if seen[id] {
			t.Fatal("duplicate ID (probability ~n²/n³; resample the test seed if legitimate)")
		}
		seen[id] = true
	}
}

// TestClusterParallelMatchesSequential pins the engine-side parallel
// contract: ClusterParallel reproduces Cluster bit for bit — labels, raw
// labels, and the full stats block — for every worker count, with and
// without pruning (pruning runs through mergeForStorage on the parallel
// merge path too).
func TestClusterParallelMatchesSequential(t *testing.T) {
	r := rng.New(8)
	p, err := gen.ClusteredRing(3, 60, 10, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, prune := range []float64{0, 1e-7} {
		params := Params{Beta: 1.0 / 3, Rounds: 60, Seed: 17, PruneEpsilon: prune}
		want, err := Cluster(p.G, params)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 8, -1} {
			got, err := ClusterParallel(p.G, params, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats != want.Stats {
				t.Errorf("prune %g workers %d: stats %+v != %+v", prune, workers, got.Stats, want.Stats)
			}
			if got.NumLabels != want.NumLabels || got.Threshold != want.Threshold {
				t.Errorf("prune %g workers %d: labels/threshold header diverged", prune, workers)
			}
			for v := range want.Labels {
				if got.Labels[v] != want.Labels[v] || got.RawLabels[v] != want.RawLabels[v] {
					t.Fatalf("prune %g workers %d: node %d labelled (%d,%d), want (%d,%d)",
						prune, workers, v, got.Labels[v], got.RawLabels[v], want.Labels[v], want.RawLabels[v])
				}
			}
		}
	}
}

// TestEngineSetPoolMidRun: attaching or detaching the pool between rounds
// must not perturb the run — the schedule changes, the transcript does not.
func TestEngineSetPoolMidRun(t *testing.T) {
	r := rng.New(9)
	p, err := gen.ClusteredRing(2, 50, 8, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 40, Seed: 23}
	want, err := Cluster(p.G, params)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p.G, params)
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(4)
	defer pool.Close()
	for round := 0; round < params.Rounds; round++ {
		if round%3 == 0 {
			e.SetPool(nil)
		} else {
			e.SetPool(pool)
		}
		e.Step()
	}
	got := e.Query()
	if got.Stats != want.Stats {
		t.Errorf("stats %+v != %+v", got.Stats, want.Stats)
	}
	for v := range want.Labels {
		if got.Labels[v] != want.Labels[v] {
			t.Fatalf("node %d labelled %d, want %d", v, got.Labels[v], want.Labels[v])
		}
	}
}
