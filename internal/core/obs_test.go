package core

import (
	"strconv"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph/gen"
	"repro/internal/obs"
	"repro/internal/rng"
)

// distSnapshots runs ClusterDistributed with a fresh observer and returns
// the canonical text of its per-round deterministic snapshots plus the
// result for cross-checking.
func distSnapshots(t *testing.T, workers int, transport TransportSpec, model dist.DeliveryModel, trace bool) (string, *DistResult) {
	t.Helper()
	p, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(401))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Options{Trace: trace})
	res, err := ClusterDistributed(p.G, Params{Beta: 0.5, Rounds: 8, Seed: 11}, DistOptions{
		Workers:   workers,
		Transport: transport,
		Model:     model,
		Obs:       o,
	})
	if err != nil {
		t.Fatal(err)
	}
	snaps := o.Snapshots()
	if len(snaps) != 8 {
		t.Fatalf("got %d snapshots, want one per round (8)", len(snaps))
	}
	return obs.SnapshotsText(snaps), res
}

// TestDistSnapshotsWorkerTransportInvariant is the observability analogue of
// the transcript-equality contract: the deterministic registry's per-round
// snapshots — per-logical-shard traffic, mass, nnz, imbalance — must be
// bit-identical across worker counts and transports, with and without fault
// injection, because every cell is keyed by logical shard (never worker) and
// every gauge is written by a serial driving-goroutine scan.
func TestDistSnapshotsWorkerTransportInvariant(t *testing.T) {
	models := map[string]dist.DeliveryModel{
		"faultfree": nil,
		"faults":    dist.LinkFaults{DropProb: 0.05, DelayProb: 0.1, MaxPhases: 2, Seed: 5},
	}
	for name, model := range models {
		t.Run(name, func(t *testing.T) {
			ref, refRes := distSnapshots(t, 1, TransportSpec{}, model, false)
			for _, workers := range []int{2, 8} {
				got, res := distSnapshots(t, workers, TransportSpec{}, model, false)
				if got != ref {
					t.Errorf("workers=%d inprocess snapshots diverge:\n--- workers=1\n%s\n--- workers=%d\n%s", workers, ref, workers, got)
				}
				if res.TotalMass != refRes.TotalMass {
					t.Errorf("workers=%d TotalMass %v, want %v", workers, res.TotalMass, refRes.TotalMass)
				}
			}
			for _, workers := range []int{1, 2, 8} {
				got, _ := distSnapshots(t, workers, TransportSpec{Kind: "ring"}, model, false)
				if got != ref {
					t.Errorf("workers=%d ring snapshots diverge from inprocess reference", workers)
				}
			}
		})
	}
}

// TestDistObserverEffectZero pins that observation never changes the run:
// with tracing on, off, or no observer at all, the clustering result —
// labels, stats, counters, mass — is identical, and the deterministic
// snapshots with tracing on equal those with tracing off.
func TestDistObserverEffectZero(t *testing.T) {
	p, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(401))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 8, Seed: 11}
	bare, err := ClusterDistributed(p.G, params, DistOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	offSnaps, offRes := distSnapshots(t, 2, TransportSpec{}, nil, false)
	onSnaps, onRes := distSnapshots(t, 2, TransportSpec{}, nil, true)
	if offSnaps != onSnaps {
		t.Error("snapshots differ between tracing on and off")
	}
	for i, want := range bare.Labels {
		if offRes.Labels[i] != want || onRes.Labels[i] != want {
			t.Fatalf("observed run labels diverge from unobserved at node %d", i)
		}
	}
	if bare.TotalMass != offRes.TotalMass || bare.TotalMass != onRes.TotalMass {
		t.Error("observed run mass diverges from unobserved")
	}
	if bare.NetworkMessages != offRes.NetworkMessages || bare.NetworkWords != onRes.NetworkWords {
		t.Error("observed run traffic counters diverge from unobserved")
	}
}

// TestDistSnapshotsMatchCounters cross-checks the snapshot cells against the
// network's own counters: summed over shards, the sent/words/dropped tallies
// of the final snapshot must equal the DistResult accounting.
func TestDistSnapshotsMatchCounters(t *testing.T) {
	p, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(401))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Options{})
	res, err := ClusterDistributed(p.G, Params{Beta: 0.5, Rounds: 8, Seed: 11}, DistOptions{
		Workers: 4,
		Model:   dist.LinkFaults{DropProb: 0.05, Seed: 5},
		Obs:     o,
	})
	if err != nil {
		t.Fatal(err)
	}
	snaps := o.Snapshots()
	last := snaps[len(snaps)-1]
	totals := map[string]int64{}
	for _, c := range last.Counters {
		totals[c.Name] = c.Total()
	}
	if totals[obs.MetricSent] != res.NetworkMessages {
		t.Errorf("snapshot sent %d, counter %d", totals[obs.MetricSent], res.NetworkMessages)
	}
	if totals[obs.MetricWords] != res.NetworkWords {
		t.Errorf("snapshot words %d, counter %d", totals[obs.MetricWords], res.NetworkWords)
	}
	if totals[obs.MetricDropped] != res.DroppedMessages {
		t.Errorf("snapshot dropped %d, counter %d", totals[obs.MetricDropped], res.DroppedMessages)
	}
}

// asyncSnapshot runs ClusterAsyncGossip with an observer and returns the
// end-of-run snapshot text.
func asyncSnapshot(t *testing.T, parallel int, transport TransportSpec, reliable bool) string {
	t.Helper()
	p, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(403))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(obs.Options{})
	_, err = ClusterAsyncGossip(p.G, Params{Beta: 0.5, Rounds: 20, Seed: 13}, AsyncOptions{
		Ticks:      3000,
		ClockSeed:  17,
		Parallel:   parallel,
		Reliable:   reliable,
		MailboxCap: 12,
		Transport:  transport,
		Obs:        o,
	})
	if err != nil {
		t.Fatal(err)
	}
	snaps := o.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want the single end-of-run one", len(snaps))
	}
	return obs.SnapshotsText(snaps)
}

// TestAsyncSnapshotScheduleInvariant: the async end-of-run snapshot is
// bit-identical between serial and batched execution and across transports —
// the same invariance the transcript tests pin, now visible through the
// metrics layer.
func TestAsyncSnapshotScheduleInvariant(t *testing.T) {
	for _, reliable := range []bool{false, true} {
		t.Run("reliable="+strconv.FormatBool(reliable), func(t *testing.T) {
			ref := asyncSnapshot(t, 0, TransportSpec{}, reliable)
			if got := asyncSnapshot(t, 4, TransportSpec{}, reliable); got != ref {
				t.Errorf("parallel=4 snapshot diverges from serial:\n--- serial\n%s\n--- parallel\n%s", ref, got)
			}
			if got := asyncSnapshot(t, 4, TransportSpec{Kind: "ring"}, reliable); got != ref {
				t.Errorf("ring snapshot diverges from inprocess")
			}
		})
	}
}

// TestSequentialObsMatchesDistributed: ClusterParallelWithObs and the
// fault-free distributed run share seeding and per-node streams, so their
// per-round engine gauges (mass, nnz, imbalance, max_state) must agree
// round for round; the traffic counters exist only on the distributed side.
func TestSequentialObsMatchesDistributed(t *testing.T) {
	p, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(401))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 8, Seed: 11, StateBackend: BackendSparse}
	seqObs := obs.NewObserver(obs.Options{})
	if _, err := ClusterParallelWithObs(p.G, params, 1, seqObs); err != nil {
		t.Fatal(err)
	}
	distObs := obs.NewObserver(obs.Options{})
	if _, err := ClusterDistributed(p.G, params, DistOptions{Obs: distObs}); err != nil {
		t.Fatal(err)
	}
	seqSnaps, distSnaps := seqObs.Snapshots(), distObs.Snapshots()
	if len(seqSnaps) != len(distSnaps) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(seqSnaps), len(distSnaps))
	}
	gaugeText := func(s obs.Snapshot) string {
		var b []byte
		for _, g := range s.Gauges {
			if g.Name == obs.MetricMass || g.Name == obs.MetricNNZ {
				b = append(b, g.Name...)
				for _, v := range g.Cells {
					b = append(b, ' ')
					b = strconv.AppendFloat(b, v, 'g', -1, 64)
				}
				b = append(b, '\n')
			}
		}
		return string(b)
	}
	for i := range seqSnaps {
		if got, want := gaugeText(distSnaps[i]), gaugeText(seqSnaps[i]); got != want {
			t.Errorf("round %d engine gauges diverge:\nsequential:\n%s\ndistributed:\n%s", i+1, want, got)
		}
	}
}
