package core

import (
	"math"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// massConserved asserts the conservation invariant: one unit of load per
// seed, exactly (the tolerance only guards against summation order).
func massConserved(t *testing.T, res *DistResult, context string) {
	t.Helper()
	want := float64(len(res.Seeds))
	if math.Abs(res.TotalMass-want) > 1e-9*want {
		t.Errorf("%s: total mass %v, want %v (one unit per seed)", context, res.TotalMass, want)
	}
}

func TestDistributedDelayedDeliveryConservesMass(t *testing.T) {
	// A delayed accept misses its exchange phase, so the match aborts on
	// both sides — delays must degrade throughput without ever moving or
	// destroying load.
	r := rng.New(71)
	p, err := gen.ClusteredRing(2, 60, 16, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 50, Seed: 13}
	dres, err := ClusterDistributed(p.G, params, DistOptions{
		DelayProb: 0.5, MaxDelay: 3, FailSeed: 2, Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dres.DroppedMatches == 0 {
		t.Error("DelayProb 0.5 should abort some matches")
	}
	massConserved(t, dres, "delayed delivery")
	// Delays abort matches without losing messages unless the accept never
	// surfaces inside the run; the substrate drop counter tracks only real
	// losses (none here beyond crashed-destination drops, of which there
	// are none).
	if dres.DroppedMessages != 0 {
		t.Errorf("pure delay model lost %d messages", dres.DroppedMessages)
	}
}

func TestDistributedDropModelIdenticalAcrossWorkerCounts(t *testing.T) {
	// The drop coins live in the substrate and hash from message
	// coordinates, so a faulty run must stay bit-identical for any worker
	// count: same labels, same traffic, same dropped-match count.
	r := rng.New(73)
	p, err := gen.ClusteredRing(2, 40, 10, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 40, Seed: 17}
	opt := func(workers int) DistOptions {
		return DistOptions{Workers: workers, DropProb: 0.3, DelayProb: 0.2, MaxDelay: 2, FailSeed: 5}
	}
	a, err := ClusterDistributed(p.G, params, opt(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.DroppedMatches == 0 {
		t.Fatal("fault injection idle at DropProb 0.3")
	}
	for _, workers := range []int{2, 8} {
		b, err := ClusterDistributed(p.G, params, opt(workers))
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Labels {
			if a.Labels[v] != b.Labels[v] {
				t.Fatalf("workers=%d: labels differ at node %d under faults", workers, v)
			}
		}
		if a.NetworkMessages != b.NetworkMessages || a.NetworkWords != b.NetworkWords {
			t.Errorf("workers=%d: traffic (%d, %d) != (%d, %d)", workers,
				b.NetworkMessages, b.NetworkWords, a.NetworkMessages, a.NetworkWords)
		}
		if a.DroppedMatches != b.DroppedMatches || a.DroppedMessages != b.DroppedMessages {
			t.Errorf("workers=%d: fault accounting (%d, %d) != (%d, %d)", workers,
				b.DroppedMatches, b.DroppedMessages, a.DroppedMatches, a.DroppedMessages)
		}
		if a.Stats.Matches != b.Stats.Matches {
			t.Errorf("workers=%d: matches %d != %d", workers, b.Stats.Matches, a.Stats.Matches)
		}
	}
	massConserved(t, a, "drop+delay model")
}

func TestDistributedCrashDropInterplay(t *testing.T) {
	// Crashed nodes and a lossy substrate together: the run must stay
	// deterministic, conserve mass (crashed seeds freeze their unit of
	// load), account crashed-destination sends as dropped messages, and
	// still cluster the surviving nodes reasonably.
	r := rng.New(79)
	p, err := gen.ClusteredRing(2, 100, 40, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	crashed := make([]bool, p.G.N())
	cr := rng.New(83)
	crashedCount := 0
	for v := range crashed {
		if cr.Bernoulli(0.05) {
			crashed[v] = true
			crashedCount++
		}
	}
	if crashedCount == 0 {
		crashed[0] = true
		crashedCount = 1
	}
	params := Params{Beta: 0.5, Rounds: 140, Seed: 19}
	opt := DistOptions{Workers: 4, DropProb: 0.2, FailSeed: 7, Crashed: crashed}
	dres, err := ClusterDistributed(p.G, params, opt)
	if err != nil {
		t.Fatal(err)
	}
	massConserved(t, dres, "crash × drop")
	if dres.DroppedMatches == 0 {
		t.Error("drop model idle despite DropProb 0.2")
	}
	if dres.DroppedMessages == 0 {
		t.Error("no dropped messages despite crashes and drops")
	}
	// Crashed nodes freeze: proposals aimed at them exist (they are other
	// nodes' neighbours) and are part of DroppedMessages; the run must not
	// have matched a crashed node.
	again, err := ClusterDistributed(p.G, params, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again.DroppedMatches != dres.DroppedMatches || again.NetworkWords != dres.NetworkWords {
		t.Error("crash × drop run is not reproducible")
	}
	var truthAlive, predAlive []int
	for v := 0; v < p.G.N(); v++ {
		if !crashed[v] {
			truthAlive = append(truthAlive, p.Truth[v])
			predAlive = append(predAlive, dres.Labels[v])
		}
	}
	mis, err := metrics.MisclassificationRate(truthAlive, predAlive)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.2 {
		t.Errorf("alive-node misclassification %v with %d crashed and drops", mis, crashedCount)
	}
}

func TestDistributedValidationOfFaultFields(t *testing.T) {
	g := gen.Cycle(6)
	if _, err := ClusterDistributed(g, Params{Beta: 0.5, Rounds: 2}, DistOptions{DelayProb: 1.5}); err == nil {
		t.Error("DelayProb > 1 should fail")
	}
	if _, err := ClusterDistributed(g, Params{Beta: 0.5, Rounds: 2}, DistOptions{MaxDelay: -1}); err == nil {
		t.Error("negative MaxDelay should fail")
	}
}
