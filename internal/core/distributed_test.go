package core

import (
	"math"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
)

func TestDistributedMatchesSequential(t *testing.T) {
	// With no failures, the message-passing engine must reproduce the
	// sequential engine exactly: same labels, same seeds, same match count.
	r := rng.New(41)
	p, err := gen.ClusteredRing(3, 60, 20, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 1.0 / 3, Rounds: 60, Seed: 5}
	seq, err := Cluster(p.G, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		dres, err := ClusterDistributed(p.G, params, DistOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(dres.Labels) != len(seq.Labels) {
			t.Fatal("label lengths differ")
		}
		for v := range seq.Labels {
			if dres.Labels[v] != seq.Labels[v] {
				t.Fatalf("workers=%d: node %d label %d != %d", workers, v, dres.Labels[v], seq.Labels[v])
			}
		}
		if dres.Stats.Matches != seq.Stats.Matches {
			t.Errorf("workers=%d: matches %d != %d", workers, dres.Stats.Matches, seq.Stats.Matches)
		}
		if dres.NetworkWords != seq.Stats.TotalWords() {
			t.Errorf("workers=%d: network words %d != sequential words %d",
				workers, dres.NetworkWords, seq.Stats.TotalWords())
		}
		if len(dres.Seeds) != len(seq.Seeds) {
			t.Errorf("seed sets differ")
		}
	}
}

func TestDistributedValidation(t *testing.T) {
	g := gen.Cycle(6)
	if _, err := ClusterDistributed(g, Params{Beta: 0.5, Rounds: 2}, DistOptions{DropProb: -1}); err == nil {
		t.Error("negative DropProb should fail")
	}
	if _, err := ClusterDistributed(g, Params{Beta: 0.5, Rounds: 2}, DistOptions{Crashed: []bool{true}}); err == nil {
		t.Error("wrong Crashed length should fail")
	}
	if _, err := ClusterDistributed(g, Params{Beta: 0, Rounds: 2}, DistOptions{}); err == nil {
		t.Error("bad params should fail")
	}
}

func TestDistributedWithDropsConservesMass(t *testing.T) {
	// Failure injection cancels matches atomically, so per-coordinate mass
	// must remain exactly 1.
	r := rng.New(43)
	p, err := gen.ClusteredRing(2, 50, 12, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 40, Seed: 7}
	dres, err := ClusterDistributed(p.G, params, DistOptions{DropProb: 0.3, FailSeed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dres.DroppedMatches == 0 {
		t.Error("expected some dropped matches at p=0.3")
	}
	// Conservation for real: the seeding procedure injects one unit of load
	// per seed, and an aborted match must leave both sides untouched, so
	// the final total mass equals the seed count exactly (all loads are
	// dyadic rationals well inside float64 range; the tolerance only guards
	// against summation order).
	want := float64(len(dres.Seeds))
	if math.Abs(dres.TotalMass-want) > 1e-9*want {
		t.Errorf("total mass %v after drops, want %v (one unit per seed)", dres.TotalMass, want)
	}
	// The label structure must also stay sane (all labels in range).
	if len(dres.Labels) != p.G.N() {
		t.Fatal("label vector wrong size")
	}
	for _, l := range dres.Labels {
		if l < 0 || l >= dres.NumLabels {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestDistributedDropsDegradeGracefully(t *testing.T) {
	// Dropping 30% of matches must slow convergence, not break correctness:
	// with extra rounds the result should still cluster well.
	r := rng.New(47)
	p, err := gen.ClusteredRing(2, 100, 40, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 130, Seed: 3}
	dres, err := ClusterDistributed(p.G, params, DistOptions{DropProb: 0.3, FailSeed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mis, err := metrics.MisclassificationRate(p.Truth, dres.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.15 {
		t.Errorf("misclassification %v under drops", mis)
	}
}

func TestDistributedCrashedNodesFrozen(t *testing.T) {
	// Crash a handful of nodes: the rest should still make progress, and the
	// run must not deadlock or panic.
	r := rng.New(53)
	p, err := gen.ClusteredRing(2, 100, 40, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	crashed := make([]bool, p.G.N())
	crashedCount := 0
	cr := rng.New(99)
	for v := range crashed {
		if cr.Bernoulli(0.05) {
			crashed[v] = true
			crashedCount++
		}
	}
	if crashedCount == 0 {
		crashed[0] = true
		crashedCount = 1
	}
	params := Params{Beta: 0.5, Rounds: 110, Seed: 11}
	dres, err := ClusterDistributed(p.G, params, DistOptions{Crashed: crashed, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy on non-crashed nodes should remain reasonable.
	var truthAlive, predAlive []int
	for v := 0; v < p.G.N(); v++ {
		if !crashed[v] {
			truthAlive = append(truthAlive, p.Truth[v])
			predAlive = append(predAlive, dres.Labels[v])
		}
	}
	mis, err := metrics.MisclassificationRate(truthAlive, predAlive)
	if err != nil {
		t.Fatal(err)
	}
	if mis > 0.2 {
		t.Errorf("alive-node misclassification %v with %d crashed", mis, crashedCount)
	}
}

func TestDistributedDeterministicAcrossWorkerCounts(t *testing.T) {
	r := rng.New(59)
	p, err := gen.ClusteredRing(2, 40, 10, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 30, Seed: 21}
	a, err := ClusterDistributed(p.G, params, DistOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterDistributed(p.G, params, DistOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Labels {
		if a.Labels[v] != b.Labels[v] {
			t.Fatalf("labels differ at %d between worker counts", v)
		}
	}
	if a.NetworkWords != b.NetworkWords || a.NetworkMessages != b.NetworkMessages {
		t.Error("traffic accounting differs between worker counts")
	}
}

func TestDistributedMessageComplexityScalesWithK(t *testing.T) {
	// The per-round state payload is bounded by the seed count s = O(k log k
	// / β·stuff); verify words per round per node stays near 2s+2 rather
	// than the graph degree.
	r := rng.New(61)
	p, err := gen.ClusteredRing(2, 100, 40, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	T := 50
	dres, err := ClusterDistributed(p.G, Params{Beta: 0.5, Rounds: T, Seed: 1}, DistOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := len(dres.Seeds)
	n := p.G.N()
	perRoundPerNode := float64(dres.NetworkWords) / float64(T) / float64(n)
	limit := float64(4*s + 8)
	if perRoundPerNode > limit {
		t.Errorf("words/round/node = %v exceeds %v (s=%d)", perRoundPerNode, limit, s)
	}
	if math.IsNaN(perRoundPerNode) || perRoundPerNode <= 0 {
		t.Error("no traffic recorded")
	}
}
