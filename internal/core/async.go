package core

import (
	"fmt"
	"runtime"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/loadbalance"
	"repro/internal/matching"
	"repro/internal/sched"
)

// parallelWorkers normalises the Parallel option shared by the async modes:
// < 0 means GOMAXPROCS, 0 and 1 mean serial.
func parallelWorkers(p int) int {
	if p < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// AsyncOptions configures ClusterAsyncGossip.
type AsyncOptions struct {
	// Ticks is the number of asynchronous firings; 0 derives the budget
	// from Params.Rounds so the run performs as many half-exchanges as the
	// synchronous protocol's expected matched pairs would (two firings per
	// pairwise averaging event, n·d̄/4 events per round).
	Ticks int
	// ClockSeed drives the firing schedule, independently of protocol
	// randomness. 0 is a valid stream.
	ClockSeed uint64
	// Model, when non-nil, injects substrate faults on the gossip pushes.
	// Dropped pushes lose the mass they carry — asynchronous gossip has no
	// two-sided abort — so conservation holds only when no messages are
	// dropped. Delays are harmless: the network flushes in-flight messages
	// when it quiesces and the final drain absorbs them.
	Model dist.DeliveryModel
	// Crashed marks nodes that never fire; pushes addressed to them are
	// dropped by the substrate. nil means no crashes.
	Crashed []bool
	// Transport selects the delivery transport, exactly as in DistOptions;
	// the asynchronous transcript is equally transport-independent. Async
	// execution runs on a single delivery shard, so a socket run dials
	// exactly one worker process regardless of Machines.
	Transport TransportSpec
	// Parallel, when >= 2 (or < 0 for GOMAXPROCS), executes the firing
	// schedule with the independent-set batch scheduler: pairwise
	// non-adjacent firings run concurrently on a sched.Pool while their
	// effects commit in serial schedule order, so the run — labels, traffic
	// counters, ClockSeed semantics, mass — is bit-identical to the serial
	// execution (pinned by TestAsyncGossipParallelMatchesSerial). 0 and 1
	// mean serial.
	Parallel int
}

// gossipMsg is the wire format of the asynchronous mode: half of the
// sender's load state and half of its push-sum weight, both absorbed
// additively by the receiver.
type gossipMsg struct {
	state  State
	weight float64
}

// ClusterAsyncGossip runs the algorithm in the asynchronous time model of
// Boyd et al. on real dist messages, using weighted push-sum gossip (Kempe,
// Dobra & Gehrke): nodes fire one at a time on a randomized clock; a firing
// node absorbs the (state, weight) pushes accumulated in its mailbox, keeps
// half of its own state and weight, and pushes the other halves to a
// uniformly random neighbour. Every node starts with weight 1, so within a
// cluster S the ratio estimate s_v(id)/w_v converges to Σs/Σw = 1/|S| —
// the same target as the synchronous load — while total mass Σ_v s_v is
// conserved to the bit (halving is exact). The query procedure therefore
// thresholds the ratio estimates with the unchanged Threshold.
//
// Seeding, node IDs and the query are shared with the synchronous engines
// (same Engine constructor, same per-node streams), so the comparison in
// experiment F9 isolates exactly one variable: the synchrony of the
// averaging schedule. Network traffic is accounted by the same counters as
// ClusterDistributed — every push counts its state payload plus one weight
// word.
//
// Two firings correspond to one synchronous pairwise averaging event (a
// matched pair moves half the difference in both directions; a push moves
// half of one side), which is how callers align the two clocks.
func ClusterAsyncGossip(g *graph.Graph, params Params, opt AsyncOptions) (*DistResult, error) {
	if opt.Ticks < 0 {
		return nil, fmt.Errorf("core: Ticks %d < 0", opt.Ticks)
	}
	if opt.Crashed != nil && len(opt.Crashed) != g.N() {
		return nil, fmt.Errorf("core: Crashed length %d for n=%d", len(opt.Crashed), g.N())
	}
	eng, err := NewEngine(g, params)
	if err != nil {
		return nil, err
	}
	p := eng.params
	n := g.N()
	ticks := opt.Ticks
	if ticks == 0 {
		ticks = 2 * loadbalance.MatchingEventBudget(n, matching.DBar(p.DegreeBound), p.Rounds)
	}

	// Async execution is sequential (see dist.RunAsync); one shard keeps the
	// substrate bookkeeping minimal.
	net := dist.NewNetwork[gossipMsg](n, 1)
	defer net.Close()
	transport, closeTransport, err := openTransport(opt.Transport, net.Workers(), GossipPayload, gossipCodec{})
	if err != nil {
		return nil, err
	}
	defer closeTransport()
	if transport != nil {
		net.SetTransport(transport)
	}
	if opt.Model != nil {
		net.SetDeliveryModel(opt.Model)
	}
	for v, down := range opt.Crashed {
		if down {
			net.Crash(v)
		}
	}

	weights := make([]float64, n)
	for v := range weights {
		weights[v] = 1
	}
	absorb := func(v int) (State, float64) {
		st, w := eng.states[v], weights[v]
		for _, e := range net.Recv(v) {
			st = AddStates(st, e.Body.state)
			w += e.Body.weight
		}
		return st, w
	}
	// The firing callback confines every write to node v's own slots —
	// states[v], weights[v], maxSeen[v], rngs[v] — which is what lets the
	// batch scheduler run non-adjacent firings concurrently. MaxStateSize
	// in particular is tracked per node and folded after the run: the
	// global running max would be a data race under speculation, and the
	// max of per-node maxima is the same number.
	maxSeen := make([]int, n)
	var sch dist.AsyncSched
	if workers := parallelWorkers(opt.Parallel); workers > 1 {
		pool := sched.NewPool(workers)
		defer pool.Close()
		// Conflict oracle: a firing of v pushes only to graph neighbours
		// of v, so graph adjacency is exactly the batching relation.
		sch = dist.AsyncSched{Adjacency: g.Neighbors, Pool: pool}
	}
	net.RunAsyncSched(ticks, opt.ClockSeed^0x5851f42d4c957f2d, sch, func(v int) {
		st, w := absorb(v)
		if d := g.Degree(v); d > 0 {
			st = st.Halve()
			w /= 2
			// The kept and pushed halves are identical; states are immutable
			// once built, so sharing the slice with the in-flight message is
			// safe.
			net.Send(v, g.Neighbor(v, eng.rngs[v].Intn(d)), gossipMsg{state: st, weight: w},
				1+int64(st.Words()))
		}
		if len(st) > maxSeen[v] {
			maxSeen[v] = len(st)
		}
		eng.states[v] = st
		weights[v] = w
	})
	for _, m := range maxSeen {
		if m > eng.stats.MaxStateSize {
			eng.stats.MaxStateSize = m
		}
	}
	// RunAsync flushed all in-flight (including delayed) messages into the
	// mailboxes when it quiesced; absorb them so no mass is left on the
	// wire — unless the model dropped it, this restores exact conservation.
	for v := 0; v < n; v++ {
		eng.states[v], weights[v] = absorb(v)
	}

	// Conservation is a property of the raw mass, measured before the query
	// rescale below.
	total := eng.TotalMass()
	// Query thresholds the push-sum estimate s_v/w_v, the async analogue of
	// the synchronous load (both converge to 1/|S| inside cluster S).
	for v := range eng.states {
		if weights[v] > 0 && weights[v] != 1 {
			eng.states[v] = eng.states[v].Scale(1 / weights[v])
		}
	}
	res := eng.Query()
	res.Stats.ProtocolWords = 0 // network accounting below is authoritative
	res.Stats.StateWords = 0
	return &DistResult{
		Result:          *res,
		NetworkMessages: net.Counter().Messages(),
		NetworkWords:    net.Counter().Words(),
		DroppedMessages: net.Counter().Dropped(),
		TotalMass:       total,
	}, nil
}
