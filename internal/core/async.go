package core

import (
	"fmt"
	"runtime"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/loadbalance"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/sched"
)

// parallelWorkers normalises the Parallel option shared by the async modes:
// < 0 means GOMAXPROCS, 0 and 1 mean serial.
func parallelWorkers(p int) int {
	if p < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// AsyncOptions configures ClusterAsyncGossip.
type AsyncOptions struct {
	// Ticks is the number of asynchronous firings; 0 derives the budget
	// from Params.Rounds so the run performs as many half-exchanges as the
	// synchronous protocol's expected matched pairs would (two firings per
	// pairwise averaging event, n·d̄/4 events per round).
	Ticks int
	// ClockSeed drives the firing schedule, independently of protocol
	// randomness. 0 is a valid stream.
	ClockSeed uint64
	// Model, when non-nil, injects substrate faults on the gossip pushes.
	// Dropped pushes lose the mass they carry — asynchronous gossip has no
	// two-sided abort — so conservation holds only when no messages are
	// dropped. Delays are harmless: the network flushes in-flight messages
	// when it quiesces and the final drain absorbs them.
	Model dist.DeliveryModel
	// Crashed marks nodes that never fire; pushes addressed to them are
	// dropped by the substrate. nil means no crashes.
	Crashed []bool
	// Transport selects the delivery transport, exactly as in DistOptions;
	// the asynchronous transcript is equally transport-independent. Async
	// execution runs on a single delivery shard, so a socket run dials
	// exactly one worker process regardless of Machines.
	Transport TransportSpec
	// Parallel, when >= 2 (or < 0 for GOMAXPROCS), executes the firing
	// schedule with the independent-set batch scheduler: pairwise
	// non-adjacent firings run concurrently on a sched.Pool while their
	// effects commit in serial schedule order, so the run — labels, traffic
	// counters, ClockSeed semantics, mass — is bit-identical to the serial
	// execution (pinned by TestAsyncGossipParallelMatchesSerial). 0 and 1
	// mean serial.
	Parallel int
	// MailboxCap bounds every node's mailbox at delivery time
	// (dist.Network.SetMailboxCap): a push arriving at a full mailbox is
	// rejected deterministically (reject-newest) and tallied in
	// DistResult.RejectedMessages. Plain push-sum loses the mass a rejected
	// push carries, exactly as it does for a dropped one; Reliable restores
	// it. 0 means unbounded.
	MailboxCap int
	// Reliable layers a retransmit-on-timeout protocol over the gossip:
	// every push carries a per-sender sequence number and is acknowledged by
	// the receiver when absorbed; a sender re-fires an unacked push after
	// RetransmitAfter of its own firings, receivers de-duplicate by
	// (sender, seq), and when the run quiesces the mass of pushes that never
	// got through — lost, rejected, or addressed to crashed nodes — is
	// folded back into the sender. Total mass is therefore conserved exactly
	// under any (DropProb, MailboxCap, Crashed) combination, at the price of
	// ack and retransmission traffic (all of it accounted by the network
	// counters). Params.PruneEpsilon additionally acts as the per-message
	// state budget: halved entries below it are withheld from the push and
	// kept whole by the sender, bounding message size under pressure without
	// destroying mass.
	Reliable bool
	// RetransmitAfter is the reliable layer's timeout, measured on the
	// sender's own firing clock (retransmit when this many of its own
	// firings have elapsed without an ack — the asynchronous analogue of an
	// RTO, since a node acts only when it fires). 0 means 1: retransmit at
	// every firing until acked, the stop-and-wait discipline. Eager
	// retransmission costs wire traffic (the ack round trip spans about two
	// firing intervals, so even a delivered push is typically re-sent twice
	// before its ack lands — duplicates collapse at the receiver), but it
	// is what keeps accuracy flat under loss: with a lazier timeout the
	// restored mass arrives firings late and re-mixes poorly within the
	// fixed tick budget, degrading the clustering even though conservation
	// stays exact. Raise it to trade accuracy under loss for less
	// retransmission traffic. Each unsuccessful retransmission of one push
	// doubles its own wait (exponential backoff), so a destination that
	// never acks — a crashed neighbour — costs logarithmically many
	// retries, not one per firing. Only meaningful with Reliable.
	RetransmitAfter int
	// Partition selects the cost split for the engine-side parallel scans
	// (seed query, label densify). The asynchronous network runs on a
	// single delivery shard, so here the spec shapes scan placement on the
	// batch scheduler's pool rather than network ownership: degree installs
	// degree-weighted scan bounds up front, adaptive additionally re-splits
	// along the final labels before the query. Pure environment — the
	// transcript is bit-identical across all modes.
	Partition PartitionSpec
	// Obs, when non-nil, attaches the observability layer: a run_async span
	// and batch-commit instants on the tick clock, per-logical-shard traffic
	// metrics, and one end-of-run state snapshot. The deterministic
	// registry's snapshot is bit-identical across Parallel, Transport, and
	// batch schedules; observation never changes the run. Partition balance
	// gauges go to the Env registry (worker-shard cells).
	Obs *obs.Observer
}

// gossipKind discriminates asynchronous-mode messages.
type gossipKind uint8

const (
	// gossipPush carries half of the sender's state and weight.
	gossipPush gossipKind = iota
	// gossipAck confirms absorption of the push with the echoed seq
	// (reliable mode only; carries no mass).
	gossipAck
)

// gossipMsg is the wire format of the asynchronous mode: half of the
// sender's load state and half of its push-sum weight, both absorbed
// additively by the receiver. The state payload takes one of two shapes,
// matching the engine's backend: the sparse backend sends sorted (seed ID,
// value) entries in state; the dense backend sends parallel cols/vals
// arrays, where cols index the run's fixed seed-interning table (columns
// ascend, so coordinate order matches the sparse encoding). A message
// carries at most one shape; both empty means a pure weight push or an ack.
// In reliable mode seq numbers the sender's pushes so acks can name them and
// receivers can de-duplicate retransmissions; plain mode leaves kind/seq
// zero.
type gossipMsg struct {
	kind   gossipKind
	seq    uint32
	state  State     // sparse payload
	cols   []int32   // dense payload: interned seed columns, ascending
	vals   []float64 // dense payload: values aligned with cols
	weight float64
}

// payloadWords returns the state words the payload occupies — two per
// coordinate in either shape, so the network word counters are identical
// across backends.
func (m *gossipMsg) payloadWords() int64 { return 2 * int64(len(m.state)+len(m.cols)) }

// pendingPush is one unacknowledged reliable push: enough to re-fire it
// verbatim and to reclaim its mass if it never gets through. Exactly one of
// state or cols/vals is set, matching the backend that fired it.
type pendingPush struct {
	seq    uint32
	to     int32
	sentAt int32 // sender's firing count at the last (re)transmission
	// attempts counts retransmissions: each one doubles the wait before the
	// next (exponential backoff), so a destination that never acks — a
	// crashed neighbour, a persistently full mailbox — costs O(log K)
	// retransmissions over K firings instead of O(K), while the first
	// retry stays as eager as RetransmitAfter asks.
	attempts uint8
	state    State
	cols     []int32
	vals     []float64
	weight   float64
}

// pushKey folds (sender, seq) into the de-duplication key.
func pushKey(from int, seq uint32) uint64 { return uint64(from)<<32 | uint64(seq) }

// splitForPush applies the per-message state budget (Params.PruneEpsilon —
// honoured by BOTH the plain and reliable gossip modes): entries of the
// halved state below eps are withheld from the push and the sender keeps
// their full pre-halve value (doubling the half back is exact in binary
// floating point), so messages stay bounded under pressure without
// destroying mass. With no budget — or when every entry clears it — the
// kept and pushed halves share one slice: states are immutable once built,
// so sharing with the in-flight message is safe.
func splitForPush(half State, eps float64) (push, keep State) {
	if eps <= 0 {
		return half, half
	}
	below := false
	for _, e := range half {
		if e.Val < eps {
			below = true
			break
		}
	}
	if !below {
		return half, half
	}
	push = make(State, 0, len(half))
	keep = make(State, len(half))
	copy(keep, half)
	for i, e := range half {
		if e.Val >= eps {
			push = append(push, e)
		} else {
			keep[i].Val = 2 * e.Val
		}
	}
	return push, keep
}

// ClusterAsyncGossip runs the algorithm in the asynchronous time model of
// Boyd et al. on real dist messages, using weighted push-sum gossip (Kempe,
// Dobra & Gehrke): nodes fire one at a time on a randomized clock; a firing
// node absorbs the (state, weight) pushes accumulated in its mailbox, keeps
// half of its own state and weight, and pushes the other halves to a
// uniformly random neighbour. Every node starts with weight 1, so within a
// cluster S the ratio estimate s_v(id)/w_v converges to Σs/Σw = 1/|S| —
// the same target as the synchronous load — while total mass Σ_v s_v is
// conserved to the bit (halving is exact). The query procedure therefore
// thresholds the ratio estimates with the unchanged Threshold.
//
// Seeding, node IDs and the query are shared with the synchronous engines
// (same Engine constructor, same per-node streams), so the comparison in
// experiment F9 isolates exactly one variable: the synchrony of the
// averaging schedule. Network traffic is accounted by the same counters as
// ClusterDistributed — every push counts its state payload plus one weight
// word.
//
// Two firings correspond to one synchronous pairwise averaging event (a
// matched pair moves half the difference in both directions; a push moves
// half of one side), which is how callers align the two clocks.
//
// Params.PruneEpsilon, when positive, acts as a per-message state budget in
// BOTH the plain and reliable modes: halved entries below it are withheld
// from the push and kept whole by the sender (splitForPush), changing
// message contents and word counts relative to a zero epsilon but never
// destroying mass — unlike the synchronous engines, where pruning discards.
func ClusterAsyncGossip(g *graph.Graph, params Params, opt AsyncOptions) (*DistResult, error) {
	if opt.Ticks < 0 {
		return nil, fmt.Errorf("core: Ticks %d < 0", opt.Ticks)
	}
	if opt.Crashed != nil && len(opt.Crashed) != g.N() {
		return nil, fmt.Errorf("core: Crashed length %d for n=%d", len(opt.Crashed), g.N())
	}
	if opt.MailboxCap < 0 {
		return nil, fmt.Errorf("core: MailboxCap %d < 0", opt.MailboxCap)
	}
	if opt.RetransmitAfter < 0 || opt.RetransmitAfter > 1<<30 {
		return nil, fmt.Errorf("core: RetransmitAfter %d outside [0, 2^30]", opt.RetransmitAfter)
	}
	var sch dist.AsyncSched
	if workers := parallelWorkers(opt.Parallel); workers > 1 {
		pool := sched.NewPool(workers)
		defer pool.Close()
		// Conflict oracle: a firing of v addresses only graph neighbours of
		// v (pushes, acks, and retransmissions all target neighbours), so
		// graph adjacency is exactly the batching relation. The same pool
		// also partitions the engine's seeding and query scans.
		sch = dist.AsyncSched{Adjacency: g.Neighbors, Pool: pool}
	}
	eng, err := NewEngineWithPool(g, params, sch.Pool)
	if err != nil {
		return nil, err
	}
	p := eng.params
	n := g.N()
	// Partitioning in the async mode shapes the engine's scan placement (the
	// network below is single-shard by construction): weighted bounds over
	// the batch scheduler's pool, re-derived from the final labels in
	// adaptive mode just before the query. Scan bounds are load placement
	// only, so the transcript is unchanged by every mode.
	if _, err := ParsePartitionSpec(opt.Partition.Mode); err != nil {
		return nil, err
	}
	costs := opt.Partition.costs(g)
	scanWorkers := 1
	if sch.Pool != nil {
		scanWorkers = sch.Pool.Size()
	}
	scanBounds := sched.PartitionWeighted(costs, scanWorkers)
	if sch.Pool != nil {
		eng.SetScanBounds(scanBounds)
	}
	publishSplit(opt.Obs, costs, scanBounds)
	ticks := opt.Ticks
	if ticks == 0 {
		ticks = 2 * loadbalance.MatchingEventBudget(n, matching.DBar(p.DegreeBound), p.Rounds)
	}

	// Async execution is sequential (see dist.RunAsync); one shard keeps the
	// substrate bookkeeping minimal.
	net := dist.NewNetwork[gossipMsg](n, 1)
	defer net.Close()
	net.SetObserver(opt.Obs)
	eng.SetObserver(opt.Obs)
	transport, closeTransport, err := openTransport(opt.Transport, net.Workers(), net.Bounds(), GossipPayload, gossipCodec{}, opt.Obs)
	if err != nil {
		return nil, err
	}
	defer closeTransport()
	if transport != nil {
		net.SetTransport(transport)
	}
	if opt.Model != nil {
		net.SetDeliveryModel(opt.Model)
	}
	if opt.MailboxCap > 0 {
		net.SetMailboxCap(opt.MailboxCap)
	}
	for v, down := range opt.Crashed {
		if down {
			net.Crash(v)
		}
	}

	weights := make([]float64, n)
	for v := range weights {
		weights[v] = 1
	}
	// The firing callbacks confine every write to node v's own slots —
	// states[v] (or the dense row of v), weights[v], maxSeen[v], rngs[v],
	// and in reliable mode fired[v], seqs[v], pending[v], absorbed[v] —
	// which is what lets the batch scheduler run non-adjacent firings
	// concurrently. MaxStateSize in particular is tracked per node and
	// folded after the run: the global running max would be a data race
	// under speculation, and the max of per-node maxima is the same number.
	maxSeen := make([]int, n)
	// Backend dispatch. The four hooks below are the only places the state
	// representation shows: absorb folds a push payload into v's state; fire
	// performs the push-sum halving step — halve every coordinate (x*0.5),
	// withhold halves below the PruneEpsilon message budget at restored full
	// value (2*(x*0.5), exact), draw the destination from v's stream — and
	// returns the outgoing payload plus the destination (-1 for an isolated
	// node, which keeps everything and draws nothing); size is the current
	// entry count (maxSeen accounting); scaleNode applies the final 1/weight
	// rescale. Both backends perform the same floating-point operations on
	// the same coordinates in the same (ascending seed ID) order and consume
	// identical randomness, so the transcript — messages, word counts, mass,
	// labels — is bit-identical across backends.
	indptr, indices := g.CSR()
	var (
		absorb    func(v int, m *gossipMsg)
		fire      func(v int) (gossipMsg, int)
		size      func(v int) int
		scaleNode func(v int, c float64)
	)
	if den := eng.dense; den != nil {
		absorb = func(v int, m *gossipMsg) {
			row := den.row(v)
			for i, c := range m.cols {
				if m.vals[i] != 0 && row[c] == 0 {
					den.nnz[v]++
				}
				row[c] += m.vals[i]
			}
		}
		fire = func(v int) (gossipMsg, int) {
			off := indptr[v]
			d := int(indptr[v+1] - off)
			if d == 0 {
				return gossipMsg{}, -1
			}
			row := den.row(v)
			var cols []int32
			var vals []float64
			for c, x := range row {
				if x == 0 {
					continue
				}
				h := x * 0.5
				if p.PruneEpsilon > 0 && h < p.PruneEpsilon {
					row[c] = 2 * h
					continue
				}
				row[c] = h
				cols = append(cols, int32(c))
				vals = append(vals, h)
			}
			return gossipMsg{cols: cols, vals: vals},
				int(indices[off+int32(eng.rngs[v].Intn(d))])
		}
		size = func(v int) int { return int(den.nnz[v]) }
		scaleNode = func(v int, c float64) {
			row := den.row(v)
			for i := range row {
				row[i] *= c
			}
		}
	} else {
		absorb = func(v int, m *gossipMsg) {
			eng.states[v] = AddStates(eng.states[v], m.state)
		}
		fire = func(v int) (gossipMsg, int) {
			off := indptr[v]
			d := int(indptr[v+1] - off)
			if d == 0 {
				return gossipMsg{}, -1
			}
			half := eng.states[v].Halve()
			out, keep := splitForPush(half, p.PruneEpsilon)
			eng.states[v] = keep
			return gossipMsg{state: out},
				int(indices[off+int32(eng.rngs[v].Intn(d))])
		}
		size = func(v int) int { return len(eng.states[v]) }
		scaleNode = func(v int, c float64) {
			eng.states[v] = eng.states[v].Scale(c)
		}
	}
	var fn func(v int)
	// Reliable-mode per-node protocol state.
	var (
		fired    []int32
		seqs     []uint32
		pending  [][]pendingPush
		absorbed []map[uint64]struct{}
		// nextDue[v] is a conservative lower bound (on v's firing clock) of
		// the earliest retransmission due among pending[v]: entries only
		// move later (retransmission backs them off) or disappear (acks),
		// so skipping the scan while now < nextDue[v] can never delay a due
		// retransmission — it only spares the O(len(pending)) walk on
		// firings where nothing can be due, which is what keeps a node
		// with a long-lived pending tail (e.g. toward a crashed neighbour)
		// from paying a full scan per firing.
		nextDue []int64
	)
	// timeout and all due arithmetic are int64: RetransmitAfter up to 2^30
	// shifted by the backoff cap of 20 stays well inside the range.
	timeout := int64(opt.RetransmitAfter)
	if timeout == 0 {
		timeout = 1
	}
	// backoffWait returns the wait before the next retransmission of an
	// entry: the base timeout doubled per attempt already made.
	backoffWait := func(attempts uint8) int64 {
		shift := attempts
		if shift > 20 {
			shift = 20
		}
		return timeout << shift
	}
	// ackPending drops the pending entry the ack names (a stale duplicate
	// ack after the entry is gone is a no-op).
	ackPending := func(v int, seq uint32) {
		pend := pending[v]
		for i := range pend {
			if pend[i].seq == seq {
				pending[v] = append(pend[:i], pend[i+1:]...)
				return
			}
		}
	}
	// absorbOnce de-duplicates by (sender, seq) and returns whether this
	// sighting is the first — only then does the push's mass count.
	absorbOnce := func(v, from int, seq uint32) bool {
		m := absorbed[v]
		if m == nil {
			m = make(map[uint64]struct{})
			absorbed[v] = m
		}
		key := pushKey(from, seq)
		if _, dup := m[key]; dup {
			return false
		}
		m[key] = struct{}{}
		return true
	}
	if !opt.Reliable {
		fn = func(v int) {
			for _, e := range net.Recv(v) {
				absorb(v, &e.Body)
				weights[v] += e.Body.weight
			}
			out, to := fire(v)
			if to >= 0 {
				hw := weights[v] / 2
				weights[v] = hw
				out.weight = hw
				net.Send(v, to, out, 1+out.payloadWords())
			}
			if s := size(v); s > maxSeen[v] {
				maxSeen[v] = s
			}
		}
	} else {
		fired = make([]int32, n)
		seqs = make([]uint32, n)
		pending = make([][]pendingPush, n)
		absorbed = make([]map[uint64]struct{}, n)
		nextDue = make([]int64, n)
		fn = func(v int) {
			fired[v]++
			now := fired[v]
			for _, e := range net.Recv(v) {
				switch e.Body.kind {
				case gossipPush:
					if absorbOnce(v, e.From, e.Body.seq) {
						absorb(v, &e.Body)
						weights[v] += e.Body.weight
					}
					// (Re-)ack every sighting: the previous ack may itself
					// have been dropped or rejected. Acks go back to the
					// pushing neighbour, so the batching adjacency holds.
					net.Send(v, e.From, gossipMsg{kind: gossipAck, seq: e.Body.seq}, 1)
				case gossipAck:
					ackPending(v, e.Body.seq)
				}
			}
			// Retransmit unacked pushes whose backed-off timeout elapsed on
			// v's own firing clock, verbatim (same seq, same payload) so
			// duplicates collapse at the receiver; recompute the due bound
			// while walking.
			if int64(now) >= nextDue[v] && len(pending[v]) > 0 {
				minDue := int64(1) << 62
				for i := range pending[v] {
					pp := &pending[v][i]
					due := int64(pp.sentAt) + backoffWait(pp.attempts)
					if int64(now) >= due {
						pp.sentAt = now
						if pp.attempts < 255 {
							pp.attempts++
						}
						re := gossipMsg{kind: gossipPush, seq: pp.seq, state: pp.state, cols: pp.cols, vals: pp.vals, weight: pp.weight}
						net.Send(v, int(pp.to), re, 1+re.payloadWords())
						due = int64(now) + backoffWait(pp.attempts)
					}
					if due < minDue {
						minDue = due
					}
				}
				nextDue[v] = minDue
			}
			out, to := fire(v)
			if to >= 0 {
				hw := weights[v] / 2
				weights[v] = hw
				seqs[v]++
				out.kind = gossipPush
				out.seq = seqs[v]
				out.weight = hw
				pending[v] = append(pending[v], pendingPush{seq: seqs[v], to: int32(to), sentAt: now, state: out.state, cols: out.cols, vals: out.vals, weight: hw})
				if due := int64(now) + timeout; due < nextDue[v] || len(pending[v]) == 1 {
					nextDue[v] = due
				}
				net.Send(v, to, out, 1+out.payloadWords())
			}
			if s := size(v); s > maxSeen[v] {
				maxSeen[v] = s
			}
		}
	}
	net.RunAsyncSched(ticks, opt.ClockSeed^0x5851f42d4c957f2d, sch, fn)
	for _, m := range maxSeen {
		if m > eng.stats.MaxStateSize {
			eng.stats.MaxStateSize = m
		}
	}
	// RunAsync flushed all in-flight (including delayed) messages into the
	// mailboxes when it quiesced; absorb them so no mass is left on the
	// wire — unless the substrate destroyed it, this restores exact
	// conservation. Reliable mode de-duplicates retransmitted copies and
	// ignores acks (they carry no mass).
	for v := 0; v < n; v++ {
		for _, e := range net.Recv(v) {
			if e.Body.kind != gossipPush {
				continue
			}
			if opt.Reliable && !absorbOnce(v, e.From, e.Body.seq) {
				continue
			}
			absorb(v, &e.Body)
			weights[v] += e.Body.weight
		}
	}
	if opt.Reliable {
		// Reclaim: a pending push whose payload the receiver never absorbed
		// (not even via the drain above) was destroyed in every copy —
		// dropped, rejected, or addressed to a crashed node. Fold its mass
		// back into the sender; an unacked-but-absorbed push (the ack was
		// the casualty) is left alone. This is the step that makes
		// conservation exact under arbitrary loss.
		for v := range pending {
			for _, pp := range pending[v] {
				if m := absorbed[pp.to]; m != nil {
					if _, ok := m[pushKey(v, pp.seq)]; ok {
						continue
					}
				}
				absorb(v, &gossipMsg{state: pp.state, cols: pp.cols, vals: pp.vals})
				weights[v] += pp.weight
			}
		}
	}

	// Conservation is a property of the raw mass, measured before the query
	// rescale below.
	total := eng.TotalMass()
	if o := opt.Obs; o != nil {
		// End-of-run observation on the raw (pre-rescale) states, after the
		// drain and reclaim: bit-identical across Parallel and Transport.
		eng.observeRound(obs.I("ticks", int64(ticks)))
		o.Snap(int64(ticks))
	}
	// Query thresholds the push-sum estimate s_v/w_v, the async analogue of
	// the synchronous load (both converge to 1/|S| inside cluster S).
	for v := 0; v < n; v++ {
		if weights[v] > 0 && weights[v] != 1 {
			scaleNode(v, 1/weights[v])
		}
	}
	if opt.Partition.Mode == PartitionAdaptive && sch.Pool != nil {
		// Label-driven re-split for the final query scan: the raw threshold
		// winners are committed state, so the bounds are schedule-independent.
		thr := Threshold(p.Beta, n, p.ThresholdScale)
		scanBounds = labelBounds(eng.rawLabelScan(thr), costs, scanWorkers)
		eng.SetScanBounds(scanBounds)
		publishSplit(opt.Obs, costs, scanBounds)
	}
	res := eng.Query()
	res.Stats.ProtocolWords = 0 // network accounting below is authoritative
	res.Stats.StateWords = 0
	scMax, scMean := costStats(shardCosts(costs, scanBounds))
	return &DistResult{
		Result:           *res,
		NetworkMessages:  net.Counter().Messages(),
		NetworkWords:     net.Counter().Words(),
		DroppedMessages:  net.Counter().Dropped(),
		RejectedMessages: net.Counter().Rejected(),
		TotalMass:        total,
		PartitionBounds:  scanBounds,
		ShardCostMax:     scMax,
		ShardCostMean:    scMean,
	}, nil
}
