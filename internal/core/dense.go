package core

import "sort"

// State-backend selectors for Params.StateBackend.
const (
	// BackendAuto (also the empty string) picks the dense backend when the
	// planted seed set is small enough for the contiguous block to pay off
	// and fit comfortably in memory (see denseAuto), and the sparse backend
	// otherwise. The choice never changes results — the two backends are
	// bit-identical (pinned by the equivalence and fuzz suites) — only the
	// speed and footprint of the run.
	BackendAuto = "auto"
	// BackendSparse forces the per-node sorted []Entry representation.
	BackendSparse = "sparse"
	// BackendDense forces the contiguous structure-of-arrays representation.
	BackendDense = "dense"
)

// Auto-heuristic cutoffs. The dense block costs n·k·8 bytes and every merge
// or firing walks all k columns, so it pays off exactly when k — the number
// of planted seeds, about (3/β)·ln(1/β) in expectation regardless of n —
// stays small while states densify (after ~log n averaging rounds a sparse
// state holds most of the k coordinates anyway, at 16 bytes per entry plus
// an allocation per merge against the dense row's 8 bytes per column and
// none). Sparse wins when seeds are many and states stay short: k above
// maxDenseSeeds (a tiny β), or a block above maxDenseCells (1 GiB of
// float64) that would dwarf the working set of short-lived sparse states.
const (
	maxDenseSeeds = 4096
	maxDenseCells = 1 << 27
)

// denseAuto is the BackendAuto decision: dense iff there is at least one
// seed, the column count is modest, and the block fits in maxDenseCells.
func denseAuto(n, seeds int) bool {
	return seeds > 0 && seeds <= maxDenseSeeds && n*seeds <= maxDenseCells
}

// denseStates is the structure-of-arrays state backend: one contiguous
// row-major []float64 block holding k seed-weight columns per node, with a
// fixed interning table mapping seed IDs to columns. Columns are ordered by
// ascending seed ID, so an ascending column walk visits coordinates in
// exactly the order the sparse backend's sorted []Entry does — which is what
// keeps every accumulation (merge sums, mass totals, threshold scans)
// bit-identical between the backends. The table is fixed at seeding time:
// diffusion only ever moves mass between existing coordinates, never mints
// new IDs.
//
// nnz tracks each node's nonzero-coordinate count, mirroring the sparse
// backend's len(state) for word accounting and MaxStateSize. The one
// documented divergence: a sparse state can carry an explicit zero-valued
// entry (only producible by halving the smallest subnormal until it
// underflows, ~1074 merges deep — unreachable at experiment scale), which
// the dense row cannot represent; everything else is exact.
type denseStates struct {
	k   int            // columns (distinct planted seed IDs)
	ids []uint64       // ascending; column c holds seed ID ids[c]
	col map[uint64]int // inverse of ids
	w   []float64      // n·k row-major weight block
	nnz []int32        // per-node nonzero count (sparse len mirror)
}

// newDenseStates builds the block from the seeding outcome: the distinct
// seed IDs become the interning table and each seed node plants its unit
// load. Seed nodes that collided on an ID (different nodes, same draw —
// vanishingly rare but legal) share a column, exactly as their sparse states
// share the ID.
func newDenseStates(n int, seedNodes []int, nodeIDs []uint64) *denseStates {
	ids := make([]uint64, 0, len(seedNodes))
	for _, v := range seedNodes {
		ids = append(ids, nodeIDs[v])
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	k := 0
	for i, id := range ids {
		if i == 0 || ids[k-1] != id {
			ids[k] = id
			k++
		}
	}
	ids = ids[:k]
	col := make(map[uint64]int, k)
	for c, id := range ids {
		col[id] = c
	}
	d := &denseStates{
		k:   k,
		ids: ids,
		col: col,
		w:   make([]float64, n*k),
		nnz: make([]int32, n),
	}
	for _, v := range seedNodes {
		d.row(v)[col[nodeIDs[v]]] = 1
		d.nnz[v] = 1
	}
	return d
}

// row returns node v's weight row (capacity-clipped so an append can never
// bleed into the neighbouring row).
func (d *denseStates) row(v int) []float64 {
	return d.w[v*d.k : (v+1)*d.k : (v+1)*d.k]
}

// mergePair applies the averaging rule to a matched pair in place — the
// dense counterpart of mergeForStorage on both states at once. Walking
// columns ascending reproduces the sparse sorted-merge order; a coordinate
// absent on one side is a zero cell and (x+0)/2 == x/2 exactly, so the
// written values are bit-identical to MergeStates. With eps > 0, pruning is
// zeroing: merged values below eps become 0, mirroring the sparse drop.
// It returns the pair's pre-merge word count (the message-size accounting
// the sparse path reads off Words() before merging) and the shared post-merge
// entry count.
func (d *denseStates) mergePair(u, v int, eps float64) (words int64, size int) {
	ru, rv := d.row(u), d.row(v)
	words = 2 * int64(d.nnz[u]+d.nnz[v])
	nz := 0
	if eps > 0 {
		for c := range ru {
			m := (ru[c] + rv[c]) / 2
			if m < eps {
				m = 0
			} else {
				nz++
			}
			ru[c] = m
			rv[c] = m
		}
	} else {
		for c := range ru {
			m := (ru[c] + rv[c]) / 2
			if m != 0 {
				nz++
			}
			ru[c] = m
			rv[c] = m
		}
	}
	d.nnz[u], d.nnz[v] = int32(nz), int32(nz)
	return words, nz
}

// sparseRow materialises node v's row as a sorted sparse State (snapshot,
// not a view) — the bridge for States() and other sparse-shaped consumers.
func (d *denseStates) sparseRow(v int) State {
	n := d.nnz[v]
	if n == 0 {
		return nil
	}
	out := make(State, 0, n)
	for c, x := range d.row(v) {
		if x != 0 {
			out = append(out, Entry{ID: d.ids[c], Val: x})
		}
	}
	return out
}
