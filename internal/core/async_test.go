package core

import (
	"math"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
)

func TestAsyncGossipConservesMassExactly(t *testing.T) {
	// Push-sum halving is exact in binary floating point and the final
	// drain absorbs in-flight pushes, so on a fault-free substrate the raw
	// mass equals the seed count to the bit (tolerance guards summation
	// order only).
	r := rng.New(101)
	p, err := gen.ClusteredRing(2, 60, 16, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterAsyncGossip(p.G, Params{Beta: 0.5, Rounds: 40, Seed: 3}, AsyncOptions{ClockSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(len(res.Seeds))
	if math.Abs(res.TotalMass-want) > 1e-9*want {
		t.Errorf("total mass %v, want %v", res.TotalMass, want)
	}
	if res.NetworkMessages == 0 || res.NetworkWords == 0 {
		t.Error("async gossip sent no accounted traffic")
	}
}

func TestAsyncGossipDelayOnlyModelConservesMass(t *testing.T) {
	// Delays reorder pushes but never destroy them: the network flushes
	// in-flight messages at quiesce and the final drain absorbs them, so a
	// delay-only model must conserve mass exactly and lose zero messages.
	r := rng.New(113)
	p, err := gen.ClusteredRing(2, 60, 16, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterAsyncGossip(p.G, Params{Beta: 0.5, Rounds: 30, Seed: 7}, AsyncOptions{
		ClockSeed: 11,
		Model:     dist.LinkFaults{DelayProb: 0.5, MaxPhases: 4, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(len(res.Seeds))
	if math.Abs(res.TotalMass-want) > 1e-9*want {
		t.Errorf("total mass %v under delays, want %v", res.TotalMass, want)
	}
	if res.DroppedMessages != 0 {
		t.Errorf("delay-only model lost %d messages", res.DroppedMessages)
	}
}

func TestAsyncGossipDeterministic(t *testing.T) {
	r := rng.New(103)
	p, err := gen.ClusteredRing(2, 50, 12, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 30, Seed: 5}
	opt := AsyncOptions{Ticks: 2000, ClockSeed: 7}
	a, err := ClusterAsyncGossip(p.G, params, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterAsyncGossip(p.G, params, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Labels {
		if a.Labels[v] != b.Labels[v] {
			t.Fatalf("labels differ at node %d across identical runs", v)
		}
	}
	if a.NetworkMessages != b.NetworkMessages || a.NetworkWords != b.NetworkWords {
		t.Error("traffic accounting not reproducible")
	}
	// A different clock seed is a genuinely different execution: the word
	// total sums thousands of schedule-dependent state sizes, so a
	// collision would mean the clock stream is not actually plumbed in.
	c, err := ClusterAsyncGossip(p.G, params, AsyncOptions{Ticks: 2000, ClockSeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.NetworkWords == c.NetworkWords {
		t.Errorf("ClockSeed 7 and 8 produced identical word totals (%d) — firing schedule ignores ClockSeed", a.NetworkWords)
	}
}

func TestAsyncGossipClustersComparablyToSync(t *testing.T) {
	// The F9 claim at test scale: at an equal budget of averaging events,
	// message-level async gossip recovers the planted clusters about as
	// well as the synchronous matching protocol.
	r := rng.New(107)
	p, err := gen.ClusteredRing(2, 100, 40, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 60, Seed: 11}
	sync, err := ClusterDistributed(p.G, params, DistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	async, err := ClusterAsyncGossip(p.G, params, AsyncOptions{Ticks: 2 * sync.Stats.Matches, ClockSeed: 13})
	if err != nil {
		t.Fatal(err)
	}
	misAsync, err := metrics.MisclassificationRate(p.Truth, async.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if misAsync > 0.12 {
		t.Errorf("async misclassification %v at equal event budget", misAsync)
	}
}

func TestAsyncGossipValidation(t *testing.T) {
	g := gen.Cycle(6)
	if _, err := ClusterAsyncGossip(g, Params{Beta: 0.5, Rounds: 2}, AsyncOptions{Ticks: -1}); err == nil {
		t.Error("negative Ticks should fail")
	}
	if _, err := ClusterAsyncGossip(g, Params{Beta: 0.5, Rounds: 2}, AsyncOptions{Crashed: []bool{true}}); err == nil {
		t.Error("wrong Crashed length should fail")
	}
	if _, err := ClusterAsyncGossip(g, Params{Beta: 0, Rounds: 2}, AsyncOptions{}); err == nil {
		t.Error("bad params should fail")
	}
}

func TestAsyncGossipDefaultTickBudget(t *testing.T) {
	// Ticks == 0 must derive a positive budget from the round count and
	// actually run it.
	r := rng.New(109)
	p, err := gen.ClusteredRing(2, 50, 12, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterAsyncGossip(p.G, Params{Beta: 0.5, Rounds: 20, Seed: 21}, AsyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetworkMessages == 0 {
		t.Error("default tick budget ran no firings")
	}
}

// asyncFingerprint collapses a DistResult into the fields the parallel
// scheduler must reproduce bit for bit.
type asyncFingerprint struct {
	messages, words, dropped int64
	mass                     float64
	numLabels, maxState      int
}

func fingerprint(res *DistResult) asyncFingerprint {
	return asyncFingerprint{
		messages:  res.NetworkMessages,
		words:     res.NetworkWords,
		dropped:   res.DroppedMessages,
		mass:      res.TotalMass,
		numLabels: res.NumLabels,
		maxState:  res.Stats.MaxStateSize,
	}
}

// TestAsyncGossipParallelMatchesSerial pins the tentpole contract end to
// end: ClusterAsyncGossip with Parallel workers produces a byte-identical
// run to the serial execution — labels, raw labels, traffic counters,
// dropped tally, total mass, max state size — for clustered-ring and SBM
// instances, fault-free and under link faults, across GOMAXPROCS settings.
func TestAsyncGossipParallelMatchesSerial(t *testing.T) {
	ring, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(131))
	if err != nil {
		t.Fatal(err)
	}
	sbm, err := gen.SBMBalanced(2, 60, 14, 2, rng.New(137))
	if err != nil {
		t.Fatal(err)
	}
	faults := dist.LinkFaults{DropProb: 0.05, DelayProb: 0.3, MaxPhases: 2, Seed: 5}
	for _, tc := range []struct {
		name  string
		g     *gen.Planted
		model dist.DeliveryModel
	}{
		{"ring fault-free", ring, nil},
		{"ring link-faults", ring, faults},
		{"sbm fault-free", sbm, nil},
		{"sbm link-faults", sbm, faults},
	} {
		// The serial sparse run is the canonical transcript; every worker
		// count, GOMAXPROCS setting AND state backend must reproduce it.
		params := Params{Beta: 0.5, Rounds: 30, Seed: 19, StateBackend: BackendSparse}
		serial, err := ClusterAsyncGossip(tc.g.G, params, AsyncOptions{ClockSeed: 7, Model: tc.model})
		if err != nil {
			t.Fatal(err)
		}
		want := fingerprint(serial)
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
			for _, workers := range []int{2, 4, -1} {
				for _, backend := range []string{BackendSparse, BackendDense} {
					params.StateBackend = backend
					par, err := ClusterAsyncGossip(tc.g.G, params, AsyncOptions{
						ClockSeed: 7, Model: tc.model, Parallel: workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					id := tc.name + " procs=" + strconv.Itoa(procs) + " workers=" + strconv.Itoa(workers) + " " + backend
					if got := fingerprint(par); got != want {
						t.Errorf("%s: fingerprint %+v != serial %+v", id, got, want)
					}
					for v := range serial.Labels {
						if par.Labels[v] != serial.Labels[v] || par.RawLabels[v] != serial.RawLabels[v] {
							t.Fatalf("%s: node %d labelled (%d,%x), want (%d,%x)", id, v,
								par.Labels[v], par.RawLabels[v], serial.Labels[v], serial.RawLabels[v])
						}
					}
				}
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}

// TestAsyncGossipParallelWithCrashes: crashed nodes consume idle schedule
// steps in both executions; the parallel run must agree under crashes too.
func TestAsyncGossipParallelWithCrashes(t *testing.T) {
	p, err := gen.ClusteredRing(2, 40, 10, 1, rng.New(139))
	if err != nil {
		t.Fatal(err)
	}
	crashed := make([]bool, p.G.N())
	cr := rng.New(3)
	for v := range crashed {
		crashed[v] = cr.Bernoulli(0.1)
	}
	params := Params{Beta: 0.5, Rounds: 25, Seed: 29}
	serial, err := ClusterAsyncGossip(p.G, params, AsyncOptions{ClockSeed: 13, Crashed: crashed})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ClusterAsyncGossip(p.G, params, AsyncOptions{ClockSeed: 13, Crashed: crashed, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(par) != fingerprint(serial) {
		t.Errorf("fingerprint %+v != serial %+v", fingerprint(par), fingerprint(serial))
	}
	for v := range serial.Labels {
		if par.Labels[v] != serial.Labels[v] {
			t.Fatalf("node %d labelled %d, want %d", v, par.Labels[v], serial.Labels[v])
		}
	}
}
