package core

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph/gen"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestStateBackendValidation(t *testing.T) {
	g := gen.Cycle(6)
	if _, err := NewEngine(g, Params{Beta: 0.5, Rounds: 1, StateBackend: "flat"}); err == nil {
		t.Error("unknown StateBackend accepted")
	}
	for _, b := range []string{"", BackendAuto, BackendSparse, BackendDense} {
		if _, err := NewEngine(g, Params{Beta: 0.5, Rounds: 1, StateBackend: b}); err != nil {
			t.Errorf("StateBackend %q rejected: %v", b, err)
		}
	}
}

func TestBackendSelection(t *testing.T) {
	p, err := gen.ClusteredRing(2, 40, 10, 1, rng.New(311))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(backend string) *Engine {
		e, err := NewEngine(p.G, Params{Beta: 0.5, Rounds: 5, Seed: 7, StateBackend: backend})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	// This instance plants a handful of seeds, so auto must pick dense.
	if got := mk(BackendAuto).Backend(); got != BackendDense {
		t.Errorf("auto resolved to %q on a small seed set, want dense", got)
	}
	if got := mk(BackendSparse).Backend(); got != BackendSparse {
		t.Errorf("forced sparse resolved to %q", got)
	}
	if got := mk(BackendDense).Backend(); got != BackendDense {
		t.Errorf("forced dense resolved to %q", got)
	}
	// The auto cutoffs themselves.
	for _, tc := range []struct {
		n, seeds int
		want     bool
	}{
		{100, 0, false},                      // no seeds: nothing to intern
		{100, 5, true},                       //
		{100, maxDenseSeeds + 1, false},      // too many columns
		{maxDenseCells, 2, false},            // block over the cell budget
		{maxDenseCells / 2, 2, true},         // exactly at it is fine
		{maxDenseSeeds, maxDenseSeeds, true}, // k² cells, tiny
	} {
		if got := denseAuto(tc.n, tc.seeds); got != tc.want {
			t.Errorf("denseAuto(%d, %d) = %v, want %v", tc.n, tc.seeds, got, tc.want)
		}
	}
}

// TestDenseSparseEngineEquivalence pins the tentpole contract on the
// synchronous engine: for the same graph and Params, the dense backend
// reproduces the sparse run bit for bit — IDs, seeds, labels, stats
// (including word counts and MaxStateSize), total mass, and the full state
// snapshot — with and without pruning, serial and pooled.
func TestDenseSparseEngineEquivalence(t *testing.T) {
	ring, err := gen.ClusteredRing(2, 60, 16, 1, rng.New(313))
	if err != nil {
		t.Fatal(err)
	}
	sbm, err := gen.SBMBalanced(3, 50, 12, 2, rng.New(317))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []struct {
		name string
		p    *gen.Planted
	}{{"ring", ring}, {"sbm", sbm}} {
		for _, eps := range []float64{0, 1e-7} {
			for _, workers := range []int{0, 3} {
				params := Params{Beta: 0.3, Rounds: 25, Seed: 17, PruneEpsilon: eps}
				run := func(backend string) (*Engine, string) {
					params.StateBackend = backend
					var pool *sched.Pool
					if workers > 1 {
						pool = sched.NewPool(workers)
						defer pool.Close()
					}
					e, err := NewEngineWithPool(g.p.G, params, pool)
					if err != nil {
						t.Fatal(err)
					}
					e.Run(params.Rounds)
					return e, engineFingerprint(t, e)
				}
				se, sparse := run(BackendSparse)
				de, dense := run(BackendDense)
				if se.Backend() != BackendSparse || de.Backend() != BackendDense {
					t.Fatal("backend override not honoured")
				}
				id := g.name
				if eps > 0 {
					id += " pruned"
				}
				if workers > 1 {
					id += " pooled"
				}
				if sparse != dense {
					t.Errorf("%s: dense fingerprint diverged\n dense  %.160s…\n sparse %.160s…", id, dense, sparse)
				}
				if sm, dm := se.TotalMass(), de.TotalMass(); math.Float64bits(sm) != math.Float64bits(dm) {
					t.Errorf("%s: TotalMass %v (dense) != %v (sparse)", id, dm, sm)
				}
				ss, ds := se.States(), de.States()
				for v := range ss {
					if !statesEqual(ss[v], ds[v]) {
						t.Fatalf("%s: node %d state snapshot diverged: %v != %v", id, v, ds[v], ss[v])
					}
				}
				// LoadVector must agree on every seed column (and on an
				// unknown ID, where both answer all-zero).
				_, seedIDs := se.Seeds()
				for _, sid := range append(seedIDs, ^uint64(0)) {
					sv, dv := se.LoadVector(sid), de.LoadVector(sid)
					for v := range sv {
						if math.Float64bits(sv[v]) != math.Float64bits(dv[v]) {
							t.Fatalf("%s: LoadVector(%x)[%d] %v != %v", id, sid, v, dv[v], sv[v])
						}
					}
				}
			}
		}
	}
}

// TestDenseSparseAsyncEquivalence pins the contract on the asynchronous
// gossip path: both backends replay the identical transcript — message and
// word counters, dropped/rejected tallies, raw mass to the bit, labels, max
// state size — in plain and reliable modes, fault-free and under loss with
// a bounded mailbox, serial and batch-scheduled, with and without the
// per-message budget.
func TestDenseSparseAsyncEquivalence(t *testing.T) {
	p, err := gen.ClusteredRing(2, 50, 12, 1, rng.New(331))
	if err != nil {
		t.Fatal(err)
	}
	faults := dist.LinkFaults{DropProb: 0.1, DelayProb: 0.2, MaxPhases: 2, Seed: 5}
	for _, tc := range []struct {
		name string
		eps  float64
		opt  AsyncOptions
	}{
		{"plain fault-free", 0, AsyncOptions{ClockSeed: 7}},
		{"plain budget", 1e-4, AsyncOptions{ClockSeed: 7}},
		{"plain faults", 0, AsyncOptions{ClockSeed: 7, Model: faults, MailboxCap: 8}},
		{"reliable faults", 0, AsyncOptions{ClockSeed: 7, Model: faults, MailboxCap: 8, Reliable: true}},
		{"reliable budget parallel", 1e-4, AsyncOptions{ClockSeed: 7, Model: faults, Reliable: true, Parallel: 4}},
		{"plain parallel", 0, AsyncOptions{ClockSeed: 7, Parallel: 3}},
	} {
		params := Params{Beta: 0.5, Rounds: 30, Seed: 19, PruneEpsilon: tc.eps}
		run := func(backend string) *DistResult {
			params.StateBackend = backend
			res, err := ClusterAsyncGossip(p.G, params, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		sparse := run(BackendSparse)
		dense := run(BackendDense)
		if fingerprint(dense) != fingerprint(sparse) {
			t.Errorf("%s: fingerprint %+v (dense) != %+v (sparse)", tc.name, fingerprint(dense), fingerprint(sparse))
		}
		if dense.RejectedMessages != sparse.RejectedMessages {
			t.Errorf("%s: rejected %d != %d", tc.name, dense.RejectedMessages, sparse.RejectedMessages)
		}
		if math.Float64bits(dense.TotalMass) != math.Float64bits(sparse.TotalMass) {
			t.Errorf("%s: mass %v != %v (bit-level)", tc.name, dense.TotalMass, sparse.TotalMass)
		}
		for v := range sparse.Labels {
			if dense.Labels[v] != sparse.Labels[v] || dense.RawLabels[v] != sparse.RawLabels[v] {
				t.Fatalf("%s: node %d labelled (%d,%x), want (%d,%x)", tc.name, v,
					dense.Labels[v], dense.RawLabels[v], sparse.Labels[v], sparse.RawLabels[v])
			}
		}
	}
}

// TestClusterDistributedBackendPinned: the message-passing engine always
// runs sparse (its states are the wire payloads), so a run requesting the
// dense backend must be identical to one requesting sparse.
func TestClusterDistributedBackendPinned(t *testing.T) {
	p, err := gen.ClusteredRing(2, 40, 10, 1, rng.New(337))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Beta: 0.5, Rounds: 15, Seed: 23}
	run := func(backend string) *DistResult {
		params.StateBackend = backend
		res, err := ClusterDistributed(p.G, params, DistOptions{DropProb: 0.1, FailSeed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sparse, dense := run(BackendSparse), run(BackendDense)
	if fingerprint(dense) != fingerprint(sparse) || dense.DroppedMatches != sparse.DroppedMatches {
		t.Errorf("dense request diverged: %+v != %+v", fingerprint(dense), fingerprint(sparse))
	}
	for v := range sparse.Labels {
		if dense.Labels[v] != sparse.Labels[v] {
			t.Fatalf("node %d labelled %d, want %d", v, dense.Labels[v], sparse.Labels[v])
		}
	}
}

// FuzzDenseSparseEquivalence drives randomized instances through both
// backends — synchronous engine and asynchronous gossip — and requires
// bit-identical labels, stats, and mass every time, across pool sizes and
// pruning settings.
func FuzzDenseSparseEquivalence(f *testing.F) {
	f.Add(uint64(1), uint(40), uint(8), uint(0), uint(0), false)
	f.Add(uint64(99), uint(70), uint(13), uint(3), uint(1), true)
	f.Add(uint64(12345), uint(25), uint(5), uint(2), uint(2), false)
	f.Fuzz(func(t *testing.T, seed uint64, n, d, workers, epsSel uint, reliable bool) {
		size := 12 + int(n%60) // nodes per cluster
		deg := 4 + int(d%10)   // intra-cluster degree
		pw := int(workers % 5) // pool size (0/1 = serial)
		eps := []float64{0, 1e-7, 1e-4}[epsSel%3]
		if deg >= size {
			deg = size - 1
		}
		p, err := gen.ClusteredRing(2, size, deg, 1, rng.New(seed|1))
		if err != nil {
			t.Skip()
		}
		params := Params{Beta: 0.4, Rounds: 12, Seed: seed, PruneEpsilon: eps}

		runEngine := func(backend string) (string, float64) {
			params.StateBackend = backend
			var pool *sched.Pool
			if pw > 1 {
				pool = sched.NewPool(pw)
				defer pool.Close()
			}
			e, err := NewEngineWithPool(p.G, params, pool)
			if err != nil {
				t.Fatal(err)
			}
			e.Run(params.Rounds)
			return engineFingerprint(t, e), e.TotalMass()
		}
		sf, sm := runEngine(BackendSparse)
		df, dm := runEngine(BackendDense)
		if sf != df {
			t.Errorf("engine fingerprints diverge\n dense  %.200s\n sparse %.200s", df, sf)
		}
		if math.Float64bits(sm) != math.Float64bits(dm) {
			t.Errorf("engine mass %v != %v", dm, sm)
		}

		runAsync := func(backend string) *DistResult {
			params.StateBackend = backend
			res, err := ClusterAsyncGossip(p.G, params, AsyncOptions{
				Ticks:     6 * size,
				ClockSeed: seed ^ 0xabcdef,
				Reliable:  reliable,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		sa, da := runAsync(BackendSparse), runAsync(BackendDense)
		if fingerprint(sa) != fingerprint(da) {
			t.Errorf("async fingerprints diverge: %+v != %+v", fingerprint(da), fingerprint(sa))
		}
		for v := range sa.Labels {
			if sa.Labels[v] != da.Labels[v] {
				t.Fatalf("async label diverges at node %d", v)
			}
		}
	})
}
