package core

import (
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/matching"
	"repro/internal/metrics"
	"repro/internal/rng"
)

func TestPruneEpsilonValidation(t *testing.T) {
	g := gen.Cycle(6)
	if _, err := Cluster(g, Params{Beta: 0.5, Rounds: 2, PruneEpsilon: -1}); err == nil {
		t.Error("negative PruneEpsilon should fail")
	}
}

func TestPruneReducesStateAndWords(t *testing.T) {
	r := rng.New(3)
	p, err := gen.ClusteredRing(3, 80, 30, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	T := 90
	exact, err := Cluster(p.G, Params{Beta: 1.0 / 3, Rounds: T, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Prune far below the query threshold: tails vanish, accuracy holds.
	eps := Threshold(1.0/3, p.G.N(), 1) / 50
	pruned, err := Cluster(p.G, Params{Beta: 1.0 / 3, Rounds: T, Seed: 9, PruneEpsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Stats.StateWords >= exact.Stats.StateWords {
		t.Errorf("pruning did not reduce words: %d vs %d",
			pruned.Stats.StateWords, exact.Stats.StateWords)
	}
	me, err := metrics.MisclassificationRate(p.Truth, exact.Labels)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := metrics.MisclassificationRate(p.Truth, pruned.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mp > me+0.05 {
		t.Errorf("pruning hurt accuracy: %v vs %v", mp, me)
	}
}

func TestStepWithDrivesEngine(t *testing.T) {
	r := rng.New(7)
	p, err := gen.ClusteredRing(2, 60, 16, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p.G, Params{Beta: 0.5, Rounds: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	circuit, err := matching.NewBalancingCircuit(p.G, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	start := eng.TotalMass()
	for round := 0; round < 3*circuit.Size(); round++ {
		eng.StepWith(circuit.Next())
	}
	if eng.Round() != 3*circuit.Size() {
		t.Errorf("round count %d", eng.Round())
	}
	if diff := eng.TotalMass() - start; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mass drift %v under circuit schedule", diff)
	}
	if eng.Query() == nil {
		t.Error("query failed after circuit run")
	}
}

func TestBalancingCircuitClustersComparably(t *testing.T) {
	r := rng.New(13)
	p, err := gen.ClusteredRing(2, 100, 40, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	T := 100
	randRes, err := Cluster(p.G, Params{Beta: 0.5, Rounds: T, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p.G, Params{Beta: 0.5, Rounds: T, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	circuit, err := matching.NewBalancingCircuit(p.G, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < T; round++ {
		eng.StepWith(circuit.Next())
	}
	circuitRes := eng.Query()
	mr, err := metrics.MisclassificationRate(p.Truth, randRes.Labels)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := metrics.MisclassificationRate(p.Truth, circuitRes.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if mr > 0.1 || mc > 0.1 {
		t.Errorf("both models should cluster well: random %v circuit %v", mr, mc)
	}
}
