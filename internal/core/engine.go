package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Params configures the clustering algorithm.
type Params struct {
	// Beta is the known lower bound β on the minimum cluster size fraction
	// (|S_i| >= β·n). Required, in (0, 1].
	Beta float64
	// Rounds is the averaging budget T. Required, >= 1. Use
	// spectral.AutoRounds (or EstimateRoundsMatching) to derive it from the
	// spectral gap.
	Rounds int
	// ThresholdScale multiplies the default query threshold
	// 1/(sqrt(2β)·n); 0 means 1.
	ThresholdScale float64
	// Seed drives all randomness.
	Seed uint64
	// DegreeBound is the common upper bound D on the maximum degree used by
	// the G* protocol of §4.5; 0 means the exact maximum degree.
	DegreeBound int
	// SeedTrials overrides the number of seeding trials s̄;
	// 0 means ceil((3/β)·ln(1/β)) per the paper.
	SeedTrials int
	// PruneEpsilon, when positive, drops state entries whose value falls
	// below it after each merge. The paper keeps exact states; pruning is an
	// extension that trades a bounded mass loss for smaller messages
	// (ablation F6). Must stay well below the query threshold. The
	// asynchronous gossip modes (plain AND reliable) honour it differently:
	// there it is a per-message state budget — halved entries below it are
	// withheld from the push and kept whole by the sender — so gossip
	// messages shrink without any mass being destroyed (see
	// ClusterAsyncGossip).
	PruneEpsilon float64
	// StateBackend selects the node-state representation: BackendAuto (the
	// default, also spelled ""), BackendSparse, or BackendDense. The dense
	// backend keeps all node states in one contiguous [node][seed] float64
	// block with a fixed seed-interning table (see denseStates); auto picks
	// it when the planted seed set clears denseAuto's cutoffs. The backends
	// are bit-identical — labels, stats, mass, and gossip transcripts never
	// depend on the choice — so this knob tunes only speed and memory.
	// ClusterDistributed always runs sparse: its states travel inside wire
	// messages, so the sparse []Entry form is the representation.
	StateBackend string
}

// withDefaults validates and fills derived fields.
func (p Params) withDefaults(g *graph.Graph) (Params, error) {
	if p.Beta <= 0 || p.Beta > 1 {
		return p, fmt.Errorf("core: Beta must be in (0,1], got %v", p.Beta)
	}
	if p.Rounds < 1 {
		return p, fmt.Errorf("core: Rounds must be >= 1, got %d", p.Rounds)
	}
	if p.ThresholdScale == 0 {
		p.ThresholdScale = 1
	}
	if p.ThresholdScale < 0 {
		return p, fmt.Errorf("core: ThresholdScale must be positive")
	}
	if p.DegreeBound == 0 {
		p.DegreeBound = g.MaxDegree()
	}
	if p.DegreeBound < g.MaxDegree() {
		return p, fmt.Errorf("core: DegreeBound %d below max degree %d", p.DegreeBound, g.MaxDegree())
	}
	if p.SeedTrials == 0 {
		p.SeedTrials = SeedTrials(p.Beta)
	}
	if p.PruneEpsilon < 0 {
		return p, fmt.Errorf("core: PruneEpsilon must be non-negative")
	}
	switch p.StateBackend {
	case "":
		p.StateBackend = BackendAuto
	case BackendAuto, BackendSparse, BackendDense:
	default:
		return p, fmt.Errorf("core: unknown StateBackend %q (auto, sparse, dense)", p.StateBackend)
	}
	return p, nil
}

// SeedTrials returns s̄ = ceil((3/β)·ln(1/β)), the paper's trial count.
func SeedTrials(beta float64) int {
	s := (3 / beta) * math.Log(1/beta)
	if s < 1 {
		s = 1
	}
	return int(math.Ceil(s))
}

// Threshold returns the query threshold θ = scale/(sqrt(2β)·n) derived from
// the misclassification analysis in the proof of Theorem 1.1.
func Threshold(beta float64, n int, scale float64) float64 {
	if scale == 0 {
		scale = 1
	}
	return scale / (math.Sqrt(2*beta) * float64(n))
}

// Stats aggregates the cost accounting of a run.
type Stats struct {
	Rounds        int
	Matches       int   // matched pairs over all rounds
	ProtocolWords int64 // propose + accept messages (one word each)
	StateWords    int64 // words of state exchanged by matched pairs
	MaxStateSize  int   // largest per-node entry count seen
}

// TotalWords returns the full message complexity in words.
func (s Stats) TotalWords() int64 { return s.ProtocolWords + s.StateWords }

// Result is the outcome of a clustering run.
type Result struct {
	// Labels are dense cluster labels in [0, NumLabels). Nodes whose state
	// held no value above the threshold share the single dense label mapped
	// from the sentinel raw label 0.
	Labels []int
	// RawLabels holds the winning seed ID per node (0 = none above
	// threshold).
	RawLabels []uint64
	// NumLabels is the number of distinct labels in Labels.
	NumLabels int
	// Seeds lists the active nodes from the seeding procedure, and SeedIDs
	// their identifiers (aligned).
	Seeds   []int
	SeedIDs []uint64
	// Threshold is the query threshold used.
	Threshold float64
	Stats     Stats
}

// Engine runs the algorithm round by round, exposing the state evolution to
// experiments (accuracy-versus-round traces, load snapshots).
type Engine struct {
	g      *graph.Graph
	params Params
	// Exactly one of states/dense is live: the sparse backend keeps per-node
	// sorted []Entry states here, the dense backend keeps the contiguous
	// [node][seed] block in dense (and states is nil).
	states []State
	dense  *denseStates
	rngs   []*rng.RNG
	ids    []uint64
	seeds  []int
	stats  Stats
	round  int
	// pool, when non-nil, partitions Step's hot paths (matching generation
	// and pair merges) across workers; see SetPool.
	pool *sched.Pool
	// scanBounds, when non-nil, are explicit contiguous per-worker bounds
	// for the node-partitioned scans (SetScanBounds); nil means the balanced
	// count split.
	scanBounds []int
	// arenas are the sparse path's per-worker append-only merge buffers
	// (arena index = pool worker; index 0 serves the serial path). They
	// amortise the per-merge allocation of mergeForStorage; see stateArena.
	arenas []stateArena
	// obsv/emetrics are the optional observability hooks (SetObserver); nil
	// means off, and every hook site guards on nil so the disabled path costs
	// one predictable branch. lastSW remembers StateWords at the previous
	// round boundary so the per-round event can report a delta.
	obsv     *obs.Observer
	emetrics *obs.EngineMetrics
	lastSW   int64
}

// NewEngine initialises a run: every node draws its identifier and the
// seeding procedure plants the initial unit loads.
func NewEngine(g *graph.Graph, params Params) (*Engine, error) {
	return NewEngineWithPool(g, params, nil)
}

// NewEngineWithPool is NewEngine with the initialisation scans — the ID
// draw and the seeding trials, both per-node-independent walks of per-node
// streams — partitioned over a shared worker pool, which also becomes the
// engine's pool (as if SetPool had been called). The constructed engine is
// bit-identical for any pool size: every node consumes exactly the same
// draws from its own stream, and the seed list concatenates per-worker
// partials of contiguous ascending shards, which reproduces the serial
// ascending-node order. nil (or a pool of size 1) is the serial path.
func NewEngineWithPool(g *graph.Graph, params Params, pool *sched.Pool) (*Engine, error) {
	p, err := params.withDefaults(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	e := &Engine{
		g:      g,
		params: p,
		states: make([]State, n),
		rngs:   matching.NodeRNGs(n, p.Seed),
		ids:    make([]uint64, n),
		pool:   pool,
	}
	// Initialisation: every node picks a random ID from [1, n³] (§3.1). For
	// n where n³ overflows we clamp to the full word range; uniqueness holds
	// whp either way. Seeding: s̄ trials of Bernoulli(1/n) per node; active
	// at least once → inject χ_v tagged with ID(v). (§3.2 defines the
	// initial value as 1.)
	idSpace := idSpaceFor(n)
	pActive := 1 / float64(n)
	seed := func(lo, hi int, seeds *[]int) {
		for v := lo; v < hi; v++ {
			e.ids[v] = e.rngs[v].Uint64n(idSpace) + 1
			active := false
			for t := 0; t < p.SeedTrials; t++ {
				if e.rngs[v].Bernoulli(pActive) {
					active = true
				}
			}
			if active {
				e.states[v] = State{{ID: e.ids[v], Val: 1}}
				*seeds = append(*seeds, v)
			}
		}
	}
	if pool != nil && pool.Size() > 1 {
		partial := make([][]int, pool.Size())
		pool.RunRange(n, func(w, lo, hi int) { seed(lo, hi, &partial[w]) })
		for _, part := range partial {
			e.seeds = append(e.seeds, part...)
		}
	} else {
		seed(0, n, &e.seeds)
	}
	// Backend selection happens after seeding because the auto heuristic
	// needs the realised seed count; the dense block is rebuilt from the
	// seed list (identical content: unit loads at the seeds' IDs).
	useDense := p.StateBackend == BackendDense ||
		(p.StateBackend == BackendAuto && denseAuto(n, len(e.seeds)))
	if useDense {
		e.dense = newDenseStates(n, e.seeds, e.ids)
		e.states = nil
	}
	return e, nil
}

// Backend reports the state representation the engine actually runs —
// BackendSparse or BackendDense — after the auto heuristic has resolved.
func (e *Engine) Backend() string {
	if e.dense != nil {
		return BackendDense
	}
	return BackendSparse
}

// idSpaceFor returns min(n³, 2⁶³) guarding against overflow.
func idSpaceFor(n int) uint64 {
	nn := uint64(n)
	if nn == 0 {
		return 1
	}
	const limit = uint64(1) << 63
	if nn > 2097151 { // n³ would exceed 2⁶³
		return limit
	}
	return nn * nn * nn
}

// Seeds returns the active nodes and their IDs.
func (e *Engine) Seeds() ([]int, []uint64) {
	ids := make([]uint64, len(e.seeds))
	for i, v := range e.seeds {
		ids[i] = e.ids[v]
	}
	return append([]int(nil), e.seeds...), ids
}

// Round returns the number of averaging rounds performed.
func (e *Engine) Round() int { return e.round }

// States exposes the current node states in sparse form. On the sparse
// backend this is the live shared storage (read-only); on the dense backend
// it materialises a snapshot, so it is an analysis accessor, not a hot path.
func (e *Engine) States() []State {
	if e.dense == nil {
		return e.states
	}
	out := make([]State, e.g.N())
	for v := range out {
		out[v] = e.dense.sparseRow(v)
	}
	return out
}

// LoadVector extracts the dense load vector for one seed ID (a column of
// the multi-dimensional process), for analysis experiments.
func (e *Engine) LoadVector(id uint64) []float64 {
	out := make([]float64, e.g.N())
	if d := e.dense; d != nil {
		if c, ok := d.col[id]; ok {
			for v := range out {
				out[v] = d.row(v)[c]
			}
		}
		return out
	}
	for v, s := range e.states {
		out[v] = s.Get(id)
	}
	return out
}

// SetPool attaches a shared worker pool: Step's hot paths — matching
// generation and the state merges of the matched pairs — partition over it,
// so the sequential engine uses every core the pool has. nil restores
// single-threaded execution. The run is bit-identical for any pool size:
// randomness stays in per-node streams and matched pairs touch disjoint
// states, so parallel execution changes the schedule, never the result. The
// caller owns the pool's lifecycle (it may be shared across engines).
func (e *Engine) SetPool(p *sched.Pool) { e.pool = p }

// SetScanBounds installs explicit contiguous per-worker bounds for the
// engine's node-partitioned scans (the Query threshold scan and
// rawLabelScan); nil restores the balanced count split. Bounds must satisfy
// sched.CheckBounds for (n, pool size) — cost-weighted splits from
// sched.PartitionWeighted qualify, including ones with empty shards. The
// scan result is bit-identical for any bounds: partitioning decides which
// worker reads which node, never a value, so this is purely load placement
// — the seam `-partition degree|adaptive` uses to keep hub-heavy scans off
// one worker.
func (e *Engine) SetScanBounds(bounds []int) {
	if bounds != nil {
		size := 1
		if e.pool != nil {
			size = e.pool.Size()
		}
		sched.CheckBounds(bounds, e.g.N(), size)
	}
	e.scanBounds = bounds
}

// SetObserver attaches an observability sink: every subsequent round ends
// with a serial shard-by-shard state scan (observeRound) publishing mass and
// nnz gauges, the load-imbalance ratio, a state-size histogram, and a
// "core/round" instant event. nil detaches. Observation never changes the
// run: all hooks read state the round has already committed, on the driving
// goroutine.
func (e *Engine) SetObserver(o *obs.Observer) {
	e.obsv = o
	e.emetrics = nil
	if o != nil && o.Reg != nil {
		e.emetrics = obs.NewEngineMetrics(o.Reg, e.g.N(), o.Shards)
	}
}

// nodeScan reports one node's state mass and entry count under the active
// backend (exact zeros in dense rows are absent coordinates, not entries).
func (e *Engine) nodeScan(v int) (mass float64, nnz int) {
	if d := e.dense; d != nil {
		for _, x := range d.row(v) {
			mass += x
			if x != 0 {
				nnz++
			}
		}
		return mass, nnz
	}
	s := e.states[v]
	return s.Mass(), len(s)
}

// observeRound publishes the end-of-round observability readings: per-shard
// mass/nnz gauges, the load-imbalance ratio (max shard nnz over mean shard
// nnz), the max per-node state size, one histogram sample per node state,
// and a "core/round" instant carrying the totals plus the caller's extra
// args. The scan is a serial ascending-node walk on the driving goroutine,
// so every published value is a pure function of the committed states —
// bit-identical for any worker count, transport, or batch schedule.
func (e *Engine) observeRound(extra ...obs.Arg) {
	o := e.obsv
	if o == nil {
		return
	}
	var totalMass float64
	var totalNNZ, maxShardNNZ, maxState int64
	if em := e.emetrics; em != nil {
		bounds := em.Bounds()
		shards := len(bounds) - 1
		for s := 0; s < shards; s++ {
			var mass float64
			var nnz int64
			for v := bounds[s]; v < bounds[s+1]; v++ {
				m, k := e.nodeScan(v)
				mass += m
				nnz += int64(k)
				if int64(k) > maxState {
					maxState = int64(k)
				}
				em.ObserveNNZ(k)
			}
			em.SetShard(s, mass, nnz)
			totalMass += mass
			totalNNZ += nnz
			if nnz > maxShardNNZ {
				maxShardNNZ = nnz
			}
		}
		imbalance := 0.0
		if totalNNZ > 0 {
			imbalance = float64(maxShardNNZ) * float64(shards) / float64(totalNNZ)
		}
		em.SetSummary(imbalance, maxState)
	}
	args := append([]obs.Arg{
		obs.F("mass", totalMass),
		obs.I("nnz", totalNNZ),
		obs.I("max_state", maxState),
	}, extra...)
	o.Instant("core", "round", int64(e.round), args...)
}

// Step performs one averaging round (§3.1): generate a random matching, and
// matched pairs merge their states.
func (e *Engine) Step() {
	m := matching.GenerateParallel(e.g, e.params.DegreeBound, e.rngs, e.pool)
	e.StepWith(m)
}

// StepWith performs one averaging round using a caller-supplied matching —
// the hook that lets ablations drive the engine with a deterministic
// balancing-circuit schedule instead of the randomized protocol.
func (e *Engine) StepWith(m *matching.Matching) {
	e.stats.ProtocolWords += int64(m.Proposals) + int64(m.Size())
	switch {
	case e.pool != nil && e.pool.Size() > 1 && m.Size() >= 2*e.pool.Size():
		e.mergePairsParallel(m)
	case e.dense != nil:
		eps := e.params.PruneEpsilon
		for _, pair := range m.Pairs {
			words, size := e.dense.mergePair(int(pair[0]), int(pair[1]), eps)
			e.stats.StateWords += words
			if size > e.stats.MaxStateSize {
				e.stats.MaxStateSize = size
			}
		}
	default:
		ar := e.arena(0)
		for _, pair := range m.Pairs {
			u, v := pair[0], pair[1]
			su, sv := e.states[u], e.states[v]
			e.stats.StateWords += int64(su.Words() + sv.Words())
			merged := e.mergeForStorage(ar, su, sv)
			e.states[u] = merged
			e.states[v] = merged
			if len(merged) > e.stats.MaxStateSize {
				e.stats.MaxStateSize = len(merged)
			}
		}
	}
	e.stats.Matches += m.Size()
	e.round++
	e.stats.Rounds = e.round
	if e.obsv != nil {
		e.observeRound(
			obs.I("matches", int64(m.Size())),
			obs.I("state_words", e.stats.StateWords-e.lastSW))
		e.lastSW = e.stats.StateWords
	}
}

// mergePairsParallel partitions the matched pairs over the pool. A node is
// in at most one pair, so the state writes of distinct pairs are disjoint;
// the word and max-state tallies reduce from per-worker partials in worker
// order, which keeps the stats bit-identical to the sequential loop (sums
// are integer, max is order-free).
func (e *Engine) mergePairsParallel(m *matching.Matching) {
	workers := e.pool.Size()
	words := make([]int64, workers)
	maxes := make([]int, workers)
	if e.dense != nil {
		eps := e.params.PruneEpsilon
		e.pool.RunRange(m.Size(), func(w, lo, hi int) {
			var sw int64
			mx := 0
			for _, pair := range m.Pairs[lo:hi] {
				pw, size := e.dense.mergePair(int(pair[0]), int(pair[1]), eps)
				sw += pw
				if size > mx {
					mx = size
				}
			}
			words[w] = sw
			maxes[w] = mx
		})
	} else {
		e.arena(workers - 1) // grow outside the workers; &e.arenas[w] is then race-free
		e.pool.RunRange(m.Size(), func(w, lo, hi int) {
			var sw int64
			mx := 0
			ar := &e.arenas[w]
			for _, pair := range m.Pairs[lo:hi] {
				u, v := pair[0], pair[1]
				su, sv := e.states[u], e.states[v]
				sw += int64(su.Words() + sv.Words())
				merged := e.mergeForStorage(ar, su, sv)
				e.states[u] = merged
				e.states[v] = merged
				if len(merged) > mx {
					mx = len(merged)
				}
			}
			words[w] = sw
			maxes[w] = mx
		})
	}
	for w := 0; w < workers; w++ {
		e.stats.StateWords += words[w]
		if maxes[w] > e.stats.MaxStateSize {
			e.stats.MaxStateSize = maxes[w]
		}
	}
}

// stateArena is an append-only block allocator for merged sparse states: a
// merge appends into the current block's tail and the stored state is a
// capacity-clipped sub-slice, so one block allocation amortises thousands of
// merges that previously each allocated. Blocks are never grown in place —
// a full block is simply replaced by a fresh one — because earlier merged
// states alias the old block and must stay valid for the rest of the run
// (states are immutable once built and shared by matched partners).
type stateArena struct{ buf []Entry }

// arenaBlock is the entry capacity of a fresh arena block (16k entries,
// 256 KiB — big enough to amortise, small enough to not mind the tail).
const arenaBlock = 1 << 14

// arena returns the w-th merge arena, growing the slice as needed. Callers
// that hand arenas to concurrent workers must grow to the top index first.
func (e *Engine) arena(w int) *stateArena {
	for len(e.arenas) <= w {
		e.arenas = append(e.arenas, stateArena{})
	}
	return &e.arenas[w]
}

// mergeForStorage merges two states and applies the optional prune filter.
// With an arena the result is carved out of the arena's current block; a nil
// arena is the plain allocating path (used by ClusterDistributed, whose
// merges run concurrently inside phase callbacks without a worker identity).
func (e *Engine) mergeForStorage(ar *stateArena, a, b State) State {
	eps := e.params.PruneEpsilon
	if ar == nil {
		merged := MergeStates(a, b)
		if eps <= 0 {
			return merged
		}
		return pruneInPlace(merged, eps)
	}
	need := len(a) + len(b)
	if cap(ar.buf)-len(ar.buf) < need {
		size := arenaBlock
		if need > size {
			size = need
		}
		ar.buf = make([]Entry, 0, size)
	}
	start := len(ar.buf)
	buf := appendMerge(ar.buf, a, b)
	out := buf[start:]
	if eps > 0 {
		out = pruneInPlace(out, eps)
	}
	ar.buf = buf[:start+len(out)]
	return ar.buf[start : start+len(out) : start+len(out)]
}

// pruneInPlace compacts s down to the entries at or above eps.
func pruneInPlace(s State, eps float64) State {
	kept := s[:0]
	for _, entry := range s {
		if entry.Val >= eps {
			kept = append(kept, entry)
		}
	}
	return kept
}

// Run performs t rounds.
func (e *Engine) Run(t int) {
	for i := 0; i < t; i++ {
		e.Step()
	}
}

// Query labels every node from its current state (§3.1): the label is the
// minimum seed ID whose value clears the threshold; nodes with no qualifying
// entry share a sentinel raw label 0. The query is local and does not
// modify state. With a pool attached (SetPool / NewEngineWithPool) the
// threshold scan AND the label densification partition over it — each
// node's raw label depends only on its own state, and densifyParallel
// reproduces the serial first-appearance numbering exactly — so the result
// is bit-identical for any pool size.
func (e *Engine) Query() *Result {
	thr := Threshold(e.params.Beta, e.g.N(), e.params.ThresholdScale)
	raw := e.rawLabelScan(thr)
	var labels []int
	var num int
	if e.pool != nil && e.pool.Size() > 1 {
		labels, num = densifyParallel(raw, e.pool)
	} else {
		labels, num = densify(raw)
	}
	seeds, seedIDs := e.Seeds()
	return &Result{
		Labels:    labels,
		RawLabels: raw,
		NumLabels: num,
		Seeds:     seeds,
		SeedIDs:   seedIDs,
		Threshold: thr,
		Stats:     e.stats,
	}
}

// rawLabelScan computes the current threshold winner per node (0 = no entry
// clears thr) — Query's scan without the densification, partitioned over
// the pool (honouring SetScanBounds). Each node's winner is a pure function
// of its own committed state, so the result is bit-identical for any pool
// size and any bounds. The adaptive repartitioner reads the emerging labels
// through this, which is what keeps its decisions transcript-derived.
func (e *Engine) rawLabelScan(thr float64) []uint64 {
	n := e.g.N()
	raw := make([]uint64, n)
	var scan func(lo, hi int)
	if d := e.dense; d != nil {
		// Columns ascend by seed ID, so the first qualifying column is the
		// minimum qualifying ID — the same winner the sparse scan picks.
		scan = func(lo, hi int) {
			for v := lo; v < hi; v++ {
				row := d.row(v)
				best := uint64(0)
				for c := range row {
					if row[c] >= thr {
						best = d.ids[c]
						break
					}
				}
				raw[v] = best
			}
		}
	} else {
		scan = func(lo, hi int) {
			for v := lo; v < hi; v++ {
				best := uint64(0)
				for _, entry := range e.states[v] {
					if entry.Val >= thr && (best == 0 || entry.ID < best) {
						best = entry.ID
					}
				}
				raw[v] = best
			}
		}
	}
	switch {
	case e.pool != nil && e.pool.Size() > 1 && e.scanBounds != nil:
		e.pool.RunBounds(e.scanBounds, func(w, lo, hi int) { scan(lo, hi) })
	case e.pool != nil && e.pool.Size() > 1:
		e.pool.RunRange(n, func(w, lo, hi int) { scan(lo, hi) })
	default:
		scan(0, n)
	}
	return raw
}

// densify maps raw labels to [0, k) in first-appearance order.
func densify(raw []uint64) ([]int, int) {
	m := map[uint64]int{}
	out := make([]int, len(raw))
	for i, r := range raw {
		d, ok := m[r]
		if !ok {
			d = len(m)
			m[r] = d
		}
		out[i] = d
	}
	return out, len(m)
}

// densifyParallel is densify partitioned over the pool, bit-identical to the
// serial scan. Pass 1: every contiguous shard collects its distinct raw
// labels in shard-local first-appearance order. The short serial splice then
// assigns dense ids by walking those lists in shard order — the serial
// scan's first appearance of any label lies in the earliest shard containing
// it, at that shard's first local appearance, so the numbering is exactly
// the serial one. Pass 2: the output fills by concurrent read-only lookups.
func densifyParallel(raw []uint64, pool *sched.Pool) ([]int, int) {
	distinct := make([][]uint64, pool.Size())
	pool.RunRange(len(raw), func(w, lo, hi int) {
		seen := make(map[uint64]struct{})
		var order []uint64
		for _, r := range raw[lo:hi] {
			if _, ok := seen[r]; !ok {
				seen[r] = struct{}{}
				order = append(order, r)
			}
		}
		distinct[w] = order
	})
	m := make(map[uint64]int)
	for _, order := range distinct {
		for _, r := range order {
			if _, ok := m[r]; !ok {
				m[r] = len(m)
			}
		}
	}
	out := make([]int, len(raw))
	pool.RunRange(len(raw), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m[raw[i]]
		}
	})
	return out, len(m)
}

// Cluster runs the full algorithm: seeding, Rounds averaging rounds, query.
func Cluster(g *graph.Graph, params Params) (*Result, error) {
	e, err := NewEngine(g, params)
	if err != nil {
		return nil, err
	}
	e.Run(e.params.Rounds)
	return e.Query(), nil
}

// ClusterParallel is Cluster with the engine's hot paths — seeding, the
// per-round matching generation and pair merges, and the query scan —
// partitioned over a worker pool of the given size (< 0 means GOMAXPROCS,
// 0 or 1 mean sequential). Labels and stats are bit-identical to Cluster
// for equal Params — parallelism changes the wall clock, never the run.
func ClusterParallel(g *graph.Graph, params Params, workers int) (*Result, error) {
	return ClusterParallelWithObs(g, params, workers, nil)
}

// ClusterParallelWithObs is ClusterParallel with an optional observer: each
// round ends with the engine's observeRound readings and a registry snapshot
// stamped with the round number, so a sequential run produces the same
// per-round snapshot series as its distributed counterpart. nil o is exactly
// ClusterParallel.
func ClusterParallelWithObs(g *graph.Graph, params Params, workers int, o *obs.Observer) (*Result, error) {
	var pool *sched.Pool
	if workers = parallelWorkers(workers); workers > 1 {
		pool = sched.NewPool(workers)
		defer pool.Close()
	}
	e, err := NewEngineWithPool(g, params, pool)
	if err != nil {
		return nil, err
	}
	e.SetObserver(o)
	for i := 0; i < e.params.Rounds; i++ {
		e.Step()
		if o != nil {
			o.Snap(int64(e.round))
		}
	}
	return e.Query(), nil
}

// TotalMass sums all load over all nodes and coordinates; it equals the
// number of seeds at all times (conservation invariant, used by tests and
// failure-injection experiments).
func (e *Engine) TotalMass() float64 {
	var total float64
	if d := e.dense; d != nil {
		// Per-row sums over ascending columns, rows in node order — the same
		// accumulation order as the sparse loop below (absent coordinates
		// contribute exact zeros), so the total is bit-identical.
		for v, n := 0, e.g.N(); v < n; v++ {
			var t float64
			for _, x := range d.row(v) {
				t += x
			}
			total += t
		}
		return total
	}
	for _, s := range e.states {
		total += s.Mass()
	}
	return total
}
