// Package linalg provides the small dense linear-algebra kernel used by the
// spectral machinery: vector primitives, a dense symmetric eigensolver
// (cyclic Jacobi), a symmetric tridiagonal eigensolver (implicit QL), and a
// Lanczos iteration with full reorthogonalisation for extracting the top
// eigenpairs of large sparse symmetric operators such as the random-walk
// matrix of a graph.
//
// Everything operates on plain []float64 slices and row-major *Dense
// matrices; no external dependencies.
package linalg

import "math"

// Dot returns the inner product of a and b (which must have equal length).
func Dot(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Scale multiplies v by c in place.
func Scale(v []float64, c float64) {
	for i := range v {
		v[i] *= c
	}
}

// Normalize scales v to unit norm in place and returns the original norm.
// A zero vector is left unchanged.
func Normalize(v []float64) float64 {
	n := Norm(v)
	if n > 0 {
		Scale(v, 1/n)
	}
	return n
}

// AddScaled computes dst += c*src in place.
func AddScaled(dst []float64, c float64, src []float64) {
	for i := range dst {
		dst[i] += c * src[i]
	}
}

// Sub computes dst = a - b element-wise.
func Sub(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_i |a[i]-b[i]|.
func MaxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Fill sets every element of v to c.
func Fill(v []float64, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// OrthonormalizeAgainst removes from v its components along each unit vector
// in basis (classical Gram-Schmidt, applied twice for numerical stability)
// and returns the norm of the remainder without normalising v.
func OrthonormalizeAgainst(v []float64, basis [][]float64) float64 {
	for pass := 0; pass < 2; pass++ {
		for _, q := range basis {
			AddScaled(v, -Dot(v, q), q)
		}
	}
	return Norm(v)
}

// GramSchmidt orthonormalises the given vectors in place, returning the
// number of independent vectors kept (dependent vectors are dropped from the
// returned slice; the input slice's prefix is reused).
func GramSchmidt(vecs [][]float64, tol float64) [][]float64 {
	kept := vecs[:0]
	for _, v := range vecs {
		rem := OrthonormalizeAgainst(v, kept)
		if rem > tol {
			Scale(v, 1/rem)
			kept = append(kept, v)
		}
	}
	return kept
}
