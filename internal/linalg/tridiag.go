package linalg

import (
	"fmt"
	"math"
)

// SymTridiagEig computes all eigenvalues and eigenvectors of the symmetric
// tridiagonal matrix with diagonal diag (length n) and subdiagonal sub
// (length n-1, sub[i] couples i and i+1), using the implicit QL method with
// Wilkinson shifts (EISPACK tql2). Eigenvalues are returned in descending
// order; eigenvectors are the columns of the returned matrix.
func SymTridiagEig(diag, sub []float64) ([]float64, *Dense, error) {
	n := len(diag)
	if n == 0 {
		return nil, NewDense(0, 0), nil
	}
	if len(sub) != n-1 {
		return nil, nil, fmt.Errorf("linalg: subdiagonal length %d, want %d", len(sub), n-1)
	}
	d := Clone(diag)
	e := make([]float64, n)
	copy(e, sub) // e[i] couples i and i+1; e[n-1] = 0
	z := Identity(n)

	const eps = 2.220446049250313e-16
	f := 0.0
	tst1 := 0.0
	for l := 0; l < n; l++ {
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter > 50 {
					return nil, nil, fmt.Errorf("linalg: tridiagonal QL failed to converge")
				}
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL transformation.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate transformation.
					for k := 0; k < n; k++ {
						h = z.At(k, i+1)
						z.Set(k, i+1, s*z.At(k, i)+c*h)
						z.Set(k, i, c*z.At(k, i)-s*h)
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	sortEigenDescending(d, z)
	return d, z, nil
}
