package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into a new slice.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes dst = M * src.
func (m *Dense) MulVec(dst, src []float64) {
	if len(src) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d with |src|=%d |dst|=%d",
			m.Rows, m.Cols, len(src), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), src)
	}
}

// IsSymmetric reports whether the matrix is square and symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// SymEigJacobi computes all eigenvalues and eigenvectors of the symmetric
// matrix a using the cyclic Jacobi rotation method. It returns eigenvalues
// in descending order and the matrix of corresponding eigenvectors stored as
// columns. The input matrix is not modified.
func SymEigJacobi(a *Dense) (vals []float64, vecs *Dense, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: Jacobi needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-10) {
		return nil, nil, fmt.Errorf("linalg: Jacobi needs a symmetric matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation to rows/cols p and q of w.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	sortEigenDescending(vals, v)
	return vals, v, nil
}

// sortEigenDescending sorts eigenvalues in descending order, permuting the
// columns of vecs accordingly (selection sort; n is small wherever this is
// used directly, and Lanczos uses it on k x k problems).
func sortEigenDescending(vals []float64, vecs *Dense) {
	n := len(vals)
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[j] > vals[best] {
				best = j
			}
		}
		if best != i {
			vals[i], vals[best] = vals[best], vals[i]
			for r := 0; r < vecs.Rows; r++ {
				vi, vb := vecs.At(r, i), vecs.At(r, best)
				vecs.Set(r, i, vb)
				vecs.Set(r, best, vi)
			}
		}
	}
}
