package linalg

import (
	"fmt"

	"repro/internal/rng"
)

// MatVec is a symmetric linear operator on R^n.
type MatVec interface {
	// Dim returns n.
	Dim() int
	// Apply computes dst = A*src. dst and src never alias.
	Apply(dst, src []float64)
}

// DenseOp adapts a symmetric *Dense matrix to the MatVec interface.
type DenseOp struct{ M *Dense }

// Dim implements MatVec.
func (o DenseOp) Dim() int { return o.M.Rows }

// Apply implements MatVec.
func (o DenseOp) Apply(dst, src []float64) { o.M.MulVec(dst, src) }

// LanczosOptions tunes the Lanczos iteration. Zero values select defaults.
type LanczosOptions struct {
	// MaxIter caps the Krylov basis size; default min(n, 40 + 12*k).
	MaxIter int
	// Tol is the residual tolerance for declaring an eigenpair converged;
	// default 1e-8.
	Tol float64
	// Seed drives the random starting vectors; default 1.
	Seed uint64
}

// LanczosTopK computes the k algebraically largest eigenvalues (descending)
// and their orthonormal eigenvectors for the symmetric operator op, using
// Lanczos with full reorthogonalisation. When the Krylov space exhausts an
// invariant subspace (lucky breakdown) the iteration restarts with a fresh
// random vector orthogonal to the basis found so far, which allows repeated
// eigenvalues to be recovered.
func LanczosTopK(op MatVec, k int, opts LanczosOptions) ([]float64, [][]float64, error) {
	n := op.Dim()
	if k <= 0 {
		return nil, nil, fmt.Errorf("linalg: k must be positive")
	}
	if k > n {
		return nil, nil, fmt.Errorf("linalg: k=%d exceeds dimension %d", k, n)
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 40 + 12*k
	}
	if maxIter > n {
		maxIter = n
	}
	if maxIter < k {
		maxIter = k
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	r := rng.New(seed)

	var (
		basis  [][]float64 // orthonormal Lanczos vectors q_0..q_j
		alphas []float64   // diagonal of T
		betas  []float64   // subdiagonal of T (beta between j and j+1)
		w      = make([]float64, n)
	)
	newStart := func() ([]float64, error) {
		for attempt := 0; attempt < 20; attempt++ {
			v := make([]float64, n)
			for i := range v {
				v[i] = r.NormFloat64()
			}
			if rem := OrthonormalizeAgainst(v, basis); rem > 1e-10 {
				Scale(v, 1/rem)
				return v, nil
			}
		}
		return nil, fmt.Errorf("linalg: cannot extend Lanczos basis (dimension exhausted)")
	}

	q, err := newStart()
	if err != nil {
		return nil, nil, err
	}
	basis = append(basis, q)
	for len(basis) < maxIter {
		j := len(basis) - 1
		op.Apply(w, basis[j])
		alpha := Dot(basis[j], w)
		alphas = append(alphas, alpha)
		AddScaled(w, -alpha, basis[j])
		if j > 0 && len(betas) == j {
			AddScaled(w, -betas[j-1], basis[j-1])
		}
		// Full reorthogonalisation (twice is enough).
		rem := OrthonormalizeAgainst(w, basis)
		if rem < 1e-12 {
			// Invariant subspace found. Restart with a fresh direction if we
			// still need a larger basis; the zero beta decouples the blocks.
			if len(basis) >= n {
				break
			}
			fresh, err := newStart()
			if err != nil {
				break
			}
			betas = append(betas, 0)
			basis = append(basis, fresh)
			continue
		}
		nq := Clone(w)
		Scale(nq, 1/rem)
		betas = append(betas, rem)
		basis = append(basis, nq)
	}
	// The loop above appends alpha for basis[j] before extending; ensure the
	// last basis vector has its alpha.
	for len(alphas) < len(basis) {
		j := len(alphas)
		op.Apply(w, basis[j])
		alphas = append(alphas, Dot(basis[j], w))
	}
	m := len(alphas)
	if k > m {
		return nil, nil, fmt.Errorf("linalg: Krylov space of size %d cannot produce %d eigenpairs", m, k)
	}
	vals, s, err := SymTridiagEig(alphas, betas[:m-1])
	if err != nil {
		return nil, nil, err
	}
	// Assemble Ritz vectors for the top k.
	outVals := make([]float64, k)
	outVecs := make([][]float64, k)
	for i := 0; i < k; i++ {
		outVals[i] = vals[i]
		v := make([]float64, n)
		for j := 0; j < m; j++ {
			AddScaled(v, s.At(j, i), basis[j])
		}
		Normalize(v)
		outVecs[i] = v
	}
	// Verify residuals; callers treat failure as a signal to raise MaxIter.
	for i := 0; i < k; i++ {
		op.Apply(w, outVecs[i])
		AddScaled(w, -outVals[i], outVecs[i])
		if Norm(w) > 100*tol*(1+absf(outVals[i])) {
			return outVals, outVecs, &NotConvergedError{Index: i, Residual: Norm(w)}
		}
	}
	return outVals, outVecs, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// NotConvergedError reports that a requested eigenpair missed the residual
// tolerance; the partial results are still returned alongside it.
type NotConvergedError struct {
	Index    int
	Residual float64
}

func (e *NotConvergedError) Error() string {
	return fmt.Sprintf("linalg: eigenpair %d not converged (residual %.3e)", e.Index, e.Residual)
}
