package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorBasics(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if Dot(a, b) != 4-10+18 {
		t.Errorf("dot = %v", Dot(a, b))
	}
	if !almostEq(Norm([]float64{3, 4}), 5, 1e-15) {
		t.Error("norm")
	}
	v := Clone(a)
	Scale(v, 2)
	if v[2] != 6 {
		t.Error("scale")
	}
	AddScaled(v, 1, a)
	if v[0] != 3 {
		t.Error("addscaled")
	}
	d := make([]float64, 3)
	Sub(d, a, b)
	if d[1] != 7 {
		t.Error("sub")
	}
	if !almostEq(Dist([]float64{0, 0}, []float64{3, 4}), 5, 1e-15) {
		t.Error("dist")
	}
	if MaxAbsDiff(a, b) != 7 {
		t.Error("maxabsdiff")
	}
	if Sum(a) != 6 {
		t.Error("sum")
	}
	Fill(d, 1.5)
	if d[0] != 1.5 || d[2] != 1.5 {
		t.Error("fill")
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if !almostEq(n, 5, 1e-15) || !almostEq(Norm(v), 1, 1e-15) {
		t.Errorf("normalize: n=%v v=%v", n, v)
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Error("zero vector should return 0")
	}
}

func TestGramSchmidt(t *testing.T) {
	vecs := [][]float64{
		{1, 1, 0},
		{1, 0, 1},
		{2, 1, 1}, // dependent: sum of first two
		{0, 0, 2},
	}
	out := GramSchmidt(vecs, 1e-10)
	if len(out) != 3 {
		t.Fatalf("kept %d vectors, want 3", len(out))
	}
	for i := range out {
		if !almostEq(Norm(out[i]), 1, 1e-12) {
			t.Errorf("vector %d not unit", i)
		}
		for j := i + 1; j < len(out); j++ {
			if !almostEq(Dot(out[i], out[j]), 0, 1e-12) {
				t.Errorf("vectors %d,%d not orthogonal: %v", i, j, Dot(out[i], out[j]))
			}
		}
	}
}

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 5 || m.At(1, 2) != -2 {
		t.Fatal("set/at")
	}
	if m.Row(0)[1] != 5 {
		t.Error("row")
	}
	if m.Col(2)[1] != -2 {
		t.Error("col")
	}
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1, 1})
	if dst[0] != 5 || dst[1] != -2 {
		t.Errorf("mulvec: %v", dst)
	}
	id := Identity(3)
	if !id.IsSymmetric(0) {
		t.Error("identity not symmetric")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("clone aliases")
	}
}

func TestMulVecPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).MulVec(make([]float64, 2), make([]float64, 3))
}

func TestJacobiKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := NewDense(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	vals, vecs, err := SymEigJacobi(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v", vals)
	}
	// Check A v = λ v for both.
	for i := 0; i < 2; i++ {
		v := vecs.Col(i)
		av := make([]float64, 2)
		m.MulVec(av, v)
		AddScaled(av, -vals[i], v)
		if Norm(av) > 1e-10 {
			t.Errorf("residual %v for eigenpair %d", Norm(av), i)
		}
	}
}

func TestJacobiRejectsNonSymmetric(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 1)
	if _, _, err := SymEigJacobi(m); err == nil {
		t.Fatal("expected error")
	}
	if _, _, err := SymEigJacobi(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square")
	}
}

// randomSymmetric builds a random symmetric matrix.
func randomSymmetric(n int, r *rng.RNG) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestJacobiRandomMatrices(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		n := 3 + trial*3
		m := randomSymmetric(n, r)
		vals, vecs, err := SymEigJacobi(m)
		if err != nil {
			t.Fatal(err)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Errorf("eigenvalues not sorted: %v", vals)
			}
		}
		// Residuals and orthonormality.
		for i := 0; i < n; i++ {
			v := vecs.Col(i)
			av := make([]float64, n)
			m.MulVec(av, v)
			AddScaled(av, -vals[i], v)
			if Norm(av) > 1e-8 {
				t.Errorf("n=%d eigenpair %d residual %v", n, i, Norm(av))
			}
			for j := i + 1; j < n; j++ {
				if !almostEq(Dot(v, vecs.Col(j)), 0, 1e-9) {
					t.Errorf("eigenvectors %d,%d not orthogonal", i, j)
				}
			}
		}
		// Trace preserved.
		tr, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			tr += m.At(i, i)
			sum += vals[i]
		}
		if !almostEq(tr, sum, 1e-8) {
			t.Errorf("trace %v vs eigenvalue sum %v", tr, sum)
		}
	}
}

func TestTridiagKnown(t *testing.T) {
	// Tridiagonal with diag 2, sub -1 (discrete Laplacian) has eigenvalues
	// 2 - 2cos(jπ/(n+1)).
	n := 8
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	vals, vecs, err := SymTridiagEig(d, e)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= n; j++ {
		want := 2 - 2*math.Cos(float64(n+1-j)*math.Pi/float64(n+1))
		if !almostEq(vals[j-1], want, 1e-10) {
			t.Errorf("eigenvalue %d = %v want %v", j-1, vals[j-1], want)
		}
	}
	// Verify an eigenpair residual via explicit tridiagonal multiply.
	for i := 0; i < n; i++ {
		v := vecs.Col(i)
		av := make([]float64, n)
		for r := 0; r < n; r++ {
			av[r] = 2 * v[r]
			if r > 0 {
				av[r] -= v[r-1]
			}
			if r < n-1 {
				av[r] -= v[r+1]
			}
		}
		AddScaled(av, -vals[i], v)
		if Norm(av) > 1e-9 {
			t.Errorf("tridiag residual %v for pair %d", Norm(av), i)
		}
	}
}

func TestTridiagDegenerate(t *testing.T) {
	vals, _, err := SymTridiagEig(nil, nil)
	if err != nil || len(vals) != 0 {
		t.Fatal("empty case should succeed")
	}
	vals, _, err = SymTridiagEig([]float64{7}, nil)
	if err != nil || len(vals) != 1 || vals[0] != 7 {
		t.Fatalf("1x1 case: %v %v", vals, err)
	}
	if _, _, err := SymTridiagEig([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("bad subdiagonal length should fail")
	}
}

func TestTridiagMatchesJacobi(t *testing.T) {
	r := rng.New(11)
	n := 12
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = r.NormFloat64()
	}
	for i := range e {
		e[i] = r.NormFloat64()
	}
	tv, _, err := SymTridiagEig(d, e)
	if err != nil {
		t.Fatal(err)
	}
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, d[i])
		if i < n-1 {
			m.Set(i, i+1, e[i])
			m.Set(i+1, i, e[i])
		}
	}
	jv, _, err := SymEigJacobi(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !almostEq(tv[i], jv[i], 1e-9) {
			t.Errorf("eigenvalue %d: tridiag %v jacobi %v", i, tv[i], jv[i])
		}
	}
}

func TestLanczosMatchesJacobi(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 3; trial++ {
		n := 20 + 10*trial
		m := randomSymmetric(n, r)
		jv, _, err := SymEigJacobi(m)
		if err != nil {
			t.Fatal(err)
		}
		k := 4
		lv, lvec, err := LanczosTopK(DenseOp{m}, k, LanczosOptions{MaxIter: n})
		if err != nil {
			t.Fatalf("lanczos: %v", err)
		}
		for i := 0; i < k; i++ {
			if !almostEq(lv[i], jv[i], 1e-7) {
				t.Errorf("trial %d eigenvalue %d: lanczos %v jacobi %v", trial, i, lv[i], jv[i])
			}
		}
		// Orthonormal Ritz vectors.
		for i := 0; i < k; i++ {
			if !almostEq(Norm(lvec[i]), 1, 1e-9) {
				t.Errorf("ritz vector %d not unit", i)
			}
			for j := i + 1; j < k; j++ {
				if !almostEq(Dot(lvec[i], lvec[j]), 0, 1e-7) {
					t.Errorf("ritz vectors %d,%d not orthogonal", i, j)
				}
			}
		}
	}
}

func TestLanczosRepeatedEigenvalues(t *testing.T) {
	// Block diagonal matrix with two identical 2x2 blocks: eigenvalue 3 has
	// multiplicity 2. Restarting must recover both copies.
	m := NewDense(4, 4)
	for _, base := range []int{0, 2} {
		m.Set(base, base, 2)
		m.Set(base, base+1, 1)
		m.Set(base+1, base, 1)
		m.Set(base+1, base+1, 2)
	}
	vals, _, err := LanczosTopK(DenseOp{m}, 2, LanczosOptions{MaxIter: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-8) || !almostEq(vals[1], 3, 1e-8) {
		t.Errorf("want [3,3], got %v", vals)
	}
}

func TestLanczosErrors(t *testing.T) {
	m := Identity(3)
	if _, _, err := LanczosTopK(DenseOp{m}, 0, LanczosOptions{}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := LanczosTopK(DenseOp{m}, 4, LanczosOptions{}); err == nil {
		t.Error("k>n should fail")
	}
}

func TestLanczosIdentity(t *testing.T) {
	vals, _, err := LanczosTopK(DenseOp{Identity(5)}, 3, LanczosOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if !almostEq(v, 1, 1e-10) {
			t.Errorf("identity eigenvalue %v", v)
		}
	}
}

// Property: Gram-Schmidt output is always orthonormal.
func TestGramSchmidtProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(8)
		cnt := 1 + r.Intn(n)
		vecs := make([][]float64, cnt)
		for i := range vecs {
			vecs[i] = make([]float64, n)
			for j := range vecs[i] {
				vecs[i][j] = r.NormFloat64()
			}
		}
		out := GramSchmidt(vecs, 1e-10)
		for i := range out {
			if !almostEq(Norm(out[i]), 1, 1e-9) {
				return false
			}
			for j := i + 1; j < len(out); j++ {
				if !almostEq(Dot(out[i], out[j]), 0, 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
