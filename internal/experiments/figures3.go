package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/loadbalance"
	"repro/internal/matching"
	"repro/internal/metrics"
)

// F9AsyncGossip aligns the synchronous matching model with the asynchronous
// gossip time model of Boyd et al.: the full multi-dimensional clustering
// state is evolved by single-edge gossip ticks, with the clock calibrated so
// both executions perform the same expected number of pairwise averaging
// events, and the query procedure fires on the gossiped state.
func F9AsyncGossip(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F9",
		Title: "Synchrony ablation: matching rounds vs asynchronous gossip",
		Notes: "Expected shape: at an equal budget of pairwise averaging " +
			"events, asynchronous single-edge gossip clusters as accurately " +
			"as the synchronous matching protocol — the paper's synchrony " +
			"assumption is analytic convenience, not a behavioural " +
			"requirement.",
		Headers: []string{"model", "averaging events", "misclassified", "labels"},
	}
	p, _, T, err := ringInstance(cfg, 2, 250, 40, 1, 113)
	if err != nil {
		return nil, err
	}
	beta := p.MinClusterFraction()
	n := p.G.N()

	// Synchronous run.
	res, err := core.Cluster(p.G, core.Params{Beta: beta, Rounds: T, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	misSync, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		return nil, err
	}
	t.AddRow("synchronous matching", i(res.Stats.Matches), pct(misSync), i(res.NumLabels))

	// Asynchronous run with the same seeds and the same number of averaging
	// events (= matched pairs of the synchronous run; if the synchronous run
	// matched nothing, fall back to the expectation n·d̄/4 per round).
	events := res.Stats.Matches
	if events == 0 {
		events = int(math.Ceil(float64(T) * float64(n) * matching.DBar(p.G.MaxDegree()) / 4))
	}
	eng, err := core.NewEngine(p.G, core.Params{Beta: beta, Rounds: T, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	seeds, ids := eng.Seeds()
	if len(seeds) == 0 {
		return t, nil
	}
	vectors := make([][]float64, len(seeds))
	for idx, seedNode := range seeds {
		y := make([]float64, n)
		y[seedNode] = 1
		vectors[idx] = y
	}
	gossip, err := loadbalance.NewAsyncGossip(p.G, vectors, cfg.Seed+9)
	if err != nil {
		return nil, err
	}
	gossip.Run(events)
	thr := core.Threshold(beta, n, 1)
	raw := make([]uint64, n)
	for v := 0; v < n; v++ {
		best := uint64(0)
		for idx := range gossip.Loads() {
			if gossip.Loads()[idx][v] >= thr && (best == 0 || ids[idx] < best) {
				best = ids[idx]
			}
		}
		raw[v] = best
	}
	labels, numLabels := densifyRaw(raw)
	misAsync, err := metrics.MisclassificationRate(p.Truth, labels)
	if err != nil {
		return nil, err
	}
	t.AddRow("asynchronous gossip", i(events), pct(misAsync), i(numLabels))
	return t, nil
}

// densifyRaw maps raw uint64 labels onto [0, k).
func densifyRaw(raw []uint64) ([]int, int) {
	m := map[uint64]int{}
	out := make([]int, len(raw))
	for i, r := range raw {
		d, ok := m[r]
		if !ok {
			d = len(m)
			m[r] = d
		}
		out[i] = d
	}
	return out, len(m)
}
