package experiments

import (
	"repro/internal/core"
	"repro/internal/loadbalance"
	"repro/internal/matching"
	"repro/internal/metrics"
)

// F9AsyncGossip aligns the synchronous matching model with the asynchronous
// gossip time model of Boyd et al., with both executions running as real
// messages on the dist runtime: the synchronous run is the propose → accept
// → exchange protocol of ClusterDistributed, and the asynchronous run fires
// nodes on a randomized clock via ClusterAsyncGossip, pushing half-states
// as real envelopes. The clocks are calibrated to an equal budget of
// pairwise averaging events (two async half-pushes per synchronous matched
// pair), seeding and query are shared, and the table reports the wire
// traffic of each execution from the network counters.
func F9AsyncGossip(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F9",
		Title: "Synchrony ablation: matching rounds vs asynchronous gossip",
		Notes: "Expected shape: at an equal budget of pairwise averaging " +
			"events, asynchronous message-level gossip clusters about as " +
			"accurately as the synchronous matching protocol — the paper's " +
			"synchrony assumption is analytic convenience, not a behavioural " +
			"requirement. Both rows are real dist-runtime executions with " +
			"per-message traffic accounting.",
		Headers: []string{"model", "averaging events", "messages", "words", "misclassified", "labels"},
	}
	p, _, T, err := ringInstance(cfg, 2, 250, 40, 1, 113)
	if err != nil {
		return nil, err
	}
	params := core.Params{Beta: p.MinClusterFraction(), Rounds: T, Seed: cfg.Seed + 1}

	// Synchronous run on the message substrate (bit-identical to the
	// sequential engine, with network accounting for free).
	sync, err := core.ClusterDistributed(p.G, params, core.DistOptions{Transport: cfg.Transport})
	if err != nil {
		return nil, err
	}
	misSync, err := metrics.MisclassificationRate(p.Truth, sync.Labels)
	if err != nil {
		return nil, err
	}
	t.AddRow("synchronous matching", i(sync.Stats.Matches),
		i64(sync.NetworkMessages), i64(sync.NetworkWords), pct(misSync), i(sync.NumLabels))

	// Asynchronous run with the same seeds and the same number of averaging
	// events (= matched pairs of the synchronous run; if the synchronous run
	// matched nothing, fall back to the expectation n·d̄/4 per round). Each
	// pairwise event costs two half-push firings.
	events := sync.Stats.Matches
	if events == 0 {
		events = loadbalance.MatchingEventBudget(p.G.N(), matching.DBar(p.G.MaxDegree()), T)
	}
	async, err := core.ClusterAsyncGossip(p.G, params, core.AsyncOptions{
		Ticks:     2 * events,
		ClockSeed: cfg.Seed + 9,
		Transport: cfg.Transport,
		Parallel:  cfg.Parallel,
	})
	if err != nil {
		return nil, err
	}
	misAsync, err := metrics.MisclassificationRate(p.Truth, async.Labels)
	if err != nil {
		return nil, err
	}
	t.AddRow("asynchronous gossip", i(events),
		i64(async.NetworkMessages), i64(async.NetworkWords), pct(misAsync), i(async.NumLabels))
	return t, nil
}
