package experiments

import (
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/loadbalance"
	"repro/internal/matching"
	"repro/internal/metrics"
)

// F9AsyncGossip aligns the synchronous matching model with the asynchronous
// gossip time model of Boyd et al., with both executions running as real
// messages on the dist runtime: the synchronous run is the propose → accept
// → exchange protocol of ClusterDistributed, and the asynchronous run fires
// nodes on a randomized clock via ClusterAsyncGossip, pushing half-states
// as real envelopes. The clocks are calibrated to an equal budget of
// pairwise averaging events (two async half-pushes per synchronous matched
// pair), seeding and query are shared, and the table reports the wire
// traffic of each execution from the network counters.
func F9AsyncGossip(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F9",
		Title: "Synchrony ablation: matching rounds vs asynchronous gossip",
		Notes: "Expected shape: at an equal budget of pairwise averaging " +
			"events, asynchronous message-level gossip clusters about as " +
			"accurately as the synchronous matching protocol — the paper's " +
			"synchrony assumption is analytic convenience, not a behavioural " +
			"requirement. Both rows are real dist-runtime executions with " +
			"per-message traffic accounting.",
		Headers: []string{"model", "averaging events", "messages", "words", "misclassified", "labels"},
	}
	p, _, T, err := ringInstance(cfg, 2, 250, 40, 1, 113)
	if err != nil {
		return nil, err
	}
	params := core.Params{Beta: p.MinClusterFraction(), Rounds: T, Seed: cfg.Seed + 1, StateBackend: cfg.StateBackend}

	// Synchronous run on the message substrate (bit-identical to the
	// sequential engine, with network accounting for free).
	sync, err := core.ClusterDistributed(p.G, params, core.DistOptions{Transport: cfg.Transport, Partition: cfg.Partition, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	misSync, err := metrics.MisclassificationRate(p.Truth, sync.Labels)
	if err != nil {
		return nil, err
	}
	t.AddRow("synchronous matching", i(sync.Stats.Matches),
		i64(sync.NetworkMessages), i64(sync.NetworkWords), pct(misSync), i(sync.NumLabels))

	// Asynchronous run with the same seeds and the same number of averaging
	// events (= matched pairs of the synchronous run; if the synchronous run
	// matched nothing, fall back to the expectation n·d̄/4 per round). Each
	// pairwise event costs two half-push firings.
	events := sync.Stats.Matches
	if events == 0 {
		events = loadbalance.MatchingEventBudget(p.G.N(), matching.DBar(p.G.MaxDegree()), T)
	}
	async, err := core.ClusterAsyncGossip(p.G, params, core.AsyncOptions{
		Ticks:     2 * events,
		ClockSeed: cfg.Seed + 9,
		Transport: cfg.Transport,
		Parallel:  cfg.Parallel,
		Partition: cfg.Partition,
		Obs:       cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	misAsync, err := metrics.MisclassificationRate(p.Truth, async.Labels)
	if err != nil {
		return nil, err
	}
	t.AddRow("asynchronous gossip", i(events),
		i64(async.NetworkMessages), i64(async.NetworkWords), pct(misAsync), i(async.NumLabels))
	return t, nil
}

// F10LossAblation quantifies what the substrate's losses cost the
// asynchronous gossip mode, and what the reliability layer buys back: a
// sweep of the push loss rate with a bounded mailbox (backpressure
// rejections on top of link drops), comparing plain push-sum against the
// retransmit-on-timeout reliable variant at an identical firing budget.
// Plain push-sum loses the mass a destroyed push carries — the deficit
// column — and its clustering degrades with the loss rate; the reliable
// variant retransmits until acked, de-duplicates, and reclaims stranded
// mass at quiesce, so its deficit is zero (up to float-summation ulps) and
// its accuracy stays at the fault-free level, paying for it in messages on
// the wire (every push is re-sent until its ack lands).
func F10LossAblation(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F10",
		Title: "Loss ablation: plain vs reliable async gossip under drops and backpressure",
		Notes: "Expected shape: plain push-sum's mass deficit grows with the " +
			"loss rate and its accuracy (ARI up, misclassification down) " +
			"degrades accordingly, while the reliable variant holds the " +
			"fault-free accuracy with a zero deficit at every loss rate — at " +
			"the price of ack and retransmission traffic. All rows share one " +
			"mailbox capacity, firing budget, and clock seed; 'rejected' " +
			"counts deliveries bounced off full mailboxes (backpressure), " +
			"'dropped' counts link-level losses.",
		Headers: []string{"loss", "model", "mailbox cap", "messages", "words",
			"dropped", "rejected", "mass deficit", "ARI", "misclassified"},
	}
	p, _, T, err := ringInstance(cfg, 2, 250, 40, 1, 127)
	if err != nil {
		return nil, err
	}
	n := p.G.N()
	params := core.Params{Beta: p.MinClusterFraction(), Rounds: T, Seed: cfg.Seed + 2, StateBackend: cfg.StateBackend}
	// One firing budget for every row (the expected matched-pair count of
	// the synchronous protocol, two half-pushes per pair), so the sweep
	// varies exactly one thing: what the substrate destroys.
	ticks := 2 * loadbalance.MatchingEventBudget(n, matching.DBar(p.G.MaxDegree()), T)
	// Moderate backpressure: small enough that rejections actually happen
	// once retransmissions compete for mailbox slots, large enough that the
	// reliable protocol is not pushed into congestion collapse.
	const mailboxCap = 12
	for _, loss := range []float64{0, 0.05, 0.2} {
		var model dist.DeliveryModel
		if loss > 0 {
			model = dist.LinkFaults{DropProb: loss, Seed: 31}
		}
		for _, reliable := range []bool{false, true} {
			name := "plain push-sum"
			if reliable {
				name = "reliable (retransmit)"
			}
			res, err := core.ClusterAsyncGossip(p.G, params, core.AsyncOptions{
				Ticks:      ticks,
				ClockSeed:  cfg.Seed + 17,
				Model:      model,
				MailboxCap: mailboxCap,
				Reliable:   reliable,
				Transport:  cfg.Transport,
				Parallel:   cfg.Parallel,
				Partition:  cfg.Partition,
				Obs:        cfg.Obs,
			})
			if err != nil {
				return nil, err
			}
			mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
			if err != nil {
				return nil, err
			}
			ari, err := metrics.ARI(p.Truth, res.Labels)
			if err != nil {
				return nil, err
			}
			deficit := float64(len(res.Seeds)) - res.TotalMass
			t.AddRow(pct(loss), name, i(mailboxCap),
				i64(res.NetworkMessages), i64(res.NetworkWords),
				i64(res.DroppedMessages), i64(res.RejectedMessages),
				f(deficit), f(ari), pct(mis))
		}
	}
	return t, nil
}
