// Package experiments regenerates every table and figure of the evaluation
// suite defined in DESIGN.md. The paper itself is purely theoretical, so
// each experiment here is derived from one of its quantitative claims
// (Theorem 1.1, Lemmas 2.1/4.1/4.3, the §1.3 comparisons); the expected
// *shape* of each result is recorded in the table notes and verified
// empirically in EXPERIMENTS.md.
//
// Experiments are deterministic under Config.Seed, and Config.Scale shrinks
// the instance sizes so the same code paths can run as quick benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Scale multiplies instance sizes; 1 reproduces the reference tables,
	// smaller values run the same sweep on smaller graphs. Values <= 0 mean 1.
	Scale float64
	// Seed drives all randomness.
	Seed uint64
	// Transport selects the delivery transport for every experiment that
	// runs on the dist runtime (currently F9). Every table is bit-identical
	// across transports — that is the Transport seam's contract — so this
	// exists to demonstrate it, not to change results.
	Transport core.TransportSpec
	// Parallel is the worker count for the parallel execution paths
	// (currently F9's asynchronous run, via AsyncOptions.Parallel): 0/1
	// serial, < 0 GOMAXPROCS. Like Transport, every table is bit-identical
	// across values — the scheduler replays the serial transcript.
	Parallel int
	// StateBackend selects the engine's node-state representation
	// (core.Params.StateBackend: "auto", "sparse", or "dense") for every
	// experiment. The backends are bit-identical, so like Transport and
	// Parallel this changes throughput, never a table.
	StateBackend string
	// Partition selects the node split across workers for every experiment
	// on the dist runtime (core.DistOptions/AsyncOptions.Partition: count,
	// degree, or adaptive). Like Transport and Parallel, every table is
	// bit-identical across modes — the split is load placement only.
	Partition core.PartitionSpec
	// Obs, when non-nil, attaches the observability layer to every run on
	// the dist runtime (currently F9 and F10): events accumulate in its
	// trace and the metric registries tally across the whole sweep
	// (registration is idempotent, counters are cumulative). Observation
	// never changes a table.
	Obs *obs.Observer
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// scaled returns max(lo, round(base*scale)).
func (c Config) scaled(base, lo int) int {
	v := int(float64(base)*c.scale() + 0.5)
	if v < lo {
		return lo
	}
	return v
}

// Table is one rendered experiment output (a paper table or the data series
// behind a figure).
type Table struct {
	ID      string
	Title   string
	Notes   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as GitHub markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Notes != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Notes)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes-free cells by
// construction: all our cells are numbers or simple identifiers).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}

// Experiment couples an identifier with its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Table, error)
}

// All lists every experiment in the suite, tables first.
func All() []Experiment {
	return []Experiment{
		{"T1", "Accuracy vs cluster gap Υ", T1AccuracyVsGap},
		{"T2", "Round complexity scaling", T2RoundScaling},
		{"T3", "Message complexity vs baselines", T3MessageComplexity},
		{"T4", "Accuracy across graph families vs baselines", T4Baselines},
		{"T5", "Seeding procedure", T5Seeding},
		{"T6", "Sequential runtime vs spectral clustering", T6Runtime},
		{"F1", "Load convergence inside a cluster", F1LoadConvergence},
		{"F2", "Accuracy vs rounds", F2AccuracyVsRounds},
		{"F3", "Accuracy vs number of clusters", F3AccuracyVsK},
		{"F4", "Almost-regular robustness", F4AlmostRegular},
		{"F5", "Matching-matrix law (Lemma 2.1)", F5MatchingLaw},
		{"F6", "Ablations: averaging model and threshold", F6Ablations},
		{"F7", "Alternative balancing models", F7BalancingModels},
		{"F8", "Early-behaviour bound (Lemma 4.1)", F8EarlyBehaviourBound},
		{"F9", "Synchrony ablation: async gossip", F9AsyncGossip},
		{"F10", "Loss ablation: plain vs reliable async gossip", F10LossAblation},
	}
}

// ByID returns the experiment with the given (case-insensitive) id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// f formats a float compactly for table cells.
func f(x float64) string { return fmt.Sprintf("%.4g", x) }

// pct formats a rate as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// i formats an int.
func i(x int) string { return fmt.Sprintf("%d", x) }

// i64 formats an int64.
func i64(x int64) string { return fmt.Sprintf("%d", x) }
