package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/linalg"
	"repro/internal/loadbalance"
	"repro/internal/matching"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/spectral"
)

// F7BalancingModels contrasts the paper's randomized matching protocol with
// two related-work balancing models on the same instance: the deterministic
// balancing circuit (edge-colouring schedule, Rabani–Sinclair–Wanka) for the
// full clustering task, and the indivisible-token process (Berenbrink et
// al.) for the one-dimensional discrepancy trajectory.
func F7BalancingModels(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F7",
		Title: "Alternative balancing models (2-cluster ring)",
		Notes: "Expected shape: the deterministic balancing circuit clusters " +
			"as well as the randomized protocol at equal round budgets " +
			"(randomization buys simplicity, not accuracy); the discrete " +
			"token process tracks the continuous one down to an O(1) " +
			"discrepancy floor.",
		Headers: []string{"part", "setting", "rounds", "value"},
	}
	p, _, T, err := ringInstance(cfg, 2, 250, 40, 1, 103)
	if err != nil {
		return nil, err
	}
	beta := p.MinClusterFraction()

	// Part (a): clustering accuracy, random protocol vs circuit schedule.
	res, err := core.Cluster(p.G, core.Params{Beta: beta, Rounds: T, Seed: cfg.Seed + 1, StateBackend: cfg.StateBackend})
	if err != nil {
		return nil, err
	}
	misRand, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		return nil, err
	}
	t.AddRow("clustering", "random matching", i(T), pct(misRand))

	engine, err := core.NewEngine(p.G, core.Params{Beta: beta, Rounds: T, Seed: cfg.Seed + 1, StateBackend: cfg.StateBackend})
	if err != nil {
		return nil, err
	}
	circuit, err := matching.NewBalancingCircuit(p.G, rng.New(cfg.Seed+2))
	if err != nil {
		return nil, err
	}
	// The circuit applies every edge exactly once per sweep, so one sweep
	// does roughly d/2 matchings' worth of averaging; run the same number of
	// *matching applications* as the random protocol for a fair comparison.
	for round := 0; round < T; round++ {
		engine.StepWith(circuit.Next())
	}
	cres := engine.Query()
	misCircuit, err := metrics.MisclassificationRate(p.Truth, cres.Labels)
	if err != nil {
		return nil, err
	}
	t.AddRow("clustering", "balancing circuit", i(T), pct(misCircuit))

	// Part (b): 1-dim discrepancy, continuous vs discrete tokens, on a
	// fast-mixing expander so the runs reach the regime where they differ:
	// the continuous process decays geometrically forever while rounding
	// pins the token process at an O(1) discrepancy floor.
	exp, err := gen.RandomRegular(cfg.scaled(400, 64), 16, rng.New(cfg.Seed+7))
	if err != nil {
		return nil, err
	}
	n := exp.N()
	const tokens = 1 << 20
	y0f := make([]float64, n)
	y0f[0] = tokens
	y0i := make([]int64, n)
	y0i[0] = tokens
	pf, err := loadbalance.NewProcess(exp, exp.MaxDegree(), y0f, cfg.Seed+5)
	if err != nil {
		return nil, err
	}
	pi, err := loadbalance.NewDiscreteProcess(exp, exp.MaxDegree(), y0i, cfg.Seed+5)
	if err != nil {
		return nil, err
	}
	checkpoints := []int{50, 150, 400, 900, 2000}
	prev := 0
	for _, cp := range checkpoints {
		pf.Run(cp - prev)
		pi.Run(cp - prev)
		prev = cp
		t.AddRow("discrepancy", "continuous", i(cp), f(loadbalance.Discrepancy(pf.Load())))
		t.AddRow("discrepancy", "discrete tokens", i(cp),
			f(float64(loadbalance.DiscreteDiscrepancy(pi.Load()))))
	}
	return t, nil
}

// F8EarlyBehaviourBound validates Lemma 4.1 numerically: the expected
// distance E‖Q·y(0) − y(t)‖ stays below the bound 2√(t(1−λ_k))·‖Q·y(0)‖ and
// both grow with t (Remark 1 — the bound is increasing because the process
// eventually leaves the top-k subspace's cluster structure for the global
// uniform vector).
func F8EarlyBehaviourBound(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F8",
		Title: "Early-behaviour bound of Lemma 4.1 (2-cluster ring)",
		Notes: "Expected shape: Lemma 4.1 is stated for t ≥ T, so checkpoints " +
			"start at T: the measured E‖Qy(0)−y(t)‖ sits below the bound " +
			"2·sqrt(t_eff(1−λ_k))·‖Qy(0)‖ at every t ≥ T, and the measured " +
			"error grows slowly with t (Remark 1).",
		Headers: []string{"t", "measured E‖Qy(0)−y(t)‖", "Lemma 4.1 bound", "bound/measured"},
	}
	p, st, T, err := ringInstance(cfg, 2, 200, 40, 1, 107)
	if err != nil {
		return nil, err
	}
	n := p.G.N()
	k := 2
	// Projection Q onto span(f_1..f_k).
	project := func(y []float64) []float64 {
		out := make([]float64, n)
		for i := 0; i < k; i++ {
			linalg.AddScaled(out, linalg.Dot(y, st.Eigvecs[i]), st.Eigvecs[i])
		}
		return out
	}
	// Start from a good node (smallest α).
	ga, err := spectral.AnalyzeGoodNodes(p.G, p.Truth, k, st.Eigvecs[:k])
	if err != nil {
		return nil, err
	}
	good := 0
	for v := 1; v < n; v++ {
		if ga.Alpha[v] < ga.Alpha[good] {
			good = v
		}
	}
	y0 := make([]float64, n)
	y0[good] = 1
	qy0 := project(y0)
	qy0Norm := linalg.Norm(qy0)

	lambdaK := st.LambdaK
	const reps = 12
	checkpoints := []int{T, 3 * T / 2, 2 * T, 3 * T, 4 * T}
	sums := make([]float64, len(checkpoints))
	for rep := 0; rep < reps; rep++ {
		proc, err := loadbalance.NewProcess(p.G, p.G.MaxDegree(), y0, cfg.Seed+uint64(rep)*31)
		if err != nil {
			return nil, err
		}
		prev := 0
		for ci, cp := range checkpoints {
			proc.Run(cp - prev)
			prev = cp
			sums[ci] += linalg.Dist(qy0, proc.Load())
		}
	}
	// The Lemma is stated for the idealized per-round gap; in the matching
	// model t rounds realise an effective t_eff = t·d̄/4 applications of the
	// averaged operator, so the bound uses t_eff (this is the same constant
	// absorbed into the paper's Θ(·) for T).
	db := matching.DBar(p.G.MaxDegree())
	for ci, cp := range checkpoints {
		measured := sums[ci] / reps
		tEff := float64(cp) * db / 4
		bound := 2 * math.Sqrt(tEff*(1-lambdaK)) * qy0Norm
		ratio := math.Inf(1)
		if measured > 0 {
			ratio = bound / measured
		}
		t.AddRow(i(cp), f(measured), f(bound), f(ratio))
	}
	return t, nil
}
