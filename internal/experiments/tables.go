package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/spectral"
)

// ringInstance builds a clustered-ring instance and analyses its spectral
// structure (Υ, λ_{k+1}, the matching-model round budget).
func ringInstance(cfg Config, k, baseSize, dIn, c int, seedOffset uint64) (*gen.Planted, *spectral.Structure, int, error) {
	// Keep the cluster size at least 4x the internal degree so the
	// configuration-model repair stays in its sparse fast regime even at
	// small benchmark scales.
	size := cfg.scaled(baseSize, 4*dIn)
	if size*dIn%2 != 0 {
		size++
	}
	p, err := gen.ClusteredRing(k, size, dIn, c, rng.New(cfg.Seed+seedOffset))
	if err != nil {
		return nil, nil, 0, err
	}
	st, err := spectral.Analyze(p.G, p.Truth, k, cfg.Seed+seedOffset+1)
	if err != nil {
		return nil, nil, 0, err
	}
	T := spectral.EstimateRoundsMatching(p.G.N(), st.LambdaK1, p.G.MaxDegree(), 1.5)
	return p, st, T, nil
}

// runCore executes the clustering algorithm and scores it against the
// planted truth.
func runCore(p *gen.Planted, T int, seed uint64, backend string) (mis, ari float64, res *core.Result, err error) {
	res, err = core.Cluster(p.G, core.Params{
		Beta:         p.MinClusterFraction(),
		Rounds:       T,
		Seed:         seed,
		StateBackend: backend,
	})
	if err != nil {
		return 0, 0, nil, err
	}
	mis, err = metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		return 0, 0, nil, err
	}
	ari, err = metrics.ARI(p.Truth, res.Labels)
	if err != nil {
		return 0, 0, nil, err
	}
	return mis, ari, res, nil
}

// meanCoreRuns averages misclassification and ARI over a few seeds.
func meanCoreRuns(p *gen.Planted, T int, seeds []uint64, backend string) (mis, ari float64, words int64, err error) {
	for _, s := range seeds {
		m, a, res, e := runCore(p, T, s, backend)
		if e != nil {
			return 0, 0, 0, e
		}
		mis += m
		ari += a
		words += res.Stats.TotalWords()
	}
	n := float64(len(seeds))
	return mis / n, ari / n, words / int64(len(seeds)), nil
}

// T1AccuracyVsGap sweeps the cross-matching count of a 4-cluster ring,
// trading off the gap parameter Υ against the cut size, and reports the
// misclassification rate (Theorem 1.1(1): error vanishes once Υ clears the
// gap condition).
func T1AccuracyVsGap(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T1",
		Title: "Accuracy vs cluster gap Υ (4-cluster ring, internal degree 60)",
		Notes: "Expected shape: misclassification falls towards 0 as Υ grows " +
			"(fewer cross matchings); ARI rises towards 1.",
		Headers: []string{"cross-matchings", "n", "d", "rho(k)", "lambda_{k+1}", "Upsilon", "T", "misclassified", "ARI"},
	}
	for _, c := range []int{16, 8, 4, 2, 1} {
		p, st, T, err := ringInstance(cfg, 4, 250, 60, c, uint64(c))
		if err != nil {
			return nil, err
		}
		mis, ari, _, err := meanCoreRuns(p, T, []uint64{1, 2, 3}, cfg.StateBackend)
		if err != nil {
			return nil, err
		}
		t.AddRow(i(c), i(p.G.N()), i(p.G.MaxDegree()), f(st.RhoK), f(st.LambdaK1),
			f(st.Upsilon), i(T), pct(mis), f(ari))
	}
	return t, nil
}

// T2RoundScaling measures the empirical number of rounds needed to reach 5%
// misclassification as n grows, against the predicted Θ(log n/(1−λ_{k+1}))
// budget.
func T2RoundScaling(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T2",
		Title: "Round complexity scaling (3-cluster ring, internal degree 60)",
		Notes: "Expected shape: empirical rounds T* grow linearly in log n; " +
			"T*/log n stays near-constant while n doubles.",
		Headers: []string{"n", "ln n", "lambda_{k+1}", "T_pred", "T* (5% err)", "T*/ln n"},
	}
	for _, baseSize := range []int{240, 480, 960, 1920, 3840} {
		p, st, T, err := ringInstance(cfg, 3, baseSize, 60, 1, uint64(baseSize))
		if err != nil {
			return nil, err
		}
		n := p.G.N()
		// Median over a few protocol seeds smooths matching noise.
		var stars []int
		for _, seed := range []uint64{7, 8, 9} {
			tStar, err := roundsToAccuracy(p, cfg.Seed+seed, T, cfg.StateBackend)
			if err != nil {
				return nil, err
			}
			if tStar > 0 {
				stars = append(stars, tStar)
			}
		}
		tStarCell := "not reached"
		ratioCell := "-"
		if len(stars) > 0 {
			sortInts(stars)
			med := stars[len(stars)/2]
			tStarCell = i(med)
			ratioCell = f(float64(med) / math.Log(float64(n)))
		}
		t.AddRow(i(n), f(math.Log(float64(n))), f(st.LambdaK1), i(T), tStarCell, ratioCell)
	}
	return t, nil
}

// roundsToAccuracy steps an engine until misclassification drops to 5%,
// returning the round count (-1 if 5·T rounds were not enough).
func roundsToAccuracy(p *gen.Planted, seed uint64, T int, backend string) (int, error) {
	eng, err := core.NewEngine(p.G, core.Params{
		Beta:         p.MinClusterFraction(),
		Rounds:       1,
		Seed:         seed,
		StateBackend: backend,
	})
	if err != nil {
		return 0, err
	}
	limit := 5 * T
	step := T / 20
	if step < 1 {
		step = 1
	}
	for eng.Round() < limit {
		for i := 0; i < step; i++ {
			eng.Step()
		}
		res := eng.Query()
		mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
		if err != nil {
			return 0, err
		}
		if mis <= 0.05 {
			return eng.Round(), nil
		}
	}
	return -1, nil
}

// sortInts is a tiny insertion sort (slices used here have <= 3 elements).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// T3MessageComplexity compares the words exchanged by the matching-model
// algorithm against Becchetti-style averaging dynamics and Kempe–McSherry
// orthogonal iteration as the graph densifies (Theorem 1.1(2): our cost is
// O(T·n·k log k), independent of m).
func T3MessageComplexity(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T3",
		Title: "Message complexity vs baselines (2 clusters, degree sweep)",
		Notes: "Expected shape: matching-model words stay flat as the degree " +
			"doubles; all-neighbour baselines grow linearly in m; " +
			"Kempe–McSherry pays the global mixing time on top.",
		Headers: []string{"dIn", "m", "T", "LB words", "Becchetti rounds", "Becchetti words",
			"KM total rounds", "KM words", "Becchetti/LB", "KM/LB"},
	}
	for _, dIn := range []int{8, 16, 32, 64} {
		p, st, T, err := ringInstance(cfg, 2, 1000, dIn, 1, uint64(dIn))
		if err != nil {
			return nil, err
		}
		_, _, lbWords, err := meanCoreRuns(p, T, []uint64{1}, cfg.StateBackend)
		if err != nil {
			return nil, err
		}
		// Equal-contraction round budget for diffusion: per round the
		// matching model contracts by (d̄/4)(1−λ) versus (1−λ)/2 for lazy
		// diffusion, so diffusion needs a d̄/2 fraction of the rounds.
		db := matchingDBar(p.G.MaxDegree())
		diffRounds := int(math.Ceil(float64(T) * db / 2))
		if diffRounds < 1 {
			diffRounds = 1
		}
		bec, err := baselines.AveragingDynamics(p.G, 2, diffRounds, 1, cfg.Seed+3)
		if err != nil {
			return nil, err
		}
		km, err := baselines.KempeMcSherry(p.G, 2, 3000, 1e-7, cfg.Seed+5)
		if err != nil {
			return nil, err
		}
		_ = st // structure retained for potential notes; T already derived
		t.AddRow(i(dIn), i(p.G.M()), i(T), i64(lbWords),
			i(bec.Rounds), i64(bec.Words),
			i(km.TotalRounds), i64(km.Words),
			f(float64(bec.Words)/float64(lbWords)),
			f(float64(km.Words)/float64(lbWords)))
	}
	return t, nil
}

// matchingDBar mirrors matching.DBar without the import (avoids an import
// cycle risk if matching ever grows experiment hooks).
func matchingDBar(d int) float64 {
	if d <= 0 {
		return 1
	}
	base := 1 - 1/(2*float64(d))
	out := 1.0
	for i := 0; i < d-1; i++ {
		out *= base
	}
	return out
}

// T4Baselines scores the algorithm against the practice-dominant baselines
// on three well-clustered graph families.
func T4Baselines(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T4",
		Title: "Accuracy across graph families vs baselines",
		Notes: "Expected shape: LB clustering lands within a few points of " +
			"centralised spectral clustering on well-clustered inputs; LPA " +
			"is unreliable on flat-degree SBMs; multilevel cuts are " +
			"competitive by construction.",
		Headers: []string{"family", "n", "k", "algorithm", "misclassified", "ARI"},
	}
	type instance struct {
		name string
		p    *gen.Planted
	}
	var instances []instance
	// Ring of expanders.
	rp, _, ringT, err := ringInstance(cfg, 4, 150, 60, 1, 11)
	if err != nil {
		return nil, err
	}
	instances = append(instances, instance{"ring-of-expanders", rp})
	// Stochastic block model (internal degree high enough that the G*
	// self-loop view stays well-clustered; see examples/sbm).
	sp, err := gen.SBMBalanced(3, cfg.scaled(250, 40), 60, 2, rng.New(cfg.Seed+13))
	if err != nil {
		return nil, err
	}
	sp = gen.GiantComponent(sp)
	instances = append(instances, instance{"sbm", sp})
	// Caveman graph.
	cp := gen.Caveman(8, cfg.scaled(60, 8))
	instances = append(instances, instance{"caveman", cp})
	// Power-law communities: heavy-tailed degrees, outside the §4.5
	// assumption — included to show every algorithm's behaviour at the
	// boundary.
	pl, err := gen.PowerLawCluster(2, cfg.scaled(300, 60), 2.3, 8, 120, 1.5, rng.New(cfg.Seed+43))
	if err != nil {
		return nil, err
	}
	pl = gen.GiantComponent(pl)
	if pl.K == 2 {
		instances = append(instances, instance{"power-law", pl})
	}

	for _, inst := range instances {
		p := inst.p
		k := p.K
		st, err := spectral.Analyze(p.G, p.Truth, k, cfg.Seed+17)
		if err != nil {
			return nil, err
		}
		T := spectral.EstimateRoundsMatching(p.G.N(), st.LambdaK1, p.G.MaxDegree(), 1.5)
		if inst.name == "ring-of-expanders" {
			T = ringT
		}
		// Heavy-tailed instances can push the estimate into the tens of
		// thousands; cap the budget so the sweep stays bounded.
		if T > 4000 {
			T = 4000
		}
		score := func(algo string, labels []int) error {
			mis, err := metrics.MisclassificationRate(p.Truth, labels)
			if err != nil {
				return err
			}
			ari, err := metrics.ARI(p.Truth, labels)
			if err != nil {
				return err
			}
			t.AddRow(inst.name, i(p.G.N()), i(k), algo, pct(mis), f(ari))
			return nil
		}
		mis, ari, _, err := meanCoreRuns(p, T, []uint64{1, 2, 3}, cfg.StateBackend)
		if err != nil {
			return nil, err
		}
		t.AddRow(inst.name, i(p.G.N()), i(k), "loadbalance", pct(mis), f(ari))
		sc, err := baselines.SpectralCluster(p.G, k, cfg.Seed+19)
		if err != nil {
			return nil, err
		}
		if err := score("spectral+kmeans", sc.Labels); err != nil {
			return nil, err
		}
		lp, err := baselines.LabelPropagation(p.G, 100, cfg.Seed+23)
		if err != nil {
			return nil, err
		}
		if err := score("label-propagation", lp.Labels); err != nil {
			return nil, err
		}
		ml, err := baselines.MultilevelKWay(p.G, k, cfg.Seed+29)
		if err != nil {
			return nil, err
		}
		if err := score("multilevel", ml.Labels); err != nil {
			return nil, err
		}
		av, err := baselines.AveragingDynamics(p.G, k, T/2+1, 2*k, cfg.Seed+31)
		if err != nil {
			return nil, err
		}
		if err := score("averaging-dynamics", av.Labels); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// T5Seeding sweeps the β parameter handed to the algorithm on a graph whose
// true minimum cluster fraction is 0.25, validating the seeding analysis in
// the proof of Theorem 1.1 (all clusters seeded with probability ≥ 1−e⁻³
// when β is a valid lower bound).
func T5Seeding(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T5",
		Title: "Seeding procedure (4-cluster ring, true β = 0.25)",
		Notes: "Expected shape: β near the true bound works best. " +
			"Overestimating β (0.4) cuts the trial count and starts missing " +
			"clusters; underestimating it (0.05) floods the graph with seeds " +
			"AND raises the query threshold 1/(sqrt(2β)n) towards the true " +
			"in-cluster level 1/|S|, squeezing the decision margin — both " +
			"knobs of the theorem really do depend on β being tight.",
		Headers: []string{"beta param", "s̄ trials", "mean seeds", "P[all clusters seeded]", "mean misclassified"},
	}
	p, _, T, err := ringInstance(cfg, 4, 150, 48, 1, 37)
	if err != nil {
		return nil, err
	}
	members := spectral.ClusterMembers(p.Truth, 4)
	const runs = 12
	for _, beta := range []float64{0.05, 0.1, 0.25, 0.4} {
		sBar := core.SeedTrials(beta)
		totalSeeds := 0
		allSeeded := 0
		misSum := 0.0
		for run := 0; run < runs; run++ {
			eng, err := core.NewEngine(p.G, core.Params{
				Beta:         beta,
				Rounds:       T,
				Seed:         cfg.Seed + uint64(run)*101 + uint64(beta*1000),
				StateBackend: cfg.StateBackend,
			})
			if err != nil {
				return nil, err
			}
			seeds, _ := eng.Seeds()
			totalSeeds += len(seeds)
			hit := make([]bool, 4)
			for _, s := range seeds {
				hit[p.Truth[s]] = true
			}
			all := true
			for c := range members {
				if !hit[c] {
					all = false
				}
			}
			if all {
				allSeeded++
			}
			eng.Run(T)
			res := eng.Query()
			mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
			if err != nil {
				return nil, err
			}
			misSum += mis
		}
		t.AddRow(f(beta), i(sBar), f(float64(totalSeeds)/runs),
			f(float64(allSeeded)/runs), pct(misSum/runs))
	}
	return t, nil
}

// T6Runtime times the sequential algorithm against centralised spectral
// clustering as n grows (§1.2: the algorithm runs in O(n·log n) given the
// round budget, versus the eigensolver's Ω(m·iterations)).
func T6Runtime(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T6",
		Title: "Sequential runtime: load-balancing clustering vs spectral clustering",
		Notes: "Expected shape: in the n-sweep LB time per node stays " +
			"near-flat (n·polylog); in the density sweep (fixed n) LB time " +
			"is insensitive to m — its work is O(T·n + T·n·s) — while the " +
			"eigensolver pays O(m) per matvec, so the spectral/LB ratio " +
			"grows with the degree. This is the practical face of the §1.2 " +
			"sub-linear-time claim.",
		Headers: []string{"sweep", "n", "m", "T", "LB ms", "LB µs/node", "spectral ms", "spectral/LB"},
	}
	row := func(sweep string, p *gen.Planted, T int) error {
		// Min of two runs damps GC and cache noise on single measurements.
		var lb, sp time.Duration
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			if _, _, _, err := runCore(p, T, cfg.Seed+1, cfg.StateBackend); err != nil {
				return err
			}
			if d := time.Since(start); rep == 0 || d < lb {
				lb = d
			}
			start = time.Now()
			if _, err := baselines.SpectralCluster(p.G, 2, cfg.Seed+2); err != nil {
				return err
			}
			if d := time.Since(start); rep == 0 || d < sp {
				sp = d
			}
		}
		n := p.G.N()
		t.AddRow(sweep, i(n), i(p.G.M()), i(T),
			fmt.Sprintf("%.2f", float64(lb.Microseconds())/1000),
			f(float64(lb.Microseconds())/float64(n)),
			fmt.Sprintf("%.2f", float64(sp.Microseconds())/1000),
			f(float64(sp.Nanoseconds())/float64(lb.Nanoseconds())))
		return nil
	}
	for _, baseSize := range []int{250, 500, 1000, 2000, 4000} {
		p, _, T, err := ringInstance(cfg, 2, baseSize, 20, 1, uint64(baseSize)+41)
		if err != nil {
			return nil, err
		}
		if err := row("n", p, T); err != nil {
			return nil, err
		}
	}
	for _, dIn := range []int{16, 32, 64, 128} {
		p, _, T, err := ringInstance(cfg, 2, 1000, dIn, 1, uint64(dIn)+157)
		if err != nil {
			return nil, err
		}
		if err := row("density", p, T); err != nil {
			return nil, err
		}
	}
	return t, nil
}
