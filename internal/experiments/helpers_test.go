package experiments

import (
	"testing"

	"repro/internal/matching"
)

func TestMatchingDBarMirrorsCanonical(t *testing.T) {
	for _, d := range []int{0, 1, 2, 3, 8, 17, 64} {
		if got, want := matchingDBar(d), matching.DBar(d); got != want {
			t.Errorf("d=%d: %v != %v", d, got, want)
		}
	}
}

func TestSortInts(t *testing.T) {
	xs := []int{3, 1, 2}
	sortInts(xs)
	if xs[0] != 1 || xs[1] != 2 || xs[2] != 3 {
		t.Errorf("sorted: %v", xs)
	}
	sortInts(nil) // must not panic
	one := []int{5}
	sortInts(one)
	if one[0] != 5 {
		t.Error("singleton corrupted")
	}
}

func TestRoundsToAccuracyFindsWindow(t *testing.T) {
	cfg := Config{Scale: 0.25, Seed: 1}
	p, _, T, err := ringInstance(cfg, 2, 200, 40, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	tStar, err := roundsToAccuracy(p, 7, T, "")
	if err != nil {
		t.Fatal(err)
	}
	if tStar <= 0 || tStar > 5*T {
		t.Errorf("tStar = %d (T = %d)", tStar, T)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if f(1.23456) != "1.235" {
		t.Errorf("f: %q", f(1.23456))
	}
	if pct(0.1234) != "12.34%" {
		t.Errorf("pct: %q", pct(0.1234))
	}
	if i(42) != "42" || i64(1<<40) != "1099511627776" {
		t.Error("int formatting")
	}
}
