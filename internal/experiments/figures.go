package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/linalg"
	"repro/internal/loadbalance"
	"repro/internal/matching"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/spectral"
)

// F1LoadConvergence traces the one-dimensional load-balancing process from a
// good seed and from a bad seed (Lemma 4.3 and Remark 1): distance to the
// cluster indicator χ_{S_j} over time, averaged over a few matchings.
func F1LoadConvergence(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F1",
		Title: "Load convergence inside a cluster (1-dim process, 2-block SBM)",
		Notes: "Expected shape: from a good seed (small α_v), ‖y(t)−χ_S‖ " +
			"falls fast, plateaus near its minimum around t≈T, then drifts " +
			"up slowly as the walk mixes globally (Remark 1); a bad seed " +
			"(large α_v) plateaus higher. The instance is an SBM rather " +
			"than the symmetric ring because the ring's vertex-transitive " +
			"structure makes every node equally good.",
		Headers: []string{"t", "t/T", "dist good seed", "dist bad seed", "dist to uniform (good)"},
	}
	p, err := gen.SBMBalanced(2, cfg.scaled(250, 50), 50, 2, rng.New(cfg.Seed+61))
	if err != nil {
		return nil, err
	}
	p = gen.GiantComponent(p)
	if p.K != 2 {
		return nil, fmt.Errorf("experiments: SBM lost a block")
	}
	st, err := spectral.Analyze(p.G, p.Truth, 2, cfg.Seed+62)
	if err != nil {
		return nil, err
	}
	T := spectral.EstimateRoundsMatching(p.G.N(), st.LambdaK1, p.G.MaxDegree(), 1.5)
	ga, err := spectral.AnalyzeGoodNodes(p.G, p.Truth, 2, st.Eigvecs[:2])
	if err != nil {
		return nil, err
	}
	good, bad := 0, 0
	for v := 1; v < p.G.N(); v++ {
		if ga.Alpha[v] < ga.Alpha[good] {
			good = v
		}
		if ga.Alpha[v] > ga.Alpha[bad] {
			bad = v
		}
	}
	members := spectral.ClusterMembers(p.Truth, 2)
	n := p.G.N()
	const reps = 3
	steps := 24
	checkEvery := (3*T + steps - 1) / steps
	if checkEvery < 1 {
		checkEvery = 1
	}
	type series struct {
		distGood, distBad, uniGood []float64
	}
	agg := series{
		distGood: make([]float64, steps+1),
		distBad:  make([]float64, steps+1),
		uniGood:  make([]float64, steps+1),
	}
	times := make([]int, steps+1)
	for rep := 0; rep < reps; rep++ {
		y0g := make([]float64, n)
		y0g[good] = 1
		y0b := make([]float64, n)
		y0b[bad] = 1
		// Both seeds evolve under the same matchings (multi-process), which
		// isolates the seed quality effect.
		mp, err := loadbalance.NewMultiProcess(p.G, p.G.MaxDegree(), [][]float64{y0g, y0b}, cfg.Seed+uint64(rep)*17)
		if err != nil {
			return nil, err
		}
		for sIdx := 0; sIdx <= steps; sIdx++ {
			times[sIdx] = mp.Round()
			agg.distGood[sIdx] += loadbalance.DistanceToIndicator(mp.Loads()[0], members[p.Truth[good]])
			agg.distBad[sIdx] += loadbalance.DistanceToIndicator(mp.Loads()[1], members[p.Truth[bad]])
			agg.uniGood[sIdx] += loadbalance.L2ToUniform(mp.Loads()[0])
			mp.Run(checkEvery)
		}
	}
	for sIdx := 0; sIdx <= steps; sIdx++ {
		t.AddRow(i(times[sIdx]), f(float64(times[sIdx])/float64(T)),
			f(agg.distGood[sIdx]/reps), f(agg.distBad[sIdx]/reps), f(agg.uniGood[sIdx]/reps))
	}
	return t, nil
}

// F2AccuracyVsRounds traces misclassification as a function of the round at
// which the query procedure fires: accuracy is best in the early window
// around T and washes out as t approaches the global mixing time.
func F2AccuracyVsRounds(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F2",
		Title: "Accuracy vs rounds (3-cluster ring)",
		Notes: "Expected shape: misclassification dips to its minimum in a " +
			"window around the theoretical T and degrades once the process " +
			"mixes globally.",
		Headers: []string{"t", "t/T", "misclassified", "labels"},
	}
	p, _, T, err := ringInstance(cfg, 3, 120, 60, 1, 67)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(p.G, core.Params{
		Beta:         p.MinClusterFraction(),
		Rounds:       1,
		Seed:         cfg.Seed + 3,
		StateBackend: cfg.StateBackend,
	})
	if err != nil {
		return nil, err
	}
	limit := 8 * T
	steps := 24
	checkEvery := (limit + steps - 1) / steps
	if checkEvery < 1 {
		checkEvery = 1
	}
	for eng.Round() <= limit {
		res := eng.Query()
		mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
		if err != nil {
			return nil, err
		}
		t.AddRow(i(eng.Round()), f(float64(eng.Round())/float64(T)), pct(mis), i(res.NumLabels))
		eng.Run(checkEvery)
	}
	return t, nil
}

// F3AccuracyVsK sweeps the number of planted clusters at a fixed cluster
// size (Theorem 1.1's dependence on k through the gap condition).
func F3AccuracyVsK(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F3",
		Title: "Accuracy vs number of clusters (fixed cluster size)",
		Notes: "Expected shape: error stays small while Υ comfortably exceeds " +
			"the k-dependent gap requirement, degrading gently as k grows " +
			"and the per-cluster spectral margin shrinks.",
		Headers: []string{"k", "n", "Upsilon", "T", "misclassified", "ARI"},
	}
	for _, k := range []int{2, 3, 4, 6, 8} {
		p, st, T, err := ringInstance(cfg, k, 120, 50, 1, uint64(71+k))
		if err != nil {
			return nil, err
		}
		mis, ari, _, err := meanCoreRuns(p, T, []uint64{1, 2, 3}, cfg.StateBackend)
		if err != nil {
			return nil, err
		}
		t.AddRow(i(k), i(p.G.N()), f(st.Upsilon), i(T), pct(mis), f(ari))
	}
	return t, nil
}

// F4AlmostRegular sweeps the degree ratio Δ/δ of a two-block SBM and runs
// the G* protocol of §4.5 (self-loop padding to the degree bound D).
func F4AlmostRegular(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F4",
		Title: "Almost-regular robustness (two-block SBM, G* protocol)",
		Notes: "Expected shape: accuracy holds while Δ/δ stays bounded by a " +
			"small constant (§4.5's regime), with a graceful slide as the " +
			"imbalance grows and the uniform-load fixed point distorts.",
		Headers: []string{"target ratio", "measured max/min degree", "n", "T", "misclassified", "ARI"},
	}
	size := cfg.scaled(300, 60)
	// Keep the densest block's edge probability below 1 at any scale (the
	// ratio sweep tops out at 3).
	baseDeg := 30.0
	if limit := float64(size-1) / 4; baseDeg > limit {
		baseDeg = limit
	}
	for _, ratio := range []float64{1, 1.5, 2, 3} {
		r := rng.New(cfg.Seed + uint64(ratio*10))
		pIn := []float64{
			baseDeg / float64(size-1),
			baseDeg * ratio / float64(size-1),
		}
		pOut := 1.5 / float64(size)
		p, err := gen.SBMHetero([]int{size, size}, pIn, pOut, r)
		if err != nil {
			return nil, err
		}
		p = gen.GiantComponent(p)
		if p.K < 2 {
			continue
		}
		st, err := spectral.Analyze(p.G, p.Truth, 2, cfg.Seed+5)
		if err != nil {
			return nil, err
		}
		T := spectral.EstimateRoundsMatching(p.G.N(), st.LambdaK1, p.G.MaxDegree(), 1.5)
		mis, ari, _, err := meanCoreRuns(p, T, []uint64{1, 2, 3}, cfg.StateBackend)
		if err != nil {
			return nil, err
		}
		t.AddRow(f(ratio), f(p.G.DegreeRatio()), i(p.G.N()), i(T), pct(mis), f(ari))
	}
	return t, nil
}

// F5MatchingLaw validates Lemma 2.1 empirically: the sample mean of the
// matching matrix converges to (1−d̄/4)I + (d̄/4)P at the Monte-Carlo rate,
// and the matched fraction tracks d̄/2.
func F5MatchingLaw(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F5",
		Title: "Matching-matrix law (Lemma 2.1) on a random 6-regular graph",
		Notes: "Expected shape: max entry deviation from (1−d̄/4)I+(d̄/4)P " +
			"decays like N^{-1/2} (the ratio column stays near-constant); " +
			"matched fraction stays near d̄/2.",
		Headers: []string{"samples N", "max deviation", "deviation·sqrt(N)", "matched fraction", "d̄/2"},
	}
	nNodes := cfg.scaled(24, 12)
	if nNodes%2 == 1 {
		nNodes++
	}
	const d = 6
	g, err := gen.RandomRegular(nNodes, d, rng.New(cfg.Seed+83))
	if err != nil {
		return nil, err
	}
	want := matching.ExpectedMatrix(g, d)
	dbHalf := matching.DBar(d) / 2
	rngs := matching.NodeRNGs(g.N(), cfg.Seed+89)
	sum := linalg.NewDense(g.N(), g.N())
	samples := 0
	var matchedNodes int64
	for _, target := range []int{100, 1000, 10000, 100000} {
		budget := int(float64(target) * cfg.scale())
		if budget < 50 {
			budget = 50
		}
		for samples < budget {
			m := matching.Generate(g, d, rngs)
			for v := 0; v < g.N(); v++ {
				sum.Set(v, v, sum.At(v, v)+1)
			}
			for _, pr := range m.Pairs {
				u, v := int(pr[0]), int(pr[1])
				sum.Set(u, u, sum.At(u, u)-0.5)
				sum.Set(v, v, sum.At(v, v)-0.5)
				sum.Set(u, v, sum.At(u, v)+0.5)
				sum.Set(v, u, sum.At(v, u)+0.5)
			}
			matchedNodes += 2 * int64(m.Size())
			samples++
		}
		maxDev := 0.0
		for r := 0; r < g.N(); r++ {
			for c := 0; c < g.N(); c++ {
				dev := math.Abs(sum.At(r, c)/float64(samples) - want.At(r, c))
				if dev > maxDev {
					maxDev = dev
				}
			}
		}
		frac := float64(matchedNodes) / float64(samples) / float64(g.N())
		t.AddRow(i(samples), f(maxDev), f(maxDev*math.Sqrt(float64(samples))), f(frac), f(dbHalf))
	}
	return t, nil
}

// F6Ablations compares the random matching model against all-neighbour
// diffusion at an equal word budget, and sweeps the query threshold scale.
func F6Ablations(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F6",
		Title: "Ablations: averaging model at equal message budget; threshold sweep",
		Notes: "Expected shape: diffusion matches accuracy but needs the " +
			"entire edge set every round, so at an equal word budget on a " +
			"dense graph it completes far fewer rounds; the default " +
			"threshold scale 1 sits in the middle of the working range.",
		Headers: []string{"part", "setting", "rounds", "words", "misclassified"},
	}
	p, _, T, err := ringInstance(cfg, 2, 250, 40, 1, 97)
	if err != nil {
		return nil, err
	}
	beta := p.MinClusterFraction()
	n := p.G.N()

	// Part (a): model comparison at equal words.
	res, err := core.Cluster(p.G, core.Params{Beta: beta, Rounds: T, Seed: cfg.Seed + 1, StateBackend: cfg.StateBackend})
	if err != nil {
		return nil, err
	}
	misLB, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		return nil, err
	}
	lbWords := res.Stats.TotalWords()
	t.AddRow("model", "random matching", i(T), i64(lbWords), pct(misLB))

	// Diffusion clustering with the same seeds and the same word budget:
	// every round costs 2m·(state words per node ≈ 2s+2)… we charge the
	// minimal honest cost of value exchange: 2m words per round per
	// coordinate.
	eng, err := core.NewEngine(p.G, core.Params{Beta: beta, Rounds: T, Seed: cfg.Seed + 1, StateBackend: cfg.StateBackend})
	if err != nil {
		return nil, err
	}
	seeds, ids := eng.Seeds()
	s := len(seeds)
	if s == 0 {
		// No seeds planted under this configuration (possible at tiny
		// scales): return the partial table rather than nothing.
		return t, nil
	}
	perRound := int64(2*p.G.M()) * int64(s)
	diffRounds := int(lbWords / perRound)
	if diffRounds < 1 {
		diffRounds = 1
	}
	vectors := make([][]float64, s)
	for idx, seedNode := range seeds {
		y0 := make([]float64, n)
		y0[seedNode] = 1
		diff, err := loadbalance.NewDiffusion(p.G, p.G.MaxDegree(), y0, 0.5)
		if err != nil {
			return nil, err
		}
		diff.Run(diffRounds)
		vectors[idx] = diff.Load()
	}
	thr := core.Threshold(beta, n, 1)
	labels := make([]int, n)
	for v := 0; v < n; v++ {
		best := uint64(0)
		for idx := range vectors {
			if vectors[idx][v] >= thr && (best == 0 || ids[idx] < best) {
				best = ids[idx]
			}
		}
		labels[v] = int(best % (1 << 31))
	}
	misDiff, err := metrics.MisclassificationRate(p.Truth, labels)
	if err != nil {
		return nil, err
	}
	t.AddRow("model", "diffusion (equal words)", i(diffRounds), i64(int64(diffRounds)*perRound), pct(misDiff))

	// Part (b): threshold sensitivity.
	for _, scale := range []float64{0.25, 0.5, 1, 2, 4} {
		res, err := core.Cluster(p.G, core.Params{
			Beta: beta, Rounds: T, Seed: cfg.Seed + 1, ThresholdScale: scale,
			StateBackend: cfg.StateBackend,
		})
		if err != nil {
			return nil, err
		}
		mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
		if err != nil {
			return nil, err
		}
		t.AddRow("threshold", "scale="+f(scale), i(T), i64(res.Stats.TotalWords()), pct(mis))
	}
	return t, nil
}
