package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

// tiny is the smallest config that still exercises every code path.
var tiny = Config{Scale: 0.25, Seed: 1}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:      "X0",
		Title:   "demo",
		Notes:   "note",
		Headers: []string{"a", "b"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("3", "4")
	md := tb.Markdown()
	if !strings.Contains(md, "### X0 — demo") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("markdown:\n%s", md)
	}
	csv := tb.CSV()
	if csv != "a,b\n1,2\n3,4\n" {
		t.Errorf("csv: %q", csv)
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("t1"); !ok {
		t.Error("ByID should be case-insensitive")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
	if len(IDs()) != 16 {
		t.Error("IDs() incomplete")
	}
}

func TestConfigScaling(t *testing.T) {
	c := Config{Scale: 0.5}
	if c.scaled(100, 10) != 50 {
		t.Errorf("scaled = %d", c.scaled(100, 10))
	}
	if c.scaled(10, 10) != 10 {
		t.Error("floor not applied")
	}
	zero := Config{}
	if zero.scaled(100, 1) != 100 {
		t.Error("zero scale should mean 1")
	}
}

// Each experiment must run at tiny scale and produce a well-formed table.
// These are smoke tests for shape; EXPERIMENTS.md records full-scale output.

func checkTable(t *testing.T, tb *Table, err error, minRows int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if tb == nil {
		t.Fatal("nil table")
	}
	if len(tb.Rows) < minRows {
		t.Fatalf("%s: only %d rows", tb.ID, len(tb.Rows))
	}
	for idx, row := range tb.Rows {
		if len(row) != len(tb.Headers) {
			t.Fatalf("%s row %d: %d cells for %d headers", tb.ID, idx, len(row), len(tb.Headers))
		}
	}
}

func TestT1Smoke(t *testing.T) {
	tb, err := T1AccuracyVsGap(tiny)
	checkTable(t, tb, err, 5)
}

func TestT2Smoke(t *testing.T) {
	tb, err := T2RoundScaling(tiny)
	checkTable(t, tb, err, 5)
}

func TestT3Smoke(t *testing.T) {
	tb, err := T3MessageComplexity(Config{Scale: 0.1, Seed: 1})
	checkTable(t, tb, err, 4)
}

func TestT4Smoke(t *testing.T) {
	tb, err := T4Baselines(tiny)
	checkTable(t, tb, err, 15)
}

func TestT5Smoke(t *testing.T) {
	tb, err := T5Seeding(tiny)
	checkTable(t, tb, err, 4)
}

func TestT6Smoke(t *testing.T) {
	tb, err := T6Runtime(Config{Scale: 0.1, Seed: 1})
	checkTable(t, tb, err, 5)
}

func TestF1Smoke(t *testing.T) {
	tb, err := F1LoadConvergence(tiny)
	checkTable(t, tb, err, 10)
}

func TestF2Smoke(t *testing.T) {
	tb, err := F2AccuracyVsRounds(tiny)
	checkTable(t, tb, err, 10)
}

func TestF3Smoke(t *testing.T) {
	tb, err := F3AccuracyVsK(tiny)
	checkTable(t, tb, err, 5)
}

func TestF4Smoke(t *testing.T) {
	tb, err := F4AlmostRegular(tiny)
	checkTable(t, tb, err, 3)
}

func TestF5Smoke(t *testing.T) {
	tb, err := F5MatchingLaw(Config{Scale: 0.05, Seed: 1})
	checkTable(t, tb, err, 4)
}

func TestF6Smoke(t *testing.T) {
	tb, err := F6Ablations(tiny)
	checkTable(t, tb, err, 6)
}

func TestF7Smoke(t *testing.T) {
	tb, err := F7BalancingModels(tiny)
	checkTable(t, tb, err, 8)
}

func TestF8Smoke(t *testing.T) {
	tb, err := F8EarlyBehaviourBound(tiny)
	checkTable(t, tb, err, 4)
}

func TestF9Smoke(t *testing.T) {
	tb, err := F9AsyncGossip(tiny)
	checkTable(t, tb, err, 2)
}

func TestF10Smoke(t *testing.T) {
	tb, err := F10LossAblation(tiny)
	checkTable(t, tb, err, 6)
}

// TestObsNeverChangesTable pins Config.Obs's contract: attaching an
// observer to a dist-runtime experiment accumulates events and metric
// snapshots without changing a cell of the table.
func TestObsNeverChangesTable(t *testing.T) {
	bare, err := F9AsyncGossip(tiny)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tiny
	cfg.Obs = obs.NewObserver(obs.Options{Trace: true})
	observed, err := F9AsyncGossip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Markdown() != observed.Markdown() {
		t.Errorf("observation changed the table:\n--- bare ---\n%s\n--- observed ---\n%s",
			bare.Markdown(), observed.Markdown())
	}
	if len(cfg.Obs.Events()) == 0 {
		t.Error("observer attached to F9 recorded no events")
	}
	if len(cfg.Obs.Snapshots()) == 0 {
		t.Error("observer attached to F9 recorded no snapshots")
	}
}

// TestF10Shape pins the acceptance claim of the loss ablation at smoke
// scale: at every loss rate the reliable variant's mass deficit is zero up
// to float-summation ulps, the plain variant's deficit grows once the
// substrate destroys traffic, backpressure rejections engage, and the
// reliable labelling stays flat across the loss sweep. (The plain
// variant's accuracy degradation — clear at reference scale, see the
// recorded tables — is not asserted here: at tiny scale the surviving
// mass still mixes well enough that plain's labelling is noise-dominated.)
func TestF10Shape(t *testing.T) {
	tb, err := F10LossAblation(tiny)
	if err != nil {
		t.Fatal(err)
	}
	col := func(name string) int {
		for i, h := range tb.Headers {
			if h == name {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}
	deficitCol, misCol, rejCol := col("mass deficit"), col("misclassified"), col("rejected")
	parse := func(cell string) float64 {
		var x float64
		if _, err := fmt.Sscanf(strings.TrimSuffix(cell, "%"), "%g", &x); err != nil {
			t.Fatalf("cell %q: %v", cell, err)
		}
		return x
	}
	var plainDeficits, reliableDeficits, reliableMis []float64
	sawRejection := false
	for idx, row := range tb.Rows {
		deficit, mis := parse(row[deficitCol]), parse(row[misCol])
		if parse(row[rejCol]) > 0 {
			sawRejection = true
		}
		if idx%2 == 0 {
			plainDeficits = append(plainDeficits, deficit)
		} else {
			reliableDeficits = append(reliableDeficits, deficit)
			reliableMis = append(reliableMis, mis)
		}
	}
	for i, d := range reliableDeficits {
		if math.Abs(d) > 1e-9 {
			t.Errorf("reliable row %d: mass deficit %g, want 0 up to summation ulps", i, d)
		}
	}
	last := len(plainDeficits) - 1
	if plainDeficits[last] <= 0.01 {
		t.Errorf("plain deficit %g at the highest loss rate — loss machinery not engaged", plainDeficits[last])
	}
	if !sawRejection {
		t.Error("no row shows mailbox rejections — backpressure not engaged")
	}
	if reliableMis[last] > reliableMis[0]+3 {
		t.Errorf("reliable accuracy not flat across the sweep: %.2f%% at max loss vs %.2f%% fault-free",
			reliableMis[last], reliableMis[0])
	}
}

// TestF9ParallelProducesIdenticalTable: Config.Parallel is a wall-clock
// knob like Config.Transport — the asynchronous run under the batch
// scheduler must regenerate the exact same table as the serial execution.
func TestF9ParallelProducesIdenticalTable(t *testing.T) {
	e, ok := ByID("F9")
	if !ok {
		t.Fatal("F9 not registered")
	}
	serial, err := e.Run(tiny)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tiny
	cfg.Parallel = 4
	parallel, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Markdown() != parallel.Markdown() {
		t.Errorf("F9 table changed under Parallel=4:\nserial:\n%s\nparallel:\n%s",
			serial.Markdown(), parallel.Markdown())
	}
}
