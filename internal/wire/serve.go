package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// serverStats are the daemon-side relay tallies, exposed live by
// ServerStats for a serving process's introspection endpoint. They are pure
// environment diagnostics — per-process I/O volume, which varies with the
// machine assignment — and never feed a transcript or a deterministic
// registry.
var serverStats struct {
	conns    atomic.Int64
	frames   atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// ServerStats reports this process's cumulative wire-serving tallies:
// accepted connections, relayed frames, and frame body bytes in each
// direction.
func ServerStats() (conns, frames, bytesIn, bytesOut int64) {
	return serverStats.conns.Load(), serverStats.frames.Load(),
		serverStats.bytesIn.Load(), serverStats.bytesOut.Load()
}

// tracerBox wraps the serve tracer for atomic swapping (an interface can't
// be stored in an atomic.Pointer directly).
type tracerBox struct{ t obs.Tracer }

// serveTracer, when set, receives "wire"-category instants from the relay
// loops: one "conn" per accepted handshake and one "relay" per relayed
// frame. The category is environmental by definition (obs.IsEnvCat) — the
// events narrate this process's share of the machine split, ticked by the
// daemon's own cumulative frame clock, and never join a transcript or a
// recording fingerprint.
var serveTracer atomic.Pointer[tracerBox]

// SetServeTracer installs (or, with nil, removes) the tracer the serving
// loops emit to. The tracer must be safe for concurrent Emit — connection
// pumps are concurrent goroutines — which obs.RingTrace is; the unbounded
// obs.Trace is not.
func SetServeTracer(t obs.Tracer) {
	if t == nil {
		serveTracer.Store(nil)
		return
	}
	serveTracer.Store(&tracerBox{t: t})
}

// emitServe sends one wire instant to the installed tracer, if any.
func emitServe(name string, tick int64, args ...obs.Arg) {
	if box := serveTracer.Load(); box != nil {
		box.t.Emit(obs.Event{Cat: "wire", Name: name, Kind: obs.KindInstant, Tick: tick, Args: args})
	}
}

// Connection handshake: the dialer's first frame identifies what the
// connection will carry —
//
//	uvarint shard | uvarint lo | uvarint hi | payload name (rest of the frame)
//
// — and the server answers one status frame: 0x00 for accepted, or 0x01
// followed by an error message (unknown payload name, i.e. the worker
// binary never registered it; or a malformed node range with lo > hi). The
// shard index and its [lo, hi) node range are diagnostic: they name the
// destination worker shard this connection serves and the slice of the node
// range it owned at dial time (lo == hi when the dialer announced none).
// The daemon is a routing-agnostic relay, so the range never steers
// delivery and a mid-run repartition needs no re-handshake — it only labels
// the daemon's trace. One shard per connection stays the unit of
// concurrency on both sides.
const (
	handshakeOK  = 0x00
	handshakeErr = 0x01
	// handshakeTimeout bounds the handshake round-trip, so dialing a
	// process that is not actually a wire worker fails with a clear error
	// instead of hanging.
	handshakeTimeout = 10 * time.Second
)

// Listen opens a listener for the given wire address. Addresses name their
// network with a scheme prefix — "unix:/path/to.sock" or
// "tcp:host:port" — and a bare path containing a slash is taken as a unix
// socket path.
func Listen(addr string) (net.Listener, error) {
	network, target, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	return net.Listen(network, target)
}

// splitAddr parses the scheme convention shared by Listen and the dialer.
func splitAddr(addr string) (network, target string, err error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", addr[len("unix:"):], nil
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", addr[len("tcp:"):], nil
	case strings.Contains(addr, "/"):
		return "unix", addr, nil
	default:
		return "", "", fmt.Errorf("wire: address %q needs a unix: or tcp: scheme", addr)
	}
}

// Serve accepts wire connections until the listener closes and serves each
// in its own goroutine: handshake, then one relay round per frame — decode
// the staged-bucket batch with the registered codec, re-encode it, send it
// back. This process is the far side of the Transport seam for every shard
// that dials it: messages bound for its machine genuinely leave the
// coordinator's address space, are materialised here, and the coordinator
// only ever delivers what survived the wire round-trip.
//
// Serve returns nil when the listener closes, and the first accept error
// otherwise.
func Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		// One pump goroutine per accepted connection: pure I/O relay in a
		// worker daemon, outside any transcript-ordered execution.
		//lintdet:allow rawgo(daemon accept loop; per-connection I/O pump never touches transcript state)
		go serveConn(conn)
	}
}

// serveConn drives one connection; any protocol error closes it (the dialer
// sees EOF and fails its barrier loudly).
func serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	relay, shard, lo, hi, err := acceptHandshake(conn, br)
	if err != nil {
		return
	}
	conns := serverStats.conns.Add(1)
	emitServe("conn", conns,
		obs.I("shard", int64(shard)), obs.I("lo", int64(lo)), obs.I("hi", int64(hi)))
	var in, out, frame []byte
	for {
		in, err = readFrame(br, in)
		if err != nil {
			return
		}
		out, err = relay(out[:0], in)
		if err != nil {
			return
		}
		if frame, err = writeFrame(conn, frame, out); err != nil {
			return
		}
		frames := serverStats.frames.Add(1)
		serverStats.bytesIn.Add(int64(len(in)))
		serverStats.bytesOut.Add(int64(len(out)))
		emitServe("relay", frames,
			obs.I("shard", int64(shard)), obs.I("bytes_in", int64(len(in))), obs.I("bytes_out", int64(len(out))))
	}
}

// acceptHandshake validates the dialer's opening frame and answers it,
// returning the relay for the connection's payload type, the worker shard
// the connection serves, and the [lo, hi) node range the shard announced
// (diagnostic: they label the daemon's trace events, never routing).
func acceptHandshake(conn net.Conn, br *bufio.Reader) (RelayFunc, uint64, uint64, uint64, error) {
	//lintdet:allow wallclock(socket handshake deadline; fail-loudly I/O timeout, not transcript state)
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	body, err := readFrame(br, nil)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	shard, k := binary.Uvarint(body)
	if k <= 0 {
		return nil, 0, 0, 0, fmt.Errorf("wire: malformed handshake")
	}
	body = body[k:]
	lo, k := binary.Uvarint(body)
	if k <= 0 {
		return nil, 0, 0, 0, fmt.Errorf("wire: malformed handshake")
	}
	body = body[k:]
	hi, k := binary.Uvarint(body)
	if k <= 0 {
		return nil, 0, 0, 0, fmt.Errorf("wire: malformed handshake")
	}
	body = body[k:]
	name := string(body)
	relay, ok := NewRelay(name)
	var status []byte
	var reject string
	switch {
	case lo > hi:
		reject = fmt.Sprintf("bad node range [%d, %d) for shard %d", lo, hi, shard)
	case !ok:
		reject = fmt.Sprintf("payload %q not registered in worker (known: %s)",
			name, strings.Join(Payloads(), ", "))
	}
	if reject == "" {
		status = []byte{handshakeOK}
	} else {
		status = append([]byte{handshakeErr}, reject...)
	}
	if _, err := writeFrame(conn, nil, status); err != nil {
		return nil, 0, 0, 0, err
	}
	if reject != "" {
		return nil, 0, 0, 0, fmt.Errorf("wire: %s", reject)
	}
	return relay, shard, lo, hi, nil
}
