package wire

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/dist"
)

// workerEnv marks a process as a spawned wire worker. Its value is
// informational (the machine index); presence is what matters.
const workerEnv = "LBWIRE_WORKER"

// ServeIfWorker is the re-exec hook for worker daemon mode: a binary that
// may host spawned machine shards must call it first thing in main. In a
// normal process it returns immediately; in a process spawned by Spawn it
// never returns — it serves the wire listener inherited on fd 3 until its
// parent closes the stdin pipe or kills it, then exits. Spawning re-execs
// the current binary, so one executable (a CLI, an example, even a test
// binary whose TestMain calls this) plays both coordinator and worker.
func ServeIfWorker() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	ln, err := net.FileListener(os.NewFile(3, "wire-listener"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "wire worker: inherit listener: %v\n", err)
		os.Exit(1)
	}
	// Exit when the coordinator goes away: the spawner holds our stdin
	// pipe, so EOF means it closed us deliberately or died. This keeps a
	// crashed coordinator from leaking daemons.
	//lintdet:allow rawgo(coordinator-death watchdog in the worker process; exits, never computes)
	go func() {
		io.Copy(io.Discard, os.Stdin)
		os.Exit(0)
	}()
	if err := Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "wire worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Cluster is a set of spawned worker processes, one per machine shard, each
// serving a unix-socket listener created by the coordinator. Dial a
// transport onto it with DialSocket(..., c.Addrs(), shards) — any shard
// count at least the machine count composes, per dist.MachineMap.
type Cluster struct {
	dir       string
	addrs     []string
	cmds      []*exec.Cmd
	stdins    []io.Closer
	listeners []net.Listener
}

// Spawn starts one worker process per machine shard by re-executing the
// current binary (which must call ServeIfWorker at the top of main — Spawn
// fails cleanly, rather than serving garbage, if it does not, because the
// child then never answers the connection handshake). The coordinator
// creates each machine's unix listener itself and passes it to the child as
// an inherited file descriptor, so the cluster is dialable the moment Spawn
// returns, with no readiness polling.
func Spawn(machines int) (*Cluster, error) {
	if machines < 1 {
		return nil, fmt.Errorf("wire: Spawn(%d)", machines)
	}
	if os.Getenv(workerEnv) != "" {
		// A worker must never spawn sub-workers: that means the binary did
		// not call ServeIfWorker before reaching coordinator code.
		return nil, fmt.Errorf("wire: recursive Spawn inside a worker process — does main call wire.ServeIfWorker?")
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("wire: locate executable: %w", err)
	}
	dir, err := os.MkdirTemp("", "lbwire")
	if err != nil {
		return nil, err
	}
	c := &Cluster{dir: dir}
	for m := 0; m < machines; m++ {
		path := filepath.Join(dir, fmt.Sprintf("m%d.sock", m))
		ln, err := net.Listen("unix", path)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("wire: listen %s: %w", path, err)
		}
		f, err := ln.(*net.UnixListener).File()
		if err != nil {
			ln.Close()
			c.Close()
			return nil, err
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d", workerEnv, m))
		cmd.ExtraFiles = []*os.File{f}
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err == nil {
			err = cmd.Start()
		}
		f.Close() // the child holds its own dup now
		if err != nil {
			ln.Close()
			c.Close()
			return nil, fmt.Errorf("wire: spawn machine %d: %w", m, err)
		}
		// Keep the coordinator-side listener open but never accept on it:
		// closing it would unlink the socket path under the child. It is
		// closed (and the path unlinked) by Cluster.Close.
		c.listeners = append(c.listeners, ln)
		c.addrs = append(c.addrs, "unix:"+path)
		c.cmds = append(c.cmds, cmd)
		c.stdins = append(c.stdins, stdin)
	}
	return c, nil
}

// Addrs returns the wire address of each machine process, in machine order.
func (c *Cluster) Addrs() []string { return c.addrs }

// Pids returns the OS process ID of each machine process.
func (c *Cluster) Pids() []int {
	pids := make([]int, len(c.cmds))
	for i, cmd := range c.cmds {
		pids[i] = cmd.Process.Pid
	}
	return pids
}

// Machines returns the number of worker processes.
func (c *Cluster) Machines() int { return len(c.cmds) }

// Map returns the machine map for a run with the given worker-shard count.
func (c *Cluster) Map(shards int) dist.MachineMap {
	return dist.NewMachineMap(len(c.cmds), shards)
}

// Close shuts the cluster down: it closes every worker's stdin pipe (the
// exit signal), waits briefly, kills stragglers, and removes the socket
// directory. Close is safe to call on a partially constructed cluster.
func (c *Cluster) Close() {
	for _, in := range c.stdins {
		if in != nil {
			in.Close()
		}
	}
	for _, cmd := range c.cmds {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		done := make(chan struct{})
		//lintdet:allow rawgo(bounded-wait process reaping during teardown; no transcript state)
		go func(cmd *exec.Cmd) {
			cmd.Wait()
			close(done)
		}(cmd)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	for _, ln := range c.listeners {
		ln.Close()
	}
	if c.dir != "" {
		os.RemoveAll(c.dir)
	}
	c.cmds, c.stdins, c.listeners = nil, nil, nil
}
