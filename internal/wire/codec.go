// Package wire carries the dist runtime's delivery across real process
// boundaries: a compact binary codec with a payload registry, a length-
// prefixed frame protocol for staged-bucket batches, a Socket transport
// implementing dist.Transport over unix-domain sockets (or TCP), and a
// worker daemon that serves a machine shard's side of the wire from another
// OS process.
//
// The division of labour with dist: the Transport seam (dist/transport.go)
// defines WHAT must cross the barrier — every staged bucket, exactly once,
// partition- and order-preserving, per-shard concurrency-safe — and this
// package defines HOW it crosses when the far side does not share the
// coordinator's address space. Because the codec is exact (fixed-width
// floats, varint integers, no reflection or text formatting on the hot
// path), a run over sockets is bit-identical to the in-process transport;
// the transcript-equality tests in this package pin that for real
// multi-process clusters.
package wire

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Codec serialises one payload type T. Implementations must be exact
// (decode(encode(v)) == v for every value, bit-for-bit) and self-delimiting
// (Decode knows where the encoding ends without out-of-band length), and
// must be safe for concurrent use — one instance is shared by all shard
// connections.
type Codec[T any] interface {
	// Append appends the encoding of v to buf and returns the extended
	// slice.
	Append(buf []byte, v T) []byte
	// Decode reads one value from the front of data, returning the value
	// and the number of bytes consumed. Malformed input must return an
	// error, never panic — frames cross a trust boundary.
	Decode(data []byte) (T, int, error)
}

// IntCodec encodes int payloads as zigzag varints.
type IntCodec struct{}

// Append implements Codec.
func (IntCodec) Append(buf []byte, v int) []byte {
	return binary.AppendVarint(buf, int64(v))
}

// Decode implements Codec.
func (IntCodec) Decode(data []byte) (int, int, error) {
	v, k := binary.Varint(data)
	if k <= 0 {
		return 0, 0, fmt.Errorf("wire: truncated int payload")
	}
	return int(v), k, nil
}

// Uint64Codec encodes uint64 payloads as varints.
type Uint64Codec struct{}

// Append implements Codec.
func (Uint64Codec) Append(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// Decode implements Codec.
func (Uint64Codec) Decode(data []byte) (uint64, int, error) {
	v, k := binary.Uvarint(data)
	if k <= 0 {
		return 0, 0, fmt.Errorf("wire: truncated uint64 payload")
	}
	return v, k, nil
}

// RelayFunc is the type-erased far side of one payload type: it decodes a
// staged-bucket frame body, materialises every message, and re-encodes the
// batch onto dst. A RelayFunc is stateful (it reuses decode scratch across
// calls) and must only be used from one goroutine; get a fresh one per
// connection from NewRelay.
type RelayFunc func(dst, src []byte) ([]byte, error)

// payloadEntry is one registered payload type. The registry is type-erased:
// the daemon side of the wire picks codecs by handshake name at runtime, so
// a worker process can serve any payload its binary registered without the
// generic type appearing in its serve loop.
type payloadEntry struct {
	newRelay func() RelayFunc
}

var (
	regMu    sync.RWMutex
	registry = map[string]payloadEntry{}
)

// Register associates a payload name with its codec. The name travels in
// the connection handshake, so coordinator and worker binaries must
// register the same (name, codec) pair — importing the package that calls
// Register is enough, which is how core's message types serialise without
// reflection on the hot path. Register panics on empty or duplicate names;
// call it from init.
func Register[T any](name string, c Codec[T]) {
	if name == "" {
		panic("wire: Register with empty payload name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("wire: payload %q registered twice", name))
	}
	registry[name] = payloadEntry{newRelay: func() RelayFunc {
		var scratch bucketScratch[T]
		return func(dst, src []byte) ([]byte, error) {
			buckets, err := decodeBuckets(c, src, &scratch)
			if err != nil {
				return nil, err
			}
			return appendBuckets(c, dst, buckets), nil
		}
	}}
}

// NewRelay returns a fresh relay for the named payload, or false if the
// name is not registered (the binary on this side never imported the
// package that defines it).
func NewRelay(name string) (RelayFunc, bool) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, false
	}
	return e.newRelay(), true
}

// Payloads returns the sorted names of all registered payload types.
func Payloads() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Builtin payloads for the primitive message types the dist tests and
// benchmarks use.
func init() {
	Register("wire.int", IntCodec{})
	Register("wire.uint64", Uint64Codec{})
}
