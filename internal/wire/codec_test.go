package wire_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/wire"
)

func TestIntCodecRoundTrip(t *testing.T) {
	r := rng.New(3)
	c := wire.IntCodec{}
	vals := []int{0, 1, -1, 63, 64, -64, -65, math.MaxInt32, math.MinInt32, math.MaxInt64, math.MinInt64}
	for i := 0; i < 2000; i++ {
		vals = append(vals, int(r.Uint64()))
	}
	for _, v := range vals {
		enc := c.Append(nil, v)
		got, k, err := c.Decode(enc)
		if err != nil || got != v || k != len(enc) {
			t.Fatalf("round trip %d: got %d, consumed %d/%d, err %v", v, got, k, len(enc), err)
		}
		// Frame-boundary safety: decoding a concatenation consumes exactly
		// the first encoding.
		joined := c.Append(bytes.Clone(enc), v+1)
		if _, k, err := c.Decode(joined); err != nil || k != len(enc) {
			t.Fatalf("concat decode of %d consumed %d, want %d (err %v)", v, k, len(enc), err)
		}
	}
	if _, _, err := c.Decode(nil); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestUint64CodecRoundTrip(t *testing.T) {
	r := rng.New(5)
	c := wire.Uint64Codec{}
	vals := []uint64{0, 1, 127, 128, math.MaxUint64}
	for i := 0; i < 2000; i++ {
		vals = append(vals, r.Uint64())
	}
	for _, v := range vals {
		enc := c.Append(nil, v)
		got, k, err := c.Decode(enc)
		if err != nil || got != v || k != len(enc) {
			t.Fatalf("round trip %d: got %d, consumed %d/%d, err %v", v, got, k, len(enc), err)
		}
	}
}

// intBatch hand-assembles a staged-bucket batch body for the wire.int
// payload, following the documented frame spec — an independent encoder, so
// the test fails if the implementation drifts from the spec.
func intBatch(buckets [][][3]int) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(buckets)))
	for _, b := range buckets {
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		for _, m := range b {
			buf = binary.AppendUvarint(buf, uint64(m[0])) // To
			buf = binary.AppendUvarint(buf, uint64(m[1])) // From
			buf = binary.AppendVarint(buf, int64(m[2]))   // body, zigzag
		}
	}
	return buf
}

// TestRelayRoundTripsEveryRegisteredPayload: for every payload type in the
// registry, relaying a structurally valid batch succeeds and is idempotent
// (relay(relay(x)) == relay(x)) — the property the worker daemon's serve
// loop depends on. Batches of int messages decode under every registered
// codec only by accident, so non-int payloads are exercised through the
// always-valid empty batch plus idempotence on whatever else decodes.
func TestRelayRoundTripsEveryRegisteredPayload(t *testing.T) {
	names := wire.Payloads()
	if len(names) < 4 {
		// wire.int, wire.uint64 (builtin) + core.proto, core.gossip
		// (registered by importing core in this test binary).
		t.Fatalf("registry has %v — expected builtins plus core payloads", names)
	}
	empty := intBatch([][][3]int{{}, {}, {}})
	valid := intBatch([][][3]int{
		{{0, 1, 42}, {3, 1, -7}},
		{},
		{{250, 199, 1 << 40}},
	})
	for _, name := range names {
		relay, ok := wire.NewRelay(name)
		if !ok {
			t.Fatalf("registered payload %q has no relay", name)
		}
		out, err := relay(nil, empty)
		if err != nil {
			t.Errorf("%s: empty batch rejected: %v", name, err)
			continue
		}
		again, err := relay(nil, out)
		if err != nil || !bytes.Equal(out, again) {
			t.Errorf("%s: relay not idempotent on empty batch (err %v)", name, err)
		}
		if out2, err := relay(nil, valid); err == nil {
			again, err := relay(nil, out2)
			if err != nil || !bytes.Equal(out2, again) {
				t.Errorf("%s: relay not idempotent (err %v)", name, err)
			}
		}
	}
	// For the int payload the valid batch must round-trip exactly: the
	// hand-assembled encoding is already canonical.
	relay, _ := wire.NewRelay("wire.int")
	out, err := relay(nil, valid)
	if err != nil || !bytes.Equal(out, valid) {
		t.Errorf("wire.int relay altered a canonical batch (err %v)", err)
	}
}

func TestRelayRejectsCorruptBatches(t *testing.T) {
	relay, _ := wire.NewRelay("wire.int")
	bad := [][]byte{
		{},                             // no bucket count
		{0xff, 0xff, 0xff, 0xff, 0x7f}, // inflated bucket count
		binary.AppendUvarint(nil, 2),   // bucket count without buckets
		append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 3), 1), // count 3, one truncated message
		append(intBatch([][][3]int{{{1, 2, 3}}}), 0x9),                   // trailing bytes
	}
	for i, data := range bad {
		if _, err := relay(nil, data); err == nil {
			t.Errorf("corrupt batch %d accepted", i)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	for _, name := range []string{"", "wire.int"} { // empty and duplicate
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) should panic", name)
				}
			}()
			wire.Register(name, wire.IntCodec{})
		}()
	}
}

// FuzzFrameRelay throws arbitrary bytes at every registered payload's
// relay: it must never panic, and whenever it accepts an input, its output
// must be a fixed point (the daemon may serve a re-encoded batch, so
// re-encoding must be stable).
func FuzzFrameRelay(f *testing.F) {
	f.Add([]byte{})
	f.Add(intBatch([][][3]int{{}, {}}))
	f.Add(intBatch([][][3]int{{{0, 1, 42}}, {{3, 2, -9}, {4, 2, 0}}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, name := range wire.Payloads() {
			relay, _ := wire.NewRelay(name)
			out, err := relay(nil, data)
			if err != nil {
				continue
			}
			again, err := relay(nil, out)
			if err != nil {
				t.Fatalf("%s: accepted input but rejected own output: %v", name, err)
			}
			if !bytes.Equal(out, again) {
				t.Fatalf("%s: relay output is not a fixed point", name)
			}
		}
	})
}
