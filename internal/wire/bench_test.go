package wire_test

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/wire"
)

// BenchmarkSocketFlush measures one barrier's wire round-trip for a single
// destination shard — encode, frame, cross into the worker process, decode
// + re-encode there, cross back, decode — as a function of batch size.
// Compare against BenchmarkRingFlush on the same batches to price the
// process boundary itself (syscalls + codec) over the loopback copy.
func BenchmarkSocketFlush(b *testing.B) {
	cluster, err := wire.Spawn(1)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	for _, msgs := range []int{16, 1024, 16384} {
		b.Run(fmt.Sprintf("msgs=%d", msgs), func(b *testing.B) {
			sock, err := wire.DialSocket(wire.Uint64Codec{}, "wire.uint64", cluster.Addrs(), 1)
			if err != nil {
				b.Fatal(err)
			}
			defer sock.Close()
			buckets := makeBuckets(4, msgs/4)
			b.SetBytes(int64(msgs))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sock.Flush(0, buckets)
			}
			b.ReportMetric(float64(msgs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mmsgs/s")
		})
	}
}

// BenchmarkRingFlush is the loopback baseline for BenchmarkSocketFlush.
func BenchmarkRingFlush(b *testing.B) {
	for _, msgs := range []int{16, 1024, 16384} {
		b.Run(fmt.Sprintf("msgs=%d", msgs), func(b *testing.B) {
			ring := dist.NewRing[uint64](1, 4096)
			buckets := makeBuckets(4, msgs/4)
			b.SetBytes(int64(msgs))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ring.Flush(0, buckets)
			}
			b.ReportMetric(float64(msgs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mmsgs/s")
		})
	}
}

func makeBuckets(nb, per int) [][]dist.Staged[uint64] {
	buckets := make([][]dist.Staged[uint64], nb)
	for i := range buckets {
		for j := 0; j < per; j++ {
			buckets[i] = append(buckets[i], dist.Staged[uint64]{
				To:  j,
				Env: dist.Envelope[uint64]{From: i*per + j, Body: uint64(i)<<32 | uint64(j)},
			})
		}
	}
	return buckets
}
