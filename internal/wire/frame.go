package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/dist"
)

// Frame protocol: every message on a wire connection is a frame — a 4-byte
// little-endian length followed by that many body bytes. The first frame in
// each direction is the handshake (see serve.go); every following exchange
// is one staged-bucket batch per barrier, request and response.
//
// A batch body is:
//
//	uvarint bucketCount
//	per bucket:  uvarint msgCount
//	per message: uvarint To | uvarint From | payload (codec-delimited)
//
// The encoding preserves exactly the structure the Transport contract
// demands: the bucket partition (bucket i of the response holds the
// messages of bucket i of the request) and the message order within each
// bucket. There is no per-message framing beyond the codec itself — the
// boundary-safety property (a codec consumes exactly its own bytes) is what
// the codec fuzz tests pin.

// maxFrame bounds a frame body: 1 GiB is far beyond any real barrier batch
// and keeps a corrupt length prefix from looking like an allocation demand.
const maxFrame = 1 << 30

// appendFrame appends a length-prefixed frame containing body to buf.
func appendFrame(buf, body []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	return append(buf, body...)
}

// writeFrame writes one frame. The header and body go out in a single Write
// so a frame is one syscall on an unbuffered connection.
func writeFrame(w io.Writer, scratch, body []byte) ([]byte, error) {
	if len(body) > maxFrame {
		return scratch, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	scratch = appendFrame(scratch[:0], body)
	_, err := w.Write(scratch)
	return scratch, err
}

// readFrame reads one frame body, reusing buf's capacity.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("wire: frame length %d exceeds limit", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// appendBuckets encodes one staged-bucket batch onto buf.
func appendBuckets[T any](c Codec[T], buf []byte, buckets [][]dist.Staged[T]) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(buckets)))
	for _, b := range buckets {
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		for _, m := range b {
			buf = binary.AppendUvarint(buf, uint64(m.To))
			buf = binary.AppendUvarint(buf, uint64(m.Env.From))
			buf = c.Append(buf, m.Env.Body)
		}
	}
	return buf
}

// bucketScratch is the reusable decode arena of one wire endpoint: the
// outer bucket slice and each bucket's backing array survive across calls,
// so a steady-state barrier allocates nothing.
type bucketScratch[T any] struct {
	buckets [][]dist.Staged[T]
}

// decodeBuckets decodes a staged-bucket batch, reusing scratch. The
// returned slices are valid until the next call with the same scratch. All
// structural errors are returned (never panics): frames cross a process
// boundary, so corrupt input must fail loudly but safely.
func decodeBuckets[T any](c Codec[T], data []byte, scratch *bucketScratch[T]) ([][]dist.Staged[T], error) {
	nb, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("wire: truncated bucket count")
	}
	data = data[k:]
	// Every bucket costs at least one count byte, so a bucket count beyond
	// the remaining bytes is corrupt — reject before allocating.
	if nb > uint64(len(data))+1 {
		return nil, fmt.Errorf("wire: bucket count %d exceeds frame", nb)
	}
	for uint64(len(scratch.buckets)) < nb {
		scratch.buckets = append(scratch.buckets, nil)
	}
	out := scratch.buckets[:nb]
	for i := range out {
		cnt, k := binary.Uvarint(data)
		if k <= 0 {
			return nil, fmt.Errorf("wire: truncated count for bucket %d", i)
		}
		data = data[k:]
		// A message is at least two varint bytes plus payload; bound the
		// allocation by what the frame can actually hold.
		if cnt > uint64(len(data)/2)+1 {
			return nil, fmt.Errorf("wire: message count %d exceeds frame", cnt)
		}
		b := out[i][:0]
		for j := uint64(0); j < cnt; j++ {
			to, k := binary.Uvarint(data)
			if k <= 0 {
				return nil, fmt.Errorf("wire: truncated To in bucket %d", i)
			}
			data = data[k:]
			from, k := binary.Uvarint(data)
			if k <= 0 {
				return nil, fmt.Errorf("wire: truncated From in bucket %d", i)
			}
			data = data[k:]
			body, k, err := c.Decode(data)
			if err != nil {
				return nil, fmt.Errorf("wire: bucket %d message %d: %w", i, j, err)
			}
			if k < 0 || k > len(data) {
				return nil, fmt.Errorf("wire: codec consumed %d of %d bytes", k, len(data))
			}
			data = data[k:]
			b = append(b, dist.Staged[T]{To: int(to), Env: dist.Envelope[T]{From: int(from), Body: body}})
		}
		out[i] = b
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch", len(data))
	}
	return out, nil
}
