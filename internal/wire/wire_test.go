// Tests for the multi-process socket transport. The test binary is its own
// worker: TestMain calls wire.ServeIfWorker, so wire.Spawn re-execs this
// binary and the spawned copies serve machine shards instead of running
// tests. Everything here therefore exercises REAL OS process boundaries —
// the pid assertions pin that it is not loopback in disguise.
package wire_test

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"strings"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph/gen"
	"repro/internal/rng"
	"repro/internal/wire"
)

func TestMain(m *testing.M) {
	wire.ServeIfWorker()
	os.Exit(m.Run())
}

// transcript runs the dist package's fixed gossip workload (mirrored from
// its transport tests) on a network configured by the caller, returning
// every delivery observed plus counter totals.
func transcript(workers int, configure func(net *dist.Network[int])) ([]string, int64, int64, int64) {
	const n = 257
	net := dist.NewNetwork[int](n, workers)
	defer net.Close()
	if configure != nil {
		configure(net)
	}
	var log []string
	record := func(v int) {
		for _, e := range net.Recv(v) {
			log = append(log, fmt.Sprintf("%d<-%d:%d", v, e.From, e.Body))
		}
	}
	net.Phase(func(v int) {
		for k := 0; k < v%4; k++ {
			net.Send(v, (v*7+k*13)%n, v*100+k, int64(k+1))
		}
	})
	for v := 0; v < n; v++ {
		record(v)
	}
	net.Phase(func(v int) {
		for _, e := range net.Recv(v) {
			net.Send(v, e.From, e.Body+1, 2)
		}
	})
	for v := 0; v < n; v++ {
		record(v)
	}
	for p := 0; p < 4; p++ {
		net.Phase(func(v int) {})
		for v := 0; v < n; v++ {
			record(v)
		}
	}
	return log, net.Counter().Messages(), net.Counter().Words(), net.Counter().Dropped()
}

// assertRealProcesses pins that the cluster's machines are live OS
// processes distinct from the coordinator.
func assertRealProcesses(t *testing.T, c *wire.Cluster, want int) {
	t.Helper()
	pids := c.Pids()
	if len(pids) != want {
		t.Fatalf("cluster has %d processes, want %d", len(pids), want)
	}
	for _, pid := range pids {
		if pid == os.Getpid() {
			t.Fatalf("machine shares the coordinator's pid %d", pid)
		}
		if err := syscall.Kill(pid, 0); err != nil {
			t.Fatalf("machine pid %d not alive: %v", pid, err)
		}
	}
}

func TestSocketTranscriptMatchesInProcess(t *testing.T) {
	// The determinism contract across genuine process boundaries: for any
	// (machines, workers) split, the delivery transcript and counters over
	// sockets are bit-identical to the zero-copy in-process transport.
	wantLog, wantMsgs, wantWords, _ := transcript(3, nil)
	if len(wantLog) == 0 {
		t.Fatal("workload produced no traffic")
	}
	for _, split := range [][2]int{{2, 2}, {2, 3}, {3, 8}} {
		machines, workers := split[0], split[1]
		cluster, err := wire.Spawn(machines)
		if err != nil {
			t.Fatal(err)
		}
		assertRealProcesses(t, cluster, machines)
		log, msgs, words, _ := transcript(workers, func(net *dist.Network[int]) {
			sock, err := wire.DialSocket(wire.IntCodec{}, "wire.int", cluster.Addrs(), net.Workers())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(sock.Close)
			net.SetTransport(sock)
		})
		cluster.Close()
		if msgs != wantMsgs || words != wantWords {
			t.Errorf("machines=%d workers=%d: counters (%d, %d) != (%d, %d)",
				machines, workers, msgs, words, wantMsgs, wantWords)
		}
		if fmt.Sprint(log) != fmt.Sprint(wantLog) {
			t.Errorf("machines=%d workers=%d: transcript diverges from in-process", machines, workers)
		}
	}
}

func TestSocketTranscriptWithFaultsMatchesInProcess(t *testing.T) {
	// DeliveryModel faults compose with the wire unchanged: the model
	// classifies at Send time, upstream of the transport, so a faulty
	// transcript over real processes still matches in-process exactly.
	model := dist.LinkFaults{DropProb: 0.2, DelayProb: 0.3, MaxPhases: 2, Seed: 11}
	wantLog, wantMsgs, _, wantDropped := transcript(2, func(net *dist.Network[int]) {
		net.SetDeliveryModel(model)
	})
	cluster, err := wire.Spawn(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	log, msgs, _, dropped := transcript(5, func(net *dist.Network[int]) {
		net.SetDeliveryModel(model)
		sock, err := wire.DialSocket(wire.IntCodec{}, "wire.int", cluster.Addrs(), net.Workers())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sock.Close)
		net.SetTransport(sock)
	})
	if msgs != wantMsgs || dropped != wantDropped {
		t.Errorf("counters (%d msgs, %d dropped) != (%d, %d)", msgs, dropped, wantMsgs, wantDropped)
	}
	if fmt.Sprint(log) != fmt.Sprint(wantLog) {
		t.Error("faulty socket transcript diverges from in-process")
	}
}

// runHash condenses a clustering run into one comparable transcript hash:
// every label plus the network counters (including backpressure
// rejections).
func runHash(res *core.DistResult) string {
	h := sha256.New()
	for _, l := range res.Labels {
		fmt.Fprintf(h, "%d,", l)
	}
	fmt.Fprintf(h, "|%d|%d|%d|%d|%d|%v",
		res.NetworkMessages, res.NetworkWords, res.DroppedMessages, res.RejectedMessages,
		res.DroppedMatches, res.TotalMass)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestSocketSBMClusterMatchesInProcess is the end-to-end acceptance pin
// (and the CI socket smoke): the full clustering pipeline on a seeded SBM
// graph, run across real worker processes, must produce bit-identical
// cluster assignments and message counts to the in-process engine — for
// multiple (machine, worker) splits, fault-free and under a LinkFaults
// delivery model.
func TestSocketSBMClusterMatchesInProcess(t *testing.T) {
	p, err := gen.SBMBalanced(2, 60, 12, 2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Beta: 0.5, Rounds: 25, Seed: 9}
	faults := func(opt core.DistOptions) core.DistOptions {
		opt.DropProb, opt.DelayProb, opt.MaxDelay, opt.FailSeed = 0.2, 0.2, 2, 7
		return opt
	}

	baseline, err := core.ClusterDistributed(p.G, params, core.DistOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	baselineFaulty, err := core.ClusterDistributed(p.G, params, faults(core.DistOptions{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if runHash(baseline) == runHash(baselineFaulty) {
		t.Fatal("fault injection changed nothing; the comparison below would be vacuous")
	}

	const machines = 2
	cluster, err := wire.Spawn(machines)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	assertRealProcesses(t, cluster, machines)
	spec := core.TransportSpec{Kind: "socket", Addrs: cluster.Addrs()}

	for _, workers := range []int{2, 4} {
		res, err := core.ClusterDistributed(p.G, params,
			core.DistOptions{Workers: workers, Transport: spec})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := runHash(res), runHash(baseline); got != want {
			t.Errorf("workers=%d over %d processes: transcript hash %s != in-process %s",
				workers, machines, got, want)
		}
		faulty, err := core.ClusterDistributed(p.G, params,
			faults(core.DistOptions{Workers: workers, Transport: spec}))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := runHash(faulty), runHash(baselineFaulty); got != want {
			t.Errorf("workers=%d over %d processes with LinkFaults: transcript hash %s != in-process %s",
				workers, machines, got, want)
		}
	}
}

// TestSocketPartitionModesMatchInProcess covers the socket leg of the
// partition-mode matrix: degree and adaptive splits ride the announced
// bounds through real worker processes, and the transcript still matches
// the in-process count-mode baseline bit for bit — ownership placement is
// unobservable to the protocol regardless of transport.
func TestSocketPartitionModesMatchInProcess(t *testing.T) {
	g, err := gen.PreferentialAttachment(600, 4, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Beta: 0.25, Rounds: 12, Seed: 9}
	baseline, err := core.ClusterDistributed(g, params, core.DistOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := wire.Spawn(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	spec := core.TransportSpec{Kind: "socket", Addrs: cluster.Addrs()}
	for _, mode := range []string{core.PartitionDegree, core.PartitionAdaptive} {
		for _, workers := range []int{2, 4} {
			res, err := core.ClusterDistributed(g, params, core.DistOptions{
				Workers:   workers,
				Transport: spec,
				Partition: core.PartitionSpec{Mode: mode},
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := runHash(res), runHash(baseline); got != want {
				t.Errorf("partition=%s workers=%d over sockets: transcript hash %s != in-process count %s",
					mode, workers, got, want)
			}
		}
	}
}

// TestSocketSpawnThroughSpec exercises the spawn-on-demand path: a
// TransportSpec with no Addrs makes core spawn its own cluster (and tear it
// down), and the run still matches in-process bit for bit.
func TestSocketSpawnThroughSpec(t *testing.T) {
	p, err := gen.SBMBalanced(2, 40, 10, 2, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Beta: 0.5, Rounds: 15, Seed: 3}
	baseline, err := core.ClusterDistributed(p.G, params, core.DistOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ClusterDistributed(p.G, params, core.DistOptions{
		Workers:   3,
		Transport: core.TransportSpec{Kind: "socket", Machines: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if runHash(res) != runHash(baseline) {
		t.Error("spawned socket run diverges from in-process")
	}
}

// TestAsyncGossipSocketMatchesInProcess covers the asynchronous clock's
// delivery path (asyncDeliver routes through the same Transport seam).
// ClusterAsyncGossip runs on a single delivery shard (async execution is
// serialised), so exactly one worker process serves the wire — Machines: 1
// states that honestly rather than requesting a clamp-to-1.
func TestAsyncGossipSocketMatchesInProcess(t *testing.T) {
	p, err := gen.SBMBalanced(2, 40, 10, 2, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Beta: 0.5, Rounds: 10, Seed: 4}
	opt := core.AsyncOptions{Ticks: 4000, ClockSeed: 21}
	baseline, err := core.ClusterAsyncGossip(p.G, params, opt)
	if err != nil {
		t.Fatal(err)
	}
	sopt := opt
	sopt.Transport = core.TransportSpec{Kind: "socket", Machines: 1}
	res, err := core.ClusterAsyncGossip(p.G, params, sopt)
	if err != nil {
		t.Fatal(err)
	}
	if runHash(res) != runHash(baseline) {
		t.Error("async gossip over sockets diverges from in-process")
	}
}

// TestBoundedMailboxSocketMatchesInProcess pins the backpressure layer
// across a real process boundary: mailbox-capacity rejection happens at
// delivery time, downstream of the transport, so a bounded-mailbox reliable
// gossip run whose pushes round-trip through a spawned worker process must
// reproduce the in-process run bit for bit — labels, rejection tally, and
// the exactly conserved mass.
func TestBoundedMailboxSocketMatchesInProcess(t *testing.T) {
	p, err := gen.SBMBalanced(2, 40, 10, 2, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Beta: 0.5, Rounds: 12, Seed: 6}
	opt := core.AsyncOptions{
		Ticks:      4000,
		ClockSeed:  23,
		Model:      dist.LinkFaults{DropProb: 0.1, Seed: 9},
		MailboxCap: 3,
		Reliable:   true,
	}
	baseline, err := core.ClusterAsyncGossip(p.G, params, opt)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.RejectedMessages == 0 || baseline.DroppedMessages == 0 {
		t.Fatalf("baseline engaged no pressure (rejected=%d dropped=%d), comparison is vacuous",
			baseline.RejectedMessages, baseline.DroppedMessages)
	}
	// Conservation sanity (the bit-exact pins live in internal/core; this
	// long run accumulates float-summation ulps).
	if want := float64(len(baseline.Seeds)); math.Abs(baseline.TotalMass-want) > 1e-9*want {
		t.Fatalf("reliable gossip lost mass in-process: %v != %v", baseline.TotalMass, want)
	}
	sopt := opt
	sopt.Transport = core.TransportSpec{Kind: "socket", Machines: 1}
	res, err := core.ClusterAsyncGossip(p.G, params, sopt)
	if err != nil {
		t.Fatal(err)
	}
	if runHash(res) != runHash(baseline) {
		t.Errorf("bounded-mailbox reliable gossip over sockets diverges from in-process\n socket    rejected=%d mass=%v\n inprocess rejected=%d mass=%v",
			res.RejectedMessages, res.TotalMass, baseline.RejectedMessages, baseline.TotalMass)
	}
}

func TestServeRejectsUnknownPayload(t *testing.T) {
	dir := t.TempDir()
	ln, err := wire.Listen("unix:" + dir + "/w.sock")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go wire.Serve(ln)
	_, err = wire.DialSocket(wire.IntCodec{}, "no.such.payload", []string{"unix:" + dir + "/w.sock"}, 1)
	if err == nil {
		t.Fatal("dial with unregistered payload should fail")
	}
	if want := "not registered"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

// TestDialSocketBounds: the bounds-announcing dial path — connections carry
// each shard's node range in the handshake (including empty shards, which a
// weighted split legitimately produces) and the transport works as usual.
func TestDialSocketBounds(t *testing.T) {
	dir := t.TempDir()
	addr := "unix:" + dir + "/w.sock"
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go wire.Serve(ln)
	wantLog, wantMsgs, wantWords, _ := transcript(3, nil)
	log, msgs, words, _ := transcript(3, func(net *dist.Network[int]) {
		sock, err := wire.DialSocketBounds(wire.IntCodec{}, "wire.int",
			[]string{addr}, net.Workers(), net.Bounds())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sock.Close)
		net.SetTransport(sock)
	})
	if msgs != wantMsgs || words != wantWords {
		t.Errorf("counters (%d, %d) != (%d, %d)", msgs, words, wantMsgs, wantWords)
	}
	if fmt.Sprint(log) != fmt.Sprint(wantLog) {
		t.Error("bounds-announced socket transcript diverges from in-process")
	}
	// Empty shards announce lo == hi and still handshake fine.
	sock, err := wire.DialSocketBounds(wire.IntCodec{}, "wire.int", []string{addr}, 3, []int{0, 9, 9, 9})
	if err != nil {
		t.Fatalf("empty-shard bounds rejected: %v", err)
	}
	sock.Close()
	// Malformed bounds fail before any connection survives.
	if _, err := wire.DialSocketBounds(wire.IntCodec{}, "wire.int", []string{addr}, 3, []int{0, 9}); err == nil {
		t.Error("bounds length mismatch should fail")
	}
	if _, err := wire.DialSocketBounds(wire.IntCodec{}, "wire.int", []string{addr}, 3, []int{0, 5, 3, 9}); err == nil {
		t.Error("decreasing bounds (lo > hi) should fail")
	}
}

// TestServeRejectsBadRange drives the daemon-side validation with a raw
// handshake frame whose node range is decreasing — something the dialer
// helpers refuse to send, so the frame is crafted by hand.
func TestServeRejectsBadRange(t *testing.T) {
	dir := t.TempDir()
	ln, err := wire.Listen("unix:" + dir + "/w.sock")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go wire.Serve(ln)
	conn, err := net.Dial("unix", dir+"/w.sock")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := binary.AppendUvarint(nil, 0) // shard
	body = binary.AppendUvarint(body, 7) // lo
	body = binary.AppendUvarint(body, 3) // hi < lo
	body = append(body, "wire.int"...)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	if _, err := conn.Write(append(frame, body...)); err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	status := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(conn, status); err != nil {
		t.Fatal(err)
	}
	if len(status) < 1 || status[0] != 0x01 {
		t.Fatalf("decreasing node range accepted: status % x", status)
	}
	if !strings.Contains(string(status[1:]), "bad node range") {
		t.Errorf("rejection %q does not mention the node range", status[1:])
	}
}

func TestSpawnRecursionGuard(t *testing.T) {
	t.Setenv("LBWIRE_WORKER", "0")
	if _, err := wire.Spawn(1); err == nil {
		t.Fatal("Spawn inside a worker environment should fail")
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := wire.DialSocket(wire.IntCodec{}, "wire.int", []string{"bogus"}, 1); err == nil {
		t.Fatal("schemeless non-path address should fail")
	}
	if _, err := wire.Listen("bogus"); err == nil {
		t.Fatal("Listen on schemeless non-path address should fail")
	}
}
