package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
)

// Socket is a dist.Transport whose far side lives in other OS processes:
// at every barrier, each destination shard's staged buckets are encoded,
// framed onto that shard's dedicated connection to the worker process
// owning its machine shard, decoded and re-encoded over there, and read
// back for delivery. The coordinator keeps the authoritative node state —
// what crosses the wire is exactly the per-barrier message traffic, which
// is the paper's unit of communication accounting.
//
// The Transport determinism contract holds structurally: one synchronous
// request/response per shard per barrier gives exactly-once; the batch
// encoding preserves the bucket partition and intra-bucket order; each
// destination shard owns a private connection and scratch, so concurrent
// Flush calls for distinct shards never share state; and the decoded
// buckets stay valid until the shard's next Flush. A wire or codec failure
// mid-run is unrecoverable for the barrier, so Flush panics with context
// (the dist pool surfaces the panic on the driving goroutine).
type Socket[T any] struct {
	codec  Codec[T]
	shards []socketShard[T]
	// metrics, when non-nil, tallies frames and bytes per destination worker
	// shard (SetMetrics). Worker shards vary with the run configuration, so
	// these counters belong in an Observer's environment registry, never in
	// the deterministic snapshot fingerprint.
	metrics *obs.WireMetrics
}

// SetMetrics attaches per-shard frame/byte counters to the transport; nil
// detaches. Call before the first Flush.
func (s *Socket[T]) SetMetrics(m *obs.WireMetrics) { s.metrics = m }

// socketShard is one destination worker shard's private endpoint.
type socketShard[T any] struct {
	conn    net.Conn
	br      *bufio.Reader
	enc     []byte // encode scratch (frame header + body)
	in      []byte // response frame scratch
	scratch bucketScratch[T]
}

// DialSocket connects a Socket transport for the given worker-shard count:
// addrs lists one wire address per machine process (see Listen for the
// scheme convention), worker shards are assigned to machines by
// dist.NewMachineMap, and every shard dials its machine once. payload
// names the registered codec on both sides of the handshake. On error,
// any connections already made are closed. Shards dialed this way announce
// an empty [0, 0) node range; callers that know their node split should
// prefer DialSocketBounds.
func DialSocket[T any](codec Codec[T], payload string, addrs []string, shards int) (*Socket[T], error) {
	return DialSocketBounds(codec, payload, addrs, shards, nil)
}

// DialSocketBounds is DialSocket with the dialer's node split: bounds, when
// non-nil, must have shards+1 monotone entries, and each shard's handshake
// then announces its node range [bounds[shard], bounds[shard+1]) to the
// worker daemon. The announcement is purely diagnostic — the daemon is a
// routing-agnostic relay, so a mid-run Repartition needs no re-handshake —
// but it lets the daemon's trace narrate which slice of the node range each
// connection was opened for.
func DialSocketBounds[T any](codec Codec[T], payload string, addrs []string, shards int, bounds []int) (*Socket[T], error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("wire: DialSocket with no machine addresses")
	}
	if shards < 1 {
		return nil, fmt.Errorf("wire: DialSocket with %d shards", shards)
	}
	if bounds != nil && len(bounds) != shards+1 {
		return nil, fmt.Errorf("wire: DialSocketBounds with %d bounds for %d shards", len(bounds), shards)
	}
	mm := dist.NewMachineMap(len(addrs), shards)
	s := &Socket[T]{codec: codec, shards: make([]socketShard[T], shards)}
	for shard := 0; shard < shards; shard++ {
		lo, hi := 0, 0
		if bounds != nil {
			lo, hi = bounds[shard], bounds[shard+1]
		}
		if lo > hi || lo < 0 {
			s.Close()
			return nil, fmt.Errorf("wire: DialSocketBounds shard %d has bad range [%d, %d)", shard, lo, hi)
		}
		conn, err := dialShard(addrs[mm.MachineOf(shard)], payload, shard, lo, hi)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.shards[shard] = socketShard[T]{conn: conn, br: bufio.NewReaderSize(conn, 1<<16)}
	}
	return s, nil
}

// dialShard opens and handshakes one shard connection, retrying the dial
// briefly so externally started daemons may still be coming up.
func dialShard(addr, payload string, shard, lo, hi int) (net.Conn, error) {
	network, target, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	var conn net.Conn
	// I/O deadline for connection establishment, not transcript state.
	//lintdet:allow wallclock(dial retry deadline; connection setup never touches the transcript)
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err = net.Dial(network, target)
		if err == nil {
			break
		}
		//lintdet:allow wallclock(dial retry deadline; connection setup never touches the transcript)
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("wire: dial %s for shard %d: %w", addr, shard, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := handshake(conn, payload, shard, lo, hi); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: handshake with %s for shard %d: %w", addr, shard, err)
	}
	return conn, nil
}

// handshake performs the dialer's side of the connection handshake,
// announcing the shard index and the node range the shard owns at dial time
// (see the frame layout at the handshake constants in serve.go).
func handshake(conn net.Conn, payload string, shard, lo, hi int) error {
	//lintdet:allow wallclock(socket handshake deadline; fail-loudly I/O timeout, not transcript state)
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	body := binary.AppendUvarint(nil, uint64(shard))
	body = binary.AppendUvarint(body, uint64(lo))
	body = binary.AppendUvarint(body, uint64(hi))
	body = append(body, payload...)
	if _, err := writeFrame(conn, nil, body); err != nil {
		return err
	}
	status, err := readFrame(conn, nil)
	if err != nil {
		return fmt.Errorf("no handshake reply (is the far side a wire worker? %w)", err)
	}
	if len(status) < 1 || status[0] != handshakeOK {
		if len(status) > 1 {
			return fmt.Errorf("rejected: %s", status[1:])
		}
		return fmt.Errorf("rejected")
	}
	return nil
}

// flushTimeout bounds one barrier round-trip per shard. Real batches
// complete in microseconds to milliseconds; the deadline exists so a
// wedged (stopped, not dead) worker process turns into a loud panic on the
// coordinator instead of a silent barrier hang — the same fail-loudly
// policy as every other wire failure mode.
const flushTimeout = 60 * time.Second

// Flush implements dist.Transport: it round-trips the staged buckets
// through the destination shard's worker process.
func (s *Socket[T]) Flush(dst int, buckets [][]dist.Staged[T]) [][]dist.Staged[T] {
	sh := &s.shards[dst]
	//lintdet:allow wallclock(flush deadline turns a dead worker into a loud error, not transcript state)
	sh.conn.SetDeadline(time.Now().Add(flushTimeout))
	// Encode the batch directly after a reserved frame header, so request
	// framing costs no copy and the frame goes out in one Write.
	enc := append(sh.enc[:0], 0, 0, 0, 0)
	enc = appendBuckets(s.codec, enc, buckets)
	sh.enc = enc
	if len(enc)-4 > maxFrame {
		panic(fmt.Sprintf("wire: shard %d batch of %d bytes exceeds frame limit", dst, len(enc)-4))
	}
	binary.LittleEndian.PutUint32(enc[:4], uint32(len(enc)-4))
	if _, err := sh.conn.Write(enc); err != nil {
		panic(fmt.Sprintf("wire: shard %d send: %v", dst, err))
	}
	in, err := readFrame(sh.br, sh.in)
	if err != nil {
		panic(fmt.Sprintf("wire: shard %d receive: %v", dst, err))
	}
	sh.in = in
	out, err := decodeBuckets(s.codec, in, &sh.scratch)
	if err != nil {
		panic(fmt.Sprintf("wire: shard %d decode: %v", dst, err))
	}
	if len(out) != len(buckets) {
		panic(fmt.Sprintf("wire: shard %d returned %d buckets for %d", dst, len(out), len(buckets)))
	}
	if wm := s.metrics; wm != nil {
		wm.OnFlush(dst, int64(len(enc)+len(in)))
	}
	return out
}

// Close closes every shard connection. The transport must not be flushed
// afterwards.
func (s *Socket[T]) Close() {
	for i := range s.shards {
		if s.shards[i].conn != nil {
			s.shards[i].conn.Close()
		}
	}
}
