// Package sched is the repo's deterministic parallel-execution subsystem:
// a shared fork/join worker pool (Pool), the balanced contiguous partition
// rule every sharded structure in the repo uses (Partition), and a greedy
// independent-set batcher for asynchronous firing schedules (Firings).
//
// The package exists so the same worker-pool abstraction serves every hot
// path: the dist runtime's phase barrier, the sequential engine's matching
// generation and pair merges, and the speculative execution of asynchronous
// firing batches. All of them share one determinism contract — results are
// bit-identical for any worker count — which each caller realises by
// confining every worker's writes to data it owns (contiguous index shards,
// per-worker buffers) and reducing per-worker partials in a fixed order
// after the barrier.
package sched

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// Partition returns the contiguous shard bounds used by every sharded
// structure in the repo: shard i owns the index range [bounds[i],
// bounds[i+1]), with len(bounds) == shards+1, bounds[0] == 0 and
// bounds[shards] == n. Sizes differ by at most one, and no shard is empty
// when shards <= n; when shards > n some shards necessarily get an empty
// range (lo == hi), which every consumer must — and does — tolerate.
// dist.Partition re-exports this rule, so shardings built here line up with
// the network's ownership map. Partition is exactly the unit-cost special
// case of PartitionWeighted, which balances by an arbitrary per-index cost.
func Partition(n, shards int) []int {
	if n < 0 || shards < 1 {
		panic(fmt.Sprintf("sched: Partition(%d, %d)", n, shards))
	}
	bounds := make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		bounds[i] = i * n / shards
	}
	return bounds
}

// Pool is a fixed set of long-lived worker goroutines with a fork/join
// barrier: Run hands the same task to every worker and blocks until all of
// them finish. Keeping the goroutines warm across phases avoids a spawn per
// phase on the hot path; a single-worker pool degenerates to an inline call
// with zero synchronisation, which keeps size 1 an honest baseline for
// speedup measurements.
type Pool struct {
	size int
	work []chan func(w int)
	wg   sync.WaitGroup
	once sync.Once
	// panicMu/panicked capture the first panic from a worker so Run can
	// re-raise it on the driving goroutine; without this a callback panic
	// on a pool goroutine would kill the whole process with size > 1 but
	// stay recoverable with size == 1.
	panicMu  sync.Mutex
	panicked any
}

// NewPool creates a pool of the given size; size <= 0 means
// runtime.GOMAXPROCS(0). The goroutines live until Close.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{size: size}
	if size == 1 {
		return p
	}
	p.work = make([]chan func(w int), size)
	for w := range p.work {
		ch := make(chan func(w int), 1)
		p.work[w] = ch
		go func(w int, ch <-chan func(w int)) {
			for task := range ch {
				p.runOne(task, w)
				p.wg.Done()
			}
		}(w, ch)
	}
	return p
}

// Size returns the worker count.
func (p *Pool) Size() int { return p.size }

// Run executes task(w) on every worker w in [0, size) and waits for all of
// them. The WaitGroup join is the barrier: everything written by the workers
// happens-before Run returns. A panic inside task surfaces on the calling
// goroutine after the barrier (the first one wins if several workers panic),
// so panic behaviour is the same for every worker count.
func (p *Pool) Run(task func(w int)) {
	if p.size == 1 {
		task(0)
		return
	}
	p.wg.Add(p.size)
	for _, ch := range p.work {
		ch <- task
	}
	p.wg.Wait()
	p.panicMu.Lock()
	v := p.panicked
	p.panicked = nil
	p.panicMu.Unlock()
	if v != nil {
		panic(v)
	}
}

// RunRange partitions [0, n) over the pool with Partition and executes
// task(w, lo, hi) on each worker's contiguous range — the loop shape of
// every data-parallel hot path. Workers whose range is empty still run (with
// lo == hi), so per-worker reductions can index their slot unconditionally.
func (p *Pool) RunRange(n int, task func(w, lo, hi int)) {
	bounds := Partition(n, p.size)
	p.Run(func(w int) { task(w, bounds[w], bounds[w+1]) })
}

// runOne executes one task on a worker, converting a panic into a value for
// Run to re-raise so a bad callback cannot tear down the process.
func (p *Pool) runOne(task func(w int), w int) {
	defer func() {
		if v := recover(); v != nil {
			p.panicMu.Lock()
			if p.panicked == nil {
				p.panicked = v
			}
			p.panicMu.Unlock()
		}
	}()
	task(w)
}

// Close terminates the worker goroutines. Idempotent; Run must not be
// called afterwards.
func (p *Pool) Close() {
	p.once.Do(func() {
		for _, ch := range p.work {
			close(ch)
		}
	})
}

// ParseWorkers parses the -parallel flag syntax shared by the repo's
// binaries: "", "0", "off" and "serial" mean sequential execution (0);
// "auto" means runtime.GOMAXPROCS(0); a positive integer means that many
// workers.
func ParseWorkers(s string) (int, error) {
	switch s {
	case "", "0", "off", "serial":
		return 0, nil
	case "auto":
		return runtime.GOMAXPROCS(0), nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("sched: bad worker count %q (want a positive integer, \"auto\", or \"off\")", s)
	}
	return n, nil
}
