package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPartition(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{0, 1}, {1, 1}, {10, 3}, {10, 10}, {10, 16}, {1000, 7},
	} {
		b := Partition(tc.n, tc.shards)
		if len(b) != tc.shards+1 || b[0] != 0 || b[tc.shards] != tc.n {
			t.Fatalf("Partition(%d,%d) = %v", tc.n, tc.shards, b)
		}
		min, max := tc.n, 0
		for i := 0; i < tc.shards; i++ {
			size := b[i+1] - b[i]
			if size < 0 {
				t.Fatalf("Partition(%d,%d): negative shard %d", tc.n, tc.shards, i)
			}
			if size < min {
				min = size
			}
			if size > max {
				max = size
			}
		}
		if max-min > 1 {
			t.Errorf("Partition(%d,%d): sizes differ by %d", tc.n, tc.shards, max-min)
		}
		if tc.shards <= tc.n && min == 0 && tc.n > 0 {
			t.Errorf("Partition(%d,%d): empty shard with shards <= n", tc.n, tc.shards)
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{{-1, 2}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Partition(%d,%d) should panic", tc.n, tc.shards)
				}
			}()
			Partition(tc.n, tc.shards)
		}()
	}
}

func TestPoolRunBarrier(t *testing.T) {
	for _, size := range []int{1, 2, 8} {
		p := NewPool(size)
		got := make([]int, size)
		for round := 1; round <= 3; round++ {
			p.Run(func(w int) { got[w] += w + round })
			// The barrier makes every worker's write visible here.
			for w := 0; w < size; w++ {
				want := 0
				for r := 1; r <= round; r++ {
					want += w + r
				}
				if got[w] != want {
					t.Fatalf("size %d round %d: worker %d wrote %d, want %d", size, round, w, got[w], want)
				}
			}
		}
		p.Close()
		p.Close() // idempotent
	}
}

func TestPoolDefaultSize(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Size() != runtime.GOMAXPROCS(0) {
		t.Errorf("NewPool(0).Size() = %d, want GOMAXPROCS %d", p.Size(), runtime.GOMAXPROCS(0))
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	for _, size := range []int{1, 4} {
		p := NewPool(size)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d: worker panic did not surface on the caller", size)
				}
			}()
			p.Run(func(w int) {
				if w == size-1 {
					panic("boom")
				}
			})
		}()
		// The pool must stay usable after a recovered panic.
		var n atomic.Int64
		p.Run(func(w int) { n.Add(1) })
		if int(n.Load()) != size {
			t.Errorf("size %d: pool broken after panic (%d workers ran)", size, n.Load())
		}
		p.Close()
	}
}

func TestRunRangeCoversOnce(t *testing.T) {
	for _, size := range []int{1, 3, 8} {
		p := NewPool(size)
		const n = 103
		seen := make([]int32, n)
		p.RunRange(n, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("size %d: index %d visited %d times", size, i, c)
			}
		}
		p.Close()
	}
}

// pathAdj is the conflict adjacency of a path graph 0-1-2-...-(n-1).
func pathAdj(n int) func(v int) []int32 {
	return func(v int) []int32 {
		var out []int32
		if v > 0 {
			out = append(out, int32(v-1))
		}
		if v < n-1 {
			out = append(out, int32(v+1))
		}
		return out
	}
}

func TestFiringsIndependentSets(t *testing.T) {
	f := NewFirings(10, pathAdj(10))
	if !f.Offer(4) {
		t.Fatal("first offer must always be admitted")
	}
	if f.Offer(4) {
		t.Error("repeated node admitted to the same batch")
	}
	if f.Offer(3) || f.Offer(5) {
		t.Error("neighbour of a member admitted")
	}
	if !f.Offer(7) {
		t.Error("independent node rejected")
	}
	if f.Size() != 2 {
		t.Errorf("Size = %d, want 2", f.Size())
	}
	f.Reset()
	if f.Size() != 0 {
		t.Errorf("Size after Reset = %d", f.Size())
	}
	if !f.Offer(3) || !f.Offer(5) {
		t.Error("Reset did not clear the batch membership")
	}
}

func TestFiringsLongRunGenerations(t *testing.T) {
	// Many reset cycles must not corrupt membership (generation stamps, not
	// re-cleared arrays).
	f := NewFirings(4, pathAdj(4))
	for i := 0; i < 10_000; i++ {
		v := i % 3
		if !f.Offer(v) {
			t.Fatalf("cycle %d: fresh batch rejected its first offer", i)
		}
		if f.Offer(v + 1) {
			t.Fatalf("cycle %d: neighbour admitted", i)
		}
		f.Reset()
	}
}

func TestParseWorkers(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"", 0}, {"0", 0}, {"off", 0}, {"serial", 0},
		{"1", 1}, {"4", 4},
		{"auto", runtime.GOMAXPROCS(0)},
	} {
		got, err := ParseWorkers(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseWorkers(%q) = (%d, %v), want (%d, nil)", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"-1", "x", "1.5", "2 "} {
		if _, err := ParseWorkers(bad); err == nil {
			t.Errorf("ParseWorkers(%q) should fail", bad)
		}
	}
}
