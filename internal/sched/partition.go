package sched

import (
	"fmt"
	"sort"
)

// PartitionWeighted returns contiguous shard bounds over [0, len(costs))
// balanced by per-index cost rather than by count: shard s owns
// [bounds[s], bounds[s+1]) and its total cost is within one maximal single
// cost of the ideal total/shards. The split rule is the prefix-sum-of-cost
// scheme: with prefix[i] the exclusive prefix sum of costs, bounds[s] is the
// largest i such that prefix[i]*shards <= s*total (found by binary search,
// exact integer arithmetic — no division rounding). Under unit costs this
// reduces to bounds[s] == s*n/shards, i.e. Partition is exactly the
// unit-cost special case.
//
// Bounds are monotone non-decreasing and cover [0, n); individual shards may
// be empty — necessarily so when a single index's cost exceeds the ideal
// share, and always possible when shards > n. Costs must be non-negative and
// total*shards must fit in int64 (degrees of any in-memory graph do). A zero
// total (all costs zero, or no indices) falls back to Partition so the
// "no shard empty when shards <= n" property of the count split is kept.
func PartitionWeighted(costs []int64, shards int) []int {
	if shards < 1 {
		panic(fmt.Sprintf("sched: PartitionWeighted(n=%d, %d)", len(costs), shards))
	}
	n := len(costs)
	prefix := make([]int64, n+1)
	for i, c := range costs {
		if c < 0 {
			panic(fmt.Sprintf("sched: PartitionWeighted: negative cost %d at index %d", c, i))
		}
		prefix[i+1] = prefix[i] + c
	}
	return partitionPrefix(prefix, shards)
}

// partitionPrefix is PartitionWeighted on a precomputed exclusive prefix-sum
// slice (len n+1, prefix[0] == 0, non-decreasing).
func partitionPrefix(prefix []int64, shards int) []int {
	n := len(prefix) - 1
	total := prefix[n]
	if total == 0 {
		return Partition(n, shards)
	}
	bounds := make([]int, shards+1)
	bounds[shards] = n
	for s := 1; s < shards; s++ {
		// Largest i with prefix[i]*shards <= s*total, via the smallest i
		// where the product first exceeds the target. prefix[0] == 0 never
		// exceeds, so the search result is always >= 1.
		target := int64(s) * total
		bounds[s] = sort.Search(n+1, func(i int) bool {
			return prefix[i]*int64(shards) > target
		}) - 1
	}
	return bounds
}

// CheckBounds panics unless bounds is a valid contiguous cover of [0, n) by
// the given shard count: len(bounds) == shards+1, bounds[0] == 0,
// bounds[shards] == n, and non-decreasing. Empty shards (bounds[s] ==
// bounds[s+1]) are valid — weighted splits produce them whenever one index
// dominates the cost, and count splits whenever shards > n. Every structure
// that accepts caller-supplied bounds (pools, networks, shard maps) shares
// this contract.
func CheckBounds(bounds []int, n, shards int) {
	if len(bounds) != shards+1 {
		panic(fmt.Sprintf("sched: bounds len %d, want shards+1 = %d", len(bounds), shards+1))
	}
	if bounds[0] != 0 || bounds[shards] != n {
		panic(fmt.Sprintf("sched: bounds [%d..%d] do not cover [0,%d)", bounds[0], bounds[shards], n))
	}
	for s := 0; s < shards; s++ {
		if bounds[s] > bounds[s+1] {
			panic(fmt.Sprintf("sched: bounds not monotone at shard %d: %d > %d", s, bounds[s], bounds[s+1]))
		}
	}
}

// RunBounds is RunRange with caller-supplied contiguous bounds (typically
// from PartitionWeighted): task(w, bounds[w], bounds[w+1]) runs on every
// worker w. Workers with an empty range still run, exactly as in RunRange.
func (p *Pool) RunBounds(bounds []int, task func(w, lo, hi int)) {
	n := 0
	if len(bounds) > 0 {
		n = bounds[len(bounds)-1]
	}
	CheckBounds(bounds, n, p.size)
	p.Run(func(w int) { task(w, bounds[w], bounds[w+1]) })
}
