package sched

import (
	"testing"
)

// costRNG is a tiny deterministic generator for cost vectors (xorshift64*);
// tests must not depend on iteration order or global randomness.
type costRNG uint64

func (r *costRNG) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = costRNG(x)
	return x * 0x2545F4914F6CDD1D
}

// checkWeighted asserts the PartitionWeighted contract on one instance:
// bounds monotone covering [0, n), every shard's cost below the ideal share
// plus one maximal item, and exact degeneration to Partition for unit costs.
func checkWeighted(t *testing.T, costs []int64, shards int) {
	t.Helper()
	n := len(costs)
	b := PartitionWeighted(costs, shards)
	CheckBounds(b, n, shards)
	var total, maxCost int64
	for _, c := range costs {
		total += c
		if c > maxCost {
			maxCost = c
		}
	}
	for s := 0; s < shards; s++ {
		var sc int64
		for v := b[s]; v < b[s+1]; v++ {
			sc += costs[v]
		}
		if total > 0 && sc >= total/int64(shards)+maxCost+1 {
			t.Errorf("shard %d cost %d exceeds ideal %d + max item %d (n=%d shards=%d)",
				s, sc, total/int64(shards), maxCost, n, shards)
		}
	}
}

func TestPartitionWeightedProperties(t *testing.T) {
	r := costRNG(12345)
	for _, n := range []int{0, 1, 2, 7, 100, 257} {
		for _, shards := range []int{1, 2, 3, 8, 16} {
			// Uniform-ish, skewed (hub at the front), and sparse (mostly
			// zeros) cost shapes.
			shapes := map[string]func(i int) int64{
				"uniform": func(i int) int64 { return int64(r.next()%7) + 1 },
				"hubs":    func(i int) int64 { return int64(n-i) * int64(n-i) },
				"sparse": func(i int) int64 {
					if r.next()%5 == 0 {
						return int64(r.next() % 100)
					}
					return 0
				},
			}
			for name, f := range shapes {
				costs := make([]int64, n)
				for i := range costs {
					costs[i] = f(i)
				}
				t.Run("", func(t *testing.T) {
					_ = name
					checkWeighted(t, costs, shards)
				})
			}
		}
	}
}

// TestPartitionWeightedUnitCostsDegenerate pins the exact-degeneration
// contract: under unit costs, PartitionWeighted IS Partition, bound for
// bound — so every consumer written against Partition's split keeps its
// behaviour when the cost seam is introduced.
func TestPartitionWeightedUnitCostsDegenerate(t *testing.T) {
	for _, n := range []int{0, 1, 5, 10, 257, 1000} {
		for _, shards := range []int{1, 2, 3, 7, 16} {
			costs := make([]int64, n)
			for i := range costs {
				costs[i] = 1
			}
			got := PartitionWeighted(costs, shards)
			want := Partition(n, shards)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d shards=%d: weighted %v != Partition %v", n, shards, got, want)
				}
			}
		}
	}
}

// TestPartitionWeightedZeroTotal: an all-zero cost vector falls back to the
// count split instead of putting every node in shard 0.
func TestPartitionWeightedZeroTotal(t *testing.T) {
	got := PartitionWeighted(make([]int64, 12), 4)
	want := Partition(12, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zero costs: %v != %v", got, want)
		}
	}
}

// TestPartitionWeightedEmptyShards: more shards than (weighted) nodes is
// legal and yields empty trailing ranges, exactly like Partition with
// shards > n — the regression the ISSUE pins for workers > nodes runs.
func TestPartitionWeightedEmptyShards(t *testing.T) {
	b := PartitionWeighted([]int64{5, 5}, 7)
	CheckBounds(b, 2, 7)
	empty := 0
	for s := 0; s < 7; s++ {
		if b[s] == b[s+1] {
			empty++
		}
	}
	if empty < 5 {
		t.Errorf("expected >= 5 empty shards, got %d (%v)", empty, b)
	}
	// One giant item: everything lands in one shard, the rest stay empty.
	b = PartitionWeighted([]int64{0, 1000, 0}, 4)
	CheckBounds(b, 3, 4)
}

func TestPartitionWeightedPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative cost": func() { PartitionWeighted([]int64{1, -1}, 2) },
		"zero shards":   func() { PartitionWeighted([]int64{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCheckBounds(t *testing.T) {
	CheckBounds([]int{0, 2, 2, 5}, 5, 3) // empty middle shard is legal
	for name, f := range map[string]func(){
		"wrong len":  func() { CheckBounds([]int{0, 5}, 5, 3) },
		"bad first":  func() { CheckBounds([]int{1, 3, 5}, 5, 2) },
		"bad last":   func() { CheckBounds([]int{0, 3, 4}, 5, 2) },
		"decreasing": func() { CheckBounds([]int{0, 3, 2, 5}, 5, 3) },
		"empty":      func() { CheckBounds(nil, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

// TestRunBoundsCoversOnce: RunBounds visits exactly the [lo, hi) ranges the
// bounds describe, including empty shards, and covers every index once.
func TestRunBoundsCoversOnce(t *testing.T) {
	for _, tc := range []struct {
		size   int
		bounds []int
	}{
		{3, []int{0, 5, 5, 12}}, // empty middle shard
		{4, []int{0, 1, 1, 1, 1}},
		{2, []int{0, 0, 0}}, // n == 0
	} {
		p := NewPool(tc.size)
		n := tc.bounds[len(tc.bounds)-1]
		seen := make([]int32, n)
		p.RunBounds(tc.bounds, func(w, lo, hi int) {
			if lo != tc.bounds[w] || hi != tc.bounds[w+1] {
				t.Errorf("worker %d got [%d,%d), want [%d,%d)", w, lo, hi, tc.bounds[w], tc.bounds[w+1])
			}
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Errorf("bounds %v: index %d visited %d times", tc.bounds, i, c)
			}
		}
	}
}

func TestRunBoundsValidates(t *testing.T) {
	p := NewPool(2)
	defer func() {
		if recover() == nil {
			t.Error("RunBounds with wrong shard count should panic")
		}
	}()
	p.RunBounds([]int{0, 5}, func(w, lo, hi int) {})
}

// FuzzPartitionWeighted drives the property checks from fuzzed shapes: the
// seed byte stream becomes the cost vector, the first byte the shard count.
func FuzzPartitionWeighted(f *testing.F) {
	f.Add([]byte{4, 1, 2, 3, 4, 5})
	f.Add([]byte{1})
	f.Add([]byte{16, 0, 0, 0, 255})
	f.Add([]byte{8, 200, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		shards := int(data[0])%16 + 1
		costs := make([]int64, len(data)-1)
		for i, b := range data[1:] {
			costs[i] = int64(b)
		}
		checkWeighted(t, costs, shards)
		// Weighted bounds must be reusable verbatim by every bounds consumer.
		CheckBounds(PartitionWeighted(costs, shards), len(costs), shards)
	})
}
