package sched

import "fmt"

// Firings greedily batches a serial firing schedule into independent sets.
//
// An asynchronous run fires one node per step in a randomized serial order
// (dist's RunAsync clock). Firings of nodes that cannot interact commute, so
// a scheduler may execute a batch of them concurrently and commit their
// effects in the original serial order, reproducing the serial transcript
// bit for bit. Firings implements the batch formation half of that scheme:
// the caller offers nodes in serial schedule order, and Offer accepts each
// node into the current batch only while the batch stays an independent set
// of the conflict graph.
//
// The conflict graph is supplied as an adjacency function: adj(v) must list
// every node a firing of v may interact with — for a message-passing
// protocol, every node v may address a message to. The relation must be
// symmetric (u ∈ adj(v) ⇔ v ∈ adj(u)); an asymmetric oracle can admit two
// conflicting nodes into one batch. A node always conflicts with itself, so
// a schedule that fires the same node twice splits batches at the repeat.
//
// Batch membership is tracked with generation stamps, so Reset is O(1) and
// a long run never re-clears the per-node array.
type Firings struct {
	adj func(v int) []int32
	// mark[v] == gen when v is blocked for the current batch (a member, or
	// adjacent to one).
	mark  []int64
	gen   int64
	size  int
	stats FiringStats
}

// FiringStats are cumulative batch-formation tallies over the batcher's
// lifetime: how many batches closed non-empty, how many offers were made, and
// how many were admitted. Admitted/Offered is the acceptance rate of the
// greedy independent-set formation; Admitted/Batches is the mean batch size.
type FiringStats struct {
	Batches  int64
	Offered  int64
	Admitted int64
}

// NewFirings creates a batcher for nodes 0..n-1 with the given conflict
// adjacency.
func NewFirings(n int, adj func(v int) []int32) *Firings {
	if n < 0 || adj == nil {
		panic(fmt.Sprintf("sched: NewFirings(%d, adj==nil:%v)", n, adj == nil))
	}
	return &Firings{adj: adj, mark: make([]int64, n), gen: 1}
}

// Offer proposes the next firing of the serial schedule for the current
// batch. It returns true and admits v if v neither is nor conflicts with a
// current member; the caller then executes v in this batch. It returns false
// — admitting nothing — if v conflicts: the caller must close the batch
// (Reset) and re-offer v to the next one, preserving schedule order.
func (f *Firings) Offer(v int) bool {
	f.stats.Offered++
	if f.mark[v] == f.gen {
		return false
	}
	f.mark[v] = f.gen
	for _, u := range f.adj(v) {
		f.mark[u] = f.gen
	}
	f.size++
	f.stats.Admitted++
	return true
}

// Size returns the number of members admitted to the current batch.
func (f *Firings) Size() int { return f.size }

// Stats returns the cumulative batch-formation tallies.
func (f *Firings) Stats() FiringStats { return f.stats }

// Reset closes the current batch and starts an empty one.
func (f *Firings) Reset() {
	f.gen++
	if f.size > 0 {
		f.stats.Batches++
	}
	f.size = 0
}
