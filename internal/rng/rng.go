// Package rng provides deterministic, splittable pseudo-random number
// generation for reproducible simulations.
//
// The package implements SplitMix64 (used for seeding and stream splitting)
// and xoshiro256** (the workhorse generator). Both are tiny, fast, and have
// well-understood statistical quality. Every simulation component in this
// repository draws randomness through an *rng.RNG seeded explicitly, so any
// experiment can be replayed bit-for-bit. Per-node generators in the
// distributed runtime are derived with Split, which guarantees independent
// streams without shared state or locking.
package rng

import "math"

// SplitMix64 advances the state x and returns the next SplitMix64 output.
// It is the standard seeding primitive recommended by the xoshiro authors.
func SplitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New or Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&x)
	}
	// xoshiro must not start at the all-zero state; SplitMix64 of any seed
	// never produces four zero words in a row, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new, statistically independent generator from r.
// The child stream is a function of the parent's current state, so
// successive Split calls yield distinct children.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative int64, making RNG usable as a rand.Source.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed reseeds the generator in place (rand.Source compatibility).
func (r *RNG) Seed(seed int64) { *r = *New(uint64(seed)) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire's method: multiply and use the high word, rejecting the small
	// biased region of the low word.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n { // -n%n == (2^64 - n) mod n
			return hi
		}
	}
}

// mul64 computes the 128-bit product of a and b without math/bits, keeping
// the package dependency-free of everything but math.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
