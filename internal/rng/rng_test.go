package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("split children collided at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean %f far from 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(13)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	f := float64(hits) / trials
	if math.Abs(f-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency %f", f)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 5, 33} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(17)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("first element %d count %d deviates", i, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(29)
	const trials = 200000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %f", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %f", variance)
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	// Property: mul64 agrees with the 128-bit product computed via the
	// schoolbook decomposition of math/bits-free arithmetic.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via an independent decomposition.
		const mask = 1<<32 - 1
		a0, a1 := a&mask, a>>32
		b0, b1 := b&mask, b>>32
		lo2 := a * b
		mid := a1*b0 + (a0*b0)>>32
		hi2 := a1*b1 + mid>>32 + ((mid&mask)+a0*b1)>>32
		return lo == lo2 && hi == hi2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(99)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(99)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Seed, output %d = %d want %d", i, got, first[i])
		}
	}
}

func TestShuffleAllElementsRetained(t *testing.T) {
	r := New(55)
	xs := []int{10, 20, 30, 40, 50}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 150 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
