package loadbalance

import (
	"testing"
	"testing/quick"

	"repro/internal/graph/gen"
	"repro/internal/rng"
)

func TestDiscreteConservesTokens(t *testing.T) {
	r := rng.New(1)
	g, err := gen.RandomRegular(50, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	y0 := make([]int64, g.N())
	y0[0] = 1000
	y0[10] = 337
	p, err := NewDiscreteProcess(g, 4, y0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Total()
	for i := 0; i < 100; i++ {
		p.Step()
		if p.Total() != want {
			t.Fatalf("token count drift at round %d: %d vs %d", i, p.Total(), want)
		}
	}
	if p.Round() != 100 {
		t.Errorf("round counter %d", p.Round())
	}
}

func TestDiscreteConvergesToSmallDiscrepancy(t *testing.T) {
	r := rng.New(5)
	g, err := gen.RandomRegular(100, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	y0 := make([]int64, g.N())
	y0[0] = 10000
	p, err := NewDiscreteProcess(g, 8, y0, 7)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(300)
	disc := DiscreteDiscrepancy(p.Load())
	// Sauerwald–Sun: discrepancy drops to O(1)-ish on expanders; allow a
	// small constant margin.
	if disc > 6 {
		t.Errorf("discrepancy %d after 300 rounds", disc)
	}
}

func TestDiscreteValidation(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := NewDiscreteProcess(g, 2, make([]int64, 3), 1); err == nil {
		t.Error("short vector should fail")
	}
	if _, err := NewDiscreteProcess(g, 1, make([]int64, 5), 1); err == nil {
		t.Error("low degree bound should fail")
	}
}

func TestDiscreteDiscrepancyHelper(t *testing.T) {
	if DiscreteDiscrepancy(nil) != 0 {
		t.Error("empty")
	}
	if DiscreteDiscrepancy([]int64{5, 1, 3}) != 4 {
		t.Error("wrong discrepancy")
	}
}

func TestDiscreteTracksContinuous(t *testing.T) {
	// Same matchings (same seed): the integer trajectory stays within n/2
	// tokens of the continuous one in aggregate (each merge rounds by at
	// most half a token).
	r := rng.New(11)
	g, err := gen.RandomRegular(40, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	const total = 100000
	y0f := make([]float64, g.N())
	y0f[0] = total
	y0i := make([]int64, g.N())
	y0i[0] = total
	pf, err := NewProcess(g, 4, y0f, 21)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := NewDiscreteProcess(g, 4, y0i, 21)
	if err != nil {
		t.Fatal(err)
	}
	pf.Run(80)
	pi.Run(80)
	for v := 0; v < g.N(); v++ {
		diff := float64(pi.Load()[v]) - pf.Load()[v]
		if diff < 0 {
			diff = -diff
		}
		// Rounding error accumulates like a random walk over ~80 rounds;
		// stay well below the per-node average of 2500 tokens.
		if diff > 100 {
			t.Errorf("node %d: discrete %d vs continuous %.1f", v, pi.Load()[v], pf.Load()[v])
		}
	}
}

// Property: token conservation under random graphs and loads.
func TestDiscreteProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + 2*r.Intn(15)
		g, err := gen.RandomRegular(n, 4, r)
		if err != nil {
			return false
		}
		y0 := make([]int64, n)
		for i := range y0 {
			y0[i] = int64(r.Intn(50))
		}
		p, err := NewDiscreteProcess(g, 4, y0, seed)
		if err != nil {
			return false
		}
		want := p.Total()
		p.Run(30)
		if p.Total() != want {
			return false
		}
		// No negative loads ever.
		for _, x := range p.Load() {
			if x < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
