package loadbalance

import (
	"math"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestMatchingEventBudget(t *testing.T) {
	// 100 nodes at density 0.6 match 15 pairs per round in expectation;
	// budgets round up and scale linearly in the round count.
	if got := MatchingEventBudget(100, 0.6, 1); got != 15 {
		t.Errorf("budget = %d, want 15", got)
	}
	if got := MatchingEventBudget(100, 0.6, 10); got != 150 {
		t.Errorf("budget = %d, want 150", got)
	}
	if got := MatchingEventBudget(3, 1, 1); got != 1 {
		t.Errorf("budget = %d, want 1 (ceil of 0.75)", got)
	}
	if got := MatchingEventBudget(0, 1, 5); got != 0 {
		t.Errorf("budget = %d, want 0", got)
	}
}

func TestAsyncGossipConservesMass(t *testing.T) {
	r := rng.New(1)
	g, err := gen.RandomRegular(40, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	y0 := make([]float64, g.N())
	y0[3] = 1
	a, err := NewAsyncGossip(g, [][]float64{y0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		u, v := a.Tick()
		if !g.HasEdge(u, v) {
			t.Fatalf("tick fired non-edge (%d,%d)", u, v)
		}
		if math.Abs(linalg.Sum(a.Loads()[0])-1) > 1e-12 {
			t.Fatalf("mass drift at tick %d", i)
		}
	}
	if a.Ticks() != 500 {
		t.Errorf("tick counter %d", a.Ticks())
	}
}

func TestAsyncGossipConverges(t *testing.T) {
	r := rng.New(3)
	g, err := gen.RandomRegular(60, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	y0 := make([]float64, g.N())
	y0[0] = 1
	a, err := NewAsyncGossip(g, [][]float64{y0}, 9)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(60 * 200) // ~200 events per node
	if d := L2ToUniform(a.Loads()[0]); d > 1e-3 {
		t.Errorf("async gossip did not converge: %v", d)
	}
}

func TestAsyncGossipMultiVector(t *testing.T) {
	g := gen.Cycle(8)
	y0 := make([]float64, 8)
	y0[0] = 1
	a, err := NewAsyncGossip(g, [][]float64{y0, y0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(100)
	if linalg.MaxAbsDiff(a.Loads()[0], a.Loads()[1]) != 0 {
		t.Error("identical vectors diverged under shared ticks")
	}
}

func TestAsyncGossipValidation(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := NewAsyncGossip(g, [][]float64{make([]float64, 3)}, 1); err == nil {
		t.Error("short vector should fail")
	}
	empty, _ := gen.RandomRegular(4, 0, rng.New(1))
	if _, err := NewAsyncGossip(empty, nil, 1); err == nil {
		t.Error("edgeless graph should fail")
	}
}
