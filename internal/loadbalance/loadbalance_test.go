package loadbalance

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph/gen"
	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/spectral"
)

func TestProcessConservesMass(t *testing.T) {
	r := rng.New(1)
	g, err := gen.RandomRegular(50, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	y0 := make([]float64, g.N())
	y0[7] = 1
	p, err := NewProcess(g, 4, y0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Step()
		if math.Abs(linalg.Sum(p.Load())-1) > 1e-12 {
			t.Fatalf("mass drift at round %d: %v", i, linalg.Sum(p.Load()))
		}
	}
	if p.Round() != 100 {
		t.Errorf("round counter %d", p.Round())
	}
}

func TestProcessConvergesToUniform(t *testing.T) {
	// On an expander, the process converges to the uniform vector.
	r := rng.New(5)
	g, err := gen.RandomRegular(100, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	y0 := make([]float64, g.N())
	y0[0] = 1
	p, err := NewProcess(g, 8, y0, 9)
	if err != nil {
		t.Fatal(err)
	}
	before := L2ToUniform(p.Load())
	p.Run(200)
	after := L2ToUniform(p.Load())
	if after > before/50 {
		t.Errorf("no convergence: before %v after %v", before, after)
	}
	if Discrepancy(p.Load()) > 0.01 {
		t.Errorf("discrepancy %v still large", Discrepancy(p.Load()))
	}
}

func TestProcessValidation(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := NewProcess(g, 2, make([]float64, 4), 1); err == nil {
		t.Error("short vector should fail")
	}
	if _, err := NewProcess(g, 1, make([]float64, 5), 1); err == nil {
		t.Error("low degree bound should fail")
	}
}

func TestMultiProcessMatchesSingle(t *testing.T) {
	// With the same seed, a MultiProcess with one vector must equal Process.
	r := rng.New(7)
	g, err := gen.RandomRegular(30, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	y0 := make([]float64, g.N())
	y0[3] = 1
	single, err := NewProcess(g, 4, y0, 42)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewMultiProcess(g, 4, [][]float64{y0}, 42)
	if err != nil {
		t.Fatal(err)
	}
	single.Run(50)
	multi.Run(50)
	if linalg.MaxAbsDiff(single.Load(), multi.Loads()[0]) > 1e-15 {
		t.Error("multi process diverged from single process under same seed")
	}
}

func TestMultiProcessSharedMatching(t *testing.T) {
	// All coordinates see the same matchings: starting two vectors at the
	// same node keeps them identical forever.
	r := rng.New(9)
	g, err := gen.RandomRegular(30, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	y0 := make([]float64, g.N())
	y0[5] = 1
	mp, err := NewMultiProcess(g, 4, [][]float64{y0, y0}, 17)
	if err != nil {
		t.Fatal(err)
	}
	mp.Run(30)
	if linalg.MaxAbsDiff(mp.Loads()[0], mp.Loads()[1]) != 0 {
		t.Error("identical initial vectors diverged under shared matchings")
	}
	if mp.Round() != 30 {
		t.Errorf("round = %d", mp.Round())
	}
}

func TestMultiProcessValidation(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := NewMultiProcess(g, 2, [][]float64{make([]float64, 3)}, 1); err == nil {
		t.Error("short vector should fail")
	}
	if _, err := NewMultiProcess(g, 0, nil, 1); err == nil {
		t.Error("low degree bound should fail")
	}
}

func TestDiscrepancy(t *testing.T) {
	if Discrepancy([]float64{3, 1, 4, 1, 5}) != 4 {
		t.Error("discrepancy")
	}
	if Discrepancy(nil) != 0 {
		t.Error("empty discrepancy")
	}
}

func TestL2ToUniform(t *testing.T) {
	if L2ToUniform([]float64{1, 1, 1}) != 0 {
		t.Error("uniform vector should have zero distance")
	}
	got := L2ToUniform([]float64{2, 0})
	if math.Abs(got-math.Sqrt(2)) > 1e-14 {
		t.Errorf("got %v", got)
	}
	if L2ToUniform(nil) != 0 {
		t.Error("empty")
	}
}

func TestDistanceToIndicator(t *testing.T) {
	y := []float64{0.5, 0.5, 0, 0}
	if DistanceToIndicator(y, []int{0, 1}) != 0 {
		t.Error("exact indicator should be distance 0")
	}
	d := DistanceToIndicator([]float64{1, 0, 0, 0}, []int{0, 1})
	want := math.Sqrt(0.25 + 0.25)
	if math.Abs(d-want) > 1e-14 {
		t.Errorf("got %v want %v", d, want)
	}
}

func TestLemma43GoodSeedConvergesToCluster(t *testing.T) {
	// Start the 1-dim process from a node of a well-separated cluster and run
	// T = Θ(log n/(1−λ_{k+1})) rounds: the load should be much closer to
	// χ_{S_j} than at the start (Lemma 4.3), while mass has not yet leaked
	// to the uniform distribution.
	r := rng.New(11)
	p, err := gen.ClusteredRing(2, 100, 12, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	st, err := spectral.Analyze(p.G, p.Truth, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	T := spectral.EstimateRoundsMatching(p.G.N(), st.LambdaK1, p.G.MaxDegree(), 1)
	members := spectral.ClusterMembers(p.Truth, 2)[0]
	y0 := make([]float64, p.G.N())
	y0[members[0]] = 1
	proc, err := NewProcess(p.G, p.G.MaxDegree(), y0, 23)
	if err != nil {
		t.Fatal(err)
	}
	start := DistanceToIndicator(proc.Load(), members)
	proc.Run(T)
	end := DistanceToIndicator(proc.Load(), members)
	if end > start/3 {
		t.Errorf("no cluster convergence: start %v end %v (T=%d)", start, end, T)
	}
}

func TestDiffusionConservesAndConverges(t *testing.T) {
	r := rng.New(13)
	g, err := gen.RandomRegular(80, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	y0 := make([]float64, g.N())
	y0[2] = 1
	d, err := NewDiffusion(g, 6, y0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	msgs := d.Run(60)
	if msgs != 60*2*g.M() {
		t.Errorf("message count %d", msgs)
	}
	if math.Abs(linalg.Sum(d.Load())-1) > 1e-12 {
		t.Error("diffusion lost mass")
	}
	if L2ToUniform(d.Load()) > 1e-3 {
		t.Errorf("diffusion did not converge: %v", L2ToUniform(d.Load()))
	}
	if d.Round() != 60 {
		t.Errorf("round = %d", d.Round())
	}
}

func TestDiffusionValidation(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := NewDiffusion(g, 2, make([]float64, 5), 0); err == nil {
		t.Error("gamma=0 should fail")
	}
	if _, err := NewDiffusion(g, 2, make([]float64, 5), 1.5); err == nil {
		t.Error("gamma>1 should fail")
	}
	if _, err := NewDiffusion(g, 2, make([]float64, 3), 0.5); err == nil {
		t.Error("short vector should fail")
	}
	if _, err := NewDiffusion(g, 1, make([]float64, 5), 0.5); err == nil {
		t.Error("low degree bound should fail")
	}
}

// Property: mass conservation and value range holds across processes.
func TestProcessProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + 2*r.Intn(15)
		g, err := gen.RandomRegular(n, 4, r)
		if err != nil {
			return false
		}
		y0 := make([]float64, n)
		for i := range y0 {
			y0[i] = r.Float64()
		}
		mn, mx := y0[0], y0[0]
		for _, v := range y0 {
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
		}
		sum := linalg.Sum(y0)
		p, err := NewProcess(g, 4, y0, seed)
		if err != nil {
			return false
		}
		p.Run(20)
		if math.Abs(linalg.Sum(p.Load())-sum) > 1e-9 {
			return false
		}
		// Averaging cannot exceed the initial range.
		for _, v := range p.Load() {
			if v < mn-1e-12 || v > mx+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
