package loadbalance

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// MatchingEventBudget returns the expected number of pairwise averaging
// events performed by `rounds` synchronous matching rounds on an n-node
// graph with matching density d̄ (≈ n·d̄/4 matched pairs per round) — the
// clock-alignment constant between the synchronous and asynchronous time
// models. Message-level async gossip spends two half-pushes per pairwise
// event, so its firing budget is twice this number.
func MatchingEventBudget(n int, dbar float64, rounds int) int {
	return int(math.Ceil(float64(rounds) * float64(n) * dbar / 4))
}

// AsyncGossip is the closed-form reference simulator for the asynchronous
// time model of Boyd–Ghosh–Prabhakar–Shah: each tick one edge, chosen
// uniformly at random, fires and its endpoints average their values. One
// synchronous matching round corresponds to about n·d̄/4 asynchronous ticks
// (see MatchingEventBudget). The paper analyses the synchronous matching
// model; this process quantifies that nothing about the balancing behaviour
// depends on the synchrony assumption.
//
// This simulator averages scalar vectors in place with no messages; the
// message-level counterpart — real envelopes, traffic accounting, delivery
// faults — is core.ClusterAsyncGossip on dist.RunAsync, which is what
// experiment F9 runs. AsyncGossip remains the idealised baseline those
// message-level runs are sanity-checked against.
type AsyncGossip struct {
	g    *graph.Graph
	ys   [][]float64
	r    *rng.RNG
	tick int
	// edge list for uniform sampling
	us, vs []int32
}

// NewAsyncGossip starts the process on copies of the given vectors.
func NewAsyncGossip(g *graph.Graph, init [][]float64, seed uint64) (*AsyncGossip, error) {
	if g.M() == 0 {
		return nil, fmt.Errorf("loadbalance: async gossip needs at least one edge")
	}
	ys := make([][]float64, len(init))
	for i, y := range init {
		if len(y) != g.N() {
			return nil, fmt.Errorf("loadbalance: vector %d has length %d for n=%d", i, len(y), g.N())
		}
		c := make([]float64, len(y))
		copy(c, y)
		ys[i] = c
	}
	a := &AsyncGossip{g: g, ys: ys, r: rng.New(seed)}
	a.us = make([]int32, 0, g.M())
	a.vs = make([]int32, 0, g.M())
	g.Edges(func(u, v int) {
		a.us = append(a.us, int32(u))
		a.vs = append(a.vs, int32(v))
	})
	return a, nil
}

// Tick fires one uniformly random edge; both endpoints average every
// coordinate. Returns the edge used.
func (a *AsyncGossip) Tick() (int, int) {
	e := a.r.Intn(len(a.us))
	u, v := a.us[e], a.vs[e]
	for _, y := range a.ys {
		avg := (y[u] + y[v]) / 2
		y[u], y[v] = avg, avg
	}
	a.tick++
	return int(u), int(v)
}

// Run fires t ticks.
func (a *AsyncGossip) Run(t int) {
	for i := 0; i < t; i++ {
		a.Tick()
	}
}

// Loads returns the current vectors (aliasing internal state).
func (a *AsyncGossip) Loads() [][]float64 { return a.ys }

// Ticks returns the number of ticks fired.
func (a *AsyncGossip) Ticks() int { return a.tick }
