package loadbalance

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
)

// DiscreteProcess is the indivisible-token variant of the matching model
// (Berenbrink et al., "Randomized diffusion for indivisible loads"): matched
// nodes split their combined integer load evenly and the leftover token, if
// any, goes to one of the two uniformly at random. The paper's analysis is
// stated for divisible loads; this substrate quantifies how little the
// rounding changes the trajectory (experiment F7).
type DiscreteProcess struct {
	g     *graph.Graph
	d     int
	y     []int64
	round int
	rngs  []*rng.RNG
	coin  *rng.RNG
}

// NewDiscreteProcess starts the process with integer loads y0.
func NewDiscreteProcess(g *graph.Graph, d int, y0 []int64, seed uint64) (*DiscreteProcess, error) {
	if len(y0) != g.N() {
		return nil, fmt.Errorf("loadbalance: load vector length %d for n=%d", len(y0), g.N())
	}
	if d < g.MaxDegree() {
		return nil, fmt.Errorf("loadbalance: degree bound %d below max degree %d", d, g.MaxDegree())
	}
	y := make([]int64, len(y0))
	copy(y, y0)
	return &DiscreteProcess{
		g:    g,
		d:    d,
		y:    y,
		rngs: matching.NodeRNGs(g.N(), seed),
		coin: rng.New(seed ^ 0xd15c4e7e),
	}, nil
}

// Step performs one round: generate a matching, matched pairs split their
// tokens with randomized rounding of the odd token.
func (p *DiscreteProcess) Step() *matching.Matching {
	m := matching.Generate(p.g, p.d, p.rngs)
	for _, pair := range m.Pairs {
		u, v := pair[0], pair[1]
		total := p.y[u] + p.y[v]
		half := total / 2
		rem := total - 2*half
		p.y[u], p.y[v] = half, half
		if rem != 0 {
			if p.coin.Bool() {
				p.y[u] += rem
			} else {
				p.y[v] += rem
			}
		}
	}
	p.round++
	return m
}

// Run performs t rounds.
func (p *DiscreteProcess) Run(t int) {
	for i := 0; i < t; i++ {
		p.Step()
	}
}

// Load returns the current integer load vector (aliasing internal state).
func (p *DiscreteProcess) Load() []int64 { return p.y }

// Round returns the number of rounds performed.
func (p *DiscreteProcess) Round() int { return p.round }

// Total returns the total token count (conserved).
func (p *DiscreteProcess) Total() int64 {
	var t int64
	for _, x := range p.y {
		t += x
	}
	return t
}

// DiscreteDiscrepancy returns max(y) − min(y) for integer loads.
func DiscreteDiscrepancy(y []int64) int64 {
	if len(y) == 0 {
		return 0
	}
	mn, mx := y[0], y[0]
	for _, v := range y[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mx - mn
}
