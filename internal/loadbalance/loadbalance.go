// Package loadbalance implements the load-balancing processes the paper
// studies: the classical one-dimensional random matching process
// y(t+1) = M(t)·y(t) (equation (3)), its multi-dimensional generalisation in
// which the same matching matrix is applied to s load vectors per round
// (§3.2), and a first-order diffusion process used as an ablation baseline
// (every node averages with all neighbours every round, the communication
// pattern of Becchetti et al. that the paper contrasts against).
package loadbalance

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/matching"
	"repro/internal/rng"
)

// Process is the one-dimensional random matching load-balancing process.
type Process struct {
	g     *graph.Graph
	d     int
	y     []float64
	round int
	rngs  []*rng.RNG
}

// NewProcess starts the process with initial load y0 on the D-regular view
// of g (d = degree bound; pass g.MaxDegree() for regular graphs).
func NewProcess(g *graph.Graph, d int, y0 []float64, seed uint64) (*Process, error) {
	if len(y0) != g.N() {
		return nil, fmt.Errorf("loadbalance: load vector length %d for n=%d", len(y0), g.N())
	}
	if d < g.MaxDegree() {
		return nil, fmt.Errorf("loadbalance: degree bound %d below max degree %d", d, g.MaxDegree())
	}
	return &Process{
		g:    g,
		d:    d,
		y:    linalg.Clone(y0),
		rngs: matching.NodeRNGs(g.N(), seed),
	}, nil
}

// Step performs one round and returns the matching used.
func (p *Process) Step() *matching.Matching {
	m := matching.Generate(p.g, p.d, p.rngs)
	m.Apply(p.y)
	p.round++
	return m
}

// Run performs t rounds.
func (p *Process) Run(t int) {
	for i := 0; i < t; i++ {
		p.Step()
	}
}

// Round returns the number of rounds performed.
func (p *Process) Round() int { return p.round }

// Load returns the current load vector (aliasing internal state; callers
// must not modify it).
func (p *Process) Load() []float64 { return p.y }

// MultiProcess runs s load vectors under the same per-round matching,
// exactly the multi-dimensional process of §3.2.
type MultiProcess struct {
	g     *graph.Graph
	d     int
	ys    [][]float64
	round int
	rngs  []*rng.RNG
}

// NewMultiProcess starts the multi-dimensional process from the given
// initial vectors (cloned).
func NewMultiProcess(g *graph.Graph, d int, init [][]float64, seed uint64) (*MultiProcess, error) {
	if d < g.MaxDegree() {
		return nil, fmt.Errorf("loadbalance: degree bound %d below max degree %d", d, g.MaxDegree())
	}
	ys := make([][]float64, len(init))
	for i, y := range init {
		if len(y) != g.N() {
			return nil, fmt.Errorf("loadbalance: vector %d has length %d for n=%d", i, len(y), g.N())
		}
		ys[i] = linalg.Clone(y)
	}
	return &MultiProcess{g: g, d: d, ys: ys, rngs: matching.NodeRNGs(g.N(), seed)}, nil
}

// Step performs one round on all vectors with a single matching.
func (p *MultiProcess) Step() *matching.Matching {
	m := matching.Generate(p.g, p.d, p.rngs)
	m.ApplyAll(p.ys)
	p.round++
	return m
}

// Run performs t rounds.
func (p *MultiProcess) Run(t int) {
	for i := 0; i < t; i++ {
		p.Step()
	}
}

// Loads returns the current load vectors (aliasing internal state).
func (p *MultiProcess) Loads() [][]float64 { return p.ys }

// Round returns the number of rounds performed.
func (p *MultiProcess) Round() int { return p.round }

// Discrepancy returns max(y) − min(y), the classical load-balancing measure.
func Discrepancy(y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	mn, mx := y[0], y[0]
	for _, v := range y[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mx - mn
}

// L2ToUniform returns ‖y − avg·1‖₂, the distance to the balanced state.
func L2ToUniform(y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	avg := linalg.Sum(y) / float64(len(y))
	var s float64
	for _, v := range y {
		d := v - avg
		s += d * d
	}
	return math.Sqrt(s)
}

// DistanceToIndicator returns ‖y − χ_S‖₂ for the normalised indicator of the
// member set (Lemma 4.3's quantity).
func DistanceToIndicator(y []float64, members []int) float64 {
	val := 1 / float64(len(members))
	inS := make(map[int]bool, len(members))
	for _, v := range members {
		inS[v] = true
	}
	var s float64
	for i, x := range y {
		want := 0.0
		if inS[i] {
			want = val
		}
		d := x - want
		s += d * d
	}
	return math.Sqrt(s)
}

// Diffusion is the first-order diffusion process
// y(t+1) = (1−γ)·y(t) + γ·P*·y(t), the all-neighbour averaging dynamics used
// as the ablation baseline: same fixed-point, but every edge carries a
// message every round.
type Diffusion struct {
	apply func(dst, src []float64)
	y     []float64
	tmp   []float64
	gamma float64
	round int
	m     int
}

// NewDiffusion starts diffusion on the D-regular view of g with mixing
// parameter gamma ∈ (0, 1].
func NewDiffusion(g *graph.Graph, d int, y0 []float64, gamma float64) (*Diffusion, error) {
	if len(y0) != g.N() {
		return nil, fmt.Errorf("loadbalance: load vector length %d for n=%d", len(y0), g.N())
	}
	if gamma <= 0 || gamma > 1 {
		return nil, fmt.Errorf("loadbalance: gamma %v out of (0,1]", gamma)
	}
	if d < g.MaxDegree() {
		return nil, fmt.Errorf("loadbalance: degree bound %d below max degree %d", d, g.MaxDegree())
	}
	invD := 1 / float64(d)
	apply := func(dst, src []float64) {
		for v := 0; v < g.N(); v++ {
			var s float64
			nb := g.Neighbors(v)
			for _, u := range nb {
				s += src[u]
			}
			s += float64(d-len(nb)) * src[v]
			dst[v] = s * invD
		}
	}
	return &Diffusion{
		apply: apply,
		y:     linalg.Clone(y0),
		tmp:   make([]float64, g.N()),
		gamma: gamma,
		m:     g.M(),
	}, nil
}

// Step performs one diffusion round and returns the number of messages
// (words) exchanged: two per edge (each endpoint sends its value).
func (d *Diffusion) Step() int {
	d.apply(d.tmp, d.y)
	for i := range d.y {
		d.y[i] = (1-d.gamma)*d.y[i] + d.gamma*d.tmp[i]
	}
	d.round++
	return 2 * d.m
}

// Run performs t rounds and returns total messages.
func (d *Diffusion) Run(t int) int {
	total := 0
	for i := 0; i < t; i++ {
		total += d.Step()
	}
	return total
}

// Load returns the current load vector (aliasing internal state).
func (d *Diffusion) Load() []float64 { return d.y }

// Round returns the number of rounds performed.
func (d *Diffusion) Round() int { return d.round }
