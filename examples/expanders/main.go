// The headline separation (§1.3): on a graph made of expanders connected by
// few edges, the load-balancing algorithm needs polylog(n) rounds, while a
// decentralised spectral method (Kempe–McSherry orthogonal iteration) pays
// the global mixing time in its gossip phases — polynomially many rounds as
// the cut shrinks.
package main

import (
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/spectral"
)

func main() {
	fmt.Println("ring of 2 expanders, shrinking cut (cross matchings c):")
	fmt.Printf("%-4s %-10s %-8s %-8s %-14s %-14s %-12s\n",
		"c", "lambda_2", "Upsilon", "LB T", "LB words", "KM rounds", "KM words")
	for _, c := range []int{8, 4, 2, 1} {
		p, err := gen.ClusteredRing(2, 200, 48, c, rng.New(uint64(31+c)))
		if err != nil {
			log.Fatal(err)
		}
		g := p.G
		st, err := spectral.Analyze(g, p.Truth, 2, 1)
		if err != nil {
			log.Fatal(err)
		}
		T := spectral.EstimateRoundsMatching(g.N(), st.LambdaK1, g.MaxDegree(), 1.5)
		res, err := core.Cluster(g, core.Params{Beta: 0.5, Rounds: T, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
		if err != nil {
			log.Fatal(err)
		}
		km, err := baselines.KempeMcSherry(g, 2, 4000, 1e-7, 5)
		if err != nil {
			log.Fatal(err)
		}
		kmMis, err := metrics.MisclassificationRate(p.Truth, km.Labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-10.4f %-8.1f %-8d %-14d %-14d %-12d  (LB err %.1f%%, KM err %.1f%%)\n",
			c, st.Eigvals[1], st.Upsilon, T, res.Stats.TotalWords(), km.TotalRounds, km.Words,
			100*mis, 100*kmMis)
	}
	fmt.Println("\nshape: as the cut shrinks (c -> 1), lambda_2 -> 1 and the KM round")
	fmt.Println("count explodes with the mixing time, while the LB budget stays polylog.")
	fmt.Println("(rows with small Upsilon are outside the well-clustered regime, so the")
	fmt.Println("LB error there is expectedly high — the gap condition (2) is the point.)")
}
