// Quickstart: generate a small well-clustered graph, estimate the round
// budget from its spectrum, run the load-balancing clustering algorithm and
// score the result against the planted partition.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/spectral"
)

func main() {
	// A ring of 3 expander clusters, 100 nodes each, internal degree 60,
	// one perfect matching between adjacent clusters.
	p, err := gen.ClusteredRing(3, 100, 60, 1, rng.New(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v, planted clusters: %d\n", p.G, p.K)

	// Inspect the cluster structure: λ_{k+1}, ρ(k) and the gap Υ.
	st, err := spectral.Analyze(p.G, p.Truth, p.K, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lambda_%d = %.4f, rho(%d) = %.4f, Upsilon = %.1f\n",
		p.K+1, st.LambdaK1, p.K, st.RhoK, st.Upsilon)

	// Round budget T = Θ(log n / (1−λ_{k+1})) adjusted for the matching
	// model's d̄/4 per-round contraction.
	T := spectral.EstimateRoundsMatching(p.G.N(), st.LambdaK1, p.G.MaxDegree(), 1.5)
	fmt.Printf("round budget T = %d\n", T)

	// Run the algorithm: seeding, T averaging rounds, query.
	res, err := core.Cluster(p.G, core.Params{
		Beta:   p.MinClusterFraction(), // known lower bound on cluster sizes
		Rounds: T,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeds planted: %d, labels emitted: %d\n", len(res.Seeds), res.NumLabels)
	fmt.Printf("message complexity: %d words over %d rounds (%d matches)\n",
		res.Stats.TotalWords(), res.Stats.Rounds, res.Stats.Matches)

	mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		log.Fatal(err)
	}
	ari, err := metrics.ARI(p.Truth, res.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("misclassified: %.2f%%, ARI: %.3f\n", 100*mis, ari)
}
