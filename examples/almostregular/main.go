// Almost-regular and heavy-tailed graphs (§4.5): the algorithm pads every
// node to a common degree bound D with virtual self-loops (the G* view).
// This example runs the protocol on a two-block SBM with a 2:1 degree ratio
// and on a power-law Chung–Lu community graph, showing where the
// almost-regular assumption carries and where it strains.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/spectral"
)

func main() {
	// Case 1: two-block SBM, block degrees ~40 and ~80 (ratio 2 — inside
	// the §4.5 regime).
	size := 300
	p1, err := gen.SBMHetero(
		[]int{size, size},
		[]float64{40.0 / float64(size-1), 80.0 / float64(size-1)},
		1.5/float64(size),
		rng.New(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	p1 = gen.GiantComponent(p1)
	report("SBM, degree ratio ~2", p1)

	// Case 2: power-law communities (heavy tail: Δ/δ far beyond a constant;
	// outside the paper's assumption — expect visible degradation).
	p2, err := gen.PowerLawCluster(2, 300, 2.3, 8, 120, 1.5, rng.New(5))
	if err != nil {
		log.Fatal(err)
	}
	p2 = gen.GiantComponent(p2)
	report("power-law communities", p2)

	fmt.Println("\nshape: the G* protocol tolerates constant degree ratios (§4.5);")
	fmt.Println("heavy-tailed degrees dilute the gap and accuracy degrades — exactly")
	fmt.Println("the boundary the paper's almost-regular assumption draws.")
}

func report(name string, p *gen.Planted) {
	g := p.G
	st, err := spectral.Analyze(g, p.Truth, p.K, 1)
	if err != nil {
		log.Fatal(err)
	}
	T := spectral.EstimateRoundsMatching(g.N(), st.LambdaK1, g.MaxDegree(), 1.5)
	res, err := core.Cluster(g, core.Params{
		Beta:   p.MinClusterFraction(),
		Rounds: T,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-26s n=%-5d deg∈[%d,%d] (ratio %.1f)  Upsilon=%-6.1f T=%-4d misclassified %.2f%%\n",
		name, g.N(), g.MinDegree(), g.MaxDegree(), g.DegreeRatio(), st.Upsilon, T, 100*mis)
}
