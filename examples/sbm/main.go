// Community detection on a stochastic block model: the graph is only
// almost-regular, so the algorithm runs the G* self-loop protocol of §4.5
// with the degree bound D = max degree. The run is compared against
// centralised spectral clustering and label propagation.
package main

import (
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/spectral"
)

func main() {
	// 3 communities of 250 nodes; expected internal degree 60, external 2.
	// (The algorithm analyses the G* self-loop view, so the effective gap
	// shrinks with the degree spread; a solid internal degree keeps the
	// instance inside the well-clustered regime.)
	p, err := gen.SBMBalanced(3, 250, 60, 2, rng.New(11))
	if err != nil {
		log.Fatal(err)
	}
	p = gen.GiantComponent(p)
	g := p.G
	fmt.Printf("SBM: %v (degree ratio %.2f — almost-regular)\n", g, g.DegreeRatio())

	st, err := spectral.Analyze(g, p.Truth, p.K, 1)
	if err != nil {
		log.Fatal(err)
	}
	T := spectral.EstimateRoundsMatching(g.N(), st.LambdaK1, g.MaxDegree(), 1.5)
	fmt.Printf("Upsilon = %.1f, T = %d\n", st.Upsilon, T)

	score := func(name string, labels []int) {
		mis, err := metrics.MisclassificationRate(p.Truth, labels)
		if err != nil {
			log.Fatal(err)
		}
		ari, err := metrics.ARI(p.Truth, labels)
		if err != nil {
			log.Fatal(err)
		}
		nmi, err := metrics.NMI(p.Truth, labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s misclassified %6.2f%%  ARI %.3f  NMI %.3f\n", name, 100*mis, ari, nmi)
	}

	res, err := core.Cluster(g, core.Params{Beta: p.MinClusterFraction(), Rounds: T, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	score("load-balancing", res.Labels)

	sc, err := baselines.SpectralCluster(g, p.K, 5)
	if err != nil {
		log.Fatal(err)
	}
	score("spectral+kmeans", sc.Labels)

	lp, err := baselines.LabelPropagation(g, 100, 7)
	if err != nil {
		log.Fatal(err)
	}
	score("label propagation", lp.Labels)
}
