// Message-passing execution: every graph node is a logical process; the
// matching protocol runs as real propose/accept/exchange messages with word
// accounting, and the same run is repeated under failure injection (dropped
// matches and crashed nodes) to show graceful degradation.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/spectral"
)

func main() {
	p, err := gen.ClusteredRing(2, 150, 40, 1, rng.New(23))
	if err != nil {
		log.Fatal(err)
	}
	g := p.G
	st, err := spectral.Analyze(g, p.Truth, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	T := spectral.EstimateRoundsMatching(g.N(), st.LambdaK1, g.MaxDegree(), 1.5)
	params := core.Params{Beta: 0.5, Rounds: T, Seed: 9}
	fmt.Printf("graph %v, T = %d rounds\n", g, T)

	run := func(name string, opt core.DistOptions) {
		res, err := core.ClusterDistributed(g, params, opt)
		if err != nil {
			log.Fatal(err)
		}
		mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s misclassified %6.2f%% | %7d msgs %8d words | %4d matches dropped\n",
			name, 100*mis, res.NetworkMessages, res.NetworkWords, res.DroppedMatches)
	}

	run("fault-free", core.DistOptions{Workers: 4})
	run("10% match drops", core.DistOptions{Workers: 4, DropProb: 0.1, FailSeed: 1})
	run("30% match drops", core.DistOptions{Workers: 4, DropProb: 0.3, FailSeed: 2})

	// Crash 5% of the nodes before the run starts.
	crashed := make([]bool, g.N())
	cr := rng.New(77)
	count := 0
	for v := range crashed {
		if cr.Bernoulli(0.05) {
			crashed[v] = true
			count++
		}
	}
	fmt.Printf("crashing %d nodes\n", count)
	run("5% crashed nodes", core.DistOptions{Workers: 4, Crashed: crashed})

	// The sequential engine reproduces the fault-free run exactly.
	seq, err := core.Cluster(g, params)
	if err != nil {
		log.Fatal(err)
	}
	dres, err := core.ClusterDistributed(g, params, core.DistOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for v := range seq.Labels {
		if seq.Labels[v] != dres.Labels[v] {
			same = false
			break
		}
	}
	fmt.Printf("sequential == distributed (fault-free): %v\n", same)
}
