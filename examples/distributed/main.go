// Message-passing execution: every graph node is a logical process; the
// matching protocol runs as real propose/accept/exchange messages with word
// accounting, and the same run is repeated under substrate fault injection
// (dropped and delayed accept datagrams, crashed nodes) to show graceful
// degradation. A final section runs the asynchronous push-sum gossip mode
// on the same seeds, aligning its firing clock with the synchronous run's
// averaging-event budget.
//
// Every scenario accepts -transport: "inprocess" (default), the loopback
// "ring", or "socket[:machines]", which runs each barrier's traffic through
// real worker OS processes spawned from this binary — all three produce
// bit-identical tables, which the final sequential-equality check confirms
// on whichever transport was selected. -parallel additionally executes the
// asynchronous gossip's firing schedule with the independent-set batch
// scheduler (non-adjacent firings run concurrently, effects commit in
// serial order), and the closing check confirms the parallel run reproduces
// the serial async labels exactly. -state-backend picks the sparse or dense
// node-state kernel (or "auto"); being bit-identical, it never changes a
// line of the output. -trace and -metrics attach the internal/obs layer to
// every scenario and dump a Chrome trace_event JSON / Prometheus text file
// covering the whole session; observation never changes a line either.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/spectral"
	"repro/internal/wire"
)

func main() {
	wire.ServeIfWorker()
	transport := flag.String("transport", "inprocess",
		"delivery transport: inprocess, ring[:capacity], or socket[:machines]")
	parallel := flag.String("parallel", "auto",
		"workers for the async batch scheduler: a count, \"auto\" (GOMAXPROCS), or \"off\"")
	stateBackend := flag.String("state-backend", "auto",
		"engine state representation: auto, sparse, or dense (bit-identical output)")
	partition := flag.String("partition", "count",
		"node split across workers: count, degree, or adaptive (bit-identical output)")
	trace := flag.String("trace", "", "write a Chrome trace_event JSON file covering every scenario")
	metricsOut := flag.String("metrics", "", "write a Prometheus text dump of per-round metric snapshots")
	flag.Parse()
	spec, err := core.ParseTransportSpec(*transport)
	if err != nil {
		log.Fatal(err)
	}
	workers, err := sched.ParseWorkers(*parallel)
	if err != nil {
		log.Fatal(err)
	}
	pspec, err := core.ParsePartitionSpec(*partition)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transport: %s, async parallel workers: %d, partition: %s\n", *transport, workers, pspec)
	var ob *obs.Observer
	if *trace != "" || *metricsOut != "" {
		ob = obs.NewObserver(obs.Options{Trace: *trace != ""})
	}

	p, err := gen.ClusteredRing(2, 150, 40, 1, rng.New(23))
	if err != nil {
		log.Fatal(err)
	}
	g := p.G
	st, err := spectral.Analyze(g, p.Truth, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	T := spectral.EstimateRoundsMatching(g.N(), st.LambdaK1, g.MaxDegree(), 1.5)
	params := core.Params{Beta: 0.5, Rounds: T, Seed: 9, StateBackend: *stateBackend}
	fmt.Printf("graph %v, T = %d rounds\n", g, T)

	report := func(name string, res *core.DistResult) {
		mis, err := metrics.MisclassificationRate(p.Truth, res.Labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s misclassified %6.2f%% | %7d msgs %8d words | %4d matches dropped %5d msgs lost\n",
			name, 100*mis, res.NetworkMessages, res.NetworkWords, res.DroppedMatches, res.DroppedMessages)
	}
	run := func(name string, opt core.DistOptions) {
		opt.Transport = spec
		opt.Partition = pspec
		opt.Obs = ob
		res, err := core.ClusterDistributed(g, params, opt)
		if err != nil {
			log.Fatal(err)
		}
		report(name, res)
	}

	run("fault-free", core.DistOptions{Workers: 4})
	run("10% match drops", core.DistOptions{Workers: 4, DropProb: 0.1, FailSeed: 1})
	run("30% match drops", core.DistOptions{Workers: 4, DropProb: 0.3, FailSeed: 2})
	run("30% delays (≤2 phases)", core.DistOptions{Workers: 4, DelayProb: 0.3, MaxDelay: 2, FailSeed: 3})

	// Crash 5% of the nodes before the run starts.
	crashed := make([]bool, g.N())
	cr := rng.New(77)
	count := 0
	for v := range crashed {
		if cr.Bernoulli(0.05) {
			crashed[v] = true
			count++
		}
	}
	fmt.Printf("crashing %d nodes\n", count)
	run("5% crashed nodes", core.DistOptions{Workers: 4, Crashed: crashed})

	// The sequential engine reproduces the fault-free run exactly.
	seq, err := core.Cluster(g, params)
	if err != nil {
		log.Fatal(err)
	}
	dres, err := core.ClusterDistributed(g, params, core.DistOptions{Workers: 4, Transport: spec, Partition: pspec})
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for v := range seq.Labels {
		if seq.Labels[v] != dres.Labels[v] {
			same = false
			break
		}
	}
	fmt.Printf("sequential == distributed (fault-free, transport=%s): %v\n", *transport, same)

	// Asynchronous push-sum gossip on real messages: same seeding and
	// query, randomized single-node firings, two firings per synchronous
	// averaging event.
	async, err := core.ClusterAsyncGossip(g, params, core.AsyncOptions{
		Ticks:     2 * dres.Stats.Matches,
		ClockSeed: 31,
		Transport: spec,
		Partition: pspec,
		Obs:       ob,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("async gossip (equal budget)", async)

	// The same async run under the independent-set batch scheduler:
	// non-adjacent firings execute concurrently, effects commit in serial
	// schedule order, and the labels must come out identical.
	par, err := core.ClusterAsyncGossip(g, params, core.AsyncOptions{
		Ticks:     2 * dres.Stats.Matches,
		ClockSeed: 31,
		Transport: spec,
		Parallel:  workers,
		Partition: pspec,
		Obs:       ob,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("async gossip (parallel=%d)", workers), par)
	same = true
	for v := range async.Labels {
		if async.Labels[v] != par.Labels[v] {
			same = false
			break
		}
	}
	fmt.Printf("serial async == parallel async (workers=%d): %v\n", workers, same)

	// Degree-aware partitioning on a hub-heavy graph: preferential
	// attachment concentrates its hubs at low node IDs, so the count split
	// hands shard 0 most of the edge work. The degree split balances the
	// same run's per-shard cost, and — partitioning being load placement
	// only — the labels come out bit-identical.
	hub, err := gen.PreferentialAttachment(1200, 4, rng.New(41))
	if err != nil {
		log.Fatal(err)
	}
	hubParams := core.Params{Beta: 0.25, Rounds: 24, Seed: 9, StateBackend: *stateBackend}
	fmt.Printf("hub-heavy graph %v (preferential attachment)\n", hub)
	// Judge both splits by the same yardstick — the degree cost each shard
	// ends up owning — so the count row shows the hub pile-up directly.
	degCosts := graph.DegreeCosts(hub)
	var hubLabels [][]int
	for _, mode := range []string{core.PartitionCount, core.PartitionDegree} {
		res, err := core.ClusterDistributed(hub, hubParams, core.DistOptions{
			Workers:   8,
			Transport: spec,
			Partition: core.PartitionSpec{Mode: mode},
			Obs:       ob,
		})
		if err != nil {
			log.Fatal(err)
		}
		hubLabels = append(hubLabels, res.Labels)
		var max, total int64
		b := res.PartitionBounds
		for s := 0; s+1 < len(b); s++ {
			var c int64
			for v := b[s]; v < b[s+1]; v++ {
				c += degCosts[v]
			}
			total += c
			if c > max {
				max = c
			}
		}
		mean := float64(total) / float64(len(b)-1)
		fmt.Printf("partition=%-7s degree cost max=%6d mean=%8.1f imbalance=%.2f\n",
			mode, max, mean, float64(max)/mean)
	}
	same = true
	for v := range hubLabels[0] {
		if hubLabels[0][v] != hubLabels[1][v] {
			same = false
			break
		}
	}
	fmt.Printf("count labels == degree labels (workers=8): %v\n", same)

	if ob != nil {
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				log.Fatal(err)
			}
			if err := export.WriteChromeTrace(f, ob.Events()); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace: %d events -> %s\n", len(ob.Events()), *trace)
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := export.WriteMetrics(f, ob); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("metrics: %d snapshots -> %s\n", len(ob.Snapshots()), *metricsOut)
		}
	}
}
