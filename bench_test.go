// Benchmarks: one target per evaluation table/figure (regenerating it at a
// reduced scale through the same code path the experiments CLI uses), plus
// micro-benchmarks for the hot kernels (matching generation, state merging,
// engine rounds, eigensolver, assignment).
//
// Run everything:    go test -bench=. -benchmem
// One experiment:    go test -bench=BenchmarkT1 -benchtime=1x
package repro

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/graph/gen"
	"repro/internal/linalg"
	"repro/internal/loadbalance"
	"repro/internal/matching"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/spectral"
	"repro/internal/wire"
)

// TestMain lets the socket-transport benchmarks re-exec this test binary as
// their worker processes (see wire.ServeIfWorker).
func TestMain(m *testing.M) {
	wire.ServeIfWorker()
	os.Exit(m.Run())
}

// benchExperiment runs one experiment end to end at a reduced scale.
func benchExperiment(b *testing.B, id string, scale float64) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := experiments.Config{Scale: scale, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1AccuracyVsGap(b *testing.B)     { benchExperiment(b, "T1", 0.2) }
func BenchmarkT2RoundScaling(b *testing.B)      { benchExperiment(b, "T2", 0.2) }
func BenchmarkT3MessageComplexity(b *testing.B) { benchExperiment(b, "T3", 0.1) }
func BenchmarkT4Baselines(b *testing.B)         { benchExperiment(b, "T4", 0.2) }
func BenchmarkT5Seeding(b *testing.B)           { benchExperiment(b, "T5", 0.2) }
func BenchmarkT6Runtime(b *testing.B)           { benchExperiment(b, "T6", 0.1) }
func BenchmarkF1LoadConvergence(b *testing.B)   { benchExperiment(b, "F1", 0.2) }
func BenchmarkF2AccuracyVsRounds(b *testing.B)  { benchExperiment(b, "F2", 0.2) }
func BenchmarkF3AccuracyVsK(b *testing.B)       { benchExperiment(b, "F3", 0.2) }
func BenchmarkF4AlmostRegular(b *testing.B)     { benchExperiment(b, "F4", 0.2) }
func BenchmarkF5MatchingLaw(b *testing.B)       { benchExperiment(b, "F5", 0.05) }
func BenchmarkF6Ablations(b *testing.B)         { benchExperiment(b, "F6", 0.2) }
func BenchmarkF7BalancingModels(b *testing.B)   { benchExperiment(b, "F7", 0.2) }
func BenchmarkF8EarlyBehaviour(b *testing.B)    { benchExperiment(b, "F8", 0.2) }
func BenchmarkF9AsyncGossip(b *testing.B)       { benchExperiment(b, "F9", 0.2) }
func BenchmarkF10LossAblation(b *testing.B)     { benchExperiment(b, "F10", 0.2) }

// --- micro-benchmarks -----------------------------------------------------

func benchRing(b *testing.B, k, size, dIn, c int) *gen.Planted {
	b.Helper()
	p, err := gen.ClusteredRing(k, size, dIn, c, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkMatchingGenerate(b *testing.B) {
	p := benchRing(b, 2, 500, 16, 1)
	rngs := matching.NodeRNGs(p.G.N(), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.Generate(p.G, p.G.MaxDegree(), rngs)
	}
}

func BenchmarkMergeStates(b *testing.B) {
	mk := func(seed uint64) core.State {
		r := rng.New(seed)
		s := make(core.State, 0, 16)
		id := uint64(0)
		for j := 0; j < 16; j++ {
			id += 1 + uint64(r.Intn(3))
			s = append(s, core.Entry{ID: id, Val: r.Float64()})
		}
		return s
	}
	a, c := mk(1), mk(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MergeStates(a, c)
	}
}

func BenchmarkEngineRound(b *testing.B) {
	p := benchRing(b, 3, 300, 20, 1)
	eng, err := core.NewEngine(p.G, core.Params{Beta: 1.0 / 3, Rounds: 1, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkEngineStepParallel sweeps the sequential engine's averaging
// round over the shared worker pool (matching generation and pair merges
// both partition; workers=1 is the single-threaded baseline) and over both
// state backends: "sparse" is the arena-backed sorted-entry path, "dense"
// the contiguous seed-weight-block kernel. The output is bit-identical
// across the whole sweep — the rows measure wall clock and allocations
// only; on this instance the dense rows should show near-zero allocs/op.
func BenchmarkEngineStepParallel(b *testing.B) {
	p := benchRing(b, 2, 25000, 16, 1)
	for _, backend := range []string{core.BackendSparse, core.BackendDense} {
		for _, workers := range dist.WorkerSweep() {
			b.Run(fmt.Sprintf("backend=%s/workers=%d", backend, workers), func(b *testing.B) {
				eng, err := core.NewEngine(p.G, core.Params{Beta: 0.5, Rounds: 1, Seed: 5, StateBackend: backend})
				if err != nil {
					b.Fatal(err)
				}
				if workers > 1 {
					pool := sched.NewPool(workers)
					defer pool.Close()
					eng.SetPool(pool)
				}
				// Warm the diffusion first: on a fresh engine nearly every
				// state is empty and merges are free, which would understate
				// the kernels' steady-state cost.
				eng.Run(20)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
				b.ReportMetric(float64(p.G.N())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
			})
		}
	}
}

// BenchmarkAsyncGossipParallel sweeps the asynchronous push-sum run over
// the independent-set batch scheduler (workers=1 is the serial RunAsync
// baseline). Every row replays the same bit-identical transcript; the
// spread is the price/payoff of speculation and serial-order commit.
func BenchmarkAsyncGossipParallel(b *testing.B) {
	p := benchRing(b, 2, 25000, 16, 1)
	params := core.Params{Beta: 0.5, Rounds: 20, Seed: 5}
	for _, backend := range []string{core.BackendSparse, core.BackendDense} {
		for _, workers := range dist.WorkerSweep() {
			params.StateBackend = backend
			b.Run(fmt.Sprintf("backend=%s/workers=%d", backend, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.ClusterAsyncGossip(p.G, params, core.AsyncOptions{
						ClockSeed: 9,
						Parallel:  workers,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkEngineQuery(b *testing.B) {
	p := benchRing(b, 3, 300, 20, 1)
	eng, err := core.NewEngine(p.G, core.Params{Beta: 1.0 / 3, Rounds: 1, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	eng.Run(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Query()
	}
}

// BenchmarkEngineQueryParallel sweeps the query's threshold scan over the
// shared worker pool on a large evolved instance (workers=1 is the
// single-threaded baseline; the result is bit-identical across the sweep).
func BenchmarkEngineQueryParallel(b *testing.B) {
	p := benchRing(b, 2, 25000, 16, 1)
	for _, backend := range []string{core.BackendSparse, core.BackendDense} {
		for _, workers := range dist.WorkerSweep() {
			b.Run(fmt.Sprintf("backend=%s/workers=%d", backend, workers), func(b *testing.B) {
				var pool *sched.Pool
				if workers > 1 {
					pool = sched.NewPool(workers)
					defer pool.Close()
				}
				eng, err := core.NewEngineWithPool(p.G, core.Params{Beta: 0.5, Rounds: 1, Seed: 5, StateBackend: backend}, pool)
				if err != nil {
					b.Fatal(err)
				}
				eng.Run(20)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Query()
				}
				b.ReportMetric(float64(p.G.N())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
			})
		}
	}
}

// BenchmarkAsyncGossipReliable prices the reliability layer at the F10
// operating point — 20% push loss with a bounded mailbox — against plain
// push-sum on the same clock: the reliable row pays ack and retransmission
// traffic (roughly 4x messages) for exact mass conservation.
func BenchmarkAsyncGossipReliable(b *testing.B) {
	p := benchRing(b, 2, 2500, 16, 1)
	params := core.Params{Beta: 0.5, Rounds: 20, Seed: 5}
	model := dist.LinkFaults{DropProb: 0.2, Seed: 31}
	for _, mode := range []struct {
		name     string
		reliable bool
	}{{"plain", false}, {"reliable", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ClusterAsyncGossip(p.G, params, core.AsyncOptions{
					ClockSeed:  9,
					Model:      model,
					MailboxCap: 12,
					Reliable:   mode.reliable,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClusterEndToEnd(b *testing.B) {
	p := benchRing(b, 2, 250, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Cluster(p.G, core.Params{Beta: 0.5, Rounds: 80, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterDistributed runs the message-passing engine end to end on
// a 50k-node two-cluster ring, sweeping the worker pool from the sequential
// baseline to everything the hardware has (workers=1 vs workers=GOMAXPROCS
// is the repo's parallel-speedup trajectory; see BENCH_dist.json).
func BenchmarkClusterDistributed(b *testing.B) {
	p := benchRing(b, 2, 25000, 16, 1)
	params := core.Params{Beta: 0.5, Rounds: 20, Seed: 5}
	for _, workers := range dist.WorkerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ClusterDistributed(p.G, params,
					core.DistOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterDistributedPartition prices the partition modes on the
// graph family that motivates them: a hub-heavy preferential-attachment
// graph at 8 workers. Besides wall clock, each row reports the split's
// max and mean shard cost (degree-weighted for degree/adaptive, node count
// for count) — max/mean is the barrier imbalance the weighted split fixes.
func BenchmarkClusterDistributedPartition(b *testing.B) {
	g, err := gen.PreferentialAttachment(50000, 4, rng.New(41))
	if err != nil {
		b.Fatal(err)
	}
	params := core.Params{Beta: 0.25, Rounds: 20, Seed: 5}
	for _, mode := range []string{core.PartitionCount, core.PartitionDegree, core.PartitionAdaptive} {
		b.Run("partition="+mode, func(b *testing.B) {
			var res *core.DistResult
			for i := 0; i < b.N; i++ {
				res, err = core.ClusterDistributed(g, params, core.DistOptions{
					Workers:   8,
					Partition: core.PartitionSpec{Mode: mode},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.ShardCostMax), "maxshardcost")
			b.ReportMetric(res.ShardCostMean, "meanshardcost")
			if res.ShardCostMean > 0 {
				b.ReportMetric(float64(res.ShardCostMax)/res.ShardCostMean, "imbalance")
			}
		})
	}
}

// BenchmarkClusterDistributedSocket is the end-to-end run over the real
// multi-process socket transport: same graph and params as the in-process
// sweep above (at the 2-machine × workers split), so the ratio between the
// two is the full price of serialising every barrier through worker OS
// processes. The transcript is bit-identical either way.
func BenchmarkClusterDistributedSocket(b *testing.B) {
	p := benchRing(b, 2, 25000, 16, 1)
	params := core.Params{Beta: 0.5, Rounds: 20, Seed: 5}
	// Spawn the worker processes once, outside the timed loop: the rows
	// should price steady-state barrier traffic, not process startup.
	cluster, err := wire.Spawn(2)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	spec := core.TransportSpec{Kind: "socket", Addrs: cluster.Addrs()}
	for _, workers := range dist.WorkerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ClusterDistributed(p.G, params, core.DistOptions{
					Workers:   workers,
					Transport: spec,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLanczosTopEigen(b *testing.B) {
	p := benchRing(b, 3, 300, 20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spectral.TopEigen(p.G, 4, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiffusionRound(b *testing.B) {
	p := benchRing(b, 2, 500, 16, 1)
	y0 := make([]float64, p.G.N())
	y0[0] = 1
	d, err := loadbalance.NewDiffusion(p.G, p.G.MaxDegree(), y0, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step()
	}
}

func BenchmarkHungarian(b *testing.B) {
	r := rng.New(11)
	const k = 64
	cost := make([][]float64, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		for j := range cost[i] {
			cost[i][j] = r.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := metrics.Hungarian(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	r := rng.New(13)
	points := make([][]float64, 600)
	for i := range points {
		points[i] = []float64{r.NormFloat64() + float64(i%3)*5, r.NormFloat64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.KMeans(points, 3, uint64(i)+1, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultilevelBisect(b *testing.B) {
	p := benchRing(b, 2, 400, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.MultilevelBisect(p.G, 0.5, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLabelPropagation(b *testing.B) {
	p := gen.Caveman(8, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.LabelPropagation(p.G, 50, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMisclassified(b *testing.B) {
	r := rng.New(17)
	n := 10000
	truth := make([]int, n)
	pred := make([]int, n)
	for i := range truth {
		truth[i] = r.Intn(8)
		pred[i] = r.Intn(8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.Misclassified(truth, pred); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGramSchmidt(b *testing.B) {
	r := rng.New(19)
	mk := func() [][]float64 {
		vecs := make([][]float64, 8)
		for i := range vecs {
			vecs[i] = make([]float64, 512)
			for j := range vecs[i] {
				vecs[i][j] = r.NormFloat64()
			}
		}
		return vecs
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		vecs := mk()
		b.StartTimer()
		linalg.GramSchmidt(vecs, 1e-10)
	}
}

func BenchmarkClusteredRingGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.ClusteredRing(3, 200, 16, 1, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSBMGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.SBMBalanced(3, 300, 20, 2, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
