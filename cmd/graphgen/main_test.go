package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func TestGenerateRing(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.txt")
	truth := filepath.Join(dir, "t.txt")
	if err := run("ring", 3, 30, 0, 8, 0, 1, 4, 1, out, truth); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 90 || !g.IsRegular() {
		t.Errorf("ring graph wrong: %v", g)
	}
	if _, err := os.Stat(truth); err != nil {
		t.Error("truth file missing")
	}
}

func TestGenerateFamilies(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		family  string
		k, size int
		n, din  int
	}{
		{"sbm", 2, 50, 0, 10},
		{"caveman", 3, 6, 0, 0},
		{"regular", 0, 0, 40, 4},
		{"barbell", 0, 10, 0, 0},
		{"pa", 0, 0, 60, 0},
		{"powerlaw", 3, 20, 0, 0},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.family+".txt")
		if err := run(c.family, c.k, c.size, c.n, c.din, 2, 1, 4, 1, out, ""); err != nil {
			t.Errorf("%s: %v", c.family, err)
			continue
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.ReadEdgeList(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: reading back: %v", c.family, err)
			continue
		}
		if g.N() == 0 {
			t.Errorf("%s: empty graph", c.family)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("unknown", 2, 10, 0, 4, 0, 1, 4, 1, filepath.Join(dir, "x"), ""); err == nil {
		t.Error("unknown family should fail")
	}
	// regular has no planted truth.
	if err := run("regular", 0, 0, 10, 3, 0, 1, 4, 1, filepath.Join(dir, "y"), filepath.Join(dir, "t")); err == nil {
		t.Error("truth for regular should fail")
	}
	// bad parameters propagate.
	if err := run("ring", 1, 10, 0, 4, 0, 1, 4, 1, filepath.Join(dir, "z"), ""); err == nil {
		t.Error("k=1 ring should fail")
	}
	// pa has no planted truth either.
	if err := run("pa", 0, 0, 20, 0, 0, 1, 4, 1, filepath.Join(dir, "p"), filepath.Join(dir, "pt")); err == nil {
		t.Error("truth for pa should fail")
	}
}
