// Command graphgen emits synthetic well-clustered graphs in edge-list format
// together with their planted ground-truth labels.
//
// Usage:
//
//	graphgen -family ring -k 4 -size 250 -din 60 -cross 1 -out graph.txt -truth truth.txt
//	graphgen -family sbm -k 3 -size 200 -din 20 -dout 2
//	graphgen -family caveman -k 6 -size 30
//	graphgen -family regular -n 1000 -din 8
//	graphgen -family barbell -size 50
//	graphgen -family pa -n 4000 -m 4
//	graphgen -family powerlaw -k 4 -size 500 -dout 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/rng"
)

func main() {
	family := flag.String("family", "ring", "ring | sbm | caveman | regular | barbell | pa | powerlaw")
	k := flag.Int("k", 2, "number of clusters (ring, sbm, caveman, powerlaw)")
	size := flag.Int("size", 100, "cluster size (ring, sbm, caveman, barbell, powerlaw)")
	n := flag.Int("n", 100, "node count (regular, pa)")
	din := flag.Int("din", 16, "internal degree (ring, regular) / expected internal degree (sbm)")
	dout := flag.Float64("dout", 2, "expected external degree (sbm, powerlaw)")
	cross := flag.Int("cross", 1, "cross matchings between adjacent clusters (ring)")
	m := flag.Int("m", 4, "edges per arriving node (pa)")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "-", "edge-list output ('-' = stdout)")
	truthFile := flag.String("truth", "", "optional ground-truth label output file")
	flag.Parse()

	if err := run(*family, *k, *size, *n, *din, *dout, *cross, *m, *seed, *out, *truthFile); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}

func run(family string, k, size, n, din int, dout float64, cross, m int, seed uint64, out, truthFile string) error {
	r := rng.New(seed)
	var g *graph.Graph
	var truth []int
	switch family {
	case "ring":
		p, err := gen.ClusteredRing(k, size, din, cross, r)
		if err != nil {
			return err
		}
		g, truth = p.G, p.Truth
	case "sbm":
		p, err := gen.SBMBalanced(k, size, float64(din), dout, r)
		if err != nil {
			return err
		}
		g, truth = p.G, p.Truth
	case "caveman":
		p := gen.Caveman(k, size)
		g, truth = p.G, p.Truth
	case "regular":
		rg, err := gen.RandomRegular(n, din, r)
		if err != nil {
			return err
		}
		g = rg
	case "barbell":
		p := gen.Barbell(size)
		g, truth = p.G, p.Truth
	case "pa":
		pg, err := gen.PreferentialAttachment(n, m, r)
		if err != nil {
			return err
		}
		g = pg
	case "powerlaw":
		p, err := gen.PowerLawCluster(k, size, 2.5, 2, float64(size)/4, dout, r)
		if err != nil {
			return err
		}
		g, truth = p.G, p.Truth
	default:
		return fmt.Errorf("unknown family %q", family)
	}
	fmt.Fprintf(os.Stderr, "generated %v\n", g)

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		return err
	}
	if truthFile != "" {
		if truth == nil {
			return fmt.Errorf("family %q has no planted truth", family)
		}
		f, err := os.Create(truthFile)
		if err != nil {
			return err
		}
		defer f.Close()
		return graph.WriteLabels(f, truth)
	}
	return nil
}
