// Command benchenv emits the host-environment block the BENCH_*.json
// baselines embed (see dist.HostEnv): Go toolchain, CPU model, logical CPU
// count, and effective GOMAXPROCS. Re-recording a baseline starts here —
//
//	go run ./cmd/benchenv
//
// — and pastes the object into the file's "environment" field (keeping the
// free-text "note"), so numbers from a 1-CPU shared container can never
// masquerade as a real worker-sweep speedup: num_cpu is in the record, and
// on a single-CPU host the block additionally carries "overhead_only": true
// so tooling can skip speedup interpretation without parsing the note.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/dist"
)

func main() {
	out, err := json.MarshalIndent(dist.CaptureHostEnv(), "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchenv: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
