// Command lintdet is the repo's determinism-contract vettool: it compiles
// the internal/analysis suite (mapiter, wallclock, rawgo, floataccum,
// payloadreg) into a binary that `go vet -vettool` can drive. Typical use:
//
//	go build -o bin/lintdet ./cmd/lintdet
//	go vet -vettool=$PWD/bin/lintdet ./...
//
// or, equivalently, the standalone spelling (lintdet re-execs go vet on
// itself):
//
//	go run ./cmd/lintdet ./...
//
// The binary implements the vet driver protocol that cmd/go speaks to a
// -vettool (the same protocol as x/tools' unitchecker, reimplemented here
// on the standard library because this module builds offline with no
// third-party dependencies):
//
//   - `lintdet -V=full` prints a version line whose content hash of the
//     executable keys cmd/go's result cache, so a rebuilt tool invalidates
//     stale vet results;
//   - `lintdet -flags` prints the supported analyzer flags as JSON;
//   - `lintdet <dir>/vet.cfg` analyzes one package described by the JSON
//     config: the tool parses the listed Go files, type-checks them against
//     the export data cmd/go already compiled for every import, runs the
//     analyzers, and exits 2 if any diagnostic survives the
//     //lintdet:allow filter.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	jsonOut := false
	var cfgs, rest []string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "-V":
			printVersion()
			return
		case arg == "-flags":
			printFlags()
			return
		case arg == "-json":
			jsonOut = true
		case strings.HasSuffix(arg, ".cfg"):
			cfgs = append(cfgs, arg)
		case strings.HasPrefix(arg, "-"):
			// Unknown analyzer flag (cmd/go validated it against -flags);
			// nothing else is tunable, ignore.
		default:
			rest = append(rest, arg)
		}
	}

	if len(cfgs) == 0 {
		// Standalone mode: `lintdet ./...` re-execs `go vet -vettool=self`.
		os.Exit(standalone(rest))
	}
	exit := 0
	for _, cfg := range cfgs {
		if code := checkOne(cfg, jsonOut); code > exit {
			exit = code
		}
	}
	os.Exit(exit)
}

// printVersion emits the version line cmd/go's toolID parser expects:
// field 2 must be "version", and embedding a content hash of the executable
// makes the whole line — which cmd/go uses as the cache key — change
// whenever the tool is rebuilt.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("lintdet version %x\n", h.Sum(nil)[:12])
}

func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{{Name: "json", Bool: true, Usage: "emit JSON diagnostics"}}
	out, _ := json.Marshal(flags)
	fmt.Println(string(out))
}

func standalone(pkgs []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintdet: %v\n", err)
		return 1
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, pkgs...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "lintdet: %v\n", err)
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg for a
// -vettool (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

func checkOne(cfgPath string, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintdet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "lintdet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Facts output: the suite needs no cross-package facts, but writing the
	// (empty) file lets cmd/go cache the result of dependency visits.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "lintdet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	diags, err := analyze(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "lintdet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	if jsonOut {
		printJSON(&cfg, diags)
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	return 2
}

func analyze(cfg *vetConfig) ([]analysis.Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewTypesInfo()
	tconf := types.Config{
		Importer:  &mappingImporter{imp: imp, importMap: cfg.ImportMap},
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, buildGOARCH()),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return analysis.RunPackage(fset, files, pkg, info, analysis.Analyzers())
}

// buildGOARCH is the architecture the package is being vetted for:
// cmd/go sets $GOARCH for tool subprocesses when cross-compiling.
func buildGOARCH() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// mappingImporter applies the vet config's source-path -> canonical-path
// ImportMap before delegating to the export-data importer.
type mappingImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (m *mappingImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *mappingImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if from, ok := m.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, 0)
	}
	return m.imp.Import(path)
}

func printJSON(cfg *vetConfig, diags []analysis.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    d.Pos.String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}
	data, _ := json.MarshalIndent(out, "", "\t")
	fmt.Println(string(data))
}
