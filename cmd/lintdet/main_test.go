package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLintdet compiles the vettool once per test process.
func buildLintdet(t *testing.T) string {
	t.Helper()
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "lintdet")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/lintdet")
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building lintdet: %v\n%s", err, out)
	}
	return bin
}

// writeModule materialises a throwaway module and returns its directory.
func writeModule(t *testing.T, modpath string, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module " + modpath + "\n\ngo 1.24\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runVet(t *testing.T, bin, dir string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("go vet: %v\n%s", err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

// TestVettoolEndToEnd drives the real `go vet -vettool` protocol: version
// handshake, -flags query, vet.cfg analysis, diagnostics and exit status.
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go command")
	}
	bin := buildLintdet(t)

	// The module path ends in _det, so its root package opts into the
	// deterministic set by the testdata naming convention.
	dirty := writeModule(t, "e2e_det", map[string]string{
		"det.go": `package e2edet

import "time"

func Stamp() time.Time { return time.Now() }

func Keys(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func Allowed() time.Time {
	//lintdet:allow wallclock(e2e fixture; suppression must survive the wire)
	return time.Now()
}
`,
	})
	out, code := runVet(t, bin, dirty)
	if code == 0 {
		t.Fatalf("go vet exited 0 on a package with findings:\n%s", out)
	}
	for _, want := range []string{"wall-clock read time.Now", "nondeterministic map iteration"} {
		if !strings.Contains(out, want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}
	// Exactly one time.Now diagnostic: the annotated one is suppressed.
	if got := strings.Count(out, "wall-clock read time.Now"); got != 1 {
		t.Errorf("got %d time.Now diagnostics, want 1 (annotation must suppress):\n%s", got, out)
	}

	clean := writeModule(t, "e2e_clean_det", map[string]string{
		"det.go": `package e2eclean

import "sort"

func Keys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
`,
	})
	if out, code := runVet(t, bin, clean); code != 0 {
		t.Errorf("go vet exited %d on a clean package:\n%s", code, out)
	}

	// Standalone spelling: `lintdet ./...` re-execs go vet on itself.
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dirty
	out2, err := cmd.CombinedOutput()
	if err == nil {
		t.Errorf("standalone lintdet exited 0 on a package with findings:\n%s", out2)
	}
	if !strings.Contains(string(out2), "nondeterministic map iteration") {
		t.Errorf("standalone output missing diagnostic:\n%s", out2)
	}
}
