// Command experiments regenerates the evaluation tables and figures defined
// in DESIGN.md (the paper is purely theoretical; each experiment validates
// one of its quantitative claims — see EXPERIMENTS.md for the recorded
// full-scale results).
//
// Usage:
//
//	experiments [-run T1,F2,... | -run all] [-scale 1.0] [-seed 1] [-out results/]
//	            [-transport inprocess|ring[:cap]|socket[:machines]] [-parallel N|auto]
//	            [-state-backend auto|sparse|dense] [-partition count|degree|adaptive]
//	            [-trace out.json] [-metrics out.prom]
//
// Experiments F9 and F10 run their executions as real messages on the dist
// runtime, so their tables include wire traffic (F10 additionally sweeps
// push loss against bounded-mailbox backpressure, comparing plain push-sum
// with the mass-conserving reliable variant); -transport selects the
// delivery transport for those runs (with "socket" the barriers cross real
// worker OS processes — the tables are bit-identical either way), and
// -parallel executes the asynchronous firing schedules with the
// independent-set batch scheduler on that many workers ("auto" =
// GOMAXPROCS; tables are again bit-identical, the scheduler replays the
// serial transcript). -state-backend selects the engines' node-state
// representation (dense packs each node's seed weights into one contiguous
// block); the backends are bit-identical too, so it only moves the wall
// clock.
//
// -trace and -metrics attach the internal/obs observability layer to the
// dist-runtime experiments (F9, F10) and write a Chrome trace_event JSON
// file and a Prometheus text snapshot dump after the whole sweep; the
// accumulated events and metrics cover every selected experiment that runs
// on the runtime. Observation never changes a table.
//
// Markdown is printed to stdout; with -out, per-experiment CSV and markdown
// files are also written to the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/sched"
	"repro/internal/wire"
)

// writeObsArtifacts flushes the sweep's accumulated observer state to the
// files the -trace/-metrics flags named.
func writeObsArtifacts(tracePath, metricsPath string, ob *obs.Observer) error {
	if ob == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := export.WriteChromeTrace(f, ob.Events()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", len(ob.Events()), tracePath)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := export.WriteMetrics(f, ob); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics: %d snapshots -> %s\n", len(ob.Snapshots()), metricsPath)
	}
	return nil
}

func main() {
	wire.ServeIfWorker()
	runFlag := flag.String("run", "all", "comma-separated experiment ids (T1..T6, F1..F10) or 'all'")
	scale := flag.Float64("scale", 1.0, "instance scale factor (1.0 = reference size)")
	seed := flag.Uint64("seed", 1, "master random seed")
	out := flag.String("out", "", "directory to write per-experiment .md and .csv files")
	transport := flag.String("transport", "inprocess",
		"dist-runtime delivery transport: inprocess, ring[:capacity], or socket[:machines]")
	parallel := flag.String("parallel", "0",
		"workers for the parallel async scheduler: a count, \"auto\" (GOMAXPROCS), or \"off\"")
	stateBackend := flag.String("state-backend", "auto",
		"engine state representation: auto, sparse, or dense (tables are bit-identical across backends)")
	partition := flag.String("partition", "count",
		"dist-runtime node split across workers: count, degree, or adaptive (tables are bit-identical across modes)")
	trace := flag.String("trace", "", "write a Chrome trace_event JSON file covering the dist-runtime experiments")
	metricsOut := flag.String("metrics", "", "write a Prometheus text dump of per-round metric snapshots")
	flag.Parse()

	spec, err := core.ParseTransportSpec(*transport)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	workers, err := sched.ParseWorkers(*parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	pspec, err := core.ParsePartitionSpec(*partition)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	var ob *obs.Observer
	if *trace != "" || *metricsOut != "" {
		ob = obs.NewObserver(obs.Options{Trace: *trace != ""})
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Transport: spec, Parallel: workers, StateBackend: *stateBackend, Partition: pspec, Obs: ob}
	var selected []experiments.Experiment
	if strings.EqualFold(*runFlag, "all") {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (known: %s)\n",
					id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	failed := 0
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(table.Markdown())
		fmt.Printf("_(%s generated in %.1fs at scale %.2f)_\n\n", e.ID, time.Since(start).Seconds(), cfg.Scale)
		if *out != "" {
			base := filepath.Join(*out, strings.ToLower(e.ID))
			if err := os.WriteFile(base+".md", []byte(table.Markdown()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", base+".md", err)
				failed++
			}
			if err := os.WriteFile(base+".csv", []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", base+".csv", err)
				failed++
			}
		}
	}
	if err := writeObsArtifacts(*trace, *metricsOut, ob); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		failed++
	}
	if failed > 0 {
		os.Exit(1)
	}
}
