// Command experiments regenerates the evaluation tables and figures defined
// in DESIGN.md (the paper is purely theoretical; each experiment validates
// one of its quantitative claims — see EXPERIMENTS.md for the recorded
// full-scale results).
//
// Usage:
//
//	experiments [-run T1,F2,... | -run all] [-scale 1.0] [-seed 1] [-out results/]
//	            [-transport inprocess|ring[:cap]|socket[:machines]] [-parallel N|auto]
//	            [-state-backend auto|sparse|dense]
//
// Experiments F9 and F10 run their executions as real messages on the dist
// runtime, so their tables include wire traffic (F10 additionally sweeps
// push loss against bounded-mailbox backpressure, comparing plain push-sum
// with the mass-conserving reliable variant); -transport selects the
// delivery transport for those runs (with "socket" the barriers cross real
// worker OS processes — the tables are bit-identical either way), and
// -parallel executes the asynchronous firing schedules with the
// independent-set batch scheduler on that many workers ("auto" =
// GOMAXPROCS; tables are again bit-identical, the scheduler replays the
// serial transcript). -state-backend selects the engines' node-state
// representation (dense packs each node's seed weights into one contiguous
// block); the backends are bit-identical too, so it only moves the wall
// clock.
//
// Markdown is printed to stdout; with -out, per-experiment CSV and markdown
// files are also written to the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/wire"
)

func main() {
	wire.ServeIfWorker()
	runFlag := flag.String("run", "all", "comma-separated experiment ids (T1..T6, F1..F10) or 'all'")
	scale := flag.Float64("scale", 1.0, "instance scale factor (1.0 = reference size)")
	seed := flag.Uint64("seed", 1, "master random seed")
	out := flag.String("out", "", "directory to write per-experiment .md and .csv files")
	transport := flag.String("transport", "inprocess",
		"dist-runtime delivery transport: inprocess, ring[:capacity], or socket[:machines]")
	parallel := flag.String("parallel", "0",
		"workers for the parallel async scheduler: a count, \"auto\" (GOMAXPROCS), or \"off\"")
	stateBackend := flag.String("state-backend", "auto",
		"engine state representation: auto, sparse, or dense (tables are bit-identical across backends)")
	flag.Parse()

	spec, err := core.ParseTransportSpec(*transport)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	workers, err := sched.ParseWorkers(*parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Transport: spec, Parallel: workers, StateBackend: *stateBackend}
	var selected []experiments.Experiment
	if strings.EqualFold(*runFlag, "all") {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (known: %s)\n",
					id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	failed := 0
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(table.Markdown())
		fmt.Printf("_(%s generated in %.1fs at scale %.2f)_\n\n", e.ID, time.Since(start).Seconds(), cfg.Scale)
		if *out != "" {
			base := filepath.Join(*out, strings.ToLower(e.ID))
			if err := os.WriteFile(base+".md", []byte(table.Markdown()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", base+".md", err)
				failed++
			}
			if err := os.WriteFile(base+".csv", []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", base+".csv", err)
				failed++
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
