package main

// The flight-recorder subcommands:
//
//	lbcluster record   — a clustering run with -record implied (and required)
//	lbcluster obs-diff — first-divergence bisection of two recordings
//	lbcluster obs-convert — recording → Chrome trace / Prometheus text /
//	                        fingerprint
//
// obs-diff is the forensics entry point: exit 0 means the recordings'
// deterministic frames are bit-identical, exit 1 names the first divergence
// (text or -json), exit 2 means a recording could not be read at all.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/record"
	"repro/internal/sched"
)

// runManifest assembles a recording's manifest from the run options: the
// Run section carries every knob that may change the observed transcript,
// the Env section what the determinism contract guarantees cannot (worker
// count, transport, state backend) plus host identification.
func runManifest(o runOpts, g *graph.Graph) record.Manifest {
	workload := "sequential"
	switch {
	case o.gossip && o.reliable:
		workload = "gossip-reliable"
	case o.gossip:
		workload = "gossip"
	case o.distributed:
		workload = "distributed"
	}
	host := dist.CaptureHostEnv()
	partition := o.partition
	if partition == "" {
		partition = "count"
	}
	return record.Manifest{
		Workload: workload,
		Run: []record.Field{
			record.FStr("in", o.in),
			record.FInt("n", int64(g.N())),
			record.FInt("m", int64(g.M())),
			record.FFloat("beta", o.beta),
			record.FInt("rounds", int64(o.rounds)),
			record.FInt("seed", int64(o.seed)),
			record.FFloat("threshold_scale", o.thresholdScale),
			record.FInt("mailbox_cap", int64(o.mailboxCap)),
			record.FFloat("drop_prob", o.dropProb),
		},
		Env: []record.Field{
			record.FInt("workers", int64(o.workers)),
			record.FStr("transport", o.transport),
			record.FStr("partition", partition),
			record.FStr("state_backend", o.stateBackend),
			record.FStr("go", host.Go),
			record.FStr("cpu", host.CPU),
			record.FInt("num_cpu", int64(host.NumCPU)),
		},
	}
}

// recordCmd is the record subcommand: the normal clustering run with the
// -record flag required (spelled -o here, since the recording is the
// point).
func recordCmd(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var o runOpts
	parallel := registerRunFlags(fs, &o)
	out := fs.String("o", "", "recording output file (required; shorthand for -record)")
	fs.Parse(args)
	if *out != "" {
		o.recordOut = *out
	}
	if o.recordOut == "" {
		return fmt.Errorf("-o (or -record) is required: a record run's product is the recording")
	}
	workers, err := sched.ParseWorkers(*parallel)
	if err != nil {
		return err
	}
	o.workers = workers
	return run(o)
}

// openRecording opens one recording file for streaming.
func openRecording(path string) (*record.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := record.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, f, nil
}

// obsDiffCmd bisects two recordings and returns the process exit code:
// 0 identical, 1 divergent, 2 unreadable input or usage error.
func obsDiffCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obs-diff", flag.ExitOnError)
	strict := fs.Bool("strict", false,
		"compare environment event categories (sched/wire) too; off, they are skipped and only tallied")
	window := fs.Int("window", 8, "common frames of context to keep before the divergence")
	asJSON := fs.Bool("json", false, "emit the report as JSON (machine-readable, for CI)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: lbcluster obs-diff [-strict] [-window N] [-json] a.lbrec b.lbrec")
		return 2
	}
	ra, fa, err := openRecording(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer fa.Close()
	rb, fb, err := openRecording(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer fb.Close()
	rep, err := record.Diff(ra, rb, record.DiffOptions{Window: *window, Strict: *strict})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		rep.WriteText(stdout)
	}
	if rep.Identical {
		return 0
	}
	return 1
}

// obsConvertCmd converts a recording to one of the export formats, so a
// recorded run yields the same artifacts the -trace/-metrics flags write
// live.
func obsConvertCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("obs-convert", flag.ExitOnError)
	format := fs.String("format", "chrome",
		"output format: chrome (trace_event JSON), prom (Prometheus text, final snapshot + per-round log), or fp (golden fingerprint)")
	out := fs.String("o", "-", "output file ('-' = stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: lbcluster obs-convert [-format chrome|prom|fp] [-o out] run.lbrec")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	var buf bytes.Buffer
	switch *format {
	case "chrome":
		_, frames, err := record.ReadAll(f)
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(0), err)
		}
		events := make([]obs.Event, 0, len(frames))
		for _, fr := range frames {
			if fr.Event != nil {
				events = append(events, *fr.Event)
			}
		}
		if err := export.WriteChromeTrace(&buf, events); err != nil {
			return err
		}
	case "prom":
		_, frames, err := record.ReadAll(f)
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(0), err)
		}
		var snaps []obs.Snapshot
		for _, fr := range frames {
			if fr.Snap != nil {
				snaps = append(snaps, *fr.Snap)
			}
		}
		var b []byte
		if len(snaps) > 0 {
			b = export.AppendPromSnapshot(b, snaps[len(snaps)-1])
			b = append(b, "# per-round snapshots (canonical fingerprint encoding)\n"...)
			text := strings.TrimSuffix(obs.SnapshotsText(snaps), "\n")
			for _, line := range strings.Split(text, "\n") {
				b = append(b, "# "...)
				b = append(b, line...)
				b = append(b, '\n')
			}
		}
		buf.Write(b)
	case "fp":
		r, err := record.NewReader(f)
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(0), err)
		}
		fp, err := record.FingerprintReader(r)
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(0), err)
		}
		buf.Write(fp.AppendText(nil))
	default:
		return fmt.Errorf("unknown -format %q (chrome, prom, or fp)", *format)
	}

	if *out == "-" {
		_, err := stdout.Write(buf.Bytes())
		return err
	}
	return os.WriteFile(*out, buf.Bytes(), 0o644)
}
