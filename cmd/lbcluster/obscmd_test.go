package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/record"
)

// recordRun produces a recording file via the run path (-record flag) and
// returns its path.
func recordRun(t *testing.T, dir, name, in string, mutate func(o *runOpts)) string {
	t.Helper()
	path := filepath.Join(dir, name)
	o := runOpts{
		in: in, out: filepath.Join(dir, name+".labels"),
		beta: 0.5, rounds: 10, seed: 1, thresholdScale: 1,
		distributed: true, transport: "inprocess", workers: 1,
		recordOut: path,
	}
	if mutate != nil {
		mutate(&o)
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRecordAndObsDiffCLI is the CLI half of the acceptance criterion: the
// same workload recorded at workers 1 vs 8, over inprocess and ring
// transports, bisects bit-identical (exit 0); a perturbed recording exits 1
// and the report names the divergent event with both-side values.
func TestRecordAndObsDiffCLI(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	ref := recordRun(t, dir, "w1.lbrec", in, nil)
	for _, tc := range []struct {
		name   string
		mutate func(o *runOpts)
	}{
		{"w8.lbrec", func(o *runOpts) { o.workers = 8 }},
		{"w1ring.lbrec", func(o *runOpts) { o.transport = "ring" }},
		{"w8ring.lbrec", func(o *runOpts) { o.workers = 8; o.transport = "ring" }},
	} {
		other := recordRun(t, dir, tc.name, in, tc.mutate)
		var out, errw bytes.Buffer
		if code := obsDiffCmd([]string{ref, other}, &out, &errw); code != 0 {
			t.Fatalf("obs-diff %s: exit %d, output:\n%s%s", tc.name, code, out.String(), errw.String())
		}
		if !strings.Contains(out.String(), "identical") {
			t.Errorf("obs-diff %s output does not say identical: %q", tc.name, out.String())
		}
	}

	// Perturb one deterministic event argument and re-encode.
	m, frames, err := func() (record.Manifest, []record.Frame, error) {
		f, err := os.Open(ref)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		return record.ReadAll(f)
	}()
	if err != nil {
		t.Fatal(err)
	}
	mutated := false
	for _, fr := range frames {
		e := fr.Event
		if e == nil || obs.IsEnvCat(e.Cat) || len(e.Args) == 0 || e.Args[0].IsFloat {
			continue
		}
		if fr.Index >= 10 {
			e.Args[0].Int += 7
			mutated = true
			break
		}
	}
	if !mutated {
		t.Fatal("no deterministic event with an int arg to perturb")
	}
	perturbed := filepath.Join(dir, "perturbed.lbrec")
	pf, err := os.Create(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	w, err := record.NewWriter(pf, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frames {
		if fr.Event != nil {
			w.Emit(*fr.Event)
		} else {
			w.Snap(*fr.Snap)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errw bytes.Buffer
	if code := obsDiffCmd([]string{"-json", ref, perturbed}, &out, &errw); code != 1 {
		t.Fatalf("obs-diff on perturbed recording: exit %d, want 1 (stderr: %s)", code, errw.String())
	}
	var rep record.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output: %v\n%s", err, out.String())
	}
	if rep.Identical || rep.Kind != "event" {
		t.Fatalf("report identical=%v kind=%q, want an event divergence", rep.Identical, rep.Kind)
	}
	if rep.A == nil || rep.B == nil || rep.A.Event == nil || rep.B.Event == nil {
		t.Fatal("JSON report missing both-side frames")
	}
	if rep.B.Event.Args[0].Int != rep.A.Event.Args[0].Int+7 {
		t.Errorf("both-side values %d vs %d, want off by seven",
			rep.A.Event.Args[0].Int, rep.B.Event.Args[0].Int)
	}
	if rep.Detail == "" || !strings.Contains(rep.Detail, "tick") {
		t.Errorf("detail %q does not carry the logical tick", rep.Detail)
	}

	// Unreadable input is exit 2, not a divergence.
	if code := obsDiffCmd([]string{ref, filepath.Join(dir, "nope.lbrec")}, &out, &errw); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	garbled := filepath.Join(dir, "garbled.lbrec")
	if err := os.WriteFile(garbled, []byte("not a recording"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := obsDiffCmd([]string{ref, garbled}, &out, &errw); code != 2 {
		t.Errorf("garbled file: exit %d, want 2", code)
	}
}

// TestRecordCmdFlags: the record subcommand requires -o and produces a
// readable recording with the run manifest.
func TestRecordCmdFlags(t *testing.T) {
	if err := recordCmd([]string{"-in", "x"}); err == nil {
		t.Error("record without -o should fail")
	}
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	out := filepath.Join(dir, "run.lbrec")
	if err := recordCmd([]string{"-in", in, "-o", out,
		"-out", filepath.Join(dir, "labels.txt"),
		"-beta", "0.5", "-rounds", "10", "-gossip", "-reliable"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := record.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Manifest()
	if m.Workload != "gossip-reliable" {
		t.Errorf("manifest workload %q, want gossip-reliable", m.Workload)
	}
	fp, err := record.FingerprintReader(r)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Events == 0 {
		t.Error("recording has no deterministic events")
	}
}

// TestObsConvertCLI: a recording converts to Chrome trace JSON, Prometheus
// text, and a parseable fingerprint.
func TestObsConvertCLI(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	rec := recordRun(t, dir, "conv.lbrec", in, nil)

	var out bytes.Buffer
	if err := obsConvertCmd([]string{"-format", "chrome", rec}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome output has no events")
	}

	out.Reset()
	if err := obsConvertCmd([]string{"-format", "prom", rec}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# TYPE") || !strings.Contains(out.String(), "round=") {
		t.Errorf("prom output missing exposition or snapshot log:\n%s", out.String())
	}

	fpPath := filepath.Join(dir, "conv.fp")
	if err := obsConvertCmd([]string{"-format", "fp", "-o", fpPath, rec}, &out); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(fpPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := record.ParseFingerprint(bytes.NewReader(blob)); err != nil {
		t.Errorf("fp output does not parse: %v", err)
	}

	if err := obsConvertCmd([]string{"-format", "nope", rec}, &out); err == nil {
		t.Error("unknown format should fail")
	}
}
