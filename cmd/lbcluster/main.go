// Command lbcluster clusters a graph with the load-balancing algorithm of
// Sun & Zanetti (SPAA'17).
//
// Usage:
//
//	lbcluster -in graph.txt -beta 0.25 [-rounds 0 -k 4] [-seed 1] [-out labels.txt]
//	lbcluster serve -listen unix:/tmp/w0.sock
//
// The input is an edge list with an "n m" header (see internal/graph).
// With -rounds 0 the round budget T = Θ(log n/(1−λ_{k+1})) is estimated
// from the spectrum, which requires -k. Labels are written one per line in
// node order; run statistics go to stderr.
//
// With -distributed the run executes on the message-passing engine, and
// -transport selects its delivery transport: "inprocess" (default), the
// loopback "ring", or "socket[:machines]" for real multi-process execution.
// "socket" spawns its own worker processes; to place workers by hand (other
// cores, other hosts via TCP), start daemons with `lbcluster serve` and
// list them in -transport-addrs.
//
// -parallel sizes the worker pool the hot paths partition over: the
// sequential engine's matching generation and pair merges, or the
// distributed engine's phase workers. "auto" (the default) means GOMAXPROCS,
// "off" forces single-threaded execution. Labels are bit-identical for every
// setting — parallelism changes the wall clock, never the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/spectral"
	"repro/internal/wire"
)

func main() {
	wire.ServeIfWorker()
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := serve(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "lbcluster serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	in := flag.String("in", "-", "input edge-list file ('-' = stdin)")
	out := flag.String("out", "-", "output label file ('-' = stdout)")
	beta := flag.Float64("beta", 0.1, "lower bound on the minimum cluster size fraction")
	rounds := flag.Int("rounds", 0, "averaging rounds T (0 = estimate from the spectral gap, needs -k)")
	k := flag.Int("k", 0, "number of clusters (only used to estimate T when -rounds 0)")
	seed := flag.Uint64("seed", 1, "random seed")
	thresholdScale := flag.Float64("threshold-scale", 1, "multiplier on the query threshold 1/(sqrt(2β)n)")
	distributed := flag.Bool("distributed", false, "run on the message-passing engine and report network traffic")
	transport := flag.String("transport", "inprocess",
		"delivery transport for -distributed: inprocess, ring[:capacity], or socket[:machines]")
	transportAddrs := flag.String("transport-addrs", "",
		"comma-separated `lbcluster serve` daemon addresses for -transport socket (overrides spawning)")
	parallel := flag.String("parallel", "auto",
		"worker pool size for the hot paths: a count, \"auto\" (GOMAXPROCS), or \"off\"")
	flag.Parse()

	workers, err := sched.ParseWorkers(*parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbcluster: %v\n", err)
		os.Exit(2)
	}
	if err := run(*in, *out, *beta, *rounds, *k, *seed, *thresholdScale, *distributed,
		*transport, *transportAddrs, workers); err != nil {
		fmt.Fprintf(os.Stderr, "lbcluster: %v\n", err)
		os.Exit(1)
	}
}

// serve runs the worker daemon mode: a process other coordinators dial as a
// machine shard of their socket transport.
func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "", "wire address to listen on (unix:/path/to.sock or tcp:host:port)")
	fs.Parse(args)
	if *listen == "" {
		return fmt.Errorf("-listen is required")
	}
	ln, err := wire.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving wire payloads [%s] on %s\n",
		strings.Join(wire.Payloads(), " "), *listen)
	return wire.Serve(ln)
}

func run(in, out string, beta float64, rounds, k int, seed uint64, thresholdScale float64,
	distributed bool, transport, transportAddrs string, workers int) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %v\n", g)

	if rounds == 0 {
		if k < 1 {
			return fmt.Errorf("-rounds 0 requires -k to estimate the budget")
		}
		vals, _, err := spectral.TopEigen(g, k+1, seed)
		if err != nil {
			return fmt.Errorf("estimating rounds: %w", err)
		}
		rounds = spectral.EstimateRoundsMatching(g.N(), vals[k], g.MaxDegree(), 1.5)
		fmt.Fprintf(os.Stderr, "estimated T = %d (lambda_{k+1} = %.4f)\n", rounds, vals[k])
	}
	params := core.Params{
		Beta:           beta,
		Rounds:         rounds,
		Seed:           seed,
		ThresholdScale: thresholdScale,
	}
	var labels []int
	if distributed {
		spec, err := core.ParseTransportSpec(transport)
		if err != nil {
			return err
		}
		if transportAddrs != "" {
			spec.Addrs = strings.Split(transportAddrs, ",")
		}
		// The phase pool needs at least one worker; -parallel off degrades
		// to a single-worker (still deterministic) network.
		if workers < 1 {
			workers = 1
		}
		res, err := core.ClusterDistributed(g, params, core.DistOptions{Workers: workers, Transport: spec})
		if err != nil {
			return err
		}
		labels = res.Labels
		fmt.Fprintf(os.Stderr, "seeds=%d labels=%d rounds=%d network: %d messages, %d words\n",
			len(res.Seeds), res.NumLabels, res.Stats.Rounds, res.NetworkMessages, res.NetworkWords)
	} else {
		res, err := core.ClusterParallel(g, params, workers)
		if err != nil {
			return err
		}
		labels = res.Labels
		fmt.Fprintf(os.Stderr, "seeds=%d labels=%d rounds=%d matches=%d words=%d (threshold %.3g)\n",
			len(res.Seeds), res.NumLabels, res.Stats.Rounds, res.Stats.Matches,
			res.Stats.TotalWords(), res.Threshold)
	}
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return graph.WriteLabels(w, labels)
}
