// Command lbcluster clusters a graph with the load-balancing algorithm of
// Sun & Zanetti (SPAA'17).
//
// Usage:
//
//	lbcluster -in graph.txt -beta 0.25 [-rounds 0 -k 4] [-seed 1] [-out labels.txt]
//
// The input is an edge list with an "n m" header (see internal/graph).
// With -rounds 0 the round budget T = Θ(log n/(1−λ_{k+1})) is estimated
// from the spectrum, which requires -k. Labels are written one per line in
// node order; run statistics go to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/spectral"
)

func main() {
	in := flag.String("in", "-", "input edge-list file ('-' = stdin)")
	out := flag.String("out", "-", "output label file ('-' = stdout)")
	beta := flag.Float64("beta", 0.1, "lower bound on the minimum cluster size fraction")
	rounds := flag.Int("rounds", 0, "averaging rounds T (0 = estimate from the spectral gap, needs -k)")
	k := flag.Int("k", 0, "number of clusters (only used to estimate T when -rounds 0)")
	seed := flag.Uint64("seed", 1, "random seed")
	thresholdScale := flag.Float64("threshold-scale", 1, "multiplier on the query threshold 1/(sqrt(2β)n)")
	distributed := flag.Bool("distributed", false, "run on the message-passing engine and report network traffic")
	flag.Parse()

	if err := run(*in, *out, *beta, *rounds, *k, *seed, *thresholdScale, *distributed); err != nil {
		fmt.Fprintf(os.Stderr, "lbcluster: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out string, beta float64, rounds, k int, seed uint64, thresholdScale float64, distributed bool) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %v\n", g)

	if rounds == 0 {
		if k < 1 {
			return fmt.Errorf("-rounds 0 requires -k to estimate the budget")
		}
		vals, _, err := spectral.TopEigen(g, k+1, seed)
		if err != nil {
			return fmt.Errorf("estimating rounds: %w", err)
		}
		rounds = spectral.EstimateRoundsMatching(g.N(), vals[k], g.MaxDegree(), 1.5)
		fmt.Fprintf(os.Stderr, "estimated T = %d (lambda_{k+1} = %.4f)\n", rounds, vals[k])
	}
	params := core.Params{
		Beta:           beta,
		Rounds:         rounds,
		Seed:           seed,
		ThresholdScale: thresholdScale,
	}
	var labels []int
	if distributed {
		res, err := core.ClusterDistributed(g, params, core.DistOptions{})
		if err != nil {
			return err
		}
		labels = res.Labels
		fmt.Fprintf(os.Stderr, "seeds=%d labels=%d rounds=%d network: %d messages, %d words\n",
			len(res.Seeds), res.NumLabels, res.Stats.Rounds, res.NetworkMessages, res.NetworkWords)
	} else {
		res, err := core.Cluster(g, params)
		if err != nil {
			return err
		}
		labels = res.Labels
		fmt.Fprintf(os.Stderr, "seeds=%d labels=%d rounds=%d matches=%d words=%d (threshold %.3g)\n",
			len(res.Seeds), res.NumLabels, res.Stats.Rounds, res.Stats.Matches,
			res.Stats.TotalWords(), res.Threshold)
	}
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return graph.WriteLabels(w, labels)
}
