// Command lbcluster clusters a graph with the load-balancing algorithm of
// Sun & Zanetti (SPAA'17).
//
// Usage:
//
//	lbcluster -in graph.txt -beta 0.25 [-rounds 0 -k 4] [-seed 1] [-out labels.txt]
//	lbcluster serve -listen unix:/tmp/w0.sock
//	lbcluster record -in graph.txt -beta 0.25 -o run.lbrec [run flags]
//	lbcluster obs-diff [-strict] [-window N] [-json] a.lbrec b.lbrec
//	lbcluster obs-convert [-format chrome|prom|fp] [-o out] run.lbrec
//
// The input is an edge list with an "n m" header (see internal/graph).
// With -rounds 0 the round budget T = Θ(log n/(1−λ_{k+1})) is estimated
// from the spectrum, which requires -k. Labels are written one per line in
// node order; run statistics go to stderr.
//
// With -distributed the run executes on the message-passing engine, and
// -transport selects its delivery transport: "inprocess" (default), the
// loopback "ring", or "socket[:machines]" for real multi-process execution.
// "socket" spawns its own worker processes; to place workers by hand (other
// cores, other hosts via TCP), start daemons with `lbcluster serve` and
// list them in -transport-addrs. With -gossip the run instead executes as
// asynchronous push-sum gossip on a randomized firing clock (the same
// engine as experiment F10); -reliable adds the retransmit-on-timeout layer
// that conserves push mass exactly under loss and backpressure.
//
// -mailbox-cap bounds every node's mailbox (deterministic reject-newest
// backpressure) and -drop-prob injects link-level push loss; both apply to
// the -distributed and -gossip engines.
//
// -partition selects how the node range splits across workers: "count"
// (default, equal node counts), "degree" (cost-weighted by degree, so
// hub-heavy graphs balance edge work instead of node counts), or
// "adaptive" (starts from degree and re-splits between rounds along the
// emerging cluster labels). The split is pure environment — labels,
// transcripts and deterministic metrics are bit-identical across every
// mode and worker count; only the load placement changes.
//
// -parallel sizes the worker pool the hot paths partition over: the
// sequential engine's seeding/matching/merges/query, the distributed
// engine's phase workers, or the gossip engine's batch scheduler. "auto"
// (the default) means GOMAXPROCS, "off" forces single-threaded execution.
// Labels are bit-identical for every setting — parallelism changes the wall
// clock, never the run.
//
// -state-backend selects the node-state representation: "sparse" (sorted
// ID/value entries), "dense" (one contiguous seed-weight block per node —
// the fast kernel when the seed set is small), or "auto" (default; dense
// whenever the instance fits the dense heuristic). The backends are
// bit-identical, so the flag changes throughput, never the labels.
//
// -trace FILE records the run's logical-clock event trace (phase and round
// spans, batch commits) as Chrome trace_event JSON — open it in
// chrome://tracing or Perfetto. -metrics FILE writes the deterministic
// per-round metric snapshots and final registry values in Prometheus text
// form. Both work with every engine; observation never changes the run (the
// deterministic metrics are bit-identical across -parallel and -transport).
//
// -record FILE (or the `record` subcommand, whose -o spells the same thing)
// writes the run as a persistent flight recording: the run manifest plus
// every event and per-round snapshot as streaming binary frames (see
// internal/obs/record). `obs-diff` bisects two recordings to the first
// divergent frame — exit 0 identical, 1 divergent (report on stdout, -json
// for machines), 2 unreadable — and `obs-convert` replays a recording
// through the live exporters (chrome, prom) or condenses it to a golden
// fingerprint (fp).
//
// `lbcluster serve -listen ... [-http addr]` additionally exposes live
// introspection when -http is given: /debug/obs (JSON overview with the
// daemon's wire relay tallies), /debug/obs/metrics, and /debug/pprof/.
// serve's -trace N keeps the last N wire events in a bounded ring;
// /debug/obs/trace streams the ring as Chrome trace JSON.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/record"
	"repro/internal/sched"
	"repro/internal/spectral"
	"repro/internal/wire"
)

func main() {
	wire.ServeIfWorker()
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			if err := serve(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "lbcluster serve: %v\n", err)
				os.Exit(1)
			}
			return
		case "record":
			if err := recordCmd(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "lbcluster record: %v\n", err)
				os.Exit(1)
			}
			return
		case "obs-diff":
			os.Exit(obsDiffCmd(os.Args[2:], os.Stdout, os.Stderr))
		case "obs-convert":
			if err := obsConvertCmd(os.Args[2:], os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "lbcluster obs-convert: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	var o runOpts
	parallel := registerRunFlags(flag.CommandLine, &o)
	flag.Parse()

	workers, err := sched.ParseWorkers(*parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbcluster: %v\n", err)
		os.Exit(2)
	}
	o.workers = workers
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "lbcluster: %v\n", err)
		os.Exit(1)
	}
}

// registerRunFlags registers the clustering-mode flags on fs (shared
// between the default mode and the record subcommand, which is the same run
// with a flight recorder attached). The returned pointer is the unparsed
// -parallel value.
func registerRunFlags(fs *flag.FlagSet, o *runOpts) *string {
	fs.StringVar(&o.in, "in", "-", "input edge-list file ('-' = stdin)")
	fs.StringVar(&o.out, "out", "-", "output label file ('-' = stdout)")
	fs.Float64Var(&o.beta, "beta", 0.1, "lower bound on the minimum cluster size fraction")
	fs.IntVar(&o.rounds, "rounds", 0, "averaging rounds T (0 = estimate from the spectral gap, needs -k)")
	fs.IntVar(&o.k, "k", 0, "number of clusters (only used to estimate T when -rounds 0)")
	fs.Uint64Var(&o.seed, "seed", 1, "random seed")
	fs.Float64Var(&o.thresholdScale, "threshold-scale", 1, "multiplier on the query threshold 1/(sqrt(2β)n)")
	fs.BoolVar(&o.distributed, "distributed", false, "run on the message-passing engine and report network traffic")
	fs.BoolVar(&o.gossip, "gossip", false, "run as asynchronous push-sum gossip on the message-passing engine")
	fs.BoolVar(&o.reliable, "reliable", false, "with -gossip: retransmit-on-timeout layer (conserves push mass exactly under loss)")
	fs.IntVar(&o.mailboxCap, "mailbox-cap", 0, "bound every node's mailbox to this many messages (0 = unbounded; -distributed/-gossip only)")
	fs.Float64Var(&o.dropProb, "drop-prob", 0, "substrate message loss probability (-distributed/-gossip only)")
	fs.StringVar(&o.partition, "partition", "count",
		"node split across workers: count, degree, or adaptive (label-driven re-splits; bit-identical labels in every mode)")
	fs.StringVar(&o.stateBackend, "state-backend", "auto",
		"node-state representation: auto, sparse, or dense (bit-identical results; dense packs seed weights in one contiguous block per node)")
	fs.StringVar(&o.transport, "transport", "inprocess",
		"delivery transport for -distributed/-gossip: inprocess, ring[:capacity], or socket[:machines]")
	fs.StringVar(&o.transportAddrs, "transport-addrs", "",
		"comma-separated `lbcluster serve` daemon addresses for -transport socket (overrides spawning)")
	fs.StringVar(&o.trace, "trace", "", "write a Chrome trace_event JSON of the run's logical-clock events to this file")
	fs.StringVar(&o.metricsOut, "metrics", "", "write the run's metric registry and per-round snapshots (Prometheus text) to this file")
	fs.StringVar(&o.recordOut, "record", "", "write a flight recording (manifest + events + snapshots, lbcluster obs-diff format) to this file")
	return fs.String("parallel", "auto",
		"worker pool size for the hot paths: a count, \"auto\" (GOMAXPROCS), or \"off\"")
}

// serve runs the worker daemon mode: a process other coordinators dial as a
// machine shard of their socket transport. With -http it also exposes the
// live introspection endpoints (/debug/obs, /debug/obs/metrics,
// /debug/pprof/) on a plain HTTP listener.
func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "", "wire address to listen on (unix:/path/to.sock or tcp:host:port)")
	httpAddr := fs.String("http", "", "optional HTTP address (host:port) for /debug/obs and /debug/pprof introspection")
	traceCap := fs.Int("trace", 0,
		"retain the last N wire relay events in a bounded ring, served live as Chrome trace JSON on /debug/obs/trace (0 = off)")
	fs.Parse(args)
	if *listen == "" {
		return fmt.Errorf("-listen is required")
	}
	ln, err := wire.Listen(*listen)
	if err != nil {
		return err
	}
	var httpLn net.Listener
	if *httpAddr != "" {
		if httpLn, err = net.Listen("tcp", *httpAddr); err != nil {
			ln.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "introspection on http://%s/debug/obs\n", httpLn.Addr())
	}
	fmt.Fprintf(os.Stderr, "serving wire payloads [%s] on %s\n",
		strings.Join(wire.Payloads(), " "), *listen)
	return serveDaemon(ln, httpLn, *traceCap)
}

// serveDaemon drives a worker daemon on already-open listeners (split from
// serve so tests can exercise the daemon with ephemeral ports): the wire
// relay loop on wireLn, and — when httpLn is non-nil — the introspection
// handler with the daemon's live relay tallies as extras. traceCap > 0
// installs a bounded obs.RingTrace on the wire relay loops (a resident
// daemon must never buffer an unbounded trace), exposed through the
// handler's /debug/obs/trace endpoint.
func serveDaemon(wireLn, httpLn net.Listener, traceCap int) error {
	var ob *obs.Observer
	if traceCap > 0 {
		ring := obs.NewRingTrace(traceCap)
		wire.SetServeTracer(ring)
		defer wire.SetServeTracer(nil)
		ob = obs.NewObserver(obs.Options{})
		ob.Tracer = ring
	}
	if httpLn != nil {
		h := export.Handler(export.HTTPOptions{Observer: ob, Extra: func() []obs.KV {
			conns, frames, in, out := wire.ServerStats()
			return []obs.KV{
				{Key: "wire_server_connections", Val: conns},
				{Key: "wire_server_frames", Val: frames},
				{Key: "wire_server_bytes_in", Val: in},
				{Key: "wire_server_bytes_out", Val: out},
			}
		}})
		// Daemon-side HTTP serving is plain I/O outside any transcript; it
		// dies with the process (or when the test closes the listener).
		//lintdet:allow rawgo(introspection HTTP server; daemon I/O pump never touches transcript state)
		go http.Serve(httpLn, h)
	}
	return wire.Serve(wireLn)
}

// runOpts carries every CLI knob of the clustering mode.
type runOpts struct {
	in, out        string
	beta           float64
	rounds, k      int
	seed           uint64
	thresholdScale float64
	distributed    bool
	gossip         bool
	reliable       bool
	mailboxCap     int
	dropProb       float64
	partition      string
	transport      string
	transportAddrs string
	stateBackend   string
	workers        int
	trace          string
	metricsOut     string
	recordOut      string
}

// newObserver builds the run's observer from the -trace/-metrics/-record
// flags; nil when none asks for observation (the engines' hooks then cost
// one nil check).
func (o runOpts) newObserver() *obs.Observer {
	if o.trace == "" && o.metricsOut == "" && o.recordOut == "" {
		return nil
	}
	return obs.NewObserver(obs.Options{Trace: o.trace != ""})
}

// writeObsArtifacts flushes the observer to the files the flags named.
func writeObsArtifacts(o runOpts, ob *obs.Observer) error {
	if ob == nil {
		return nil
	}
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return err
		}
		if err := export.WriteChromeTrace(f, ob.Events()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", len(ob.Events()), o.trace)
	}
	if o.metricsOut != "" {
		f, err := os.Create(o.metricsOut)
		if err != nil {
			return err
		}
		if err := export.WriteMetrics(f, ob); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics: %d snapshots -> %s\n", len(ob.Snapshots()), o.metricsOut)
	}
	return nil
}

// printBalance reports the final node split's load balance on stderr: the
// max and mean per-shard cost under the active cost function and their
// ratio (1.00 is a perfect split).
func printBalance(pspec core.PartitionSpec, max int64, mean float64, shards int) {
	ratio := 0.0
	if mean > 0 {
		ratio = float64(max) / mean
	}
	fmt.Fprintf(os.Stderr, "partition=%s shards=%d shard cost max=%d mean=%.1f imbalance=%.2f\n",
		pspec, shards, max, mean, ratio)
}

func run(o runOpts) error {
	if (o.mailboxCap != 0 || o.dropProb != 0) && !o.distributed && !o.gossip {
		return fmt.Errorf("-mailbox-cap and -drop-prob need -distributed or -gossip (the sequential engine has no substrate)")
	}
	if o.dropProb < 0 || o.dropProb > 1 {
		return fmt.Errorf("-drop-prob %v outside [0, 1]", o.dropProb)
	}
	if o.reliable && !o.gossip {
		return fmt.Errorf("-reliable needs -gossip (the synchronous protocol already aborts matches atomically)")
	}
	var r io.Reader = os.Stdin
	if o.in != "-" {
		f, err := os.Open(o.in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %v\n", g)

	if o.rounds == 0 {
		if o.k < 1 {
			return fmt.Errorf("-rounds 0 requires -k to estimate the budget")
		}
		vals, _, err := spectral.TopEigen(g, o.k+1, o.seed)
		if err != nil {
			return fmt.Errorf("estimating rounds: %w", err)
		}
		o.rounds = spectral.EstimateRoundsMatching(g.N(), vals[o.k], g.MaxDegree(), 1.5)
		fmt.Fprintf(os.Stderr, "estimated T = %d (lambda_{k+1} = %.4f)\n", o.rounds, vals[o.k])
	}
	params := core.Params{
		Beta:           o.beta,
		Rounds:         o.rounds,
		Seed:           o.seed,
		ThresholdScale: o.thresholdScale,
		StateBackend:   o.stateBackend,
	}
	var spec core.TransportSpec
	if o.distributed || o.gossip {
		if spec, err = core.ParseTransportSpec(o.transport); err != nil {
			return err
		}
		if o.transportAddrs != "" {
			spec.Addrs = strings.Split(o.transportAddrs, ",")
		}
	}
	pspec, err := core.ParsePartitionSpec(o.partition)
	if err != nil {
		return err
	}
	var model dist.DeliveryModel
	if o.dropProb > 0 {
		model = dist.LinkFaults{DropProb: o.dropProb, Seed: o.seed ^ 0x9e3779b97f4a7c15}
	}
	ob := o.newObserver()
	var rec *record.Writer
	var recFile *os.File
	if o.recordOut != "" {
		if recFile, err = os.Create(o.recordOut); err != nil {
			return err
		}
		if rec, err = record.NewWriter(recFile, runManifest(o, g)); err != nil {
			recFile.Close()
			return err
		}
		// If the run fails below, the file is left without a trailer — a
		// truncated recording, which the reader reports as exactly that.
		record.Attach(ob, rec)
	}
	var labels []int
	switch {
	case o.gossip:
		res, err := core.ClusterAsyncGossip(g, params, core.AsyncOptions{
			ClockSeed:  o.seed,
			Model:      model,
			MailboxCap: o.mailboxCap,
			Reliable:   o.reliable,
			Transport:  spec,
			Parallel:   o.workers,
			Partition:  pspec,
			Obs:        ob,
		})
		if err != nil {
			return err
		}
		labels = res.Labels
		fmt.Fprintf(os.Stderr, "seeds=%d labels=%d mass deficit=%.3g network: %d messages, %d words, %d dropped, %d rejected\n",
			len(res.Seeds), res.NumLabels, float64(len(res.Seeds))-res.TotalMass,
			res.NetworkMessages, res.NetworkWords, res.DroppedMessages, res.RejectedMessages)
		printBalance(pspec, res.ShardCostMax, res.ShardCostMean, len(res.PartitionBounds)-1)
	case o.distributed:
		// The phase pool needs at least one worker; -parallel off degrades
		// to a single-worker (still deterministic) network.
		workers := o.workers
		if workers < 1 {
			workers = 1
		}
		res, err := core.ClusterDistributed(g, params, core.DistOptions{
			Workers:    workers,
			Model:      model,
			MailboxCap: o.mailboxCap,
			Transport:  spec,
			Partition:  pspec,
			Obs:        ob,
		})
		if err != nil {
			return err
		}
		labels = res.Labels
		fmt.Fprintf(os.Stderr, "seeds=%d labels=%d rounds=%d network: %d messages, %d words, %d dropped, %d rejected\n",
			len(res.Seeds), res.NumLabels, res.Stats.Rounds, res.NetworkMessages,
			res.NetworkWords, res.DroppedMessages, res.RejectedMessages)
		printBalance(pspec, res.ShardCostMax, res.ShardCostMean, len(res.PartitionBounds)-1)
	default:
		res, err := core.ClusterParallelWithObs(g, params, o.workers, ob)
		if err != nil {
			return err
		}
		labels = res.Labels
		fmt.Fprintf(os.Stderr, "seeds=%d labels=%d rounds=%d matches=%d words=%d (threshold %.3g)\n",
			len(res.Seeds), res.NumLabels, res.Stats.Rounds, res.Stats.Matches,
			res.Stats.TotalWords(), res.Threshold)
	}
	if err := writeObsArtifacts(o, ob); err != nil {
		return err
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			recFile.Close()
			return fmt.Errorf("recording: %w", err)
		}
		if err := recFile.Close(); err != nil {
			return err
		}
		events, snaps := rec.Counts()
		fmt.Fprintf(os.Stderr, "recording: %d events, %d snapshots -> %s\n", events, snaps, o.recordOut)
	}
	var w io.Writer = os.Stdout
	if o.out != "-" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return graph.WriteLabels(w, labels)
}
