package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/rng"
	"repro/internal/wire"
)

func writeTestGraph(t *testing.T, dir string) (string, *gen.Planted) {
	t.Helper()
	p, err := gen.ClusteredRing(2, 60, 16, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, p.G); err != nil {
		t.Fatal(err)
	}
	return path, p
}

func readLabels(t *testing.T, path string, n int) []int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var labels []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		v, err := strconv.Atoi(sc.Text())
		if err != nil {
			t.Fatal(err)
		}
		labels = append(labels, v)
	}
	if len(labels) != n {
		t.Fatalf("got %d labels, want %d", len(labels), n)
	}
	return labels
}

func TestRunFixedRounds(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	out := filepath.Join(dir, "labels.txt")
	if err := run(runOpts{in: in, out: out, beta: 0.5, rounds: 80, k: 0, seed: 1, thresholdScale: 1, distributed: false, transport: "inprocess", transportAddrs: "", workers: 0}); err != nil {
		t.Fatal(err)
	}
	labels := readLabels(t, out, p.G.N())
	for _, l := range labels {
		if l < 0 {
			t.Fatal("negative label")
		}
	}
}

func TestRunAutoRounds(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	out := filepath.Join(dir, "labels.txt")
	if err := run(runOpts{in: in, out: out, beta: 0.5, rounds: 0, k: 2, seed: 1, thresholdScale: 1, distributed: false, transport: "inprocess", transportAddrs: "", workers: 0}); err != nil {
		t.Fatal(err)
	}
	readLabels(t, out, p.G.N())
}

func TestRunDistributed(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	out := filepath.Join(dir, "labels.txt")
	if err := run(runOpts{in: in, out: out, beta: 0.5, rounds: 60, k: 0, seed: 1, thresholdScale: 1, distributed: true, transport: "inprocess", transportAddrs: "", workers: 0}); err != nil {
		t.Fatal(err)
	}
	readLabels(t, out, p.G.N())
}

// TestRunDistributedTransports: the CLI's -transport selections agree bit
// for bit. The socket run serves its machine shards in-process via a
// `serve`-equivalent wire daemon (spawning would re-exec the test binary
// into the test suite, since package main cannot host the worker hook).
func TestRunDistributedTransports(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	want := filepath.Join(dir, "want.txt")
	if err := run(runOpts{in: in, out: want, beta: 0.5, rounds: 60, k: 0, seed: 1, thresholdScale: 1, distributed: true, transport: "inprocess", transportAddrs: "", workers: 0}); err != nil {
		t.Fatal(err)
	}
	wantLabels := readLabels(t, want, p.G.N())

	addr := "unix:" + filepath.Join(dir, "w0.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go wire.Serve(ln)

	for _, tc := range []struct{ transport, addrs string }{
		{"ring:64", ""},
		{"socket", addr},
	} {
		out := filepath.Join(dir, "got.txt")
		if err := run(runOpts{in: in, out: out, beta: 0.5, rounds: 60, k: 0, seed: 1, thresholdScale: 1, distributed: true, transport: tc.transport, transportAddrs: tc.addrs, workers: 0}); err != nil {
			t.Fatalf("transport %s: %v", tc.transport, err)
		}
		got := readLabels(t, out, p.G.N())
		for v := range wantLabels {
			if got[v] != wantLabels[v] {
				t.Fatalf("transport %s: label of node %d differs", tc.transport, v)
			}
		}
	}
}

// TestRunGossip exercises the -gossip engine end to end, plain and
// reliable, with the backpressure knobs engaged, and pins that -parallel
// stays a wall-clock knob in this mode too.
func TestRunGossip(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	for _, reliable := range []bool{false, true} {
		want := filepath.Join(dir, "want.txt")
		base := runOpts{in: in, out: want, beta: 0.5, rounds: 60, seed: 1, thresholdScale: 1,
			gossip: true, reliable: reliable, mailboxCap: 8, dropProb: 0.1, transport: "inprocess"}
		if err := run(base); err != nil {
			t.Fatalf("reliable=%v: %v", reliable, err)
		}
		wantLabels := readLabels(t, want, p.G.N())
		par := base
		par.out = filepath.Join(dir, "got.txt")
		par.workers = 4
		if err := run(par); err != nil {
			t.Fatalf("reliable=%v parallel: %v", reliable, err)
		}
		got := readLabels(t, par.out, p.G.N())
		for v := range wantLabels {
			if got[v] != wantLabels[v] {
				t.Fatalf("reliable=%v: -parallel changed the label of node %d", reliable, v)
			}
		}
	}
}

// TestRunTraceAndMetricsExport drives every engine with -trace and -metrics
// and validates the artifacts: the trace parses as Chrome trace_event JSON
// with matched B/E phase (or run_async) spans, and the metrics file carries
// the deterministic registry plus per-round snapshot comments.
func TestRunTraceAndMetricsExport(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	for _, tc := range []struct {
		name string
		mut  func(*runOpts)
		span string
	}{
		{"sequential", func(o *runOpts) {}, ""},
		{"distributed", func(o *runOpts) { o.distributed = true }, "phase"},
		{"gossip", func(o *runOpts) { o.gossip = true }, "run_async"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := runOpts{in: in, out: filepath.Join(dir, "labels.txt"), beta: 0.5, rounds: 40,
				seed: 1, thresholdScale: 1, transport: "inprocess",
				trace:      filepath.Join(dir, tc.name+".trace.json"),
				metricsOut: filepath.Join(dir, tc.name+".metrics.txt")}
			tc.mut(&o)
			if err := run(o); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(o.trace)
			if err != nil {
				t.Fatal(err)
			}
			var doc struct {
				TraceEvents []struct {
					Name string `json:"name"`
					Ph   string `json:"ph"`
				} `json:"traceEvents"`
				Metadata map[string]string `json:"metadata"`
			}
			if err := json.Unmarshal(data, &doc); err != nil {
				t.Fatalf("trace does not parse as JSON: %v", err)
			}
			if doc.Metadata["clock"] != "logical" {
				t.Error("trace missing logical-clock metadata")
			}
			if len(doc.TraceEvents) == 0 {
				t.Fatal("trace has no events")
			}
			if tc.span != "" {
				var b, e int
				for _, ev := range doc.TraceEvents {
					if ev.Name == tc.span {
						switch ev.Ph {
						case "B":
							b++
						case "E":
							e++
						}
					}
				}
				if b == 0 || b != e {
					t.Errorf("%s spans unbalanced: %d begins, %d ends", tc.span, b, e)
				}
			}
			metrics, err := os.ReadFile(o.metricsOut)
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"# TYPE core_shard_mass gauge", "# round="} {
				if !strings.Contains(string(metrics), want) {
					t.Errorf("metrics file missing %q", want)
				}
			}
		})
	}
}

// TestServeHTTPIntrospection boots the daemon with both listeners on
// ephemeral ports, runs a socket-transport clustering against it, and then
// checks the HTTP side: /debug/obs serves a JSON overview whose wire relay
// tallies reflect the traffic, and /debug/pprof/ answers.
func TestServeHTTPIntrospection(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	addr := "unix:" + filepath.Join(dir, "w0.sock")
	wireLn, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wireLn.Close()
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer httpLn.Close()
	go serveDaemon(wireLn, httpLn, 256)

	if err := run(runOpts{in: in, out: filepath.Join(dir, "labels.txt"), beta: 0.5, rounds: 40,
		seed: 1, thresholdScale: 1, distributed: true, transport: "socket", transportAddrs: addr}); err != nil {
		t.Fatal(err)
	}
	readLabels(t, filepath.Join(dir, "labels.txt"), p.G.N())

	base := "http://" + httpLn.Addr().String()
	get := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	code, body := get("/debug/obs")
	if code != 200 {
		t.Fatalf("/debug/obs: status %d", code)
	}
	var ov struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Extra         []struct {
			Key string `json:"key"`
			Val int64  `json:"val"`
		} `json:"extra"`
	}
	if err := json.Unmarshal(body, &ov); err != nil {
		t.Fatalf("/debug/obs JSON: %v", err)
	}
	tallies := map[string]int64{}
	for _, kv := range ov.Extra {
		tallies[kv.Key] = kv.Val
	}
	if tallies["wire_server_connections"] < 1 || tallies["wire_server_frames"] < 1 {
		t.Errorf("wire relay tallies missing traffic: %v", tallies)
	}
	if code, body = get("/debug/obs/metrics"); code != 200 || !strings.Contains(string(body), "wire_server_frames") {
		t.Errorf("/debug/obs/metrics: status %d body %q", code, body)
	}
	if code, _ = get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: status %d", code)
	}
	// The daemon ran with a 256-event ring tracer: /debug/obs/trace must
	// stream the live ring as Chrome trace JSON carrying the wire relay
	// instants the socket run just produced.
	code, body = get("/debug/obs/trace")
	if code != 200 {
		t.Fatalf("/debug/obs/trace: status %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Cat  string `json:"cat"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/obs/trace JSON: %v", err)
	}
	sawConn, sawRelay := false, false
	for _, e := range doc.TraceEvents {
		if e.Cat == "wire" && e.Name == "conn" {
			sawConn = true
		}
		if e.Cat == "wire" && e.Name == "relay" {
			sawRelay = true
		}
	}
	if !sawConn || !sawRelay {
		t.Errorf("live ring trace missing wire events (conn=%v relay=%v) in %d events",
			sawConn, sawRelay, len(doc.TraceEvents))
	}
}

func TestServeRequiresListen(t *testing.T) {
	if err := serve(nil); err == nil {
		t.Fatal("serve without -listen should fail")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	// Auto rounds without k.
	if err := run(runOpts{in: in, out: filepath.Join(dir, "x"), beta: 0.5, thresholdScale: 1, transport: "inprocess"}); err == nil {
		t.Error("auto rounds without -k should fail")
	}
	// Missing input file.
	if err := run(runOpts{in: filepath.Join(dir, "nope.txt"), out: "-", beta: 0.5, rounds: 10, thresholdScale: 1, transport: "inprocess"}); err == nil {
		t.Error("missing input should fail")
	}
	// Invalid beta propagates from core.
	if err := run(runOpts{in: in, out: filepath.Join(dir, "y"), rounds: 10, thresholdScale: 1, transport: "inprocess"}); err == nil {
		t.Error("beta=0 should fail")
	}
	// Substrate knobs require a substrate engine.
	if err := run(runOpts{in: in, out: "-", beta: 0.5, rounds: 10, thresholdScale: 1, transport: "inprocess", mailboxCap: 4}); err == nil {
		t.Error("-mailbox-cap without -distributed/-gossip should fail")
	}
	if err := run(runOpts{in: in, out: "-", beta: 0.5, rounds: 10, thresholdScale: 1, transport: "inprocess", reliable: true}); err == nil {
		t.Error("-reliable without -gossip should fail")
	}
	if err := run(runOpts{in: in, out: "-", beta: 0.5, rounds: 10, thresholdScale: 1, transport: "inprocess", gossip: true, dropProb: 1.5}); err == nil {
		t.Error("-drop-prob outside [0,1] should fail")
	}
}

// TestRunParallelMatchesSerial: -parallel is a wall-clock knob, never a
// result knob — the sequential and distributed paths both emit identical
// labels for every worker count.
func TestRunParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	for _, distributed := range []bool{false, true} {
		want := filepath.Join(dir, "want.txt")
		if err := run(runOpts{in: in, out: want, beta: 0.5, rounds: 60, k: 0, seed: 1, thresholdScale: 1, distributed: distributed, transport: "inprocess", transportAddrs: "", workers: 0}); err != nil {
			t.Fatal(err)
		}
		wantLabels := readLabels(t, want, p.G.N())
		for _, workers := range []int{2, 4} {
			out := filepath.Join(dir, "got.txt")
			if err := run(runOpts{in: in, out: out, beta: 0.5, rounds: 60, k: 0, seed: 1, thresholdScale: 1, distributed: distributed, transport: "inprocess", transportAddrs: "", workers: workers}); err != nil {
				t.Fatalf("distributed=%v workers=%d: %v", distributed, workers, err)
			}
			got := readLabels(t, out, p.G.N())
			for v := range wantLabels {
				if got[v] != wantLabels[v] {
					t.Fatalf("distributed=%v workers=%d: label of node %d differs", distributed, workers, v)
				}
			}
		}
	}
}
