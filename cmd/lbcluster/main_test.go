package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/rng"
	"repro/internal/wire"
)

func writeTestGraph(t *testing.T, dir string) (string, *gen.Planted) {
	t.Helper()
	p, err := gen.ClusteredRing(2, 60, 16, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, p.G); err != nil {
		t.Fatal(err)
	}
	return path, p
}

func readLabels(t *testing.T, path string, n int) []int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var labels []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		v, err := strconv.Atoi(sc.Text())
		if err != nil {
			t.Fatal(err)
		}
		labels = append(labels, v)
	}
	if len(labels) != n {
		t.Fatalf("got %d labels, want %d", len(labels), n)
	}
	return labels
}

func TestRunFixedRounds(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	out := filepath.Join(dir, "labels.txt")
	if err := run(runOpts{in: in, out: out, beta: 0.5, rounds: 80, k: 0, seed: 1, thresholdScale: 1, distributed: false, transport: "inprocess", transportAddrs: "", workers: 0}); err != nil {
		t.Fatal(err)
	}
	labels := readLabels(t, out, p.G.N())
	for _, l := range labels {
		if l < 0 {
			t.Fatal("negative label")
		}
	}
}

func TestRunAutoRounds(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	out := filepath.Join(dir, "labels.txt")
	if err := run(runOpts{in: in, out: out, beta: 0.5, rounds: 0, k: 2, seed: 1, thresholdScale: 1, distributed: false, transport: "inprocess", transportAddrs: "", workers: 0}); err != nil {
		t.Fatal(err)
	}
	readLabels(t, out, p.G.N())
}

func TestRunDistributed(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	out := filepath.Join(dir, "labels.txt")
	if err := run(runOpts{in: in, out: out, beta: 0.5, rounds: 60, k: 0, seed: 1, thresholdScale: 1, distributed: true, transport: "inprocess", transportAddrs: "", workers: 0}); err != nil {
		t.Fatal(err)
	}
	readLabels(t, out, p.G.N())
}

// TestRunDistributedTransports: the CLI's -transport selections agree bit
// for bit. The socket run serves its machine shards in-process via a
// `serve`-equivalent wire daemon (spawning would re-exec the test binary
// into the test suite, since package main cannot host the worker hook).
func TestRunDistributedTransports(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	want := filepath.Join(dir, "want.txt")
	if err := run(runOpts{in: in, out: want, beta: 0.5, rounds: 60, k: 0, seed: 1, thresholdScale: 1, distributed: true, transport: "inprocess", transportAddrs: "", workers: 0}); err != nil {
		t.Fatal(err)
	}
	wantLabels := readLabels(t, want, p.G.N())

	addr := "unix:" + filepath.Join(dir, "w0.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go wire.Serve(ln)

	for _, tc := range []struct{ transport, addrs string }{
		{"ring:64", ""},
		{"socket", addr},
	} {
		out := filepath.Join(dir, "got.txt")
		if err := run(runOpts{in: in, out: out, beta: 0.5, rounds: 60, k: 0, seed: 1, thresholdScale: 1, distributed: true, transport: tc.transport, transportAddrs: tc.addrs, workers: 0}); err != nil {
			t.Fatalf("transport %s: %v", tc.transport, err)
		}
		got := readLabels(t, out, p.G.N())
		for v := range wantLabels {
			if got[v] != wantLabels[v] {
				t.Fatalf("transport %s: label of node %d differs", tc.transport, v)
			}
		}
	}
}

// TestRunGossip exercises the -gossip engine end to end, plain and
// reliable, with the backpressure knobs engaged, and pins that -parallel
// stays a wall-clock knob in this mode too.
func TestRunGossip(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	for _, reliable := range []bool{false, true} {
		want := filepath.Join(dir, "want.txt")
		base := runOpts{in: in, out: want, beta: 0.5, rounds: 60, seed: 1, thresholdScale: 1,
			gossip: true, reliable: reliable, mailboxCap: 8, dropProb: 0.1, transport: "inprocess"}
		if err := run(base); err != nil {
			t.Fatalf("reliable=%v: %v", reliable, err)
		}
		wantLabels := readLabels(t, want, p.G.N())
		par := base
		par.out = filepath.Join(dir, "got.txt")
		par.workers = 4
		if err := run(par); err != nil {
			t.Fatalf("reliable=%v parallel: %v", reliable, err)
		}
		got := readLabels(t, par.out, p.G.N())
		for v := range wantLabels {
			if got[v] != wantLabels[v] {
				t.Fatalf("reliable=%v: -parallel changed the label of node %d", reliable, v)
			}
		}
	}
}

func TestServeRequiresListen(t *testing.T) {
	if err := serve(nil); err == nil {
		t.Fatal("serve without -listen should fail")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	// Auto rounds without k.
	if err := run(runOpts{in: in, out: filepath.Join(dir, "x"), beta: 0.5, thresholdScale: 1, transport: "inprocess"}); err == nil {
		t.Error("auto rounds without -k should fail")
	}
	// Missing input file.
	if err := run(runOpts{in: filepath.Join(dir, "nope.txt"), out: "-", beta: 0.5, rounds: 10, thresholdScale: 1, transport: "inprocess"}); err == nil {
		t.Error("missing input should fail")
	}
	// Invalid beta propagates from core.
	if err := run(runOpts{in: in, out: filepath.Join(dir, "y"), rounds: 10, thresholdScale: 1, transport: "inprocess"}); err == nil {
		t.Error("beta=0 should fail")
	}
	// Substrate knobs require a substrate engine.
	if err := run(runOpts{in: in, out: "-", beta: 0.5, rounds: 10, thresholdScale: 1, transport: "inprocess", mailboxCap: 4}); err == nil {
		t.Error("-mailbox-cap without -distributed/-gossip should fail")
	}
	if err := run(runOpts{in: in, out: "-", beta: 0.5, rounds: 10, thresholdScale: 1, transport: "inprocess", reliable: true}); err == nil {
		t.Error("-reliable without -gossip should fail")
	}
	if err := run(runOpts{in: in, out: "-", beta: 0.5, rounds: 10, thresholdScale: 1, transport: "inprocess", gossip: true, dropProb: 1.5}); err == nil {
		t.Error("-drop-prob outside [0,1] should fail")
	}
}

// TestRunParallelMatchesSerial: -parallel is a wall-clock knob, never a
// result knob — the sequential and distributed paths both emit identical
// labels for every worker count.
func TestRunParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	for _, distributed := range []bool{false, true} {
		want := filepath.Join(dir, "want.txt")
		if err := run(runOpts{in: in, out: want, beta: 0.5, rounds: 60, k: 0, seed: 1, thresholdScale: 1, distributed: distributed, transport: "inprocess", transportAddrs: "", workers: 0}); err != nil {
			t.Fatal(err)
		}
		wantLabels := readLabels(t, want, p.G.N())
		for _, workers := range []int{2, 4} {
			out := filepath.Join(dir, "got.txt")
			if err := run(runOpts{in: in, out: out, beta: 0.5, rounds: 60, k: 0, seed: 1, thresholdScale: 1, distributed: distributed, transport: "inprocess", transportAddrs: "", workers: workers}); err != nil {
				t.Fatalf("distributed=%v workers=%d: %v", distributed, workers, err)
			}
			got := readLabels(t, out, p.G.N())
			for v := range wantLabels {
				if got[v] != wantLabels[v] {
					t.Fatalf("distributed=%v workers=%d: label of node %d differs", distributed, workers, v)
				}
			}
		}
	}
}
