package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/rng"
	"repro/internal/wire"
)

func writeTestGraph(t *testing.T, dir string) (string, *gen.Planted) {
	t.Helper()
	p, err := gen.ClusteredRing(2, 60, 16, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, p.G); err != nil {
		t.Fatal(err)
	}
	return path, p
}

func readLabels(t *testing.T, path string, n int) []int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var labels []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		v, err := strconv.Atoi(sc.Text())
		if err != nil {
			t.Fatal(err)
		}
		labels = append(labels, v)
	}
	if len(labels) != n {
		t.Fatalf("got %d labels, want %d", len(labels), n)
	}
	return labels
}

func TestRunFixedRounds(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	out := filepath.Join(dir, "labels.txt")
	if err := run(in, out, 0.5, 80, 0, 1, 1, false, "inprocess", "", 0); err != nil {
		t.Fatal(err)
	}
	labels := readLabels(t, out, p.G.N())
	for _, l := range labels {
		if l < 0 {
			t.Fatal("negative label")
		}
	}
}

func TestRunAutoRounds(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	out := filepath.Join(dir, "labels.txt")
	if err := run(in, out, 0.5, 0, 2, 1, 1, false, "inprocess", "", 0); err != nil {
		t.Fatal(err)
	}
	readLabels(t, out, p.G.N())
}

func TestRunDistributed(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	out := filepath.Join(dir, "labels.txt")
	if err := run(in, out, 0.5, 60, 0, 1, 1, true, "inprocess", "", 0); err != nil {
		t.Fatal(err)
	}
	readLabels(t, out, p.G.N())
}

// TestRunDistributedTransports: the CLI's -transport selections agree bit
// for bit. The socket run serves its machine shards in-process via a
// `serve`-equivalent wire daemon (spawning would re-exec the test binary
// into the test suite, since package main cannot host the worker hook).
func TestRunDistributedTransports(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	want := filepath.Join(dir, "want.txt")
	if err := run(in, want, 0.5, 60, 0, 1, 1, true, "inprocess", "", 0); err != nil {
		t.Fatal(err)
	}
	wantLabels := readLabels(t, want, p.G.N())

	addr := "unix:" + filepath.Join(dir, "w0.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go wire.Serve(ln)

	for _, tc := range []struct{ transport, addrs string }{
		{"ring:64", ""},
		{"socket", addr},
	} {
		out := filepath.Join(dir, "got.txt")
		if err := run(in, out, 0.5, 60, 0, 1, 1, true, tc.transport, tc.addrs, 0); err != nil {
			t.Fatalf("transport %s: %v", tc.transport, err)
		}
		got := readLabels(t, out, p.G.N())
		for v := range wantLabels {
			if got[v] != wantLabels[v] {
				t.Fatalf("transport %s: label of node %d differs", tc.transport, v)
			}
		}
	}
}

func TestServeRequiresListen(t *testing.T) {
	if err := serve(nil); err == nil {
		t.Fatal("serve without -listen should fail")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeTestGraph(t, dir)
	// Auto rounds without k.
	if err := run(in, filepath.Join(dir, "x"), 0.5, 0, 0, 1, 1, false, "inprocess", "", 0); err == nil {
		t.Error("auto rounds without -k should fail")
	}
	// Missing input file.
	if err := run(filepath.Join(dir, "nope.txt"), "-", 0.5, 10, 0, 1, 1, false, "inprocess", "", 0); err == nil {
		t.Error("missing input should fail")
	}
	// Invalid beta propagates from core.
	if err := run(in, filepath.Join(dir, "y"), 0, 10, 0, 1, 1, false, "inprocess", "", 0); err == nil {
		t.Error("beta=0 should fail")
	}
}

// TestRunParallelMatchesSerial: -parallel is a wall-clock knob, never a
// result knob — the sequential and distributed paths both emit identical
// labels for every worker count.
func TestRunParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	in, p := writeTestGraph(t, dir)
	for _, distributed := range []bool{false, true} {
		want := filepath.Join(dir, "want.txt")
		if err := run(in, want, 0.5, 60, 0, 1, 1, distributed, "inprocess", "", 0); err != nil {
			t.Fatal(err)
		}
		wantLabels := readLabels(t, want, p.G.N())
		for _, workers := range []int{2, 4} {
			out := filepath.Join(dir, "got.txt")
			if err := run(in, out, 0.5, 60, 0, 1, 1, distributed, "inprocess", "", workers); err != nil {
				t.Fatalf("distributed=%v workers=%d: %v", distributed, workers, err)
			}
			got := readLabels(t, out, p.G.N())
			for v := range wantLabels {
				if got[v] != wantLabels[v] {
					t.Fatalf("distributed=%v workers=%d: label of node %d differs", distributed, workers, v)
				}
			}
		}
	}
}
